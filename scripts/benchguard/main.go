// Command benchguard enforces per-benchmark ns/op budgets in CI: it
// parses `go test -bench` output and compares each benchmark's best
// (minimum) ns/op across -count repetitions against the committed
// budget file (BENCH_after.json), failing when any benchmark regresses
// beyond the tolerance.
//
// The budget numbers were measured on a different machine than CI, so
// the default tolerance (15%) still leaves headroom for hardware
// variation: the guard catches structural regressions — an accidental
// allocation in the frame loop, a pipeline rebuilt per episode — not
// scheduler noise. Taking the minimum across repetitions filters the
// noise further: the best rep is the least-interfered-with one.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x -count=5 ./... | tee bench.txt
//	go run ./scripts/benchguard -budget BENCH_after.json bench.txt
//	go run ./scripts/benchguard -budget BENCH_after.json -tolerance 50 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	budgetPath := fs.String("budget", "BENCH_after.json", "committed budget file")
	tolerance := fs.Float64("tolerance", 15, "allowed ns/op regression over budget, in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: benchguard [-budget file] [-tolerance pct] bench-results.txt")
	}

	budgets, err := loadBudgets(*budgetPath)
	if err != nil {
		return err
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	measured, err := parseBench(f)
	if err != nil {
		return err
	}

	report, ok := compare(budgets, measured, *tolerance)
	fmt.Fprint(w, report)
	if !ok {
		return fmt.Errorf("benchmark budget exceeded (tolerance %.0f%%)", *tolerance)
	}
	return nil
}

// budgetFile mirrors the committed BENCH_after.json shape; fields this
// guard doesn't budget on are ignored.
type budgetFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func loadBudgets(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		if b.NsPerOp > 0 {
			out[b.Name] = b.NsPerOp
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no ns_per_op budgets found", path)
	}
	return out, nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFrame-4   242504   4895 ns/op   0 B/op   0 allocs/op
//
// The -N suffix is GOMAXPROCS, not part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts the minimum ns/op per benchmark name across all
// repetitions in r.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// compare renders one line per budgeted benchmark and reports whether
// all measured ones stayed within tolerance. Budgeted benchmarks
// missing from the results are listed but don't fail the run — CI may
// legitimately run a subset.
func compare(budgets, measured map[string]float64, tolerancePct float64) (string, bool) {
	var b strings.Builder
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	// Stable report order: the budget file's map has no order, sort.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	ok := true
	for _, name := range names {
		budget := budgets[name]
		got, ran := measured[name]
		if !ran {
			fmt.Fprintf(&b, "SKIP %-40s budget %12.0f ns/op (not in results)\n", name, budget)
			continue
		}
		pct := (got - budget) / budget * 100
		status := "ok  "
		if pct > tolerancePct {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "%s %-40s budget %12.0f ns/op  got %12.0f ns/op  (%+.1f%%)\n",
			status, name, budget, got, pct)
	}
	return b.String(), ok
}
