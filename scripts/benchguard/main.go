// Command benchguard enforces per-benchmark budgets in CI: it parses
// `go test -bench` output and compares each benchmark's best (minimum)
// ns/op across -count repetitions against the committed budget file
// (BENCH_after.json), failing when any benchmark regresses beyond the
// tolerance. Budget entries may also carry an allocs_per_op ceiling;
// allocation counts are hardware-independent, so those are enforced
// exactly (best rep must be at or under the ceiling, no tolerance).
//
// The ns/op budget numbers were measured on a different machine than
// CI, so the default tolerance (15%) still leaves headroom for hardware
// variation: the guard catches structural regressions — an accidental
// allocation in the frame loop, a pipeline rebuilt per episode — not
// scheduler noise. Taking the minimum across repetitions filters the
// noise further: the best rep is the least-interfered-with one.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x -count=5 -benchmem ./... | tee bench.txt
//	go run ./scripts/benchguard -budget BENCH_after.json bench.txt
//	go run ./scripts/benchguard -budget BENCH_after.json -tolerance 50 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	budgetPath := fs.String("budget", "BENCH_after.json", "committed budget file")
	tolerance := fs.Float64("tolerance", 15, "allowed ns/op regression over budget, in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: benchguard [-budget file] [-tolerance pct] bench-results.txt")
	}

	budgets, err := loadBudgets(*budgetPath)
	if err != nil {
		return err
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	measured, err := parseBench(f)
	if err != nil {
		return err
	}

	report, ok := compare(budgets, measured, *tolerance)
	fmt.Fprint(w, report)
	if !ok {
		return fmt.Errorf("benchmark budget exceeded (tolerance %.0f%%)", *tolerance)
	}
	return nil
}

// budget is one benchmark's committed contract: a ns/op ceiling
// (enforced with tolerance) and an optional allocs/op ceiling
// (enforced exactly; nil means not budgeted — legacy entries record
// allocs informationally via the same field, so absence is the only
// opt-out).
type budget struct {
	ns     float64
	allocs *float64
}

// budgetFile mirrors the committed BENCH_after.json shape; fields this
// guard doesn't budget on are ignored. allocs_per_op is a pointer so
// an explicit 0 (the frame loop's contract) is distinct from absent.
type budgetFile struct {
	Benchmarks []struct {
		Name        string   `json:"name"`
		NsPerOp     float64  `json:"ns_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func loadBudgets(path string) (map[string]budget, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]budget, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		if b.NsPerOp > 0 {
			out[b.Name] = budget{ns: b.NsPerOp, allocs: b.AllocsPerOp}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no ns_per_op budgets found", path)
	}
	return out, nil
}

// measurement is one benchmark's best rep: minimum ns/op, and minimum
// allocs/op when the results carry -benchmem columns.
type measurement struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFrame-4   242504   4895 ns/op   0 B/op   0 allocs/op
//
// The -N suffix is GOMAXPROCS, not part of the benchmark's identity.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	allocsCol = regexp.MustCompile(`\s([0-9]+) allocs/op`)
)

// parseBench extracts the minimum ns/op (and allocs/op, when present)
// per benchmark name across all repetitions in r.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		cur, seen := out[m[1]]
		if !seen || ns < cur.ns {
			cur.ns = ns
		}
		if am := allocsCol.FindStringSubmatch(line); am != nil {
			allocs, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if !cur.hasAllocs || allocs < cur.allocs {
				cur.allocs = allocs
				cur.hasAllocs = true
			}
		}
		out[m[1]] = cur
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// compare renders one line per budgeted benchmark and reports whether
// all measured ones stayed within tolerance (ns/op) and at or under
// their alloc ceilings. Budgeted benchmarks missing from the results
// are listed but don't fail the run — CI may legitimately run a
// subset. An alloc ceiling on a benchmark whose results lack -benchmem
// columns is likewise skipped, not failed.
func compare(budgets map[string]budget, measured map[string]measurement, tolerancePct float64) (string, bool) {
	var b strings.Builder
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	// Stable report order: the budget file's map has no order, sort.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	ok := true
	for _, name := range names {
		bd := budgets[name]
		got, ran := measured[name]
		if !ran {
			fmt.Fprintf(&b, "SKIP %-40s budget %12.0f ns/op (not in results)\n", name, bd.ns)
			continue
		}
		pct := (got.ns - bd.ns) / bd.ns * 100
		status := "ok  "
		if pct > tolerancePct {
			status = "FAIL"
			ok = false
		}
		alloc := ""
		if bd.allocs != nil && got.hasAllocs {
			alloc = fmt.Sprintf("  allocs %.0f/%.0f", got.allocs, *bd.allocs)
			if got.allocs > *bd.allocs {
				status = "FAIL"
				ok = false
			}
		}
		fmt.Fprintf(&b, "%s %-40s budget %12.0f ns/op  got %12.0f ns/op  (%+.1f%%)%s\n",
			status, name, bd.ns, got.ns, pct, alloc)
	}
	return b.String(), ok
}
