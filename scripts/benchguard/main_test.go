package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/robotack/robotack
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFrame-4          	  242504	      5200 ns/op	       0 B/op	       0 allocs/op
BenchmarkFrame-4          	  242504	      4901 ns/op	       0 B/op	       0 allocs/op
BenchmarkFrame-4          	  242504	      6100 ns/op	       0 B/op	       0 allocs/op
BenchmarkEpisode/golden-DS1-4  	     400	   3100000 ns/op	         334.6 episodes/s	  298581 B/op	     301 allocs/op
BenchmarkEpisode/golden-DS1-4  	     400	   2990000 ns/op	         334.6 episodes/s	  298581 B/op	     295 allocs/op
PASS
ok  	github.com/robotack/robotack	12.3s
`

func TestParseBenchMinAcrossReps(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]measurement{
		"BenchmarkFrame":              {ns: 4901, allocs: 0, hasAllocs: true},
		"BenchmarkEpisode/golden-DS1": {ns: 2990000, allocs: 295, hasAllocs: true},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, m := range want {
		if got[name] != m {
			t.Errorf("%s: got %+v, want %+v (minimum across reps, -N suffix stripped)", name, got[name], m)
		}
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	got, err := parseBench(strings.NewReader("BenchmarkX-4  100  5000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m := got["BenchmarkX"]; m.hasAllocs {
		t.Errorf("no allocs column, but hasAllocs set: %+v", m)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("no benchmark lines should be an error, not a silent pass")
	}
}

func ceil(v float64) *float64 { return &v }

func TestCompareWithinAndBeyondTolerance(t *testing.T) {
	budgets := map[string]budget{
		"BenchmarkFrame":   {ns: 4895},
		"BenchmarkEpisode": {ns: 3_000_000},
		"BenchmarkUnrun":   {ns: 100},
	}
	measured := map[string]measurement{
		"BenchmarkFrame":   {ns: 5800},      // +18.5%: within 25%
		"BenchmarkEpisode": {ns: 4_000_000}, // +33%: beyond
	}
	report, ok := compare(budgets, measured, 25)
	if ok {
		t.Errorf("a +33%% regression passed a 25%% tolerance:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkEpisode") {
		t.Errorf("report does not flag the regressing benchmark:\n%s", report)
	}
	if !strings.Contains(report, "ok   BenchmarkFrame") {
		t.Errorf("report does not pass the in-budget benchmark:\n%s", report)
	}
	if !strings.Contains(report, "SKIP BenchmarkUnrun") {
		t.Errorf("report does not note the benchmark missing from results:\n%s", report)
	}

	if _, ok := compare(budgets, measured, 50); !ok {
		t.Error("a +33% regression should pass a 50% tolerance")
	}
}

func TestCompareAllocCeilings(t *testing.T) {
	budgets := map[string]budget{
		"BenchmarkFrame":   {ns: 4895, allocs: ceil(0)},
		"BenchmarkEpisode": {ns: 3_000_000, allocs: ceil(295)},
	}

	// At or under the ceiling: passes (allocs are exact, no tolerance).
	measured := map[string]measurement{
		"BenchmarkFrame":   {ns: 4900, allocs: 0, hasAllocs: true},
		"BenchmarkEpisode": {ns: 2_990_000, allocs: 295, hasAllocs: true},
	}
	if report, ok := compare(budgets, measured, 15); !ok {
		t.Errorf("at-ceiling allocs failed:\n%s", report)
	}

	// One alloc over a 0 ceiling fails even with fast ns/op.
	measured["BenchmarkFrame"] = measurement{ns: 4000, allocs: 1, hasAllocs: true}
	report, ok := compare(budgets, measured, 15)
	if ok {
		t.Errorf("1 alloc over a 0 ceiling passed:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkFrame") {
		t.Errorf("report does not flag the alloc regression:\n%s", report)
	}

	// Results without -benchmem columns skip the alloc check.
	measured["BenchmarkFrame"] = measurement{ns: 4900}
	if report, ok := compare(budgets, measured, 15); !ok {
		t.Errorf("missing allocs column should skip the ceiling, not fail:\n%s", report)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	budget := filepath.Join(dir, "budget.json")
	results := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(budget, []byte(`{"benchmarks":[{"name":"BenchmarkFrame","ns_per_op":4895,"allocs_per_op":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(results, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(&out, []string{"-budget", budget, results}); err != nil {
		t.Errorf("in-budget run failed: %v\n%s", err, out.String())
	}

	// Squeeze the tolerance until the same numbers regress.
	out.Reset()
	if err := run(&out, []string{"-budget", budget, "-tolerance", "0", results}); err == nil {
		t.Errorf("0%% tolerance accepted a slower result:\n%s", out.String())
	}

	// An alloc ceiling below the measured count fails regardless of ns.
	if err := os.WriteFile(budget, []byte(`{"benchmarks":[{"name":"BenchmarkEpisode/golden-DS1","ns_per_op":3000000,"allocs_per_op":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(&out, []string{"-budget", budget, results}); err == nil {
		t.Errorf("alloc ceiling 100 accepted 295 allocs/op:\n%s", out.String())
	}
}
