package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/robotack/robotack
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFrame-4          	  242504	      5200 ns/op	       0 B/op	       0 allocs/op
BenchmarkFrame-4          	  242504	      4901 ns/op	       0 B/op	       0 allocs/op
BenchmarkFrame-4          	  242504	      6100 ns/op	       0 B/op	       0 allocs/op
BenchmarkEpisode/golden-DS1-4  	     400	   3100000 ns/op	         334.6 episodes/s
BenchmarkEpisode/golden-DS1-4  	     400	   2990000 ns/op	         334.6 episodes/s
PASS
ok  	github.com/robotack/robotack	12.3s
`

func TestParseBenchMinAcrossReps(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFrame":              4901,
		"BenchmarkEpisode/golden-DS1": 2990000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s: got %v ns/op, want %v (minimum across reps, -N suffix stripped)", name, got[name], ns)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("no benchmark lines should be an error, not a silent pass")
	}
}

func TestCompareWithinAndBeyondTolerance(t *testing.T) {
	budgets := map[string]float64{
		"BenchmarkFrame":   4895,
		"BenchmarkEpisode": 3_000_000,
		"BenchmarkUnrun":   100,
	}
	measured := map[string]float64{
		"BenchmarkFrame":   5800,      // +18.5%: within 25%
		"BenchmarkEpisode": 4_000_000, // +33%: beyond
	}
	report, ok := compare(budgets, measured, 25)
	if ok {
		t.Errorf("a +33%% regression passed a 25%% tolerance:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkEpisode") {
		t.Errorf("report does not flag the regressing benchmark:\n%s", report)
	}
	if !strings.Contains(report, "ok   BenchmarkFrame") {
		t.Errorf("report does not pass the in-budget benchmark:\n%s", report)
	}
	if !strings.Contains(report, "SKIP BenchmarkUnrun") {
		t.Errorf("report does not note the benchmark missing from results:\n%s", report)
	}

	if _, ok := compare(budgets, measured, 50); !ok {
		t.Error("a +33% regression should pass a 50% tolerance")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	budget := filepath.Join(dir, "budget.json")
	results := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(budget, []byte(`{"benchmarks":[{"name":"BenchmarkFrame","ns_per_op":4895}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(results, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(&out, []string{"-budget", budget, results}); err != nil {
		t.Errorf("in-budget run failed: %v\n%s", err, out.String())
	}

	// Squeeze the tolerance until the same numbers regress.
	out.Reset()
	if err := run(&out, []string{"-budget", budget, "-tolerance", "0", results}); err == nil {
		t.Errorf("0%% tolerance accepted a slower result:\n%s", out.String())
	}
}
