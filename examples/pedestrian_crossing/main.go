// Pedestrian crossing under attack: the paper's DS-2 scenario with a
// Move_Out hijack of the crossing pedestrian, traced frame by frame.
// The printout shows the EV yielding in the golden run and driving into
// the conflict once the hijack displaces the perceived pedestrian.
// After the trace, the same attack is surveyed across a batch of seeds
// streamed off the engine's worker pool as episodes complete.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/perception"
	"github.com/robotack/robotack/internal/planner"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func main() {
	const seed = 3
	scn, err := scenario.Build(scenario.DS2, stats.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	w := scn.World
	cam := sensor.DefaultCamera()
	adsRNG := stats.NewRNG(seed*7919 + 13)
	ads := perception.NewDefault(cam, adsRNG)
	lidar := sensor.NewLidar(adsRNG.Split())
	pl := planner.New(planner.DefaultConfig(scn.CruiseSpeed))
	safety := planner.DefaultSafetyConfig()

	mcfg := core.DefaultConfig(core.ModeSmart)
	mcfg.Matcher.PreferDisappearFor = sim.ClassVehicle // pedestrians get Move_Out
	malware := core.New(mcfg, cam, nil, stats.NewRNG(seed*31337+7))

	ped := w.Actor(scn.TargetID)
	fmt.Println("frame  t(s)  EV speed  mode             ped gap  ped lat  attacking  delta")
	for i := 0; i < scn.Frames() && !w.Halted; i++ {
		frame := cam.Capture(w, i)
		malware.SetEVSpeed(w.EV.Speed)
		malware.Process(frame.Image, i)
		objs := ads.Process(frame.Image, lidar.Scan(w))
		d := pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		w.Step(d.Accel)
		if i%15 == 0 || w.Halted {
			fmt.Printf("%5d %5.1f %8.1f  %-16v %7.1f %8.2f %10v %6.1f\n",
				i, w.Time(), w.EV.Speed, d.Mode,
				ped.Pos.X-w.EV.Pos.X, ped.Pos.Y, malware.Attacking(),
				safety.GroundTruthDelta(w))
		}
	}
	log2 := malware.Log()
	fmt.Printf("\nattack: launched=%v vector=%v K=%d K'=%d\n",
		log2.Launched, log2.Vector, log2.K, log2.KPrime)
	fmt.Printf("outcome: halted(accident)=%v final EV speed=%.1f m/s\n", w.Halted, w.EV.Speed)

	// Survey the same attack across a batch of seeds: episodes stream
	// off the worker pool in completion order, each seeded from
	// (baseSeed, index) so the batch replays exactly.
	const surveyRuns = 8
	fmt.Printf("\nstreaming the same attack across %d seeds:\n", surveyRuns)
	jobs := make([]engine.Job, surveyRuns)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, jobSeed int64) (any, error) {
			return experiment.RunCtx(ctx, experiment.RunConfig{
				Scenario: scenario.DS2,
				Seed:     jobSeed,
				Attack: experiment.AttackSetup{
					Mode:               core.ModeSmart,
					PreferDisappearFor: sim.ClassVehicle,
				},
			})
		}
	}
	for r := range engine.New().Stream(seed, jobs) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		rr := r.Value.(experiment.RunResult)
		fmt.Printf("  seed %2d: launched=%-5v EB=%-5v accident=%-5v min delta=%5.1f m\n",
			r.Seed, rr.Launched, rr.EB, rr.Crashed, rr.MinDelta)
	}
}
