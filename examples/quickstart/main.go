// Quickstart: run the paper's DS-1 vehicle-following scenario twice —
// once clean, once with RoboTack on the camera link — and compare.
package main

import (
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

func main() {
	const seed = 7

	golden, err := experiment.Run(experiment.RunConfig{
		Scenario: scenario.DS1,
		Seed:     seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run:   EB=%v accident=%v min delta=%.1f m\n",
		golden.EB, golden.Crashed, golden.MinDelta)

	attacked, err := experiment.Run(experiment.RunConfig{
		Scenario: scenario.DS1,
		Seed:     seed,
		Attack: experiment.AttackSetup{
			Mode:               core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, // DS-1-Disappear campaign
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacked run: EB=%v accident=%v min delta=%.1f m\n",
		attacked.EB, attacked.Crashed, attacked.MinDelta)
	if attacked.Launched {
		fmt.Printf("RoboTack fired %v against the %v at frame %d for K=%d frames\n",
			attacked.Vector, attacked.TargetClass, attacked.LaunchFrame, attacked.K)
	}
}
