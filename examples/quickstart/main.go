// Quickstart: run the paper's DS-1 vehicle-following scenario twice —
// once clean, once with RoboTack on the camera link — and compare.
// Both episodes are submitted as one engine batch, so they run
// concurrently on the worker pool.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

func main() {
	const seed = 7

	// Both variants replay the same seed, so the only difference
	// between the two episodes is the malware.
	setups := []experiment.AttackSetup{
		{}, // golden (attack-free)
		{
			Mode:               core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, // DS-1-Disappear campaign
		},
	}
	eng := engine.New(engine.WithWorkers(len(setups)))
	results, err := engine.Map(eng, seed, setups,
		func(ctx context.Context, _ int64, setup experiment.AttackSetup) (experiment.RunResult, error) {
			return experiment.RunCtx(ctx, experiment.RunConfig{
				Scenario: scenario.DS1,
				Seed:     seed,
				Attack:   setup,
			})
		})
	if err != nil {
		log.Fatal(err)
	}

	golden, attacked := results[0], results[1]
	fmt.Printf("golden run:   EB=%v accident=%v min delta=%.1f m\n",
		golden.EB, golden.Crashed, golden.MinDelta)
	fmt.Printf("attacked run: EB=%v accident=%v min delta=%.1f m\n",
		attacked.EB, attacked.Crashed, attacked.MinDelta)
	if attacked.Launched {
		fmt.Printf("RoboTack fired %v against the %v at frame %d for K=%d frames\n",
			attacked.Vector, attacked.TargetClass, attacked.LaunchFrame, attacked.K)
	}
}
