// Search an attack policy and compare it with the paper's trigger.
// A tiny (1+lambda) evolution strategy mutates the fixed trigger's
// thresholds and injection geometry (internal/policy.Params), scoring
// each candidate on smart-mode DS-1/DS-2 campaigns; the winner is then
// evaluated side by side with the paper trigger on fresh seeds. The
// whole program is deterministic — run it twice and every byte of
// output matches.
package main

import (
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/policy"
	"github.com/robotack/robotack/internal/scenario"
)

func main() {
	eng := engine.New()
	battery := []experiment.Campaign{
		{Name: "DS-1", Scenario: scenario.DS1, Mode: core.ModeSmart, ExpectCrashes: true},
		{Name: "DS-2", Scenario: scenario.DS2, Mode: core.ModeSmart, ExpectCrashes: true},
	}

	res, err := policy.Train(eng, policy.TrainerConfig{
		Battery:     battery,
		Runs:        6,
		Generations: 3,
		Population:  4,
		BaseSeed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d candidates; best fitness %.4f (gen %d)\n",
		res.Evaluated, res.Best.Fitness, res.Best.Gen)

	// Evaluate paper trigger vs trained policy on seeds the search
	// never saw: same campaigns, same seeds, only the trigger differs.
	trained, err := res.Artifact.Build()
	if err != nil {
		log.Fatal(err)
	}
	const evalSeed, evalRuns = 777, 12
	for _, c := range battery {
		paper, err := experiment.RunCampaignOn(eng, c, evalRuns, evalSeed, nil)
		if err != nil {
			log.Fatal(err)
		}
		ours, err := experiment.RunCampaignOn(eng, c.WithPolicy("trained", trained), evalRuns, evalSeed, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: paper EB %d/%d crash %d  |  trained EB %d/%d crash %d\n",
			c.Name, paper.EBs, paper.Runs, paper.Crashes,
			ours.EBs, ours.Runs, ours.Crashes)
	}
}
