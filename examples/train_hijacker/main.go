// Train a safety-hijacker oracle (paper §IV-B) on forced-attack data
// for the Disappear vector and query it: "if I hide the pedestrian for
// k frames now, what will the safety potential be afterwards?" The
// forced-attack data-collection sweeps run in parallel on an engine.
package main

import (
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

func main() {
	spec := experiment.OracleSpec{
		Vector: core.VectorDisappear,
		Sweeps: []experiment.OracleSweep{{
			Scenario:           scenario.DS2,
			PreferDisappearFor: sim.ClassPedestrian,
			TargetClass:        sim.ClassPedestrian,
		}},
		DeltaGrid:     []float64{10, 15, 20, 25, 30, 36},
		SeedsPerPoint: 2,
	}
	eng := engine.New() // one worker per CPU; training stays deterministic
	oracles, infos, err := experiment.TrainOraclesOn(eng,
		[]experiment.OracleSpec{spec}, 4242,
		nn.TrainConfig{Epochs: 40, BatchSize: 32, LR: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	info := infos[0]
	fmt.Printf("trained on %d samples; validation MAE %.2f m (paper: ~1-1.5 m for pedestrians)\n",
		info.Samples, info.Result.ValMAE)

	oracle := oracles[core.VectorDisappear]
	state := core.State{
		Delta:   22,
		VRel:    geom.V(-11.5, 0),
		EVSpeed: 12.0,
	}
	fmt.Println("\nforecast: hide the pedestrian for k frames, predicted delta afterwards:")
	for _, k := range []int{5, 10, 15, 20, 25, 30} {
		fmt.Printf("  k=%2d -> delta %.1f m\n", k, oracle.PredictDelta(state, k))
	}

	sh := core.NewSafetyHijacker(core.DefaultSafetyHijackerConfig(), oracles)
	dec, err := sh.Decide(state, core.VectorDisappear, sim.ClassPedestrian)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsafety hijacker decision: attack=%v K=%d predicted delta=%.1f m\n",
		dec.Attack, dec.K, dec.PredictedDelta)
}
