// Scenario sweep: procedurally generate a batch of driving scenarios
// from the default scenegen space, run every one through the engine
// twice — attack-free and with RoboTack on the camera link — and report
// emergency-braking / crash rates per traffic-density bucket.
//
// This is the scenario-diversity campaign the paper could not run on
// five hand-built worlds: each seed maps to one distinct generated
// world, the whole sweep is deterministic, and both variants of each
// scenario replay the same episode seed.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/stats"
)

const (
	numScenarios = 60
	baseSeed     = 9000
)

type episode struct {
	spec     *scenegen.Spec
	seed     int64
	attacked bool
}

type outcome struct {
	actors   int
	attacked bool
	res      experiment.RunResult
}

func main() {
	gen := scenegen.NewGenerator(scenegen.DefaultSpace())

	// One generated world per seed; each runs golden and attacked.
	var eps []episode
	for i := 0; i < numScenarios; i++ {
		seed := int64(baseSeed + i)
		spec, err := gen.Generate(stats.NewRNG(seed), fmt.Sprintf("gen-%03d", i))
		if err != nil {
			log.Fatal(err)
		}
		eps = append(eps,
			episode{spec: spec, seed: seed, attacked: false},
			episode{spec: spec, seed: seed, attacked: true})
	}

	eng := engine.New()
	outs, err := engine.Map(eng, baseSeed, eps,
		func(ctx context.Context, _ int64, ep episode) (outcome, error) {
			setup := experiment.AttackSetup{}
			if ep.attacked {
				setup.Mode = core.ModeSmart
			}
			res, err := experiment.RunCtx(ctx, experiment.RunConfig{
				Source: scenario.FromSpec(ep.spec),
				Seed:   ep.seed,
				Attack: setup,
			})
			if err != nil {
				return outcome{}, err
			}
			return outcome{actors: len(ep.spec.Actors), attacked: ep.attacked, res: res}, nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// Bucket by initial traffic density (actor count incl. the target).
	type bucket struct {
		label                  string
		n                      int
		goldenEB, goldenCrash  int
		attEB, attCrash, fired int
	}
	buckets := []*bucket{
		{label: "sparse (1-2 actors)"},
		{label: "medium (3-4 actors)"},
		{label: "dense  (5+ actors)"},
	}
	pick := func(actors int) *bucket {
		switch {
		case actors <= 2:
			return buckets[0]
		case actors <= 4:
			return buckets[1]
		default:
			return buckets[2]
		}
	}
	for _, o := range outs {
		b := pick(o.actors)
		if o.attacked {
			if o.res.EB {
				b.attEB++
			}
			if o.res.Crashed {
				b.attCrash++
			}
			if o.res.Launched {
				b.fired++
			}
		} else {
			b.n++
			if o.res.EB {
				b.goldenEB++
			}
			if o.res.Crashed {
				b.goldenCrash++
			}
		}
	}

	fmt.Printf("scenario sweep: %d generated scenarios x {golden, smart attack}\n\n", numScenarios)
	fmt.Printf("%-22s %9s %12s %12s %12s %12s %9s\n",
		"density", "scenarios", "golden EB", "golden crash", "attack EB", "attack crash", "launched")
	pct := func(k, n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(k)/float64(n))
	}
	for _, b := range buckets {
		fmt.Printf("%-22s %9d %12s %12s %12s %12s %9s\n",
			b.label, b.n,
			pct(b.goldenEB, b.n), pct(b.goldenCrash, b.n),
			pct(b.attEB, b.n), pct(b.attCrash, b.n), pct(b.fired, b.n))
	}
}
