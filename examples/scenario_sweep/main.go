// Scenario sweep: procedurally generate a batch of driving scenarios
// from the default scenegen space, run every one through the engine
// twice — attack-free and with RoboTack on the camera link — and report
// emergency-braking / crash rates per traffic-density bucket.
//
// This is the scenario-diversity campaign the paper could not run on
// five hand-built worlds: each seed maps to one distinct generated
// world, the whole sweep is deterministic, and both variants of each
// scenario replay the same episode seed.
//
// Every episode also lands in a results store as a persistent record
// (pass -out sweep.jsonl to keep it on disk); the closing
// golden-vs-attack comparison is computed by reading the records back
// out of the store, exactly as a later analysis — or another code
// version's diff — would.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/stats"
)

const (
	numScenarios = 60
	baseSeed     = 9000
)

type episode struct {
	spec     *scenegen.Spec
	seed     int64
	attacked bool
}

type outcome struct {
	actors   int
	attacked bool
	res      experiment.RunResult
}

func main() {
	outPath := flag.String("out", "", "persist episode/campaign records to this JSONL store")
	flag.Parse()

	gen := scenegen.NewGenerator(scenegen.DefaultSpace())

	// One generated world per seed; each runs golden and attacked.
	var eps []episode
	for i := 0; i < numScenarios; i++ {
		seed := int64(baseSeed + i)
		spec, err := gen.Generate(stats.NewRNG(seed), fmt.Sprintf("gen-%03d", i))
		if err != nil {
			log.Fatal(err)
		}
		eps = append(eps,
			episode{spec: spec, seed: seed, attacked: false},
			episode{spec: spec, seed: seed, attacked: true})
	}

	eng := engine.New()
	outs, err := engine.Map(eng, baseSeed, eps,
		func(ctx context.Context, _ int64, ep episode) (outcome, error) {
			setup := experiment.AttackSetup{}
			if ep.attacked {
				setup.Mode = core.ModeSmart
			}
			res, err := experiment.RunCtx(ctx, experiment.RunConfig{
				Source: scenario.FromSpec(ep.spec),
				Seed:   ep.seed,
				Attack: setup,
			})
			if err != nil {
				return outcome{}, err
			}
			return outcome{actors: len(ep.spec.Actors), attacked: ep.attacked, res: res}, nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// Bucket by initial traffic density (actor count incl. the target).
	type bucket struct {
		label                  string
		n                      int
		goldenEB, goldenCrash  int
		attEB, attCrash, fired int
	}
	buckets := []*bucket{
		{label: "sparse (1-2 actors)"},
		{label: "medium (3-4 actors)"},
		{label: "dense  (5+ actors)"},
	}
	pick := func(actors int) *bucket {
		switch {
		case actors <= 2:
			return buckets[0]
		case actors <= 4:
			return buckets[1]
		default:
			return buckets[2]
		}
	}
	for _, o := range outs {
		b := pick(o.actors)
		if o.attacked {
			if o.res.EB {
				b.attEB++
			}
			if o.res.Crashed {
				b.attCrash++
			}
			if o.res.Launched {
				b.fired++
			}
		} else {
			b.n++
			if o.res.EB {
				b.goldenEB++
			}
			if o.res.Crashed {
				b.goldenCrash++
			}
		}
	}

	// Persist every episode as a record: the sweep's two campaigns
	// become durable artifacts a later analysis (or robotack-serve, or
	// a cross-version diff) can consume without re-simulating.
	var store results.Store = results.NewMemStore()
	if *outPath != "" {
		fs, err := results.Open(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		store = fs
	}
	campaignKey := func(attacked bool) (string, core.Mode) {
		if attacked {
			return "sweep-smart", core.ModeSmart
		}
		return "sweep-golden", 0
	}
	for j, o := range outs {
		key, mode := campaignKey(o.attacked)
		ep := experiment.RecordEpisode(key, j/2, eps[j].seed, eps[j].spec.Name, mode, true, o.res)
		if err := store.Append(ep); err != nil {
			log.Fatal(err)
		}
	}
	for _, attacked := range []bool{false, true} {
		key, mode := campaignKey(attacked)
		stored, err := store.Episodes(key)
		if err != nil {
			log.Fatal(err)
		}
		rec := results.Aggregate(results.NewCampaign(key, "generated", mode, true, baseSeed), stored)
		if err := store.PutCampaign(rec); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("scenario sweep: %d generated scenarios x {golden, smart attack}\n\n", numScenarios)
	fmt.Printf("%-22s %9s %12s %12s %12s %12s %9s\n",
		"density", "scenarios", "golden EB", "golden crash", "attack EB", "attack crash", "launched")
	pct := func(k, n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(k)/float64(n))
	}
	for _, b := range buckets {
		fmt.Printf("%-22s %9d %12s %12s %12s %12s %9s\n",
			b.label, b.n,
			pct(b.goldenEB, b.n), pct(b.goldenCrash, b.n),
			pct(b.attEB, b.n), pct(b.attCrash, b.n), pct(b.fired, b.n))
	}

	// The headline attack effect, computed purely from stored records.
	recs, err := store.Campaigns()
	if err != nil || len(recs) != 2 {
		log.Fatalf("stored campaigns: %v (%d records)", err, len(recs))
	}
	d := results.DiffRecords("golden → smart", &recs[0], &recs[1])
	fmt.Printf("\nfrom the results store (%d stored campaigns):\n", len(recs))
	fmt.Printf("  attack moved EB rate %+.0f%% and crash rate %+.0f%% across %d generated worlds\n",
		100*d.EBRateDelta, 100*d.CrashRateDelta, numScenarios)
	if *outPath != "" {
		fmt.Printf("  records saved to %s — try: robotack-serve -store %s\n", *outPath, *outPath)
	}
}
