// Intrusion detection view (paper §VI-E): an IDS that watches the
// frame-to-frame displacement of each detected bounding box against the
// characterized detector-noise envelope (Fig. 5). RoboTack keeps every
// per-frame shift within ~1 sigma of that envelope, so its hijack is
// indistinguishable from inference noise; a crude attacker who yanks
// the box faster is flagged immediately. The three monitored attackers
// run as one engine batch.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/track"
)

// attacker is one monitored box trajectory: a name and the lateral
// offset the attack injects at frame i.
type attacker struct {
	name     string
	offsetFn func(i int) float64
}

func main() {
	trkCfg := track.DefaultConfig()
	np := trkCfg.VehicleNoise
	const boxW = 14.0

	// The IDS alarm: an attack-added per-frame displacement beyond the
	// characterized 1-sigma envelope (normalized by box width).
	alarm := np.SigmaX

	monitor := func(a attacker) float64 {
		// The IDS inspects the attacker-controlled signal itself: the
		// deterministic detector isolates what the attack adds on top
		// of natural noise (which the envelope already accounts for).
		detCfg := detect.DefaultConfig()
		detCfg.DisableNoise = true
		det := detect.New(detCfg, nil)
		img := sensor.NewImage(192, 108)
		base := geom.R(88, 50, boxW, 12)

		worst, prev := 0.0, math.NaN()
		for i := 0; i < 90; i++ {
			img.Clear(0.05)
			img.FillRectAA(base.Translate(geom.V(a.offsetFn(i), 0)), 0.9)
			dets := det.Detect(img)
			if len(dets) != 1 {
				prev = math.NaN() // natural miss; the IDS tolerates those
				continue
			}
			u := dets[0].Box.Center().X
			if i > 40 && !math.IsNaN(prev) {
				if d := math.Abs(u-prev) / boxW; d > worst {
					worst = d
				}
			}
			prev = u
		}
		return worst
	}

	drift := 0.9 * np.SigmaX * boxW / 4 // RoboTack-style sub-sigma drift
	attackers := []attacker{
		{"no attack", func(int) float64 { return 0 }},
		{"RoboTack drift (<1 sigma)", func(i int) float64 {
			if i <= 40 {
				return 0
			}
			return math.Min(float64(i-40)*drift, 20)
		}},
		{"crude yank (2 sigma/frame)", func(i int) float64 {
			if i <= 40 {
				return 0
			}
			return math.Min(float64(i-40)*2*np.SigmaX*boxW, 45)
		}},
	}

	worsts, err := engine.Map(engine.New(), 0, attackers,
		func(_ context.Context, _ int64, a attacker) (float64, error) {
			return monitor(a), nil
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("IDS monitor: frame-to-frame box displacement vs the Fig. 5 noise envelope")
	for i, a := range attackers {
		verdict := "PASSES as noise"
		if worsts[i] > alarm {
			verdict = "FLAGGED by the IDS"
		}
		fmt.Printf("%-32s max |du|/W = %5.2f (alarm at %.2f)  -> %s\n", a.name, worsts[i], alarm, verdict)
	}
}
