// Package robotack's root benchmark harness regenerates every table
// and figure of the paper's evaluation (§VI) as testing.B benchmarks.
// Rates are reported via b.ReportMetric; absolute wall-clock numbers
// reflect this simulator, not the authors' GPU testbed — the claim
// being reproduced is the SHAPE of each result (see EXPERIMENTS.md).
package robotack_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/perception"
	"github.com/robotack/robotack/internal/planner"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// benchRuns is the per-campaign episode count used inside benchmarks —
// a scaled-down Table II (the paper used 101-185 runs per campaign; use
// cmd/robotack-campaign -runs 150 for paper scale).
const benchRuns = 20

func campaignMetrics(b *testing.B, c experiment.Campaign, oracles map[core.Vector]core.Oracle) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCampaign(c, benchRuns, 4000+int64(i), oracles)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.EBRate(), "EB%")
		b.ReportMetric(100*res.CrashRate(), "crash%")
		b.ReportMetric(res.MedianK(), "medK")
		b.ReportMetric(res.MedianKPrime(), "medK'")
	}
}

// BenchmarkTable2 regenerates one Table II row per sub-benchmark.
func BenchmarkTable2(b *testing.B) {
	for _, c := range experiment.TableIICampaigns() {
		b.Run(c.Name, func(b *testing.B) {
			campaignMetrics(b, c, nil)
		})
	}
}

// BenchmarkFig5 regenerates the detector characterization; the reported
// metrics are the distribution fits of Fig. 5.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiment.Characterize(3000, int64(i)+1)
		b.ReportMetric(c.Pedestrian.MissRuns.P99, "ped-p99-frames")
		b.ReportMetric(c.Vehicle.MissRuns.P99, "veh-p99-frames")
		b.ReportMetric(c.Pedestrian.ErrX.Sigma, "ped-sigma-x")
		b.ReportMetric(c.Vehicle.ErrX.Sigma, "veh-sigma-x")
	}
}

// BenchmarkFig6 compares min safety potential with and without the
// safety hijacker for the DS-1/DS-2 campaigns (medians of the paper's
// boxplots).
func BenchmarkFig6(b *testing.B) {
	campaigns := experiment.TableIICampaigns()[:4] // the four Fig. 6 panels
	for _, c := range campaigns {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				withSH, err := experiment.RunCampaign(c, benchRuns, 6000, nil)
				if err != nil {
					b.Fatal(err)
				}
				noSH, err := experiment.RunCampaign(c.WithoutSH(), benchRuns, 6000, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.Median(withSH.MinDeltas), "R-med-delta")
				b.ReportMetric(stats.Median(noSH.MinDeltas), "noSH-med-delta")
			}
		})
	}
}

// BenchmarkFig7 reports the shift time K' per attack vector and class.
func BenchmarkFig7(b *testing.B) {
	for _, c := range experiment.TableIICampaigns()[:6] {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCampaign(c, benchRuns, 7000, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MedianKPrime(), "medK'")
			}
		})
	}
}

// BenchmarkFig8 trains a small safety-hijacker oracle and reports its
// prediction error and the success-vs-error relationship.
func BenchmarkFig8(b *testing.B) {
	spec := experiment.OracleSpec{
		Vector: core.VectorMoveOut,
		Sweeps: []experiment.OracleSweep{{
			Scenario:           scenario.DS1,
			PreferDisappearFor: sim.ClassPedestrian, // so vehicles get Move_Out
			TargetClass:        sim.ClassVehicle,
		}},
		DeltaGrid:     []float64{12, 18, 24, 30, 36},
		SeedsPerPoint: 1,
	}
	for i := 0; i < b.N; i++ {
		_, infos, err := experiment.TrainOracles([]experiment.OracleSpec{spec}, 8000,
			nn.TrainConfig{Epochs: 25, BatchSize: 32, LR: 1e-3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(infos[0].Result.ValMAE, "val-MAE-m")
		b.ReportMetric(float64(infos[0].Samples), "samples")
	}
}

// BenchmarkHeadline aggregates the §VI headline comparison: RoboTack vs
// the random baseline.
func BenchmarkHeadline(b *testing.B) {
	campaigns := experiment.TableIICampaigns()
	for i := 0; i < b.N; i++ {
		var smart, random []experiment.CampaignResult
		for _, c := range campaigns {
			res, err := experiment.RunCampaign(c, benchRuns/2, 9000, nil)
			if err != nil {
				b.Fatal(err)
			}
			if c.Mode == core.ModeRandom {
				random = append(random, res)
			} else {
				smart = append(smart, res)
			}
		}
		s, r := experiment.Summarize(experiment.Records(smart)), experiment.Summarize(experiment.Records(random))
		b.ReportMetric(100*float64(s.EBs)/float64(s.Runs), "robotack-EB%")
		b.ReportMetric(100*float64(r.EBs)/float64(max(r.Runs, 1)), "random-EB%")
		b.ReportMetric(100*float64(s.Crashes)/float64(max(s.CrashEligibleRuns, 1)), "robotack-crash%")
		b.ReportMetric(100*float64(r.Crashes)/float64(max(r.CrashEligibleRuns, 1)), "random-crash%")
	}
}

// BenchmarkEngineParallel compares campaign throughput on a 1-worker
// engine against the full GOMAXPROCS pool; the episodes/s metric is
// the parallel-campaign speedup the engine buys. Results are
// bit-identical across the two sub-benchmarks by construction.
func BenchmarkEngineParallel(b *testing.B) {
	c := experiment.Campaign{
		Name:               "DS-2-Disappear-R",
		Scenario:           scenario.DS2,
		Mode:               core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian,
		ExpectCrashes:      true,
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := engine.New(engine.WithWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCampaignOn(eng, c, benchRuns, 4000, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Runs != benchRuns {
					b.Fatalf("ran %d episodes, want %d", res.Runs, benchRuns)
				}
			}
			b.ReportMetric(float64(benchRuns*b.N)/b.Elapsed().Seconds(), "episodes/s")
		})
	}
}

// Microbenchmarks of the hot paths.

// BenchmarkFrame measures one steady-state closed-loop frame: camera
// capture, LiDAR scan, the full ADS perception stack and the planner,
// feeding the EV's actuation back into the world. DS-1 (car following)
// reaches a stable follow state, so the loop measures the warm frame
// step indefinitely. The allocs/op metric is the pipeline's per-frame
// GC pressure — the quantity the pooled pipeline drives to zero.
func BenchmarkFrame(b *testing.B) {
	scn, err := scenario.DS1.Instantiate(stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	w := scn.World
	cam := sensor.DefaultCamera()
	adsRNG := stats.NewRNG(7919)
	ads := perception.NewDefault(cam, adsRNG)
	lidar := sensor.NewLidar(adsRNG.Split())
	pl := planner.New(planner.DefaultConfig(scn.CruiseSpeed))
	var buf sensor.CaptureBuffer
	step := func(i int) {
		frame := cam.CaptureInto(&buf, w, i)
		objs := ads.Process(frame.Image, lidar.Scan(w))
		d := pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		w.Step(d.Accel)
		w.Halted = false // keep the loop hot past any proximity halt
	}
	for i := 0; i < 45; i++ { // warm up: tracks confirmed, fusion settled
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(45 + i)
	}
}

// BenchmarkEpisode measures full closed-loop episodes end to end —
// the unit of work every campaign fans out. The attacked variant runs
// the malware's second perception stack and the analytic safety
// hijacker on top of the golden pipeline.
func BenchmarkEpisode(b *testing.B) {
	cases := []struct {
		name string
		cfg  experiment.RunConfig
	}{
		{"golden-DS1", experiment.RunConfig{Scenario: scenario.DS1}},
		{"attacked-DS2", experiment.RunConfig{
			Scenario: scenario.DS2,
			Attack:   experiment.AttackSetup{Mode: core.ModeSmart, PreferDisappearFor: sim.ClassPedestrian},
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := c.cfg
				cfg.Seed = int64(i)
				if _, err := experiment.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "episodes/s")
		})
	}
}

// BenchmarkCampaignThroughput measures a full campaign (engine fan-out
// included) in episodes per second — the number the ROADMAP's
// million-episode sweeps divide by.
func BenchmarkCampaignThroughput(b *testing.B) {
	c := experiment.Campaign{
		Name:               "DS-2-Disappear-R",
		Scenario:           scenario.DS2,
		Mode:               core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian,
		ExpectCrashes:      true,
	}
	eng := engine.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCampaignOn(eng, c, benchRuns, 4000, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Runs != benchRuns {
			b.Fatalf("ran %d episodes, want %d", res.Runs, benchRuns)
		}
	}
	b.ReportMetric(float64(benchRuns*b.N)/b.Elapsed().Seconds(), "episodes/s")
}

func BenchmarkEpisodeDS1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(experiment.RunConfig{
			Scenario: scenario.DS1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpisodeDS2Attacked(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(experiment.RunConfig{
			Scenario: scenario.DS2, Seed: int64(i),
			Attack: experiment.AttackSetup{Mode: core.ModeSmart, PreferDisappearFor: sim.ClassPedestrian},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignThroughputBatched measures campaign throughput under
// lockstep episode lanes (engine.WithEpisodeBatch). The nn sub-benchmarks
// run trained-style NN oracles — the case batching exists for: lanes
// coalesce the safety hijacker's per-decision queries into blocked
// GEMM forward passes. The analytic sub-benchmark proves the lane
// machinery is near-free when no episode ever queries a network.
// Results are byte-identical across batch sizes by construction
// (TestBatchedCampaignBitIdentical).
func BenchmarkCampaignThroughputBatched(b *testing.B) {
	c := experiment.Campaign{
		Name:               "DS-2-Disappear-R",
		Scenario:           scenario.DS2,
		Mode:               core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian,
		ExpectCrashes:      true,
	}
	rng := stats.NewRNG(5)
	oracles := map[core.Vector]core.Oracle{
		core.VectorDisappear: &core.NNOracle{Net: nn.NewRegressor(core.EncodeDim, rng)},
		core.VectorMoveOut:   &core.NNOracle{Net: nn.NewRegressor(core.EncodeDim, rng)},
	}
	cases := []struct {
		name    string
		oracles map[core.Vector]core.Oracle
		batch   int
	}{
		{"nn/batch=1", oracles, 1},
		{"nn/batch=4", oracles, 4},
		{"nn/batch=8", oracles, 8},
		{"analytic/batch=4", nil, 4},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			eng := engine.New(engine.WithEpisodeBatch(tc.batch))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCampaignOn(eng, c, benchRuns, 4000, tc.oracles)
				if err != nil {
					b.Fatal(err)
				}
				if res.Runs != benchRuns {
					b.Fatalf("ran %d episodes, want %d", res.Runs, benchRuns)
				}
			}
			b.ReportMetric(float64(benchRuns*b.N)/b.Elapsed().Seconds(), "episodes/s")
		})
	}
}
