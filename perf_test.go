// Allocation-regression tests for the frame pipeline: the steady-state
// closed loop — camera capture, LiDAR scan, detector, tracker, fusion,
// planner, world step — must perform zero heap allocations once warm.
// CI fails on any regression.
package robotack_test

import (
	"testing"

	"github.com/robotack/robotack/internal/perception"
	"github.com/robotack/robotack/internal/planner"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/stats"
)

// TestFrameStepZeroAllocs warms the full ADS pipeline on DS-1 (car
// following: every stage active — detections, confirmed tracks, fused
// objects, a braking target) and then requires the warm frame step to
// allocate nothing.
func TestFrameStepZeroAllocs(t *testing.T) {
	scn, err := scenario.DS1.Instantiate(stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	w := scn.World
	cam := sensor.DefaultCamera()
	adsRNG := stats.NewRNG(7919)
	ads := perception.NewDefault(cam, adsRNG)
	lidar := sensor.NewLidar(adsRNG.Split())
	pl := planner.New(planner.DefaultConfig(scn.CruiseSpeed))
	var buf sensor.CaptureBuffer

	frameIdx := 0
	step := func() {
		frame := cam.CaptureInto(&buf, w, frameIdx)
		objs := ads.Process(frame.Image, lidar.Scan(w))
		d := pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		w.Step(d.Accel)
		w.Halted = false
		frameIdx++
	}
	// Warm up past track confirmation, fusion registration and the
	// planner's follow state, and long enough for the tracker/fusion
	// free lists to reach their high-water mark (the noisy detector
	// births spurious tentative tracks; once enough have lived and
	// died, every birth reuses a recycled one). The episode is
	// deterministic in the seeds above, so this is a fixed trajectory,
	// not a flaky threshold.
	for i := 0; i < 600; i++ {
		step()
	}
	if got := ads.Fusion.Objects(); len(got) == 0 {
		t.Fatal("warm-up did not register any fused object; the zero-alloc claim would be vacuous")
	}
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 {
		t.Fatalf("warm frame step allocates %.1f times per frame, want 0", allocs)
	}
}

// TestEpisodeResetLowAlloc guards the per-episode reset path: resetting
// the warm pipeline stack for a new episode must not rebuild it.
func TestEpisodeResetLowAlloc(t *testing.T) {
	scn, err := scenario.DS1.Instantiate(stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	w := scn.World
	cam := sensor.DefaultCamera()
	adsRNG := stats.NewRNG(7919)
	ads := perception.NewDefault(cam, adsRNG)
	lidar := sensor.NewLidar(adsRNG.Split())
	pl := planner.New(planner.DefaultConfig(scn.CruiseSpeed))
	var buf sensor.CaptureBuffer
	for i := 0; i < 30; i++ {
		frame := cam.CaptureInto(&buf, w, i)
		objs := ads.Process(frame.Image, lidar.Scan(w))
		pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		w.Step(0)
	}
	allocs := testing.AllocsPerRun(50, func() {
		ads.Reset()
		pl.Reset()
	})
	// Pipeline.Reset nils the lastDetections slice (its documented
	// post-Reset state); everything else must be reused in place.
	if allocs > 0 {
		t.Fatalf("episode reset allocates %.1f times, want 0", allocs)
	}
}
