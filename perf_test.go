// Allocation-regression tests for the frame pipeline: the steady-state
// closed loop — camera capture, LiDAR scan, detector, tracker, fusion,
// planner, world step — must perform zero heap allocations once warm.
// CI fails on any regression.
package robotack_test

import (
	"testing"
	"time"

	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/perception"
	"github.com/robotack/robotack/internal/planner"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/stats"
)

// TestFrameStepZeroAllocs warms the full ADS pipeline on DS-1 (car
// following: every stage active — detections, confirmed tracks, fused
// objects, a braking target) and then requires the warm frame step to
// allocate nothing. The step carries the same per-stage metric
// recording the campaign runner performs (shard-pinned histogram and
// counter handles, one tick per stage) plus an active sampled episode
// span annotated per stage, so the proof covers the fully instrumented
// loop — metrics AND tracing — not a stripped-down one.
func TestFrameStepZeroAllocs(t *testing.T) {
	scn, err := scenario.DS1.Instantiate(stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	w := scn.World
	cam := sensor.DefaultCamera()
	adsRNG := stats.NewRNG(7919)
	ads := perception.NewDefault(cam, adsRNG)
	lidar := sensor.NewLidar(adsRNG.Split())
	pl := planner.New(planner.DefaultConfig(scn.CruiseSpeed))
	var buf sensor.CaptureBuffer

	// The runner's stage series, registered the same get-or-create way
	// (internal/experiment/obs.go); the help strings must match.
	stageBuckets := obs.ExpBuckets(1e-6, 2, 14)
	stage := func(name string) obs.HistogramHandle {
		return obs.NewHistogram("robotack_frame_stage_seconds",
			"Frame-pipeline stage latency by stage.",
			stageBuckets, obs.Label{Key: "stage", Value: name}).Handle()
	}
	sensorH, lidarH := stage("sensor"), stage("lidar")
	detectH, trackH := stage("detect"), stage("track")
	fuseH, planH := stage("fusion"), stage("plan")
	framesH := obs.NewCounter("robotack_frames_total", "Simulation frames executed.").Handle()

	// The runner's tracing path: a sampled episode span annotated per
	// stage (internal/experiment/obs.go's stageClock). Sampling 1-in-1
	// forces the annotated branch, the one that must stay free.
	tracer := trace.New("perf", trace.NopSink{}, trace.WithSampleEvery(1))
	tid := trace.DeriveTraceID("perf", 1)
	sp := tracer.StartEpisode(trace.SpanContext{Tracer: tracer, TraceID: tid}, 1)
	defer sp.Finish()
	if !sp.Sampled() {
		t.Fatal("sample-every-1 episode span not sampled; the traced zero-alloc claim would be vacuous")
	}

	tick := func(prev *time.Time, h obs.HistogramHandle, stage int) {
		now := time.Now()
		d := now.Sub(*prev)
		h.Observe(d.Seconds())
		sp.StageAdd(stage, d)
		*prev = now
	}

	frameIdx := 0
	step := func() {
		clk := time.Now()
		frame := cam.CaptureInto(&buf, w, frameIdx)
		tick(&clk, sensorH, perception.StageSensor)
		scan := lidar.Scan(w)
		tick(&clk, lidarH, perception.StageLidar)
		dets := ads.StageDetect(frame.Image)
		tick(&clk, detectH, perception.StageDetectIdx)
		tracks := ads.StageTrack(dets)
		tick(&clk, trackH, perception.StageTrackIdx)
		objs := ads.StageFuse(tracks, scan)
		tick(&clk, fuseH, perception.StageFusionIdx)
		d := pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		tick(&clk, planH, perception.StagePlan)
		w.Step(d.Accel)
		framesH.Add(1)
		sp.FrameDone(true)
		w.Halted = false
		frameIdx++
	}
	// Warm up past track confirmation, fusion registration and the
	// planner's follow state, and long enough for the tracker/fusion
	// free lists to reach their high-water mark (the noisy detector
	// births spurious tentative tracks; once enough have lived and
	// died, every birth reuses a recycled one). The episode is
	// deterministic in the seeds above, so this is a fixed trajectory,
	// not a flaky threshold.
	for i := 0; i < 600; i++ {
		step()
	}
	if got := ads.Fusion.Objects(); len(got) == 0 {
		t.Fatal("warm-up did not register any fused object; the zero-alloc claim would be vacuous")
	}
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 {
		t.Fatalf("warm frame step allocates %.1f times per frame, want 0", allocs)
	}
}

// TestEpisodeResetLowAlloc guards the per-episode reset path: resetting
// the warm pipeline stack for a new episode must not rebuild it.
func TestEpisodeResetLowAlloc(t *testing.T) {
	scn, err := scenario.DS1.Instantiate(stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	w := scn.World
	cam := sensor.DefaultCamera()
	adsRNG := stats.NewRNG(7919)
	ads := perception.NewDefault(cam, adsRNG)
	lidar := sensor.NewLidar(adsRNG.Split())
	pl := planner.New(planner.DefaultConfig(scn.CruiseSpeed))
	var buf sensor.CaptureBuffer
	for i := 0; i < 30; i++ {
		frame := cam.CaptureInto(&buf, w, i)
		objs := ads.Process(frame.Image, lidar.Scan(w))
		pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		w.Step(0)
	}
	allocs := testing.AllocsPerRun(50, func() {
		ads.Reset()
		pl.Reset()
	})
	// Pipeline.Reset nils the lastDetections slice (its documented
	// post-Reset state); everything else must be reused in place.
	if allocs > 0 {
		t.Fatalf("episode reset allocates %.1f times, want 0", allocs)
	}
}
