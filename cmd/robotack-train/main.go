// Command robotack-train generates the safety hijacker's training data
// (forced attacks with predefined delta_inject and k, paper §IV-B),
// trains one neural oracle per attack vector, reports validation error,
// and optionally saves the weights. The forced-attack sweeps fan out
// across an engine worker pool; training stays deterministic in -seed
// for any -workers value.
//
// Usage:
//
//	robotack-train -out models/
//	robotack-train -workers 4
//	robotack-train -report training.json   # persist the training report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 9000, "base seed")
		epochs  = flag.Int("epochs", 60, "training epochs")
		out     = flag.String("out", "", "directory to save model JSON files (optional)")
		report  = flag.String("report", "", "write the per-vector training report (samples, MSE/MAE) as JSON")
		workers = flag.Int("workers", engine.DefaultWorkers(), "parallel episode workers")
		logCfg  obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.WithWorkers(*workers), engine.WithContext(ctx))
	logger.Debug("oracle training starting", "seed", *seed, "epochs", *epochs, "workers", eng.Workers())

	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = *epochs
	_, infos, err := experiment.TrainOraclesOn(eng, experiment.DefaultOracleSpecs(), *seed, cfg)
	if err != nil {
		return err
	}
	for _, info := range infos {
		fmt.Printf("%v: %d samples, train MSE %.2f, validation MSE %.2f, validation MAE %.2f m\n",
			info.Vector, info.Samples, info.Result.TrainMSE, info.Result.ValMSE, info.Result.ValMAE)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			name := strings.ToLower(strings.ReplaceAll(info.Vector.String(), "_", "-"))
			path := filepath.Join(*out, name+".json")
			if err := info.Net.Save(path); err != nil {
				return err
			}
			fmt.Printf("  saved %s\n", path)
		}
	}
	if *report != "" {
		type vectorReport struct {
			Vector   string  `json:"vector"`
			Samples  int     `json:"samples"`
			TrainMSE float64 `json:"train_mse"`
			ValMSE   float64 `json:"val_mse"`
			ValMAE   float64 `json:"val_mae_m"`
		}
		reports := make([]vectorReport, 0, len(infos))
		for _, info := range infos {
			reports = append(reports, vectorReport{
				Vector:   info.Vector.String(),
				Samples:  info.Samples,
				TrainMSE: info.Result.TrainMSE,
				ValMSE:   info.Result.ValMSE,
				ValMAE:   info.Result.ValMAE,
			})
		}
		raw, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*report, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("training report written to %s\n", *report)
	}
	fmt.Println("paper reference: predictions within ~1-1.5 m (pedestrians) and ~5 m (vehicles)")
	return nil
}
