// Command robotack-worker executes queued campaign runs for a
// robotack-serve instance on another (or the same) machine: it leases
// jobs over HTTP, runs the episodes on a local engine pool,
// heartbeats so the server knows the job is alive, and streams every
// completed episode record back into the served results store.
// Several workers against one server drain the queue concurrently;
// losing a worker mid-run costs nothing — the lease expires, the job
// requeues, and the next executor resumes from the episodes that
// already landed, bit-identically.
//
// Usage:
//
//	robotack-worker -server http://queuehost:8077
//	robotack-worker -server http://queuehost:8077 -name rack7 -workers 8
//	robotack-worker -server http://queuehost:8077 -poll 2s
//	robotack-worker -server http://queuehost:8077 -batch 64
//	robotack-worker -server http://queuehost:8077 -metrics :9100 -pprof
//	robotack-worker -server http://queuehost:8077 -log-json -ftdc worker.ftdc
//
// On SIGINT/SIGTERM the worker stops leasing, aborts its in-flight
// job and hands it back to the queue (fail with requeue), then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/runq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	var (
		server    = flag.String("server", "", "robotack-serve base URL, e.g. http://host:8077")
		name      = flag.String("name", fmt.Sprintf("%s-%d", host, os.Getpid()), "worker name reported in leases")
		workers   = flag.Int("workers", engine.DefaultWorkers(), "engine workers per job")
		poll      = flag.Duration("poll", time.Second, "sleep between leases when the queue is empty")
		batch     = flag.Int("batch", runq.DefaultPostBatch, "completed episodes buffered per episode-stream POST (result-upload batching, NOT inference batching — see -episode-batch)")
		epBatch   = flag.Int("episode-batch", 1, "lockstep episode lanes per engine worker; lanes coalesce same-network oracle queries into batched inference (1: off)")
		metrics   = flag.String("metrics", "", "serve Prometheus text at GET /metrics on this address, e.g. :9100 (empty: no metrics server)")
		pprofOn   = flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ (needs -metrics)")
		ftdcPath  = flag.String("ftdc", "", "append periodic binary metric snapshots to this file (decode with robotack-ftdc)")
		ftdcEvery = flag.Duration("ftdc-interval", time.Second, "FTDC snapshot interval")
		traceOn   = flag.Bool("trace", true, "forward span traces for traced jobs to the server's trace sink")
		traceN    = flag.Int("trace-sample", 0, "episode-span sampling, 1-in-N (0: default 1-in-16)")
		logCfg    obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *server == "" {
		return fmt.Errorf("-server is required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1 (got %d)", *batch)
	}
	if *pprofOn && *metrics == "" {
		return fmt.Errorf("-pprof needs -metrics to provide the listen address")
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", obs.Handler(obs.Default))
		if *pprofOn {
			obs.RegisterPprof(mux)
		}
		msrv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics server failed", "addr", *metrics, "err", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = msrv.Shutdown(shutCtx)
		}()
	}

	if *ftdcPath != "" {
		capture, err := obs.StartCapture(obs.Default, *ftdcPath, *ftdcEvery)
		if err != nil {
			return fmt.Errorf("ftdc capture: %w", err)
		}
		defer func() {
			if err := capture.Stop(); err != nil {
				logger.Warn("ftdc capture stop", "err", err)
			}
		}()
	}

	w := &runq.Worker{
		Server:       *server,
		Name:         *name,
		Workers:      *workers,
		EpisodeBatch: *epBatch,
		Poll:         *poll,
		Batch:        *batch,
		Log:          logger,
		NoTrace:      !*traceOn,
		TraceSample:  *traceN,
	}
	logger.Info("worker starting",
		"worker", *name, "server", *server, "engine_workers", *workers,
		"episode_batch", *epBatch, "metrics", *metrics, "pprof", *pprofOn)
	if err := w.Run(ctx); err != nil {
		return err
	}
	logger.Info("worker shut down", "worker", *name)
	return nil
}
