// Command robotack-worker executes queued campaign runs for a
// robotack-serve instance on another (or the same) machine: it leases
// jobs over HTTP, runs the episodes on a local engine pool,
// heartbeats so the server knows the job is alive, and streams every
// completed episode record back into the served results store.
// Several workers against one server drain the queue concurrently;
// losing a worker mid-run costs nothing — the lease expires, the job
// requeues, and the next executor resumes from the episodes that
// already landed, bit-identically.
//
// Usage:
//
//	robotack-worker -server http://queuehost:8077
//	robotack-worker -server http://queuehost:8077 -name rack7 -workers 8
//	robotack-worker -server http://queuehost:8077 -poll 2s
//	robotack-worker -server http://queuehost:8077 -batch 64
//
// On SIGINT/SIGTERM the worker stops leasing, aborts its in-flight
// job and hands it back to the queue (fail with requeue), then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/runq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	var (
		server  = flag.String("server", "", "robotack-serve base URL, e.g. http://host:8077")
		name    = flag.String("name", fmt.Sprintf("%s-%d", host, os.Getpid()), "worker name reported in leases")
		workers = flag.Int("workers", engine.DefaultWorkers(), "engine workers per job")
		poll    = flag.Duration("poll", time.Second, "sleep between leases when the queue is empty")
		batch   = flag.Int("batch", runq.DefaultEpisodeBatch, "completed episodes buffered per episode-stream POST")
	)
	flag.Parse()
	if *server == "" {
		return fmt.Errorf("-server is required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1 (got %d)", *batch)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &runq.Worker{
		Server:  *server,
		Name:    *name,
		Workers: *workers,
		Poll:    *poll,
		Batch:   *batch,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	fmt.Printf("worker %s: leasing from %s (%d engine workers)\n", *name, *server, *workers)
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Printf("worker %s: shut down\n", *name)
	return nil
}
