// Command robotack-sim runs one closed-loop episode — a driving
// scenario with the full ADS stack, optionally with RoboTack installed
// on the camera link — and prints the outcome. The episode is
// submitted through the execution engine, so Ctrl-C aborts it cleanly.
//
// The scenario can come from the built-in registry (DS-1..DS-5), from a
// declarative JSON spec file, or from the procedural generator.
//
// Usage:
//
//	robotack-sim -scenario 2 -mode smart -seed 7
//	robotack-sim -scenario 1 -mode golden
//	robotack-sim -scenario-file my_world.json -mode smart
//	robotack-sim -generate -seed 42 -mode smart   # procedural scenario
//	robotack-sim -scenario 2 -out probes.jsonl    # append the episode record
//	robotack-sim -list-scenarios
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioID   = flag.Int("scenario", 1, "driving scenario 1-5 (paper DS-1..DS-5)")
		scenarioFile = flag.String("scenario-file", "", "JSON scenario spec file (overrides -scenario)")
		generate     = flag.Bool("generate", false, "procedurally generate the scenario from -seed")
		list         = flag.Bool("list-scenarios", false, "list registered scenario specs and exit")
		mode         = flag.String("mode", "smart", "attack mode: golden | smart | nosh | random")
		vector       = flag.String("vector", "", "steer Table I's Move_Out/Disappear choice: disappear-vehicles | disappear-pedestrians")
		seed         = flag.Int64("seed", 1, "episode seed")
		out          = flag.String("out", "", "append the episode's record to this JSONL results store")
		logCfg       obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	if *list {
		for _, name := range scenegen.Names() {
			fmt.Println(name)
		}
		return nil
	}

	src := scenario.Source(scenario.ID(*scenarioID))
	switch {
	case *scenarioFile != "":
		spec, err := scenegen.LoadFile(*scenarioFile)
		if err != nil {
			return err
		}
		src = scenario.FromSpec(spec)
	case *generate:
		src = scenario.FromGenerator(scenegen.NewGenerator(scenegen.DefaultSpace()))
	}

	setup := experiment.AttackSetup{}
	switch *mode {
	case "golden":
	case "smart":
		setup.Mode = core.ModeSmart
	case "nosh":
		setup.Mode = core.ModeNoSH
	case "random":
		setup.Mode = core.ModeRandom
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *vector {
	case "":
	case "disappear-vehicles":
		setup.PreferDisappearFor = sim.ClassVehicle
	case "disappear-pedestrians":
		setup.PreferDisappearFor = sim.ClassPedestrian
	default:
		return fmt.Errorf("unknown vector steering %q", *vector)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.WithWorkers(1), engine.WithContext(ctx))
	logger.Debug("episode starting", "scenario", src.Label(), "mode", *mode, "seed", *seed)

	// A one-job batch: the additive derivation hands the job exactly
	// the -seed value.
	batch, err := eng.RunAll(*seed, []engine.Job{
		func(ctx context.Context, jobSeed int64) (any, error) {
			return experiment.RunCtx(ctx, experiment.RunConfig{
				Source: src,
				Seed:   jobSeed,
				Attack: setup,
			})
		},
	})
	if err != nil {
		return err
	}
	res := batch[0].Value.(experiment.RunResult)

	fmt.Printf("scenario %s, mode %s, seed %d: %d frames simulated\n",
		src.Label(), *mode, *seed, res.Frames)
	if setup.Mode != 0 {
		if res.Launched {
			fmt.Printf("attack: %v on %v at frame %d, K=%d frames (K'=%d), delta at launch %.1f m\n",
				res.Vector, res.TargetClass, res.LaunchFrame, res.K, res.KPrime, res.DeltaAtLaunch)
		} else {
			fmt.Println("attack: never launched")
		}
	}
	fmt.Printf("emergency braking: %v\n", res.EB)
	fmt.Printf("accident (delta < 4 m): %v\n", res.Crashed)
	fmt.Printf("min safety potential: %.1f m\n", res.MinDelta)

	if *out != "" {
		store, err := results.Open(*out)
		if err != nil {
			return err
		}
		defer store.Close()
		// One-shot probes share a campaign key per (scenario, mode, seed)
		// so repeated identical invocations overwrite rather than pile up.
		key := fmt.Sprintf("sim-%s-%s-seed%d", src.Label(), *mode, *seed)
		if err := store.Append(experiment.RecordEpisode(key, 0, *seed, src.Label(), setup.Mode, true, res)); err != nil {
			return err
		}
		fmt.Printf("episode record appended to %s (campaign %q)\n", *out, key)
	}
	return nil
}
