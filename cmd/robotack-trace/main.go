// Command robotack-trace inspects the span traces robotack-serve and
// robotack-campaign record with -trace: deterministic, cross-process
// traces that follow one campaign run from POST /runs through queue
// wait, lease or local dispatch, the worker's engine, and — for
// sampled episodes and slow exemplars — down to per-frame perception
// stage timings.
//
// Subcommands (all take the trace directory as their last argument):
//
//	list          <dir>    one line per trace: id, campaign, span count, services, wall time
//	tree          <dir>    render each trace's span tree (or one, with -trace)
//	critical-path <dir>    the chain of last-finishing spans plus a breakdown:
//	                       queue wait vs lease latency vs compute
//	slowest       <dir>    the slowest episode spans with frame-stage breakdowns
//	chrome        <dir>    export Chrome trace_event JSON (load in chrome://tracing
//	                       or https://ui.perfetto.dev)
//
// Usage:
//
//	robotack-trace list traces/
//	robotack-trace critical-path traces/
//	robotack-trace tree -trace 4f2a91c3d05b7e18 traces/
//	robotack-trace slowest -n 12 traces/
//	robotack-trace chrome traces/ > trace.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/perception"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: robotack-trace <list|tree|critical-path|slowest|chrome> [flags] <trace-dir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return fmt.Errorf("a subcommand is required")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "list":
		return runList(rest)
	case "tree":
		return runTree(rest)
	case "critical-path":
		return runCriticalPath(rest)
	case "slowest":
		return runSlowest(rest)
	case "chrome":
		return runChrome(rest)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, tree, critical-path, slowest or chrome)", cmd)
	}
}

// load reads every span in the directory and groups them into traces.
func load(dir string) ([]*trace.Trace, error) {
	spans, err := trace.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	traces := trace.Collect(spans)
	if len(traces) == 0 {
		return nil, fmt.Errorf("no spans in %s", dir)
	}
	return traces, nil
}

// pick applies a -trace id filter: all traces when unset, exactly the
// named one otherwise.
func pick(traces []*trace.Trace, idHex string) ([]*trace.Trace, error) {
	if idHex == "" {
		return traces, nil
	}
	id, err := trace.ParseID(idHex)
	if err != nil {
		return nil, fmt.Errorf("bad -trace id %q: %w", idHex, err)
	}
	t := trace.Find(traces, id)
	if t == nil {
		return nil, fmt.Errorf("no trace %s in directory", id)
	}
	return []*trace.Trace{t}, nil
}

func stageNames() []string { return perception.StageNames[:] }

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: robotack-trace list <trace-dir>")
	}
	traces, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	trace.FormatList(w, traces)
	return nil
}

func runTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ContinueOnError)
	idHex := fs.String("trace", "", "render only this trace id (hex)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: robotack-trace tree [-trace id] <trace-dir>")
	}
	traces, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if traces, err = pick(traces, *idHex); err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, t := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		trace.FormatTree(w, t, stageNames())
	}
	return nil
}

func runCriticalPath(args []string) error {
	fs := flag.NewFlagSet("critical-path", flag.ContinueOnError)
	idHex := fs.String("trace", "", "analyze only this trace id (hex)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: robotack-trace critical-path [-trace id] <trace-dir>")
	}
	traces, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if traces, err = pick(traces, *idHex); err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, t := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		trace.FormatCriticalPath(w, t, stageNames())
	}
	return nil
}

func runSlowest(args []string) error {
	fs := flag.NewFlagSet("slowest", flag.ContinueOnError)
	n := fs.Int("n", 8, "how many episode spans to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: robotack-trace slowest [-n count] <trace-dir>")
	}
	traces, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	trace.FormatSlowest(w, traces, *n, stageNames())
	return nil
}

func runChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
	idHex := fs.String("trace", "", "export only this trace id (hex)")
	out := fs.String("o", "", "write to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: robotack-trace chrome [-trace id] [-o out.json] <trace-dir>")
	}
	spans, err := trace.ReadDir(fs.Arg(0))
	if err != nil {
		return err
	}
	if *idHex != "" {
		traces, err := pick(trace.Collect(spans), *idHex)
		if err != nil {
			return err
		}
		spans = traces[0].Spans
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in %s", fs.Arg(0))
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := bufio.NewWriter(dst)
	if err := trace.WriteChrome(w, spans); err != nil {
		return err
	}
	return w.Flush()
}
