// Command robotack-ftdc decodes a binary FTDC metrics capture (written
// by robotack-serve/-worker/-campaign/-search with -ftdc) back into
// JSONL: one line per snapshot with the unix-nanosecond timestamp and
// every series value at that instant. The output pipes cleanly into jq
// for post-mortem analysis of a crashed or misbehaving process.
//
// Usage:
//
//	robotack-ftdc serve.ftdc
//	robotack-ftdc serve.ftdc | jq '.metrics.robotack_runq_queue_depth'
//	robotack-ftdc -last serve.ftdc   # only the final snapshot
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/robotack/robotack/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-ftdc:", err)
		os.Exit(1)
	}
}

// line is the JSONL shape: a stable field order (ts first) and the
// metrics as one object, so jq paths stay short.
type line struct {
	TS      int64              `json:"ts"`
	Metrics map[string]float64 `json:"metrics"`
}

func run() error {
	last := flag.Bool("last", false, "print only the final snapshot")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: robotack-ftdc [-last] <capture-file>")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	snaps, err := obs.Decode(f)
	if err != nil {
		return err
	}
	if *last && len(snaps) > 1 {
		snaps = snaps[len(snaps)-1:]
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, s := range snaps {
		// encoding/json emits map keys sorted, so the lines are stable.
		if err := enc.Encode(line{TS: s.TS, Metrics: s.Metrics}); err != nil {
			return err
		}
	}
	return nil
}
