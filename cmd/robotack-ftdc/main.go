// Command robotack-ftdc decodes a binary FTDC metrics capture (written
// by robotack-serve/-worker/-campaign/-search with -ftdc) back into
// JSONL: one line per snapshot with the unix-nanosecond timestamp and
// every series value at that instant. The output pipes cleanly into jq
// for post-mortem analysis of a crashed or misbehaving process.
//
// Usage:
//
//	robotack-ftdc serve.ftdc
//	robotack-ftdc serve.ftdc | jq '.metrics.robotack_runq_queue_depth'
//	robotack-ftdc -last serve.ftdc      # only the final snapshot
//	robotack-ftdc -summary serve.ftdc   # per-metric min/max/mean/last table
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/robotack/robotack/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-ftdc:", err)
		os.Exit(1)
	}
}

// line is the JSONL shape: a stable field order (ts first) and the
// metrics as one object, so jq paths stay short.
type line struct {
	TS      int64              `json:"ts"`
	Metrics map[string]float64 `json:"metrics"`
}

func run() error {
	last := flag.Bool("last", false, "print only the final snapshot")
	summary := flag.Bool("summary", false, "print a per-metric min/max/mean/last table instead of JSONL")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: robotack-ftdc [-last|-summary] <capture-file>")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	snaps, err := obs.Decode(f)
	if err != nil {
		return err
	}
	if *summary {
		return printSummary(snaps)
	}
	if *last && len(snaps) > 1 {
		snaps = snaps[len(snaps)-1:]
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, s := range snaps {
		// encoding/json emits map keys sorted, so the lines are stable.
		if err := enc.Encode(line{TS: s.TS, Metrics: s.Metrics}); err != nil {
			return err
		}
	}
	return nil
}

// printSummary collapses the capture to one row per metric — the quick
// "what moved and how far" read of a whole run, without jq. A metric
// absent from some snapshots (registered mid-run) is summarized over
// the snapshots that have it.
func printSummary(snaps []obs.Snapshot) error {
	type agg struct {
		min, max, sum, last float64
		n                   int
	}
	stats := make(map[string]*agg)
	for _, s := range snaps {
		for name, v := range s.Metrics {
			a := stats[name]
			if a == nil {
				a = &agg{min: v, max: v}
				stats[name] = a
			}
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
			a.sum += v
			a.last = v
			a.n++
		}
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%d snapshots, %d metrics\n", len(snaps), len(names))
	fmt.Fprintf(w, "%-56s %12s %12s %12s %12s\n", "metric", "min", "max", "mean", "last")
	for _, name := range names {
		a := stats[name]
		fmt.Fprintf(w, "%-56s %12g %12g %12g %12g\n",
			name, a.min, a.max, a.sum/float64(a.n), a.last)
	}
	return nil
}
