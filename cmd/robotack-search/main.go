// Command robotack-search trains an adaptive attack policy: a
// (1+lambda) evolution strategy mutates the paper trigger's thresholds
// and injection geometry (internal/policy.Params) and scores each
// candidate by running smart-mode campaigns, exactly the way
// robotack-campaign scores the paper's trigger.
//
// The search is deterministic end to end: every mutation and every
// episode seed derives from (-seed, generation, candidate), so the same
// invocation reproduces the same artifact and the same search log byte
// for byte, at any -workers value. With -store, candidate evaluations
// persist as they finish and an interrupted search resumes
// mid-candidate (Ctrl-C is safe).
//
// Usage:
//
//	robotack-search -out trained.json                 # search DS-1..DS-4, write the artifact
//	robotack-search -scenarios DS-1,DS-3 -runs 20     # narrower, heavier battery
//	robotack-search -generations 12 -pop 10 -sigma 0.2
//	robotack-search -store search.jsonl -out trained.json  # resumable
//	robotack-search -log search-log.jsonl             # byte-reproducible JSONL trace
//	robotack-campaign -policy trained.json            # then: evaluate vs the paper trigger
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/policy"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-search:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarios    = flag.String("scenarios", "DS-1,DS-2,DS-3,DS-4", "comma-separated battery of smart-mode scenarios to score candidates on")
		runs         = flag.Int("runs", 12, "episodes per battery scenario per candidate")
		generations  = flag.Int("generations", 8, "search generations")
		pop          = flag.Int("pop", 8, "candidates per generation (incl. the re-evaluated elite)")
		sigma        = flag.Float64("sigma", 0.15, "initial mutation scale (fraction of each parameter's range)")
		seed         = flag.Int64("seed", 1000, "base seed; every mutation and episode seed derives from it")
		train        = flag.Bool("train", false, "train the safety-hijacker NNs first (else analytic oracle)")
		workers      = flag.Int("workers", engine.DefaultWorkers(), "parallel episode workers")
		episodeBatch = flag.Int("episode-batch", 1, "lockstep episode lanes per worker; lanes coalesce same-network oracle queries into batched inference (1: off)")
		out          = flag.String("out", "trained-policy.json", "write the best candidate's policy artifact here")
		storePath    = flag.String("store", "", "persist candidate evaluations to this JSONL store and resume them on re-run")
		logPath      = flag.String("log", "", "write the byte-reproducible JSONL search log here")
		ftdcPath     = flag.String("ftdc", "", "append periodic binary metric snapshots to this file (decode with robotack-ftdc)")
		ftdcEvery    = flag.Duration("ftdc-interval", time.Second, "FTDC snapshot interval")
		logCfg       obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	battery, err := parseBattery(*scenarios)
	if err != nil {
		return err
	}

	if *ftdcPath != "" {
		capture, err := obs.StartCapture(obs.Default, *ftdcPath, *ftdcEvery)
		if err != nil {
			return fmt.Errorf("ftdc capture: %w", err)
		}
		defer func() {
			if err := capture.Stop(); err != nil {
				logger.Warn("ftdc capture stop", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithEpisodeBatch(*episodeBatch),
		engine.WithContext(ctx),
	)
	logger.Info("engine ready", "workers", eng.Workers())

	cfg := policy.TrainerConfig{
		Battery:     battery,
		Runs:        *runs,
		Generations: *generations,
		Population:  *pop,
		Sigma:       *sigma,
		BaseSeed:    *seed,
		Progress: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}

	if *train {
		logger.Info("training safety-hijacker oracles (paper §IV-B)")
		oracles, _, err := experiment.TrainOraclesOn(eng,
			experiment.DefaultOracleSpecs(), *seed+50_000, nn.DefaultTrainConfig())
		if err != nil {
			return err
		}
		cfg.Oracles = oracles
	}

	if *storePath != "" {
		store, err := results.Open(*storePath)
		if err != nil {
			return err
		}
		defer store.Close()
		cfg.Store = store
		logger.Info("evaluation store open", "store", *storePath, "resumable", true)
	}
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Log = f
	}

	res, trainErr := policy.Train(eng, cfg)
	if trainErr != nil && res.Best.Runs == 0 {
		return trainErr
	}
	if trainErr != nil {
		// Interrupted mid-search: keep the best candidate found so far
		// (re-running with -store picks up where this left off).
		logger.Warn("search stopped early", "err", trainErr)
	}

	fmt.Printf("best: gen %d cand %d  fitness %.4f  (EB %d/%d, crash %d)\n",
		res.Best.Gen, res.Best.Index, res.Best.Fitness, res.Best.EBs, res.Best.Runs, res.Best.Crashes)
	if err := res.Artifact.Save(*out); err != nil {
		return err
	}
	fmt.Printf("policy artifact: %s  (evaluate with: robotack-campaign -policy %s)\n", *out, *out)
	return nil
}

// parseBattery builds the smart-mode evaluation battery from a
// comma-separated scenario list, with the unknown-scenario error style
// of the rest of the tooling.
func parseBattery(list string) ([]experiment.Campaign, error) {
	var battery []experiment.Campaign
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := scenegen.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown scenario %q (have %v)", name, scenegen.Names())
		}
		battery = append(battery, experiment.Campaign{
			Name:          name + "-search",
			Scenario:      scenario.Named(name),
			Mode:          core.ModeSmart,
			ExpectCrashes: true,
		})
	}
	if len(battery) == 0 {
		return nil, fmt.Errorf("-scenarios is empty")
	}
	return battery, nil
}
