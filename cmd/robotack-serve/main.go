// Command robotack-serve exposes a JSONL results store over HTTP: it
// lists stored campaigns, serves per-campaign records and episodes,
// renders Table II summaries, diffs stores, and launches new campaigns
// on the execution engine — episodes stream into the same store, so a
// sweep started over the API is immediately queryable, resumable and
// diffable by every client.
//
// Endpoints:
//
//	GET  /campaigns                    stored campaign aggregates
//	GET  /campaigns/{name}             one aggregate
//	GET  /campaigns/{name}/episodes    the campaign's episode records
//	GET  /campaigns/{name}/summary     Table II text for one campaign
//	GET  /summary                      Table II + headline summary for the store
//	GET  /diff?other=path              diff the store against another JSONL store
//	GET  /diff?a=name&b=name           diff two campaigns within the store
//	POST /runs                         launch a campaign
//	GET  /runs | /runs/{id}            launched runs' progress
//
// Usage:
//
//	robotack-serve -store results.jsonl
//	robotack-serve -store results.jsonl -addr :9090 -workers 4
//	curl -s localhost:8077/campaigns
//	curl -s -X POST localhost:8077/runs -d '{"scenario":"DS-2","mode":"smart","runs":20,"seed":300}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/robotack/robotack/internal/campaignd"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storePath = flag.String("store", "", "JSONL results store to serve (created if missing)")
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", engine.DefaultWorkers(), "engine workers for launched runs")
	)
	flag.Parse()
	if *storePath == "" {
		return fmt.Errorf("-store is required")
	}

	store, err := results.Open(*storePath)
	if err != nil {
		return err
	}
	defer store.Close()

	srv := &http.Server{
		Addr:    *addr,
		Handler: campaignd.New(store, campaignd.WithWorkers(*workers)),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	fmt.Printf("serving %s on %s (%d workers for launched runs)\n", *storePath, *addr, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
