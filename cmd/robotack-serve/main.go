// Command robotack-serve exposes a results store over HTTP and
// runs a durable campaign queue on top of it: POST /runs enqueues
// campaigns that execute under a bounded local concurrency or on
// remote robotack-worker processes, episodes stream into the served
// store, progress streams to clients over Server-Sent Events, and —
// with -queue-dir — queued and interrupted jobs survive restarts,
// resuming bit-identically from the store's episodes.
//
// Endpoints:
//
//	GET  /campaigns                    stored campaign aggregates
//	GET  /campaigns/{name}             one aggregate
//	GET  /campaigns/{name}/episodes    the campaign's episode records
//	GET  /campaigns/{name}/summary     Table II text for one campaign
//	GET  /summary                      Table II + headline summary for the store
//	GET  /stores                       size and format stats for the served store
//	GET  /diff?other=path              diff the store against another store
//	GET  /diff?a=name&b=name           diff two campaigns within the store
//	POST /runs                         queue a campaign
//	GET  /runs | /runs/{id}            queued runs' progress
//	GET  /runs/{id}/events             live progress (Server-Sent Events)
//	DELETE /runs/{id}                  cancel a run
//	POST /lease, /runs/{id}/...        remote-worker protocol (robotack-worker)
//
// The store backend is autodetected from the -store path (an existing
// or ".jsonl"-suffixed path is the JSONL FileStore; a directory is the
// segmented segstore), or forced segmented with -store-dir — the
// backend for million-episode sweeps, whose open cost tracks index
// size rather than record count.
//
// Usage:
//
//	robotack-serve -store results.jsonl
//	robotack-serve -store-dir results.seg -queue-dir queue/
//	robotack-serve -store results.jsonl -queue-dir queue/ -max-concurrent 2
//	robotack-serve -store results.jsonl -addr :9090 -workers 4 -lease-ttl 30s
//	robotack-serve -store results.jsonl -log-level debug -log-json
//	robotack-serve -store results.jsonl -pprof -ftdc serve.ftdc
//	robotack-serve -store results.jsonl -trace traces/   # spans; inspect with robotack-trace
//	curl -s -X POST localhost:8077/runs -d '{"scenario":"DS-2","mode":"smart","runs":20,"seed":300}'
//	curl -N localhost:8077/runs/1/events
//	curl -s localhost:8077/metrics
//
// On SIGINT/SIGTERM the server stops leasing, cancels in-flight jobs
// (journaling them as queued so a restart resumes them), flushes the
// queue journal and the store, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/robotack/robotack/internal/campaignd"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/runq"
	"github.com/robotack/robotack/internal/segstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storePath = flag.String("store", "", "results store to serve: JSONL file or segstore directory, autodetected (created if missing)")
		storeDir  = flag.String("store-dir", "", "serve a segmented segstore directory (created if missing); exclusive with -store")
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", engine.DefaultWorkers(), "engine workers per locally executed run")
		epBatch   = flag.Int("episode-batch", 1, "lockstep episode lanes per engine worker for local runs; lanes coalesce same-network oracle queries into batched inference (1: off)")
		queueDir  = flag.String("queue-dir", "", "directory for the durable run-queue journal (empty: in-memory queue, lost on restart)")
		maxConc   = flag.Int("max-concurrent", 1, "how many queued runs execute locally at once (0: remote workers only)")
		leaseTTL  = flag.Duration("lease-ttl", 30*time.Second, "remote-worker lease duration; a missed heartbeat requeues the job")
		metrics   = flag.Bool("metrics", true, "record metrics and serve Prometheus text at GET /metrics")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		ftdcPath  = flag.String("ftdc", "", "append periodic binary metric snapshots to this file (decode with robotack-ftdc)")
		ftdcEvery = flag.Duration("ftdc-interval", time.Second, "FTDC snapshot interval")
		traceDir  = flag.String("trace", "", "directory for span-trace segments (inspect with robotack-trace); empty: tracing off")
		traceCap  = flag.Int("trace-cap", 64, "trace-segment ring size cap in MiB; oldest segments are deleted beyond it")
		traceN    = flag.Int("trace-sample", 0, "episode-span sampling, 1-in-N (0: default 1-in-16)")
		logCfg    obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if (*storePath == "") == (*storeDir == "") {
		return fmt.Errorf("exactly one of -store or -store-dir is required")
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}
	if !*metrics {
		obs.SetEnabled(false)
	}

	compactLog := segstore.WithErrorLog(func(campaign string, err error) {
		logger.Warn("shard compaction failed", "campaign", campaign, "err", err)
	})
	var store results.DurableStore
	if *storeDir != "" {
		store, err = segstore.Open(*storeDir, compactLog)
	} else {
		store, err = segstore.OpenAny(*storePath, compactLog)
	}
	if err != nil {
		return err
	}
	storeClosed := false
	defer func() {
		if !storeClosed {
			store.Close()
		}
	}()

	// Tracing: submitted runs get deterministic trace IDs, queue and
	// engine spans land in the segment ring, and remote workers' spans
	// arrive over POST /runs/{id}/spans into the same sink.
	var tracer *trace.Tracer
	if *traceDir != "" {
		sink, err := trace.NewFileSink(*traceDir, int64(*traceCap)<<20)
		if err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		tracer = trace.New("serve", sink, trace.WithSampleEvery(*traceN))
		defer func() {
			if err := tracer.Close(); err != nil {
				logger.Warn("trace sink close", "err", err)
			}
		}()
	}

	queue, err := runq.Open(*queueDir,
		runq.WithMaxConcurrent(*maxConc),
		runq.WithLeaseTTL(*leaseTTL),
		runq.WithLogger(logger),
		runq.WithTracer(tracer),
	)
	if err != nil {
		return err
	}

	if *ftdcPath != "" {
		capture, err := obs.StartCapture(obs.Default, *ftdcPath, *ftdcEvery)
		if err != nil {
			return fmt.Errorf("ftdc capture: %w", err)
		}
		defer func() {
			if err := capture.Stop(); err != nil {
				logger.Warn("ftdc capture stop", "err", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", campaignd.New(store,
		campaignd.WithWorkers(*workers),
		campaignd.WithEpisodeBatch(*epBatch),
		campaignd.WithQueue(queue),
		campaignd.WithLogger(logger),
		campaignd.WithTracer(tracer),
	))
	if *metrics {
		mux.Handle("GET /metrics", obs.Handler(obs.Default))
	}
	if *pprofOn {
		obs.RegisterPprof(mux)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	durable := *queueDir
	if durable == "" {
		durable = "in-memory"
	}
	served := *storePath
	if *storeDir != "" {
		served = *storeDir
	}
	logger.Info("serving",
		"store", served, "addr", *addr, "queue", durable,
		"local_slots", *maxConc, "workers_per_run", *workers, "lease_ttl", *leaseTTL,
		"metrics", *metrics, "pprof", *pprofOn)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	// Drain the queue after the listener closes: no new submissions or
	// leases can arrive, in-flight jobs are cancelled and journaled as
	// queued, and the journal is flushed — a restart with the same
	// -queue-dir picks them all up again.
	logger.Info("shutting down: draining run queue")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := queue.Shutdown(drainCtx); err != nil {
		return err
	}
	storeClosed = true
	if err := store.Close(); err != nil {
		return err
	}
	logger.Info("shutdown complete")
	return nil
}
