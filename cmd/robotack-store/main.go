// Command robotack-store is the operator's tool for results stores: it
// migrates JSONL logs into the segmented segstore layout, reports a
// store's size and format, diffs two stores (of either backend), and
// forces a segstore's pending shard compactions to run now.
//
// Subcommands:
//
//	migrate <src.jsonl> <dst-dir>   copy a JSONL store into a fresh segstore
//	stats   <store>...              size/format stats for each store
//	diff    [-check] <a> <b>        campaign-level diff; -check exits 1 on any difference
//	compact <dir>                   synchronously rewrite shards that lost the sorted fast path
//
// Store paths autodetect their backend: a directory (or a missing path
// without a ".jsonl" suffix) is a segstore, anything else the JSONL
// FileStore. diff and stats open stores read-only, so they are safe to
// point at a store another process is serving.
//
// Usage:
//
//	robotack-store migrate sweep.jsonl sweep.seg
//	robotack-store stats sweep.seg other.jsonl
//	robotack-store diff -check sweep.seg replica.seg   # CI: byte-identical or exit 1
//	robotack-store compact sweep.seg
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/segstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-store:", err)
		os.Exit(1)
	}
}

var errDiffers = fmt.Errorf("stores differ")

func run() error {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: robotack-store <migrate|stats|diff|compact> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return fmt.Errorf("a subcommand is required")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "migrate":
		return runMigrate(rest)
	case "stats":
		return runStats(rest)
	case "diff":
		return runDiff(rest)
	case "compact":
		return runCompact(rest)
	default:
		return fmt.Errorf("unknown subcommand %q (want migrate, stats, diff or compact)", cmd)
	}
}

func runMigrate(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: robotack-store migrate <src.jsonl> <dst-dir>")
	}
	st, err := segstore.MigrateFromJSONL(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Printf("migrated %s → %s\n", args[0], args[1])
	printStats(st)
	return nil
}

func runStats(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: robotack-store stats <store>...")
	}
	for _, path := range args {
		st, err := statsOf(path)
		if err != nil {
			return err
		}
		printStats(st)
	}
	return nil
}

// statsOf opens path read-only and reports its stats under the on-disk
// format name (LoadAny materializes JSONL stores in memory, which
// would otherwise report themselves as "mem").
func statsOf(path string) (results.StoreStats, error) {
	format, err := segstore.DetectFormat(path)
	if err != nil {
		return results.StoreStats{}, err
	}
	store, err := segstore.LoadAny(path)
	if err != nil {
		return results.StoreStats{}, err
	}
	sp, ok := store.(results.StatsProvider)
	if !ok {
		return results.StoreStats{}, fmt.Errorf("store %s does not report stats", path)
	}
	st, err := sp.Stats()
	if err != nil {
		return results.StoreStats{}, err
	}
	st.Format = format
	st.Path = path
	if format == results.FormatJSONL {
		if fi, err := os.Stat(path); err == nil {
			st.BytesEstimate = fi.Size()
		}
	}
	return st, nil
}

func printStats(st results.StoreStats) {
	exact := "exact"
	if st.Estimated {
		exact = "estimated"
	}
	fmt.Printf("%s: format=%s campaigns=%d episodes=%d (%s) bytes=%d\n",
		st.Path, st.Format, st.Campaigns, st.Episodes, exact, st.BytesEstimate)
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	check := fs.Bool("check", false, "exit 1 unless the stores' campaigns are identical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: robotack-store diff [-check] <a> <b>")
	}
	a, err := segstore.LoadAny(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := segstore.LoadAny(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs, err := results.Diff(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("diff %s → %s\n", fs.Arg(0), fs.Arg(1))
	fmt.Print(results.FormatDiff(diffs))
	if !*check {
		return nil
	}
	differs := false
	for _, d := range diffs {
		// Rate deltas round-trip losslessly, but -check demands more: the
		// full aggregates must match field for field, the same bar the
		// resume-parity tests hold the backends to.
		if d.A == nil || d.B == nil || d.RunsDelta != 0 || !reflect.DeepEqual(d.A, d.B) {
			fmt.Printf("campaign %q differs\n", d.Name)
			differs = true
		}
	}
	if differs {
		return errDiffers
	}
	fmt.Printf("%d campaigns identical\n", len(diffs))
	return nil
}

func runCompact(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: robotack-store compact <dir>")
	}
	store, err := segstore.Open(args[0])
	if err != nil {
		return err
	}
	n, err := store.Compact()
	if cerr := store.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d shard(s) rewritten\n", args[0], n)
	return nil
}
