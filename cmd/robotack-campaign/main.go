// Command robotack-campaign runs the paper's evaluation campaigns and
// regenerates Table II and Figs. 6-8 (plus the §VI headline summary).
// Episodes fan out across an engine worker pool; results are
// bit-identical for any -workers value, and Ctrl-C cancels the sweep.
//
// Besides the paper's Table II sweep over DS-1..DS-5, the campaign can
// evaluate a declarative JSON scenario spec or the procedural scenario
// generator: golden, smart-attack and random-baseline campaigns run on
// the custom source instead.
//
// With -out, every episode streams into a results store as it
// completes — a JSONL file or a segmented segstore directory,
// autodetected from the path; -resume folds already-persisted episodes
// back into the aggregates (bit-identically) instead of re-running
// them, and -compare diffs two stores' campaign aggregates (the two
// sides may use different backends).
//
// Usage:
//
//	robotack-campaign -runs 150            # paper-scale Table II + figures
//	robotack-campaign -runs 30 -train=false  # quicker, analytic oracle
//	robotack-campaign -workers 4           # cap the worker pool
//	robotack-campaign -scenario-file my_world.json -runs 50
//	robotack-campaign -generate -runs 100  # scenario-diversity sweep
//	robotack-campaign -runs 100 -out sweep.jsonl       # persist records
//	robotack-campaign -runs 100 -out sweep.jsonl -resume  # pick up an interrupted sweep
//	robotack-campaign -out new.jsonl -compare old.jsonl   # diff two stores and exit
//	robotack-campaign -policy trained.json  # evaluate a searched policy next to the paper trigger
//	robotack-campaign -list-scenarios
//	robotack-campaign -list-policies
//	robotack-campaign -runs 40 -cpuprofile cpu.prof -memprofile mem.prof  # pprof the hot path
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/policy"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/segstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs         = flag.Int("runs", 40, "episodes per campaign (paper: 101-185)")
		seed         = flag.Int64("seed", 1000, "base seed")
		train        = flag.Bool("train", true, "train the safety-hijacker NNs first (else analytic oracle)")
		workers      = flag.Int("workers", engine.DefaultWorkers(), "parallel episode workers")
		episodeBatch = flag.Int("episode-batch", 1, "lockstep episode lanes per worker; lanes coalesce same-network oracle queries into batched inference (1: off)")
		scenarioFile = flag.String("scenario-file", "", "evaluate a JSON scenario spec instead of Table II")
		generate     = flag.Bool("generate", false, "evaluate procedurally generated scenarios instead of Table II")
		list         = flag.Bool("list-scenarios", false, "list registered scenario specs and exit")
		policyFile   = flag.String("policy", "", "evaluate this policy artifact's trigger side-by-side with the paper trigger")
		listPolicies = flag.Bool("list-policies", false, "list known policy artifact kinds and exit")
		out          = flag.String("out", "", "append episode and campaign records to this results store (JSONL file or segstore directory, autodetected)")
		resume       = flag.Bool("resume", false, "fold episodes already persisted in -out back into the aggregates instead of re-running them")
		compare      = flag.String("compare", "", "diff this store against -out and exit (no campaigns run)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile (after the sweep) to this file")
		ftdcPath     = flag.String("ftdc", "", "append periodic binary metric snapshots to this file (decode with robotack-ftdc)")
		ftdcEvery    = flag.Duration("ftdc-interval", time.Second, "FTDC snapshot interval")
		traceDir     = flag.String("trace", "", "directory for span-trace segments (inspect with robotack-trace); empty: tracing off")
		traceN       = flag.Int("trace-sample", 0, "episode-span sampling, 1-in-N (0: default 1-in-16)")
		logCfg       obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	if *ftdcPath != "" {
		capture, err := obs.StartCapture(obs.Default, *ftdcPath, *ftdcEvery)
		if err != nil {
			return fmt.Errorf("ftdc capture: %w", err)
		}
		defer func() {
			if err := capture.Stop(); err != nil {
				logger.Warn("ftdc capture stop", "err", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				logger.Error("-memprofile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the end-of-sweep live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("-memprofile", "err", err)
			}
		}()
	}

	if *list {
		for _, name := range scenegen.Names() {
			fmt.Println(name)
		}
		return nil
	}
	if *listPolicies {
		for _, k := range policy.Kinds() {
			fmt.Printf("%-8s %s\n", k.Kind, k.Desc)
		}
		return nil
	}

	var pol core.TriggerPolicy
	var polLabel string
	if *policyFile != "" {
		art, err := policy.Load(*policyFile)
		if err != nil {
			return err
		}
		pol, err = art.Build()
		if err != nil {
			return err
		}
		polLabel = art.Label()
		fmt.Printf("policy: %s (kind %s, from %s)\n", polLabel, art.Kind, *policyFile)
	}

	if *compare != "" {
		if *out == "" {
			return fmt.Errorf("-compare needs -out: the two stores to diff")
		}
		old, err := segstore.LoadAny(*compare)
		if err != nil {
			return err
		}
		cur, err := segstore.LoadAny(*out)
		if err != nil {
			return err
		}
		diffs, err := results.Diff(old, cur)
		if err != nil {
			return err
		}
		fmt.Printf("diff %s → %s\n", *compare, *out)
		fmt.Print(results.FormatDiff(diffs))
		return nil
	}
	if *resume && *out == "" {
		return fmt.Errorf("-resume needs -out: the store holding the interrupted sweep")
	}

	var opts []experiment.RunOption
	if *out != "" {
		store, err := segstore.OpenAny(*out)
		if err != nil {
			return err
		}
		defer store.Close()
		opts = append(opts, experiment.WithSink(store))
		if *resume {
			opts = append(opts, experiment.WithResume(store))
		}
		fmt.Printf("results store: %s (resume=%v)\n", *out, *resume)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Local tracing: one root span covers the sweep; engine-job and
	// sampled episode spans (with frame-stage breakdowns) nest under it
	// via the engine's context.
	if *traceDir != "" {
		sink, err := trace.NewFileSink(*traceDir, trace.DefaultCapBytes)
		if err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		tr := trace.New("campaign", sink, trace.WithSampleEvery(*traceN))
		tid := trace.DeriveTraceID("robotack-campaign", *seed)
		root := tr.StartSpan(trace.SpanContext{Tracer: tr, TraceID: tid},
			"run", trace.DeriveSpanID(tid, 0, trace.StreamRun))
		root.SetAttr("campaign", "robotack-campaign")
		ctx = root.Context(ctx)
		defer func() {
			root.Finish()
			if err := tr.Close(); err != nil {
				logger.Warn("trace sink close", "err", err)
			}
		}()
		fmt.Printf("trace dir: %s\n", *traceDir)
	}

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithEpisodeBatch(*episodeBatch),
		engine.WithContext(ctx),
		engine.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d episodes", done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\n")
			}
		}),
	)
	fmt.Printf("engine: %d workers\n", eng.Workers())

	var custom scenario.Source
	switch {
	case *scenarioFile != "":
		spec, err := scenegen.LoadFile(*scenarioFile)
		if err != nil {
			return err
		}
		custom = scenario.FromSpec(spec)
	case *generate:
		custom = scenario.FromGenerator(scenegen.NewGenerator(scenegen.DefaultSpace()))
	}

	var oracles map[core.Vector]core.Oracle
	if *train {
		fmt.Println("training safety-hijacker oracles (paper §IV-B)...")
		var infos []experiment.TrainedOracle
		var err error
		oracles, infos, err = experiment.TrainOraclesOn(eng,
			experiment.DefaultOracleSpecs(), *seed+50_000, nn.DefaultTrainConfig())
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Printf("  %v: %d samples, validation MAE %.2f m\n",
				info.Vector, info.Samples, info.Result.ValMAE)
		}
	}

	if custom != nil {
		return runCustom(eng, custom, *runs, *seed, oracles, pol, polLabel, opts)
	}

	campaigns := experiment.TableIICampaigns()
	withSH := make([]experiment.CampaignResult, 0, len(campaigns))
	noSH := make([]experiment.CampaignResult, 0, len(campaigns))
	var withPolicy []experiment.CampaignResult
	for _, c := range campaigns {
		res, err := experiment.RunCampaignOn(eng, c, *runs, *seed, oracles, opts...)
		if err != nil {
			return err
		}
		withSH = append(withSH, res)
		fmt.Printf("campaign %-24s done (%d runs)\n", c.Name, res.Runs)
		if c.Mode == core.ModeSmart {
			nres, err := experiment.RunCampaignOn(eng, c.WithoutSH(), *runs, *seed, oracles, opts...)
			if err != nil {
				return err
			}
			noSH = append(noSH, nres)
			if pol != nil {
				pres, err := experiment.RunCampaignOn(eng, c.WithPolicy(polLabel, pol), *runs, *seed, oracles, opts...)
				if err != nil {
					return err
				}
				withPolicy = append(withPolicy, pres)
				fmt.Printf("campaign %-24s done (%d runs)\n", c.Name+"-"+polLabel, pres.Runs)
			}
		}
	}

	withRecs, noRecs := experiment.Records(withSH), experiment.Records(noSH)

	fmt.Println("\n=== Table II ===")
	fmt.Print(experiment.FormatTableII(withRecs))

	if pol != nil {
		// Side-by-side evaluation: the same smart campaigns and seeds,
		// with the artifact's trigger in place of the paper's.
		fmt.Printf("\n=== Table II — policy %q (same seeds, smart campaigns) ===\n", polLabel)
		fmt.Print(experiment.FormatTableII(experiment.Records(withPolicy)))
	}

	fmt.Println("\n=== Fig. 6 ===")
	fmt.Print(experiment.FormatFig6(experiment.Fig6Rows(withRecs[:len(noRecs)], noRecs)))

	fmt.Println("\n=== Fig. 7 ===")
	fmt.Print(experiment.FormatFig7(withRecs))

	fmt.Println("\n=== Fig. 8 ===")
	smart := withRecs[:len(withRecs)-1] // exclude the random baseline
	fmt.Print(experiment.FormatFig8(experiment.Fig8Bins(smart, 10, 6.7), smart))

	fmt.Println("\n=== Headline summary (paper §VI) ===")
	fmt.Print(experiment.FormatSummary(
		experiment.Summarize(smart),
		experiment.Summarize(withRecs[len(withRecs)-1:])))
	return nil
}

// runCustom evaluates one scenario source (a spec file or the
// procedural generator): an attack-free golden baseline, the smart
// malware and the random baseline — plus, with -policy, the artifact's
// trigger — each over the same seeds.
func runCustom(eng *engine.Engine, src scenario.Source, runs int, seed int64, oracles map[core.Vector]core.Oracle, pol core.TriggerPolicy, polLabel string, opts []experiment.RunOption) error {
	golden, err := experiment.RunGoldenOn(eng, src, runs, seed, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("golden   %-20s EB %d/%d  crash %d/%d\n",
		src.Label(), golden.EBs, golden.Runs, golden.Crashes, golden.Runs)

	campaigns := []experiment.Campaign{
		{Name: src.Label() + "-Smart-R", Scenario: src, Mode: core.ModeSmart, ExpectCrashes: true},
		{Name: src.Label() + "-Baseline-Random", Scenario: src, Mode: core.ModeRandom, ExpectCrashes: true},
	}
	if pol != nil {
		campaigns = append(campaigns, campaigns[0].WithPolicy(polLabel, pol))
	}
	res := make([]experiment.CampaignResult, 0, len(campaigns))
	for _, c := range campaigns {
		r, err := experiment.RunCampaignOn(eng, c, runs, seed, oracles, opts...)
		if err != nil {
			return err
		}
		res = append(res, r)
		fmt.Printf("campaign %-24s done (%d runs)\n", c.Name, r.Runs)
	}

	fmt.Println("\n=== Custom-scenario results ===")
	fmt.Print(experiment.FormatTableII(experiment.Records(res)))
	return nil
}
