// Command robotack-campaign runs the paper's evaluation campaigns and
// regenerates Table II and Figs. 6-8 (plus the §VI headline summary).
// Episodes fan out across an engine worker pool; results are
// bit-identical for any -workers value, and Ctrl-C cancels the sweep.
//
// Besides the paper's Table II sweep over DS-1..DS-5, the campaign can
// evaluate a declarative JSON scenario spec or the procedural scenario
// generator: golden, smart-attack and random-baseline campaigns run on
// the custom source instead.
//
// Usage:
//
//	robotack-campaign -runs 150            # paper-scale Table II + figures
//	robotack-campaign -runs 30 -train=false  # quicker, analytic oracle
//	robotack-campaign -workers 4           # cap the worker pool
//	robotack-campaign -scenario-file my_world.json -runs 50
//	robotack-campaign -generate -runs 100  # scenario-diversity sweep
//	robotack-campaign -list-scenarios
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs         = flag.Int("runs", 40, "episodes per campaign (paper: 101-185)")
		seed         = flag.Int64("seed", 1000, "base seed")
		train        = flag.Bool("train", true, "train the safety-hijacker NNs first (else analytic oracle)")
		workers      = flag.Int("workers", engine.DefaultWorkers(), "parallel episode workers")
		scenarioFile = flag.String("scenario-file", "", "evaluate a JSON scenario spec instead of Table II")
		generate     = flag.Bool("generate", false, "evaluate procedurally generated scenarios instead of Table II")
		list         = flag.Bool("list-scenarios", false, "list registered scenario specs and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range scenegen.Names() {
			fmt.Println(name)
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithContext(ctx),
		engine.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d episodes", done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\n")
			}
		}),
	)
	fmt.Printf("engine: %d workers\n", eng.Workers())

	var custom scenario.Source
	switch {
	case *scenarioFile != "":
		spec, err := scenegen.LoadFile(*scenarioFile)
		if err != nil {
			return err
		}
		custom = scenario.FromSpec(spec)
	case *generate:
		custom = scenario.FromGenerator(scenegen.NewGenerator(scenegen.DefaultSpace()))
	}

	var oracles map[core.Vector]core.Oracle
	if *train {
		fmt.Println("training safety-hijacker oracles (paper §IV-B)...")
		var infos []experiment.TrainedOracle
		var err error
		oracles, infos, err = experiment.TrainOraclesOn(eng,
			experiment.DefaultOracleSpecs(), *seed+50_000, nn.DefaultTrainConfig())
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Printf("  %v: %d samples, validation MAE %.2f m\n",
				info.Vector, info.Samples, info.Result.ValMAE)
		}
	}

	if custom != nil {
		return runCustom(eng, custom, *runs, *seed, oracles)
	}

	campaigns := experiment.TableIICampaigns()
	withSH := make([]experiment.CampaignResult, 0, len(campaigns))
	noSH := make([]experiment.CampaignResult, 0, len(campaigns))
	for _, c := range campaigns {
		res, err := experiment.RunCampaignOn(eng, c, *runs, *seed, oracles)
		if err != nil {
			return err
		}
		withSH = append(withSH, res)
		fmt.Printf("campaign %-24s done (%d runs)\n", c.Name, res.Runs)
		if c.Mode == core.ModeSmart {
			nres, err := experiment.RunCampaignOn(eng, c.WithoutSH(), *runs, *seed, oracles)
			if err != nil {
				return err
			}
			noSH = append(noSH, nres)
		}
	}

	fmt.Println("\n=== Table II ===")
	fmt.Print(experiment.FormatTableII(withSH))

	fmt.Println("\n=== Fig. 6 ===")
	fmt.Print(experiment.FormatFig6(experiment.Fig6Rows(withSH[:len(noSH)], noSH)))

	fmt.Println("\n=== Fig. 7 ===")
	fmt.Print(experiment.FormatFig7(withSH))

	fmt.Println("\n=== Fig. 8 ===")
	smart := withSH[:len(withSH)-1] // exclude the random baseline
	fmt.Print(experiment.FormatFig8(experiment.Fig8Bins(smart, 10, 6.7), smart))

	fmt.Println("\n=== Headline summary (paper §VI) ===")
	fmt.Print(experiment.FormatSummary(
		experiment.Summarize(smart),
		experiment.Summarize(withSH[len(withSH)-1:])))
	return nil
}

// runCustom evaluates one scenario source (a spec file or the
// procedural generator): an attack-free golden baseline, the smart
// malware and the random baseline, each over the same seeds.
func runCustom(eng *engine.Engine, src scenario.Source, runs int, seed int64, oracles map[core.Vector]core.Oracle) error {
	golden, err := experiment.RunGoldenOn(eng, src, runs, seed)
	if err != nil {
		return err
	}
	fmt.Printf("golden   %-20s EB %d/%d  crash %d/%d\n",
		src.Label(), golden.EBs, golden.Runs, golden.Crashes, golden.Runs)

	campaigns := []experiment.Campaign{
		{Name: src.Label() + "-Smart-R", Scenario: src, Mode: core.ModeSmart, ExpectCrashes: true},
		{Name: src.Label() + "-Baseline-Random", Scenario: src, Mode: core.ModeRandom, ExpectCrashes: true},
	}
	results := make([]experiment.CampaignResult, 0, len(campaigns))
	for _, c := range campaigns {
		res, err := experiment.RunCampaignOn(eng, c, runs, seed, oracles)
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Printf("campaign %-24s done (%d runs)\n", c.Name, res.Runs)
	}

	fmt.Println("\n=== Custom-scenario results ===")
	fmt.Print(experiment.FormatTableII(results))
	return nil
}
