// Command robotack-campaign runs the paper's evaluation campaigns and
// regenerates Table II and Figs. 6-8 (plus the §VI headline summary).
// Episodes fan out across an engine worker pool; results are
// bit-identical for any -workers value, and Ctrl-C cancels the sweep.
//
// Usage:
//
//	robotack-campaign -runs 150            # paper-scale Table II + figures
//	robotack-campaign -runs 30 -train=false  # quicker, analytic oracle
//	robotack-campaign -workers 4           # cap the worker pool
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/nn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs    = flag.Int("runs", 40, "episodes per campaign (paper: 101-185)")
		seed    = flag.Int64("seed", 1000, "base seed")
		train   = flag.Bool("train", true, "train the safety-hijacker NNs first (else analytic oracle)")
		workers = flag.Int("workers", engine.DefaultWorkers(), "parallel episode workers")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithContext(ctx),
		engine.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d episodes", done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\n")
			}
		}),
	)
	fmt.Printf("engine: %d workers\n", eng.Workers())

	var oracles map[core.Vector]core.Oracle
	if *train {
		fmt.Println("training safety-hijacker oracles (paper §IV-B)...")
		var infos []experiment.TrainedOracle
		var err error
		oracles, infos, err = experiment.TrainOraclesOn(eng,
			experiment.DefaultOracleSpecs(), *seed+50_000, nn.DefaultTrainConfig())
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Printf("  %v: %d samples, validation MAE %.2f m\n",
				info.Vector, info.Samples, info.Result.ValMAE)
		}
	}

	campaigns := experiment.TableIICampaigns()
	withSH := make([]experiment.CampaignResult, 0, len(campaigns))
	noSH := make([]experiment.CampaignResult, 0, len(campaigns))
	for _, c := range campaigns {
		res, err := experiment.RunCampaignOn(eng, c, *runs, *seed, oracles)
		if err != nil {
			return err
		}
		withSH = append(withSH, res)
		fmt.Printf("campaign %-24s done (%d runs)\n", c.Name, res.Runs)
		if c.Mode == core.ModeSmart {
			nres, err := experiment.RunCampaignOn(eng, c.WithoutSH(), *runs, *seed, oracles)
			if err != nil {
				return err
			}
			noSH = append(noSH, nres)
		}
	}

	fmt.Println("\n=== Table II ===")
	fmt.Print(experiment.FormatTableII(withSH))

	fmt.Println("\n=== Fig. 6 ===")
	fmt.Print(experiment.FormatFig6(experiment.Fig6Rows(withSH[:len(noSH)], noSH)))

	fmt.Println("\n=== Fig. 7 ===")
	fmt.Print(experiment.FormatFig7(withSH))

	fmt.Println("\n=== Fig. 8 ===")
	smart := withSH[:len(withSH)-1] // exclude the random baseline
	fmt.Print(experiment.FormatFig8(experiment.Fig8Bins(smart, 10, 6.7), smart))

	fmt.Println("\n=== Headline summary (paper §VI) ===")
	fmt.Print(experiment.FormatSummary(
		experiment.Summarize(smart),
		experiment.Summarize(withSH[len(withSH)-1:])))
	return nil
}
