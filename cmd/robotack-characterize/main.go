// Command robotack-characterize reproduces Fig. 5 of the paper: it
// drives a mixed-traffic world, runs the noisy detector against ground
// truth, and reports the misdetection-run and bbox-error distribution
// fits for pedestrians and vehicles. Long drives split into segments
// that run in parallel on an engine worker pool.
//
// Usage:
//
//	robotack-characterize -frames 9000   # the paper's 10-minute drive
//	robotack-characterize -workers 3
//	robotack-characterize -out fig5.json   # persist the characterization
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robotack-characterize:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		frames  = flag.Int("frames", 9000, "frames to drive (paper: 10 min at 15 Hz)")
		seed    = flag.Int64("seed", 1, "seed")
		workers = flag.Int("workers", engine.DefaultWorkers(), "parallel segment workers")
		out     = flag.String("out", "", "write the characterization (distribution fits) as JSON")
		logCfg  obs.LogConfig
	)
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.WithWorkers(*workers), engine.WithContext(ctx))
	logger.Debug("characterization starting", "frames", *frames, "seed", *seed, "workers", eng.Workers())

	c, err := experiment.CharacterizeOn(eng, *frames, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiment.FormatFig5(c))
	if *out != "" {
		raw, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("characterization written to %s\n", *out)
	}
	fmt.Println("\npaper reference values:")
	fmt.Println("  pedestrian: Exp(loc=1, lambda=0.717) p99=31.0; dx N(0.254, 2.010) dy N(0.186, 0.409)")
	fmt.Println("  vehicle:    Exp(loc=1, lambda=0.327) p99=59.4; dx N(0.023, 0.464) dy N(0.094, 0.586)")
	return nil
}
