// Command robotack-characterize reproduces Fig. 5 of the paper: it
// drives a mixed-traffic world, runs the noisy detector against ground
// truth, and reports the misdetection-run and bbox-error distribution
// fits for pedestrians and vehicles.
//
// Usage:
//
//	robotack-characterize -frames 9000   # the paper's 10-minute drive
package main

import (
	"flag"
	"fmt"

	"github.com/robotack/robotack/internal/experiment"
)

func main() {
	var (
		frames = flag.Int("frames", 9000, "frames to drive (paper: 10 min at 15 Hz)")
		seed   = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	c := experiment.Characterize(*frames, *seed)
	fmt.Print(experiment.FormatFig5(c))
	fmt.Println("\npaper reference values:")
	fmt.Println("  pedestrian: Exp(loc=1, lambda=0.717) p99=31.0; dx N(0.254, 2.010) dy N(0.186, 0.409)")
	fmt.Println("  vehicle:    Exp(loc=1, lambda=0.327) p99=59.4; dx N(0.023, 0.464) dy N(0.094, 0.586)")
}
