module github.com/robotack/robotack

go 1.24
