package core

import (
	"math"
	"strings"
	"testing"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
)

// nanOracle forecasts NaN for every query — a degenerate trained model.
type nanOracle struct{}

func (nanOracle) PredictDelta(State, int) float64 { return math.NaN() }

// farOracle forecasts a safety potential that never drops below any
// threshold: the attack is never worth launching.
type farOracle struct{}

func (farOracle) PredictDelta(State, int) float64 { return 1e6 }

// cliffOracle drops below gamma immediately: Eq. 2's binary search
// lands on k=1, exercising the KMin clamp.
type cliffOracle struct{}

func (cliffOracle) PredictDelta(s State, k int) float64 { return -100 }

func edgeState() State {
	return State{Delta: 20, EVSpeed: 10}
}

// TestDecideMissingOracle: a vector the hijacker has no oracle for is
// an error, not a silent no-attack — it means the build wired the
// vectors wrong.
func TestDecideMissingOracle(t *testing.T) {
	sh := &SafetyHijacker{
		cfg:     DefaultSafetyHijackerConfig(),
		oracles: map[Vector]Oracle{}, // deliberately empty: bypass the constructor's analytic fallback
	}
	_, err := sh.Decide(edgeState(), VectorDisappear, sim.ClassVehicle)
	if err == nil {
		t.Fatal("Decide with no oracle for the vector returned no error")
	}
	if !strings.Contains(err.Error(), "no oracle for vector") {
		t.Errorf("error %q does not name the missing oracle", err)
	}
}

// TestDecideNaNForecast: a NaN forecast must refuse to attack. NaN
// compares false with any threshold, so the plain pred > gamma guard
// would fall through to the binary search and launch a full-kMax
// attack on a garbage prediction; the trigger holds fire explicitly.
func TestDecideNaNForecast(t *testing.T) {
	sh := NewSafetyHijacker(DefaultSafetyHijackerConfig(),
		map[Vector]Oracle{VectorDisappear: nanOracle{}})
	dec, err := sh.Decide(edgeState(), VectorDisappear, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Attack {
		t.Errorf("NaN forecast launched an attack (K=%d)", dec.K)
	}
	// Whatever the decision, the predicted delta must surface as NaN
	// (the record layer sanitizes it; the core must not invent a
	// number).
	if !math.IsNaN(dec.PredictedDelta) {
		t.Errorf("PredictedDelta = %v, want NaN propagated", dec.PredictedDelta)
	}
}

// TestDecideNoAttackBeyondKMax: when even the stealth-bounded maximum
// duration cannot push the potential below gamma, the trigger holds
// fire and reports the forecast it based that on.
func TestDecideNoAttackBeyondKMax(t *testing.T) {
	sh := NewSafetyHijacker(DefaultSafetyHijackerConfig(),
		map[Vector]Oracle{VectorMoveOut: farOracle{}})
	dec, err := sh.Decide(edgeState(), VectorMoveOut, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Attack {
		t.Error("attack launched although the forecast never crosses gamma")
	}
	if dec.PredictedDelta != 1e6 {
		t.Errorf("PredictedDelta = %v, want the kMax forecast recorded", dec.PredictedDelta)
	}
}

// TestDecideKMinClamp: an immediately-effective attack still runs for
// KMin frames — shorter injections are not worth the exposure.
func TestDecideKMinClamp(t *testing.T) {
	cfg := DefaultSafetyHijackerConfig()
	sh := NewSafetyHijacker(cfg, map[Vector]Oracle{VectorDisappear: cliffOracle{}})
	dec, err := sh.Decide(edgeState(), VectorDisappear, sim.ClassPedestrian)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Attack {
		t.Fatal("cliff forecast did not trigger an attack")
	}
	if dec.K != cfg.KMin {
		t.Errorf("K = %d, want the KMin clamp %d", dec.K, cfg.KMin)
	}
}

// TestDecideWithOverridesThresholds: DecideWith consults the same
// oracles under caller thresholds — the parameterized-policy hook.
func TestDecideWithOverridesThresholds(t *testing.T) {
	sh := NewSafetyHijacker(DefaultSafetyHijackerConfig(), nil)
	s := State{Delta: 30, VRel: geom.Vec2{X: -8}, EVSpeed: 12}

	base, err := sh.Decide(s, VectorDisappear, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}

	// A stricter (lower) gamma needs more frames; a tiny KMax refuses.
	strict := DefaultSafetyHijackerConfig()
	strict.Gamma = 2
	sdec, err := sh.DecideWith(strict, s, VectorDisappear, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if base.Attack && sdec.Attack && sdec.K <= base.K {
		t.Errorf("stricter gamma chose K=%d, not longer than the default's K=%d", sdec.K, base.K)
	}

	tiny := DefaultSafetyHijackerConfig()
	tiny.KMaxVehicle = 1
	tiny.KMin = 1
	tdec, err := sh.DecideWith(tiny, s, VectorDisappear, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if tdec.Attack && base.Attack && base.K > 1 {
		t.Error("KMax=1 config still attacked although the default needed more frames")
	}

	// DecideWith with the hijacker's own config is Decide exactly.
	same, err := sh.DecideWith(DefaultSafetyHijackerConfig(), s, VectorDisappear, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Errorf("DecideWith(default) = %+v, Decide = %+v", same, base)
	}
}
