package core

import (
	"sync"
	"testing"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/stats"
)

// TestInferBatcherMatchesUnbatched runs several concurrent "lanes",
// each issuing its own deterministic query sequence through a shared
// batcher, and requires every answer to be bit-identical to the same
// query through an unbatched NNOracle — regardless of how the lanes'
// queries interleave into flushes.
func TestInferBatcherMatchesUnbatched(t *testing.T) {
	rng := stats.NewRNG(21)
	net := nn.NewRegressor(EncodeDim, rng)
	src := map[Vector]Oracle{
		VectorDisappear: &NNOracle{Net: net},
		VectorMoveOut:   &NNOracle{Net: net.Clone()},
	}

	const lanes = 4
	const queries = 200
	b := NewInferBatcher()
	results := make([][]float64, lanes)
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			// Per-lane oracle clones, as each engine lane's Scratch holds.
			wrapped := b.WrapOracles(CloneOracles(src))
			lrng := stats.NewRNG(int64(lane) * 977)
			b.EpisodeStart()
			defer b.EpisodeEnd()
			out := make([]float64, 0, queries)
			for q := 0; q < queries; q++ {
				s := State{
					Delta: lrng.Uniform(0, 40),
					VRel:  geom.V(lrng.Normal(0, 3), lrng.Normal(0, 1)),
					ARel:  geom.V(lrng.Normal(0, 1), lrng.Normal(0, 0.5)),
				}
				v := VectorDisappear
				if q%3 == 0 {
					v = VectorMoveOut
				}
				out = append(out, wrapped[v].PredictDelta(s, 1+q%59))
			}
			results[lane] = out
		}(lane)
	}
	wg.Wait()

	for lane := 0; lane < lanes; lane++ {
		ref := CloneOracles(src)
		lrng := stats.NewRNG(int64(lane) * 977)
		for q := 0; q < queries; q++ {
			s := State{
				Delta: lrng.Uniform(0, 40),
				VRel:  geom.V(lrng.Normal(0, 3), lrng.Normal(0, 1)),
				ARel:  geom.V(lrng.Normal(0, 1), lrng.Normal(0, 0.5)),
			}
			v := VectorDisappear
			if q%3 == 0 {
				v = VectorMoveOut
			}
			want := ref[v].PredictDelta(s, 1+q%59)
			if got := results[lane][q]; got != want {
				t.Fatalf("lane %d query %d: batched %v, unbatched %v (must be bit-identical)", lane, q, got, want)
			}
		}
	}
}

// TestInferBatcherPassThrough: analytic oracles must not be wrapped —
// they answer inline without parking the lane, which is what keeps
// nil-oracle campaigns free of batching overhead.
func TestInferBatcherPassThrough(t *testing.T) {
	b := NewInferBatcher()
	an := NewAnalyticOracle(VectorDisappear)
	wrapped := b.WrapOracles(map[Vector]Oracle{VectorDisappear: an})
	if wrapped[VectorDisappear] != Oracle(an) {
		t.Fatal("analytic oracle was wrapped")
	}
	if b.WrapOracles(nil) != nil {
		t.Fatal("nil oracle map did not stay nil")
	}
}

// TestInferBatcherSingleLane: with one active lane every query must
// answer immediately (batch of one), and queries issued outside an
// EpisodeStart window must not deadlock.
func TestInferBatcherSingleLane(t *testing.T) {
	rng := stats.NewRNG(5)
	net := nn.NewRegressor(EncodeDim, rng)
	b := NewInferBatcher()
	wrapped := b.WrapOracles(map[Vector]Oracle{VectorDisappear: &NNOracle{Net: net}})
	ref := &NNOracle{Net: net.Clone()}
	s := State{Delta: 20, VRel: geom.V(-3, 0)}

	// Outside any episode window.
	if got, want := wrapped[VectorDisappear].PredictDelta(s, 10), ref.PredictDelta(s, 10); got != want {
		t.Fatalf("out-of-episode query: got %v want %v", got, want)
	}
	// Inside a single-lane window.
	b.EpisodeStart()
	if got, want := wrapped[VectorDisappear].PredictDelta(s, 31), ref.PredictDelta(s, 31); got != want {
		t.Fatalf("single-lane query: got %v want %v", got, want)
	}
	b.EpisodeEnd()
}
