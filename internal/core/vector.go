// Package core implements RoboTack, the paper's contribution: smart
// malware that sits on the EV's camera link and hijacks one object's
// perceived trajectory at the most damaging moment.
//
// The package mirrors the paper's decomposition:
//
//   - the scenario matcher (§IV-A, Table I) decides WHAT to attack;
//   - the safety hijacker (§IV-B) — a neural network predicting the
//     future safety potential under a k-frame attack, searched with
//     binary search — decides WHEN and for HOW LONG;
//   - the trajectory hijacker (§IV-C, Eq. 4) decides HOW: per-frame
//     pixel perturbations bounded by the Kalman noise envelope and the
//     Hungarian association constraint.
//
// Malware ties the three together per Algorithm 1 and implements the
// sensor.Tap interface so it can be installed on the camera link.
// Baseline-Random and "R w/o SH" (random timing) variants are provided
// for the paper's comparisons.
package core

import (
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/sim"
)

// Vector is an attack vector from the paper's §III-C taxonomy.
type Vector int

// Attack vectors.
const (
	VectorNone Vector = iota
	VectorMoveOut
	VectorMoveIn
	VectorDisappear
)

// String implements fmt.Stringer.
func (v Vector) String() string {
	switch v {
	case VectorNone:
		return "none"
	case VectorMoveOut:
		return "Move_Out"
	case VectorMoveIn:
		return "Move_In"
	case VectorDisappear:
		return "Disappear"
	default:
		return fmt.Sprintf("vector(%d)", int(v))
	}
}

// Trajectory classifies the target object's current lateral motion
// relative to the EV lane.
type Trajectory int

// Trajectory classes (rows of Table I).
const (
	TrajectoryKeep Trajectory = iota + 1
	TrajectoryMovingIn
	TrajectoryMovingOut
)

// String implements fmt.Stringer.
func (t Trajectory) String() string {
	switch t {
	case TrajectoryKeep:
		return "keep"
	case TrajectoryMovingIn:
		return "moving-in"
	case TrajectoryMovingOut:
		return "moving-out"
	default:
		return fmt.Sprintf("trajectory(%d)", int(t))
	}
}

// ClassifyTrajectory derives the Table I row from the object's lateral
// position and velocity: motion toward the lane center is "moving in",
// away is "moving out", and anything below the deadband is "keep".
func ClassifyTrajectory(relY, velY, deadband float64) Trajectory {
	if math.Abs(velY) < deadband {
		return TrajectoryKeep
	}
	toCenter := -relY // lane center is y = 0 in the EV frame
	if toCenter*velY > 0 {
		return TrajectoryMovingIn
	}
	return TrajectoryMovingOut
}

// MatcherConfig parametrizes the scenario matcher.
type MatcherConfig struct {
	// VyDeadband separates "keep" from lateral motion.
	VyDeadband float64
	// LaneHalfWidth decides in-lane membership of the target.
	LaneHalfWidth float64
	// PreferDisappearFor chooses between the interchangeable
	// Move_Out/Disappear cells of Table I: the paper found Disappear
	// better suited to pedestrians (small attack window) and Move_Out
	// to vehicles (§IV-A).
	PreferDisappearFor sim.Class
}

// DefaultMatcherConfig returns the paper's choices.
func DefaultMatcherConfig() MatcherConfig {
	return MatcherConfig{
		VyDeadband:         0.35,
		LaneHalfWidth:      1.75,
		PreferDisappearFor: sim.ClassPedestrian,
	}
}

// Matcher is the rule-based scenario matcher (intentionally rule-based
// to minimize execution time and evade detection, §IV-A).
type Matcher struct {
	cfg MatcherConfig
}

// NewMatcher creates a scenario matcher.
func NewMatcher(cfg MatcherConfig) *Matcher { return &Matcher{cfg: cfg} }

// Match implements Table I: given the target object's lateral state and
// class, it returns the attack vector to use, or VectorNone when the
// configuration is not attackable (the "—" cells).
func (m *Matcher) Match(relY, velY float64, width float64, cls sim.Class) Vector {
	inLane := math.Abs(relY) < m.cfg.LaneHalfWidth+width/2
	traj := ClassifyTrajectory(relY, velY, m.cfg.VyDeadband)

	outOrDisappear := VectorMoveOut
	if cls == m.cfg.PreferDisappearFor {
		outOrDisappear = VectorDisappear
	}

	switch {
	case inLane && traj == TrajectoryKeep:
		return outOrDisappear
	case inLane && traj == TrajectoryMovingOut:
		return VectorMoveIn
	case inLane: // moving in while already in lane: "—"
		return VectorNone
	case !inLane && traj == TrajectoryMovingIn:
		return outOrDisappear
	case !inLane && traj == TrajectoryKeep:
		return VectorMoveIn
	default: // out of lane, moving out: "—"
		return VectorNone
	}
}
