package core

import "github.com/robotack/robotack/internal/sim"

// PolicyInput is the malware's per-frame view handed to an attack
// policy once a matched target is available: the oracle input state,
// the scenario matcher's Table I vector, and the target's class and
// image-relevant geometry. It carries everything a policy needs to
// decide WHEN to fire and HOW to shape the injection without giving it
// access to ADS or simulator ground truth (the §III-B threat model is
// unchanged — policies see only what the malware's own camera-side
// pipeline reconstructs).
type PolicyInput struct {
	// Frame is the episode frame index.
	Frame int
	// State is the safety-hijacker oracle input (delta, vrel, arel,
	// EV speed) for the matched target.
	State State
	// Vector is the scenario matcher's Table I choice for this target.
	Vector Vector
	// Class is the target's perceived class.
	Class sim.Class
	// RelY is the target's lateral position in the EV frame (m).
	RelY float64
	// Width is the target's perceived width (m).
	Width float64
}

// PolicyDecision is an attack policy's answer: whether to launch this
// frame, with what vector, for how long, and how to shape the injected
// trajectory. The zero shaping values (OffsetScale 0, OffsetBiasM 0,
// StepScale 0, Delay 0) mean "exactly the paper's geometry" — the
// launch path treats 0 scales as 1.0 and applies no bias or delay, so
// a decision carrying only Attack/Vector/K/PredictedDelta reproduces
// the fixed trigger bit for bit.
type PolicyDecision struct {
	Attack bool
	// Vector replaces the matcher's choice (the masking choice: the
	// Move_Out/Disappear cells of Table I are interchangeable).
	// VectorNone keeps the matcher's vector.
	Vector Vector
	// K is the attack duration in frames (Eq. 2's k*).
	K int
	// PredictedDelta is the policy's delta_{t+K} forecast, recorded
	// for the Fig. 8 study (NaN: no forecast).
	PredictedDelta float64
	// Delay postpones the perturbation onset by this many frames
	// after launch (timing jitter; ignored for Disappear).
	Delay int
	// OffsetScale multiplies the planned lateral displacement Omega
	// (0 means 1.0 — unscaled).
	OffsetScale float64
	// OffsetBiasM adds meters to Omega after scaling.
	OffsetBiasM float64
	// StepScale multiplies the Move_Out per-frame drift cap (0 means
	// 1.0 — the paper's fusion-following rate).
	StepScale float64
}

// TriggerPolicy is the adaptive-attack hook: smart-mode malware with a
// policy installed consults it instead of the built-in fixed
// safety-hijacking trigger whenever the matcher proposes an attackable
// target. The safety hijacker (with its per-episode oracles) is passed
// in so policies can run oracle searches under their own thresholds.
//
// Implementations must be stateless and goroutine-safe: one policy
// value is shared by every worker of a campaign batch, and Consult may
// be called concurrently from different episodes (each with its own
// SafetyHijacker). Determinism of the whole campaign rests on Consult
// being a pure function of its inputs.
type TriggerPolicy interface {
	Consult(in PolicyInput, sh *SafetyHijacker) (PolicyDecision, error)
}
