package core

import (
	"math"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/track"
)

// TrajectoryHijackerConfig parametrizes the how-to-attack mechanics
// (paper §IV-C, Eq. 4).
type TrajectoryHijackerConfig struct {
	// StealthFraction scales the per-frame shift inside the Kalman
	// noise envelope: omega_t in [mu - sigma, mu + sigma] of the
	// class's characterized measurement noise.
	StealthFraction float64
	// GateFraction caps the cumulative displacement of the reported box
	// from the (replica) tracker's prediction at this fraction of the
	// association gate — the M <= lambda constraint that keeps the
	// detection associated with its original tracker. It is ignored for
	// Disappear (the paper relaxes the constraint there).
	GateFraction float64
	// MaxStepM caps the per-frame drift in ground meters: drifting
	// faster than the fusion follows would dissociate the camera
	// evidence from the fused object and waste the perturbation.
	MaxStepM float64
	// Background and Foreground are the raster intensities used when
	// painting and erasing silhouette strips.
	Background, Foreground float64
}

// DefaultTrajectoryHijackerConfig returns the tuning used in the
// reproduction: shifts up to ~0.9 sigma per frame, staying within 85%
// of the association gate.
func DefaultTrajectoryHijackerConfig() TrajectoryHijackerConfig {
	return TrajectoryHijackerConfig{
		StealthFraction: 0.9,
		GateFraction:    0.85,
		MaxStepM:        0.3,
		Background:      0.05,
		Foreground:      0.9,
	}
}

// TrajectoryHijacker perturbs camera frames so the target's detected
// bounding box drifts laterally (Move_Out / Move_In) or vanishes
// (Disappear). It runs a replica of the ADS tracker configuration to
// honor the association constraint of Eq. 4 — the threat model grants
// the attacker the ADS source code (§III-B).
type TrajectoryHijacker struct {
	cfg    TrajectoryHijackerConfig
	trkCfg track.Config

	vector Vector
	// direction is +1 to shift the box toward larger u (image right),
	// -1 toward smaller u.
	direction float64
	// targetOffsetPx is Omega in pixels: the total lateral displacement
	// to reach (then hold).
	targetOffsetPx float64
	// delay postpones the drift (Move_In times the fake cut-in to
	// materialize only when the EV is too close to brake comfortably).
	delay int
	// stepCapPx is MaxStepM converted to pixels at the target's depth.
	stepCapPx float64
	// offsetPx is the accumulated applied shift.
	offsetPx float64
	// shiftFrames counts frames spent still enlarging the offset — the
	// K' of §VI-E.
	shiftFrames int
	holding     bool
}

// SetDelay postpones the drift by n frames.
func (th *TrajectoryHijacker) SetDelay(n int) {
	if n > 0 {
		th.delay = n
	}
}

// AddDelay postpones the drift by n further frames (policy timing
// jitter stacks on top of the Move_In cut-in timing).
func (th *TrajectoryHijacker) AddDelay(n int) {
	if n > 0 {
		th.delay += n
	}
}

// SetStepCapPx bounds the per-frame drift in pixels.
func (th *TrajectoryHijacker) SetStepCapPx(px float64) {
	if px > 0 {
		th.stepCapPx = px
	}
}

// NewTrajectoryHijacker prepares a hijack of the given vector.
// directionRight selects the lateral shift direction; targetOffsetPx is
// Omega expressed in pixels at the target's depth.
func NewTrajectoryHijacker(cfg TrajectoryHijackerConfig, trkCfg track.Config, v Vector, directionRight bool, targetOffsetPx float64) *TrajectoryHijacker {
	dir := -1.0
	if directionRight {
		dir = 1.0
	}
	return &TrajectoryHijacker{
		cfg:            cfg,
		trkCfg:         trkCfg,
		vector:         v,
		direction:      dir,
		targetOffsetPx: math.Abs(targetOffsetPx),
	}
}

// ShiftFrames returns K': how many frames were needed to build up the
// full offset (Fig. 7).
func (th *TrajectoryHijacker) ShiftFrames() int { return th.shiftFrames }

// Offset returns the currently applied lateral offset in pixels.
func (th *TrajectoryHijacker) Offset() float64 { return th.offsetPx * th.direction }

// Perturb rewrites img so that the target detection det appears
// shifted (or erased). adsPredicted is the replica-tracker prediction
// of where the ADS currently believes the box to be; it anchors the
// association constraint. Returns the applied per-frame shift in
// pixels.
func (th *TrajectoryHijacker) Perturb(img *sensor.Image, det detect.Detection, adsPredicted geom.Rect, cls sim.Class) float64 {
	if th.vector == VectorDisappear {
		// Erase the silhouette entirely: the detector sees background,
		// a misdetection indistinguishable from the natural runs of
		// Fig. 5. The association constraint is relaxed (paper §IV-C).
		th.shiftFrames++ // K' accumulates until the track actually drops
		grow := geom.R(det.Raw.Min.X-1, det.Raw.Min.Y-1, det.Raw.W+2, det.Raw.H+2)
		img.FillRect(grow, th.cfg.Background)
		return 0
	}
	if th.delay > 0 {
		th.delay--
		return 0
	}

	// Per-frame stealth budget: within [mu-sigma, mu+sigma] of the
	// class noise model, normalized by box width (§IV-C).
	np := th.trkCfg.VehicleNoise
	if cls == sim.ClassPedestrian {
		np = th.trkCfg.PedestrianNoise
	}
	budget := th.cfg.StealthFraction * (math.Abs(np.MuX) + np.SigmaX) * det.Raw.W
	if th.stepCapPx > 0 && budget > th.stepCapPx {
		budget = th.stepCapPx
	}

	// Association constraint M <= lambda: the shifted box center must
	// stay within GateFraction of the gate around the ADS tracker's
	// predicted center.
	gate := th.cfg.GateFraction * th.trkCfg.Gate(cls, adsPredicted.W)
	predCenter := adsPredicted.Center().X
	trueCenter := det.Raw.Center().X

	step := budget
	if remaining := th.targetOffsetPx - th.offsetPx; step > remaining {
		step = remaining
	}
	// Cap so that |trueCenter + offset - predCenter| <= gate.
	maxOffset := gate - th.direction*(trueCenter-predCenter)
	if total := th.offsetPx + step; total > maxOffset {
		step = math.Max(maxOffset-th.offsetPx, 0)
	}
	if step > 0 {
		th.offsetPx += step
		th.shiftFrames++
	} else if th.offsetPx >= th.targetOffsetPx {
		th.holding = true
	}

	th.applyShift(img, det.Raw)
	return step * th.direction
}

// Holding reports whether the hijacker has reached Omega and is now
// maintaining the faked trajectory (the K - K' phase of §VI-E).
func (th *TrajectoryHijacker) Holding() bool { return th.holding }

// applyShift rewrites the silhouette of box shifted by the accumulated
// offset: the vacated strip becomes background, the newly covered strip
// becomes foreground. Only pixels overlapping the original or shifted
// box are touched — the adversarial patch intersects the detected box,
// per the IoU(o + omega, patch) >= gamma constraint of Eq. 4.
func (th *TrajectoryHijacker) applyShift(img *sensor.Image, box geom.Rect) {
	off := th.offsetPx * th.direction
	if off == 0 {
		return
	}
	shifted := box.Translate(geom.V(off, 0))
	// Erase the original silhouette area not covered by the shifted box.
	if math.Abs(off) >= box.W {
		img.FillRectAA(box, th.cfg.Background)
	} else if off > 0 {
		img.FillRectAA(geom.R(box.Min.X, box.Min.Y, off, box.H), th.cfg.Background)
	} else {
		img.FillRectAA(geom.R(shifted.Min.X+shifted.W, box.Min.Y, -off, box.H), th.cfg.Background)
	}
	// Paint the shifted silhouette.
	img.FillRectAA(shifted, th.cfg.Foreground)
}
