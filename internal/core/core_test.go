package core

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
	"github.com/robotack/robotack/internal/track"
)

func TestClassifyTrajectory(t *testing.T) {
	tests := []struct {
		name string
		y    float64
		vy   float64
		want Trajectory
	}{
		{"static", 3, 0.1, TrajectoryKeep},
		{"approaching-center-from-right", 3, -1.0, TrajectoryMovingIn},
		{"leaving-center-to-right", 1, 1.0, TrajectoryMovingOut},
		{"approaching-center-from-left", -3, 1.0, TrajectoryMovingIn},
		{"leaving-center-to-left", -1, -1.0, TrajectoryMovingOut},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyTrajectory(tt.y, tt.vy, 0.35); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

// Table I of the paper, cell by cell.
func TestMatcherTableI(t *testing.T) {
	m := NewMatcher(DefaultMatcherConfig())
	tests := []struct {
		name  string
		y, vy float64
		cls   sim.Class
		want  Vector
	}{
		{"in-lane keep vehicle -> Move_Out", 0, 0, sim.ClassVehicle, VectorMoveOut},
		{"in-lane keep pedestrian -> Disappear", 0, 0, sim.ClassPedestrian, VectorDisappear},
		{"in-lane moving-out -> Move_In", 0.8, 1.2, sim.ClassVehicle, VectorMoveIn},
		{"in-lane moving-in -> none", 0.8, -1.2, sim.ClassVehicle, VectorNone},
		{"out-of-lane moving-in vehicle -> Move_Out", 3.5, -1.2, sim.ClassVehicle, VectorMoveOut},
		{"out-of-lane moving-in ped -> Disappear", 3.5, -1.2, sim.ClassPedestrian, VectorDisappear},
		{"out-of-lane keep -> Move_In", 3.5, 0, sim.ClassVehicle, VectorMoveIn},
		{"out-of-lane moving-out -> none", 3.5, 1.2, sim.ClassVehicle, VectorNone},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Match(tt.y, tt.vy, 1.9, tt.cls); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAnalyticOracleMonotoneInK(t *testing.T) {
	s := State{Delta: 40, VRel: geom.V(-5, 0), EVSpeed: 12.5}
	for _, v := range []Vector{VectorMoveOut, VectorMoveIn, VectorDisappear} {
		o := NewAnalyticOracle(v)
		prev := math.Inf(1)
		for k := 1; k <= 90; k++ {
			p := o.PredictDelta(s, k)
			if p > prev+1e-9 {
				t.Fatalf("%v: f(k) not non-increasing at k=%d", v, k)
			}
			prev = p
		}
	}
}

func TestSafetyHijackerDecide(t *testing.T) {
	sh := NewSafetyHijacker(DefaultSafetyHijackerConfig(), nil)

	// Far target, low closing speed: no K <= KMax pushes delta below
	// gamma, so the attack must not launch.
	far := State{Delta: 80, VRel: geom.V(-2, 0), EVSpeed: 12.5}
	dec, err := sh.Decide(far, VectorMoveOut, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Attack {
		t.Fatalf("should not attack from delta=80: %+v", dec)
	}

	// Close target with real closing speed: attack with a finite K.
	near := State{Delta: 22, VRel: geom.V(-5.5, 0), EVSpeed: 12.5}
	dec, err = sh.Decide(near, VectorMoveOut, sim.ClassVehicle)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Attack {
		t.Fatal("should attack from delta=22")
	}
	if dec.K < 1 || dec.K > sh.KMax(sim.ClassVehicle) {
		t.Errorf("K = %d outside bounds", dec.K)
	}
	if dec.PredictedDelta > DefaultSafetyHijackerConfig().Gamma+1e-9 {
		t.Errorf("predicted delta %v above gamma", dec.PredictedDelta)
	}

	// Binary search returns the MINIMAL such k: k-1 must not suffice.
	if dec.K > 1 {
		o := NewAnalyticOracle(VectorMoveOut)
		if o.PredictDelta(near, dec.K-1) <= DefaultSafetyHijackerConfig().Gamma {
			t.Errorf("K=%d is not minimal", dec.K)
		}
	}
}

func TestSafetyHijackerKMaxClassBound(t *testing.T) {
	sh := NewSafetyHijacker(DefaultSafetyHijackerConfig(), nil)
	if sh.KMax(sim.ClassPedestrian) >= sh.KMax(sim.ClassVehicle) {
		t.Error("pedestrian KMax must be smaller (tighter stealth window)")
	}
}

func TestNNOracleRoundTrip(t *testing.T) {
	rng := stats.NewRNG(3)
	// Train a tiny net to mimic the analytic Move_Out oracle.
	analytic := NewAnalyticOracle(VectorMoveOut)
	var ds struct {
		x [][]float64
		y []float64
	}
	for i := 0; i < 400; i++ {
		s := State{
			Delta:   rng.Uniform(5, 60),
			VRel:    geom.V(rng.Uniform(-10, 0), 0),
			EVSpeed: 12.5,
		}
		k := 1 + rng.IntN(60)
		ds.x = append(ds.x, s.Encode(k))
		ds.y = append(ds.y, analytic.PredictDelta(s, k))
	}
	_ = ds // Encode shape check only: the NN training is covered in nn tests.
	if got := len(ds.x[0]); got != EncodeDim {
		t.Fatalf("encode dim = %d, want %d", got, EncodeDim)
	}
}

func newHijackDetection(box geom.Rect) detect.Detection {
	return detect.Detection{
		Box: box, Raw: box,
		Bottom: box.Min.Y + box.H, CenterU: box.Center().X,
		Class: sim.ClassVehicle, Area: int(box.Area()), Score: 1,
	}
}

func TestTrajectoryHijackerShiftsDetectedBox(t *testing.T) {
	img := sensor.NewImage(192, 108)
	img.Clear(0.05)
	box := geom.R(90, 50, 14, 12)
	img.FillRect(box, 0.9)

	th := NewTrajectoryHijacker(DefaultTrajectoryHijackerConfig(), track.DefaultConfig(),
		VectorMoveOut, true, 12)
	det := newHijackDetection(box)
	step := th.Perturb(img, det, box, sim.ClassVehicle)
	if step <= 0 {
		t.Fatalf("step = %v, want positive shift", step)
	}

	// The ADS-side detector must now see the box displaced by the step.
	cfg := detect.DefaultConfig()
	cfg.DisableNoise = true
	adsDets := detect.New(cfg, nil).Detect(img)
	if len(adsDets) != 1 {
		t.Fatalf("ADS sees %d detections, want 1", len(adsDets))
	}
	got := adsDets[0].Box.Center().X - box.Center().X
	if math.Abs(got-step) > 1.5 {
		t.Errorf("ADS-observed shift %v px, applied %v px", got, step)
	}
}

func TestTrajectoryHijackerStealthBudget(t *testing.T) {
	trkCfg := track.DefaultConfig()
	cfg := DefaultTrajectoryHijackerConfig()
	box := geom.R(90, 50, 14, 12)
	th := NewTrajectoryHijacker(cfg, trkCfg, VectorMoveOut, true, 100)

	np := trkCfg.VehicleNoise
	budget := cfg.StealthFraction*(math.Abs(np.MuX)+np.SigmaX)*box.W + 1e-9
	img := sensor.NewImage(192, 108)
	for i := 0; i < 10; i++ {
		img.Clear(0.05)
		img.FillRect(box, 0.9)
		// Replica prediction follows the shifted box (ideal tracker).
		pred := box.Translate(geom.V(th.Offset(), 0))
		step := th.Perturb(img, newHijackDetection(box), pred, sim.ClassVehicle)
		if step > budget {
			t.Fatalf("frame %d: step %v exceeds stealth budget %v", i, step, budget)
		}
	}
}

func TestTrajectoryHijackerReachesOmegaThenHolds(t *testing.T) {
	trkCfg := track.DefaultConfig()
	box := geom.R(60, 50, 14, 12)
	const omega = 20.0
	th := NewTrajectoryHijacker(DefaultTrajectoryHijackerConfig(), trkCfg, VectorMoveOut, true, omega)
	img := sensor.NewImage(192, 108)
	for i := 0; i < 30; i++ {
		img.Clear(0.05)
		img.FillRect(box, 0.9)
		pred := box.Translate(geom.V(th.Offset(), 0))
		th.Perturb(img, newHijackDetection(box), pred, sim.ClassVehicle)
	}
	if got := th.Offset(); math.Abs(got-omega) > 1e-6 {
		t.Errorf("offset = %v, want omega = %v", got, omega)
	}
	if !th.Holding() {
		t.Error("hijacker should be holding after reaching omega")
	}
	if kp := th.ShiftFrames(); kp < 2 || kp > 15 {
		t.Errorf("K' = %d, want a small number of shift frames", kp)
	}
}

func TestTrajectoryHijackerDisappearErases(t *testing.T) {
	img := sensor.NewImage(192, 108)
	img.Clear(0.05)
	box := geom.R(90, 50, 14, 12)
	img.FillRect(box, 0.9)

	th := NewTrajectoryHijacker(DefaultTrajectoryHijackerConfig(), track.DefaultConfig(),
		VectorDisappear, true, 0)
	th.Perturb(img, newHijackDetection(box), box, sim.ClassVehicle)

	cfg := detect.DefaultConfig()
	cfg.DisableNoise = true
	if dets := detect.New(cfg, nil).Detect(img); len(dets) != 0 {
		t.Fatalf("ADS still sees %d detections after Disappear", len(dets))
	}
}

func TestMalwareModes(t *testing.T) {
	cam := sensor.DefaultCamera()
	for _, mode := range []Mode{ModeSmart, ModeNoSH, ModeRandom} {
		m := New(DefaultConfig(mode), cam, nil, stats.NewRNG(1))
		if m == nil {
			t.Fatalf("mode %v: nil malware", mode)
		}
		if m.Attacking() {
			t.Errorf("mode %v: attacking before any frame", mode)
		}
	}
}

// End-to-end: RoboTack on a DS-1-like world must hijack the lead
// vehicle's trajectory and keep each per-frame shift inside the noise
// envelope.
func TestMalwareSmartLaunchesOnApproach(t *testing.T) {
	cam := sensor.DefaultCamera()
	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(45)
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(60, 0), Size: sim.SizeSUV,
		Behavior: &sim.Cruise{Speed: sim.Kph(25)}})

	m := New(DefaultConfig(ModeSmart), cam, nil, stats.NewRNG(2))
	for i := 0; i < 15*30 && !w.Halted; i++ {
		frame := cam.Capture(w, i)
		m.SetEVSpeed(w.EV.Speed)
		m.Process(frame.Image, i)
		w.Step(0) // EV coasts; we only test the malware's decisions here
	}
	log := m.Log()
	if !log.Launched {
		t.Fatal("smart malware never launched on a closing lead vehicle")
	}
	if log.Vector != VectorMoveOut {
		t.Errorf("vector = %v, want Move_Out for an in-lane vehicle", log.Vector)
	}
	if log.TargetClass != sim.ClassVehicle {
		t.Errorf("target class = %v", log.TargetClass)
	}
	if log.K < 1 || log.K > DefaultSafetyHijackerConfig().KMaxVehicle {
		t.Errorf("K = %d out of bounds", log.K)
	}
	np := track.DefaultConfig().VehicleNoise
	// Stealth: no single-frame shift may exceed ~1 sigma of the noise
	// envelope for plausible box widths (<= 30 px at launch range).
	if log.MaxStepPx > (math.Abs(np.MuX)+np.SigmaX)*30 {
		t.Errorf("max per-frame step %v px breaks the stealth envelope", log.MaxStepPx)
	}
}

func TestMalwareSingleShot(t *testing.T) {
	cam := sensor.DefaultCamera()
	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(45)
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(55, 0), Size: sim.SizeSUV,
		Behavior: &sim.Cruise{Speed: sim.Kph(25)}})
	m := New(DefaultConfig(ModeSmart), cam, nil, stats.NewRNG(2))

	launches := 0
	wasAttacking := false
	for i := 0; i < 15*40 && !w.Halted; i++ {
		frame := cam.Capture(w, i)
		m.SetEVSpeed(w.EV.Speed)
		m.Process(frame.Image, i)
		if m.Attacking() && !wasAttacking {
			launches++
		}
		wasAttacking = m.Attacking()
		w.Step(0)
	}
	if launches > 1 {
		t.Errorf("launches = %d, want at most 1 (SingleShot)", launches)
	}
}
