package core

import (
	"sync"

	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/obs"
)

// Cross-episode inference batching. A worker running k lockstep
// episode lanes (engine.WithEpisodeBatch) funnels every lane's oracle
// query through one InferBatcher: a querying lane parks until every
// other in-episode lane has either parked on a query of its own or
// finished its episode, then the accumulated queries flush through one
// batched forward pass per attack vector (nn.Network.InferBatch) and
// all parked lanes resume with their answers.
//
// Batching is opportunistic, not mandatory: the flush condition is
// "no lane can make progress without an answer", so lanes that never
// query (analytic oracles, golden episodes) run at full speed and an
// episode's own computation sequence is untouched. Determinism holds
// because every clone of a vector's oracle carries identical weights
// and InferBatch row r is bit-identical to the unbatched Infer on row
// r — which lane's clone executes the flush cannot be observed in the
// results.
var (
	batchFlushRows = obs.NewHistogram("robotack_infer_batch_flush_rows",
		"Oracle queries coalesced per batched-inference flush.",
		obs.ExpBuckets(1, 2, 8))
	batchOccupancy = obs.NewHistogram("robotack_infer_batch_occupancy",
		"Fraction of active episode lanes contributing a query at flush time.",
		[]float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1})
)

// laneSlot is one lane's parked oracle query. A lane issues at most
// one query at a time, so each wrapped oracle owns its slot and the
// batcher's queue holds pointers — no per-query allocation.
type laneSlot struct {
	vec     Vector
	net     *nn.Network
	in      [EncodeDim]float64
	out     float64
	pending bool
}

// vecExec is the per-vector flush executor: the first-seen clone of
// the vector's network (all lane clones carry identical weights, so
// any one of them produces bit-identical rows) plus the batched
// scratch and the row-gather buffer.
type vecExec struct {
	net     *nn.Network
	scratch *nn.BatchScratch
	x       []float64
	rows    []*laneSlot
}

// InferBatcher gathers same-vector neural-oracle queries across the
// episode lanes of one engine worker and answers them with batched
// forward passes. One batcher serves one worker's lane group; lanes
// share it through engine group state (see engine.WithWorkerGroupState
// and experiment's campaign wiring).
type InferBatcher struct {
	mu   sync.Mutex
	cond sync.Cond

	active  int // lanes currently inside an episode
	blocked int // lanes parked waiting for a flush
	queue   []*laneSlot
	execs   map[Vector]*vecExec

	obsInit   bool
	flushRows obs.HistogramHandle
	occupancy obs.HistogramHandle
}

// NewInferBatcher returns an empty batcher.
func NewInferBatcher() *InferBatcher {
	b := &InferBatcher{execs: make(map[Vector]*vecExec)}
	b.cond.L = &b.mu
	return b
}

// EpisodeStart marks one lane as inside an episode. Every call must be
// paired with EpisodeEnd (the experiment runner defers it), or parked
// queries would wait for a lane that never progresses.
func (b *InferBatcher) EpisodeStart() {
	b.mu.Lock()
	b.active++
	b.mu.Unlock()
}

// EpisodeEnd marks one lane's episode as finished. If every remaining
// in-episode lane is parked on a query, the pending batch flushes now
// — a lane handing its slot back must not strand the others.
func (b *InferBatcher) EpisodeEnd() {
	b.mu.Lock()
	b.active--
	if len(b.queue) > 0 && b.blocked >= b.active {
		b.flushLocked()
	}
	b.mu.Unlock()
}

// WrapOracles derives a batching view of a lane's oracle map: neural
// oracles are replaced by proxies that enqueue their queries on b,
// everything else (the analytic oracle) passes through untouched and
// keeps answering inline. A nil map stays nil.
func (b *InferBatcher) WrapOracles(oracles map[Vector]Oracle) map[Vector]Oracle {
	if oracles == nil {
		return nil
	}
	out := make(map[Vector]Oracle, len(oracles))
	for v, o := range oracles {
		if nno, ok := o.(*NNOracle); ok {
			bo := &batchedNNOracle{b: b}
			bo.slot.vec = v
			bo.slot.net = nno.Net
			out[v] = bo
		} else {
			out[v] = o
		}
	}
	return out
}

// batchedNNOracle is the blocking proxy a lane queries instead of its
// NNOracle: PredictDelta parks the lane in the batcher and returns the
// flushed batch's answer for its row.
type batchedNNOracle struct {
	b    *InferBatcher
	slot laneSlot
}

var _ Oracle = (*batchedNNOracle)(nil)

// PredictDelta implements Oracle.
func (o *batchedNNOracle) PredictDelta(s State, k int) float64 {
	s.EncodeInto(o.slot.in[:0], k)
	return o.b.predict(&o.slot)
}

// predict enqueues the slot and parks until a flush answers it. The
// flush fires as soon as no lane is runnable: when this query blocks
// the last unparked in-episode lane, it executes the batch itself.
func (b *InferBatcher) predict(slot *laneSlot) float64 {
	b.mu.Lock()
	slot.pending = true
	b.queue = append(b.queue, slot)
	b.blocked++
	// active can be <= blocked when the oracle is used outside an
	// EpisodeStart window (direct Run calls); the query then answers
	// immediately as a batch of one instead of deadlocking.
	if b.blocked >= b.active {
		b.flushLocked()
	}
	for slot.pending {
		b.cond.Wait()
	}
	b.blocked--
	out := slot.out
	b.mu.Unlock()
	return out
}

// flushLocked executes every queued query, grouped per attack vector
// into one InferBatch call each, and wakes the parked lanes. Callers
// hold b.mu.
func (b *InferBatcher) flushLocked() {
	n := len(b.queue)
	if n == 0 {
		return
	}
	if en := obs.Enabled(); en {
		if !b.obsInit {
			b.obsInit = true
			b.flushRows = batchFlushRows.Handle()
			b.occupancy = batchOccupancy.Handle()
		}
		b.flushRows.Observe(float64(n))
		if b.active > 0 {
			b.occupancy.Observe(float64(n) / float64(b.active))
		}
	}
	for i := 0; i < n; i++ {
		slot := b.queue[i]
		if slot == nil {
			continue
		}
		ex := b.execs[slot.vec]
		if ex == nil {
			ex = &vecExec{net: slot.net}
			ex.scratch = ex.net.NewBatchScratch(n)
			b.execs[slot.vec] = ex
		}
		ex.rows = ex.rows[:0]
		ex.x = ex.x[:0]
		for j := i; j < n; j++ {
			s := b.queue[j]
			if s == nil || s.vec != slot.vec {
				continue
			}
			ex.rows = append(ex.rows, s)
			ex.x = append(ex.x, s.in[:]...)
			b.queue[j] = nil
		}
		y := ex.net.InferBatch(ex.scratch, ex.x, len(ex.rows))
		for r, s := range ex.rows {
			s.out = y[r]
			s.pending = false
		}
	}
	b.queue = b.queue[:0]
	b.cond.Broadcast()
}
