package core

import (
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/sim"
)

// State is the kinematic input to the safety hijacker's oracle f_alpha:
// the current safety potential delta_t, the target's relative velocity
// and acceleration (paper Eq. 1). EVSpeed is carried for the analytic
// oracle; the neural oracle uses only the paper's inputs.
type State struct {
	Delta   float64
	VRel    geom.Vec2
	ARel    geom.Vec2
	EVSpeed float64
}

// Encode produces the neural-network input vector [delta, vrel, arel, T]
// where T = k frames expressed in seconds.
func (s State) Encode(k int) []float64 {
	return s.EncodeInto(make([]float64, 0, EncodeDim), k)
}

// EncodeInto appends the oracle input vector into dst (re-sliced to
// zero first) and returns it — the allocation-free variant for the
// per-frame prediction path.
func (s State) EncodeInto(dst []float64, k int) []float64 {
	return append(dst[:0], s.Delta, s.VRel.X, s.VRel.Y, s.ARel.X, s.ARel.Y, float64(k)*sim.DT)
}

// EncodeDim is the oracle input dimensionality.
const EncodeDim = 6

// Oracle predicts the safety potential delta_{t+k} if the attack vector
// it models is sustained for k frames starting from state s (the
// function f_alpha of paper Eq. 1).
type Oracle interface {
	PredictDelta(s State, k int) float64
}

// AnalyticOracle is a closed-form constant-kinematics approximation of
// f_alpha. It serves as the dependency-free default and as the
// comparison point for the learned oracle's error study (Fig. 8).
type AnalyticOracle struct {
	Vector Vector
	// BlindAccel is the assumed mean EV acceleration while the attack
	// blinds the planner to the target (Move_Out/Disappear).
	BlindAccel float64
	// ClosingFactor discounts the current closing speed: the ADS keeps
	// braking through the early attack frames (temporal compensation),
	// so the realized decline of delta is slower than raw kinematics.
	ClosingFactor float64
}

var _ Oracle = (*AnalyticOracle)(nil)

// NewAnalyticOracle builds the analytic oracle for a vector.
func NewAnalyticOracle(v Vector) *AnalyticOracle {
	return &AnalyticOracle{Vector: v, BlindAccel: 0.5, ClosingFactor: 0.6}
}

// PredictDelta implements Oracle.
func (o *AnalyticOracle) PredictDelta(s State, k int) float64 {
	t := float64(k) * sim.DT
	switch o.Vector {
	case VectorMoveIn:
		// The target does not move; the EV keeps approaching it at its
		// own speed. The hijack only changes where the planner thinks
		// the target is laterally.
		closing := s.EVSpeed
		return s.Delta - closing*t
	default:
		// Move_Out / Disappear: the planner stops braking for the
		// target, so the EV drifts back toward its cruise speed while
		// the true gap closes.
		closing := -s.VRel.X * o.ClosingFactor
		if closing < 0 {
			closing = 0
		}
		return s.Delta - closing*t - 0.5*o.BlindAccel*t*t
	}
}

// OracleCloner is implemented by oracles whose prediction path keeps
// per-call mutable state and which therefore cannot be shared across
// concurrently running episodes.
type OracleCloner interface {
	Oracle
	// CloneOracle returns an independent copy safe for use from
	// another goroutine.
	CloneOracle() Oracle
}

// CloneOracles derives a per-episode view of an oracle map for
// concurrent use: cloneable oracles are cloned, stateless ones (such
// as the analytic oracle) are shared. A nil map stays nil.
func CloneOracles(oracles map[Vector]Oracle) map[Vector]Oracle {
	if oracles == nil {
		return nil
	}
	out := make(map[Vector]Oracle, len(oracles))
	for v, o := range oracles {
		if c, ok := o.(OracleCloner); ok {
			out[v] = c.CloneOracle()
		} else {
			out[v] = o
		}
	}
	return out
}

// NNOracle wraps a trained feed-forward network (paper §IV-B) as an
// Oracle. Predictions run through the network's pooled inference path
// (nn.Network.Infer), so a warm PredictDelta call performs zero heap
// allocations; the scratch makes an NNOracle single-goroutine —
// concurrent episodes clone it (OracleCloner).
type NNOracle struct {
	Net *nn.Network

	scratch *nn.InferScratch
	in      []float64
}

var _ OracleCloner = (*NNOracle)(nil)

// PredictDelta implements Oracle.
func (o *NNOracle) PredictDelta(s State, k int) float64 {
	if o.scratch == nil {
		o.scratch = o.Net.NewInferScratch()
		o.in = make([]float64, 0, EncodeDim)
	}
	o.in = s.EncodeInto(o.in, k)
	return o.Net.Infer(o.scratch, o.in)[0]
}

// CloneOracle implements OracleCloner: the network's inference scratch
// is per-goroutine, so each concurrent episode runner gets its own
// copy of the weights and scratch.
func (o *NNOracle) CloneOracle() Oracle { return &NNOracle{Net: o.Net.Clone()} }

// SafetyHijackerConfig parametrizes the when-to-attack decision.
type SafetyHijackerConfig struct {
	// Gamma is the predicted safety potential below which the attack is
	// worth launching (the paper's predefined 10 m threshold, §III-D).
	Gamma float64
	// GammaMoveIn is the tighter threshold for Move_In attacks: a fake
	// cut-in only forces emergency braking if it materializes when the
	// EV is too close to brake comfortably, so the attack aims at the
	// accident-level potential (delta ~ 4 m).
	GammaMoveIn float64
	// KMaxVehicle and KMaxPedestrian bound the attack duration at the
	// 99th percentile of the characterized natural misdetection runs
	// (Fig. 5: ~59 and ~31 frames), so a failed attack still looks like
	// detector noise to an IDS.
	KMaxVehicle    int
	KMaxPedestrian int
	// KMin is the minimum duration worth launching.
	KMin int
}

// DefaultSafetyHijackerConfig returns the paper's thresholds.
func DefaultSafetyHijackerConfig() SafetyHijackerConfig {
	return SafetyHijackerConfig{
		Gamma:          10,
		GammaMoveIn:    -2,
		KMaxVehicle:    59,
		KMaxPedestrian: 31,
		KMin:           4,
	}
}

// SafetyHijacker decides when to attack and for how many frames
// (paper §IV-B, Eq. 2).
type SafetyHijacker struct {
	cfg     SafetyHijackerConfig
	oracles map[Vector]Oracle
}

// NewSafetyHijacker creates a safety hijacker with one oracle per
// attack vector. Vectors without an entry fall back to the analytic
// oracle.
func NewSafetyHijacker(cfg SafetyHijackerConfig, oracles map[Vector]Oracle) *SafetyHijacker {
	all := map[Vector]Oracle{
		VectorMoveOut:   NewAnalyticOracle(VectorMoveOut),
		VectorMoveIn:    NewAnalyticOracle(VectorMoveIn),
		VectorDisappear: NewAnalyticOracle(VectorDisappear),
	}
	for v, o := range oracles {
		all[v] = o
	}
	return &SafetyHijacker{cfg: cfg, oracles: all}
}

// KMax returns the stealth bound on attack duration for a class.
func (sh *SafetyHijacker) KMax(cls sim.Class) int { return sh.cfg.KMax(cls) }

// KMax returns the configured stealth bound on attack duration for a
// class.
func (cfg SafetyHijackerConfig) KMax(cls sim.Class) int {
	if cls == sim.ClassPedestrian {
		return cfg.KMaxPedestrian
	}
	return cfg.KMaxVehicle
}

// Decision is the safety hijacker's output.
type Decision struct {
	Attack bool
	// K is the number of frames the attack must be sustained (Eq. 2).
	K int
	// PredictedDelta is f_alpha(s, K), recorded for the Fig. 8 study.
	PredictedDelta float64
}

// Decide evaluates Eq. 2: the minimal k <= KMax with predicted
// delta_{t+k} <= gamma, found by binary search (f_alpha is
// non-increasing in k for the scenarios considered, §IV-B). Attack is
// false when even KMax frames cannot push the safety potential below
// gamma.
func (sh *SafetyHijacker) Decide(s State, v Vector, cls sim.Class) (Decision, error) {
	return sh.DecideWith(sh.cfg, s, v, cls)
}

// DecideWith evaluates Eq. 2 under an alternative threshold
// configuration, consulting the hijacker's oracles. It is the hook for
// parameterized attack policies: a policy searches the same oracle
// under its own gamma / K bounds without rebuilding the hijacker.
func (sh *SafetyHijacker) DecideWith(cfg SafetyHijackerConfig, s State, v Vector, cls sim.Class) (Decision, error) {
	oracle, ok := sh.oracles[v]
	if !ok {
		return Decision{}, fmt.Errorf("core: no oracle for vector %v", v)
	}
	gamma := cfg.Gamma
	if v == VectorMoveIn {
		gamma = cfg.GammaMoveIn
	}
	kMax := cfg.KMax(cls)
	// A NaN forecast means the oracle has no usable prediction; it
	// would slip past the > gamma guard (NaN compares false) and launch
	// a kMax attack on garbage, so hold fire explicitly.
	if pred := oracle.PredictDelta(s, kMax); pred > gamma || math.IsNaN(pred) {
		return Decision{Attack: false, PredictedDelta: pred}, nil
	}
	lo, hi := 1, kMax // invariant: f(hi) <= gamma
	for lo < hi {
		mid := (lo + hi) / 2
		if oracle.PredictDelta(s, mid) <= gamma {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	k := hi
	if k < cfg.KMin {
		k = cfg.KMin
	}
	return Decision{Attack: true, K: k, PredictedDelta: oracle.PredictDelta(s, k)}, nil
}
