package mat

import (
	"math/rand"
	"testing"
)

// refRow is the unbatched reference: the exact accumulation order of
// nn.Dense.ForwardInto (single accumulator, ascending input index).
func refRow(x, w, bias []float64, in, out int, dst []float64) {
	for o := 0; o < out; o++ {
		s := bias[o]
		row := w[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			s += row[i] * x[i]
		}
		dst[o] = s
	}
}

// TestMulBatchIntoBitIdentical checks every (rows, in, out) shape
// around the kernel's 4x blocking boundaries against the row-wise
// reference, requiring exact float64 equality — the property the
// batched inference path's determinism rests on.
func TestMulBatchIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		for _, in := range []int{1, 3, 4, 5, 6, 50, 100} {
			for _, out := range []int{1, 2, 4, 50, 100} {
				x := make([]float64, rows*in)
				w := make([]float64, out*in)
				bias := make([]float64, out)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				for i := range w {
					w[i] = rng.NormFloat64()
				}
				for i := range bias {
					bias[i] = rng.NormFloat64()
				}
				got := make([]float64, rows*out)
				MulBatchInto(got, x, w, bias, rows, in, out)
				want := make([]float64, out)
				for r := 0; r < rows; r++ {
					refRow(x[r*in:(r+1)*in], w, bias, in, out, want)
					for o := 0; o < out; o++ {
						if got[r*out+o] != want[o] {
							t.Fatalf("rows=%d in=%d out=%d: row %d output %d: got %x want %x",
								rows, in, out, r, o, got[r*out+o], want[o])
						}
					}
				}
			}
		}
	}
}

func TestMulBatchIntoShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized dst did not panic")
		}
	}()
	MulBatchInto(make([]float64, 3), make([]float64, 8), make([]float64, 8), make([]float64, 2), 2, 4, 2)
}
