package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matsAlmostEqual(a, b *Matrix, tol float64) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed")
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 || col[2] != 6 {
		t.Errorf("Col = %v", col)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !matsAlmostEqual(got, want, 1e-12) {
		t.Errorf("Mul =\n%v want\n%v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := a.Mul(Identity(3)); !matsAlmostEqual(got, a, 1e-12) {
		t.Errorf("A*I != A")
	}
	if got := Identity(2).Mul(a); !matsAlmostEqual(got, a, 1e-12) {
		t.Errorf("I*A != A")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !matsAlmostEqual(got, FromRows([][]float64{{5, 5}, {5, 5}}), 1e-12) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(a); !matsAlmostEqual(got, New(2, 2), 1e-12) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got.At(1, 1) != 8 {
		t.Errorf("Scale = %v", got)
	}
	// Operations must not mutate their receiver.
	if a.At(0, 0) != 1 {
		t.Error("receiver mutated")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.T()
	if got.Rows() != 3 || got.Cols() != 2 || got.At(2, 0) != 3 || got.At(0, 1) != 4 {
		t.Errorf("T = %v", got)
	}
	if !matsAlmostEqual(got.T(), a, 1e-12) {
		t.Error("double transpose should be identity op")
	}
}

func TestInverse2x2(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !matsAlmostEqual(inv, want, 1e-9) {
		t.Errorf("Inverse =\n%v want\n%v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Error("expected error for non-square inverse")
	}
}

// Property: for random well-conditioned matrices, A * A^-1 == I.
func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the matrix comfortably invertible.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !matsAlmostEqual(a.Mul(inv), Identity(n), 1e-8) {
			t.Fatalf("trial %d: A*inv(A) != I", trial)
		}
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(3, 4), New(4, 2)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		return matsAlmostEqual(a.Mul(b).T(), b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDiagColVec(t *testing.T) {
	d := Diag(1, 2, 3)
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Errorf("Diag = %v", d)
	}
	v := ColVec(1, 2, 3)
	if v.Rows() != 3 || v.Cols() != 1 || v.At(2, 0) != 3 {
		t.Errorf("ColVec = %v", v)
	}
}

func BenchmarkMul4x4(b *testing.B) {
	a := Identity(4)
	c := Identity(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkInverse4x4(b *testing.B) {
	a := FromRows([][]float64{
		{4, 1, 0, 0},
		{1, 5, 1, 0},
		{0, 1, 6, 1},
		{0, 0, 1, 7},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
