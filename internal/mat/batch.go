package mat

import "fmt"

// MulBatchInto is the batched inference kernel behind nn's
// Network.InferBatch: it computes a row-major batch of dense-layer
// outputs, dst[r][o] = bias[o] + sum_i w[o][i] * x[r][i], for rows
// input vectors at once (x is rows x in, w is out x in, dst is
// rows x out).
//
// The kernel is blocked for the register file and the cache: rows are
// processed four at a time so each weight row loaded from memory is
// reused across four accumulators, and the inner loop over the input
// dimension is unrolled four wide. Bit-identity with the unbatched
// path is part of the contract: every (row, output) pair accumulates
// into a single float64 in ascending input order — exactly the
// operation sequence of the matrix-vector dot product in
// nn.Dense.ForwardInto — so a batched row equals the unbatched result
// bit for bit. (The unroll issues the four products as four separate
// sequential adds; Go guarantees no floating-point reassociation.)
func MulBatchInto(dst, x, w, bias []float64, rows, in, out int) {
	if rows < 0 || in < 0 || out < 0 ||
		len(x) < rows*in || len(w) < out*in || len(bias) < out || len(dst) < rows*out {
		panic(fmt.Sprintf("mat: MulBatchInto shape mismatch: rows=%d in=%d out=%d (len x=%d w=%d bias=%d dst=%d)",
			rows, in, out, len(x), len(w), len(bias), len(dst)))
	}
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := x[r*in : r*in+in : r*in+in]
		x1 := x[(r+1)*in : (r+1)*in+in : (r+1)*in+in]
		x2 := x[(r+2)*in : (r+2)*in+in : (r+2)*in+in]
		x3 := x[(r+3)*in : (r+3)*in+in : (r+3)*in+in]
		d0 := dst[r*out : r*out+out]
		d1 := dst[(r+1)*out : (r+1)*out+out]
		d2 := dst[(r+2)*out : (r+2)*out+out]
		d3 := dst[(r+3)*out : (r+3)*out+out]
		for o := 0; o < out; o++ {
			wr := w[o*in : o*in+in : o*in+in]
			b := bias[o]
			s0, s1, s2, s3 := b, b, b, b
			i := 0
			for ; i+4 <= in; i += 4 {
				w0, w1, w2, w3 := wr[i], wr[i+1], wr[i+2], wr[i+3]
				s0 += w0 * x0[i]
				s0 += w1 * x0[i+1]
				s0 += w2 * x0[i+2]
				s0 += w3 * x0[i+3]
				s1 += w0 * x1[i]
				s1 += w1 * x1[i+1]
				s1 += w2 * x1[i+2]
				s1 += w3 * x1[i+3]
				s2 += w0 * x2[i]
				s2 += w1 * x2[i+1]
				s2 += w2 * x2[i+2]
				s2 += w3 * x2[i+3]
				s3 += w0 * x3[i]
				s3 += w1 * x3[i+1]
				s3 += w2 * x3[i+2]
				s3 += w3 * x3[i+3]
			}
			for ; i < in; i++ {
				wi := wr[i]
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			d0[o], d1[o], d2[o], d3[o] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		xr := x[r*in : r*in+in : r*in+in]
		dr := dst[r*out : r*out+out]
		for o := 0; o < out; o++ {
			wr := w[o*in : o*in+in : o*in+in]
			s := bias[o]
			i := 0
			for ; i+4 <= in; i += 4 {
				s += wr[i] * xr[i]
				s += wr[i+1] * xr[i+1]
				s += wr[i+2] * xr[i+2]
				s += wr[i+3] * xr[i+3]
			}
			for ; i < in; i++ {
				s += wr[i] * xr[i]
			}
			dr[o] = s
		}
	}
}
