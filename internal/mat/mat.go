// Package mat implements the small dense-matrix operations needed by the
// Kalman filters in the tracking stack: multiplication, addition,
// transposition and inversion (Gauss-Jordan with partial pivoting).
// Matrices in this codebase are tiny (4x4 state, 2x2 measurement), so
// clarity is preferred over blocked algorithms.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned by Inverse when the matrix has no inverse.
var ErrSingular = errors.New("mat: matrix is singular")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New creates a rows x cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows creates a matrix from row slices. All rows must have the same
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows needs at least one row and column")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mat: ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with the given diagonal entries.
func Diag(d ...float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// ColVec returns a column vector (n x 1) with the given entries.
func ColVec(v ...float64) *Matrix {
	m := New(len(v), 1)
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Col returns column j as a slice copy.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Mul returns m * o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.cols; j++ {
				out.data[i*out.cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.assertSameShape(o, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += o.data[i]
	}
	return out
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.assertSameShape(o, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= o.data[i]
	}
	return out
}

// Scale returns m scaled element-wise by s.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Inverse returns the inverse of a square matrix using Gauss-Jordan
// elimination with partial pivoting. It returns ErrSingular when the
// matrix is not invertible.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("mat: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in this
		// column to keep the elimination numerically stable.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			inv.swapRows(col, pivot)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// The *Into variants below perform the same arithmetic as their
// allocating counterparts — same operations in the same order, so the
// results are bit-identical — but write into caller-owned matrices.
// They exist for the Kalman hot path, which runs per track per frame
// and must not allocate in steady state.

// CopyFrom overwrites m with o's contents. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	m.assertSameShape(o, "CopyFrom")
	copy(m.data, o.data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// SetIdentity overwrites a square matrix with the identity.
func (m *Matrix) SetIdentity() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: SetIdentity on non-square %dx%d matrix", m.rows, m.cols))
	}
	m.Zero()
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// MulInto computes a * b into dst. dst must not alias a or b.
func MulInto(dst, a, b *Matrix) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto dst is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			v := a.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				dst.data[i*dst.cols+j] += v * b.At(k, j)
			}
		}
	}
}

// AddInto computes a + b into dst. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	a.assertSameShape(b, "AddInto")
	dst.assertSameShape(a, "AddInto")
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto computes a - b into dst. dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	a.assertSameShape(b, "SubInto")
	dst.assertSameShape(a, "SubInto")
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// InverseInto inverts m into dst using the same Gauss-Jordan
// elimination as Inverse; scratch (same shape as m) holds the working
// copy, so the call performs no allocations. dst, scratch and m must
// be distinct.
func InverseInto(dst, scratch, m *Matrix) error {
	if m.rows != m.cols {
		return fmt.Errorf("mat: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	dst.assertSameShape(m, "InverseInto")
	scratch.assertSameShape(m, "InverseInto")
	n := m.rows
	a := scratch
	a.CopyFrom(m)
	dst.SetIdentity()
	for col := 0; col < n; col++ {
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-300 {
			return ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			dst.swapRows(col, pivot)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			dst.Set(col, j, dst.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				dst.Set(r, j, dst.At(r, j)-f*dst.At(col, j))
			}
		}
	}
	return nil
}

func (m *Matrix) swapRows(i, j int) {
	for c := 0; c < m.cols; c++ {
		m.data[i*m.cols+c], m.data[j*m.cols+c] = m.data[j*m.cols+c], m.data[i*m.cols+c]
	}
}

func (m *Matrix) assertSameShape(o *Matrix, op string) {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, o.rows, o.cols))
	}
}

// String implements fmt.Stringer.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
