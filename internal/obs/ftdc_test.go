package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFTDCRoundTrip: encode a series of snapshots, decode, and get the
// same timestamps and values back exactly.
func TestFTDCRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		ts      int64
		samples []Sample
	}{
		{1000, []Sample{{"a_total", 0}, {"b_gauge", -1.5}}},
		{2000, []Sample{{"a_total", 3}, {"b_gauge", 2.25}}},
		{3500, []Sample{{"a_total", 3}, {"b_gauge", math.Pi}}},
		// Schema change mid-stream: a new series appears.
		{5000, []Sample{{"a_total", 10}, {"b_gauge", 0}, {"c_total", 7}}},
		{6000, []Sample{{"a_total", 11}, {"b_gauge", -0.125}, {"c_total", 9}}},
	}
	for _, s := range steps {
		if err := enc.Encode(s.ts, s.samples); err != nil {
			t.Fatal(err)
		}
	}

	snaps, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(steps) {
		t.Fatalf("decoded %d snapshots, want %d", len(snaps), len(steps))
	}
	for i, s := range steps {
		if snaps[i].TS != s.ts {
			t.Errorf("snapshot %d: ts %d, want %d", i, snaps[i].TS, s.ts)
		}
		if len(snaps[i].Metrics) != len(s.samples) {
			t.Errorf("snapshot %d: %d series, want %d", i, len(snaps[i].Metrics), len(s.samples))
		}
		for _, want := range s.samples {
			if got := snaps[i].Metrics[want.Name]; got != want.Value {
				t.Errorf("snapshot %d: %s = %v, want %v", i, want.Name, got, want.Value)
			}
		}
	}
}

// TestFTDCRejectsGarbage: a file without the magic header is refused.
func TestFTDCRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a capture file at all"))); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
}

// TestCaptureLifecycle: StartCapture writes a decodable file whose
// values track the registry, and Stop takes a final sample.
func TestCaptureLifecycle(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cap_total", "")
	path := filepath.Join(t.TempDir(), "metrics.ftdc")

	cap, err := StartCapture(r, path, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(5)
	time.Sleep(35 * time.Millisecond)
	c.Add(2)
	if err := cap.Stop(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snaps, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("capture produced no snapshots")
	}
	// The final (Stop-time) sample must see the full total.
	last := snaps[len(snaps)-1]
	if got := last.Metrics["cap_total"]; got != 7 {
		t.Errorf("final snapshot cap_total = %v, want 7", got)
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].TS < snaps[i-1].TS {
			t.Errorf("snapshot %d: ts went backwards", i)
		}
	}
}
