package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogConfig carries the two process-wide logging knobs every binary
// exposes: minimum level and text-vs-JSON output.
type LogConfig struct {
	Level string // debug | info | warn | error
	JSON  bool
}

// RegisterFlags wires -log-level and -log-json onto fs with the shared
// defaults, so all binaries present the same surface in -h.
func (c *LogConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.BoolVar(&c.JSON, "log-json", false, "emit logs as JSON lines instead of text")
}

// Logger builds the configured *slog.Logger writing to w.
func (c LogConfig) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "debug":
		level = slog.LevelDebug
	case "", "info":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	if c.JSON {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// Discard returns a logger that drops everything: the default for
// library types whose caller did not supply one.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
