package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRecordingZeroAllocs is the hot-path contract: recording into
// counters, gauges and histograms — directly or through handles —
// allocates nothing.
func TestRecordingZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_test_total", "")
	g := r.Gauge("alloc_test_gauge", "")
	h := r.Histogram("alloc_test_seconds", "", ExpBuckets(1e-6, 2, 14))
	ch := c.Handle()
	hh := h.Handle()

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Add(1) }},
		{"counter handle", func() { ch.Add(1) }},
		{"gauge set", func() { g.Set(42) }},
		{"gauge add", func() { g.Add(-1) }},
		{"histogram", func() { h.Observe(3.5e-5) }},
		{"histogram handle", func() { hh.Observe(1e-3) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs per op, want 0", tc.name, n)
		}
	}
}

// TestRegistryConcurrency hammers get-or-create registration and
// recording from many goroutines; run under -race this proves the
// registry and the sharded accumulators are data-race free, and the
// final totals prove no increments were lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("race_total", "shared")
			h := r.Histogram("race_seconds", "shared", ExpBuckets(1e-6, 10, 6))
			ch := c.Handle()
			hh := h.Handle()
			for j := 0; j < perG; j++ {
				ch.Add(1)
				hh.Observe(float64(j) * 1e-6)
				r.Gauge("race_gauge", "shared").Set(float64(j))
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("race_total", "").Value(); got != goroutines*perG {
		t.Errorf("counter lost increments: got %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("race_seconds", "", ExpBuckets(1e-6, 10, 6)).Count(); got != goroutines*perG {
		t.Errorf("histogram lost observations: got %d, want %d", got, goroutines*perG)
	}
}

// TestRegisterTypeConflictPanics: one name, two metric kinds is a
// programming error the registry refuses.
func TestRegisterTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflicted", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("conflicted", "")
}

// TestGetOrCreateReturnsSame: registration is idempotent per
// (name, labels) pair, and distinct labels are distinct series.
func TestGetOrCreateReturnsSame(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", Label{"stage", "detect"})
	b := r.Counter("dup_total", "ignored", Label{"stage", "detect"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("dup_total", "h", Label{"stage", "track"})
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
}

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE once
// per family, cumulative buckets, _sum/_count, label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests served.", Label{"route", "/runs"}).Add(3)
	r.Counter("t_requests_total", "Requests served.", Label{"route", "/metrics"}).Add(1)
	r.Gauge("t_queue_depth", "Jobs waiting.").Set(2)
	h := r.Histogram("t_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_latency_seconds Request latency.
# TYPE t_latency_seconds histogram
t_latency_seconds_bucket{le="0.01"} 1
t_latency_seconds_bucket{le="0.1"} 3
t_latency_seconds_bucket{le="1"} 3
t_latency_seconds_bucket{le="+Inf"} 4
t_latency_seconds_sum 5.105
t_latency_seconds_count 4
# HELP t_queue_depth Jobs waiting.
# TYPE t_queue_depth gauge
t_queue_depth 2
# HELP t_requests_total Requests served.
# TYPE t_requests_total counter
t_requests_total{route="/runs"} 3
t_requests_total{route="/metrics"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGatherHistogramSeries: Gather expands histograms into cumulative
// buckets, _sum and _count, in registration order.
func TestGatherHistogramSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("g_seconds", "", []float64{1, 2}, Label{"stage", "plan"})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	got := map[string]float64{}
	for _, s := range r.Gather() {
		got[s.Name] = s.Value
	}
	want := map[string]float64{
		`g_seconds_bucket{stage="plan",le="1"}`:    1,
		`g_seconds_bucket{stage="plan",le="2"}`:    2,
		`g_seconds_bucket{stage="plan",le="+Inf"}`: 3,
		`g_seconds_sum{stage="plan"}`:              11,
		`g_seconds_count{stage="plan"}`:            3,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

// TestEnabledToggle: SetEnabled is a pure gate for callers; it must
// not disturb previously recorded values.
func TestEnabledToggle(t *testing.T) {
	if !Enabled() {
		t.Fatal("metrics must default to enabled")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) did not take")
	}
}

// TestExpBuckets pins the standard latency layout used by the frame
// stage histograms.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(b) != len(want) {
		t.Fatalf("got %d bounds, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bound %d = %v, want %v", i, b[i], want[i])
		}
	}
}

// TestExpBucketsEdges pins the degenerate shapes: a single bucket is
// legal (the bound list is just [start]), while a non-positive start,
// a non-growing factor or an empty layout panic at construction — a
// malformed latency layout must fail at registration, not mis-bucket
// silently forever.
func TestExpBucketsEdges(t *testing.T) {
	if b := ExpBuckets(0.5, 2, 1); len(b) != 1 || b[0] != 0.5 {
		t.Errorf("ExpBuckets(0.5, 2, 1) = %v, want [0.5]", b)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("factor=1", func() { ExpBuckets(1e-4, 1, 10) })
	mustPanic("factor<1", func() { ExpBuckets(1e-4, 0.5, 10) })
	mustPanic("start=0", func() { ExpBuckets(0, 2, 10) })
	mustPanic("start<0", func() { ExpBuckets(-1, 2, 10) })
	mustPanic("n=0", func() { ExpBuckets(1e-4, 2, 0) })
}

// TestPrometheusLabelEscaping: backslash, double-quote and newline in
// label values must come out escaped per the exposition format — an
// unescaped newline would split a series line and corrupt the whole
// scrape.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string
	}{
		{"newline", "a\nb", `t_esc_total{v="a\nb"} 1`},
		{"backslash", `a\b`, `t_esc_total{v="a\\b"} 1`},
		{"quote", `a"b`, `t_esc_total{v="a\"b"} 1`},
		{"mixed", "\\\"\n", `t_esc_total{v="\\\"\n"} 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("t_esc_total", "Escaping probe.", Label{"v", tc.value}).Add(1)
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
			got := lines[len(lines)-1]
			if got != tc.want {
				t.Errorf("series line = %q, want %q", got, tc.want)
			}
		})
	}
}
