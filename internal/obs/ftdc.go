package obs

// FTDC-style capture: a background goroutine gathers every registered
// series on a fixed interval and appends delta-encoded snapshots to a
// compact binary file, so a crashed or misbehaving process leaves a
// full metrics timeline behind for post-mortem analysis
// (cmd/robotack-ftdc decodes it back to JSONL).
//
// Format: the file opens with a magic string, then a sequence of
// chunks. A schema chunk ('S') lists the series names in order and
// resets the delta state; it is written at start and again whenever
// the registry's series set changes (new registrations append, so this
// is rare after startup). A data chunk ('D') carries a zigzag-varint
// delta of the unix-nano timestamp followed by one zigzag varint per
// series: the difference of the float64 bit patterns against the
// previous chunk. Counters and most gauges move slowly, so bit-pattern
// deltas are small integers and varints keep chunks to a few bytes per
// series.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"
)

const ftdcMagic = "robotack-ftdc\x01"

// Snapshot is one decoded capture point.
type Snapshot struct {
	TS      int64 // unix nanoseconds
	Metrics map[string]float64
}

// Encoder writes delta-encoded snapshots to w. Not safe for
// concurrent use; Capture serializes access.
type Encoder struct {
	w      *bufio.Writer
	names  []string
	prev   []uint64
	prevTS int64
	wrote  bool
	buf    []byte
}

// NewEncoder writes the magic header and returns an encoder.
func NewEncoder(w io.Writer) (*Encoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ftdcMagic); err != nil {
		return nil, err
	}
	return &Encoder{w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

func (e *Encoder) putUvarint(v uint64) {
	n := binary.PutUvarint(e.buf, v)
	e.w.Write(e.buf[:n])
}

func (e *Encoder) putVarint(v int64) {
	n := binary.PutVarint(e.buf, v)
	e.w.Write(e.buf[:n])
}

// Encode appends one snapshot. If the series set differs from the
// previous call a schema chunk is emitted first.
func (e *Encoder) Encode(ts int64, samples []Sample) error {
	if !sameSchema(e.names, samples) {
		e.names = e.names[:0]
		for _, s := range samples {
			e.names = append(e.names, s.Name)
		}
		e.w.WriteByte('S')
		e.putUvarint(uint64(len(e.names)))
		for _, n := range e.names {
			e.putUvarint(uint64(len(n)))
			e.w.WriteString(n)
		}
		e.prev = make([]uint64, len(e.names))
		e.prevTS = 0
		e.wrote = false
	}
	e.w.WriteByte('D')
	e.putVarint(ts - e.prevTS)
	e.prevTS = ts
	for i, s := range samples {
		bits := math.Float64bits(s.Value)
		e.putVarint(int64(bits - e.prev[i]))
		e.prev[i] = bits
	}
	e.wrote = true
	return e.flushErr()
}

func (e *Encoder) flushErr() error { return e.w.Flush() }

func sameSchema(names []string, samples []Sample) bool {
	if names == nil || len(names) != len(samples) {
		return false
	}
	for i, s := range samples {
		if names[i] != s.Name {
			return false
		}
	}
	return true
}

// Decode reads a full capture stream back into snapshots.
func Decode(r io.Reader) ([]Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ftdcMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ftdc: reading magic: %w", err)
	}
	if string(magic) != ftdcMagic {
		return nil, errors.New("ftdc: bad magic (not a robotack-ftdc capture)")
	}
	var (
		out    []Snapshot
		names  []string
		prev   []uint64
		prevTS int64
	)
	for {
		kind, err := br.ReadByte()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		switch kind {
		case 'S':
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("ftdc: schema count: %w", err)
			}
			names = make([]string, n)
			for i := range names {
				l, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("ftdc: name length: %w", err)
				}
				b := make([]byte, l)
				if _, err := io.ReadFull(br, b); err != nil {
					return nil, fmt.Errorf("ftdc: name bytes: %w", err)
				}
				names[i] = string(b)
			}
			prev = make([]uint64, n)
			prevTS = 0
		case 'D':
			if names == nil {
				return nil, errors.New("ftdc: data chunk before schema")
			}
			dts, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("ftdc: timestamp delta: %w", err)
			}
			prevTS += dts
			snap := Snapshot{TS: prevTS, Metrics: make(map[string]float64, len(names))}
			for i, name := range names {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("ftdc: series delta: %w", err)
				}
				prev[i] += uint64(d)
				snap.Metrics[name] = math.Float64frombits(prev[i])
			}
			out = append(out, snap)
		default:
			return nil, fmt.Errorf("ftdc: unknown chunk type %q", kind)
		}
	}
}

// Capture is a running periodic snapshotter; Stop for a final sample
// and a clean close.
type Capture struct {
	reg      *Registry
	interval time.Duration
	f        *os.File
	enc      *Encoder

	mu   sync.Mutex
	done chan struct{}
	wg   sync.WaitGroup
	err  error
}

// StartCapture appends snapshots of reg to path every interval until
// Stop. The file is created (or truncated) immediately so a capture
// that dies early still has a valid header.
func StartCapture(reg *Registry, path string, interval time.Duration) (*Capture, error) {
	if interval <= 0 {
		interval = time.Second
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	enc, err := NewEncoder(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	c := &Capture{reg: reg, interval: interval, f: f, enc: enc, done: make(chan struct{})}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

func (c *Capture) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.sample()
		}
	}
}

func (c *Capture) sample() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(time.Now().UnixNano(), c.reg.Gather()); err != nil && c.err == nil {
		c.err = err
	}
}

// Stop takes a final sample, flushes and closes the file, returning
// the first error seen over the capture's lifetime.
func (c *Capture) Stop() error {
	close(c.done)
	c.wg.Wait()
	c.sample()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.f.Close(); err != nil && c.err == nil {
		c.err = err
	}
	return c.err
}
