package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// formatFloat renders a float the way Prometheus clients expect:
// shortest exact representation, no exponent for small magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the registry in Prometheus
// text exposition format 0.0.4: one HELP/TYPE header per family, then
// that family's series. Families are emitted in name order so output
// is stable for golden tests; series within a family keep their
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, m := range r.sortedForExposition() {
		d := m.desc()
		if d.name != lastFamily {
			lastFamily = d.name
			if d.help != "" {
				bw.WriteString("# HELP " + d.name + " " + d.help + "\n")
			}
			bw.WriteString("# TYPE " + d.name + " " + m.typ() + "\n")
		}
		switch v := m.(type) {
		case *Counter:
			bw.WriteString(d.series() + " " + strconv.FormatUint(v.Value(), 10) + "\n")
		case *Gauge:
			bw.WriteString(d.series() + " " + formatFloat(v.Value()) + "\n")
		case *Histogram:
			buckets, sum, count := v.snapshot()
			cum := uint64(0)
			for i, b := range buckets {
				cum += b
				bw.WriteString(bucketSeries(d, v.bounds, i) + " " + strconv.FormatUint(cum, 10) + "\n")
			}
			bw.WriteString(d.name + "_sum" + wrap(d.labels) + " " + formatFloat(sum) + "\n")
			bw.WriteString(d.name + "_count" + wrap(d.labels) + " " + strconv.FormatUint(count, 10) + "\n")
		}
	}
	return bw.Flush()
}

// Handler serves the registry as a Prometheus scrape endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// RegisterPprof mounts the net/http/pprof handlers on a non-default
// mux under /debug/pprof/. Opt-in: callers gate this behind a flag.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
