// Package obs is the repo-wide observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) whose
// hot-path recording is allocation-free and lock-free, Prometheus text
// exposition (prom.go), a shared log/slog setup (log.go), and an
// FTDC-style compact binary time-series capture (ftdc.go).
//
// The layer is observational only: nothing recorded here may ever feed
// back into seeds, RNG draws or result records, so campaigns are
// bit-identical with metrics on, off, or absent. Recording is gated by
// a single atomic flag (Enabled/SetEnabled) that instrumented hot
// loops check once per iteration batch.
//
// Hot-path contract: Counter.Add, Gauge.Set/Add and Histogram.Observe
// perform only atomic operations on preallocated memory — zero heap
// allocations (enforced by TestRecordingZeroAllocs). Contended call
// sites take a Handle, which pins the caller to one of the metric's
// cache-line-padded shards so concurrent workers do not fight over one
// cache line; readers sum across shards at scrape time.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// disabled is inverted so the zero value means "metrics on".
var disabled atomic.Bool

// Enabled reports whether metric recording is on (the default).
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns metric recording on or off process-wide. Off, the
// instrumented hot paths skip their timing and counting entirely;
// registries still serve whatever was recorded before.
func SetEnabled(on bool) { disabled.Store(!on) }

// Label is one constant key="value" pair attached to a series at
// registration. Labels distinguish series within a family (e.g. the
// frame-stage histogram's stage="detect" vs stage="track").
type Label struct{ Key, Value string }

// shardCount is the number of accumulation shards per metric: the next
// power of two covering the CPU count, clamped to [8, 64]. Handles
// distribute round-robin over the shards, so a metric costs
// shardCount padded slots however many goroutines record into it.
var shardCount = func() int {
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n *= 2
	}
	return n
}()

// nextShard hands out shard indices round-robin across all Handle
// acquisitions in the process.
var nextShard atomic.Uint64

func shardIndex() int { return int(nextShard.Add(1) % uint64(shardCount)) }

// slot is one cache-line-padded accumulator.
type slot struct {
	v atomic.Uint64
	_ [56]byte
}

// addFloat accumulates v into the float64 bit pattern held by a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// desc is a series' identity: family name, help, and rendered labels.
type desc struct {
	name   string
	help   string
	labels string // rendered `k="v",k2="v2"` or ""
}

func (d desc) key() string { return d.name + "\x00" + d.labels }

// series returns the full series name for exposition and capture.
func (d desc) series() string {
	if d.labels == "" {
		return d.name
	}
	return d.name + "{" + d.labels + "}"
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing count.
type Counter struct {
	d     desc
	slots []slot
}

// Add increments the counter. Allocation-free; uncontended call sites
// may use it directly, hot concurrent loops should go through Handle.
func (c *Counter) Add(n uint64) { c.slots[0].v.Add(n) }

// Handle pins a caller to one shard of the counter, so per-worker
// recording does not contend on a single cache line. Handles are
// values — store them in worker state, never share one across
// goroutines' hot loops (sharing is still safe, just contended).
func (c *Counter) Handle() CounterHandle {
	return CounterHandle{s: &c.slots[shardIndex()]}
}

// Value returns the counter's current total.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.slots {
		t += c.slots[i].v.Load()
	}
	return t
}

// CounterHandle is a shard-pinned recording handle. The zero value is
// a no-op.
type CounterHandle struct{ s *slot }

// Add increments the handle's shard. Allocation-free.
func (h CounterHandle) Add(n uint64) {
	if h.s != nil {
		h.s.v.Add(n)
	}
}

// Gauge is a value that goes up and down (queue depth, best fitness).
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Set stores v. Allocation-free.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v (negative to decrease). Allocation-free.
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc and Dec adjust the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges of each bucket; an implicit +Inf bucket
// catches the rest. Observation sums are kept per shard so the
// Prometheus _sum/_count series come out exact.
type Histogram struct {
	d      desc
	bounds []float64
	stride int    // bucket slots per shard, padded to a cache line
	counts []slot // shardCount * stride
	sums   []slot // float64 bits per shard
}

// Observe records v into shard 0. Allocation-free; hot concurrent
// loops should use a Handle instead.
func (h *Histogram) Observe(v float64) { h.observe(0, v) }

func (h *Histogram) observe(shard int, v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[shard*h.stride+i].v.Add(1)
	addFloat(&h.sums[shard].v, v)
}

// Handle pins a caller to one shard of the histogram.
func (h *Histogram) Handle() HistogramHandle {
	return HistogramHandle{h: h, shard: shardIndex()}
}

// HistogramHandle is a shard-pinned recording handle. The zero value
// is a no-op.
type HistogramHandle struct {
	h     *Histogram
	shard int
}

// Observe records v into the handle's shard. Allocation-free.
func (h HistogramHandle) Observe(v float64) {
	if h.h != nil {
		h.h.observe(h.shard, v)
	}
}

// snapshot returns the per-bucket totals (len(bounds)+1, non-
// cumulative), the observation sum and the observation count.
func (h *Histogram) snapshot() (buckets []uint64, sum float64, count uint64) {
	buckets = make([]uint64, len(h.bounds)+1)
	for s := 0; s < shardCount; s++ {
		for i := range buckets {
			buckets[i] += h.counts[s*h.stride+i].v.Load()
		}
		sum += math.Float64frombits(h.sums[s].v.Load())
	}
	for _, b := range buckets {
		count += b
	}
	return buckets, sum, count
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	_, _, n := h.snapshot()
	return n
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor: the standard latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is the registry's view of any metric kind.
type metric interface {
	desc() desc
	typ() string
}

func (c *Counter) desc() desc    { return c.d }
func (c *Counter) typ() string   { return "counter" }
func (g *Gauge) desc() desc      { return g.d }
func (g *Gauge) typ() string     { return "gauge" }
func (h *Histogram) desc() desc  { return h.d }
func (h *Histogram) typ() string { return "histogram" }

// Registry holds named metrics. Registration is get-or-create and
// idempotent: asking for an existing (name, labels) pair returns the
// same metric, so packages declare their instruments as package vars
// without coordinating. Registering the same name with a different
// metric type panics — that is a programming error, not a runtime
// condition.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]metric
	order []metric
}

// Default is the process-wide registry all package-level constructors
// use; /metrics endpoints and FTDC captures serve it.
var Default = NewRegistry()

// NewRegistry creates an empty registry (tests; production code uses
// Default).
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

func (r *Registry) register(d desc, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		return m
	}
	m := mk()
	for _, prev := range r.order {
		if prev.desc().name == d.name && prev.typ() != m.typ() {
			panic(fmt.Sprintf("obs: %s registered as both %s and %s", d.name, prev.typ(), m.typ()))
		}
	}
	r.byKey[d.key()] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	d := desc{name: name, help: help, labels: renderLabels(labels)}
	return r.register(d, func() metric {
		return &Counter{d: d, slots: make([]slot, shardCount)}
	}).(*Counter)
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	d := desc{name: name, help: help, labels: renderLabels(labels)}
	return r.register(d, func() metric { return &Gauge{d: d} }).(*Gauge)
}

// Histogram registers (or returns the existing) histogram series with
// the given bucket upper bounds (strictly increasing; +Inf implicit).
// Re-registration ignores the buckets argument and returns the
// original.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing", name))
		}
	}
	d := desc{name: name, help: help, labels: renderLabels(labels)}
	return r.register(d, func() metric {
		n := len(bounds) + 1
		stride := (n + 7) &^ 7 // pad shard blocks to cache-line multiples
		return &Histogram{
			d:      d,
			bounds: append([]float64(nil), bounds...),
			stride: stride,
			counts: make([]slot, shardCount*stride),
			sums:   make([]slot, shardCount),
		}
	}).(*Histogram)
}

// NewCounter, NewGauge and NewHistogram register on Default.
func NewCounter(name, help string, labels ...Label) *Counter {
	return Default.Counter(name, help, labels...)
}
func NewGauge(name, help string, labels ...Label) *Gauge {
	return Default.Gauge(name, help, labels...)
}
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return Default.Histogram(name, help, bounds, labels...)
}

// Sample is one series' value at gather time.
type Sample struct {
	Name  string
	Value float64
}

// Gather snapshots every registered series in registration order:
// counters and gauges as themselves, histograms expanded into their
// cumulative buckets plus _sum and _count. The order is stable across
// gathers (new registrations append), which is what the FTDC capture's
// schema chunks rely on.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()

	var out []Sample
	for _, m := range metrics {
		d := m.desc()
		switch v := m.(type) {
		case *Counter:
			out = append(out, Sample{Name: d.series(), Value: float64(v.Value())})
		case *Gauge:
			out = append(out, Sample{Name: d.series(), Value: v.Value()})
		case *Histogram:
			buckets, sum, count := v.snapshot()
			cum := uint64(0)
			for i, b := range buckets {
				cum += b
				out = append(out, Sample{Name: bucketSeries(d, v.bounds, i), Value: float64(cum)})
			}
			out = append(out, Sample{Name: d.name + "_sum" + wrap(d.labels), Value: sum})
			out = append(out, Sample{Name: d.name + "_count" + wrap(d.labels), Value: float64(count)})
		}
	}
	return out
}

func wrap(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// bucketSeries renders the i-th cumulative bucket's series name.
func bucketSeries(d desc, bounds []float64, i int) string {
	le := "+Inf"
	if i < len(bounds) {
		le = formatFloat(bounds[i])
	}
	labels := d.labels
	if labels != "" {
		labels += ","
	}
	return d.name + `_bucket{` + labels + `le="` + le + `"}`
}

// sortedForExposition returns the metrics grouped by family name (the
// Prometheus text format requires one contiguous block per family),
// preserving registration order within a family.
func (r *Registry) sortedForExposition() []metric {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	sort.SliceStable(metrics, func(i, j int) bool {
		return metrics[i].desc().name < metrics[j].desc().name
	})
	return metrics
}
