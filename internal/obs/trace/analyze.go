package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// The analysis layer behind cmd/robotack-trace: group a sink's spans
// into traces, render trees, walk the critical path, rank the slowest
// episodes, and export Chrome trace_event JSON. Pure functions over
// []SpanData so they are testable without a fleet.

// Trace is one trace's spans, start-ordered, with the root resolved.
type Trace struct {
	ID    ID
	Spans []SpanData
	// Root is the run-level span (parentless), nil when the sink only
	// caught a fragment of the trace.
	Root *SpanData
}

// Collect groups spans by trace ID. Traces come back ordered by their
// earliest span; spans within a trace by start time.
func Collect(spans []SpanData) []*Trace {
	byID := make(map[ID]*Trace)
	var out []*Trace
	for i := range spans {
		d := spans[i]
		t := byID[d.TraceID]
		if t == nil {
			t = &Trace{ID: d.TraceID}
			byID[d.TraceID] = t
			out = append(out, t)
		}
		t.Spans = append(t.Spans, d)
	}
	for _, t := range out {
		sort.SliceStable(t.Spans, func(i, j int) bool { return t.Spans[i].Start < t.Spans[j].Start })
		for i := range t.Spans {
			if t.Spans[i].Parent == 0 {
				t.Root = &t.Spans[i]
				break
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Spans) == 0 || len(out[j].Spans) == 0 {
			return len(out[j].Spans) == 0
		}
		return out[i].Spans[0].Start < out[j].Spans[0].Start
	})
	return out
}

// Find returns the trace with the given ID, nil when absent.
func Find(traces []*Trace, id ID) *Trace {
	for _, t := range traces {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Services returns the sorted distinct service names in the trace —
// a cross-process trace lists the server and every worker it touched.
func (t *Trace) Services() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range t.Spans {
		if s := t.Spans[i].Service; s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Name returns the trace's run name (the root span's campaign attr),
// or "" for fragments.
func (t *Trace) Name() string {
	if t.Root == nil {
		return ""
	}
	return t.Root.Attr("campaign")
}

// Wall is the trace's wall-clock extent: earliest start to latest end.
func (t *Trace) Wall() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	start := t.Spans[0].Start
	var end int64
	for i := range t.Spans {
		if e := t.Spans[i].End(); e > end {
			end = e
		}
	}
	return time.Duration(end - start)
}

// children indexes a trace's spans by parent span ID.
func (t *Trace) children() map[ID][]*SpanData {
	m := make(map[ID][]*SpanData)
	for i := range t.Spans {
		d := &t.Spans[i]
		m[d.Parent] = append(m[d.Parent], d)
	}
	return m
}

// FormatList writes one grep-friendly line per trace:
//
//	trace=<16hex> name=<run> spans=<n> services=<a,b> wall=<dur>
func FormatList(w io.Writer, traces []*Trace) {
	for _, t := range traces {
		name := t.Name()
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(w, "trace=%s name=%s spans=%d services=%s wall=%s\n",
			t.ID, name, len(t.Spans), strings.Join(t.Services(), ","), t.Wall().Round(time.Millisecond))
	}
}

// FormatTree renders the trace as an indented span tree. Spans whose
// parent never reached the sink (unsampled episodes' children, a
// fragment trace) are rendered as extra roots.
func FormatTree(w io.Writer, t *Trace, stageNames []string) {
	kids := t.children()
	have := make(map[ID]bool, len(t.Spans))
	for i := range t.Spans {
		have[t.Spans[i].SpanID] = true
	}
	var walk func(d *SpanData, depth int)
	walk = func(d *SpanData, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(w, "%s%s [%s] %s", indent, d.Name, d.Service, time.Duration(d.Dur).Round(time.Microsecond))
		for _, a := range d.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
		}
		if d.Name == "episode" {
			fmt.Fprintf(w, " seed=%d frames=%d", d.Seed, d.Frames)
			if d.Exemplar {
				fmt.Fprint(w, " exemplar")
			}
		}
		fmt.Fprintln(w)
		if d.Name == "episode" && len(d.Stages) > 0 {
			fmt.Fprintf(w, "%s  stages: %s\n", indent, formatStages(d, stageNames))
		}
		for _, c := range kids[d.SpanID] {
			walk(c, depth+1)
		}
	}
	for i := range t.Spans {
		d := &t.Spans[i]
		if d.Parent == 0 || !have[d.Parent] {
			walk(d, 0)
		}
	}
}

// formatStages renders an episode's accumulated stage latencies,
// scaled from the sampled frames back to a full-episode estimate.
func formatStages(d *SpanData, names []string) string {
	scale := 1.0
	if d.SampledFrames > 0 && d.Frames > 0 {
		scale = float64(d.Frames) / float64(d.SampledFrames)
	}
	var b strings.Builder
	for i, v := range d.Stages {
		if v == 0 {
			continue
		}
		name := fmt.Sprintf("stage%d", i)
		if i < len(names) {
			name = names[i]
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		est := time.Duration(float64(v) * scale)
		fmt.Fprintf(&b, "%s=%s", name, est.Round(time.Microsecond))
	}
	if d.SampledFrames > 0 && d.SampledFrames != d.Frames {
		fmt.Fprintf(&b, " (est from %d/%d frames)", d.SampledFrames, d.Frames)
	}
	return b.String()
}

// CriticalNode is one hop of a trace's critical path.
type CriticalNode struct {
	Span *SpanData
	// Self is the path time attributed to this span itself: the stretch
	// of its duration after its last-finishing child ended (its whole
	// duration for leaves).
	Self time.Duration
	// Depth is the hop's depth along the path (root = 0).
	Depth int
}

// CriticalPath walks from the root to the chain of last-finishing
// descendants — the spans that determined when the run finished. For a
// campaign this reads as queue wait vs lease/dispatch vs compute: the
// hop with the dominant Self is where the wall-clock went.
func CriticalPath(t *Trace) []CriticalNode {
	if t.Root == nil {
		return nil
	}
	kids := t.children()
	var path []CriticalNode
	cur, depth := t.Root, 0
	for cur != nil {
		var last *SpanData
		for _, c := range kids[cur.SpanID] {
			if last == nil || c.End() > last.End() {
				last = c
			}
		}
		self := time.Duration(cur.Dur)
		if last != nil {
			if tail := cur.End() - last.End(); tail >= 0 {
				self = time.Duration(tail)
			} else {
				self = 0
			}
		}
		path = append(path, CriticalNode{Span: cur, Self: self, Depth: depth})
		cur = last
		depth++
	}
	return path
}

// Breakdown aggregates where a campaign's time went, across every
// attempt and worker the trace saw.
type Breakdown struct {
	Wall         time.Duration // root span duration
	QueueWait    time.Duration // sum of queue-wait spans
	Exec         time.Duration // sum of dispatch/lease execution spans
	LeaseLatency time.Duration // lease grant → worker-job start, per remote attempt
	Compute      time.Duration // sum of engine-job spans (CPU-side wall)
	EngineJobs   int
	Episodes     int           // episode spans that reached the sink
	EpisodeTime  time.Duration // their summed duration
	Stages       []int64       // summed estimated stage nanoseconds
}

// Summarize computes the trace's Breakdown.
func Summarize(t *Trace) Breakdown {
	var b Breakdown
	if t.Root != nil {
		b.Wall = time.Duration(t.Root.Dur)
	}
	workerJobStart := make(map[ID]int64) // parent (lease span) -> worker-job start
	for i := range t.Spans {
		d := &t.Spans[i]
		if d.Name == "worker-job" {
			if cur, ok := workerJobStart[d.Parent]; !ok || d.Start < cur {
				workerJobStart[d.Parent] = d.Start
			}
		}
	}
	for i := range t.Spans {
		d := &t.Spans[i]
		switch d.Name {
		case "queue-wait":
			b.QueueWait += time.Duration(d.Dur)
		case "dispatch", "lease":
			b.Exec += time.Duration(d.Dur)
			if start, ok := workerJobStart[d.SpanID]; ok && start > d.Start {
				b.LeaseLatency += time.Duration(start - d.Start)
			}
		case "engine-job":
			b.Compute += time.Duration(d.Dur)
			b.EngineJobs++
		case "episode":
			b.Episodes++
			b.EpisodeTime += time.Duration(d.Dur)
			scale := 1.0
			if d.SampledFrames > 0 && d.Frames > 0 {
				scale = float64(d.Frames) / float64(d.SampledFrames)
			}
			for si, v := range d.Stages {
				for len(b.Stages) <= si {
					b.Stages = append(b.Stages, 0)
				}
				b.Stages[si] += int64(float64(v) * scale)
			}
		}
	}
	return b
}

// FormatCriticalPath renders the critical path and the time breakdown
// of one trace.
func FormatCriticalPath(w io.Writer, t *Trace, stageNames []string) {
	if t.Root == nil {
		fmt.Fprintf(w, "trace=%s: no root span in sink (fragment)\n", t.ID)
		return
	}
	wall := time.Duration(t.Root.Dur)
	fmt.Fprintf(w, "trace=%s name=%s wall=%s\n", t.ID, t.Name(), wall.Round(time.Millisecond))
	fmt.Fprintln(w, "critical path:")
	for _, n := range CriticalPath(t) {
		pct := 0.0
		if wall > 0 {
			pct = 100 * float64(n.Self) / float64(wall)
		}
		fmt.Fprintf(w, "  %s%-12s [%s] span=%-10s self=%-10s %5.1f%%\n",
			strings.Repeat("  ", n.Depth), n.Span.Name, n.Span.Service,
			time.Duration(n.Span.Dur).Round(time.Microsecond), n.Self.Round(time.Microsecond), pct)
	}
	b := Summarize(t)
	fmt.Fprintln(w, "breakdown:")
	fmt.Fprintf(w, "  queue-wait     %s\n", b.QueueWait.Round(time.Microsecond))
	fmt.Fprintf(w, "  lease-latency  %s\n", b.LeaseLatency.Round(time.Microsecond))
	fmt.Fprintf(w, "  exec           %s\n", b.Exec.Round(time.Microsecond))
	if b.EngineJobs > 0 {
		// Local campaigns have no dispatch/lease span; the root's wall
		// is the execution window there.
		window := b.Exec
		if window == 0 {
			window = b.Wall
		}
		par := 0.0
		if window > 0 {
			par = float64(b.Compute) / float64(window)
		}
		fmt.Fprintf(w, "  compute        %s across %d engine jobs (parallelism %.1fx)\n",
			b.Compute.Round(time.Microsecond), b.EngineJobs, par)
	}
	if b.Episodes > 0 {
		fmt.Fprintf(w, "  episodes       %d in sink, %s total\n", b.Episodes, b.EpisodeTime.Round(time.Microsecond))
		var total int64
		for _, v := range b.Stages {
			total += v
		}
		if total > 0 {
			var parts []string
			for i, v := range b.Stages {
				if v == 0 {
					continue
				}
				name := fmt.Sprintf("stage%d", i)
				if i < len(stageNames) {
					name = stageNames[i]
				}
				parts = append(parts, fmt.Sprintf("%s %.0f%%", name, 100*float64(v)/float64(total)))
			}
			fmt.Fprintf(w, "  stage mix      %s\n", strings.Join(parts, ", "))
		}
	}
}

// Slowest returns the n slowest episode spans across all traces,
// slowest first — the sampled ones plus the exemplars that were
// retained precisely because they were slow.
func Slowest(traces []*Trace, n int) []SpanData {
	var eps []SpanData
	for _, t := range traces {
		for i := range t.Spans {
			if t.Spans[i].Name == "episode" {
				eps = append(eps, t.Spans[i])
			}
		}
	}
	sort.SliceStable(eps, func(i, j int) bool { return eps[i].Dur > eps[j].Dur })
	if n > 0 && len(eps) > n {
		eps = eps[:n]
	}
	return eps
}

// FormatSlowest renders the slowest episodes with their frame-stage
// breakdowns.
func FormatSlowest(w io.Writer, traces []*Trace, n int, stageNames []string) {
	for _, d := range Slowest(traces, n) {
		kind := "sampled"
		if d.Exemplar {
			kind = "exemplar"
		}
		fmt.Fprintf(w, "episode seed=%d dur=%s frames=%d service=%s trace=%s %s\n",
			d.Seed, time.Duration(d.Dur).Round(time.Microsecond), d.Frames, d.Service, d.TraceID, kind)
		if len(d.Stages) > 0 {
			fmt.Fprintf(w, "  stages: %s\n", formatStages(&d, stageNames))
		}
	}
}

// chromeEvent is one Chrome trace_event record ("X" complete events
// plus "M" process-name metadata), the JSON chrome://tracing and
// Perfetto load directly.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts,omitempty"`  // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome exports spans as Chrome trace_event JSON: one process
// per service, spans packed into lanes (tids) greedily so overlapping
// spans render side by side.
func WriteChrome(w io.Writer, spans []SpanData) error {
	services := make(map[string]int)
	var events []chromeEvent
	for _, d := range spans {
		if _, ok := services[d.Service]; !ok {
			pid := len(services) + 1
			services[d.Service] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": d.Service},
			})
		}
	}
	// Greedy lane assignment per service: sort by start, place each
	// span in the first lane whose previous span already ended.
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return spans[order[a]].Start < spans[order[b]].Start })
	laneEnds := make(map[string][]int64)
	for _, i := range order {
		d := &spans[i]
		pid := services[d.Service]
		lanes := laneEnds[d.Service]
		tid := -1
		for li, end := range lanes {
			if end <= d.Start {
				tid = li
				break
			}
		}
		if tid == -1 {
			tid = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[tid] = d.End()
		laneEnds[d.Service] = lanes
		args := map[string]any{"trace": d.TraceID.String()}
		if d.Name == "episode" {
			args["seed"] = d.Seed
			args["frames"] = d.Frames
			if d.Exemplar {
				args["exemplar"] = true
			}
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name:  d.Name,
			Phase: "X",
			TS:    float64(d.Start) / 1e3,
			Dur:   float64(d.Dur) / 1e3,
			PID:   pid,
			TID:   tid + 1,
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
