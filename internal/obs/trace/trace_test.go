package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestDeriveIDsDeterministic pins the ID contract: pure functions of
// their inputs, never zero, and decorrelated across streams — the
// whole cross-process design rests on a server and a worker deriving
// identical IDs independently.
func TestDeriveIDsDeterministic(t *testing.T) {
	a := DeriveTraceID("DS-2-Smart-R", 500)
	b := DeriveTraceID("DS-2-Smart-R", 500)
	if a != b {
		t.Fatalf("DeriveTraceID not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("DeriveTraceID returned zero")
	}
	if DeriveTraceID("DS-2-Smart-R", 501) == a {
		t.Error("seed change did not change the trace ID")
	}
	if DeriveTraceID("DS-3-Smart-R", 500) == a {
		t.Error("name change did not change the trace ID")
	}

	lease := DeriveSpanID(a, 1, StreamLease)
	if lease == 0 {
		t.Fatal("DeriveSpanID returned zero")
	}
	if lease != DeriveSpanID(a, 1, StreamLease) {
		t.Error("DeriveSpanID not deterministic")
	}
	seen := map[uint64]uint64{}
	for _, stream := range []uint64{StreamRun, StreamQueueWait, StreamLease, StreamHeartbeat,
		StreamRequeue, StreamWorkerJob, StreamEngineJob, StreamEpisode} {
		id := DeriveSpanID(a, 1, stream)
		if prev, dup := seen[id]; dup {
			t.Errorf("streams %d and %d collide on span ID %x", prev, stream, id)
		}
		seen[id] = stream
	}
}

// TestTraceparentRoundTrip: format → parse is the identity, and
// malformed headers read as "untraced" rather than erroring.
func TestTraceparentRoundTrip(t *testing.T) {
	tid := DeriveTraceID("rt", 7)
	sid := DeriveSpanID(tid, 3, StreamLease)
	hdr := FormatTraceparent(tid, sid)
	if len(hdr) != 55 {
		t.Fatalf("header length = %d, want 55 (%q)", len(hdr), hdr)
	}
	gotT, gotS, ok := ParseTraceparent(hdr)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip: got (%x,%x,%v), want (%x,%x,true)", gotT, gotS, ok, tid, sid)
	}
	for _, bad := range []string{
		"", "00", "garbage",
		"01-" + hdr[3:], // wrong version
		hdr[:54],        // truncated
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-zzzzzzzzzzzzzzzz-01",
		FormatTraceparent(0, sid), // zero trace means untraced
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

// TestSampleDecision: deterministic, exhaustive at n<=1, and roughly
// 1-in-n over a run of derived episode span IDs.
func TestSampleDecision(t *testing.T) {
	tid := DeriveTraceID("sample", 9)
	if !SampleDecision(tid, 0) || !SampleDecision(tid, 1) {
		t.Error("n <= 1 must sample everything")
	}
	const n, total = 16, 4096
	hits := 0
	for seed := int64(0); seed < total; seed++ {
		id := DeriveSpanID(tid, uint64(seed), StreamEpisode)
		if SampleDecision(id, n) != SampleDecision(id, n) {
			t.Fatal("SampleDecision not deterministic")
		}
		if SampleDecision(id, n) {
			hits++
		}
	}
	// Loose bounds: the point is "about 1/16", not an exact binomial.
	if hits < total/n/2 || hits > total/n*2 {
		t.Errorf("sampled %d of %d at 1-in-%d; expected near %d", hits, total, n, total/n)
	}
}

// TestSpanLifecycle drives a parent/child pair through a CollectSink
// and checks everything the analysis layer depends on: parent linkage,
// service stamping, stage and attr capture, duration.
func TestSpanLifecycle(t *testing.T) {
	sink := &CollectSink{}
	tr := New("test-svc", sink)
	tid := DeriveTraceID("life", 1)
	root := tr.StartSpan(SpanContext{Tracer: tr, TraceID: tid}, "run", DeriveSpanID(tid, 0, StreamRun))
	root.SetAttr("campaign", "life")

	sc, ok := FromContext(root.Context(t.Context()))
	if !ok {
		t.Fatal("FromContext lost the span context")
	}
	child := tr.StartSpan(sc, "engine-job", DeriveSpanID(tid, 42, StreamEngineJob))
	child.StageAdd(0, 3*time.Millisecond)
	child.StageAdd(2, time.Millisecond)
	child.StageAdd(0, time.Millisecond)
	child.FrameDone(true)
	child.FrameDone(false)
	child.Finish()
	root.Finish()

	spans := sink.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "engine-job" || r.Name != "run" {
		t.Fatalf("unexpected emit order: %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.SpanID {
		t.Errorf("child parent = %s, want %s", c.Parent, r.SpanID)
	}
	if c.Service != "test-svc" || r.Service != "test-svc" {
		t.Errorf("service not stamped: %q, %q", c.Service, r.Service)
	}
	if want := []int64{int64(4 * time.Millisecond), 0, int64(time.Millisecond)}; len(c.Stages) != 3 ||
		c.Stages[0] != want[0] || c.Stages[1] != want[1] || c.Stages[2] != want[2] {
		t.Errorf("stages = %v, want %v", c.Stages, want)
	}
	if c.Frames != 2 || c.SampledFrames != 1 {
		t.Errorf("frames = %d/%d, want 2/1", c.SampledFrames, c.Frames)
	}
	if r.Attr("campaign") != "life" {
		t.Errorf("root attr campaign = %q", r.Attr("campaign"))
	}
	if c.Dur < 0 || r.Dur < c.Dur {
		t.Errorf("durations inconsistent: child %d, root %d", c.Dur, r.Dur)
	}
}

// TestNilSafety: the untraced path is nil receivers everywhere; none
// of it may panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(SpanContext{}, "x", 1)
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	sp = tr.StartEpisode(SpanContext{}, 1)
	sp.StageAdd(0, time.Millisecond)
	sp.FrameDone(true)
	sp.SetAttr("k", "v")
	if sp.Sampled() {
		t.Error("nil span reports sampled")
	}
	ctx := sp.Context(t.Context())
	if _, ok := FromContext(ctx); ok {
		t.Error("nil span produced an active context")
	}
	sp.Finish()
	tr.Emit(&SpanData{})
	tr.Flush()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEpisodeSamplingAndExemplars: unsampled episodes are withheld at
// Finish, the slowest survive as exemplars, and Flush emits them
// flagged.
func TestEpisodeSamplingAndExemplars(t *testing.T) {
	sink := &CollectSink{}
	// sampleN huge: no episode is sampled, all compete for 2 slots.
	tr := New("w", sink, WithSampleEvery(1<<30), WithSlowExemplars(2))
	tid := DeriveTraceID("ex", 3)
	sc := SpanContext{Tracer: tr, TraceID: tid}
	durs := []time.Duration{4 * time.Millisecond, time.Millisecond, 8 * time.Millisecond, 2 * time.Millisecond}
	for i, d := range durs {
		sp := tr.StartEpisode(sc, int64(i))
		if sp.Sampled() {
			t.Fatalf("episode %d sampled at rate 1-in-2^30", i)
		}
		sp.start = sp.start.Add(-d) // backdate so Finish sees ~d of wall time
		sp.Finish()
	}
	if n := len(sink.Spans()); n != 0 {
		t.Fatalf("%d spans emitted before Flush, want 0", n)
	}
	tr.Flush()
	spans := sink.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d exemplars, want 2", len(spans))
	}
	for _, sp := range spans {
		if !sp.Exemplar {
			t.Errorf("exemplar flag missing on seed %d", sp.Seed)
		}
		if sp.Seed != 0 && sp.Seed != 2 {
			t.Errorf("seed %d survived; want the two slowest (0 and 2)", sp.Seed)
		}
	}
	// Flush drained the slots; a second flush emits nothing.
	tr.Flush()
	if n := len(sink.Spans()); n != 2 {
		t.Errorf("second Flush emitted %d more spans", n-2)
	}
}

// makeSpans builds a plausible cross-process trace for analysis tests:
// root → queue-wait + lease → worker-job → engine-job → episodes.
func makeSpans(tid uint64, base int64) []SpanData {
	ms := int64(time.Millisecond)
	id := func(key, stream uint64) ID { return ID(DeriveSpanID(tid, key, stream)) }
	spans := []SpanData{
		{TraceID: ID(tid), SpanID: id(0, StreamRun), Name: "run", Service: "serve",
			Start: base, Dur: 100 * ms, Sampled: true,
			Attrs: []Attr{{Key: "campaign", Value: "DS-2-Smart-R"}}},
		{TraceID: ID(tid), SpanID: id(1, StreamQueueWait), Parent: id(0, StreamRun),
			Name: "queue-wait", Service: "serve", Start: base, Dur: 20 * ms, Sampled: true},
		{TraceID: ID(tid), SpanID: id(1, StreamLease), Parent: id(0, StreamRun),
			Name: "lease", Service: "serve", Start: base + 20*ms, Dur: 80 * ms, Sampled: true},
		{TraceID: ID(tid), SpanID: id(1, StreamWorkerJob), Parent: id(1, StreamLease),
			Name: "worker-job", Service: "w1", Start: base + 25*ms, Dur: 70 * ms, Sampled: true},
		{TraceID: ID(tid), SpanID: id(7, StreamEngineJob), Parent: id(1, StreamWorkerJob),
			Name: "engine-job", Service: "w1", Start: base + 26*ms, Dur: 68 * ms, Sampled: true},
		{TraceID: ID(tid), SpanID: id(1001, StreamEpisode), Parent: id(7, StreamEngineJob),
			Name: "episode", Service: "w1", Start: base + 27*ms, Dur: 30 * ms,
			Seed: 1001, Frames: 32, SampledFrames: 2, Sampled: true,
			Stages: []int64{10 * ms, 5 * ms}},
		{TraceID: ID(tid), SpanID: id(1002, StreamEpisode), Parent: id(7, StreamEngineJob),
			Name: "episode", Service: "w1", Start: base + 58*ms, Dur: 35 * ms,
			Seed: 1002, Frames: 32, SampledFrames: 2, Sampled: true},
	}
	return spans
}

// TestAnalyze covers Collect, the critical path, the breakdown, the
// slowest ranking and the Chrome export over one synthetic trace.
func TestAnalyze(t *testing.T) {
	tid := DeriveTraceID("an", 11)
	spans := makeSpans(tid, int64(time.Hour))
	traces := Collect(spans)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Root == nil || tr.Root.Name != "run" {
		t.Fatal("root not resolved")
	}
	if got := tr.Name(); got != "DS-2-Smart-R" {
		t.Errorf("trace name = %q", got)
	}
	if svcs := tr.Services(); len(svcs) != 2 || svcs[0] != "serve" || svcs[1] != "w1" {
		t.Errorf("services = %v, want [serve w1]", svcs)
	}
	if Find(traces, tr.ID) != tr || Find(traces, tr.ID+1) != nil {
		t.Error("Find misbehaves")
	}

	path := CriticalPath(tr)
	if len(path) == 0 || path[0].Span.Name != "run" {
		t.Fatalf("critical path does not start at root: %+v", path)
	}
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = n.Span.Name
	}
	want := "run>lease>worker-job>engine-job>episode"
	if got := strings.Join(names, ">"); got != want {
		t.Errorf("critical path = %s, want %s", got, want)
	}

	bd := Summarize(tr)
	if bd.QueueWait != 20*time.Millisecond {
		t.Errorf("queue wait = %v, want 20ms", bd.QueueWait)
	}
	if bd.Exec != 80*time.Millisecond {
		t.Errorf("exec = %v, want 80ms", bd.Exec)
	}
	if bd.LeaseLatency != 5*time.Millisecond {
		t.Errorf("lease latency = %v, want 5ms", bd.LeaseLatency)
	}
	if bd.Episodes != 2 || bd.EngineJobs != 1 {
		t.Errorf("counts: %d episodes, %d jobs", bd.Episodes, bd.EngineJobs)
	}

	slow := Slowest(traces, 1)
	if len(slow) != 1 || slow[0].Seed != 1002 {
		t.Errorf("slowest = %+v, want seed 1002", slow)
	}

	var buf bytes.Buffer
	FormatList(&buf, traces)
	if !strings.Contains(buf.String(), "services=serve,w1") {
		t.Errorf("FormatList output missing services: %q", buf.String())
	}
	buf.Reset()
	FormatCriticalPath(&buf, tr, []string{"sensor", "malware"})
	out := buf.String()
	if !strings.Contains(out, "queue-wait") || !strings.Contains(out, "critical path:") {
		t.Errorf("FormatCriticalPath output incomplete:\n%s", out)
	}
	buf.Reset()
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	chrome := buf.String()
	if !strings.Contains(chrome, `"traceEvents"`) || !strings.Contains(chrome, `"ph":"X"`) {
		t.Errorf("chrome export malformed:\n%s", chrome)
	}
}

// TestFileSinkRoundTrip: spans written through the ring come back
// identical via ReadDir, and a second sink in the same directory
// appends a fresh segment without clobbering the first.
func TestFileSinkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewFileSink(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tid := DeriveTraceID("fs", 5)
	in := makeSpans(tid, int64(time.Hour))
	for i := range in {
		sink.Emit(&in[i])
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	sink2, err := NewFileSink(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	extra := SpanData{TraceID: ID(tid), SpanID: 99, Name: "late", Service: "s2", Start: 1, Dur: 2, Sampled: true}
	sink2.Emit(&extra)
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in)+1 {
		t.Fatalf("decoded %d spans, want %d", len(got), len(in)+1)
	}
	for i := range in {
		a, b := in[i], got[i]
		if a.SpanID != b.SpanID || a.Name != b.Name || a.Start != b.Start || a.Dur != b.Dur ||
			a.Seed != b.Seed || a.Frames != b.Frames || a.SampledFrames != b.SampledFrames ||
			a.Sampled != b.Sampled || a.Service != b.Service || len(a.Stages) != len(b.Stages) ||
			len(a.Attrs) != len(b.Attrs) {
			t.Errorf("span %d mismatch:\n in: %+v\nout: %+v", i, a, b)
		}
	}
	if got[len(got)-1].Name != "late" {
		t.Errorf("second process's span lost: %+v", got[len(got)-1])
	}
}

// TestFileSinkRingCap: tiny segments and a tiny cap force deletions;
// the directory stays bounded and the survivors still decode.
func TestFileSinkRingCap(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewFileSink(dir, 4096, WithSegmentBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	sp := SpanData{TraceID: 1, SpanID: 2, Name: "filler-span-name", Service: "svc",
		Start: 1, Dur: 2, Sampled: true,
		Attrs: []Attr{{Key: "pad", Value: strings.Repeat("x", 64)}}}
	for i := 0; i < 500; i++ {
		sp.SpanID = ID(i + 1)
		sink.Emit(&sp)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	// The cap bounds retained closed segments; the live segment may
	// overhang by one roll threshold.
	if total > 4096+1024+512 {
		t.Errorf("ring holds %d bytes, cap 4096 + one segment", total)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("ring retained nothing")
	}
	if last := got[len(got)-1].SpanID; last != 500 {
		t.Errorf("newest span = %d, want 500 (oldest must be deleted, not newest)", last)
	}
}

// TestFileSinkTornTail: a segment truncated mid-record decodes cleanly
// up to the tear.
func TestFileSinkTornTail(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewFileSink(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sink.Emit(&SpanData{TraceID: 1, SpanID: ID(i + 1), Name: "s", Service: "svc",
			Start: int64(i), Dur: 1, Sampled: true})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "trace-*.bin"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Errorf("decoded %d spans after tear, want 9 (all but the torn record)", len(got))
	}
}

// TestStageAddZeroAllocs is the hot-path contract for the per-frame
// annotation calls: StageAdd and FrameDone on a live span allocate
// nothing.
func TestStageAddZeroAllocs(t *testing.T) {
	tr := New("z", NopSink{}, WithSampleEvery(1))
	tid := DeriveTraceID("z", 1)
	sp := tr.StartEpisode(SpanContext{Tracer: tr, TraceID: tid}, 7)
	defer sp.Finish()
	if !sp.Sampled() {
		t.Fatal("sample-every-1 episode not sampled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp.StageAdd(0, time.Microsecond)
		sp.StageAdd(3, time.Microsecond)
		sp.FrameDone(true)
	})
	if allocs != 0 {
		t.Errorf("StageAdd/FrameDone allocate %.1f per frame, want 0", allocs)
	}
}
