package trace

import (
	"fmt"
	"strconv"
)

// ID is a trace or span identifier. On the JSON wire (the worker span
// forwarding protocol, the journaled runq TraceRef) it renders as the
// 16-hex-digit string the rest of the tracing world uses; in memory
// and in the binary sink it stays a uint64.
type ID uint64

// String renders the ID as 16 lowercase hex digits.
func (id ID) String() string {
	return fmt.Sprintf("%016x", uint64(id))
}

// MarshalJSON renders the ID as a quoted hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the quoted hex string form.
func (id *ID) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("trace: ID must be a quoted hex string, got %s", b)
	}
	v, err := strconv.ParseUint(string(b[1:len(b)-1]), 16, 64)
	if err != nil {
		return fmt.Errorf("trace: bad ID %s: %w", b, err)
	}
	*id = ID(v)
	return nil
}

// ParseID parses the 16-hex-digit string form (as printed by String
// and carried in headers).
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad ID %q: %w", s, err)
	}
	return ID(v), nil
}

// FormatTraceparent renders the W3C-style traceparent header the lease
// protocol carries: version 00, the 128-bit trace-id field holding our
// 64-bit trace ID zero-padded, the parent span ID, and the sampled
// flag always set (sampling here is per-episode, decided downstream).
func FormatTraceparent(traceID, spanID uint64) string {
	return fmt.Sprintf("00-%032x-%016x-01", traceID, spanID)
}

// ParseTraceparent extracts the trace and parent span IDs from a
// traceparent header value. ok is false for anything malformed — an
// absent or garbled header simply means "untraced".
func ParseTraceparent(s string) (traceID, spanID uint64, ok bool) {
	// 00-<32 hex>-<16 hex>-<2 hex>
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return 0, 0, false
	}
	t, err := strconv.ParseUint(s[19:35], 16, 64) // low 64 bits of the 128-bit field
	if err != nil {
		return 0, 0, false
	}
	p, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return t, p, t != 0 && p != 0
}

// SpanData is one completed span — the unit the sinks persist and the
// worker protocol forwards. Durations and timestamps are nanoseconds;
// Stages holds per-frame-stage accumulated latency for episode spans
// (indexed by the caller's stage constants, perception.Stage* for the
// frame loop).
type SpanData struct {
	TraceID ID     `json:"trace"`
	SpanID  ID     `json:"span"`
	Parent  ID     `json:"parent,omitempty"`
	Name    string `json:"name"`
	Service string `json:"service"`
	Start   int64  `json:"start_ns"`
	Dur     int64  `json:"dur_ns"`

	// Episode fields.
	Seed          int64 `json:"seed,omitempty"`
	Frames        int32 `json:"frames,omitempty"`
	SampledFrames int32 `json:"sampled_frames,omitempty"`
	Sampled       bool  `json:"sampled,omitempty"`
	// Exemplar marks a span that escaped sampling by being one of the
	// slowest episodes its tracer saw.
	Exemplar bool `json:"exemplar,omitempty"`

	Stages []int64 `json:"stages,omitempty"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// End is the span's end timestamp in nanoseconds.
func (d *SpanData) End() int64 { return d.Start + d.Dur }

// Attr returns the named attribute's value ("" when absent).
func (d *SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Clone deep-copies the span, detaching Stages and Attrs from any
// pooled backing arrays. Sinks that buffer spans past Emit must clone.
func (d *SpanData) Clone() SpanData {
	out := *d
	if len(d.Stages) > 0 {
		out.Stages = append([]int64(nil), d.Stages...)
	}
	if len(d.Attrs) > 0 {
		out.Attrs = append([]Attr(nil), d.Attrs...)
	}
	return out
}
