package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Sink receives completed spans. Emit is called synchronously from
// Finish (and from queue transitions), so implementations must be fast
// and safe for concurrent use; they must not retain d or its slices
// after returning — the span behind them is pooled (Clone to buffer).
type Sink interface {
	Emit(d *SpanData)
}

// NopSink drops everything — the default for tracers without a
// configured sink, and the zero-overhead sink for the zero-alloc test.
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(*SpanData) {}

// CollectSink buffers cloned spans in memory — the test double.
type CollectSink struct {
	mu    sync.Mutex
	spans []SpanData
}

// Emit implements Sink.
func (c *CollectSink) Emit(d *SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, d.Clone())
}

// Spans returns a snapshot of everything emitted so far.
func (c *CollectSink) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.spans...)
}

// The durable sink: FTDC-style length-delimited binary records in
// rotating segment files inside one directory, with a total-size cap —
// a ring, so tracing is always-on without unbounded disk growth.
// Like the FTDC capture and the runq journal, a torn tail (the process
// died mid-write) costs at most the final record; decode stops cleanly
// at the tear.

// fileMagic opens every segment file.
const fileMagic = "robotack-trace\x01"

// DefaultSegmentBytes is the segment roll threshold.
const DefaultSegmentBytes = 4 << 20

// DefaultCapBytes is the default ring cap across all segments.
const DefaultCapBytes = 64 << 20

// segPattern names segment files; the sequence number orders them.
const segPattern = "trace-%06d.bin"

// FileSink persists spans to a size-capped ring of binary segment
// files under dir. Safe for concurrent Emit.
type FileSink struct {
	dir      string
	segBytes int64
	capBytes int64

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     int
	written int64
	scratch []byte
}

// SinkOption configures a FileSink.
type SinkOption func(*FileSink)

// WithSegmentBytes overrides the segment roll threshold.
func WithSegmentBytes(n int64) SinkOption {
	return func(s *FileSink) {
		if n > 0 {
			s.segBytes = n
		}
	}
}

// NewFileSink opens (creating if needed) a span ring under dir capped
// at capBytes total (<=0: DefaultCapBytes). Each process appends a
// fresh segment — segments are never reopened for append, so a
// previous process's torn tail stays confined to its own file.
func NewFileSink(dir string, capBytes int64, opts ...SinkOption) (*FileSink, error) {
	if capBytes <= 0 {
		capBytes = DefaultCapBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create sink dir: %w", err)
	}
	s := &FileSink{dir: dir, segBytes: DefaultSegmentBytes, capBytes: capBytes}
	for _, opt := range opts {
		opt(s)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		s.seq = segs[n-1].seq + 1
	}
	if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

type segment struct {
	seq  int
	path string
	size int64
}

// segments lists dir's segment files in sequence order.
func segments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []segment
	for _, e := range ents {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), segPattern, &seq); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, segment{seq: seq, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// openSegmentLocked starts the next segment file, enforcing the ring
// cap first so total disk use stays bounded even while writing.
func (s *FileSink) openSegmentLocked() error {
	if err := s.enforceCapLocked(); err != nil {
		return err
	}
	path := filepath.Join(s.dir, fmt.Sprintf(segPattern, s.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("trace: open segment: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	if _, err := s.w.WriteString(fileMagic); err != nil {
		f.Close()
		return err
	}
	s.written = int64(len(fileMagic))
	s.seq++
	return nil
}

// enforceCapLocked deletes oldest segments while the directory exceeds
// the cap (the active segment is already closed when this runs).
func (s *FileSink) enforceCapLocked() error {
	segs, err := segments(s.dir)
	if err != nil {
		return err
	}
	var total int64
	for _, sg := range segs {
		total += sg.size
	}
	for _, sg := range segs {
		if total <= s.capBytes {
			break
		}
		if err := os.Remove(sg.path); err != nil {
			return err
		}
		total -= sg.size
	}
	return nil
}

// Emit implements Sink: encode, append, roll the segment when full.
// Errors are swallowed after marking the sink broken — tracing must
// never take the serving path down with it.
func (s *FileSink) Emit(d *SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return
	}
	s.scratch = appendSpan(s.scratch[:0], d)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(s.scratch)))
	if _, err := s.w.Write(lenBuf[:n]); err != nil {
		s.w = nil
		return
	}
	if _, err := s.w.Write(s.scratch); err != nil {
		s.w = nil
		return
	}
	s.written += int64(n + len(s.scratch))
	if s.written >= s.segBytes {
		s.w.Flush()
		s.f.Close()
		if err := s.openSegmentLocked(); err != nil {
			s.w = nil
		}
	}
}

// Flush pushes buffered spans to disk so concurrent readers see them.
func (s *FileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.Flush()
}

// Close flushes and closes the active segment.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if s.w != nil {
		err = s.w.Flush()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w = nil, nil
	return err
}

// Span flags in the binary record.
const (
	flagSampled  = 1 << 0
	flagExemplar = 1 << 1
)

// appendSpan encodes d onto buf.
func appendSpan(buf []byte, d *SpanData) []byte {
	buf = binary.AppendUvarint(buf, uint64(d.TraceID))
	buf = binary.AppendUvarint(buf, uint64(d.SpanID))
	buf = binary.AppendUvarint(buf, uint64(d.Parent))
	buf = appendString(buf, d.Name)
	buf = appendString(buf, d.Service)
	buf = binary.AppendVarint(buf, d.Start)
	buf = binary.AppendVarint(buf, d.Dur)
	buf = binary.AppendVarint(buf, d.Seed)
	buf = binary.AppendUvarint(buf, uint64(d.Frames))
	buf = binary.AppendUvarint(buf, uint64(d.SampledFrames))
	var flags byte
	if d.Sampled {
		flags |= flagSampled
	}
	if d.Exemplar {
		flags |= flagExemplar
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(d.Stages)))
	for _, v := range d.Stages {
		buf = binary.AppendVarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Attrs)))
	for _, a := range d.Attrs {
		buf = appendString(buf, a.Key)
		buf = appendString(buf, a.Value)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// cursor decodes one record payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.err = fmt.Errorf("trace: truncated record")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.err = fmt.Errorf("trace: truncated record")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.err = fmt.Errorf("trace: truncated record")
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) str() string {
	n := int(c.uvarint())
	if c.err != nil {
		return ""
	}
	if n < 0 || c.off+n > len(c.b) {
		c.err = fmt.Errorf("trace: truncated record")
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// decodeSpan decodes one record payload.
func decodeSpan(b []byte) (SpanData, error) {
	c := cursor{b: b}
	var d SpanData
	d.TraceID = ID(c.uvarint())
	d.SpanID = ID(c.uvarint())
	d.Parent = ID(c.uvarint())
	d.Name = c.str()
	d.Service = c.str()
	d.Start = c.varint()
	d.Dur = c.varint()
	d.Seed = c.varint()
	d.Frames = int32(c.uvarint())
	d.SampledFrames = int32(c.uvarint())
	flags := c.byte()
	d.Sampled = flags&flagSampled != 0
	d.Exemplar = flags&flagExemplar != 0
	if n := c.uvarint(); n > 0 && c.err == nil {
		if n > MaxStages {
			return d, fmt.Errorf("trace: record claims %d stages", n)
		}
		d.Stages = make([]int64, n)
		for i := range d.Stages {
			d.Stages[i] = c.varint()
		}
	}
	if n := c.uvarint(); n > 0 && c.err == nil {
		if n > 64 {
			return d, fmt.Errorf("trace: record claims %d attrs", n)
		}
		d.Attrs = make([]Attr, n)
		for i := range d.Attrs {
			d.Attrs[i].Key = c.str()
			d.Attrs[i].Value = c.str()
		}
	}
	return d, c.err
}

// DecodeAll decodes one segment stream. A torn tail — an incomplete
// final record from a process that died mid-write — terminates the
// decode cleanly with everything before it.
func DecodeAll(r io.Reader) ([]SpanData, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: not a trace segment (bad magic)")
	}
	var out []SpanData
	buf := make([]byte, 0, 512)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return out, nil // clean EOF or a tear inside the length
		}
		if n > 1<<24 {
			return out, fmt.Errorf("trace: record length %d exceeds limit", n)
		}
		if uint64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return out, nil // torn tail
		}
		d, err := decodeSpan(buf)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
}

// ReadDir decodes every segment in a sink directory, oldest first.
func ReadDir(dir string) ([]SpanData, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	var out []SpanData
	for _, sg := range segs {
		f, err := os.Open(sg.path)
		if err != nil {
			return nil, err
		}
		spans, err := DecodeAll(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sg.path, err)
		}
		out = append(out, spans...)
	}
	return out, nil
}
