// Package trace is the fleet's span tracer, built in the style of
// internal/obs: dependency-free, allocation-free on the hot path, and
// strictly observational — tracing an episode must never change its
// result bytes.
//
// A trace follows one campaign run end to end: campaignd opens a root
// span when the run is submitted, runq records queue-wait, dispatch/
// lease, heartbeat and requeue spans, robotack-worker continues the
// trace across the process boundary (the lease protocol carries
// traceparent-style headers), the engine emits one span per job, and
// the experiment runner emits sampled per-episode spans annotated with
// the frame-stage latencies the perception.Stage* instrumentation
// points already time.
//
// Determinism is the same contract the engine makes: every trace and
// span ID is derived with a SplitMix64 finalizer from values that are
// themselves pure functions of (baseSeed, jobIndex) — so a re-run of
// the same campaign produces byte-identical IDs, and a server and a
// worker can each derive the other's span IDs without exchanging them.
package trace

import (
	"context"
	"sync"
	"time"
)

// splitmix is the SplitMix64 finalizer — the same mixing constants as
// engine.SplitMixSeeds, so ID quality matches the seed derivation the
// repo already trusts.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveTraceID derives the deterministic trace ID of one campaign run
// from its record name and base seed: FNV-1a over the name, mixed with
// the seed through the finalizer. Never zero (zero means "no trace").
func DeriveTraceID(name string, seed int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	id := splitmix(h ^ splitmix(uint64(seed)))
	if id == 0 {
		id = 1
	}
	return id
}

// Streams partition the span-ID space so spans keyed by the same value
// (a job's attempt number, an episode's seed) cannot collide across
// span kinds. Both ends of the lease protocol derive the same IDs from
// the same (traceID, key, stream) triple — that is what lets a worker
// parent its spans under the server's lease span without the server
// ever sending the span ID.
const (
	StreamRun uint64 = iota + 1
	StreamQueueWait
	StreamLease
	StreamHeartbeat
	StreamRequeue
	StreamWorkerJob
	StreamEngineJob
	StreamEpisode
)

// DeriveSpanID derives a deterministic span ID within a trace. key is
// the span's natural identity in its stream: the lease attempt for
// queue spans, the derived episode seed for episode spans. Never zero.
func DeriveSpanID(traceID, key, stream uint64) uint64 {
	id := splitmix(traceID ^ splitmix(key*0x9e3779b97f4a7c15^stream))
	if id == 0 {
		id = 1
	}
	return id
}

// sampleSalt decorrelates the sampling decision from the span-ID
// derivation so "every Nth span" is not systematically aligned with
// any seed pattern.
const sampleSalt = 0x5bd1e995

// SampleDecision reports whether a span with the given ID is sampled
// at rate 1-in-n. The decision is a pure function of (spanID, n), so
// the same episodes are sampled on every rerun — and on every worker.
func SampleDecision(spanID, n uint64) bool {
	if n <= 1 {
		return true
	}
	return splitmix(spanID^sampleSalt)%n == 0
}

// SpanContext carries the active trace through context.Context and
// across process boundaries: who to emit to, which trace, and the
// parent span for children started under it.
type SpanContext struct {
	Tracer  *Tracer
	TraceID uint64
	SpanID  uint64
}

type ctxKey struct{}

// NewContext returns ctx with sc attached.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the active SpanContext. ok is false when ctx
// carries none (or a zero one) — the fast path for untraced runs is a
// single map-free context lookup per job, never per frame.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc, sc.Tracer != nil && sc.TraceID != 0
}

// Frame-stage slots on an episode span. Callers annotate stages by
// index (the experiment runner uses perception.Stage* constants, which
// fit); MaxStages bounds the fixed per-span array so annotation stays
// allocation-free.
const MaxStages = 8

// maxAttrs bounds the fixed per-span attribute array; SetAttr drops
// overflow rather than allocating.
const maxAttrs = 4

// Attr is one string key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one in-flight span. Spans are pooled by their Tracer and
// recycled on Finish; all methods are nil-receiver safe so untraced
// code paths cost one branch. A Span must not be touched after Finish.
type Span struct {
	tracer  *Tracer
	start   time.Time
	episode bool

	d       SpanData
	nstages int
	stages  [MaxStages]int64
	nattrs  int
	attrs   [maxAttrs]Attr
}

// Tracer creates, samples, pools and emits spans for one service (a
// server or worker process, named in every span it emits).
type Tracer struct {
	service string
	sink    Sink
	sampleN uint64
	pool    sync.Pool

	slowN int
	mu    sync.Mutex
	slow  []SpanData
}

// Option configures a Tracer.
type Option func(*Tracer)

// DefaultSampleEvery is the default episode sampling rate: 1 episode
// in 16 gets a full span. Frame-stage annotation within a sampled
// episode reuses the metrics' own 1-in-16 frame sampling.
const DefaultSampleEvery = 16

// DefaultSlowExemplars is how many of the slowest unsampled episodes a
// tracer retains and emits (flagged as exemplars) when it closes.
const DefaultSlowExemplars = 8

// WithSampleEvery sets the episode sampling rate to 1-in-n (n <= 1:
// every episode).
func WithSampleEvery(n int) Option {
	return func(t *Tracer) {
		if n >= 1 {
			t.sampleN = uint64(n)
		}
	}
}

// WithSlowExemplars sets how many slowest unsampled episodes to retain
// (0 disables exemplars).
func WithSlowExemplars(n int) Option {
	return func(t *Tracer) {
		if n >= 0 {
			t.slowN = n
		}
	}
}

// New creates a Tracer emitting to sink under the given service name.
// A nil sink means the tracer drops everything (NopSink).
func New(service string, sink Sink, opts ...Option) *Tracer {
	if sink == nil {
		sink = NopSink{}
	}
	t := &Tracer{
		service: service,
		sink:    sink,
		sampleN: DefaultSampleEvery,
		slowN:   DefaultSlowExemplars,
	}
	t.pool.New = func() any { return new(Span) }
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Service reports the tracer's service name.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// StartSpan begins a span under sc with the given deterministic span
// ID. Nil-safe: a nil tracer returns a nil span, and every Span method
// tolerates nil.
func (t *Tracer) StartSpan(sc SpanContext, name string, spanID uint64) *Span {
	if t == nil {
		return nil
	}
	s := t.pool.Get().(*Span)
	*s = Span{tracer: t, start: time.Now()}
	s.d = SpanData{
		TraceID: ID(sc.TraceID),
		SpanID:  ID(spanID),
		Parent:  ID(sc.SpanID),
		Name:    name,
		Service: t.service,
		Start:   s.start.UnixNano(),
		Sampled: true,
	}
	return s
}

// StartEpisode begins an episode span whose ID derives from the
// episode's seed — identical across reruns and across whichever
// process executes the job. Unsampled episode spans are not emitted on
// Finish; they compete for a slow-exemplar slot instead.
func (t *Tracer) StartEpisode(sc SpanContext, seed int64) *Span {
	if t == nil {
		return nil
	}
	spanID := DeriveSpanID(sc.TraceID, uint64(seed), StreamEpisode)
	s := t.StartSpan(sc, "episode", spanID)
	s.episode = true
	s.d.Seed = seed
	s.d.Sampled = SampleDecision(spanID, t.sampleN)
	return s
}

// Emit hands a fully built SpanData straight to the sink — the path
// for retroactive spans assembled from recorded timestamps (runq's
// queue-wait and lease spans) and for spans forwarded from another
// process (the worker-span ingest endpoint preserves the origin
// service name). The sink must not retain d's slices.
func (t *Tracer) Emit(d *SpanData) {
	if t == nil {
		return
	}
	if d.Service == "" {
		d.Service = t.service
	}
	t.sink.Emit(d)
}

// offerSlow competes an unsampled finished episode for an exemplar
// slot: the slowN slowest survive, by wall duration.
func (t *Tracer) offerSlow(d *SpanData) {
	if t.slowN <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slow) < t.slowN {
		t.slow = append(t.slow, d.Clone())
		return
	}
	min := 0
	for i := 1; i < len(t.slow); i++ {
		if t.slow[i].Dur < t.slow[min].Dur {
			min = i
		}
	}
	if d.Dur > t.slow[min].Dur {
		t.slow[min] = d.Clone()
	}
}

// Flush emits the retained slow-episode exemplars (flagged Exemplar)
// and clears them. Close calls it; callers with long-lived tracers may
// call it at job boundaries so exemplars land near their run.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	slow := t.slow
	t.slow = nil
	t.mu.Unlock()
	for i := range slow {
		slow[i].Exemplar = true
		t.sink.Emit(&slow[i])
	}
}

// Close flushes exemplars and closes the sink if it is closable.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.Flush()
	if c, ok := t.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Context returns ctx with this span as the active parent, so children
// started under the returned context nest beneath it.
func (s *Span) Context(ctx context.Context) context.Context {
	if s == nil {
		return ctx
	}
	return NewContext(ctx, SpanContext{
		Tracer:  s.tracer,
		TraceID: uint64(s.d.TraceID),
		SpanID:  uint64(s.d.SpanID),
	})
}

// Sampled reports whether the span will be emitted on Finish. Callers
// may use it to skip annotation work for unsampled spans — but
// StageAdd and FrameDone are cheap enough to call unconditionally.
func (s *Span) Sampled() bool { return s != nil && s.d.Sampled }

// StageAdd accumulates d of stage latency into the span's stage slot.
// Allocation-free: a fixed array add and two stores.
func (s *Span) StageAdd(stage int, d time.Duration) {
	if s == nil || stage < 0 || stage >= MaxStages {
		return
	}
	s.stages[stage] += int64(d)
	if stage >= s.nstages {
		s.nstages = stage + 1
	}
}

// FrameDone counts one simulation frame against the span; sampled
// marks frames whose stage latencies were annotated, so analysis can
// scale stage totals back to full-episode estimates.
func (s *Span) FrameDone(sampled bool) {
	if s == nil {
		return
	}
	s.d.Frames++
	if sampled {
		s.d.SampledFrames++
	}
}

// SetAttr annotates the span. At most maxAttrs attributes stick;
// overflow is dropped, not allocated for.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Value: value}
	s.nattrs++
}

// Finish completes the span: sampled spans go to the sink, unsampled
// episode spans compete for a slow-exemplar slot, and the Span returns
// to the pool either way. The span must not be used afterwards.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	t := s.tracer
	s.d.Dur = int64(time.Since(s.start))
	if s.nstages > 0 {
		s.d.Stages = s.stages[:s.nstages]
	}
	if s.nattrs > 0 {
		s.d.Attrs = s.attrs[:s.nattrs]
	}
	if s.episode && !s.d.Sampled {
		t.offerSlow(&s.d)
	} else {
		t.sink.Emit(&s.d)
	}
	*s = Span{}
	t.pool.Put(s)
}
