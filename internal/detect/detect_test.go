package detect

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func noiselessDetector() *Detector {
	cfg := DefaultConfig()
	cfg.DisableNoise = true
	return New(cfg, nil)
}

func TestDetectSingleComponent(t *testing.T) {
	img := sensor.NewImage(64, 48)
	img.Clear(0.05)
	img.FillRect(geom.R(10, 20, 8, 6), 0.9)
	dets := noiselessDetector().Detect(img)
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	d := dets[0]
	if d.Raw != geom.R(10, 20, 8, 6) {
		t.Errorf("Raw = %v", d.Raw)
	}
	if d.Box != d.Raw {
		t.Errorf("noiseless Box should equal Raw")
	}
	if d.Area != 48 {
		t.Errorf("Area = %d, want 48", d.Area)
	}
	if d.Class != sim.ClassVehicle {
		t.Errorf("Class = %v", d.Class)
	}
}

func TestDetectClassifiesPedestrianByAspect(t *testing.T) {
	img := sensor.NewImage(64, 48)
	img.FillRect(geom.R(5, 10, 3, 9), 0.9) // tall & narrow
	dets := noiselessDetector().Detect(img)
	if len(dets) != 1 || dets[0].Class != sim.ClassPedestrian {
		t.Fatalf("dets = %+v, want one pedestrian", dets)
	}
}

func TestDetectMultipleAndMinArea(t *testing.T) {
	img := sensor.NewImage(64, 48)
	img.FillRect(geom.R(2, 2, 5, 4), 0.9)
	img.FillRect(geom.R(30, 30, 6, 5), 0.9)
	img.Set(60, 40, 0.9) // single pixel, below MinArea
	dets := noiselessDetector().Detect(img)
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
}

func TestDetectSeparatesDiagonalComponents(t *testing.T) {
	// Two blocks touching only at a corner: 4-connectivity must split them.
	img := sensor.NewImage(32, 32)
	img.FillRect(geom.R(4, 4, 3, 3), 0.9)
	img.FillRect(geom.R(7, 7, 3, 3), 0.9)
	dets := noiselessDetector().Detect(img)
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2 (4-connectivity)", len(dets))
	}
}

func TestDetectMergesTouchingComponents(t *testing.T) {
	img := sensor.NewImage(32, 32)
	img.FillRect(geom.R(4, 4, 4, 4), 0.9)
	img.FillRect(geom.R(8, 4, 4, 4), 0.9) // shares an edge column
	dets := noiselessDetector().Detect(img)
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1 (merged)", len(dets))
	}
	if dets[0].Raw.W != 8 {
		t.Errorf("merged width = %v, want 8", dets[0].Raw.W)
	}
}

func TestNoiseDistributionMatchesFig5(t *testing.T) {
	rng := stats.NewRNG(42)
	det := NewDefault(rng)
	img := sensor.NewImage(192, 108)
	boxW, boxH := 12.0, 9.0
	var nx, ny []float64
	for i := 0; i < 4000; i++ {
		img.Clear(0.05)
		img.FillRect(geom.R(60, 50, boxW, boxH), 0.9)
		for _, d := range det.Detect(img) {
			nx = append(nx, (d.Box.Center().X-d.Raw.Center().X)/d.Raw.W)
			ny = append(ny, (d.Box.Center().Y-d.Raw.Center().Y)/d.Raw.H)
		}
	}
	if len(nx) < 3000 {
		t.Fatalf("only %d detections (misses ate too many)", len(nx))
	}
	fx, err := stats.FitNormal(nx)
	if err != nil {
		t.Fatal(err)
	}
	fy, err := stats.FitNormal(ny)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fx.Mu-VehicleNoise.MuX) > 0.05 || math.Abs(fx.Sigma-VehicleNoise.SigmaX) > 0.06 {
		t.Errorf("x fit %v, want mu=%v sigma=%v", fx, VehicleNoise.MuX, VehicleNoise.SigmaX)
	}
	if math.Abs(fy.Mu-VehicleNoise.MuY) > 0.05 || math.Abs(fy.Sigma-VehicleNoise.SigmaY) > 0.06 {
		t.Errorf("y fit %v, want mu=%v sigma=%v", fy, VehicleNoise.MuY, VehicleNoise.SigmaY)
	}
}

func TestMissRunsAreContinuousAndExponential(t *testing.T) {
	rng := stats.NewRNG(7)
	det := NewDefault(rng)
	img := sensor.NewImage(192, 108)

	var runs []float64
	run := 0
	detected := 0
	const frames = 30000
	for i := 0; i < frames; i++ {
		img.Clear(0.05)
		img.FillRect(geom.R(80, 50, 10, 8), 0.9) // static vehicle-shaped blob
		dets := det.Detect(img)
		if len(dets) == 0 {
			run++
			continue
		}
		detected++
		if run > 0 {
			runs = append(runs, float64(run))
			run = 0
		}
	}
	if len(runs) < 100 {
		t.Fatalf("only %d miss runs in %d frames", len(runs), frames)
	}
	fit, err := stats.FitExponential(runs)
	if err != nil {
		t.Fatal(err)
	}
	// Miss runs must be at least 1 frame and heavy-tailed like Fig. 5(b):
	// 99th percentile in the tens of frames, not single digits.
	if fit.Loc < 1 {
		t.Errorf("run loc = %v, want >= 1", fit.Loc)
	}
	if fit.P99 < 20 || fit.P99 > 110 {
		t.Errorf("p99 = %v, want in the tens of frames (paper: 59.4)", fit.P99)
	}
	// Overall availability should remain high (misdetections are noise,
	// not blackout).
	if avail := float64(detected) / frames; avail < 0.75 {
		t.Errorf("availability = %v, too low", avail)
	}
}

func TestPedestrianMissRunsShorterThanVehicle(t *testing.T) {
	rng := stats.NewRNG(9)
	det := NewDefault(rng)
	var ped, veh []float64
	for i := 0; i < 20000; i++ {
		ped = append(ped, float64(det.SampleMissRun(sim.ClassPedestrian)))
		veh = append(veh, float64(det.SampleMissRun(sim.ClassVehicle)))
	}
	if stats.Mean(ped) >= stats.Mean(veh) {
		t.Errorf("mean ped run %v should be < mean veh run %v", stats.Mean(ped), stats.Mean(veh))
	}
	p99p, _ := stats.Percentile(ped, 99)
	p99v, _ := stats.Percentile(veh, 99)
	if p99p >= p99v {
		t.Errorf("p99 ped %v should be < p99 veh %v (paper: 31 vs 59.4)", p99p, p99v)
	}
	if p99p < 10 || p99p > 60 {
		t.Errorf("p99 ped = %v, want near 31", p99p)
	}
	if p99v < 30 || p99v > 110 {
		t.Errorf("p99 veh = %v, want near 59", p99v)
	}
}

func TestResetClearsMissState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VehicleMiss.StartProb = 1.0 // always start a run
	cfg.VehicleMiss.LongProb = 0
	det := New(cfg, stats.NewRNG(3))
	img := sensor.NewImage(64, 48)
	img.FillRect(geom.R(10, 10, 8, 6), 0.9)
	if got := det.Detect(img); len(got) != 0 {
		t.Fatalf("first frame should start a miss run, got %d detections", len(got))
	}
	det.Reset()
	if len(det.prev) != 0 {
		t.Error("Reset did not clear state")
	}
	// A post-Reset frame must behave like a first frame: the always-miss
	// config starts a fresh run instead of continuing the old one.
	if got := det.Detect(img); len(got) != 0 {
		t.Fatalf("post-Reset frame should start a fresh miss run, got %d detections", len(got))
	}
}

func TestDetectorWithCameraEndToEnd(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = 10
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(30, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	w.AddActor(&sim.Actor{Class: sim.ClassPedestrian, Pos: geom.V(18, 4), Size: sim.SizePedestrian, Behavior: sim.Parked{}})
	cam := sensor.DefaultCamera()
	frame := cam.Capture(w, 0)
	dets := noiselessDetector().Detect(frame.Image)
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
	classes := map[sim.Class]int{}
	for _, d := range dets {
		classes[d.Class]++
		// Each detection should land on a truth projection.
		found := false
		for _, tr := range frame.Truth {
			if d.Raw.IoU(tr.Box) > 0.4 {
				found = true
			}
		}
		if !found {
			t.Errorf("detection %v matches no truth box", d.Raw)
		}
	}
	if classes[sim.ClassPedestrian] != 1 || classes[sim.ClassVehicle] != 1 {
		t.Errorf("classes = %v", classes)
	}
}

func BenchmarkDetect(b *testing.B) {
	rng := stats.NewRNG(1)
	det := NewDefault(rng)
	img := sensor.NewImage(192, 108)
	img.Clear(0.05)
	for i := 0; i < 6; i++ {
		img.FillRect(geom.R(float64(10+30*i), 50, 12, 9), 0.9)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = det.Detect(img)
	}
}
