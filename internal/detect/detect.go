// Package detect implements the object-detector surrogate that stands
// in for YOLOv3 in the Apollo perception stack (DESIGN.md §2).
//
// The detector is honest about its input: it reads only the camera
// raster. It thresholds the image, extracts connected components,
// classifies each component by aspect ratio, and reports one bounding
// box per component. Two noise processes are injected on top, with the
// exact distribution families and parameters the paper measured for
// YOLOv3 in Fig. 5:
//
//   - bounding-box center error: Gaussian, normalized by box size
//     (vehicle: N(0.023, 0.464^2) in x, N(0.094, 0.586^2) in y;
//     pedestrian: N(0.254, 2.010^2) in x, N(0.186, 0.409^2) in y);
//   - continuous misdetection runs: a component disappears for a run of
//     consecutive frames; run lengths follow a shifted exponential with
//     a heavy tail so that the 99th percentiles land near the paper's
//     31 frames (pedestrian) and 59 frames (vehicle).
//
// Because the attack's stealth envelope is defined by these very
// distributions (§III-B, §VI-A), reproducing them numerically is what
// makes the reproduction faithful.
package detect

import (
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
	"math"
)

// NoiseParams is the Gaussian bbox-center error model for one class,
// in units normalized by the bounding-box width (x) and height (y).
type NoiseParams struct {
	MuX, SigmaX float64
	MuY, SigmaY float64
}

// MissParams is the continuous-misdetection model for one class. A miss
// run starts with probability StartProb per detected frame; its length
// is 1 + Exp(Lambda) frames, except that with probability LongProb it is
// drawn from the heavy tail 1 + Exp(LongLambda).
type MissParams struct {
	StartProb  float64
	Lambda     float64
	LongProb   float64
	LongLambda float64
}

// Fig. 5 parameters (paper, §VI-A).
var (
	// VehicleNoise is the Fig. 5(c)/(d) fit.
	VehicleNoise = NoiseParams{MuX: 0.023, SigmaX: 0.464, MuY: 0.094, SigmaY: 0.586}
	// PedestrianNoise is the Fig. 5(e)/(f) fit.
	PedestrianNoise = NoiseParams{MuX: 0.254, SigmaX: 2.010, MuY: 0.186, SigmaY: 0.409}
	// VehicleMiss targets Fig. 5(b): Exp(loc=1, lambda=0.327), p99 ~ 59 frames.
	VehicleMiss = MissParams{StartProb: 0.022, Lambda: 0.327, LongProb: 0.08, LongLambda: 0.0359}
	// PedestrianMiss targets Fig. 5(a): Exp(loc=1, lambda=0.717), p99 ~ 31 frames.
	PedestrianMiss = MissParams{StartProb: 0.035, Lambda: 0.717, LongProb: 0.08, LongLambda: 0.0693}
)

// Detection is one detector output ("o_t^i" in the paper).
type Detection struct {
	// Box is the reported bounding box (pixel coordinates), including
	// inference noise. This is what the tracker consumes.
	Box geom.Rect
	// Raw is the pixel-exact component box before noise injection.
	Raw geom.Rect
	// Bottom is the sub-pixel refined bottom edge of the reported box
	// (same noise offset as Box). The ground-contact line drives the
	// mono-camera depth estimate, so it is refined from the
	// anti-aliased boundary intensity.
	Bottom float64
	// CenterU is the sub-pixel refined horizontal center (same noise
	// offset as Box); it drives the lateral ground estimate.
	CenterU float64
	// Class is the heuristic classification (aspect ratio).
	Class sim.Class
	// Area is the component's pixel mass.
	Area int
	// Score is a mock confidence in (0, 1], larger for bigger
	// components.
	Score float64
}

// Config parametrizes a Detector.
type Config struct {
	// Threshold is the foreground intensity cut.
	Threshold float64
	// MinArea is the minimum component pixel mass to report.
	MinArea int
	// PedestrianAspect is the height/width ratio above which a
	// component is classified as a pedestrian.
	PedestrianAspect float64
	// Background and Foreground are the expected raster intensities,
	// used to decode fractional boundary coverage for sub-pixel edge
	// refinement.
	Background, Foreground float64
	// NoiseCoreFrac and NoiseTailProb shape the center-error sampling
	// as a variance-preserving core/tail mixture: with probability
	// 1-NoiseTailProb the error is drawn at NoiseCoreFrac*sigma, else
	// from the matching heavy tail. The FITTED sigma equals the
	// configured class sigma either way — this is what reconciles the
	// paper's large fitted sigmas (pedestrian x: 2.01 box widths) with
	// its short misdetection runs: most boxes are tightly localized,
	// and the occasional gross outlier fails the IoU-0.6 bar.
	NoiseCoreFrac, NoiseTailProb float64
	// Vehicle and Pedestrian noise/miss models.
	VehicleNoise    NoiseParams
	PedestrianNoise NoiseParams
	VehicleMiss     MissParams
	PedestrianMiss  MissParams
	// DisableNoise turns off both noise processes (used by the
	// attacker's own inference copy and by unit tests).
	DisableNoise bool
}

// DefaultConfig returns the Fig. 5-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Threshold:        0.5,
		MinArea:          2,
		PedestrianAspect: 1.45,
		Background:       0.05,
		Foreground:       0.9,
		NoiseCoreFrac:    0.15,
		NoiseTailProb:    0.15,
		VehicleNoise:     VehicleNoise,
		PedestrianNoise:  PedestrianNoise,
		VehicleMiss:      VehicleMiss,
		PedestrianMiss:   PedestrianMiss,
	}
}

// Detector is the stateful detector surrogate. It is stateful only for
// the misdetection-run model, which needs to remember which component
// is currently inside a miss run (real detectors lose an object for
// runs of consecutive frames, not independently per frame). All
// per-frame storage (components, detections, track memory) is owned by
// the struct and reused, so a warm Detect call does not allocate; the
// returned slice is valid until the next Detect call.
type Detector struct {
	cfg Config
	rng *stats.RNG

	visited []int32 // CC labeling scratch, reused across frames
	queue   []int32
	gen     int32

	prev, next []detTrack  // miss-run memory, double-buffered
	comps      []component // per-frame component scratch
	out        []Detection // per-frame output scratch
}

// detTrack is the internal per-component memory for the miss-run model.
type detTrack struct {
	box      geom.Rect
	class    sim.Class
	missLeft int
	seen     bool
}

// New creates a detector. rng may be nil only when cfg.DisableNoise is
// set.
func New(cfg Config, rng *stats.RNG) *Detector {
	return &Detector{cfg: cfg, rng: rng}
}

// NewDefault creates a detector with DefaultConfig.
func NewDefault(rng *stats.RNG) *Detector { return New(DefaultConfig(), rng) }

// Reset clears the miss-run memory (start of a new episode).
func (d *Detector) Reset() { d.prev = d.prev[:0] }

// SetRNG replaces the detector's noise stream (episode-scratch reuse:
// each episode injects its own deterministic stream).
func (d *Detector) SetRNG(rng *stats.RNG) { d.rng = rng }

// Detect runs the detector on one camera frame and returns the
// reported detections. The returned slice is reused by the next Detect
// call.
func (d *Detector) Detect(img *sensor.Image) []Detection {
	comps := d.components(img)
	out := d.out[:0]
	for i := range d.prev {
		d.prev[i].seen = false
	}
	next := d.next[:0]

	for _, c := range comps {
		cls := d.classify(c.box)
		tr := d.associate(c.box)
		missLeft := 0
		if tr != nil {
			tr.seen = true
			missLeft = tr.missLeft
		}
		switch {
		case d.cfg.DisableNoise:
			// No miss model, no jitter.
		case missLeft > 0:
			missLeft--
			next = append(next, detTrack{box: c.box, class: cls, missLeft: missLeft})
			continue
		default:
			mp := d.missParams(cls)
			if d.rng.Bernoulli(mp.StartProb) {
				run := d.sampleRun(mp, c.box.H)
				// This frame counts as the first frame of the run.
				next = append(next, detTrack{box: c.box, class: cls, missLeft: run - 1})
				continue
			}
		}
		next = append(next, detTrack{box: c.box, class: cls})

		box := c.box
		bottom := d.refineBottom(img, c.box)
		centerU := d.refineCenterU(img, c.box)
		if !d.cfg.DisableNoise {
			np := d.noiseParams(cls)
			scale := d.noiseScale()
			dx := d.rng.Normal(np.MuX, np.SigmaX*scale) * box.W
			dy := d.rng.Normal(np.MuY, np.SigmaY*scale) * box.H
			box = box.Translate(geom.V(dx, dy))
			bottom += dy
			centerU += dx
		}
		score := geom.Clamp(float64(c.area)/40.0, 0.3, 1.0)
		out = append(out, Detection{
			Box: box, Raw: c.box, Bottom: bottom, CenterU: centerU,
			Class: cls, Area: c.area, Score: score,
		})
	}
	d.prev, d.next, d.out = next, d.prev[:0], out
	return out
}

// SampleMissRun draws one misdetection run length (frames) for a class
// at the reference small-box size; exported for characterization and
// tests.
func (d *Detector) SampleMissRun(cls sim.Class) int {
	return d.sampleRun(d.missParams(cls), 4)
}

// sampleRun draws a run length. The heavy tail (multi-second blackouts)
// only afflicts small boxes — distant objects — matching how real
// detectors fail: a large, near silhouette is never lost for seconds.
func (d *Detector) sampleRun(mp MissParams, boxH float64) int {
	lambda := mp.Lambda
	longProb := mp.LongProb * geom.Clamp((12-boxH)/8, 0, 1)
	if d.rng.Bernoulli(longProb) {
		lambda = mp.LongLambda
	}
	return 1 + int(d.rng.Exponential(lambda))
}

// noiseScale draws the core/tail mixture factor such that the overall
// variance equals the configured sigma^2:
// (1-p)*core^2 + p*tail^2 = 1.
func (d *Detector) noiseScale() float64 {
	p := d.cfg.NoiseTailProb
	core := d.cfg.NoiseCoreFrac
	if p <= 0 || p >= 1 {
		return 1
	}
	if d.rng.Bernoulli(p) {
		return math.Sqrt((1 - (1-p)*core*core) / p)
	}
	return core
}

func (d *Detector) missParams(cls sim.Class) MissParams {
	if cls == sim.ClassPedestrian {
		return d.cfg.PedestrianMiss
	}
	return d.cfg.VehicleMiss
}

func (d *Detector) noiseParams(cls sim.Class) NoiseParams {
	if cls == sim.ClassPedestrian {
		return d.cfg.PedestrianNoise
	}
	return d.cfg.VehicleNoise
}

func (d *Detector) classify(box geom.Rect) sim.Class {
	if box.W <= 0 {
		return sim.ClassVehicle
	}
	if box.H/box.W >= d.cfg.PedestrianAspect {
		return sim.ClassPedestrian
	}
	return sim.ClassVehicle
}

// associate finds the previous-frame component closest to box within a
// generous gate, for miss-run continuity.
func (d *Detector) associate(box geom.Rect) *detTrack {
	var best *detTrack
	bestDist := 0.0
	gate := 2.0*box.W + 4
	c := box.Center()
	for i := range d.prev {
		if d.prev[i].seen {
			continue
		}
		dist := d.prev[i].box.Center().Dist(c)
		if dist < gate && (best == nil || dist < bestDist) {
			best, bestDist = &d.prev[i], dist
		}
	}
	return best
}

// refineBottom recovers the sub-pixel bottom edge of a component from
// the anti-aliased partial-coverage intensity of the row just below its
// full-coverage extent.
func (d *Detector) refineBottom(img *sensor.Image, box geom.Rect) float64 {
	edge := box.Min.Y + box.H
	y := int(edge)
	if y >= img.H {
		return edge
	}
	x0, x1 := int(box.Min.X), int(box.Min.X+box.W)
	sum, n := 0.0, 0
	for x := x0; x < x1; x++ {
		sum += img.At(x, y)
		n++
	}
	if n == 0 {
		return edge
	}
	span := d.cfg.Foreground - d.cfg.Background
	if span <= 0 {
		return edge
	}
	frac := geom.Clamp((sum/float64(n)-d.cfg.Background)/span, 0, 1)
	return edge + frac
}

// refineCenterU recovers the sub-pixel horizontal center from the
// partial-coverage intensity of the columns just outside the component.
func (d *Detector) refineCenterU(img *sensor.Image, box geom.Rect) float64 {
	y0, y1 := int(box.Min.Y), int(box.Min.Y+box.H)
	span := d.cfg.Foreground - d.cfg.Background
	if span <= 0 {
		return box.Center().X
	}
	colFrac := func(x int) float64 {
		if x < 0 || x >= img.W {
			return 0
		}
		sum, n := 0.0, 0
		for y := y0; y < y1; y++ {
			sum += img.At(x, y)
			n++
		}
		if n == 0 {
			return 0
		}
		return geom.Clamp((sum/float64(n)-d.cfg.Background)/span, 0, 1)
	}
	left := box.Min.X - colFrac(int(box.Min.X)-1)
	right := box.Min.X + box.W + colFrac(int(box.Min.X+box.W))
	return (left + right) / 2
}

type component struct {
	box  geom.Rect
	area int
}

// components labels 4-connected foreground regions and returns their
// pixel bounding boxes.
func (d *Detector) components(img *sensor.Image) []component {
	n := img.W * img.H
	if len(d.visited) < n {
		d.visited = make([]int32, n)
		d.gen = 0
	}
	d.gen++
	gen := d.gen
	comps := d.comps[:0]
	th := d.cfg.Threshold

	// Scan only the window that can hold foreground: silhouettes cover
	// a tiny fraction of the raster, and the full-raster scan used to
	// dominate the whole frame loop's CPU time. The window walk is
	// row-major like the historical full scan, so components are
	// discovered — and reported — in the identical order.
	wx0, wy0, wx1, wy1 := img.ForegroundWindow(th)
	for wy := wy0; wy < wy1; wy++ {
		rowOff := wy * img.W
		for wx := wx0; wx < wx1; wx++ {
			start := rowOff + wx
			if d.visited[start] == gen || img.Pix[start] < th {
				continue
			}
			// BFS flood fill from start.
			minX, minY := start%img.W, start/img.W
			maxX, maxY := minX, minY
			area := 0
			d.queue = d.queue[:0]
			d.queue = append(d.queue, int32(start))
			d.visited[start] = gen
			for len(d.queue) > 0 {
				p := int(d.queue[len(d.queue)-1])
				d.queue = d.queue[:len(d.queue)-1]
				x, y := p%img.W, p/img.W
				area++
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
				if y < minY {
					minY = y
				}
				if y > maxY {
					maxY = y
				}
				for _, q := range [4]int{p - 1, p + 1, p - img.W, p + img.W} {
					if q < 0 || q >= n || d.visited[q] == gen {
						continue
					}
					// Horizontal neighbors must stay on the same row.
					if (q == p-1 || q == p+1) && q/img.W != y {
						continue
					}
					if img.Pix[q] >= th {
						d.visited[q] = gen
						d.queue = append(d.queue, int32(q))
					}
				}
			}
			if area >= d.cfg.MinArea {
				comps = append(comps, component{
					box:  geom.R(float64(minX), float64(minY), float64(maxX-minX+1), float64(maxY-minY+1)),
					area: area,
				})
			}
		}
	}
	d.comps = comps
	return comps
}
