package nn

import (
	"testing"

	"github.com/robotack/robotack/internal/stats"
)

// TestInferMatchesForward is the golden equivalence test for the
// pooled inference path: for random networks across layer shapes,
// Infer must produce bit-identical outputs to Forward(x, false).
func TestInferMatchesForward(t *testing.T) {
	shapes := [][]int{
		{1, 1},
		{3, 8, 1},
		{6, 100, 100, 50, 1}, // the paper's regressor
		{10, 7, 13, 4},
		{2, 64, 2},
	}
	rng := stats.NewRNG(42)
	for _, dims := range shapes {
		var n Network
		for i := 0; i+1 < len(dims); i++ {
			n.Layers = append(n.Layers, NewDense(dims[i], dims[i+1], rng))
			if i+2 < len(dims) {
				n.Layers = append(n.Layers, &ReLU{}, NewDropout(0.1, rng))
			}
		}
		s := n.NewInferScratch()
		for trial := 0; trial < 25; trial++ {
			x := make([]float64, dims[0])
			for i := range x {
				x[i] = rng.Normal(0, 2)
			}
			want := n.Forward(x, false)
			got := n.Infer(s, x)
			if len(got) != len(want) {
				t.Fatalf("shape %v: Infer returned %d outputs, Forward %d", dims, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v trial %d: Infer[%d] = %v, Forward = %v (must be bit-identical)",
						dims, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestInferDoesNotClobberInput verifies the caller's input vector
// survives an Infer call (the first layer writes into scratch, never
// into x).
func TestInferDoesNotClobberInput(t *testing.T) {
	rng := stats.NewRNG(7)
	n := NewRegressor(6, rng)
	s := n.NewInferScratch()
	x := []float64{1, -2, 3, -4, 5, -6}
	orig := append([]float64(nil), x...)
	n.Infer(s, x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("Infer mutated input[%d]: %v -> %v", i, orig[i], x[i])
		}
	}
}

// TestInferZeroAllocs enforces the inference path's allocation
// contract: a warm Infer call performs zero heap allocations. CI
// fails on any regression here.
func TestInferZeroAllocs(t *testing.T) {
	rng := stats.NewRNG(3)
	n := NewRegressor(6, rng)
	s := n.NewInferScratch()
	x := []float64{12, -1.5, 0.2, 0.4, -0.1, 2}
	n.Infer(s, x) // warm-up
	allocs := testing.AllocsPerRun(200, func() {
		n.Infer(s, x)
	})
	if allocs != 0 {
		t.Fatalf("warm Infer allocates %.1f times per call, want 0", allocs)
	}
}

// TestInferAfterClone verifies a cloned network's inference path
// agrees with the original's training-mode-off forward pass.
func TestInferAfterClone(t *testing.T) {
	rng := stats.NewRNG(99)
	n := NewRegressor(6, rng)
	clone := n.Clone()
	s := clone.NewInferScratch()
	x := []float64{30, -4, 0.5, 0.1, 0, 1.2}
	if got, want := clone.Infer(s, x)[0], n.Forward(x, false)[0]; got != want {
		t.Fatalf("clone Infer = %v, original Forward = %v", got, want)
	}
}

func BenchmarkInfer(b *testing.B) {
	rng := stats.NewRNG(5)
	n := NewRegressor(6, rng)
	s := n.NewInferScratch()
	x := []float64{12, -1.5, 0.2, 0.4, -0.1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Infer(s, x)
	}
}

func BenchmarkForward(b *testing.B) {
	rng := stats.NewRNG(5)
	n := NewRegressor(6, rng)
	x := []float64{12, -1.5, 0.2, 0.4, -0.1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x, false)
	}
}
