// Package nn is a small feed-forward neural-network library implementing
// exactly what the paper's safety hijacker needs (§IV-B): fully
// connected layers, ReLU activations, dropout with rate 0.1, an MSE
// loss (Eq. 3), and the Adam optimizer, trained with a 60/40
// train/validation split.
package nn

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"github.com/robotack/robotack/internal/stats"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output. train enables stochastic
	// behaviour (dropout).
	Forward(x []float64, train bool) []float64
	// Backward consumes dL/dOutput and returns dL/dInput, accumulating
	// parameter gradients internally.
	Backward(grad []float64) []float64
	// Params returns parameter and gradient slices (paired); empty for
	// parameterless layers.
	Params() (params, grads [][]float64)
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	W       []float64 // row-major Out x In
	B       []float64

	gw, gb []float64
	x      []float64
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, rng *stats.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.Normal(0, scale)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64, _ bool) []float64 {
	d.x = append(d.x[:0], x...)
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	in := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.x[i]
			in[i] += g * row[i]
		}
	}
	return in
}

// Params implements Layer.
func (d *Dense) Params() (params, grads [][]float64) {
	return [][]float64{d.W, d.B}, [][]float64{d.gw, d.gb}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// Forward implements Layer.
func (r *ReLU) Forward(x []float64, _ bool) []float64 {
	if cap(r.mask) < len(x) {
		r.mask = make([]bool, len(x))
	}
	r.mask = r.mask[:len(x)]
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		if r.mask[i] {
			out[i] = g
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() (params, grads [][]float64) { return nil, nil }

// Dropout zeroes activations with probability Rate during training
// (inverted dropout: survivors are scaled by 1/(1-Rate)).
type Dropout struct {
	Rate float64
	rng  *stats.RNG
	keep []bool
}

var _ Layer = (*Dropout)(nil)

// NewDropout creates a dropout layer.
func NewDropout(rate float64, rng *stats.RNG) *Dropout {
	return &Dropout{Rate: rate, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x []float64, train bool) []float64 {
	out := make([]float64, len(x))
	if !train || d.Rate <= 0 {
		copy(out, x)
		d.keep = nil
		return out
	}
	if cap(d.keep) < len(x) {
		d.keep = make([]bool, len(x))
	}
	d.keep = d.keep[:len(x)]
	scale := 1 / (1 - d.Rate)
	for i, v := range x {
		if d.rng.Bernoulli(d.Rate) {
			d.keep[i] = false
		} else {
			d.keep[i] = true
			out[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	if d.keep == nil {
		copy(out, grad)
		return out
	}
	scale := 1 / (1 - d.Rate)
	for i, g := range grad {
		if d.keep[i] {
			out[i] = g * scale
		}
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() (params, grads [][]float64) { return nil, nil }

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// NewRegressor builds the paper's safety-hijacker architecture: three
// hidden layers (100, 100, 50) with ReLU and dropout 0.1, and a linear
// scalar output.
func NewRegressor(inputDim int, rng *stats.RNG) *Network {
	return &Network{Layers: []Layer{
		NewDense(inputDim, 100, rng),
		&ReLU{},
		NewDropout(0.1, rng),
		NewDense(100, 100, rng),
		&ReLU{},
		NewDropout(0.1, rng),
		NewDense(100, 50, rng),
		&ReLU{},
		NewDropout(0.1, rng),
		NewDense(50, 1, rng),
	}}
}

// Clone returns an independent inference copy of the network: dense
// weights and biases are deep-copied and every layer gets fresh
// forward-pass scratch state. Layers keep per-call activation caches
// (Dense.x, ReLU.mask), so a single Network must not be shared across
// goroutines — parallel episode runners clone the trained oracle nets
// instead. Clones carry no dropout RNG; they are for inference
// (train=false) only.
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, 0, len(n.Layers))}
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Dense:
			d := &Dense{
				In: l.In, Out: l.Out,
				W:  append([]float64(nil), l.W...),
				B:  append([]float64(nil), l.B...),
				gw: make([]float64, len(l.gw)),
				gb: make([]float64, len(l.gb)),
			}
			out.Layers = append(out.Layers, d)
		case *ReLU:
			out.Layers = append(out.Layers, &ReLU{})
		case *Dropout:
			out.Layers = append(out.Layers, &Dropout{Rate: l.Rate})
		default:
			panic(fmt.Sprintf("nn: Clone: unsupported layer %T", l))
		}
	}
	return out
}

// Forward runs the network. train enables dropout.
func (n *Network) Forward(x []float64, train bool) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// InferenceLayer is a layer with an allocation-free inference path.
// ForwardInto computes the layer's inference output (train=false
// semantics: dropout is the identity) into dst and returns dst
// re-sliced to the output length. dst must not alias x, and its
// capacity must cover the layer's output width. The arithmetic is the
// same sequence of float64 operations as Forward(x, false), so the
// two paths produce bit-identical outputs.
type InferenceLayer interface {
	ForwardInto(dst, x []float64) []float64
}

var (
	_ InferenceLayer = (*Dense)(nil)
	_ InferenceLayer = (*ReLU)(nil)
	_ InferenceLayer = (*Dropout)(nil)
)

// ForwardInto implements InferenceLayer.
func (d *Dense) ForwardInto(dst, x []float64) []float64 {
	out := dst[:d.Out]
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

// ForwardInto implements InferenceLayer.
func (r *ReLU) ForwardInto(dst, x []float64) []float64 {
	out := dst[:len(x)]
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return out
}

// ForwardInto implements InferenceLayer. Inference-mode dropout is the
// identity.
func (d *Dropout) ForwardInto(dst, x []float64) []float64 {
	out := dst[:len(x)]
	copy(out, x)
	return out
}

// InferScratch holds the ping-pong activation buffers for Infer, plus
// the cached structural facts of the network it was sized for (widest
// activation, whether every layer has an inference path) so the
// per-prediction call does no type-assertion rescans. One scratch
// serves one goroutine; concurrent episodes each own one.
type InferScratch struct {
	a, b []float64

	net      *Network // the network the cache below was computed for
	width    int
	allInfer bool
}

// sizeFor (re)computes the cached structure for n. The per-call fast
// path is a single pointer compare; the full rescan runs only at
// construction or when the scratch is rebound to a different network —
// sizing is hoisted out of the prediction loop, so a warm scratch can
// never silently grow (or, worse, stay undersized for a same-depth but
// wider network, which the historical layer-count check allowed)
// mid-episode.
func (s *InferScratch) sizeFor(n *Network) {
	if s.net == n {
		return
	}
	s.net = n
	s.width = n.maxWidth()
	s.allInfer = true
	for _, l := range n.Layers {
		if _, ok := l.(InferenceLayer); !ok {
			s.allInfer = false
			break
		}
	}
	if len(s.a) < s.width {
		s.a = make([]float64, s.width)
		s.b = make([]float64, s.width)
	}
}

// maxWidth returns the widest activation the network produces.
func (n *Network) maxWidth() int {
	w := 1
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			if d.In > w {
				w = d.In
			}
			if d.Out > w {
				w = d.Out
			}
		}
	}
	return w
}

// NewInferScratch allocates scratch buffers sized for this network's
// widest layer. The scratch may be reused across calls; Infer rebinds
// (and if needed re-sizes) it if handed a different network.
func (n *Network) NewInferScratch() *InferScratch {
	s := &InferScratch{}
	s.sizeFor(n)
	return s
}

// Infer runs the network in inference mode writing every activation
// into s's ping-pong buffers: zero heap allocations after the scratch
// is warm. The returned slice aliases the scratch and is valid until
// the next Infer call. Outputs are bit-identical to Forward(x, false).
// A stack containing a layer without an inference path falls back to
// Forward (allocating, still correct).
func (n *Network) Infer(s *InferScratch, x []float64) []float64 {
	if s == nil {
		return n.Forward(x, false)
	}
	s.sizeFor(n)
	if !s.allInfer {
		return n.Forward(x, false)
	}
	cur := x
	useA := true
	for _, l := range n.Layers {
		dst := s.a
		if !useA {
			dst = s.b
		}
		cur = l.(InferenceLayer).ForwardInto(dst, cur)
		useA = !useA
	}
	return cur
}

// Predict runs the network in inference mode and returns the scalar
// output.
func (n *Network) Predict(x []float64) float64 {
	return n.Forward(x, false)[0]
}

// Backward propagates an output gradient through the stack.
func (n *Network) Backward(grad []float64) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// ZeroGrads clears accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		_, grads := l.Params()
		for _, g := range grads {
			for i := range g {
				g[i] = 0
			}
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) over a network's parameters.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	m, v [][]float64
	t    int
}

// NewAdam creates an Adam optimizer with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update using the gradients accumulated in n, scaled
// by 1/batchSize.
func (a *Adam) Step(n *Network, batchSize int) {
	var params, grads [][]float64
	for _, l := range n.Layers {
		p, g := l.Params()
		params = append(params, p...)
		grads = append(grads, g...)
	}
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p))
			a.v[i] = make([]float64, len(p))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	inv := 1 / float64(batchSize)
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p {
			gj := g[j] * inv
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			p[j] -= a.LR * (m[j] / c1) / (math.Sqrt(v[j]/c2) + a.Eps)
		}
	}
}

// Dataset is a supervised regression dataset.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends a sample.
func (d *Dataset) Add(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Split partitions the dataset into train/validation with the given
// train fraction (the paper uses 0.6), shuffled by rng.
func (d *Dataset) Split(trainFrac float64, rng *stats.RNG) (train, val Dataset) {
	idx := rng.Perm(d.Len())
	nTrain := int(trainFrac * float64(d.Len()))
	for i, j := range idx {
		if i < nTrain {
			train.Add(d.X[j], d.Y[j])
		} else {
			val.Add(d.X[j], d.Y[j])
		}
	}
	return train, val
}

// TrainConfig parametrizes Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
}

// DefaultTrainConfig returns the training recipe used for the safety
// hijacker.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 60, BatchSize: 32, LR: 1e-3}
}

// Result reports training metrics.
type Result struct {
	TrainMSE float64
	ValMSE   float64
	ValMAE   float64
}

// Train fits the network on train with MSE loss (Eq. 3 of the paper)
// and evaluates on val.
func Train(n *Network, train, val Dataset, cfg TrainConfig, rng *stats.RNG) (Result, error) {
	if train.Len() == 0 {
		return Result{}, errors.New("nn: empty training set")
	}
	opt := NewAdam(cfg.LR)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(train.Len())
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			n.ZeroGrads()
			for _, j := range order[start:end] {
				out := n.Forward(train.X[j], true)
				// d(MSE)/d(out) = 2*(out - y)
				n.Backward([]float64{2 * (out[0] - train.Y[j])})
			}
			opt.Step(n, end-start)
		}
	}
	res := Result{TrainMSE: mse(n, train)}
	if val.Len() > 0 {
		res.ValMSE = mse(n, val)
		res.ValMAE = mae(n, val)
	}
	return res, nil
}

func mse(n *Network, d Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	s := 0.0
	for i := range d.X {
		e := n.Predict(d.X[i]) - d.Y[i]
		s += e * e
	}
	return s / float64(d.Len())
}

func mae(n *Network, d Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	s := 0.0
	for i := range d.X {
		s += math.Abs(n.Predict(d.X[i]) - d.Y[i])
	}
	return s / float64(d.Len())
}

// snapshot is the serialized form of a network's dense layers.
type snapshot struct {
	Dims    []int       `json:"dims"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
	Dropout float64     `json:"dropout"`
}

// Save writes the network weights to a JSON file.
func (n *Network) Save(path string) error {
	snap := snapshot{}
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			if len(snap.Dims) == 0 {
				snap.Dims = append(snap.Dims, d.In)
			}
			snap.Dims = append(snap.Dims, d.Out)
			snap.Weights = append(snap.Weights, d.W)
			snap.Biases = append(snap.Biases, d.B)
		}
		if dr, ok := l.(*Dropout); ok {
			snap.Dropout = dr.Rate
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("nn save: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a network saved by Save. The reconstructed network uses
// ReLU+dropout between dense layers, matching NewRegressor's topology.
func Load(path string, rng *stats.RNG) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nn load: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("nn load: %w", err)
	}
	if len(snap.Dims) < 2 || len(snap.Weights) != len(snap.Dims)-1 {
		return nil, errors.New("nn load: malformed snapshot")
	}
	n := &Network{}
	for i := 0; i < len(snap.Weights); i++ {
		d := NewDense(snap.Dims[i], snap.Dims[i+1], rng)
		if len(snap.Weights[i]) != len(d.W) || len(snap.Biases[i]) != len(d.B) {
			return nil, errors.New("nn load: dimension mismatch")
		}
		copy(d.W, snap.Weights[i])
		copy(d.B, snap.Biases[i])
		n.Layers = append(n.Layers, d)
		if i < len(snap.Weights)-1 {
			n.Layers = append(n.Layers, &ReLU{}, NewDropout(snap.Dropout, rng))
		}
	}
	return n, nil
}
