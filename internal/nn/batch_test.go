package nn

import (
	"fmt"
	"testing"

	"github.com/robotack/robotack/internal/stats"
)

func buildStack(dims []int, rng *stats.RNG) *Network {
	var n Network
	for i := 0; i+1 < len(dims); i++ {
		n.Layers = append(n.Layers, NewDense(dims[i], dims[i+1], rng))
		if i+2 < len(dims) {
			n.Layers = append(n.Layers, &ReLU{}, NewDropout(0.1, rng))
		}
	}
	return &n
}

// TestInferBatchMatchesInfer is the golden equivalence test for the
// batched inference path: across layer shapes and batch sizes, row r
// of InferBatch must be bit-identical to Infer on row r alone. This is
// the property that lets the cross-episode batcher coalesce oracle
// queries without perturbing any episode's float sequence.
func TestInferBatchMatchesInfer(t *testing.T) {
	shapes := [][]int{
		{1, 1},
		{3, 8, 1},
		{6, 100, 100, 50, 1}, // the paper's regressor
		{10, 7, 13, 4},
		{2, 64, 2},
	}
	rng := stats.NewRNG(42)
	for _, dims := range shapes {
		n := buildStack(dims, rng)
		in := dims[0]
		outW := dims[len(dims)-1]
		ref := n.NewInferScratch()
		for _, rows := range []int{1, 3, 8} {
			bs := n.NewBatchScratch(rows)
			x := make([]float64, rows*in)
			for i := range x {
				x[i] = rng.Normal(0, 2)
			}
			got := n.InferBatch(bs, x, rows)
			if len(got) != rows*outW {
				t.Fatalf("shape %v rows=%d: InferBatch returned %d values, want %d", dims, rows, len(got), rows*outW)
			}
			for r := 0; r < rows; r++ {
				want := n.Infer(ref, x[r*in:(r+1)*in])
				for o := range want {
					if got[r*outW+o] != want[o] {
						t.Fatalf("shape %v rows=%d row=%d out=%d: InferBatch %v, Infer %v (must be bit-identical)",
							dims, rows, r, o, got[r*outW+o], want[o])
					}
				}
			}
		}
	}
}

// TestInferBatchGrowsRows verifies a scratch sized for a small batch
// transparently re-sizes when handed more rows (lane backfill can
// briefly raise the flush size past the initial lane count).
func TestInferBatchGrowsRows(t *testing.T) {
	rng := stats.NewRNG(3)
	n := NewRegressor(6, rng)
	bs := n.NewBatchScratch(2)
	ref := n.NewInferScratch()
	rows := 9
	x := make([]float64, rows*6)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	got := n.InferBatch(bs, x, rows)
	for r := 0; r < rows; r++ {
		want := n.Infer(ref, x[r*6:(r+1)*6])
		if got[r] != want[0] {
			t.Fatalf("row %d after grow: got %v want %v", r, got[r], want[0])
		}
	}
}

// TestInferBatchZeroAllocs: like Infer, a warm InferBatch call must
// not allocate.
func TestInferBatchZeroAllocs(t *testing.T) {
	rng := stats.NewRNG(9)
	n := NewRegressor(6, rng)
	bs := n.NewBatchScratch(8)
	x := make([]float64, 8*6)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	n.InferBatch(bs, x, 8)
	allocs := testing.AllocsPerRun(100, func() {
		n.InferBatch(bs, x, 8)
	})
	if allocs != 0 {
		t.Fatalf("warm InferBatch allocates %.1f times per call, want 0", allocs)
	}
}

// TestInferScratchRebind is the regression test for the historical
// sizeFor bug: the scratch cached sizing by layer COUNT, so handing a
// warm scratch a same-depth but wider network kept the undersized
// buffers and panicked on a slice bound. Sizing is now keyed to the
// network's identity and recomputed on rebind.
func TestInferScratchRebind(t *testing.T) {
	rng := stats.NewRNG(11)
	narrow := buildStack([]int{4, 8, 1}, rng)
	wide := buildStack([]int{4, 64, 1}, rng) // same layer count, wider
	s := narrow.NewInferScratch()
	x := []float64{0.5, -1, 2, 0.25}
	narrow.Infer(s, x)

	want := wide.Forward(x, false)
	got := wide.Infer(s, x) // must rebind + regrow, not panic
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rebound scratch output %d: got %v want %v", i, got[i], want[i])
		}
	}
	// And rebinding back must keep working with the grown buffers.
	wantN := narrow.Forward(x, false)
	gotN := narrow.Infer(s, x)
	if gotN[0] != wantN[0] {
		t.Fatalf("re-rebound scratch: got %v want %v", gotN[0], wantN[0])
	}
}

// TestInferScratchNoMidEpisodeResize: a warm, bound scratch must not
// re-size (or re-scan the layer stack) on repeated calls with the same
// network — the fast path is one pointer compare.
func TestInferScratchNoMidEpisodeResize(t *testing.T) {
	rng := stats.NewRNG(13)
	n := NewRegressor(6, rng)
	s := n.NewInferScratch()
	x := make([]float64, 6)
	n.Infer(s, x)
	a0 := &s.a[0]
	for i := 0; i < 50; i++ {
		n.Infer(s, x)
	}
	if &s.a[0] != a0 {
		t.Fatal("warm scratch re-sized mid-stream")
	}
}

// BenchmarkInferBatch measures the batched forward pass of the paper's
// regressor across batch sizes; B=1 is the matrix-vector baseline the
// speedup is measured against.
func BenchmarkInferBatch(b *testing.B) {
	rng := stats.NewRNG(1)
	n := NewRegressor(6, rng)
	for _, rows := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("B=%d", rows), func(b *testing.B) {
			bs := n.NewBatchScratch(rows)
			x := make([]float64, rows*6)
			for i := range x {
				x[i] = rng.Normal(0, 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.InferBatch(bs, x, rows)
			}
			// rows inferences per op: report per-row cost for comparison
			// against BenchmarkInfer.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
	}
}
