package nn

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/robotack/robotack/internal/stats"
)

func TestDenseForward(t *testing.T) {
	d := NewDense(2, 2, stats.NewRNG(1))
	copy(d.W, []float64{1, 2, 3, 4})
	copy(d.B, []float64{0.5, -0.5})
	out := d.Forward([]float64{1, 1}, false)
	if math.Abs(out[0]-3.5) > 1e-12 || math.Abs(out[1]-6.5) > 1e-12 {
		t.Errorf("out = %v", out)
	}
}

// Numerical gradient check on a tiny network: the analytical gradients
// from Backward must match finite differences.
func TestGradientCheck(t *testing.T) {
	rng := stats.NewRNG(3)
	n := &Network{Layers: []Layer{
		NewDense(3, 4, rng),
		&ReLU{},
		NewDense(4, 1, rng),
	}}
	x := []float64{0.3, -0.7, 1.2}
	y := 0.4

	loss := func() float64 {
		e := n.Forward(x, false)[0] - y
		return e * e
	}

	n.ZeroGrads()
	out := n.Forward(x, false)
	n.Backward([]float64{2 * (out[0] - y)})

	const eps = 1e-6
	for li, l := range n.Layers {
		params, grads := l.Params()
		for pi, p := range params {
			for j := range p {
				orig := p[j]
				p[j] = orig + eps
				lp := loss()
				p[j] = orig - eps
				lm := loss()
				p[j] = orig
				numeric := (lp - lm) / (2 * eps)
				if math.Abs(numeric-grads[pi][j]) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("layer %d param %d[%d]: analytic %v vs numeric %v",
						li, pi, j, grads[pi][j], numeric)
				}
			}
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	out := r.Forward([]float64{-1, 0, 2}, false)
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Errorf("out = %v", out)
	}
	grad := r.Backward([]float64{1, 1, 1})
	if grad[0] != 0 || grad[1] != 0 || grad[2] != 1 {
		t.Errorf("grad = %v", grad)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := stats.NewRNG(5)
	d := NewDropout(0.5, rng)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 1
	}
	// Eval mode: identity.
	out := d.Forward(x, false)
	for _, v := range out {
		if v != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// Train mode: ~half dropped, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected activation %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d/1000, want ~500", zeros)
	}
	if zeros+twos != 1000 {
		t.Error("activation count mismatch")
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	rng := stats.NewRNG(11)
	var ds Dataset
	for i := 0; i < 600; i++ {
		x := []float64{rng.Uniform(-1, 1), rng.Uniform(-1, 1)}
		ds.Add(x, 3*x[0]-2*x[1]+0.5)
	}
	train, val := ds.Split(0.6, rng)
	n := &Network{Layers: []Layer{
		NewDense(2, 16, rng), &ReLU{}, NewDense(16, 1, rng),
	}}
	res, err := Train(n, train, val, TrainConfig{Epochs: 80, BatchSize: 16, LR: 5e-3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValMAE > 0.1 {
		t.Errorf("validation MAE = %v, want < 0.1", res.ValMAE)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	rng := stats.NewRNG(13)
	var ds Dataset
	for i := 0; i < 1200; i++ {
		x := []float64{rng.Uniform(-2, 2)}
		ds.Add(x, math.Sin(2*x[0]))
	}
	train, val := ds.Split(0.6, rng)
	n := &Network{Layers: []Layer{
		NewDense(1, 32, rng), &ReLU{}, NewDense(32, 32, rng), &ReLU{}, NewDense(32, 1, rng),
	}}
	res, err := Train(n, train, val, TrainConfig{Epochs: 120, BatchSize: 32, LR: 5e-3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValMAE > 0.12 {
		t.Errorf("validation MAE = %v, want < 0.12 (sin fit)", res.ValMAE)
	}
}

func TestTrainEmpty(t *testing.T) {
	n := NewRegressor(6, stats.NewRNG(1))
	if _, err := Train(n, Dataset{}, Dataset{}, DefaultTrainConfig(), stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestSplitFractions(t *testing.T) {
	rng := stats.NewRNG(17)
	var ds Dataset
	for i := 0; i < 100; i++ {
		ds.Add([]float64{float64(i)}, float64(i))
	}
	train, val := ds.Split(0.6, rng)
	if train.Len() != 60 || val.Len() != 40 {
		t.Errorf("split = %d/%d, want 60/40", train.Len(), val.Len())
	}
	// Every sample appears exactly once.
	seen := map[float64]bool{}
	for _, y := range append(append([]float64{}, train.Y...), val.Y...) {
		if seen[y] {
			t.Fatal("duplicate sample after split")
		}
		seen[y] = true
	}
}

func TestRegressorArchitecture(t *testing.T) {
	n := NewRegressor(6, stats.NewRNG(1))
	dims := []int{}
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			dims = append(dims, d.Out)
		}
	}
	want := []int{100, 100, 50, 1}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dense dims = %v, want %v (paper's 100-100-50 + scalar head)", dims, want)
		}
	}
	out := n.Forward(make([]float64, 6), false)
	if len(out) != 1 {
		t.Errorf("output dim = %d", len(out))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := stats.NewRNG(23)
	n := NewRegressor(4, rng)
	x := []float64{0.1, -0.2, 0.3, 0.7}
	want := n.Predict(x)

	path := filepath.Join(t.TempDir(), "model.json")
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Predict(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("loaded prediction %v, want %v", got, want)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json"), stats.NewRNG(1)); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func BenchmarkPredict(b *testing.B) {
	n := NewRegressor(6, stats.NewRNG(1))
	x := []float64{10, -5, 0.5, 0, 0, 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.Predict(x)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := stats.NewRNG(2)
	var ds Dataset
	for i := 0; i < 256; i++ {
		ds.Add([]float64{rng.Uniform(-1, 1), rng.Uniform(-1, 1)}, rng.Uniform(-1, 1))
	}
	n := NewRegressor(2, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(n, ds, Dataset{}, TrainConfig{Epochs: 1, BatchSize: 32, LR: 1e-3}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
