package nn

import (
	"github.com/robotack/robotack/internal/mat"
)

// Batched inference: the InferScratch ping-pong generalized from one
// input vector to a row-major batch of B of them. One InferBatch call
// replaces B Infer calls, turning B matrix-vector products per dense
// layer into one blocked matrix-matrix product (mat.MulBatchInto) that
// reuses each weight row across the batch. Row r of the result is
// bit-identical to Infer on row r of the input: the batched dense
// kernel accumulates each output in exactly the unbatched order, and
// the element-wise layers apply the same per-element operations.

// BatchInferenceLayer is a layer with an allocation-free batched
// inference path. ForwardBatchInto reads rows input vectors of the
// given width from x (row-major, rows*width values), writes the rows
// output vectors into dst (row-major) and returns the output width.
// dst must not alias x and its capacity must cover rows*outWidth.
// Inference semantics match ForwardInto (dropout is the identity).
type BatchInferenceLayer interface {
	ForwardBatchInto(dst, x []float64, rows, width int) (outWidth int)
}

var (
	_ BatchInferenceLayer = (*Dense)(nil)
	_ BatchInferenceLayer = (*ReLU)(nil)
	_ BatchInferenceLayer = (*Dropout)(nil)
)

// ForwardBatchInto implements BatchInferenceLayer. width must equal
// the layer's input dimension.
func (d *Dense) ForwardBatchInto(dst, x []float64, rows, width int) int {
	if width != d.In {
		panic("nn: Dense.ForwardBatchInto width mismatch")
	}
	mat.MulBatchInto(dst, x, d.W, d.B, rows, d.In, d.Out)
	return d.Out
}

// ForwardBatchInto implements BatchInferenceLayer.
func (r *ReLU) ForwardBatchInto(dst, x []float64, rows, width int) int {
	n := rows * width
	out := dst[:n]
	for i, v := range x[:n] {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return width
}

// ForwardBatchInto implements BatchInferenceLayer. Inference-mode
// dropout is the identity.
func (d *Dropout) ForwardBatchInto(dst, x []float64, rows, width int) int {
	n := rows * width
	copy(dst[:n], x[:n])
	return width
}

// BatchScratch holds the ping-pong activation planes for InferBatch,
// sized at construction for a specific network and a maximum batch
// size. Like InferScratch it serves one goroutine at a time; the
// cross-episode inference batcher owns one per attack vector.
type BatchScratch struct {
	a, b []float64

	net      *Network // the network the cache below was computed for
	rows     int      // batch capacity
	width    int      // widest activation, per row
	inDim    int
	allBatch bool
}

// sizeFor (re)computes the cached structure. The fast path is one
// pointer compare; a full recompute happens only when the scratch is
// handed a different network or a larger batch — at construction and
// Reset in practice, never silently mid-episode.
func (s *BatchScratch) sizeFor(n *Network, rows int) {
	if s.net == n && rows <= s.rows {
		return
	}
	if rows < s.rows {
		rows = s.rows
	}
	s.net = n
	s.rows = rows
	s.width = n.maxWidth()
	s.inDim = n.inputDim()
	s.allBatch = true
	for _, l := range n.Layers {
		if _, ok := l.(BatchInferenceLayer); !ok {
			s.allBatch = false
			break
		}
	}
	if need := s.rows * s.width; len(s.a) < need {
		s.a = make([]float64, need)
		s.b = make([]float64, need)
	}
}

// NewBatchScratch allocates batched-inference scratch sized for this
// network's widest layer and up to maxRows input rows per call.
// InferBatch re-sizes it if handed a different network or more rows.
func (n *Network) NewBatchScratch(maxRows int) *BatchScratch {
	if maxRows < 1 {
		maxRows = 1
	}
	s := &BatchScratch{}
	s.sizeFor(n, maxRows)
	return s
}

// inputDim returns the first dense layer's input width (the network's
// input dimensionality), or zero for a dense-free stack.
func (n *Network) inputDim() int {
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			return d.In
		}
	}
	return 0
}

// InferBatch runs the network in inference mode over rows input
// vectors at once: x holds the row-major rows*inputDim batch, and the
// returned slice (rows*outWidth values, row-major) aliases the scratch
// and is valid until the next InferBatch call. Row r of the output is
// bit-identical to Infer(s, x[r*inputDim:(r+1)*inputDim]) — the
// batched kernels preserve the unbatched accumulation order — so
// callers may batch opportunistically without changing results. A
// stack containing a layer without a batched path falls back to
// row-wise Forward (allocating, still correct).
func (n *Network) InferBatch(s *BatchScratch, x []float64, rows int) []float64 {
	if rows <= 0 {
		return nil
	}
	if s == nil {
		s = n.NewBatchScratch(rows)
	}
	s.sizeFor(n, rows)
	if !s.allBatch {
		return n.forwardRows(s, x, rows)
	}
	cur := x
	width := s.inDim
	useA := true
	for _, l := range n.Layers {
		dst := s.a
		if !useA {
			dst = s.b
		}
		width = l.(BatchInferenceLayer).ForwardBatchInto(dst, cur, rows, width)
		cur = dst[:rows*width]
		useA = !useA
	}
	return cur
}

// forwardRows is InferBatch's fallback for stacks with a layer lacking
// ForwardBatchInto: each row runs through the allocating Forward path.
func (n *Network) forwardRows(s *BatchScratch, x []float64, rows int) []float64 {
	in := s.inDim
	var out []float64
	width := 0
	for r := 0; r < rows; r++ {
		y := n.Forward(x[r*in:(r+1)*in], false)
		if r == 0 {
			width = len(y)
			if cap(s.a) < rows*width {
				s.a = make([]float64, rows*width)
			}
			out = s.a[:rows*width]
		}
		copy(out[r*width:(r+1)*width], y)
	}
	return out
}
