// Package sim is the driving-scenario simulator that stands in for the
// LGSVL/Unity environment the paper evaluates on (see DESIGN.md §2 for
// the substitution argument). It models a straight multi-lane road in a
// metric 2-D frame (x longitudinal, y lateral), kinematic actors
// (vehicles and pedestrians) driven by pluggable behaviors, and the Ego
// vehicle (EV) whose acceleration is commanded by the ADS under test.
//
// The simulation advances in fixed steps of 1/15 s — one step per camera
// frame, matching the paper's 15 Hz camera. Like LGSVL (paper §II-C),
// the simulator halts when the EV comes within 4 m of another actor;
// the experiment harness classifies such runs as accidents.
package sim

import (
	"fmt"

	"github.com/robotack/robotack/internal/geom"
)

// CameraHz is the sensor frame rate used throughout the reproduction.
const CameraHz = 15.0

// DT is the duration of one simulation step in seconds.
const DT = 1.0 / CameraHz

// HaltGap is the minimum EV-to-obstacle gap (meters) below which the
// simulator halts, mirroring the LGSVL limitation that motivates the
// paper's delta >= 4 m safe-state definition.
const HaltGap = 4.0

// Kph converts km/h to m/s.
func Kph(v float64) float64 { return v / 3.6 }

// Class identifies the kind of road user.
type Class int

// Actor classes. Starting at 1 so the zero value is invalid.
const (
	ClassVehicle Class = iota + 1
	ClassPedestrian
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassVehicle:
		return "vehicle"
	case ClassPedestrian:
		return "pedestrian"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ActorID uniquely identifies an actor within a world.
type ActorID int

// Size is an actor's physical extent in meters. Length is along x,
// Width along y.
type Size struct {
	Length float64 `json:"length"`
	Width  float64 `json:"width"`
	Height float64 `json:"height"`
}

// Standard actor footprints.
var (
	SizeCar        = Size{Length: 4.6, Width: 1.9, Height: 1.5}
	SizeSUV        = Size{Length: 5.0, Width: 2.0, Height: 1.8}
	SizeBus        = Size{Length: 10.5, Width: 2.5, Height: 3.2}
	SizePedestrian = Size{Length: 0.5, Width: 0.6, Height: 1.75}
)

// Actor is a non-EV road user.
type Actor struct {
	ID       ActorID
	Class    Class
	Pos      geom.Vec2 // center of footprint
	Vel      geom.Vec2
	Size     Size
	Behavior Behavior
}

// Footprint returns the actor's ground rectangle.
func (a *Actor) Footprint() geom.Rect {
	return geom.RectFromCenter(a.Pos, a.Size.Length, a.Size.Width)
}

// Behavior drives one actor each step. Implementations mutate only the
// actor they are given.
type Behavior interface {
	Step(a *Actor, w *World, dt float64)
}

// Road describes the straight test road: a set of parallel lanes at
// fixed lateral offsets. Lane 0 is the EV lane centered at y = 0.
type Road struct {
	LaneWidth float64
	// Offsets holds the lane-center lateral offsets: EV lane, opposite
	// lane (negative y), parking lane (positive y), ...
	Offsets []float64
	// SpeedLimit in m/s (Borregas Ave: 50 kph).
	SpeedLimit float64
}

// DefaultRoad models the paper's Borregas Avenue setup: EV lane,
// one opposite lane and a parking lane, 50 kph limit.
func DefaultRoad() Road {
	return Road{
		LaneWidth:  3.5,
		Offsets:    []float64{0, -3.5, 3.5},
		SpeedLimit: Kph(50),
	}
}

// EVLaneCenter returns the lateral center of the EV lane.
func (r Road) EVLaneCenter() float64 { return r.Offsets[0] }

// InEVCorridor reports whether an object with the given lateral center
// and width overlaps the corridor swept by an EV of width evWidth
// driving down the EV lane.
func (r Road) InEVCorridor(y, width, evWidth float64) bool {
	half := (evWidth + width) / 2
	return y-r.EVLaneCenter() < half && r.EVLaneCenter()-y < half
}

// EV is the Ego vehicle. Its longitudinal dynamics integrate the
// acceleration command produced by the ADS; lateral position is held on
// the lane center (all five paper scenarios are lane-keeping).
type EV struct {
	Pos   geom.Vec2
	Speed float64 // longitudinal, m/s, >= 0
	Accel float64 // last applied acceleration, m/s^2
	Size  Size

	// Actuation limits.
	MaxAccel float64
	MaxBrake float64 // positive magnitude
}

// DefaultEV returns an EV with mid-size-car geometry and typical
// actuation limits.
func DefaultEV() EV {
	return EV{
		Size:     SizeCar,
		MaxAccel: 3.0,
		MaxBrake: 8.0,
	}
}

// Front returns the x coordinate of the EV's front bumper.
func (e *EV) Front() float64 { return e.Pos.X + e.Size.Length/2 }

// World is the complete simulation state.
type World struct {
	Road   Road
	EV     EV
	Actors []*Actor

	Frame  int
	Halted bool
	// HaltActor is the actor that triggered the halt, if any.
	HaltActor ActorID

	nextID ActorID
}

// NewWorld creates an empty world on the given road with the given EV.
func NewWorld(road Road, ev EV) *World {
	return &World{Road: road, EV: ev, nextID: 1}
}

// Reset rewinds the world to the empty state NewWorld(road, ev) would
// produce, retaining the actor slice's backing array so pooled episode
// state (scenegen.Arena) can rebuild worlds without allocating. Actor
// pointers previously held by the world are the arena's to recycle.
func (w *World) Reset(road Road, ev EV) {
	w.Road = road
	w.EV = ev
	w.Actors = w.Actors[:0]
	w.Frame = 0
	w.Halted = false
	w.HaltActor = 0
	w.nextID = 1
}

// AddActor inserts an actor and assigns it a unique ID, returning the ID.
func (w *World) AddActor(a *Actor) ActorID {
	a.ID = w.nextID
	w.nextID++
	w.Actors = append(w.Actors, a)
	return a.ID
}

// Actor returns the actor with the given ID, or nil.
func (w *World) Actor(id ActorID) *Actor {
	for _, a := range w.Actors {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// Time returns the elapsed simulation time in seconds.
func (w *World) Time() float64 { return float64(w.Frame) * DT }

// Step advances the world by one frame: applies the commanded EV
// acceleration (clamped to actuation limits), integrates all actors, and
// updates the halt state. It is a no-op once the world has halted.
func (w *World) Step(evAccel float64) {
	if w.Halted {
		return
	}
	// EV longitudinal dynamics.
	a := geom.Clamp(evAccel, -w.EV.MaxBrake, w.EV.MaxAccel)
	w.EV.Accel = a
	w.EV.Speed += a * DT
	if w.EV.Speed < 0 {
		w.EV.Speed = 0
	}
	w.EV.Pos.X += w.EV.Speed * DT

	for _, actor := range w.Actors {
		if actor.Behavior != nil {
			actor.Behavior.Step(actor, w, DT)
		}
		actor.Pos = actor.Pos.Add(actor.Vel.Scale(DT))
	}
	w.Frame++

	if gap, id, ok := w.GroundTruthGap(); ok && gap < HaltGap {
		w.Halted = true
		w.HaltActor = id
	}
}

// GroundTruthGap returns the bumper-to-bumper longitudinal gap to the
// nearest actor ahead of the EV whose footprint overlaps the EV's
// corridor, using ground-truth state. ok is false when no such actor
// exists within 250 m.
func (w *World) GroundTruthGap() (gap float64, id ActorID, ok bool) {
	const horizon = 250.0
	best := horizon
	var bestID ActorID
	found := false
	for _, a := range w.Actors {
		if !w.Road.InEVCorridor(a.Pos.Y, a.Size.Width, w.EV.Size.Width) {
			continue
		}
		rear := a.Pos.X - a.Size.Length/2
		g := rear - w.EV.Front()
		if g < -a.Size.Length { // fully behind the EV
			continue
		}
		if g < best {
			best, bestID, found = g, a.ID, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return best, bestID, true
}

// RelState is an actor's state relative to the EV, the quantity the
// perception stack is trying to estimate and the attack is trying to
// corrupt.
type RelState struct {
	ID     ActorID
	Class  Class
	Pos    geom.Vec2 // relative to EV center (x ahead, y right)
	Vel    geom.Vec2 // relative velocity
	Size   Size
	InLane bool
}

// Relative returns the relative states of all actors (ground truth).
func (w *World) Relative() []RelState {
	return w.RelativeInto(make([]RelState, 0, len(w.Actors)))
}

// RelativeInto appends the relative states of all actors into dst
// (re-sliced to zero first) and returns it — the allocation-free
// variant for per-frame callers (camera, LiDAR) that own a reusable
// buffer.
func (w *World) RelativeInto(dst []RelState) []RelState {
	dst = dst[:0]
	evVel := geom.V(w.EV.Speed, 0)
	for _, a := range w.Actors {
		dst = append(dst, RelState{
			ID:     a.ID,
			Class:  a.Class,
			Pos:    a.Pos.Sub(w.EV.Pos),
			Vel:    a.Vel.Sub(evVel),
			Size:   a.Size,
			InLane: w.Road.InEVCorridor(a.Pos.Y, a.Size.Width, w.EV.Size.Width),
		})
	}
	return dst
}
