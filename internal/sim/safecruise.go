package sim

import (
	"math"

	"github.com/robotack/robotack/internal/geom"
)

// SafeCruise drives the actor at a set speed but brakes to avoid the
// entity ahead in its lane (including the EV). DS-5's NPC traffic uses
// it so that background vehicles do not blindly rear-end a braking EV.
type SafeCruise struct {
	Speed      float64
	Headway    float64 // desired time gap, s
	Standstill float64 // desired gap at rest, m
	MaxAccel   float64 // acceleration/deceleration limit magnitude
}

var _ Behavior = (*SafeCruise)(nil)

// Step implements Behavior.
func (s *SafeCruise) Step(a *Actor, w *World, dt float64) {
	if s.Headway == 0 {
		s.Headway = 1.8
	}
	if s.Standstill == 0 {
		s.Standstill = 5
	}
	if s.MaxAccel == 0 {
		s.MaxAccel = 3.5
	}
	gap, leadSpeed := s.leadGap(a, w)

	target := s.Speed
	if gap < 1e8 {
		// Speed that lets the actor stop within the available gap under
		// its braking limit, on top of the lead's speed.
		room := math.Max(gap-s.Standstill, 0)
		target = math.Min(target, leadSpeed+math.Sqrt(2*s.MaxAccel*room*0.5))
		if gap < s.Standstill {
			target = 0
		}
	}
	v := a.Vel.X
	dv := geom.Clamp(target-v, -s.MaxAccel*dt, s.MaxAccel*dt)
	a.Vel = geom.V(v+dv, 0)
}

// leadGap finds the bumper gap and speed of the nearest entity ahead of
// the actor in its lane.
func (s *SafeCruise) leadGap(a *Actor, w *World) (gap, leadSpeed float64) {
	const laneHalf = 1.8
	gap = math.Inf(1)
	front := a.Pos.X + a.Size.Length/2
	// The EV.
	if math.Abs(w.EV.Pos.Y-a.Pos.Y) < laneHalf {
		if g := (w.EV.Pos.X - w.EV.Size.Length/2) - front; g > -a.Size.Length && g < gap {
			gap, leadSpeed = g, w.EV.Speed
		}
	}
	for _, other := range w.Actors {
		if other == a || math.Abs(other.Pos.Y-a.Pos.Y) >= laneHalf {
			continue
		}
		if g := (other.Pos.X - other.Size.Length/2) - front; g > -a.Size.Length && g < gap {
			gap, leadSpeed = g, other.Vel.X
		}
	}
	return gap, leadSpeed
}
