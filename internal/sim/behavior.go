package sim

import (
	"math"

	"github.com/robotack/robotack/internal/geom"
)

// Cruise drives the actor at a constant longitudinal speed. Negative
// speeds model oncoming traffic in the opposite lane.
type Cruise struct {
	Speed float64
}

var _ Behavior = (*Cruise)(nil)

// Step implements Behavior.
func (c *Cruise) Step(a *Actor, _ *World, _ float64) {
	a.Vel = geom.V(c.Speed, 0)
}

// Parked keeps the actor stationary (DS-3's parked target vehicle).
type Parked struct{}

var _ Behavior = (*Parked)(nil)

// Step implements Behavior.
func (Parked) Step(a *Actor, _ *World, _ float64) {
	a.Vel = geom.Vec2{}
}

// Waypoint is one leg of a FollowRoute.
type Waypoint struct {
	Pos   geom.Vec2
	Speed float64
}

// FollowRoute walks the actor through a series of waypoints at the
// per-leg speed, then stops. It models the LGSVL Python-API waypoint
// actors used to script the paper's scenarios.
type FollowRoute struct {
	Waypoints []Waypoint
	next      int
}

var _ Behavior = (*FollowRoute)(nil)

// Step implements Behavior.
func (f *FollowRoute) Step(a *Actor, _ *World, dt float64) {
	for f.next < len(f.Waypoints) {
		wp := f.Waypoints[f.next]
		to := wp.Pos.Sub(a.Pos)
		dist := to.Norm()
		if dist < math.Max(wp.Speed*dt, 1e-6) {
			a.Pos = wp.Pos
			f.next++
			continue
		}
		a.Vel = to.Unit().Scale(wp.Speed)
		return
	}
	a.Vel = geom.Vec2{}
}

// Done reports whether the route has been fully consumed.
func (f *FollowRoute) Done() bool { return f.next >= len(f.Waypoints) }

// TriggeredCross models DS-2's jaywalking pedestrian: the actor stands
// still until the EV's longitudinal gap to it falls below TriggerGap,
// then crosses laterally from its current y to ToY at CrossSpeed and
// stops.
type TriggeredCross struct {
	TriggerGap float64
	CrossSpeed float64
	ToY        float64
	triggered  bool
}

var _ Behavior = (*TriggeredCross)(nil)

// Step implements Behavior.
func (t *TriggeredCross) Step(a *Actor, w *World, dt float64) {
	if !t.triggered {
		gap := a.Pos.X - w.EV.Front()
		if gap <= t.TriggerGap {
			t.triggered = true
		} else {
			a.Vel = geom.Vec2{}
			return
		}
	}
	dy := t.ToY - a.Pos.Y
	if math.Abs(dy) < math.Max(t.CrossSpeed*dt, 1e-6) {
		a.Pos.Y = t.ToY
		a.Vel = geom.Vec2{}
		return
	}
	a.Vel = geom.V(0, geom.Sign(dy)*t.CrossSpeed)
}

// Crossing reports whether the pedestrian has started walking.
func (t *TriggeredCross) Crossing() bool { return t.triggered }

// WalkThenStop models DS-4's pedestrian: walk longitudinally toward the
// EV (negative x) for Distance meters, then stand still for the rest of
// the scenario.
type WalkThenStop struct {
	Speed    float64
	Distance float64
	walked   float64
}

var _ Behavior = (*WalkThenStop)(nil)

// Step implements Behavior.
func (ws *WalkThenStop) Step(a *Actor, _ *World, dt float64) {
	if ws.walked >= ws.Distance {
		a.Vel = geom.Vec2{}
		return
	}
	a.Vel = geom.V(-ws.Speed, 0)
	ws.walked += ws.Speed * dt
}

// Moving reports whether the pedestrian is still walking.
func (ws *WalkThenStop) Moving() bool { return ws.walked < ws.Distance }
