package sim

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/geom"
)

func newTestWorld() *World {
	ev := DefaultEV()
	ev.Speed = 10
	return NewWorld(DefaultRoad(), ev)
}

func TestKph(t *testing.T) {
	if got := Kph(36); math.Abs(got-10) > 1e-9 {
		t.Errorf("Kph(36) = %v, want 10", got)
	}
}

func TestEVIntegration(t *testing.T) {
	w := newTestWorld()
	for i := 0; i < 15; i++ { // one second at 1 m/s^2
		w.Step(1.0)
	}
	if math.Abs(w.EV.Speed-11) > 1e-9 {
		t.Errorf("Speed = %v, want 11", w.EV.Speed)
	}
	// x ≈ v0*t + a*t²/2 with forward-Euler discretization error of a*dt*t/2.
	want := 10.0 + 0.5 + 0.5*DT
	if math.Abs(w.EV.Pos.X-want) > 1e-6 {
		t.Errorf("X = %v, want %v", w.EV.Pos.X, want)
	}
	if math.Abs(w.Time()-1) > 1e-9 {
		t.Errorf("Time = %v, want 1", w.Time())
	}
}

func TestEVAccelClamping(t *testing.T) {
	w := newTestWorld()
	w.Step(100) // way over MaxAccel
	if w.EV.Accel != w.EV.MaxAccel {
		t.Errorf("Accel = %v, want clamped to %v", w.EV.Accel, w.EV.MaxAccel)
	}
	w.Step(-100)
	if w.EV.Accel != -w.EV.MaxBrake {
		t.Errorf("Accel = %v, want clamped to %v", w.EV.Accel, -w.EV.MaxBrake)
	}
}

func TestEVSpeedNeverNegative(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 0.5
	for i := 0; i < 30; i++ {
		w.Step(-8)
	}
	if w.EV.Speed != 0 {
		t.Errorf("Speed = %v, want 0", w.EV.Speed)
	}
	if w.EV.Pos.X < 0 {
		t.Error("EV must not reverse")
	}
}

func TestCruiseActor(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 0
	id := w.AddActor(&Actor{
		Class:    ClassVehicle,
		Pos:      geom.V(50, 0),
		Size:     SizeCar,
		Behavior: &Cruise{Speed: 5},
	})
	for i := 0; i < 15; i++ {
		w.Step(0)
	}
	a := w.Actor(id)
	if math.Abs(a.Pos.X-55) > 1e-9 {
		t.Errorf("actor X = %v, want 55", a.Pos.X)
	}
}

func TestHaltOnCloseGap(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 20
	w.AddActor(&Actor{
		Class:    ClassVehicle,
		Pos:      geom.V(30, 0),
		Size:     SizeCar,
		Behavior: Parked{},
	})
	for i := 0; i < 150 && !w.Halted; i++ {
		w.Step(0) // never brakes
	}
	if !w.Halted {
		t.Fatal("world should have halted")
	}
	gap, id, ok := w.GroundTruthGap()
	if !ok || gap >= HaltGap {
		t.Errorf("gap = %v ok=%v, want < %v", gap, ok, HaltGap)
	}
	if w.HaltActor != id {
		t.Errorf("HaltActor = %v, want %v", w.HaltActor, id)
	}
	frame := w.Frame
	w.Step(0) // halted world must not advance
	if w.Frame != frame {
		t.Error("halted world advanced")
	}
}

func TestNoHaltForAdjacentLaneActor(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 15
	w.AddActor(&Actor{
		Class:    ClassVehicle,
		Pos:      geom.V(30, 3.5), // parking lane
		Size:     SizeCar,
		Behavior: Parked{},
	})
	for i := 0; i < 100; i++ {
		w.Step(0)
	}
	if w.Halted {
		t.Fatal("adjacent-lane actor must not halt the EV")
	}
	if _, _, ok := w.GroundTruthGap(); ok {
		t.Error("parked car in parking lane should not be in corridor")
	}
}

func TestGroundTruthGapPicksNearest(t *testing.T) {
	w := newTestWorld()
	w.AddActor(&Actor{Class: ClassVehicle, Pos: geom.V(80, 0), Size: SizeCar, Behavior: Parked{}})
	near := w.AddActor(&Actor{Class: ClassVehicle, Pos: geom.V(40, 0), Size: SizeCar, Behavior: Parked{}})
	gap, id, ok := w.GroundTruthGap()
	if !ok || id != near {
		t.Fatalf("gap=%v id=%v ok=%v", gap, id, ok)
	}
	want := (40 - SizeCar.Length/2) - w.EV.Front()
	if math.Abs(gap-want) > 1e-9 {
		t.Errorf("gap = %v, want %v", gap, want)
	}
}

func TestGroundTruthGapIgnoresBehind(t *testing.T) {
	w := newTestWorld()
	w.AddActor(&Actor{Class: ClassVehicle, Pos: geom.V(-30, 0), Size: SizeCar, Behavior: Parked{}})
	if _, _, ok := w.GroundTruthGap(); ok {
		t.Error("actor behind EV should be ignored")
	}
}

func TestFollowRoute(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 0
	route := &FollowRoute{Waypoints: []Waypoint{
		{Pos: geom.V(60, 0), Speed: 5},
		{Pos: geom.V(60, 5), Speed: 5},
	}}
	id := w.AddActor(&Actor{Class: ClassVehicle, Pos: geom.V(50, 0), Size: SizeCar, Behavior: route})
	for i := 0; i < 15*5 && !route.Done(); i++ {
		w.Step(0)
	}
	a := w.Actor(id)
	if !route.Done() {
		t.Fatal("route not finished")
	}
	if a.Pos.Dist(geom.V(60, 5)) > 0.5 {
		t.Errorf("final pos = %v", a.Pos)
	}
	w.Step(0)
	if a.Vel.Norm() != 0 {
		t.Error("actor should stop after route")
	}
}

func TestTriggeredCross(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 10
	cross := &TriggeredCross{TriggerGap: 40, CrossSpeed: 1.5, ToY: -1}
	id := w.AddActor(&Actor{
		Class: ClassPedestrian, Pos: geom.V(80, 6), Size: SizePedestrian, Behavior: cross,
	})
	w.Step(0)
	if cross.Crossing() {
		t.Fatal("should not trigger at 80 m gap")
	}
	for i := 0; i < 15*8; i++ {
		w.Step(0)
	}
	if !cross.Crossing() {
		t.Fatal("pedestrian never triggered")
	}
	a := w.Actor(id)
	// The pedestrian must have made lateral progress toward the EV lane
	// (the run may halt once the unbraked EV reaches it).
	if a.Pos.Y > 1.0 {
		t.Errorf("pedestrian Y = %v, expected progress toward -1", a.Pos.Y)
	}
}

func TestWalkThenStop(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 0
	walk := &WalkThenStop{Speed: 1.0, Distance: 5}
	id := w.AddActor(&Actor{
		Class: ClassPedestrian, Pos: geom.V(60, 3.5), Size: SizePedestrian, Behavior: walk,
	})
	for i := 0; i < 15*10; i++ {
		w.Step(0)
	}
	a := w.Actor(id)
	if walk.Moving() {
		t.Fatal("pedestrian should have stopped")
	}
	if math.Abs(a.Pos.X-55) > 0.2 {
		t.Errorf("pedestrian X = %v, want ~55", a.Pos.X)
	}
}

func TestRelativeStates(t *testing.T) {
	w := newTestWorld()
	w.EV.Speed = 10
	w.AddActor(&Actor{
		Class: ClassVehicle, Pos: geom.V(25, 0), Size: SizeCar,
		Behavior: &Cruise{Speed: 4},
	})
	w.Step(0)
	rel := w.Relative()
	if len(rel) != 1 {
		t.Fatalf("len = %d", len(rel))
	}
	if !rel[0].InLane {
		t.Error("in-lane actor misclassified")
	}
	if math.Abs(rel[0].Vel.X-(-6)) > 1e-9 {
		t.Errorf("rel vel = %v, want -6", rel[0].Vel.X)
	}
}

func TestInEVCorridor(t *testing.T) {
	r := DefaultRoad()
	tests := []struct {
		name string
		y, w float64
		want bool
	}{
		{"centered", 0, 1.9, true},
		{"parking-lane", 3.5, 1.9, false},
		{"edge-overlap", 1.8, 1.9, true},
		{"just-outside", 2.0, 1.9, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.InEVCorridor(tt.y, tt.w, 1.9); got != tt.want {
				t.Errorf("InEVCorridor(%v) = %v, want %v", tt.y, got, tt.want)
			}
		})
	}
}

func TestWorldDeterminism(t *testing.T) {
	build := func() *World {
		w := newTestWorld()
		w.AddActor(&Actor{Class: ClassVehicle, Pos: geom.V(60, 0), Size: SizeCar, Behavior: &Cruise{Speed: 7}})
		w.AddActor(&Actor{Class: ClassPedestrian, Pos: geom.V(90, 5), Size: SizePedestrian,
			Behavior: &TriggeredCross{TriggerGap: 45, CrossSpeed: 1.4, ToY: -2}})
		return w
	}
	a, b := build(), build()
	for i := 0; i < 300; i++ {
		a.Step(0.3)
		b.Step(0.3)
	}
	if a.EV.Pos != b.EV.Pos || a.Frame != b.Frame {
		t.Fatal("identical worlds diverged")
	}
	for i := range a.Actors {
		if a.Actors[i].Pos != b.Actors[i].Pos {
			t.Fatalf("actor %d diverged", i)
		}
	}
}

func BenchmarkWorldStep(b *testing.B) {
	w := newTestWorld()
	for i := 0; i < 10; i++ {
		w.AddActor(&Actor{Class: ClassVehicle, Pos: geom.V(float64(20+15*i), 0), Size: SizeCar,
			Behavior: &Cruise{Speed: 8}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Step(0)
		w.Halted = false // keep stepping
	}
}
