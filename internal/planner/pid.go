package planner

import "github.com/robotack/robotack/internal/geom"

// PID is the actuation smoother of the paper's Fig. 1: "commands are
// smoothed out using a PID controller to generate final actuation
// values ... The PID controller ensures that the AV does not make any
// sudden changes in A_t." It tracks the planner's desired acceleration
// with a jerk limit; emergency braking bypasses it (safety overrides
// comfort).
type PID struct {
	// Kp, Ki, Kd are the controller gains on the acceleration error.
	Kp, Ki, Kd float64
	// JerkLimit bounds the output slew rate in m/s^3.
	JerkLimit float64
	// IntegralLimit bounds the integral term (anti-windup).
	IntegralLimit float64

	integral float64
	prevErr  float64
	output   float64
	primed   bool
}

// NewPID returns the controller tuning used by the reproduction's ADS.
func NewPID() *PID {
	return &PID{Kp: 0.55, Ki: 0.35, Kd: 0.02, JerkLimit: 22, IntegralLimit: 3}
}

// Update advances the controller one step toward the desired
// acceleration and returns the smoothed actuation value.
func (p *PID) Update(desired float64, dt float64) float64 {
	err := desired - p.output
	p.integral = geom.Clamp(p.integral+err*dt, -p.IntegralLimit, p.IntegralLimit)
	deriv := 0.0
	if p.primed && dt > 0 {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.primed = true

	delta := p.Kp*err + p.Ki*p.integral*dt + p.Kd*deriv*dt
	maxStep := p.JerkLimit * dt
	p.output += geom.Clamp(delta, -maxStep, maxStep)
	return p.output
}

// Override forces the output (emergency braking path) and resets the
// controller state so the next Update resumes smoothly from there.
func (p *PID) Override(value float64) float64 {
	p.output = value
	p.integral = 0
	p.prevErr = 0
	p.primed = false
	return p.output
}

// Output returns the current actuation value.
func (p *PID) Output() float64 { return p.output }

// Reset clears all controller state.
func (p *PID) Reset() {
	p.integral = 0
	p.prevErr = 0
	p.output = 0
	p.primed = false
}
