package planner

import (
	"math"

	"github.com/robotack/robotack/internal/fusion"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
)

// Mode is the planner's longitudinal driving mode.
type Mode int

// Planner modes. EmergencyBrake is the safety-hazard outcome the paper
// counts as "forced emergency braking (EB)".
const (
	ModeCruise Mode = iota + 1
	ModeFollow
	ModeBrake
	ModeEmergencyBrake
	ModeStop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCruise:
		return "cruise"
	case ModeFollow:
		return "follow"
	case ModeBrake:
		return "brake"
	case ModeEmergencyBrake:
		return "emergency-brake"
	case ModeStop:
		return "stop"
	default:
		return "unknown"
	}
}

// Config parametrizes the longitudinal planner.
type Config struct {
	Safety SafetyConfig
	// DriveDecel is the deceleration the planner uses willingly in
	// normal driving (gentler than the safety model's ComfortDecel,
	// which calibrates the d_stop metric).
	DriveDecel float64
	// CruiseSpeed is the set speed in m/s.
	CruiseSpeed float64
	// Headway is the desired time gap behind a lead vehicle (s).
	Headway float64
	// StandstillGap is the desired gap at rest (m). With Headway 2.0 s
	// and the DS-1 lead speed of ~7 m/s this settles at the paper's
	// ~20 m following distance.
	StandstillGap float64
	// SpeedGain converts speed error to acceleration.
	SpeedGain float64
	// GapGain and ClosingGain form the ACC follow law.
	GapGain, ClosingGain float64
	// EBDecel is the deceleration demand (m/s^2) above which the
	// planner escalates to emergency braking.
	EBDecel float64
	// EBBrake is the emergency brake strength (m/s^2, positive).
	EBBrake float64
	// PedCautionSpeed caps speed while a moving pedestrian is near the
	// corridor (DS-4 golden behaviour: slow to ~35 kph).
	PedCautionSpeed float64
	// PedCautionLateral is the lateral half-width of the caution band
	// beyond the EV corridor.
	PedCautionLateral float64
	// PedCautionRange is the look-ahead for pedestrian caution (m).
	PedCautionRange float64
	// VyDeadband ignores lateral velocities below it when predicting
	// corridor entry (suppresses phantom cut-ins from differentiated
	// camera noise).
	VyDeadband float64
	// EntryStreak is how many consecutive frames an object must be
	// predicted to enter the corridor before the planner reacts to it
	// (objects physically inside the corridor react immediately).
	EntryStreak int
	// EBConfirmFrames requires the EB condition to hold this many
	// consecutive frames before escalating, unless the demand is
	// overwhelming (>1.5x EBDecel).
	EBConfirmFrames int
}

// DefaultConfig returns the planner tuning used by the reproduction.
func DefaultConfig(cruiseSpeed float64) Config {
	return Config{
		Safety:            DefaultSafetyConfig(),
		DriveDecel:        2.0,
		CruiseSpeed:       cruiseSpeed,
		Headway:           2.0,
		StandstillGap:     6.0,
		SpeedGain:         0.8,
		GapGain:           0.35,
		ClosingGain:       0.9,
		EBDecel:           4.0,
		EBBrake:           7.0,
		PedCautionSpeed:   sim.Kph(35),
		PedCautionLateral: 2.2,
		PedCautionRange:   55,
		VyDeadband:        0.3,
		EntryStreak:       3,
		EBConfirmFrames:   2,
	}
}

// Decision is the planner output for one frame.
type Decision struct {
	// Accel is the final (PID-smoothed) actuation command in m/s^2.
	Accel float64
	// Raw is the pre-smoothing desired acceleration.
	Raw  float64
	Mode Mode
	// DSafe, DStop and Delta are the perceived safety-model values
	// (from the fused world model, not ground truth).
	DSafe, DStop, Delta float64
	// TargetID is the fused object the planner is reacting to (0 when
	// the corridor is clear).
	TargetID int
}

// Planner is the longitudinal planner + PID actuation chain.
type Planner struct {
	cfg Config
	pid *PID

	ebLatch     int         // frames remaining in the EB hold
	ebPending   int         // consecutive frames the EB condition held
	entryStreak map[int]int // per-object predicted-corridor-entry streak

	// Object permanence: perception drops out for runs of frames (the
	// Fig. 5 misdetection runs), so the planner remembers what it was
	// reacting to instead of re-accelerating into the void.
	cautionHold   int     // frames to keep the pedestrian speed cap
	crossingHold  int     // frames to keep braking for a lost crossing ped
	crossingRelX  float64 // extrapolated position of that pedestrian
	lostTargetFor int     // frames since a close corridor target vanished
	lostSpeed     float64 // that target's absolute speed
	// yRef is a slow per-pedestrian lateral reference; sustained
	// displacement of the estimate away from it reveals a crossing even
	// while the differentiated velocity estimate still lags.
	yRef map[int]float64

	// Per-frame scratch, reused across Plan calls so the warm planner
	// does not allocate.
	seen map[int]bool
	tgt  Target
}

// New creates a planner.
func New(cfg Config) *Planner {
	return &Planner{
		cfg:         cfg,
		pid:         NewPID(),
		entryStreak: make(map[int]int),
		yRef:        make(map[int]float64),
		seen:        make(map[int]bool),
	}
}

// Config returns the planner configuration.
func (p *Planner) Config() Config { return p.cfg }

// Reset clears controller state for a new episode.
func (p *Planner) Reset() {
	p.pid.Reset()
	p.ebLatch = 0
	p.ebPending = 0
	clear(p.entryStreak)
	p.cautionHold = 0
	p.crossingHold = 0
	p.lostTargetFor = 0
	clear(p.yRef)
}

// Reconfigure swaps the planner's configuration and resets all
// controller state — episode-scratch reuse across scenarios whose
// cruise speed differs.
func (p *Planner) Reconfigure(cfg Config) {
	p.cfg = cfg
	p.Reset()
}

// selectTarget picks the nearest confident in-path object, requiring
// predicted (not yet physical) corridor entries to persist for
// EntryStreak frames before they count — one noisy frame of lateral
// velocity must not brake the EV.
func (p *Planner) selectTarget(objs []fusion.Object, fcfg fusion.Config, ev sim.EV, road sim.Road) (float64, *Target) {
	cfg := p.cfg
	clear(p.seen)
	seen := p.seen
	best := cfg.Safety.MaxDSafe
	var target *Target
	for i := range objs {
		o := objs[i]
		if !o.Confident(fcfg) {
			continue
		}
		inNow := road.InEVCorridor(o.Rel.Y, o.Size.Width, ev.Size.Width)
		eligible := inNow
		if !inNow && o.Vel.X+ev.Speed < -1.5 {
			// Oncoming traffic keeps its own lane; corridor-entry
			// prediction does not apply to it (lane-associated
			// prediction, as in Apollo's prediction module).
			continue
		}
		if !inNow {
			vy := o.Vel.Y
			if math.Abs(vy) < cfg.VyDeadband {
				vy = 0
			}
			horizon := CorridorHorizonFor(o.Class)
			if InCorridorNowOrSoon(o.Rel.Y, vy, o.Size.Width, ev.Size.Width, horizon, road) {
				seen[o.ID] = true
				if p.entryStreak[o.ID] < 2*cfg.EntryStreak {
					p.entryStreak[o.ID]++
				}
				eligible = p.entryStreak[o.ID] >= cfg.EntryStreak
			} else if s := p.entryStreak[o.ID]; s > 0 {
				// Hysteresis: decay instead of reset, so one noisy frame
				// does not drop an entering object.
				seen[o.ID] = true
				p.entryStreak[o.ID] = s - 1
				eligible = s-1 >= cfg.EntryStreak
			}
		}
		if !eligible {
			continue
		}
		gap := o.Rel.X - o.Size.Length/2 - ev.Size.Length/2
		if gap < -o.Size.Length {
			continue
		}
		gap = math.Max(gap, 0)
		if gap < best {
			best = gap
			p.tgt = Target{Object: o, Gap: gap, Closing: -o.Vel.X}
			target = &p.tgt
		}
	}
	for id := range p.entryStreak {
		if !seen[id] {
			delete(p.entryStreak, id)
		}
	}
	return best, target
}

// Plan computes the actuation command from the fused world model.
func (p *Planner) Plan(objs []fusion.Object, fcfg fusion.Config, ev sim.EV, road sim.Road) Decision {
	cfg := p.cfg
	dsafe, target := p.selectTarget(objs, fcfg, ev, road)
	dstop := cfg.Safety.DStop(ev.Speed)
	delta := dsafe - dstop

	targetSpeed := cfg.CruiseSpeed
	mode := ModeCruise
	if p.pedestrianCaution(objs, fcfg, ev, road) {
		p.cautionHold = 30
	} else if p.cautionHold > 0 {
		p.cautionHold--
	}
	if p.cautionHold > 0 && targetSpeed > cfg.PedCautionSpeed {
		targetSpeed = cfg.PedCautionSpeed
	}

	// Object permanence for a recently lost close corridor target: do
	// not accelerate past its last known speed while it may still be
	// there (perception dropout, not disappearance).
	if target == nil && p.lostTargetFor > 0 {
		p.lostTargetFor--
		if cap := p.lostSpeed + 1.5; targetSpeed > cap {
			targetSpeed = math.Max(cap, 1)
		}
	}

	// Base law: track the target speed. Re-acceleration is capped at a
	// comfortable rate — the EV does not floor the pedal the instant
	// the corridor looks clear.
	raw := geom.Clamp(cfg.SpeedGain*(targetSpeed-ev.Speed), -cfg.DriveDecel, cruiseAccelCap)
	targetID := 0

	// Precautionary braking for an actively crossing pedestrian: begin
	// a comfortable stop before its longitudinal position well before
	// the corridor-entry logic fires (DS-2 golden: stop >10 m away).
	// The reaction latches and extrapolates through perception gaps.
	if ped := p.crossingPedestrian(objs, ev, road); ped != nil {
		p.crossingHold = 15
		p.crossingRelX = ped.Rel.X
	} else if p.crossingHold > 0 {
		p.crossingHold--
		p.crossingRelX -= ev.Speed * sim.DT
	}
	if p.crossingHold > 0 {
		room := math.Max(p.crossingRelX-ev.Size.Length/2-9, 0.3)
		req := ev.Speed * ev.Speed / (2 * room)
		if req > 0.5*cfg.DriveDecel {
			raw = math.Min(raw, -math.Max(req, 0.8))
			mode = ModeBrake
		}
	}

	if target != nil {
		targetID = target.Object.ID
		desiredGap := cfg.StandstillGap + cfg.Headway*ev.Speed
		gapErr := target.Gap - desiredGap

		// Physics of the encounter: deceleration needed to stop before
		// the obstacle's rear with margin.
		margin := cfg.StandstillGap * 0.5
		room := math.Max(target.Gap-margin, 0.3)
		closing := math.Max(target.Closing, ev.Speed*0.3)
		required := 0.0
		if closing > 0 {
			required = closing * closing / (2 * room)
		}

		// ACC follow law, floored by the physical requirement so the
		// planner does not over-brake for distant slow targets.
		follow := cfg.GapGain*gapErr - cfg.ClosingGain*target.Closing
		if floor := -(required*1.2 + 0.3); follow < floor {
			follow = floor
		}
		if follow < raw {
			raw = follow
			mode = ModeFollow
		}

		// Pedestrians physically inside the corridor demand a full stop
		// well short of them — no creeping (DS-2 golden: stop >10 m away).
		if target.Object.Class == sim.ClassPedestrian &&
			road.InEVCorridor(target.Object.Rel.Y, target.Object.Size.Width, ev.Size.Width) &&
			ev.Speed > 0.2 {
			stopRoom := math.Max(target.Gap-9, 0.3)
			reqPed := ev.Speed * ev.Speed / (2 * stopRoom)
			raw = math.Min(raw, -math.Max(reqPed, cfg.DriveDecel))
			if required < reqPed {
				required = reqPed
			}
			mode = ModeBrake
		}

		// Escalate through Brake to EmergencyBrake. The EB condition
		// must persist EBConfirmFrames unless the demand is extreme,
		// and only close-range demands qualify (a 4+ m/s^2 "need" at
		// long range is a perception artifact, not an emergency).
		if required > cfg.DriveDecel {
			raw = math.Min(raw, -required)
			mode = ModeBrake
		}
		if required > cfg.EBDecel && target.Gap < 32 {
			p.ebPending++
			if p.ebPending >= cfg.EBConfirmFrames || required > 1.5*cfg.EBDecel {
				mode = ModeEmergencyBrake
			}
		} else {
			p.ebPending = 0
		}

		// Remember close corridor targets for object permanence
		// (~1.3 s of retention, comparable to production obstacle
		// buffers).
		if target.Gap < 40 {
			p.lostTargetFor = 20
			p.lostSpeed = math.Max(ev.Speed-target.Closing, 0)
		}
		if target.Gap <= cfg.StandstillGap && ev.Speed < 0.5 {
			mode = ModeStop
			raw = -cfg.DriveDecel
		}
	}

	// Emergency braking latches for a few frames so a single noisy
	// frame cannot flicker the brake off mid-stop.
	if mode == ModeEmergencyBrake {
		p.ebLatch = 5
	} else if p.ebLatch > 0 {
		p.ebLatch--
		if ev.Speed > 0.5 {
			mode = ModeEmergencyBrake
		}
	}

	var accel float64
	if mode == ModeEmergencyBrake {
		raw = -cfg.EBBrake
		accel = p.pid.Override(raw)
	} else {
		accel = p.pid.Update(raw, sim.DT)
	}
	return Decision{
		Accel:    accel,
		Raw:      raw,
		Mode:     mode,
		DSafe:    dsafe,
		DStop:    dstop,
		Delta:    delta,
		TargetID: targetID,
	}
}

// cruiseAccelCap bounds comfortable re-acceleration (m/s^2).
const cruiseAccelCap = 1.2

// pedCautionConfidence is the evidence level at which a moving
// pedestrian already warrants slowing down — deliberately below the
// reaction threshold for braking targets (defence in depth for
// vulnerable road users).
const pedCautionConfidence = 0.25

// crossingPedestrian returns the nearest confident pedestrian ahead
// that is laterally heading for the EV corridor (|vy| above deadband,
// moving toward the lane center, inside the caution band).
func (p *Planner) crossingPedestrian(objs []fusion.Object, ev sim.EV, road sim.Road) *fusion.Object {
	var best *fusion.Object
	for i := range objs {
		o := &objs[i]
		if o.Class != sim.ClassPedestrian || o.Confidence < p.cfg.Safety.crossingConfidence() {
			continue
		}
		if o.Rel.X < 2 || o.Rel.X > p.cfg.PedCautionRange {
			continue
		}
		// Maintain the slow lateral reference for displacement
		// detection.
		ref, ok := p.yRef[o.ID]
		if !ok {
			ref = o.Rel.Y
		}
		ref += 0.02 * (o.Rel.Y - ref)
		p.yRef[o.ID] = ref

		toCenter := road.EVLaneCenter() - o.Rel.Y
		velCrossing := math.Abs(o.Vel.Y) >= p.cfg.VyDeadband && toCenter*o.Vel.Y > 0
		dispCrossing := math.Abs(ref-road.EVLaneCenter())-math.Abs(o.Rel.Y-road.EVLaneCenter()) > 0.55
		if !velCrossing && !dispCrossing {
			continue // not moving toward the lane center
		}
		if math.Abs(o.Rel.Y-road.EVLaneCenter()) > (ev.Size.Width+0.6)/2+p.cfg.PedCautionLateral+1.5 {
			continue
		}
		if best == nil || o.Rel.X < best.Rel.X {
			best = o
		}
	}
	return best
}

// pedestrianCaution reports whether a plausibly-real moving pedestrian
// is close enough to the corridor to warrant a speed cap.
func (p *Planner) pedestrianCaution(objs []fusion.Object, _ fusion.Config, ev sim.EV, road sim.Road) bool {
	half := (ev.Size.Width+0.6)/2 + p.cfg.PedCautionLateral
	for _, o := range objs {
		if o.Class != sim.ClassPedestrian || o.Confidence < pedCautionConfidence {
			continue
		}
		if o.Rel.X < 2 || o.Rel.X > p.cfg.PedCautionRange {
			continue
		}
		moving := o.Vel.Sub(geom.V(-ev.Speed, 0)).Norm() > 0.4 // absolute motion
		if moving && math.Abs(o.Rel.Y-road.EVLaneCenter()) < half {
			return true
		}
	}
	return false
}
