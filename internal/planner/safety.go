// Package planner implements the ADS planning & control module of the
// paper's Fig. 1: the Jha et al. safety model (Definitions 3-5: d_stop,
// d_safe and the safety potential delta), an ACC-style longitudinal
// planner with cruise / follow / brake / emergency-brake modes, and the
// PID smoothing of actuation commands.
package planner

import (
	"math"

	"github.com/robotack/robotack/internal/fusion"
	"github.com/robotack/robotack/internal/sim"
)

// SafetyConfig parametrizes the safety model.
type SafetyConfig struct {
	// ComfortDecel is the "maximum comfortable deceleration" of
	// Definition 3, in m/s^2.
	ComfortDecel float64
	// ReactionTime adds a reaction distance v * t to d_stop.
	ReactionTime float64
	// MaxDSafe caps d_safe when no obstacle is in the corridor.
	MaxDSafe float64
	// AccidentDelta is the delta below which a run counts as an
	// accident: 4 m, the LGSVL halt limitation adopted by the paper
	// (§II-C, Definition 5).
	AccidentDelta float64
}

// DefaultSafetyConfig returns the safety model used throughout.
// ComfortDecel 5 m/s^2 with no reaction allowance calibrates d_stop so
// that DS-1's attack-start safety potential lands at the paper's
// delta_0 ~ 41 m (Fig. 8b): at 45 kph, d_stop = 12.5^2/10 = 15.6 m.
func DefaultSafetyConfig() SafetyConfig {
	return SafetyConfig{
		ComfortDecel:  5.0,
		ReactionTime:  0,
		MaxDSafe:      100,
		AccidentDelta: 4.0,
	}
}

// crossingConfidence is the evidence level at which a crossing
// pedestrian triggers precautionary braking.
func (c SafetyConfig) crossingConfidence() float64 { return 0.45 }

// DStop is Definition 3: the distance travelled before a complete stop
// under the maximum comfortable deceleration, including the reaction
// distance.
func (c SafetyConfig) DStop(speed float64) float64 {
	if speed <= 0 {
		return 0
	}
	return speed*c.ReactionTime + speed*speed/(2*c.ComfortDecel)
}

// Delta is Definition 5: the safety potential delta = d_safe - d_stop.
func (c SafetyConfig) Delta(dsafe, speed float64) float64 {
	return dsafe - c.DStop(speed)
}

// Corridor prediction horizons (seconds): how far ahead lateral motion
// is extrapolated when deciding whether an object is entering the EV
// corridor. Pedestrians get a longer horizon (vulnerable road users are
// anticipated earlier). A Move_In hijack works precisely because this
// prediction exists.
const (
	VehicleCorridorHorizon    = 1.5
	PedestrianCorridorHorizon = 3.0
)

// CorridorHorizonFor returns the prediction horizon for a class.
func CorridorHorizonFor(cls sim.Class) float64 {
	if cls == sim.ClassPedestrian {
		return PedestrianCorridorHorizon
	}
	return VehicleCorridorHorizon
}

// InCorridorNowOrSoon reports whether the object is inside the EV's
// swept corridor, or will enter it within the horizon given its
// lateral velocity.
func InCorridorNowOrSoon(rel, vel float64, width, evWidth, horizon float64, road sim.Road) bool {
	if road.InEVCorridor(rel, width, evWidth) {
		return true
	}
	future := rel + vel*horizon
	return road.InEVCorridor(future, width, evWidth)
}

// Target is the in-path object selected by the safety model.
type Target struct {
	Object fusion.Object
	// Gap is the bumper-to-bumper longitudinal distance in meters.
	Gap float64
	// Closing is the closing speed in m/s (positive when the gap is
	// shrinking).
	Closing float64
}

// DSafe implements Definition 4 on a fused world model: the distance
// the EV can travel without colliding with the nearest confident
// in-corridor (now or soon) object ahead. It returns MaxDSafe and a nil
// target when the corridor is clear.
func (c SafetyConfig) DSafe(objs []fusion.Object, fcfg fusion.Config, ev sim.EV, road sim.Road) (float64, *Target) {
	best := c.MaxDSafe
	var target *Target
	for i := range objs {
		o := objs[i]
		if !o.Confident(fcfg) {
			continue
		}
		horizon := CorridorHorizonFor(o.Class)
		if !InCorridorNowOrSoon(o.Rel.Y, o.Vel.Y, o.Size.Width, ev.Size.Width, horizon, road) {
			continue
		}
		gap := o.Rel.X - o.Size.Length/2 - ev.Size.Length/2
		if gap < -o.Size.Length { // behind the EV
			continue
		}
		gap = math.Max(gap, 0)
		if gap < best {
			best = gap
			target = &Target{Object: o, Gap: gap, Closing: -o.Vel.X}
		}
	}
	return best, target
}

// GroundTruthDelta computes the safety potential from simulator ground
// truth; the experiment harness uses it to classify accidents exactly
// as the paper does (min delta over the run).
func (c SafetyConfig) GroundTruthDelta(w *sim.World) float64 {
	gap, _, ok := w.GroundTruthGap()
	dsafe := c.MaxDSafe
	if ok {
		dsafe = math.Max(math.Min(gap, c.MaxDSafe), 0)
	}
	return c.Delta(dsafe, w.EV.Speed)
}
