package planner

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/fusion"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
)

// truthObjects fabricates a perfect fused world model from simulator
// ground truth, letting planner tests run without the perception stack.
func truthObjects(w *sim.World) []fusion.Object {
	rel := w.Relative()
	out := make([]fusion.Object, 0, len(rel))
	for i, r := range rel {
		out = append(out, fusion.Object{
			ID: i + 1, Class: r.Class, Rel: r.Pos, Vel: r.Vel,
			Size: r.Size, Confidence: 1,
		})
	}
	return out
}

func TestDStop(t *testing.T) {
	cfg := DefaultSafetyConfig()
	if got := cfg.DStop(0); got != 0 {
		t.Errorf("DStop(0) = %v", got)
	}
	// v=10: 100/(2*5) = 10.
	if got := cfg.DStop(10); math.Abs(got-10) > 1e-9 {
		t.Errorf("DStop(10) = %v, want 10", got)
	}
	if got := cfg.Delta(50, 10); math.Abs(got-40) > 1e-9 {
		t.Errorf("Delta = %v, want 40", got)
	}
}

func TestInCorridorNowOrSoon(t *testing.T) {
	road := sim.DefaultRoad()
	tests := []struct {
		name    string
		y, vy   float64
		width   float64
		horizon float64
		want    bool
	}{
		{"in-lane", 0, 0, 1.9, 1.5, true},
		{"parked-adjacent", 3.5, 0, 1.9, 1.5, false},
		{"cutting-in", 3.5, -1.5, 1.9, 1.5, true},
		{"moving-away", 3.5, 1.0, 1.9, 1.5, false},
		{"crossing-ped-far", 6, -1.4, 0.6, 3.0, false},
		{"crossing-ped-near", 5, -1.4, 0.6, 3.0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := InCorridorNowOrSoon(tt.y, tt.vy, tt.width, 1.9, tt.horizon, road)
			if got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDSafeSelectsNearestConfident(t *testing.T) {
	scfg := DefaultSafetyConfig()
	fcfg := fusion.DefaultConfig()
	ev := sim.DefaultEV()
	road := sim.DefaultRoad()
	objs := []fusion.Object{
		{ID: 1, Class: sim.ClassVehicle, Rel: geom.V(50, 0), Size: sim.SizeCar, Confidence: 1},
		{ID: 2, Class: sim.ClassVehicle, Rel: geom.V(30, 0), Size: sim.SizeCar, Confidence: 1},
		{ID: 3, Class: sim.ClassVehicle, Rel: geom.V(20, 0), Size: sim.SizeCar, Confidence: 0.3}, // not confident
		{ID: 4, Class: sim.ClassVehicle, Rel: geom.V(25, 3.5), Size: sim.SizeCar, Confidence: 1}, // out of lane
	}
	dsafe, target := scfg.DSafe(objs, fcfg, ev, road)
	if target == nil || target.Object.ID != 2 {
		t.Fatalf("target = %+v, want object 2", target)
	}
	want := 30 - sim.SizeCar.Length/2 - ev.Size.Length/2
	if math.Abs(dsafe-want) > 1e-9 {
		t.Errorf("dsafe = %v, want %v", dsafe, want)
	}
}

func TestDSafeClearCorridor(t *testing.T) {
	scfg := DefaultSafetyConfig()
	dsafe, target := scfg.DSafe(nil, fusion.DefaultConfig(), sim.DefaultEV(), sim.DefaultRoad())
	if target != nil || dsafe != scfg.MaxDSafe {
		t.Errorf("dsafe = %v target = %v, want max and nil", dsafe, target)
	}
}

func TestGroundTruthDelta(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = 10
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(40, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	scfg := DefaultSafetyConfig()
	gap, _, _ := w.GroundTruthGap()
	want := gap - scfg.DStop(10)
	if got := scfg.GroundTruthDelta(w); math.Abs(got-want) > 1e-9 {
		t.Errorf("delta = %v, want %v", got, want)
	}
}

func runPlanner(t *testing.T, w *sim.World, cruise float64, frames int) (*Planner, []Decision) {
	t.Helper()
	p := New(DefaultConfig(cruise))
	fcfg := fusion.DefaultConfig()
	decisions := make([]Decision, 0, frames)
	for i := 0; i < frames && !w.Halted; i++ {
		d := p.Plan(truthObjects(w), fcfg, w.EV, w.Road)
		w.Step(d.Accel)
		decisions = append(decisions, d)
	}
	return p, decisions
}

func TestCruiseReachesTargetSpeed(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = 5
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	_, _ = runPlanner(t, w, sim.Kph(45), 15*20)
	if math.Abs(w.EV.Speed-sim.Kph(45)) > 0.3 {
		t.Errorf("speed = %v, want %v", w.EV.Speed, sim.Kph(45))
	}
}

// DS-1 golden behaviour: approach the lead vehicle and settle ~20 m
// behind it at its speed, with no emergency braking.
func TestFollowSettlesAtTwentyMeters(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(45)
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	tvSpeed := sim.Kph(25)
	tv := &sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(60, 0), Size: sim.SizeSUV,
		Behavior: &sim.Cruise{Speed: tvSpeed}}
	w.AddActor(tv)

	_, decisions := runPlanner(t, w, sim.Kph(45), 15*40)
	if w.Halted {
		t.Fatal("golden run must not crash")
	}
	for _, d := range decisions {
		if d.Mode == ModeEmergencyBrake {
			t.Fatal("golden run must not emergency-brake")
		}
	}
	gap, _, ok := w.GroundTruthGap()
	if !ok {
		t.Fatal("lead vehicle lost")
	}
	if gap < 15 || gap > 26 {
		t.Errorf("settled gap = %v, want ~20 (paper DS-1 golden)", gap)
	}
	if math.Abs(w.EV.Speed-tvSpeed) > 0.5 {
		t.Errorf("settled speed = %v, want %v", w.EV.Speed, tvSpeed)
	}
}

// DS-2 golden behaviour: brake for the crossing pedestrian and stop
// more than 10 m away.
func TestBrakesForCrossingPedestrian(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(45)
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	ped := &sim.Actor{Class: sim.ClassPedestrian, Pos: geom.V(90, 6), Size: sim.SizePedestrian,
		Behavior: &sim.TriggeredCross{TriggerGap: 47, CrossSpeed: 1.4, ToY: -6}}
	w.AddActor(ped)

	p := New(DefaultConfig(sim.Kph(45)))
	fcfg := fusion.DefaultConfig()
	minGap := math.Inf(1)
	minSpeed := math.Inf(1)
	for i := 0; i < 15*25 && !w.Halted; i++ {
		d := p.Plan(truthObjects(w), fcfg, w.EV, w.Road)
		w.Step(d.Accel)
		if g, _, ok := w.GroundTruthGap(); ok && g < minGap {
			minGap = g
		}
		if w.EV.Speed < minSpeed {
			minSpeed = w.EV.Speed
		}
	}
	if w.Halted {
		t.Fatal("golden run must not hit the pedestrian")
	}
	if minSpeed > 2.5 {
		t.Errorf("min speed %v m/s; EV should brake to a crawl or stop for the crossing pedestrian", minSpeed)
	}
	if minGap < 8 {
		t.Errorf("closest approach %v m; golden run yields >10 m away (small tolerance)", minGap)
	}
}

// DS-3 golden behaviour: a parked car in the parking lane causes no
// reaction.
func TestIgnoresParkedCarInParkingLane(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(45)
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(75, 3.5), Size: sim.SizeCar, Behavior: sim.Parked{}})
	_, decisions := runPlanner(t, w, sim.Kph(45), 15*15)
	for _, d := range decisions {
		if d.Mode != ModeCruise {
			t.Fatalf("mode = %v, want cruise throughout", d.Mode)
		}
	}
	if math.Abs(w.EV.Speed-sim.Kph(45)) > 0.5 {
		t.Errorf("speed = %v, want unchanged", w.EV.Speed)
	}
}

// DS-4 golden behaviour: slow toward ~35 kph while the pedestrian walks
// in the parking lane, resume after they stop.
func TestPedestrianCautionSlowsAndResumes(t *testing.T) {
	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(45)
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassPedestrian, Pos: geom.V(70, 3.3), Size: sim.SizePedestrian,
		Behavior: &sim.WalkThenStop{Speed: 1.2, Distance: 5}})

	p := New(DefaultConfig(sim.Kph(45)))
	fcfg := fusion.DefaultConfig()
	minSpeed := math.Inf(1)
	for i := 0; i < 15*20 && !w.Halted; i++ {
		d := p.Plan(truthObjects(w), fcfg, w.EV, w.Road)
		w.Step(d.Accel)
		if w.EV.Speed < minSpeed {
			minSpeed = w.EV.Speed
		}
	}
	if w.Halted {
		t.Fatal("golden run must not crash")
	}
	if minSpeed > sim.Kph(38) {
		t.Errorf("min speed = %v kph, want to slow toward 35 kph", minSpeed*3.6)
	}
	if w.EV.Speed < sim.Kph(42) {
		t.Errorf("final speed = %v kph, should resume cruise", w.EV.Speed*3.6)
	}
}

func TestEmergencyBrakeOnSuddenObstacle(t *testing.T) {
	p := New(DefaultConfig(sim.Kph(45)))
	fcfg := fusion.DefaultConfig()
	ev := sim.DefaultEV()
	ev.Speed = 12.5
	objs := []fusion.Object{{
		ID: 1, Class: sim.ClassVehicle, Rel: geom.V(15, 0), Vel: geom.V(-12.5, 0),
		Size: sim.SizeCar, Confidence: 1,
	}}
	d := p.Plan(objs, fcfg, ev, sim.DefaultRoad())
	if d.Mode != ModeEmergencyBrake {
		t.Fatalf("mode = %v, want emergency-brake", d.Mode)
	}
	if d.Accel > -p.Config().EBBrake+1e-9 {
		t.Errorf("accel = %v, want immediate max braking (PID bypass)", d.Accel)
	}
}

func TestEmergencyBrakeLatch(t *testing.T) {
	p := New(DefaultConfig(sim.Kph(45)))
	fcfg := fusion.DefaultConfig()
	ev := sim.DefaultEV()
	ev.Speed = 12.5
	objs := []fusion.Object{{
		ID: 1, Class: sim.ClassVehicle, Rel: geom.V(15, 0), Vel: geom.V(-12.5, 0),
		Size: sim.SizeCar, Confidence: 1,
	}}
	if d := p.Plan(objs, fcfg, ev, sim.DefaultRoad()); d.Mode != ModeEmergencyBrake {
		t.Fatal("setup: expected EB")
	}
	// Object vanishes for one frame (noise); EB should hold while fast.
	if d := p.Plan(nil, fcfg, ev, sim.DefaultRoad()); d.Mode != ModeEmergencyBrake {
		t.Errorf("mode = %v, want EB latched", d.Mode)
	}
}

func TestPIDSmoothsStep(t *testing.T) {
	pid := NewPID()
	first := pid.Update(3, sim.DT)
	if first >= 3 {
		t.Errorf("first output %v should not jump to setpoint", first)
	}
	var out float64
	for i := 0; i < 60; i++ {
		out = pid.Update(3, sim.DT)
	}
	if math.Abs(out-3) > 0.3 {
		t.Errorf("converged output = %v, want ~3", out)
	}
}

func TestPIDOverrideAndReset(t *testing.T) {
	pid := NewPID()
	pid.Update(2, sim.DT)
	if got := pid.Override(-7); got != -7 {
		t.Errorf("Override = %v", got)
	}
	if pid.Output() != -7 {
		t.Errorf("Output = %v", pid.Output())
	}
	pid.Reset()
	if pid.Output() != 0 {
		t.Errorf("after Reset Output = %v", pid.Output())
	}
}

func BenchmarkPlan(b *testing.B) {
	p := New(DefaultConfig(sim.Kph(45)))
	fcfg := fusion.DefaultConfig()
	ev := sim.DefaultEV()
	ev.Speed = 12.5
	objs := []fusion.Object{
		{ID: 1, Class: sim.ClassVehicle, Rel: geom.V(40, 0), Vel: geom.V(-5, 0), Size: sim.SizeCar, Confidence: 1},
		{ID: 2, Class: sim.ClassPedestrian, Rel: geom.V(30, 4), Vel: geom.V(-12.5, 0), Size: sim.SizePedestrian, Confidence: 1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Plan(objs, fcfg, ev, sim.DefaultRoad())
	}
}
