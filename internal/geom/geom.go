// Package geom provides the 2-D geometric primitives shared by the
// simulator, the sensor models and the perception stack: vectors,
// axis-aligned rectangles, and the IoU metric used for detector
// characterization and Hungarian matching.
//
// Conventions: the world frame is metric, x is the EV's longitudinal
// direction of travel and y is lateral (positive to the EV's right).
// Image-space rectangles use pixel units with the origin at the top-left
// corner.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D vector. It is used both for metric world coordinates
// (meters) and for image coordinates (pixels); the containing type
// documents which.
type Vec2 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Norm() }

// Unit returns the unit vector in the direction of v, or the zero vector
// if v has (near-)zero length.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n < 1e-12 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v and o; t=0 yields v, t=1 yields o.
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Rect is an axis-aligned rectangle described by its min corner and its
// extent. Width and height must be non-negative for a valid rectangle;
// an empty Rect has zero area.
type Rect struct {
	Min Vec2    `json:"min"`
	W   float64 `json:"w"`
	H   float64 `json:"h"`
}

// R constructs a Rect from its min corner and extent.
func R(x, y, w, h float64) Rect { return Rect{Min: Vec2{x, y}, W: w, H: h} }

// RectFromCenter constructs a Rect centered at c with extent (w, h).
func RectFromCenter(c Vec2, w, h float64) Rect {
	return Rect{Min: Vec2{c.X - w/2, c.Y - h/2}, W: w, H: h}
}

// Max returns the max corner of r.
func (r Rect) Max() Vec2 { return Vec2{r.Min.X + r.W, r.Min.Y + r.H} }

// Center returns the center point of r.
func (r Rect) Center() Vec2 { return Vec2{r.Min.X + r.W/2, r.Min.Y + r.H/2} }

// Area returns the area of r (zero for degenerate rectangles).
func (r Rect) Area() float64 {
	if r.W <= 0 || r.H <= 0 {
		return 0
	}
	return r.W * r.H
}

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.Area() == 0 }

// Translate returns r shifted by d.
func (r Rect) Translate(d Vec2) Rect {
	return Rect{Min: r.Min.Add(d), W: r.W, H: r.H}
}

// Contains reports whether p lies inside r (inclusive of the min edge,
// exclusive of the max edge, the raster convention).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X < r.Min.X+r.W && p.Y >= r.Min.Y && p.Y < r.Min.Y+r.H
}

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x1 := math.Max(r.Min.X, o.Min.X)
	y1 := math.Max(r.Min.Y, o.Min.Y)
	x2 := math.Min(r.Min.X+r.W, o.Min.X+o.W)
	y2 := math.Min(r.Min.Y+r.H, o.Min.Y+o.H)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{Min: Vec2{x1, y1}, W: x2 - x1, H: y2 - y1}
}

// Union returns the smallest rectangle containing both r and o. If one
// of the rectangles is empty, the other is returned.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	x1 := math.Min(r.Min.X, o.Min.X)
	y1 := math.Min(r.Min.Y, o.Min.Y)
	x2 := math.Max(r.Min.X+r.W, o.Min.X+o.W)
	y2 := math.Max(r.Min.Y+r.H, o.Min.Y+o.H)
	return Rect{Min: Vec2{x1, y1}, W: x2 - x1, H: y2 - y1}
}

// IoU returns the intersection-over-union of r and o, the bbox accuracy
// metric defined in footnote 3 of the paper. It is 0 for disjoint or
// degenerate boxes and 1 for identical boxes.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f %.2fx%.2f]", r.Min.X, r.Min.Y, r.W, r.H)
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sign returns -1, 0 or +1 according to the sign of x.
func Sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
