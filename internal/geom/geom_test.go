package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecOps(t *testing.T) {
	tests := []struct {
		name string
		got  Vec2
		want Vec2
	}{
		{"add", V(1, 2).Add(V(3, -1)), V(4, 1)},
		{"sub", V(1, 2).Sub(V(3, -1)), V(-2, 3)},
		{"scale", V(1, 2).Scale(2.5), V(2.5, 5)},
		{"lerp-mid", V(0, 0).Lerp(V(2, 4), 0.5), V(1, 2)},
		{"lerp-zero", V(1, 1).Lerp(V(2, 4), 0), V(1, 1)},
		{"lerp-one", V(1, 1).Lerp(V(2, 4), 1), V(2, 4)},
		{"unit-zero", V(0, 0).Unit(), V(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEqual(tt.got.X, tt.want.X) || !almostEqual(tt.got.Y, tt.want.Y) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecNormDot(t *testing.T) {
	if got := V(3, 4).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V(1, 2).Dot(V(3, 4)); !almostEqual(got, 11) {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := V(3, 4).Dist(V(0, 0)); !almostEqual(got, 5) {
		t.Errorf("Dist = %v, want 5", got)
	}
	u := V(3, 4).Unit()
	if !almostEqual(u.Norm(), 1) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
}

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 3, 4)
	if got := r.Area(); !almostEqual(got, 12) {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Center(); !almostEqual(got.X, 2.5) || !almostEqual(got.Y, 4) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Max(); !almostEqual(got.X, 4) || !almostEqual(got.Y, 6) {
		t.Errorf("Max = %v", got)
	}
	c := RectFromCenter(V(0, 0), 2, 4)
	if !almostEqual(c.Min.X, -1) || !almostEqual(c.Min.Y, -2) {
		t.Errorf("RectFromCenter min = %v", c.Min)
	}
	if !r.Contains(V(1, 2)) {
		t.Error("Contains should include min corner")
	}
	if r.Contains(V(4, 6)) {
		t.Error("Contains should exclude max corner")
	}
	tr := r.Translate(V(1, -1))
	if !almostEqual(tr.Min.X, 2) || !almostEqual(tr.Min.Y, 1) {
		t.Errorf("Translate = %v", tr)
	}
}

func TestRectDegenerate(t *testing.T) {
	if !R(0, 0, 0, 5).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if !R(0, 0, 5, -1).Empty() {
		t.Error("negative-height rect should be empty")
	}
	if got := R(0, 0, 0, 5).IoU(R(0, 0, 1, 1)); got != 0 {
		t.Errorf("IoU with empty rect = %v, want 0", got)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 4, 4)
	inter := a.Intersect(b)
	if !almostEqual(inter.Area(), 4) {
		t.Errorf("Intersect area = %v, want 4", inter.Area())
	}
	u := a.Union(b)
	if !almostEqual(u.Area(), 36) {
		t.Errorf("Union area = %v, want 36", u.Area())
	}
	if got := a.Intersect(R(10, 10, 1, 1)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union a = %v, want %v", got, a)
	}
}

func TestIoU(t *testing.T) {
	tests := []struct {
		name string
		a, b Rect
		want float64
	}{
		{"identical", R(0, 0, 2, 2), R(0, 0, 2, 2), 1},
		{"disjoint", R(0, 0, 1, 1), R(5, 5, 1, 1), 0},
		{"half-overlap", R(0, 0, 2, 2), R(1, 0, 2, 2), 2.0 / 6.0},
		{"contained", R(0, 0, 4, 4), R(1, 1, 2, 2), 4.0 / 16.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.IoU(tt.b); !almostEqual(got, tt.want) {
				t.Errorf("IoU = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: IoU is symmetric, bounded in [0,1], and exactly 1 only for
// rectangles that coincide.
func TestIoUProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := R(float64(ax), float64(ay), float64(aw%32)+1, float64(ah%32)+1)
		b := R(float64(bx), float64(by), float64(bw%32)+1, float64(bh%32)+1)
		ab, ba := a.IoU(b), b.IoU(a)
		if !almostEqual(ab, ba) {
			return false
		}
		return ab >= 0 && ab <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: translating both rectangles by the same vector preserves IoU.
func TestIoUTranslationInvariant(t *testing.T) {
	f := func(ax, ay, bx, by, dx, dy int8) bool {
		a := R(float64(ax), float64(ay), 10, 6)
		b := R(float64(bx), float64(by), 8, 8)
		d := V(float64(dx), float64(dy))
		return almostEqual(a.IoU(b), a.Translate(d).IoU(b.Translate(d)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampSign(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp in-range = %v", got)
	}
	if Sign(3) != 1 || Sign(-2) != -1 || Sign(0) != 0 {
		t.Error("Sign wrong")
	}
}
