package scenario

import (
	"reflect"
	"testing"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// This file preserves the original hand-coded scenario builders
// verbatim (as legacyDS1..legacyDS5) and proves that the declarative
// registry specs replay them bit for bit: same RNG consumption order,
// same float arithmetic, same actor IDs, same behavior values. Any
// drift in the scenegen compiler or the built-in specs fails here.

func legacyJitter(rng *stats.RNG, base, spread float64) float64 {
	if rng == nil || spread == 0 {
		return base
	}
	return base + rng.Uniform(-spread, spread)
}

func legacyEVWorld(evSpeed float64) *sim.World {
	ev := sim.DefaultEV()
	ev.Speed = evSpeed
	return sim.NewWorld(sim.DefaultRoad(), ev)
}

func legacyDS1(rng *stats.RNG) *Scenario {
	w := legacyEVWorld(legacyJitter(rng, sim.Kph(45), sim.Kph(1.5)))
	tvSpeed := legacyJitter(rng, sim.Kph(25), sim.Kph(1.5))
	gap := legacyJitter(rng, 60, 5)
	tv := &sim.Actor{
		Class:    sim.ClassVehicle,
		Pos:      geom.V(gap, 0),
		Size:     sim.SizeSUV,
		Behavior: &sim.Cruise{Speed: tvSpeed},
	}
	id := w.AddActor(tv)
	return &Scenario{
		ID: DS1, Name: "DS-1", World: w,
		TargetID: id, TargetClass: sim.ClassVehicle,
		CruiseSpeed: sim.Kph(45), Duration: 40,
	}
}

func legacyDS2(rng *stats.RNG) *Scenario {
	w := legacyEVWorld(legacyJitter(rng, sim.Kph(45), sim.Kph(1.5)))
	start := legacyJitter(rng, 90, 6)
	trigger := legacyJitter(rng, 47, 4)
	speed := legacyJitter(rng, 1.4, 0.15)
	ped := &sim.Actor{
		Class: sim.ClassPedestrian,
		Pos:   geom.V(start, 6),
		Size:  sim.SizePedestrian,
		Behavior: &sim.TriggeredCross{
			TriggerGap: trigger,
			CrossSpeed: speed,
			ToY:        -6,
		},
	}
	id := w.AddActor(ped)
	return &Scenario{
		ID: DS2, Name: "DS-2", World: w,
		TargetID: id, TargetClass: sim.ClassPedestrian,
		CruiseSpeed: sim.Kph(45), Duration: 30,
	}
}

func legacyDS3(rng *stats.RNG) *Scenario {
	w := legacyEVWorld(legacyJitter(rng, sim.Kph(45), sim.Kph(1.5)))
	pos := legacyJitter(rng, 75, 8)
	tv := &sim.Actor{
		Class:    sim.ClassVehicle,
		Pos:      geom.V(pos, 3.5),
		Size:     sim.SizeCar,
		Behavior: sim.Parked{},
	}
	id := w.AddActor(tv)
	return &Scenario{
		ID: DS3, Name: "DS-3", World: w,
		TargetID: id, TargetClass: sim.ClassVehicle,
		CruiseSpeed: sim.Kph(45), Duration: 20,
	}
}

func legacyDS4(rng *stats.RNG) *Scenario {
	w := legacyEVWorld(legacyJitter(rng, sim.Kph(45), sim.Kph(1.5)))
	pos := legacyJitter(rng, 80, 8)
	ped := &sim.Actor{
		Class: sim.ClassPedestrian,
		Pos:   geom.V(pos, 3.3),
		Size:  sim.SizePedestrian,
		Behavior: &sim.WalkThenStop{
			Speed:    legacyJitter(rng, 1.2, 0.2),
			Distance: 5,
		},
	}
	id := w.AddActor(ped)
	return &Scenario{
		ID: DS4, Name: "DS-4", World: w,
		TargetID: id, TargetClass: sim.ClassPedestrian,
		CruiseSpeed: sim.Kph(45), Duration: 20,
	}
}

func legacyDS5(rng *stats.RNG) *Scenario {
	s := legacyDS1(rng)
	s.ID, s.Name = DS5, "DS-5"
	w := s.World
	n := 3
	if rng != nil {
		n += rng.IntN(3)
	}
	for i := 0; i < n; i++ {
		x := legacyJitter(rng, 120+40*float64(i), 25)
		speed := -legacyJitter(rng, sim.Kph(35), sim.Kph(10))
		w.AddActor(&sim.Actor{
			Class:    sim.ClassVehicle,
			Pos:      geom.V(x, -3.5),
			Size:     sim.SizeCar,
			Behavior: &sim.Cruise{Speed: speed},
		})
	}
	for i := 0; i < 2; i++ {
		w.AddActor(&sim.Actor{
			Class:    sim.ClassVehicle,
			Pos:      geom.V(legacyJitter(rng, 110+45*float64(i), 15), 0),
			Size:     sim.SizeCar,
			Behavior: &sim.SafeCruise{Speed: legacyJitter(rng, sim.Kph(28), sim.Kph(4))},
		})
	}
	w.AddActor(&sim.Actor{
		Class: sim.ClassVehicle,
		Pos:   geom.V(legacyJitter(rng, -45, 8), 0),
		Size:  sim.SizeCar,
		Behavior: &sim.SafeCruise{
			Speed: legacyJitter(rng, sim.Kph(35), sim.Kph(5)),
		},
	})
	return s
}

func TestRegistryBuildsMatchLegacyBuilders(t *testing.T) {
	legacy := map[ID]func(*stats.RNG) *Scenario{
		DS1: legacyDS1,
		DS2: legacyDS2,
		DS3: legacyDS3,
		DS4: legacyDS4,
		DS5: legacyDS5,
	}
	for _, id := range All() {
		build := legacy[id]
		// Seed -1 stands for the nominal nil-RNG build; the positive
		// seeds exercise the jittered paths (including DS-5's random
		// traffic count).
		for seed := int64(-1); seed < 40; seed++ {
			var wantRNG, gotRNG *stats.RNG
			if seed >= 0 {
				wantRNG, gotRNG = stats.NewRNG(seed), stats.NewRNG(seed)
			}
			want := build(wantRNG)
			got, err := Build(id, gotRNG)
			if err != nil {
				t.Fatalf("%v seed %d: %v", id, seed, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v seed %d: registry build differs from legacy builder\n got %+v\nwant %+v",
					id, seed, got, want)
			}
			// The RNG streams must also be left in the same state, so
			// downstream consumers of a shared stream stay aligned.
			if wantRNG != nil && wantRNG.Float64() != gotRNG.Float64() {
				t.Fatalf("%v seed %d: builders consumed different amounts of randomness", id, seed)
			}
		}
	}
}
