package scenario

import (
	"fmt"

	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/stats"
)

// Arena is the reusable instantiation state for one episode lane: a
// scenegen compilation arena plus a recycled Scenario header. Episodes
// that run back to back on a lane instantiate their scenarios into the
// same arena, which removes per-episode world construction from the
// allocator entirely. The returned Scenario (and its world) are valid
// until the next instantiation; an arena serves one lane at a time.
type Arena struct {
	gen scenegen.Arena
	sc  Scenario
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// ArenaSource is implemented by Sources that can instantiate into an
// arena instead of allocating. All built-in sources (IDs, specs, named
// registry entries, generators) implement it; the experiment harness
// falls back to plain Instantiate for Sources that do not.
type ArenaSource interface {
	Source
	// InstantiateInto is Instantiate with the allocations routed into
	// ar. It must draw the identical rng stream and produce a
	// bit-identical world.
	InstantiateInto(ar *Arena, rng *stats.RNG) (*Scenario, error)
}

// InstantiateSource builds a scenario from src, routing allocations
// into ar when both the arena and the source support it. This is the
// single instantiation entry point for episode runners.
func InstantiateSource(src Source, ar *Arena, rng *stats.RNG) (*Scenario, error) {
	if as, ok := src.(ArenaSource); ok && ar != nil {
		return as.InstantiateInto(ar, rng)
	}
	return src.Instantiate(rng)
}

// fromCompiled recycles the arena's Scenario header around a compiled
// world — the pooled counterpart of FromCompiled.
func (ar *Arena) fromCompiled(c *scenegen.Compiled) *Scenario {
	ar.sc = Scenario{
		ID:          idFromName(c.Name),
		Name:        c.Name,
		World:       c.World,
		TargetID:    c.TargetID,
		TargetClass: c.TargetClass,
		CruiseSpeed: c.CruiseSpeed,
		Duration:    c.Duration,
	}
	return &ar.sc
}

// InstantiateInto implements ArenaSource.
func (id ID) InstantiateInto(ar *Arena, rng *stats.RNG) (*Scenario, error) {
	if id < DS1 || id > DS5 {
		return nil, fmt.Errorf("scenario: unknown scenario %s", id)
	}
	spec, ok := scenegen.Lookup(dsNames[id-DS1])
	if !ok {
		return nil, fmt.Errorf("scenario: registry is missing built-in %s", id)
	}
	c, err := ar.gen.Compile(spec, rng)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return ar.fromCompiled(c), nil
}

// InstantiateInto implements ArenaSource.
func (s specSource) InstantiateInto(ar *Arena, rng *stats.RNG) (*Scenario, error) {
	c, err := ar.gen.Compile(s.spec, rng)
	if err != nil {
		return nil, err
	}
	return ar.fromCompiled(c), nil
}

// InstantiateInto implements ArenaSource.
func (n namedSource) InstantiateInto(ar *Arena, rng *stats.RNG) (*Scenario, error) {
	spec, ok := scenegen.Lookup(string(n))
	if !ok {
		return nil, fmt.Errorf("scenario: no registered scenario %q (have %v)", string(n), scenegen.Names())
	}
	c, err := ar.gen.Compile(spec, rng)
	if err != nil {
		return nil, err
	}
	return ar.fromCompiled(c), nil
}

// InstantiateInto implements ArenaSource. The generated spec itself is
// still sampled fresh (the generator's output is a new Spec each call);
// only the compiled world recycles through the arena.
func (g genSource) InstantiateInto(ar *Arena, rng *stats.RNG) (*Scenario, error) {
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	spec, err := g.gen.Generate(rng, "generated")
	if err != nil {
		return nil, err
	}
	c, err := ar.gen.Compile(spec, nil)
	if err != nil {
		return nil, err
	}
	return ar.fromCompiled(c), nil
}
