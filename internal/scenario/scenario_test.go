package scenario

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func TestBuildAll(t *testing.T) {
	for _, id := range All() {
		s, err := Build(id, nil)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if s.ID != id {
			t.Errorf("%v: ID = %v", id, s.ID)
		}
		if s.World == nil || len(s.World.Actors) == 0 {
			t.Fatalf("%v: empty world", id)
		}
		if s.World.Actor(s.TargetID) == nil {
			t.Errorf("%v: target %d not in world", id, s.TargetID)
		}
		if s.Frames() <= 0 {
			t.Errorf("%v: no frames", id)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build(ID(99), nil); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestDS1Structure(t *testing.T) {
	s := BuildDS1(nil)
	tv := s.World.Actor(s.TargetID)
	if tv.Class != sim.ClassVehicle {
		t.Errorf("target class = %v", tv.Class)
	}
	if math.Abs(tv.Pos.X-60) > 1e-9 || tv.Pos.Y != 0 {
		t.Errorf("TV pos = %v", tv.Pos)
	}
	if math.Abs(s.World.EV.Speed-sim.Kph(45)) > 1e-9 {
		t.Errorf("EV speed = %v", s.World.EV.Speed)
	}
}

func TestDS2PedestrianCrossesEVLane(t *testing.T) {
	s := BuildDS2(nil)
	ped := s.World.Actor(s.TargetID)
	if ped.Class != sim.ClassPedestrian {
		t.Fatalf("target class = %v", ped.Class)
	}
	// Drive the EV at constant speed (no ADS) and verify the pedestrian
	// eventually enters the EV corridor — the scripted conflict exists.
	entered := false
	for i := 0; i < s.Frames() && !s.World.Halted; i++ {
		s.World.Step(0)
		if s.World.Road.InEVCorridor(ped.Pos.Y, ped.Size.Width, s.World.EV.Size.Width) {
			entered = true
			break
		}
	}
	if !entered {
		t.Fatal("pedestrian never entered the EV corridor")
	}
}

func TestDS3ParkedOutOfCorridor(t *testing.T) {
	s := BuildDS3(nil)
	tv := s.World.Actor(s.TargetID)
	if s.World.Road.InEVCorridor(tv.Pos.Y, tv.Size.Width, s.World.EV.Size.Width) {
		t.Fatal("parked TV must start outside the EV corridor")
	}
}

func TestDS4PedestrianStops(t *testing.T) {
	s := BuildDS4(nil)
	ped := s.World.Actor(s.TargetID)
	startX := ped.Pos.X
	for i := 0; i < s.Frames(); i++ {
		s.World.Step(0)
	}
	if walked := startX - ped.Pos.X; math.Abs(walked-5) > 0.3 {
		t.Errorf("pedestrian walked %v m, want ~5", walked)
	}
}

func TestDS5HasNPCs(t *testing.T) {
	s := BuildDS5(stats.NewRNG(1))
	if len(s.World.Actors) < 5 {
		t.Fatalf("DS-5 actors = %d, want >= 5", len(s.World.Actors))
	}
	opposite := 0
	for _, a := range s.World.Actors {
		if a.Pos.Y < -1 {
			opposite++
		}
	}
	if opposite < 3 {
		t.Errorf("opposite-lane NPCs = %d, want >= 3", opposite)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := BuildDS1(stats.NewRNG(seed))
		b := BuildDS1(stats.NewRNG(seed))
		tvA, tvB := a.World.Actor(a.TargetID), b.World.Actor(b.TargetID)
		if tvA.Pos != tvB.Pos {
			t.Fatal("same seed must give same scenario")
		}
		if tvA.Pos.X < 55 || tvA.Pos.X > 65 {
			t.Errorf("TV gap %v outside jitter bounds", tvA.Pos.X)
		}
		if a.World.EV.Speed < sim.Kph(43) || a.World.EV.Speed > sim.Kph(47) {
			t.Errorf("EV speed %v outside jitter bounds", a.World.EV.Speed)
		}
	}
}

func TestNilJitterIsNominal(t *testing.T) {
	a, b := BuildDS2(nil), BuildDS2(nil)
	if a.World.Actor(a.TargetID).Pos != b.World.Actor(b.TargetID).Pos {
		t.Fatal("nil-jitter scenarios must be identical")
	}
}
