package scenario

import (
	"math"
	"reflect"
	"testing"

	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func TestBuildAll(t *testing.T) {
	for _, id := range All() {
		s, err := Build(id, nil)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if s.ID != id {
			t.Errorf("%v: ID = %v", id, s.ID)
		}
		if s.World == nil || len(s.World.Actors) == 0 {
			t.Fatalf("%v: empty world", id)
		}
		if s.World.Actor(s.TargetID) == nil {
			t.Errorf("%v: target %d not in world", id, s.TargetID)
		}
		if s.Frames() <= 0 {
			t.Errorf("%v: no frames", id)
		}
	}
}

// TestUnknownIDFormatting pins the shared unknown-ID style: String()
// renders DS-?(n) and Build's error embeds exactly that rendering.
func TestUnknownIDFormatting(t *testing.T) {
	cases := []struct {
		id       ID
		str      string
		buildErr string
	}{
		{0, "DS-?(0)", "scenario: unknown scenario DS-?(0)"},
		{-3, "DS-?(-3)", "scenario: unknown scenario DS-?(-3)"},
		{6, "DS-?(6)", "scenario: unknown scenario DS-?(6)"},
		{99, "DS-?(99)", "scenario: unknown scenario DS-?(99)"},
	}
	for _, tc := range cases {
		if got := tc.id.String(); got != tc.str {
			t.Errorf("ID(%d).String() = %q, want %q", int(tc.id), got, tc.str)
		}
		_, err := Build(tc.id, nil)
		if err == nil {
			t.Fatalf("Build(%d) succeeded, want error", int(tc.id))
		}
		if err.Error() != tc.buildErr {
			t.Errorf("Build(%d) error = %q, want %q", int(tc.id), err.Error(), tc.buildErr)
		}
	}
	for _, id := range All() {
		if _, err := Build(id, nil); err != nil {
			t.Errorf("Build(%v) = %v, want success", id, err)
		}
	}
}

func TestDS1Structure(t *testing.T) {
	s := BuildDS1(nil)
	tv := s.World.Actor(s.TargetID)
	if tv.Class != sim.ClassVehicle {
		t.Errorf("target class = %v", tv.Class)
	}
	if math.Abs(tv.Pos.X-60) > 1e-9 || tv.Pos.Y != 0 {
		t.Errorf("TV pos = %v", tv.Pos)
	}
	if math.Abs(s.World.EV.Speed-sim.Kph(45)) > 1e-9 {
		t.Errorf("EV speed = %v", s.World.EV.Speed)
	}
}

func TestDS2PedestrianCrossesEVLane(t *testing.T) {
	s := BuildDS2(nil)
	ped := s.World.Actor(s.TargetID)
	if ped.Class != sim.ClassPedestrian {
		t.Fatalf("target class = %v", ped.Class)
	}
	// Drive the EV at constant speed (no ADS) and verify the pedestrian
	// eventually enters the EV corridor — the scripted conflict exists.
	entered := false
	for i := 0; i < s.Frames() && !s.World.Halted; i++ {
		s.World.Step(0)
		if s.World.Road.InEVCorridor(ped.Pos.Y, ped.Size.Width, s.World.EV.Size.Width) {
			entered = true
			break
		}
	}
	if !entered {
		t.Fatal("pedestrian never entered the EV corridor")
	}
}

func TestDS3ParkedOutOfCorridor(t *testing.T) {
	s := BuildDS3(nil)
	tv := s.World.Actor(s.TargetID)
	if s.World.Road.InEVCorridor(tv.Pos.Y, tv.Size.Width, s.World.EV.Size.Width) {
		t.Fatal("parked TV must start outside the EV corridor")
	}
}

func TestDS4PedestrianStops(t *testing.T) {
	s := BuildDS4(nil)
	ped := s.World.Actor(s.TargetID)
	startX := ped.Pos.X
	for i := 0; i < s.Frames(); i++ {
		s.World.Step(0)
	}
	if walked := startX - ped.Pos.X; math.Abs(walked-5) > 0.3 {
		t.Errorf("pedestrian walked %v m, want ~5", walked)
	}
}

func TestDS5HasNPCs(t *testing.T) {
	s := BuildDS5(stats.NewRNG(1))
	if len(s.World.Actors) < 5 {
		t.Fatalf("DS-5 actors = %d, want >= 5", len(s.World.Actors))
	}
	opposite := 0
	for _, a := range s.World.Actors {
		if a.Pos.Y < -1 {
			opposite++
		}
	}
	if opposite < 3 {
		t.Errorf("opposite-lane NPCs = %d, want >= 3", opposite)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := BuildDS1(stats.NewRNG(seed))
		b := BuildDS1(stats.NewRNG(seed))
		tvA, tvB := a.World.Actor(a.TargetID), b.World.Actor(b.TargetID)
		if tvA.Pos != tvB.Pos {
			t.Fatal("same seed must give same scenario")
		}
		if tvA.Pos.X < 55 || tvA.Pos.X > 65 {
			t.Errorf("TV gap %v outside jitter bounds", tvA.Pos.X)
		}
		if a.World.EV.Speed < sim.Kph(43) || a.World.EV.Speed > sim.Kph(47) {
			t.Errorf("EV speed %v outside jitter bounds", a.World.EV.Speed)
		}
	}
}

func TestNilJitterIsNominal(t *testing.T) {
	a, b := BuildDS2(nil), BuildDS2(nil)
	if a.World.Actor(a.TargetID).Pos != b.World.Actor(b.TargetID).Pos {
		t.Fatal("nil-jitter scenarios must be identical")
	}
}

// TestSources covers the Source implementations: IDs, named registry
// lookups, in-memory specs and the procedural generator all produce
// runnable scenarios, and equal seeds give equal worlds.
func TestSources(t *testing.T) {
	srcs := []Source{
		DS2,
		Named("DS-2"),
		FromSpec(scenegen.DS2Spec()),
		FromGenerator(scenegen.NewGenerator(scenegen.DefaultSpace())),
	}
	for _, src := range srcs {
		if src.Label() == "" {
			t.Errorf("%T: empty label", src)
		}
		a, err := src.Instantiate(stats.NewRNG(11))
		if err != nil {
			t.Fatalf("%s: %v", src.Label(), err)
		}
		b, err := src.Instantiate(stats.NewRNG(11))
		if err != nil {
			t.Fatalf("%s: %v", src.Label(), err)
		}
		if a.World.Actor(a.TargetID) == nil {
			t.Errorf("%s: target missing", src.Label())
		}
		if a.Frames() <= 0 {
			t.Errorf("%s: no frames", src.Label())
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed gave different scenarios", src.Label())
		}
	}
	// ID, Named and FromSpec views of DS-2 agree with each other too.
	want, _ := DS2.Instantiate(stats.NewRNG(4))
	for _, src := range srcs[1:3] {
		got, err := src.Instantiate(stats.NewRNG(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: differs from Build(DS2)", src.Label())
		}
	}
	if _, err := Named("no-such-scenario").Instantiate(nil); err == nil {
		t.Error("unknown name must fail to instantiate")
	}
}

// TestArenaInstantiateBitIdentical: every built-in source kind must
// produce a world through the arena path that is deep-equal to the
// allocating path from the same rng stream — including correct reset of
// behavior progress state when an arena is reused across scenarios.
func TestArenaInstantiateBitIdentical(t *testing.T) {
	sources := []Source{DS1, DS2, DS3, DS4, DS5, Named("DS-5")}
	ar := NewArena()
	for round := 0; round < 3; round++ { // reuse the arena across all sources
		for _, src := range sources {
			as, ok := src.(ArenaSource)
			if !ok {
				t.Fatalf("%s does not implement ArenaSource", src.Label())
			}
			seed := int64(round*100 + 7)
			want, err := src.Instantiate(stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			got, err := as.InstantiateInto(ar, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != want.ID || got.Name != want.Name || got.TargetID != want.TargetID ||
				got.TargetClass != want.TargetClass || got.CruiseSpeed != want.CruiseSpeed ||
				got.Duration != want.Duration {
				t.Fatalf("%s round %d: header mismatch: got %+v want %+v", src.Label(), round, got, want)
			}
			if !reflect.DeepEqual(got.World.Road, want.World.Road) || got.World.EV != want.World.EV {
				t.Fatalf("%s round %d: road/EV mismatch", src.Label(), round)
			}
			if len(got.World.Actors) != len(want.World.Actors) {
				t.Fatalf("%s round %d: %d actors, want %d", src.Label(), round, len(got.World.Actors), len(want.World.Actors))
			}
			for i, ga := range got.World.Actors {
				wa := want.World.Actors[i]
				if ga.ID != wa.ID || ga.Class != wa.Class || ga.Pos != wa.Pos || ga.Vel != wa.Vel || ga.Size != wa.Size {
					t.Fatalf("%s round %d actor %d: got %+v want %+v", src.Label(), round, i, ga, wa)
				}
				if !reflect.DeepEqual(ga.Behavior, wa.Behavior) {
					t.Fatalf("%s round %d actor %d behavior: got %#v want %#v", src.Label(), round, i, ga.Behavior, wa.Behavior)
				}
			}
		}
	}
}

// TestArenaInstantiateSteadyStateAllocs: after warmup, instantiating a
// built-in scenario into an arena must be allocation-free.
func TestArenaInstantiateSteadyStateAllocs(t *testing.T) {
	ar := NewArena()
	rng := stats.NewRNG(1)
	if _, err := DS5.InstantiateInto(ar, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := DS5.InstantiateInto(ar, rng); err != nil {
			t.Fatal(err)
		}
	})
	// DS-5's CountExtra draws a variable NPC count, so later rounds can
	// grow the pools past the warmup high-water mark once; allow a hair
	// above zero rather than pinning the variable-count growth path.
	if allocs > 1 {
		t.Fatalf("steady-state arena instantiate allocates %.1f times, want ~0", allocs)
	}
}
