package scenario

import (
	"fmt"

	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/stats"
)

// Source is anything that can instantiate a scenario for an episode: a
// paper ID, a named registry spec, an in-memory spec (e.g. loaded from
// a JSON file) or a procedural generator. The experiment harness takes
// a Source wherever it used to take an ID; ID itself implements Source,
// so existing call sites pass IDs unchanged.
//
// Instantiate draws every random choice from rng, so one episode seed
// maps to exactly one world regardless of worker scheduling. Sources
// are shared across concurrent episodes and must be stateless.
type Source interface {
	// Label names the source in reports and error messages.
	Label() string
	// Instantiate builds a fresh scenario; rng may be nil for the
	// nominal variant where the source supports one.
	Instantiate(rng *stats.RNG) (*Scenario, error)
}

// Label implements Source.
func (id ID) Label() string { return id.String() }

// Instantiate implements Source.
func (id ID) Instantiate(rng *stats.RNG) (*Scenario, error) { return Build(id, rng) }

// FromSpec returns a Source that compiles the given spec each episode.
// The spec is shared, not copied; it must not be mutated afterwards.
func FromSpec(spec *scenegen.Spec) Source { return specSource{spec} }

type specSource struct{ spec *scenegen.Spec }

func (s specSource) Label() string { return s.spec.Name }

func (s specSource) Instantiate(rng *stats.RNG) (*Scenario, error) {
	c, err := scenegen.Compile(s.spec, rng)
	if err != nil {
		return nil, err
	}
	return FromCompiled(c), nil
}

// Named returns a Source that resolves name in the scenegen registry at
// instantiation time.
func Named(name string) Source { return namedSource(name) }

type namedSource string

func (n namedSource) Label() string { return string(n) }

func (n namedSource) Instantiate(rng *stats.RNG) (*Scenario, error) {
	spec, ok := scenegen.Lookup(string(n))
	if !ok {
		return nil, fmt.Errorf("scenario: no registered scenario %q (have %v)", string(n), scenegen.Names())
	}
	c, err := scenegen.Compile(spec, rng)
	if err != nil {
		return nil, err
	}
	return FromCompiled(c), nil
}

// FromGenerator returns a Source that samples a fresh procedural
// scenario from gen on every instantiation — each episode seed yields a
// different world from the generator's space, which is what a
// scenario-diversity campaign sweeps over.
func FromGenerator(gen *scenegen.Generator) Source { return genSource{gen} }

type genSource struct{ gen *scenegen.Generator }

func (g genSource) Label() string { return "generated" }

func (g genSource) Instantiate(rng *stats.RNG) (*Scenario, error) {
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	spec, err := g.gen.Generate(rng, "generated")
	if err != nil {
		return nil, err
	}
	c, err := scenegen.Compile(spec, nil)
	if err != nil {
		return nil, err
	}
	return FromCompiled(c), nil
}
