// Package scenario builds the five driving scenarios of the paper's
// §V-C (Fig. 4) on the simulator: DS-1 (vehicle following), DS-2
// (jaywalking pedestrian), DS-3 (parked vehicle), DS-4 (pedestrian
// walking toward the EV in the parking lane) and DS-5 (mixed traffic,
// the random-attack baseline scenario).
//
// All scenarios run on a 50 kph road with the EV cruising at 45 kph,
// as in the paper. A builder accepts an optional jitter RNG; the
// experiment harness uses it to vary initial conditions across runs the
// way distinct LGSVL episodes would.
package scenario

import (
	"fmt"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// ID enumerates the paper's driving scenarios.
type ID int

// Driving scenarios DS-1 through DS-5.
const (
	DS1 ID = iota + 1
	DS2
	DS3
	DS4
	DS5
)

// String implements fmt.Stringer.
func (id ID) String() string {
	if id < DS1 || id > DS5 {
		return fmt.Sprintf("DS-?(%d)", int(id))
	}
	return fmt.Sprintf("DS-%d", int(id))
}

// Scenario is a ready-to-run simulation plus the metadata the
// experiment harness needs.
type Scenario struct {
	ID          ID
	Name        string
	World       *sim.World
	TargetID    sim.ActorID // the scripted target object (TO)
	TargetClass sim.Class
	CruiseSpeed float64 // EV target speed handed to the planner (m/s)
	Duration    float64 // seconds to simulate
}

// Frames returns the scenario length in camera frames.
func (s *Scenario) Frames() int { return int(s.Duration * sim.CameraHz) }

// jitter returns base plus a uniform perturbation in [-spread, +spread],
// or base when rng is nil (deterministic nominal scenario).
func jitter(rng *stats.RNG, base, spread float64) float64 {
	if rng == nil || spread == 0 {
		return base
	}
	return base + rng.Uniform(-spread, spread)
}

func newEVWorld(evSpeed float64) *sim.World {
	ev := sim.DefaultEV()
	ev.Speed = evSpeed
	return sim.NewWorld(sim.DefaultRoad(), ev)
}

// Build constructs the scenario with the given ID. rng may be nil for
// the nominal (jitter-free) variant.
func Build(id ID, rng *stats.RNG) (*Scenario, error) {
	switch id {
	case DS1:
		return BuildDS1(rng), nil
	case DS2:
		return BuildDS2(rng), nil
	case DS3:
		return BuildDS3(rng), nil
	case DS4:
		return BuildDS4(rng), nil
	case DS5:
		return BuildDS5(rng), nil
	default:
		return nil, fmt.Errorf("scenario: unknown id %d", int(id))
	}
}

// BuildDS1 is the vehicle-following scenario: a target vehicle cruises
// at 25 kph, 60 m ahead of the EV, in the EV lane. Golden behaviour:
// the EV closes the gap and settles ~20 m behind the TV. Used for the
// Disappear and Move_Out attacks on a vehicle.
func BuildDS1(rng *stats.RNG) *Scenario {
	w := newEVWorld(jitter(rng, sim.Kph(45), sim.Kph(1.5)))
	tvSpeed := jitter(rng, sim.Kph(25), sim.Kph(1.5))
	gap := jitter(rng, 60, 5)
	tv := &sim.Actor{
		Class:    sim.ClassVehicle,
		Pos:      geom.V(gap, 0),
		Size:     sim.SizeSUV,
		Behavior: &sim.Cruise{Speed: tvSpeed},
	}
	id := w.AddActor(tv)
	return &Scenario{
		ID: DS1, Name: "DS-1", World: w,
		TargetID: id, TargetClass: sim.ClassVehicle,
		CruiseSpeed: sim.Kph(45), Duration: 40,
	}
}

// BuildDS2 is the jaywalking-pedestrian scenario: a pedestrian waits at
// the roadside and crosses the street when the EV comes within the
// trigger gap. Golden behaviour: the EV brakes and stops more than 10 m
// away. Used for the Disappear and Move_Out attacks on a pedestrian.
func BuildDS2(rng *stats.RNG) *Scenario {
	w := newEVWorld(jitter(rng, sim.Kph(45), sim.Kph(1.5)))
	start := jitter(rng, 90, 6)
	trigger := jitter(rng, 47, 4)
	speed := jitter(rng, 1.4, 0.15)
	ped := &sim.Actor{
		Class: sim.ClassPedestrian,
		Pos:   geom.V(start, 6),
		Size:  sim.SizePedestrian,
		Behavior: &sim.TriggeredCross{
			TriggerGap: trigger,
			CrossSpeed: speed,
			ToY:        -6,
		},
	}
	id := w.AddActor(ped)
	return &Scenario{
		ID: DS2, Name: "DS-2", World: w,
		TargetID: id, TargetClass: sim.ClassPedestrian,
		CruiseSpeed: sim.Kph(45), Duration: 30,
	}
}

// BuildDS3 is the parked-vehicle scenario: a target vehicle is parked
// in the parking lane. Golden behaviour: the EV keeps its lane and
// speed. Used for the Move_In attack on a vehicle.
func BuildDS3(rng *stats.RNG) *Scenario {
	w := newEVWorld(jitter(rng, sim.Kph(45), sim.Kph(1.5)))
	pos := jitter(rng, 75, 8)
	tv := &sim.Actor{
		Class:    sim.ClassVehicle,
		Pos:      geom.V(pos, 3.5),
		Size:     sim.SizeCar,
		Behavior: sim.Parked{},
	}
	id := w.AddActor(tv)
	return &Scenario{
		ID: DS3, Name: "DS-3", World: w,
		TargetID: id, TargetClass: sim.ClassVehicle,
		CruiseSpeed: sim.Kph(45), Duration: 20,
	}
}

// BuildDS4 is the walking-pedestrian scenario: a pedestrian walks
// longitudinally toward the EV in the parking lane for 5 m, then stands
// still. Golden behaviour: the EV slows to ~35 kph while the pedestrian
// moves, then resumes. Used for the Move_In attack on a pedestrian.
func BuildDS4(rng *stats.RNG) *Scenario {
	w := newEVWorld(jitter(rng, sim.Kph(45), sim.Kph(1.5)))
	pos := jitter(rng, 80, 8)
	ped := &sim.Actor{
		Class: sim.ClassPedestrian,
		Pos:   geom.V(pos, 3.3),
		Size:  sim.SizePedestrian,
		Behavior: &sim.WalkThenStop{
			Speed:    jitter(rng, 1.2, 0.2),
			Distance: 5,
		},
	}
	id := w.AddActor(ped)
	return &Scenario{
		ID: DS4, Name: "DS-4", World: w,
		TargetID: id, TargetClass: sim.ClassPedestrian,
		CruiseSpeed: sim.Kph(45), Duration: 20,
	}
}

// BuildDS5 is the mixed-traffic baseline scenario: the EV follows a
// target vehicle exactly as in DS-1, with additional NPC vehicles at
// random speeds and positions in the opposite lane and behind the EV.
// The random-attack baseline (Table II row DS-5-Baseline-Random) runs
// on this scenario.
func BuildDS5(rng *stats.RNG) *Scenario {
	s := BuildDS1(rng)
	s.ID, s.Name = DS5, "DS-5"
	w := s.World
	n := 3
	if rng != nil {
		n += rng.IntN(3)
	}
	for i := 0; i < n; i++ {
		x := jitter(rng, 120+40*float64(i), 25)
		speed := -jitter(rng, sim.Kph(35), sim.Kph(10))
		w.AddActor(&sim.Actor{
			Class:    sim.ClassVehicle,
			Pos:      geom.V(x, -3.5),
			Size:     sim.SizeCar,
			Behavior: &sim.Cruise{Speed: speed},
		})
	}
	// Farther traffic ahead in the EV lane, beyond the target vehicle.
	for i := 0; i < 2; i++ {
		w.AddActor(&sim.Actor{
			Class:    sim.ClassVehicle,
			Pos:      geom.V(jitter(rng, 110+45*float64(i), 15), 0),
			Size:     sim.SizeCar,
			Behavior: &sim.SafeCruise{Speed: jitter(rng, sim.Kph(28), sim.Kph(4))},
		})
	}
	// One NPC trailing the EV in its own lane; it yields to the EV
	// instead of blindly rear-ending it when the EV brakes.
	w.AddActor(&sim.Actor{
		Class: sim.ClassVehicle,
		Pos:   geom.V(jitter(rng, -45, 8), 0),
		Size:  sim.SizeCar,
		Behavior: &sim.SafeCruise{
			Speed: jitter(rng, sim.Kph(35), sim.Kph(5)),
		},
	})
	return s
}

// All returns all five scenario IDs in order.
func All() []ID { return []ID{DS1, DS2, DS3, DS4, DS5} }
