// Package scenario exposes the driving scenarios the experiments run
// on: the paper's §V-C (Fig. 4) set — DS-1 (vehicle following), DS-2
// (jaywalking pedestrian), DS-3 (parked vehicle), DS-4 (pedestrian
// walking toward the EV in the parking lane), DS-5 (mixed traffic, the
// random-attack baseline scenario) — plus anything expressed as a
// scenegen spec: named registry entries, JSON spec files and
// procedurally generated worlds all build into the same Scenario type
// through the Source interface.
//
// All built-in scenarios run on a 50 kph road with the EV cruising at
// 45 kph, as in the paper. Builders accept an optional jitter RNG; the
// experiment harness uses it to vary initial conditions across runs the
// way distinct LGSVL episodes would.
package scenario

import (
	"fmt"

	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// ID enumerates the paper's driving scenarios.
type ID int

// Driving scenarios DS-1 through DS-5.
const (
	DS1 ID = iota + 1
	DS2
	DS3
	DS4
	DS5
)

// dsNames are the canonical scenario names, indexed by id - DS1.
var dsNames = [...]string{"DS-1", "DS-2", "DS-3", "DS-4", "DS-5"}

// String implements fmt.Stringer.
func (id ID) String() string {
	if id < DS1 || id > DS5 {
		return fmt.Sprintf("DS-?(%d)", int(id))
	}
	return dsNames[id-DS1]
}

// idFromName recovers the paper ID from a canonical scenario name, or
// zero. Allocation-free, unlike scanning All() with String().
func idFromName(name string) ID {
	for i, n := range dsNames {
		if n == name {
			return DS1 + ID(i)
		}
	}
	return 0
}

// Scenario is a ready-to-run simulation plus the metadata the
// experiment harness needs.
type Scenario struct {
	// ID is the paper scenario this world came from, or zero for
	// spec-file and generated scenarios.
	ID          ID
	Name        string
	World       *sim.World
	TargetID    sim.ActorID // the scripted target object (TO)
	TargetClass sim.Class
	CruiseSpeed float64 // EV target speed handed to the planner (m/s)
	Duration    float64 // seconds to simulate
}

// Frames returns the scenario length in camera frames.
func (s *Scenario) Frames() int { return int(s.Duration * sim.CameraHz) }

// FromCompiled wraps a compiled scenegen spec into a Scenario,
// recovering the paper ID when the spec is a built-in DS.
func FromCompiled(c *scenegen.Compiled) *Scenario {
	return &Scenario{
		ID:          idFromName(c.Name),
		Name:        c.Name,
		World:       c.World,
		TargetID:    c.TargetID,
		TargetClass: c.TargetClass,
		CruiseSpeed: c.CruiseSpeed,
		Duration:    c.Duration,
	}
}

// Build constructs the scenario with the given ID from its registry
// spec. rng may be nil for the nominal (jitter-free) variant. The
// registry build is bit-identical to the historical hand-built
// scenarios (see the golden-equivalence test).
func Build(id ID, rng *stats.RNG) (*Scenario, error) {
	if id < DS1 || id > DS5 {
		return nil, fmt.Errorf("scenario: unknown scenario %s", id)
	}
	spec, ok := scenegen.Lookup(id.String())
	if !ok {
		return nil, fmt.Errorf("scenario: registry is missing built-in %s", id)
	}
	c, err := scenegen.Compile(spec, rng)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return FromCompiled(c), nil
}

func mustBuild(id ID, rng *stats.RNG) *Scenario {
	s, err := Build(id, rng)
	if err != nil {
		panic(err)
	}
	return s
}

// BuildDS1 is the vehicle-following scenario: a target vehicle cruises
// at 25 kph, 60 m ahead of the EV, in the EV lane. Golden behaviour:
// the EV closes the gap and settles ~20 m behind the TV. Used for the
// Disappear and Move_Out attacks on a vehicle.
func BuildDS1(rng *stats.RNG) *Scenario { return mustBuild(DS1, rng) }

// BuildDS2 is the jaywalking-pedestrian scenario: a pedestrian waits at
// the roadside and crosses the street when the EV comes within the
// trigger gap. Golden behaviour: the EV brakes and stops more than 10 m
// away. Used for the Disappear and Move_Out attacks on a pedestrian.
func BuildDS2(rng *stats.RNG) *Scenario { return mustBuild(DS2, rng) }

// BuildDS3 is the parked-vehicle scenario: a target vehicle is parked
// in the parking lane. Golden behaviour: the EV keeps its lane and
// speed. Used for the Move_In attack on a vehicle.
func BuildDS3(rng *stats.RNG) *Scenario { return mustBuild(DS3, rng) }

// BuildDS4 is the walking-pedestrian scenario: a pedestrian walks
// longitudinally toward the EV in the parking lane for 5 m, then stands
// still. Golden behaviour: the EV slows to ~35 kph while the pedestrian
// moves, then resumes. Used for the Move_In attack on a pedestrian.
func BuildDS4(rng *stats.RNG) *Scenario { return mustBuild(DS4, rng) }

// BuildDS5 is the mixed-traffic baseline scenario: the EV follows a
// target vehicle exactly as in DS-1, with additional NPC vehicles at
// random speeds and positions in the opposite lane and behind the EV.
// The random-attack baseline (Table II row DS-5-Baseline-Random) runs
// on this scenario.
func BuildDS5(rng *stats.RNG) *Scenario { return mustBuild(DS5, rng) }

// All returns all five scenario IDs in order.
func All() []ID { return []ID{DS1, DS2, DS3, DS4, DS5} }
