package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %v", got)
	}
}

func TestFitNormalRecoversParameters(t *testing.T) {
	rng := NewRNG(42)
	const mu, sigma = 0.25, 2.0
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Normal(mu, sigma)
	}
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-mu) > 0.05 {
		t.Errorf("Mu = %v, want ~%v", fit.Mu, mu)
	}
	if math.Abs(fit.Sigma-sigma) > 0.05 {
		t.Errorf("Sigma = %v, want ~%v", fit.Sigma, sigma)
	}
	// 99th percentile of N(mu, sigma) is mu + 2.326*sigma.
	if want := mu + 2.326*sigma; math.Abs(fit.P99-want) > 0.25 {
		t.Errorf("P99 = %v, want ~%v", fit.P99, want)
	}
}

func TestFitExponentialRecoversParameters(t *testing.T) {
	rng := NewRNG(7)
	const lambda, loc = 0.33, 1.0
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = loc + rng.Exponential(lambda)
	}
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-lambda) > 0.02 {
		t.Errorf("Lambda = %v, want ~%v", fit.Lambda, lambda)
	}
	if math.Abs(fit.Loc-loc) > 0.05 {
		t.Errorf("Loc = %v, want ~%v", fit.Loc, loc)
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := FitNormal(nil); !errors.Is(err, ErrEmpty) {
		t.Error("FitNormal(nil) should fail")
	}
	if _, err := FitExponential(nil); !errors.Is(err, ErrEmpty) {
		t.Error("FitExponential(nil) should fail")
	}
	if _, err := Box(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Box(nil) should fail")
	}
}

func TestBox(t *testing.T) {
	b, err := Box([]float64{7, 1, 3, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 5 {
		t.Errorf("Box = %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v, %v", b.Q1, b.Q3)
	}
}

// Property: the five-number summary is ordered min<=q1<=med<=q3<=max.
func TestBoxOrderedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := Box(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 2, 9.9, 10, 11})
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestFitLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-1) > 1e-9 || math.Abs(fit.B-2) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if _, err := FitLinear(xs, ys[:3]); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x should fail")
	}
}

func TestMeanAbsError(t *testing.T) {
	got, err := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
	if _, err := MeanAbsError([]float64{1}, nil); err == nil {
		t.Error("mismatch should fail")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("sibling streams correlate: %d/100 equal draws", same)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := rng.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("sample %v outside bounds", v)
		}
	}
	// Pathological bounds: falls back to clamped mean.
	if v := rng.TruncNormal(0, 0.001, 100, 200); v != 100 {
		t.Errorf("fallback = %v, want 100", v)
	}
}

func TestRNGUniformRange(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := rng.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform sample %v out of range", v)
		}
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if rng.Bernoulli(0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Errorf("Bernoulli(0.25) hit %d/10000", n)
	}
}

// TestReseedMatchesFresh: a recycled, reseeded stream must replay the
// exact sequence a freshly constructed stream produces — the property
// that lets pooled episode state reuse RNG sources.
func TestReseedMatchesFresh(t *testing.T) {
	pooled := NewRNG(1)
	for i := 0; i < 100; i++ {
		pooled.Float64() // dirty the stream
	}
	for _, seed := range []int64{42, -7, 0, 1 << 40} {
		pooled.Reseed(seed)
		fresh := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if got, want := pooled.Float64(), fresh.Float64(); got != want {
				t.Fatalf("seed %d draw %d: reseeded %v, fresh %v", seed, i, got, want)
			}
		}
	}
}

// TestSplitSeedMatchesSplit: Split(parent) and Reseed(SplitSeed(parent))
// must yield identical child streams from identical parent states.
func TestSplitSeedMatchesSplit(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	child := a.Split()
	recycled := NewRNG(0)
	recycled.Reseed(b.SplitSeed())
	for i := 0; i < 50; i++ {
		if got, want := recycled.Float64(), child.Float64(); got != want {
			t.Fatalf("draw %d: recycled child %v, split child %v", i, got, want)
		}
	}
}
