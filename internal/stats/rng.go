// Package stats provides the deterministic randomness and the statistics
// toolkit used across the reproduction: seeded RNG streams, Gaussian and
// exponential sampling with maximum-likelihood fitting (used to
// regenerate the Fig. 5 characterization), percentiles, histograms and
// five-number boxplot summaries (Figs. 6 and 7).
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Every stochastic component in the
// codebase receives one by injection so that whole campaigns replay
// exactly from a base seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the stream to the start of the sequence for seed,
// reusing the existing source. A reseeded stream produces exactly the
// same values as NewRNG(seed), so pooled episode state can recycle its
// RNGs without perturbing replay determinism.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Split derives an independent child stream. The derivation mixes the
// parent's next value with a SplitMix64 step so sibling streams do not
// correlate.
func (g *RNG) Split() *RNG {
	return NewRNG(g.SplitSeed())
}

// SplitSeed advances the stream one step and returns the seed Split
// would hand a child — callers that recycle a pooled child RNG feed it
// to Reseed instead of allocating a fresh stream.
func (g *RNG) SplitSeed() int64 {
	z := uint64(g.r.Int63()) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n).
func (g *RNG) IntN(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, sigma float64) float64 {
	return mean + sigma*g.r.NormFloat64()
}

// TruncNormal returns a Gaussian sample truncated (by rejection) to
// [lo, hi]. It falls back to clamping after 64 rejections, which can only
// happen for pathological bounds far outside the distribution's mass.
func (g *RNG) TruncNormal(mean, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := g.Normal(mean, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(math.Max(mean, lo), hi)
}

// Exponential returns an exponential sample with rate lambda
// (mean 1/lambda).
func (g *RNG) Exponential(lambda float64) float64 {
	return g.r.ExpFloat64() / lambda
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the n elements using the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
