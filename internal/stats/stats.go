package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between order statistics. It returns ErrEmpty for
// an empty sample.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs (0 for an empty sample).
func Median(xs []float64) float64 {
	m, err := Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return m
}

// NormalFit is a fitted Gaussian, as reported in Fig. 5(c-f) of the
// paper for the bbox center errors.
type NormalFit struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
	P99   float64 `json:"p99"` // empirical 99th percentile of the sample
}

// FitNormal computes the maximum-likelihood Gaussian fit of xs plus the
// empirical 99th percentile.
func FitNormal(xs []float64) (NormalFit, error) {
	if len(xs) == 0 {
		return NormalFit{}, ErrEmpty
	}
	p99, err := Percentile(xs, 99)
	if err != nil {
		return NormalFit{}, err
	}
	return NormalFit{Mu: Mean(xs), Sigma: StdDev(xs), P99: p99}, nil
}

func (f NormalFit) String() string {
	return fmt.Sprintf("Normal(mu=%.3f, sigma=%.3f) p99=%.3f", f.Mu, f.Sigma, f.P99)
}

// ExpFit is a fitted shifted exponential Exp(loc, lambda), as reported in
// Fig. 5(a-b) for the continuous-misdetection run lengths (loc = 1 frame).
type ExpFit struct {
	Loc    float64 `json:"loc"`
	Lambda float64 `json:"lambda"`
	P99    float64 `json:"p99"`
}

// FitExponential computes the MLE of a shifted exponential: loc is the
// sample minimum and lambda is 1 / mean(x - loc). The paper's fits use
// loc = 1 (a misdetection run is at least one frame).
func FitExponential(xs []float64) (ExpFit, error) {
	if len(xs) == 0 {
		return ExpFit{}, ErrEmpty
	}
	loc := xs[0]
	for _, x := range xs {
		if x < loc {
			loc = x
		}
	}
	excess := 0.0
	for _, x := range xs {
		excess += x - loc
	}
	excess /= float64(len(xs))
	lambda := math.Inf(1)
	if excess > 0 {
		lambda = 1 / excess
	}
	p99, err := Percentile(xs, 99)
	if err != nil {
		return ExpFit{}, err
	}
	return ExpFit{Loc: loc, Lambda: lambda, P99: p99}, nil
}

func (f ExpFit) String() string {
	return fmt.Sprintf("Exp(loc=%g, lambda=%.3f) p99=%.1f", f.Loc, f.Lambda, f.P99)
}

// BoxStats is the five-number summary drawn as one box in the Fig. 6 and
// Fig. 7 boxplots.
type BoxStats struct {
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
	N      int     `json:"n"`
}

// Box computes the five-number summary of xs.
func Box(xs []float64) (BoxStats, error) {
	if len(xs) == 0 {
		return BoxStats{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return BoxStats{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}, nil
}

func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}

// Histogram is a fixed-width binned count of a sample, used to print the
// Fig. 5 panels as text.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram with nbins equal bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(nbins), Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.Width)
		if i >= len(h.Counts) { // guard against floating-point edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// LinearFit is a least-squares line y = A + B*x.
type LinearFit struct {
	A, B float64
	R2   float64
}

// FitLinear computes the ordinary least-squares line through (xs, ys).
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x sample")
	}
	b := sxy / sxx
	fit := LinearFit{A: my - b*mx, B: b}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// MeanAbsError returns mean(|a-b|) over paired samples.
func MeanAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}
