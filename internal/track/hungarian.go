package track

import "math"

// Forbidden is the cost assigned to disallowed assignments. Hungarian
// treats it as any other (large) cost; callers must filter assignments
// whose cost is >= Forbidden afterwards.
const Forbidden = 1e6

// Hungarian solves the rectangular assignment problem for the given
// cost matrix (rows = workers, cols = jobs) and returns assignment[r] =
// assigned column for each row, or -1 when the row is unassigned
// (possible when cols < rows). It minimizes total cost in O(n^3) using
// the Jonker-Volgenant style shortest augmenting path formulation of
// the Kuhn-Munkres algorithm — the "M" stage in the paper's Fig. 1.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := 0
	for _, row := range cost {
		if len(row) > m {
			m = len(row)
		}
	}
	if m == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out
	}

	// Pad to a square dim x dim matrix with Forbidden costs so every
	// row gets a (possibly dummy) column.
	dim := n
	if m > dim {
		dim = m
	}
	a := make([][]float64, dim+1)
	for i := 1; i <= dim; i++ {
		a[i] = make([]float64, dim+1)
		for j := 1; j <= dim; j++ {
			c := Forbidden
			if i-1 < n && j-1 < len(cost[i-1]) {
				c = cost[i-1][j-1]
			}
			a[i][j] = c
		}
	}

	u := make([]float64, dim+1)
	v := make([]float64, dim+1)
	p := make([]int, dim+1) // p[j] = row assigned to column j
	way := make([]int, dim+1)

	for i := 1; i <= dim; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, dim+1)
		used := make([]bool, dim+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0, j1 := p[j0], 0
			delta := math.Inf(1)
			for j := 1; j <= dim; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= dim; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= dim; j++ {
		if r := p[j]; r >= 1 && r <= n && j-1 < m {
			out[r-1] = j - 1
		}
	}
	return out
}
