package track

import "math"

// Forbidden is the cost assigned to disallowed assignments. Hungarian
// treats it as any other (large) cost; callers must filter assignments
// whose cost is >= Forbidden afterwards.
const Forbidden = 1e6

// hungarianScratch holds the working arrays of the assignment solver
// so a long-lived caller (the Tracker, once per frame) can run it with
// zero heap allocations once the buffers are warm. The algorithm and
// its arithmetic are identical to the historical allocating version —
// only the storage is reused.
type hungarianScratch struct {
	a          []float64 // (dim+1) x (dim+1) padded cost, flat row-major
	u, v, minv []float64
	p, way     []int
	used       []bool
	out        []int
}

// grow ensures every buffer covers a (dim+1)-sized problem.
func (s *hungarianScratch) grow(dim, n int) {
	if cap(s.a) < (dim+1)*(dim+1) {
		s.a = make([]float64, (dim+1)*(dim+1))
	}
	s.a = s.a[:(dim+1)*(dim+1)]
	if cap(s.u) < dim+1 {
		s.u = make([]float64, dim+1)
		s.v = make([]float64, dim+1)
		s.minv = make([]float64, dim+1)
		s.p = make([]int, dim+1)
		s.way = make([]int, dim+1)
		s.used = make([]bool, dim+1)
	}
	s.u = s.u[:dim+1]
	s.v = s.v[:dim+1]
	s.minv = s.minv[:dim+1]
	s.p = s.p[:dim+1]
	s.way = s.way[:dim+1]
	s.used = s.used[:dim+1]
	if cap(s.out) < n {
		s.out = make([]int, n)
	}
	s.out = s.out[:n]
}

// solve runs the Jonker-Volgenant style shortest augmenting path
// formulation of Kuhn-Munkres on cost (rows = workers, cols = jobs)
// and returns assignment[r] = assigned column (or -1). The returned
// slice aliases the scratch and is valid until the next solve call.
func (s *hungarianScratch) solve(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := 0
	for _, row := range cost {
		if len(row) > m {
			m = len(row)
		}
	}
	if m == 0 {
		s.grow(0, n)
		out := s.out
		for i := range out {
			out[i] = -1
		}
		return out
	}

	// Pad to a square dim x dim matrix with Forbidden costs so every
	// row gets a (possibly dummy) column.
	dim := n
	if m > dim {
		dim = m
	}
	s.grow(dim, n)
	w := dim + 1
	for i := 1; i <= dim; i++ {
		for j := 1; j <= dim; j++ {
			c := Forbidden
			if i-1 < n && j-1 < len(cost[i-1]) {
				c = cost[i-1][j-1]
			}
			s.a[i*w+j] = c
		}
	}

	u, v, p, way := s.u, s.v, s.p, s.way
	for i := range u {
		u[i], v[i] = 0, 0
		p[i], way[i] = 0, 0
	}

	for i := 1; i <= dim; i++ {
		p[0] = i
		j0 := 0
		minv, used := s.minv, s.used
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0, j1 := p[j0], 0
			delta := math.Inf(1)
			for j := 1; j <= dim; j++ {
				if used[j] {
					continue
				}
				cur := s.a[i0*w+j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= dim; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	out := s.out
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= dim; j++ {
		if r := p[j]; r >= 1 && r <= n && j-1 < m {
			out[r-1] = j - 1
		}
	}
	return out
}

// Hungarian solves the rectangular assignment problem for the given
// cost matrix (rows = workers, cols = jobs) and returns assignment[r] =
// assigned column for each row, or -1 when the row is unassigned
// (possible when cols < rows). It minimizes total cost in O(n^3) — the
// "M" stage in the paper's Fig. 1. The Tracker uses the scratch-based
// solver directly; this wrapper allocates fresh working storage per
// call.
func Hungarian(cost [][]float64) []int {
	var s hungarianScratch
	res := s.solve(cost)
	if res == nil {
		return nil
	}
	out := make([]int, len(res))
	copy(out, res)
	return out
}
