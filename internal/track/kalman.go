// Package track implements the multiple-object-tracking (MOT) half of
// the perception system described in §II-B of the paper: per-object
// Kalman filters ("F*" in Fig. 1) with a constant-velocity motion
// model, the Hungarian assignment step ("M"), and the track lifecycle
// manager that ties them together in the tracking-by-detection
// paradigm.
//
// The Kalman filter here is the component the paper identifies as the
// critical vulnerability (§III-B): it models measurement noise as
// zero-mean Gaussian, so an adversary who injects drift within one
// standard deviation of that model is indistinguishable from noise.
package track

import (
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/mat"
)

// Kalman is a constant-velocity Kalman filter over an image-space
// bounding-box center. State is [u, v, du, dv] in pixels and pixels per
// frame; time steps are whole camera frames (dt = 1).
//
// Every matrix the filter touches — state, covariance, and all
// intermediates — is allocated once at construction and reused in
// place, so Predict and Update perform zero heap allocations: the
// filter runs per track per frame and used to dominate the frame
// loop's GC pressure. The arithmetic is the exact operation sequence
// of the textbook out-of-place formulation, so state trajectories are
// bit-identical to the historical implementation.
type Kalman struct {
	x *mat.Matrix // 4x1 state
	p *mat.Matrix // 4x4 covariance

	f, fT *mat.Matrix // transition
	q     *mat.Matrix // process noise
	h, hT *mat.Matrix // measurement model
	i4    *mat.Matrix // 4x4 identity

	// Scratch for Predict/Update, reused every call.
	t41        *mat.Matrix // 4x1
	t44a, t44b *mat.Matrix // 4x4
	t24        *mat.Matrix // 2x4
	t42        *mat.Matrix // 4x2
	gain       *mat.Matrix // 4x2
	r, s       *mat.Matrix // 2x2
	sInv, sTmp *mat.Matrix // 2x2
	y21, hx21  *mat.Matrix // 2x1
	gy41, pNew *mat.Matrix // 4x1, 4x4

	// lastInnov is the most recent measurement residual (z - Hx), and
	// lastInnovNorm the residual normalized by the innovation standard
	// deviation — the statistic an intrusion detector would monitor.
	lastInnov     geom.Vec2
	lastInnovNorm geom.Vec2
}

// NewKalman creates a filter initialized at the measured center with
// zero velocity and a large initial uncertainty.
func NewKalman(center geom.Vec2) *Kalman {
	k := &Kalman{
		x: mat.ColVec(center.X, center.Y, 0, 0),
		p: mat.Diag(25, 25, 16, 16),
		f: mat.FromRows([][]float64{
			{1, 0, 1, 0},
			{0, 1, 0, 1},
			{0, 0, 1, 0},
			{0, 0, 0, 1},
		}),
		q: mat.Diag(0.15, 0.15, 0.08, 0.08),
		h: mat.FromRows([][]float64{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
		}),
		i4: mat.Identity(4),

		t41:  mat.New(4, 1),
		t44a: mat.New(4, 4),
		t44b: mat.New(4, 4),
		t24:  mat.New(2, 4),
		t42:  mat.New(4, 2),
		gain: mat.New(4, 2),
		r:    mat.New(2, 2),
		s:    mat.New(2, 2),
		sInv: mat.New(2, 2),
		sTmp: mat.New(2, 2),
		y21:  mat.New(2, 1),
		hx21: mat.New(2, 1),
		gy41: mat.New(4, 1),
		pNew: mat.New(4, 4),
	}
	k.fT = k.f.T()
	k.hT = k.h.T()
	return k
}

// Reset re-initializes the filter at a new measured center, exactly as
// NewKalman would, reusing every matrix (track recycling).
func (k *Kalman) Reset(center geom.Vec2) {
	k.x.Set(0, 0, center.X)
	k.x.Set(1, 0, center.Y)
	k.x.Set(2, 0, 0)
	k.x.Set(3, 0, 0)
	k.p.Zero()
	k.p.Set(0, 0, 25)
	k.p.Set(1, 1, 25)
	k.p.Set(2, 2, 16)
	k.p.Set(3, 3, 16)
	k.lastInnov = geom.Vec2{}
	k.lastInnovNorm = geom.Vec2{}
}

// Predict advances the state one frame: x = Fx, P = FPF' + Q.
func (k *Kalman) Predict() {
	mat.MulInto(k.t41, k.f, k.x)
	k.x.CopyFrom(k.t41)
	mat.MulInto(k.t44a, k.f, k.p)
	mat.MulInto(k.t44b, k.t44a, k.fT)
	mat.AddInto(k.p, k.t44b, k.q)
}

// Update incorporates a measured center z with per-axis measurement
// standard deviations (sigmaU, sigmaV) in pixels.
func (k *Kalman) Update(z geom.Vec2, sigmaU, sigmaV float64) error {
	k.r.Zero()
	k.r.Set(0, 0, math.Max(sigmaU*sigmaU, 1))
	k.r.Set(1, 1, math.Max(sigmaV*sigmaV, 1))
	// Innovation y = z - Hx and its covariance S = HPH' + R.
	mat.MulInto(k.hx21, k.h, k.x)
	k.y21.Set(0, 0, z.X-k.hx21.At(0, 0))
	k.y21.Set(1, 0, z.Y-k.hx21.At(1, 0))
	mat.MulInto(k.t24, k.h, k.p)
	mat.MulInto(k.sTmp, k.t24, k.hT)
	mat.AddInto(k.s, k.sTmp, k.r)
	if err := mat.InverseInto(k.sInv, k.sTmp, k.s); err != nil {
		return fmt.Errorf("kalman update: %w", err)
	}
	mat.MulInto(k.t42, k.p, k.hT)
	mat.MulInto(k.gain, k.t42, k.sInv)
	mat.MulInto(k.gy41, k.gain, k.y21)
	mat.AddInto(k.x, k.x, k.gy41)
	mat.MulInto(k.t44a, k.gain, k.h) // KH
	mat.SubInto(k.t44b, k.i4, k.t44a)
	mat.MulInto(k.pNew, k.t44b, k.p)
	k.p.CopyFrom(k.pNew)

	k.lastInnov = geom.V(k.y21.At(0, 0), k.y21.At(1, 0))
	k.lastInnovNorm = geom.V(
		k.y21.At(0, 0)/math.Sqrt(k.s.At(0, 0)),
		k.y21.At(1, 0)/math.Sqrt(k.s.At(1, 1)),
	)
	return nil
}

// Center returns the current state estimate of the box center.
func (k *Kalman) Center() geom.Vec2 { return geom.V(k.x.At(0, 0), k.x.At(1, 0)) }

// Velocity returns the estimated center velocity in pixels per frame.
func (k *Kalman) Velocity() geom.Vec2 { return geom.V(k.x.At(2, 0), k.x.At(3, 0)) }

// Innovation returns the last measurement residual in pixels.
func (k *Kalman) Innovation() geom.Vec2 { return k.lastInnov }

// InnovationNorm returns the last residual divided by the innovation
// standard deviation per axis. An IDS watching the perception system
// flags updates whose normalized innovation magnitude exceeds ~1
// consistently (paper §III-B, §VI-E).
func (k *Kalman) InnovationNorm() geom.Vec2 { return k.lastInnovNorm }
