// Package track implements the multiple-object-tracking (MOT) half of
// the perception system described in §II-B of the paper: per-object
// Kalman filters ("F*" in Fig. 1) with a constant-velocity motion
// model, the Hungarian assignment step ("M"), and the track lifecycle
// manager that ties them together in the tracking-by-detection
// paradigm.
//
// The Kalman filter here is the component the paper identifies as the
// critical vulnerability (§III-B): it models measurement noise as
// zero-mean Gaussian, so an adversary who injects drift within one
// standard deviation of that model is indistinguishable from noise.
package track

import (
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/mat"
)

// Kalman is a constant-velocity Kalman filter over an image-space
// bounding-box center. State is [u, v, du, dv] in pixels and pixels per
// frame; time steps are whole camera frames (dt = 1).
type Kalman struct {
	x *mat.Matrix // 4x1 state
	p *mat.Matrix // 4x4 covariance

	f, fT *mat.Matrix // transition
	q     *mat.Matrix // process noise
	h, hT *mat.Matrix // measurement model

	// lastInnov is the most recent measurement residual (z - Hx), and
	// lastInnovNorm the residual normalized by the innovation standard
	// deviation — the statistic an intrusion detector would monitor.
	lastInnov     geom.Vec2
	lastInnovNorm geom.Vec2
}

// NewKalman creates a filter initialized at the measured center with
// zero velocity and a large initial uncertainty.
func NewKalman(center geom.Vec2) *Kalman {
	k := &Kalman{
		x: mat.ColVec(center.X, center.Y, 0, 0),
		p: mat.Diag(25, 25, 16, 16),
		f: mat.FromRows([][]float64{
			{1, 0, 1, 0},
			{0, 1, 0, 1},
			{0, 0, 1, 0},
			{0, 0, 0, 1},
		}),
		q: mat.Diag(0.15, 0.15, 0.08, 0.08),
		h: mat.FromRows([][]float64{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
		}),
	}
	k.fT = k.f.T()
	k.hT = k.h.T()
	return k
}

// Predict advances the state one frame: x = Fx, P = FPF' + Q.
func (k *Kalman) Predict() {
	k.x = k.f.Mul(k.x)
	k.p = k.f.Mul(k.p).Mul(k.fT).Add(k.q)
}

// Update incorporates a measured center z with per-axis measurement
// standard deviations (sigmaU, sigmaV) in pixels.
func (k *Kalman) Update(z geom.Vec2, sigmaU, sigmaV float64) error {
	r := mat.Diag(math.Max(sigmaU*sigmaU, 1), math.Max(sigmaV*sigmaV, 1))
	// Innovation y = z - Hx and its covariance S = HPH' + R.
	hx := k.h.Mul(k.x)
	y := mat.ColVec(z.X-hx.At(0, 0), z.Y-hx.At(1, 0))
	s := k.h.Mul(k.p).Mul(k.hT).Add(r)
	sInv, err := s.Inverse()
	if err != nil {
		return fmt.Errorf("kalman update: %w", err)
	}
	gain := k.p.Mul(k.hT).Mul(sInv)
	k.x = k.x.Add(gain.Mul(y))
	kh := gain.Mul(k.h)
	k.p = mat.Identity(4).Sub(kh).Mul(k.p)

	k.lastInnov = geom.V(y.At(0, 0), y.At(1, 0))
	k.lastInnovNorm = geom.V(
		y.At(0, 0)/math.Sqrt(s.At(0, 0)),
		y.At(1, 0)/math.Sqrt(s.At(1, 1)),
	)
	return nil
}

// Center returns the current state estimate of the box center.
func (k *Kalman) Center() geom.Vec2 { return geom.V(k.x.At(0, 0), k.x.At(1, 0)) }

// Velocity returns the estimated center velocity in pixels per frame.
func (k *Kalman) Velocity() geom.Vec2 { return geom.V(k.x.At(2, 0), k.x.At(3, 0)) }

// Innovation returns the last measurement residual in pixels.
func (k *Kalman) Innovation() geom.Vec2 { return k.lastInnov }

// InnovationNorm returns the last residual divided by the innovation
// standard deviation per axis. An IDS watching the perception system
// flags updates whose normalized innovation magnitude exceeds ~1
// consistently (paper §III-B, §VI-E).
func (k *Kalman) InnovationNorm() geom.Vec2 { return k.lastInnovNorm }
