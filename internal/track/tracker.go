package track

import (
	"math"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
)

// Config parametrizes the tracker lifecycle and association gates.
type Config struct {
	// MinHits detections before a track is confirmed.
	MinHits int
	// MaxMisses consecutive predicted-only frames before deletion. This
	// is the temporal redundancy ("redundancy in time", §I) that masks
	// transient misdetections — and that the Disappear attack must
	// outlast.
	MaxMisses int
	// GateWidths is the association gate as a multiple of the predicted
	// box width, per class. It reflects the class's measured noise: the
	// noisier the detector for a class, the wider the tracker must gate.
	VehicleGateWidths    float64
	PedestrianGateWidths float64
	// GateFloorPx is the minimum gate in pixels.
	GateFloorPx float64
	// DimsAlpha is the EMA factor for box dimensions.
	DimsAlpha float64
	// Vehicle and Pedestrian measurement noise (normalized units, from
	// the Fig. 5 characterization) used to set the Kalman R matrix.
	VehicleNoise    detect.NoiseParams
	PedestrianNoise detect.NoiseParams
}

// DefaultConfig returns the configuration used by the reproduction's
// ADS and — because the threat model grants the attacker the ADS source
// code — by the malware's own inference copy.
func DefaultConfig() Config {
	return Config{
		MinHits:              2,
		MaxMisses:            12,
		VehicleGateWidths:    2.0,
		PedestrianGateWidths: 4.0,
		GateFloorPx:          10,
		DimsAlpha:            0.3,
		VehicleNoise:         detect.VehicleNoise,
		PedestrianNoise:      detect.PedestrianNoise,
	}
}

// Gate returns the maximum center distance (pixels) at which a
// detection can associate with a track whose predicted box has the
// given width, for the given class. The trajectory hijacker uses the
// same formula (threat model: attacker knows the ADS internals) as its
// lambda constraint in Eq. 4.
func (c Config) Gate(cls sim.Class, boxW float64) float64 {
	k := c.VehicleGateWidths
	if cls == sim.ClassPedestrian {
		k = c.PedestrianGateWidths
	}
	return math.Max(k*boxW, c.GateFloorPx)
}

// NoiseStd returns the per-axis measurement noise standard deviation in
// pixels for a box of the given size, per the Fig. 5 class models.
func (c Config) NoiseStd(cls sim.Class, box geom.Rect) (sigmaU, sigmaV float64) {
	np := c.VehicleNoise
	if cls == sim.ClassPedestrian {
		np = c.PedestrianNoise
	}
	return np.SigmaX * box.W, np.SigmaY * box.H
}

// Measurement converts a detection into the filter's measurement
// vector (horizontal center u, sub-pixel bottom edge v_b), removing the
// characterized per-class mean of the detector's error — the
// calibration any production perception stack applies once the Fig. 5
// characterization is known. Without it, the non-zero means (e.g.
// pedestrian MuY = 0.186) bias the mono-camera depth systematically.
func (c Config) Measurement(cls sim.Class, d detect.Detection) geom.Vec2 {
	np := c.VehicleNoise
	if cls == sim.ClassPedestrian {
		np = c.PedestrianNoise
	}
	u := d.CenterU
	if u == 0 { // detections fabricated without refinement (tests)
		u = d.Box.Center().X
	}
	return geom.V(u-np.MuX*d.Box.W, d.Bottom-np.MuY*d.Box.H)
}

// Track is one tracked object ("s_t^i" in the paper). Its Kalman state
// is the horizontal box center and the sub-pixel bottom edge — the two
// image coordinates that determine the ground position.
type Track struct {
	ID    int
	Class sim.Class

	kf *Kalman
	// W, H are the EMA-smoothed box dimensions in pixels.
	W, H float64

	Hits      int
	Misses    int
	Age       int
	Confirmed bool

	// dup marks the track for duplicate suppression within one Step.
	dup bool
}

// Box returns the current smoothed bounding box: centered horizontally
// on the filter's u estimate, with its bottom edge at the filter's v_b
// estimate.
func (t *Track) Box() geom.Rect {
	s := t.kf.Center()
	return geom.R(s.X-t.W/2, s.Y-t.H, t.W, t.H)
}

// Center returns the Kalman state estimate (u, v_bottom).
func (t *Track) Center() geom.Vec2 { return t.kf.Center() }

// VelocityPx returns the estimated center velocity in px/frame.
func (t *Track) VelocityPx() geom.Vec2 { return t.kf.Velocity() }

// InnovationNorm exposes the filter's normalized innovation for IDS
// monitoring (§VI-E).
func (t *Track) InnovationNorm() geom.Vec2 { return t.kf.InnovationNorm() }

// Coasting reports whether the track is currently surviving on
// prediction only.
func (t *Track) Coasting() bool { return t.Misses > 0 }

// Tracker is the multi-object tracker: Hungarian association of
// detections to Kalman-filtered tracks with a tentative/confirmed/
// deleted lifecycle. All per-frame working storage — the cost matrix,
// the assignment solver's arrays, and dead Track objects (with their
// Kalman matrices) — is owned by the struct and reused across frames,
// so a warm Step performs no heap allocations.
type Tracker struct {
	cfg    Config
	tracks []*Track
	nextID int

	// Per-frame scratch, reused across Step calls.
	hung     hungarianScratch
	costFlat []float64
	costRows [][]float64
	assigned []int
	usedDet  []bool
	free     []*Track // recycled tracks, Kalman matrices intact
}

// NewTracker creates an empty tracker.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg, nextID: 1}
}

// Config returns the tracker's configuration.
func (tr *Tracker) Config() Config { return tr.cfg }

// Tracks returns the live tracks (both tentative and confirmed).
func (tr *Tracker) Tracks() []*Track { return tr.tracks }

// Confirmed returns only the confirmed tracks.
func (tr *Tracker) Confirmed() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		if t.Confirmed {
			out = append(out, t)
		}
	}
	return out
}

// Step advances all tracks one frame and associates the new detections.
// It returns the live track set after the update; the set is valid
// until the next Step or Reset call (dead tracks are recycled).
func (tr *Tracker) Step(dets []detect.Detection) []*Track {
	for _, t := range tr.tracks {
		t.kf.Predict()
		t.Age++
	}

	// Build the association cost matrix: cost = (1 - IoU) + normalized
	// center distance; pairs beyond the class gate are forbidden.
	nT, nD := len(tr.tracks), len(dets)
	assigned := tr.assigned[:0]
	for i := 0; i < nT; i++ {
		assigned = append(assigned, -1)
	}
	tr.assigned = assigned
	if nT > 0 && nD > 0 {
		if cap(tr.costFlat) < nT*nD {
			tr.costFlat = make([]float64, nT*nD)
		}
		flat := tr.costFlat[:nT*nD]
		cost := tr.costRows[:0]
		for i, t := range tr.tracks {
			row := flat[i*nD : (i+1)*nD]
			pbox := t.Box()
			gate := tr.cfg.Gate(t.Class, pbox.W)
			for j, d := range dets {
				dist := pbox.Center().Dist(d.Box.Center())
				iou := pbox.IoU(d.Box)
				if dist > gate {
					row[j] = Forbidden
					continue
				}
				// A coasting track's predicted position is already
				// speculation; it may only reclaim a detection that
				// actually overlaps it, otherwise it would steal
				// detections from live tracks and zombie on.
				if t.Misses > 1 && iou <= 0.05 {
					row[j] = Forbidden
					continue
				}
				row[j] = (1 - iou) + dist/gate
			}
			cost = append(cost, row)
		}
		tr.costRows = cost
		res := tr.hung.solve(cost)
		for i, j := range res {
			if j >= 0 && cost[i][j] < Forbidden {
				assigned[i] = j
			}
		}
	}

	usedDet := tr.usedDet[:0]
	for j := 0; j < nD; j++ {
		usedDet = append(usedDet, false)
	}
	tr.usedDet = usedDet
	for i, t := range tr.tracks {
		j := assigned[i]
		if j < 0 {
			t.Misses++
			t.Hits = 0
			continue
		}
		usedDet[j] = true
		d := dets[j]
		su, sv := tr.cfg.NoiseStd(t.Class, d.Box)
		// A singular innovation covariance cannot occur with R floored
		// at 1 px^2; treat it as a miss if it ever does.
		if err := t.kf.Update(tr.cfg.Measurement(t.Class, d), su, sv); err != nil {
			t.Misses++
			continue
		}
		t.W += tr.cfg.DimsAlpha * (d.Box.W - t.W)
		t.H += tr.cfg.DimsAlpha * (d.Box.H - t.H)
		t.Misses = 0
		t.Hits++
		if t.Hits >= tr.cfg.MinHits {
			t.Confirmed = true
		}
	}

	// Unmatched detections spawn tentative tracks (recycling dead ones'
	// Kalman matrices when available).
	for j, d := range dets {
		if usedDet[j] {
			continue
		}
		t := tr.spawn(tr.cfg.Measurement(d.Class, d))
		t.ID = tr.nextID
		t.Class = d.Class
		t.W = d.Box.W
		t.H = d.Box.H
		t.Hits = 1
		tr.tracks = append(tr.tracks, t)
		tr.nextID++
	}

	// Reap dead tracks and suppress duplicates: two confirmed tracks on
	// (nearly) the same box are one object; the older one wins.
	live := tr.tracks[:0]
	for _, t := range tr.tracks {
		if t.Misses <= tr.cfg.MaxMisses {
			live = append(live, t)
		} else {
			tr.free = append(tr.free, t)
		}
	}
	tr.tracks = live
	ndup := 0
	for _, t := range tr.tracks {
		t.dup = false
	}
	for i, a := range tr.tracks {
		for _, b := range tr.tracks[i+1:] {
			if a.dup || b.dup || a.Box().IoU(b.Box()) < 0.5 {
				continue
			}
			victim := b
			if a.Age < b.Age {
				victim = a
			}
			victim.dup = true
			ndup++
		}
	}
	if ndup > 0 {
		live = tr.tracks[:0]
		for _, t := range tr.tracks {
			if !t.dup {
				live = append(live, t)
			} else {
				tr.free = append(tr.free, t)
			}
		}
		tr.tracks = live
	}
	return tr.tracks
}

// spawn returns a Track initialized at the measured center, reusing a
// recycled Track (and its Kalman filter's matrices) when one is free.
func (tr *Tracker) spawn(meas geom.Vec2) *Track {
	if n := len(tr.free); n > 0 {
		t := tr.free[n-1]
		tr.free = tr.free[:n-1]
		kf := t.kf
		kf.Reset(meas)
		*t = Track{kf: kf}
		return t
	}
	return &Track{kf: NewKalman(meas)}
}

// Reset drops all tracks (start of a new episode), recycling them for
// the next one.
func (tr *Tracker) Reset() {
	tr.free = append(tr.free, tr.tracks...)
	tr.tracks = tr.tracks[:0]
	tr.nextID = 1
}
