package track

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func TestKalmanConvergesToConstantVelocity(t *testing.T) {
	k := NewKalman(geom.V(10, 50))
	// Object moves +2 px/frame in u, -0.5 in v; noiseless measurements.
	for i := 1; i <= 60; i++ {
		k.Predict()
		z := geom.V(10+2*float64(i), 50-0.5*float64(i))
		if err := k.Update(z, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	v := k.Velocity()
	if math.Abs(v.X-2) > 0.1 || math.Abs(v.Y+0.5) > 0.1 {
		t.Errorf("velocity = %v, want (2, -0.5)", v)
	}
	c := k.Center()
	if math.Abs(c.X-130) > 1 || math.Abs(c.Y-20) > 1 {
		t.Errorf("center = %v, want (130, 20)", c)
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	rng := stats.NewRNG(5)
	k := NewKalman(geom.V(100, 60))
	const sigma = 6.0
	var rawErr, filtErr []float64
	for i := 1; i <= 400; i++ {
		k.Predict()
		truth := geom.V(100+0.8*float64(i), 60)
		z := geom.V(truth.X+rng.Normal(0, sigma), truth.Y+rng.Normal(0, sigma))
		if err := k.Update(z, sigma, sigma); err != nil {
			t.Fatal(err)
		}
		if i > 50 { // after burn-in
			rawErr = append(rawErr, math.Abs(z.X-truth.X))
			filtErr = append(filtErr, math.Abs(k.Center().X-truth.X))
		}
	}
	if stats.Mean(filtErr) >= stats.Mean(rawErr)*0.6 {
		t.Errorf("filter error %.2f not much better than raw %.2f",
			stats.Mean(filtErr), stats.Mean(rawErr))
	}
}

// The vulnerability the paper exploits: drift injected within ~1 sigma
// per frame is absorbed by the filter (normalized innovation stays in
// the noise envelope) while steadily moving the estimate.
func TestKalmanAbsorbsSubSigmaDrift(t *testing.T) {
	const sigma = 4.0
	k := NewKalman(geom.V(100, 60))
	// Warm up on a static object.
	for i := 0; i < 40; i++ {
		k.Predict()
		if err := k.Update(geom.V(100, 60), sigma, sigma); err != nil {
			t.Fatal(err)
		}
	}
	start := k.Center().X
	maxInnov := 0.0
	pos := 100.0
	for i := 0; i < 30; i++ {
		k.Predict()
		pos += sigma * 0.8 // attacker-style drift, below 1 sigma/frame
		if err := k.Update(geom.V(pos, 60), sigma, sigma); err != nil {
			t.Fatal(err)
		}
		if in := math.Abs(k.InnovationNorm().X); in > maxInnov {
			maxInnov = in
		}
	}
	// Under constant sub-sigma drift the steady-state normalized
	// innovation sits inside the plausible noise band (|y|/sqrt(S) well
	// below the ~2-sigma alarms an IDS would use).
	if maxInnov > 1.6 {
		t.Errorf("normalized innovation peaked at %.2f; drift should hide in noise", maxInnov)
	}
	if shift := k.Center().X - start; shift < 3*sigma {
		t.Errorf("estimate shifted only %.1f px; the drift attack should move it", shift)
	}
}

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	got := Hungarian(cost)
	want := []int{1, 0, 2}
	total := 0.0
	for i, j := range got {
		if j != want[i] {
			t.Errorf("assignment[%d] = %d, want %d", i, j, want[i])
		}
		total += cost[i][j]
	}
	if total != 5 {
		t.Errorf("total = %v, want 5", total)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More tracks (rows) than detections (cols): one row unassigned.
	cost := [][]float64{
		{1, 9},
		{9, 1},
		{2, 2},
	}
	got := Hungarian(cost)
	assignedCols := map[int]bool{}
	n := 0
	for _, j := range got {
		if j >= 0 {
			if assignedCols[j] {
				t.Fatal("column assigned twice")
			}
			assignedCols[j] = true
			n++
		}
	}
	if n != 2 {
		t.Errorf("assigned %d rows, want 2", n)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v, want rows 0,1 to take cols 0,1", got)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Errorf("Hungarian(nil) = %v", got)
	}
	got := Hungarian([][]float64{{}, {}})
	if len(got) != 2 || got[0] != -1 || got[1] != -1 {
		t.Errorf("no-column result = %v", got)
	}
}

// Property: Hungarian is optimal for random 4x4 matrices (checked
// against brute force over all permutations).
func TestHungarianOptimality(t *testing.T) {
	rng := stats.NewRNG(17)
	perms := permutations([]int{0, 1, 2, 3})
	for trial := 0; trial < 200; trial++ {
		cost := make([][]float64, 4)
		for i := range cost {
			cost[i] = make([]float64, 4)
			for j := range cost[i] {
				cost[i][j] = rng.Uniform(0, 10)
			}
		}
		got := Hungarian(cost)
		gotTotal := 0.0
		for i, j := range got {
			gotTotal += cost[i][j]
		}
		best := math.Inf(1)
		for _, p := range perms {
			s := 0.0
			for i, j := range p {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
		}
		if gotTotal > best+1e-9 {
			t.Fatalf("trial %d: Hungarian total %v > optimal %v", trial, gotTotal, best)
		}
	}
}

func permutations(xs []int) [][]int {
	if len(xs) <= 1 {
		return [][]int{append([]int(nil), xs...)}
	}
	var out [][]int
	for i := range xs {
		rest := make([]int, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{xs[i]}, p...))
		}
	}
	return out
}

func det(box geom.Rect, cls sim.Class) detect.Detection {
	return detect.Detection{
		Box: box, Raw: box, Bottom: box.Min.Y + box.H,
		Class: cls, Area: int(box.Area()), Score: 1,
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	b := geom.R(50, 40, 12, 9)

	tracks := tr.Step([]detect.Detection{det(b, sim.ClassVehicle)})
	if len(tracks) != 1 || tracks[0].Confirmed {
		t.Fatalf("frame 1: tracks=%d confirmed=%v", len(tracks), tracks[0].Confirmed)
	}
	tracks = tr.Step([]detect.Detection{det(b.Translate(geom.V(1, 0)), sim.ClassVehicle)})
	if !tracks[0].Confirmed {
		t.Fatal("track should confirm after MinHits")
	}
	id := tracks[0].ID

	// Miss a few frames: track coasts, stays alive.
	for i := 0; i < 5; i++ {
		tracks = tr.Step(nil)
	}
	if len(tracks) != 1 || tracks[0].ID != id || !tracks[0].Coasting() {
		t.Fatal("track should coast through short misses")
	}

	// Reassociate after the gap.
	tracks = tr.Step([]detect.Detection{det(b.Translate(geom.V(7, 0)), sim.ClassVehicle)})
	if len(tracks) != 1 || tracks[0].ID != id {
		t.Fatalf("track should reassociate, got %d tracks", len(tracks))
	}
	if tracks[0].Coasting() {
		t.Error("reassociated track should not be coasting")
	}
}

func TestTrackerDeletesAfterMaxMisses(t *testing.T) {
	cfg := DefaultConfig()
	tr := NewTracker(cfg)
	b := geom.R(50, 40, 12, 9)
	tr.Step([]detect.Detection{det(b, sim.ClassVehicle)})
	tr.Step([]detect.Detection{det(b, sim.ClassVehicle)})
	for i := 0; i <= cfg.MaxMisses; i++ {
		tr.Step(nil)
	}
	if n := len(tr.Tracks()); n != 0 {
		t.Errorf("tracks = %d, want 0 after MaxMisses", n)
	}
}

func TestTrackerSeparatesTwoObjects(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	a := geom.R(30, 40, 12, 9)
	b := geom.R(130, 40, 12, 9)
	var idA, idB int
	for i := 0; i < 10; i++ {
		d := float64(i)
		tracks := tr.Step([]detect.Detection{
			det(a.Translate(geom.V(d, 0)), sim.ClassVehicle),
			det(b.Translate(geom.V(-d, 0)), sim.ClassVehicle),
		})
		if i == 2 {
			if len(tracks) != 2 {
				t.Fatalf("tracks = %d", len(tracks))
			}
			idA, idB = tracks[0].ID, tracks[1].ID
		}
	}
	if len(tr.Tracks()) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tr.Tracks()))
	}
	for _, trk := range tr.Tracks() {
		if trk.ID != idA && trk.ID != idB {
			t.Error("track identity switched")
		}
	}
}

func TestTrackerGateRejectsFarDetection(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	b := geom.R(50, 40, 12, 9)
	tr.Step([]detect.Detection{det(b, sim.ClassVehicle)})
	tr.Step([]detect.Detection{det(b, sim.ClassVehicle)})
	// A detection far outside the gate must spawn a new track, not move
	// the existing one.
	tracks := tr.Step([]detect.Detection{det(b.Translate(geom.V(120, 0)), sim.ClassVehicle)})
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2 (original + new tentative)", len(tracks))
	}
}

func TestGateClassDependence(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Gate(sim.ClassPedestrian, 10) <= cfg.Gate(sim.ClassVehicle, 10) {
		t.Error("pedestrian gate should be wider (noisier class)")
	}
	if cfg.Gate(sim.ClassVehicle, 0.1) != cfg.GateFloorPx {
		t.Error("gate floor not applied")
	}
}

func TestNoiseStd(t *testing.T) {
	cfg := DefaultConfig()
	su, sv := cfg.NoiseStd(sim.ClassVehicle, geom.R(0, 0, 10, 8))
	if math.Abs(su-4.64) > 1e-9 || math.Abs(sv-4.688) > 1e-9 {
		t.Errorf("vehicle noise = %v, %v", su, sv)
	}
	su, _ = cfg.NoiseStd(sim.ClassPedestrian, geom.R(0, 0, 10, 8))
	if math.Abs(su-20.1) > 1e-9 {
		t.Errorf("pedestrian sigmaU = %v", su)
	}
}

func BenchmarkTrackerStep(b *testing.B) {
	tr := NewTracker(DefaultConfig())
	dets := make([]detect.Detection, 8)
	for i := range dets {
		dets[i] = det(geom.R(float64(10+22*i), 40, 12, 9), sim.ClassVehicle)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Step(dets)
	}
}

func BenchmarkHungarian8x8(b *testing.B) {
	rng := stats.NewRNG(2)
	cost := make([][]float64, 8)
	for i := range cost {
		cost[i] = make([]float64, 8)
		for j := range cost[i] {
			cost[i][j] = rng.Uniform(0, 10)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hungarian(cost)
	}
}
