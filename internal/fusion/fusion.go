// Package fusion combines camera tracks and LiDAR detections into the
// EV's world model W_t (paper Fig. 1, "Sensor Fusion"). It provides the
// "redundancy in space" that — together with the Kalman filters'
// redundancy in time — masks ordinary adversarial perturbations (§I).
//
// The fusion maintains a per-object confidence that accumulates when
// sensors confirm the object and decays otherwise. Two properties of
// the paper's Apollo + LGSVL stack are modelled explicitly (§VI-C):
//
//   - pedestrians beyond the LiDAR registration range are camera-only,
//     so suppressing ~14 camera frames erases them from the world
//     model, while vehicles — still confirmed by LiDAR — take ~3x
//     longer to fade;
//   - when camera and LiDAR disagree (one sees an object where the
//     other does not, or their positions drift apart), the disagreeing
//     LiDAR evidence is discounted, which delays (re-)registration of
//     the true object.
package fusion

import (
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/track"
)

// Config parametrizes the fusion stage.
type Config struct {
	// Decay multiplies every object's confidence each frame.
	Decay float64
	// CameraGain is added when a camera detection confirms the object
	// this frame (a coasting track does not count).
	CameraGain float64
	// LidarGain is added when a LiDAR return confirms an object that
	// the camera also confirmed this frame.
	LidarGain float64
	// LidarAloneGainVehicle and LidarAloneGainPedestrian are the
	// discounted gains when only the LiDAR sees the object (sensor
	// disagreement, §VI-C). The pedestrian gain is much weaker: a small
	// point cluster with no camera confirmation barely registers, which
	// is why suppressing ~14 camera frames erases a pedestrian from the
	// world model while a vehicle takes ~24 (paper Table II K values).
	LidarAloneGainVehicle    float64
	LidarAloneGainPedestrian float64
	// LidarTrustFrames(Vehicle|Pedestrian): after this many consecutive
	// LiDAR-alone confirmations, the fusion concludes the camera is the
	// one failing and promotes the object to full LiDAR gain. This
	// re-registration delay is what bounds the Disappear attack's
	// blindness window (paper §VI-C: fusion "delays the object
	// registration ... because of disagreement").
	LidarTrustFramesVehicle    int
	LidarTrustFramesPedestrian int
	// LateralGate is the lateral ground-distance gate (meters) for
	// associating sensor evidence with fusion objects. Exceeding it —
	// which is exactly what a Move_Out hijack induces — dissociates the
	// LiDAR from the camera-backed object.
	LateralGate float64
	// LongGateFrac scales the longitudinal gate with depth: mono-camera
	// depth error grows roughly linearly with range, so the gate must
	// too. The gate is max(LongGateMin, LongGateFrac * depth).
	LongGateFrac float64
	LongGateMin  float64
	// DropBelow removes an object whose confidence falls under it.
	DropBelow float64
	// VelBeta is the alpha-beta velocity smoothing factor for the
	// longitudinal axis; VelBetaLateral is the (slower) lateral one —
	// lateral velocity differentiates the noisiest camera axis, so it
	// needs heavier smoothing to avoid phantom cut-ins.
	VelBeta        float64
	VelBetaLateral float64
	// CamLateralWeight and CamLongitudinalWeight blend camera vs LiDAR
	// positions when both confirm: the camera wins laterally (better
	// angular resolution), the LiDAR owns longitudinal range (direct
	// ranging; mono-camera depth is quantization-limited).
	CamLateralWeight      float64
	CamLongitudinalWeight float64
	// Confident is the confidence level at which the planner treats the
	// object as real. Exported here so the planner and the attacker's
	// safety model agree on it.
	Confident float64
	// MaxLatStep and MaxLongStep rate-limit camera-sourced position
	// updates of established objects (m per frame): physical objects do
	// not teleport, so a fresh (noisy) camera track re-association must
	// not yank a confident object sideways into the EV corridor.
	MaxLatStep  float64
	MaxLongStep float64
	// CamCreateMaxDepth bounds new-object creation from camera-only
	// evidence: beyond it, mono-camera depth is too unreliable to seed
	// the world model (existing objects may still be updated).
	CamCreateMaxDepth float64
	// GhostMissFrames drops an object that has had no sensor
	// confirmation for this many frames and no recent LiDAR backing —
	// it is stale extrapolation, not evidence.
	GhostMissFrames int
	// ProbationFrames caps a camera-only newborn's confidence below the
	// planner threshold until its mono-depth estimate has had time to
	// converge: a single noisy bounding box must not conjure a braking
	// target out of thin air.
	ProbationFrames int
	// ProbationCap is that confidence cap.
	ProbationCap float64
}

// DefaultConfig returns the fusion tuning used across the reproduction.
// With these constants a camera-only object (pedestrian beyond LiDAR
// range) fades from confident to ignored in ~13-14 frames of camera
// suppression, and a dual-sensor vehicle in ~24 frames — matching the
// K values the paper reports for Disappear attacks (Table II).
func DefaultConfig() Config {
	return Config{
		Decay:                      0.95,
		CameraGain:                 0.08,
		LidarGain:                  0.05,
		LidarAloneGainVehicle:      0.015,
		LidarAloneGainPedestrian:   0.004,
		LidarTrustFramesVehicle:    75,
		LidarTrustFramesPedestrian: 60,
		LateralGate:                1.8,
		LongGateFrac:               0.2,
		LongGateMin:                3.0,
		DropBelow:                  0.008,
		VelBeta:                    0.25,
		VelBetaLateral:             0.12,
		CamLateralWeight:           0.65,
		CamLongitudinalWeight:      0,
		Confident:                  0.5,
		MaxLatStep:                 0.35,
		MaxLongStep:                2.0,
		CamCreateMaxDepth:          55,
		GhostMissFrames:            12,
		ProbationFrames:            8,
		ProbationCap:               0.45,
	}
}

// Velocity spikes beyond these bounds (m/s) are association or
// quantization artifacts, not physics, and are excluded from the
// velocity smoother.
const (
	maxCredibleVelX = 22.0
	maxCredibleVelY = 8.0
)

// Object is one entry of the fused world model.
type Object struct {
	ID    int
	Class sim.Class
	// Rel is the fused position relative to the EV (x ahead, y right),
	// center to center, in meters.
	Rel geom.Vec2
	// Vel is the smoothed relative velocity in m/s.
	Vel geom.Vec2
	// Size is the believed physical extent.
	Size sim.Size
	// Confidence in [0, 1]; the planner reacts above Config.Confident.
	Confidence float64
	// CameraTrackID is the image-space track backing this object
	// (0 when LiDAR-only).
	CameraTrackID int
	// CameraSeen/LidarSeen report which sensors confirmed this frame.
	CameraSeen bool
	LidarSeen  bool
	// Age is frames since creation; MissFrames since last confirmation.
	Age        int
	MissFrames int

	prevRel geom.Vec2
	hasPrev bool
	// lidarFresh counts down from lidarOwnsRangeFrames after each LiDAR
	// confirmation; while positive, the LiDAR-derived longitudinal range
	// is kept in preference to the quantization-limited camera depth.
	lidarFresh int
	// lidarStreak counts consecutive LiDAR-alone confirmations toward
	// the LidarTrustFrames promotion.
	lidarStreak int
	// drop marks the object for removal within one merge pass.
	drop bool
}

// lidarOwnsRangeFrames is how long a LiDAR range fix outranks camera
// depth estimates.
const lidarOwnsRangeFrames = 8

// Confident reports whether the object clears the planner threshold.
func (o *Object) Confident(cfg Config) bool { return o.Confidence >= cfg.Confident }

// Fusion is the sensor-fusion stage. Its per-frame working storage —
// back-projected camera observations, the returned snapshot and
// reaped Object structs — is struct-owned and reused across frames,
// so a warm Step performs no heap allocations.
type Fusion struct {
	cfg     Config
	cam     *sensor.Camera
	objects []*Object
	nextID  int

	obs  []camObs  // per-frame back-projection scratch
	out  []Object  // per-frame snapshot scratch
	free []*Object // recycled objects
}

// New creates a fusion stage using the camera geometry for
// back-projection of image tracks.
func New(cfg Config, cam *sensor.Camera) *Fusion {
	return &Fusion{cfg: cfg, cam: cam, nextID: 1}
}

// Config returns the fusion configuration.
func (f *Fusion) Config() Config { return f.cfg }

// Reset drops all fused objects, recycling them for the next episode.
func (f *Fusion) Reset() {
	f.free = append(f.free, f.objects...)
	f.objects = f.objects[:0]
	f.nextID = 1
}

// camObs is a camera track back-projected to the ground plane.
type camObs struct {
	trackID  int
	class    sim.Class
	rel      geom.Vec2
	width    float64
	coasting bool
}

// Step fuses the current camera tracks and LiDAR detections into the
// world model and returns a snapshot of it. dt is the frame period in
// seconds. The returned slice is reused by the next Step call; callers
// that retain a snapshot across frames must use Objects instead.
func (f *Fusion) Step(tracks []*track.Track, lidar []sensor.Detection, dt float64) []Object {
	// Decay first: confirmation this frame must fight the decay.
	for _, o := range f.objects {
		o.Confidence *= f.cfg.Decay
		o.Age++
		o.MissFrames++
		o.CameraSeen = false
		o.LidarSeen = false
		if o.lidarFresh > 0 {
			o.lidarFresh--
		}
	}

	// Back-project confirmed camera tracks to the ground plane.
	obs := f.obs[:0]
	for _, t := range tracks {
		if !t.Confirmed {
			continue
		}
		if t.Misses > 2 {
			// A track coasting on stale Kalman velocity extrapolates
			// unreliable ground positions; after a couple of frames the
			// fused object is better served by LiDAR and its own
			// velocity estimate.
			continue
		}
		box := t.Box()
		if f.cam.BoxClipped(box) {
			// A border-clipped silhouette back-projects garbage; leave
			// the object to LiDAR and prediction for these frames.
			continue
		}
		rel, ok := f.cam.BackProject(box)
		if !ok {
			continue
		}
		obs = append(obs, camObs{
			trackID:  t.ID,
			class:    t.Class,
			rel:      rel,
			width:    f.cam.WidthFromBox(t.Box(), rel.X),
			coasting: t.Coasting(),
		})
	}
	f.obs = obs

	// Camera evidence: prefer the object already backed by the same
	// image track — unless that binding has gone stale (the object has
	// drifted out of gate from where the track now projects) — then
	// fall back to nearest-in-gate.
	for _, ob := range obs {
		tgt := f.findByTrack(ob.trackID)
		if tgt != nil && !f.inGate(tgt.Rel, ob.rel) {
			tgt.CameraTrackID = 0
			tgt = nil
		}
		if tgt == nil {
			tgt = f.nearest(ob.rel, func(o *Object) bool { return !o.CameraSeen })
		}
		if tgt == nil {
			if ob.rel.X > f.cfg.CamCreateMaxDepth {
				continue // mono-depth too unreliable to seed an object
			}
			tgt = f.newObject(ob.class, ob.rel)
		}
		tgt.CameraTrackID = ob.trackID
		// LiDAR owns classification while it has a fresh fix; a single
		// noisy camera box must not flip an established pedestrian into
		// a vehicle (or vice versa).
		if tgt.lidarFresh == 0 {
			tgt.Class = ob.class
		}
		// The camera always owns the lateral estimate; it only supplies
		// range when no recent LiDAR fix exists. Established objects
		// move at most MaxLat/LongStep per frame.
		newRel := ob.rel
		if tgt.lidarFresh > 0 {
			newRel.X = tgt.Rel.X
		}
		if tgt.hasPrev && tgt.Confidence > 0.35 {
			newRel.Y = tgt.Rel.Y + geom.Clamp(newRel.Y-tgt.Rel.Y, -f.cfg.MaxLatStep, f.cfg.MaxLatStep)
			newRel.X = tgt.Rel.X + geom.Clamp(newRel.X-tgt.Rel.X, -f.cfg.MaxLongStep, f.cfg.MaxLongStep)
		}
		tgt.Rel = newRel
		tgt.Size = sizeFor(ob.class, ob.width)
		if !ob.coasting {
			tgt.CameraSeen = true
			tgt.Confidence += f.cfg.CameraGain
			tgt.MissFrames = 0
		}
	}

	// LiDAR evidence. Prefer fusing into an object the camera confirmed
	// this frame; only then consider camera-silent objects.
	for _, ld := range lidar {
		tgt := f.nearest(ld.RelPos, func(o *Object) bool { return o.CameraSeen && !o.LidarSeen })
		if tgt == nil {
			tgt = f.nearest(ld.RelPos, func(o *Object) bool { return !o.LidarSeen })
		}
		if tgt == nil {
			tgt = f.newObject(ld.Class, ld.RelPos)
			tgt.Size = ld.Size
		}
		tgt.LidarSeen = true
		tgt.lidarFresh = lidarOwnsRangeFrames
		if tgt.CameraSeen {
			// Agreement: full gain and a camera/LiDAR position blend.
			tgt.lidarStreak = 0
			tgt.Confidence += f.cfg.LidarGain
			tgt.Rel = geom.V(
				f.cfg.CamLongitudinalWeight*tgt.Rel.X+(1-f.cfg.CamLongitudinalWeight)*ld.RelPos.X,
				f.cfg.CamLateralWeight*tgt.Rel.Y+(1-f.cfg.CamLateralWeight)*ld.RelPos.Y,
			)
			tgt.MissFrames = 0
		} else {
			// Disagreement: the camera should see this and does not.
			// Persistent LiDAR-alone evidence eventually wins: after the
			// class's trust delay, the object re-registers on LiDAR.
			tgt.lidarStreak++
			gain, trust := f.cfg.LidarAloneGainVehicle, f.cfg.LidarTrustFramesVehicle
			if tgt.Class == sim.ClassPedestrian {
				gain, trust = f.cfg.LidarAloneGainPedestrian, f.cfg.LidarTrustFramesPedestrian
			}
			if tgt.lidarStreak >= trust {
				gain = f.cfg.LidarGain
			}
			tgt.Confidence += gain
			tgt.MissFrames = 0 // a LiDAR return is still a sensor fix
			tgt.Class = ld.Class
			tgt.Rel = ld.RelPos
			if ld.Size.Width > 0 {
				tgt.Size = ld.Size
			}
		}
	}

	f.mergeDuplicates()

	// Velocity smoothing, clamping and reaping.
	live := f.objects[:0]
	for _, o := range f.objects {
		o.Confidence = geom.Clamp(o.Confidence, 0, 1)
		if o.Age < f.cfg.ProbationFrames && o.Confidence > f.cfg.ProbationCap {
			o.Confidence = f.cfg.ProbationCap
		}
		if o.hasPrev && dt > 0 {
			raw := o.Rel.Sub(o.prevRel).Scale(1 / dt)
			if raw.X > -maxCredibleVelX && raw.X < maxCredibleVelX {
				o.Vel.X += f.cfg.VelBeta * (raw.X - o.Vel.X)
			}
			if raw.Y > -maxCredibleVelY && raw.Y < maxCredibleVelY {
				o.Vel.Y += f.cfg.VelBetaLateral * (raw.Y - o.Vel.Y)
			}
		}
		o.prevRel = o.Rel
		o.hasPrev = true
		ghost := o.MissFrames > f.cfg.GhostMissFrames && o.lidarFresh == 0
		if o.Confidence >= f.cfg.DropBelow && !ghost {
			live = append(live, o)
		} else {
			f.free = append(f.free, o)
		}
	}
	f.objects = live

	out := f.out[:0]
	for _, o := range f.objects {
		out = append(out, *o)
	}
	f.out = out
	return out
}

// Objects returns a snapshot of the current world model.
func (f *Fusion) Objects() []Object {
	out := make([]Object, len(f.objects))
	for i, o := range f.objects {
		out[i] = *o
	}
	return out
}

func (f *Fusion) findByTrack(trackID int) *Object {
	for _, o := range f.objects {
		if o.CameraTrackID == trackID {
			return o
		}
	}
	return nil
}

// inGate reports whether two ground positions fall within the
// anisotropic association gate.
func (f *Fusion) inGate(a, b geom.Vec2) bool {
	longGate := f.cfg.LongGateFrac * b.X
	if longGate < f.cfg.LongGateMin {
		longGate = f.cfg.LongGateMin
	}
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx <= longGate && -dx <= longGate && dy <= f.cfg.LateralGate && -dy <= f.cfg.LateralGate
}

// nearest returns the closest eligible object within the anisotropic
// association gate, or nil. The longitudinal gate widens with depth
// (mono-camera ranging error); the lateral gate is tight, so lateral
// disagreement between camera and LiDAR splits the evidence into
// separate objects.
func (f *Fusion) nearest(rel geom.Vec2, eligible func(*Object) bool) *Object {
	var best *Object
	bestDist := 0.0
	longGate := f.cfg.LongGateFrac * rel.X
	if longGate < f.cfg.LongGateMin {
		longGate = f.cfg.LongGateMin
	}
	for _, o := range f.objects {
		if eligible != nil && !eligible(o) {
			continue
		}
		dx := o.Rel.X - rel.X
		dy := o.Rel.Y - rel.Y
		if dx > longGate || -dx > longGate || dy > f.cfg.LateralGate || -dy > f.cfg.LateralGate {
			continue
		}
		if d := rel.Dist(o.Rel); best == nil || d < bestDist {
			best, bestDist = o, d
		}
	}
	return best
}

// mergeDuplicates collapses same-class objects that have converged onto
// (nearly) the same ground position — typically a stale LiDAR-spawned
// twin of a camera-backed object. The camera-backed (else
// higher-confidence) object survives and absorbs the twin's confidence.
func (f *Fusion) mergeDuplicates() {
	const latGate, longGate = 0.9, 2.2
	ndropped := 0
	for _, o := range f.objects {
		o.drop = false
	}
	for i := 0; i < len(f.objects); i++ {
		a := f.objects[i]
		if a.drop {
			continue
		}
		for j := i + 1; j < len(f.objects); j++ {
			b := f.objects[j]
			if b.drop || a.Class != b.Class {
				continue
			}
			dx, dy := a.Rel.X-b.Rel.X, a.Rel.Y-b.Rel.Y
			if dx > longGate || -dx > longGate || dy > latGate || -dy > latGate {
				continue
			}
			// Keep the established object (higher confidence, then older):
			// a newborn camera track must never overthrow a tracked
			// object's velocity history and streaks. The newborn's
			// sensor evidence is absorbed instead.
			keep, drop := a, b
			if b.Confidence > a.Confidence || (b.Confidence == a.Confidence && b.Age > a.Age) {
				keep, drop = b, a
			}
			if drop.CameraSeen && !keep.CameraSeen {
				keep.CameraSeen = true
				keep.CameraTrackID = drop.CameraTrackID
				keep.Confidence += f.cfg.CameraGain
				keep.MissFrames = 0
			}
			keep.LidarSeen = keep.LidarSeen || drop.LidarSeen
			drop.drop = true
			ndropped++
			if drop == a {
				break // a is gone; move to the next outer object
			}
		}
	}
	if ndropped == 0 {
		return
	}
	live := f.objects[:0]
	for _, o := range f.objects {
		if !o.drop {
			live = append(live, o)
		} else {
			f.free = append(f.free, o)
		}
	}
	f.objects = live
}

func (f *Fusion) newObject(cls sim.Class, rel geom.Vec2) *Object {
	var o *Object
	if n := len(f.free); n > 0 {
		o = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		o = &Object{}
	}
	*o = Object{ID: f.nextID, Class: cls, Rel: rel, Size: sizeFor(cls, 0)}
	f.nextID++
	f.objects = append(f.objects, o)
	return o
}

// sizeFor builds a plausible physical size from a class and an observed
// metric width (0 means unknown).
func sizeFor(cls sim.Class, width float64) sim.Size {
	base := sim.SizeCar
	if cls == sim.ClassPedestrian {
		base = sim.SizePedestrian
	}
	if width > 0.2 && width < 4 {
		base.Width = width
	}
	return base
}
