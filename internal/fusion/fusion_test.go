package fusion

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
)

const dt = 1.0 / 15

func lidarDet(x, y float64, cls sim.Class) sensor.Detection {
	size := sim.SizeCar
	if cls == sim.ClassPedestrian {
		size = sim.SizePedestrian
	}
	return sensor.Detection{Class: cls, RelPos: geom.V(x, y), Size: size}
}

func TestLidarOnlyDiscountThenTrustPromotion(t *testing.T) {
	cfg := DefaultConfig()
	f := New(cfg, sensor.DefaultCamera())
	var objs []Object
	// During the disagreement window the object must stay below the
	// planner threshold.
	for i := 0; i < cfg.LidarTrustFramesVehicle-2; i++ {
		objs = f.Step(nil, []sensor.Detection{lidarDet(40, 0, sim.ClassVehicle)}, dt)
		if len(objs) != 1 {
			t.Fatalf("frame %d: objects = %d, want 1", i, len(objs))
		}
		if objs[0].Confidence >= cfg.Confident {
			t.Fatalf("frame %d: confidence %v crossed %v during discount window",
				i, objs[0].Confidence, cfg.Confident)
		}
	}
	o := objs[0]
	// Near the LiDAR-alone equilibrium of c' = decay*c + gain.
	want := cfg.LidarAloneGainVehicle / (1 - cfg.Decay)
	if math.Abs(o.Confidence-want) > 0.06 {
		t.Errorf("confidence %v, want equilibrium ~%v", o.Confidence, want)
	}
	if !o.LidarSeen || o.CameraSeen {
		t.Errorf("sensor flags wrong: %+v", o)
	}
	// Persistent LiDAR evidence eventually re-registers the object.
	for i := 0; i < 40; i++ {
		objs = f.Step(nil, []sensor.Detection{lidarDet(40, 0, sim.ClassVehicle)}, dt)
	}
	if objs[0].Confidence < cfg.Confident {
		t.Errorf("confidence %v after trust promotion, want >= %v", objs[0].Confidence, cfg.Confident)
	}
}

func TestDecayReachesDropThreshold(t *testing.T) {
	cfg := DefaultConfig()
	f := New(cfg, sensor.DefaultCamera())
	// Build a LiDAR-backed object, then cut all sensors.
	for i := 0; i < 50; i++ {
		f.Step(nil, []sensor.Detection{lidarDet(40, 0, sim.ClassVehicle)}, dt)
	}
	frames := 0
	for ; frames < 500; frames++ {
		if len(f.Step(nil, nil, dt)) == 0 {
			break
		}
	}
	if frames >= 500 {
		t.Fatal("unconfirmed object never dropped")
	}
}

func TestLidarObjectsForDistinctActorsStaySeparate(t *testing.T) {
	f := New(DefaultConfig(), sensor.DefaultCamera())
	var objs []Object
	for i := 0; i < 60; i++ {
		objs = f.Step(nil, []sensor.Detection{
			lidarDet(40, 0, sim.ClassVehicle),
			lidarDet(40, 3.5, sim.ClassVehicle), // adjacent lane
		}, dt)
	}
	if len(objs) != 2 {
		t.Fatalf("objects = %d, want 2 (lateral gate must separate lanes)", len(objs))
	}
}

func TestMergeAbsorbsDuplicate(t *testing.T) {
	f := New(DefaultConfig(), sensor.DefaultCamera())
	// Spawn two same-class lidar objects that drift onto the same spot.
	f.Step(nil, []sensor.Detection{lidarDet(40, 0, sim.ClassVehicle)}, dt)
	f.Step(nil, []sensor.Detection{lidarDet(48, 1.5, sim.ClassVehicle)}, dt)
	var objs []Object
	for i := 0; i < 30; i++ {
		objs = f.Step(nil, []sensor.Detection{lidarDet(44, 0.5, sim.ClassVehicle)}, dt)
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d, want 1 after merge", len(objs))
	}
}

func TestVelocityEstimateFromLidar(t *testing.T) {
	f := New(DefaultConfig(), sensor.DefaultCamera())
	var objs []Object
	x := 60.0
	for i := 0; i < 90; i++ {
		objs = f.Step(nil, []sensor.Detection{lidarDet(x, 0, sim.ClassVehicle)}, dt)
		x -= 5 * dt // closing at 5 m/s
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d", len(objs))
	}
	if math.Abs(objs[0].Vel.X-(-5)) > 0.5 {
		t.Errorf("vel = %v, want ~-5", objs[0].Vel.X)
	}
}

func TestResetClears(t *testing.T) {
	f := New(DefaultConfig(), sensor.DefaultCamera())
	f.Step(nil, []sensor.Detection{lidarDet(40, 0, sim.ClassVehicle)}, dt)
	f.Reset()
	if len(f.Objects()) != 0 {
		t.Error("Reset left objects")
	}
}

func TestConfidentHelper(t *testing.T) {
	cfg := DefaultConfig()
	o := Object{Confidence: cfg.Confident + 0.01}
	if !o.Confident(cfg) {
		t.Error("object above threshold should be confident")
	}
	o.Confidence = cfg.Confident - 0.01
	if o.Confident(cfg) {
		t.Error("object below threshold should not be confident")
	}
}
