package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// episode is a small CPU-bound stand-in for a closed-loop run whose
// result depends only on its seed.
func episode(ctx context.Context, seed int64) (any, error) {
	v := uint64(seed)
	for i := 0; i < 2000; i++ {
		if i%512 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		v = v*6364136223846793005 + 1442695040888963407
	}
	return v, nil
}

func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = episode
	}
	var want []Result
	for _, workers := range []int{1, 4, 8} {
		got, err := New(WithWorkers(workers)).RunAll(42, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(jobs))
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from 1-worker run", workers)
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = func(_ context.Context, seed int64) (any, error) { return seed, nil }
	}
	results, err := New(WithWorkers(2)).RunAll(100, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Index != i || r.Seed != 100+int64(i) || r.Value.(int64) != r.Seed {
			t.Errorf("result %d = %+v, want additive seed %d", i, r, 100+int64(i))
		}
	}

	results, err = New(WithSeedDerivation(SplitMixSeeds)).RunAll(100, jobs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i, r := range results {
		if r.Seed != SplitMixSeeds(100, i) {
			t.Errorf("splitmix seed %d = %d, want %d", i, r.Seed, SplitMixSeeds(100, i))
		}
		if seen[r.Seed] {
			t.Errorf("splitmix seed collision at index %d", i)
		}
		seen[r.Seed] = true
	}
}

func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 128
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, seed int64) (any, error) {
			if seed >= 3 { // let a few jobs through, then stall on ctx
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(5 * time.Second):
					return nil, errors.New("cancellation never arrived")
				}
			}
			return seed, nil
		}
	}
	eng := New(WithWorkers(4), WithContext(ctx), WithProgress(func(done, total int) {
		if done == 3 {
			cancel()
		}
	}))

	start := time.Now()
	results, err := eng.RunAll(0, jobs)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 || len(results) >= n {
		t.Errorf("got %d results, want partial (0 < n < %d)", len(results), n)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestStreamDeliversAllJobs(t *testing.T) {
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = episode
	}
	seen := map[int]bool{}
	for r := range New(WithWorkers(4)).Stream(7, jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != len(jobs) {
		t.Errorf("stream delivered %d results, want %d", len(seen), len(jobs))
	}
}

func TestProgressReachesTotal(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = episode
	}
	eng := New(WithWorkers(3), WithProgress(func(done, total int) {
		mu.Lock()
		calls = append(calls, done)
		mu.Unlock()
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
	}))
	if _, err := eng.RunAll(1, jobs); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 10 || calls[len(calls)-1] != 10 {
		t.Errorf("progress calls = %v, want monotone 1..10", calls)
	}
}

func TestRunAllSurfacesJobError(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		func(context.Context, int64) (any, error) { return 1, nil },
		func(context.Context, int64) (any, error) { return nil, boom },
		func(context.Context, int64) (any, error) { return 3, nil },
	}
	results, err := New(WithWorkers(2)).RunAll(0, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want all 3 (failures included)", len(results))
	}
	if results[1].Err == nil || results[0].Err != nil || results[2].Err != nil {
		t.Errorf("error attached to wrong result: %+v", results)
	}
}

func TestMapPreservesItemOrder(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	out, err := Map(New(WithWorkers(4)), 10, items,
		func(_ context.Context, seed int64, item string) (string, error) {
			return fmt.Sprintf("%s-%d", item, seed), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a-10", "b-11", "c-12", "d-13"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("Map = %v, want %v", out, want)
	}
}

func TestStreamOrderedDeliversInSubmissionOrder(t *testing.T) {
	const n = 40
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context, seed int64) (any, error) {
			// Early indices sleep longest, so completion order is
			// roughly the reverse of submission order.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return seed, nil
		}
	}
	e := New(WithWorkers(8))
	next := 0
	for r := range e.StreamOrdered(77, jobs) {
		if r.Index != next {
			t.Fatalf("result %d arrived out of order (want index %d)", r.Index, next)
		}
		if r.Value.(int64) != AdditiveSeeds(77, r.Index) {
			t.Errorf("index %d carries seed value %v", r.Index, r.Value)
		}
		next++
	}
	if next != n {
		t.Errorf("delivered %d results, want %d", next, n)
	}
}

func TestStreamOrderedFlushesAfterCancellationGap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	jobs := make([]Job, 30)
	for i := range jobs {
		i := i
		jobs[i] = func(jctx context.Context, seed int64) (any, error) {
			if i == 0 {
				// Hold index 0 until the batch is canceled, so the jobs
				// that completed meanwhile sit behind a gap.
				time.Sleep(50 * time.Millisecond)
				once.Do(cancel)
			} else {
				// Slow enough that the batch cannot drain before the
				// cancellation above lands.
				time.Sleep(10 * time.Millisecond)
			}
			return i, nil
		}
	}
	e := New(WithWorkers(4), WithContext(ctx))
	last := -1
	got := 0
	for r := range e.StreamOrdered(5, jobs) {
		if r.Index <= last {
			t.Fatalf("index %d delivered after %d", r.Index, last)
		}
		last = r.Index
		got++
	}
	if got == 0 || got >= 30 {
		t.Errorf("delivered %d results, want a canceled partial batch", got)
	}
}

// TestWorkerStateOnePerWorker verifies WithWorkerState creates one
// state per worker goroutine, hands it to every job that worker runs,
// and never shares it across workers.
func TestWorkerStateOnePerWorker(t *testing.T) {
	type state struct{ id int64 }
	var created atomic.Int64
	eng := New(WithWorkers(3), WithWorkerState(func() any {
		return &state{id: created.Add(1)}
	}))
	const jobs = 24
	var mu sync.Mutex
	jobStates := make([]*state, 0, jobs)
	js := make([]Job, jobs)
	for i := range js {
		js[i] = func(ctx context.Context, _ int64) (any, error) {
			s, ok := WorkerState(ctx).(*state)
			if !ok || s == nil {
				return nil, errors.New("job saw no worker state")
			}
			mu.Lock()
			jobStates = append(jobStates, s)
			mu.Unlock()
			time.Sleep(time.Millisecond) // let several workers engage
			return nil, nil
		}
	}
	if _, err := eng.RunAll(0, js); err != nil {
		t.Fatal(err)
	}
	if n := created.Load(); n < 1 || n > 3 {
		t.Errorf("created %d worker states, want between 1 and the pool size 3", n)
	}
	distinct := map[*state]bool{}
	for _, s := range jobStates {
		distinct[s] = true
	}
	if len(distinct) != int(created.Load()) {
		t.Errorf("jobs saw %d distinct states but %d were created", len(distinct), created.Load())
	}
}

// TestWorkerStateAbsent verifies WorkerState returns nil without a
// factory and With does not mutate the base engine.
func TestWorkerStateAbsent(t *testing.T) {
	base := New(WithWorkers(2))
	job := func(ctx context.Context, _ int64) (any, error) {
		return WorkerState(ctx), nil
	}
	rs, err := base.RunAll(0, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Value != nil {
		t.Errorf("WorkerState without a factory = %v, want nil", rs[0].Value)
	}

	derived := base.With(WithWorkerState(func() any { return 42 }))
	rs, err = derived.RunAll(0, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Value != 42 {
		t.Errorf("derived engine job state = %v, want 42", rs[0].Value)
	}
	rs, err = base.RunAll(0, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Value != nil {
		t.Errorf("With mutated the base engine: state = %v, want nil", rs[0].Value)
	}
}

// TestEpisodeBatchDeterministic verifies results are identical across
// every (workers, episode-batch) combination — lanes change scheduling,
// never outcomes.
func TestEpisodeBatchDeterministic(t *testing.T) {
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = episode
	}
	var want []Result
	for _, workers := range []int{1, 3} {
		for _, lanes := range []int{1, 2, 4, 8} {
			got, err := New(WithWorkers(workers), WithEpisodeBatch(lanes)).RunAll(7, jobs)
			if err != nil {
				t.Fatalf("workers=%d lanes=%d: %v", workers, lanes, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d lanes=%d: results differ from baseline", workers, lanes)
			}
		}
	}
}

// TestWorkerGroupStateSharedAcrossLanes verifies a worker slot's lanes
// all see the same group-state value while per-lane worker state stays
// private, and that group states are never shared across worker slots.
func TestWorkerGroupStateSharedAcrossLanes(t *testing.T) {
	type group struct{ id int64 }
	type lane struct{ id int64 }
	var groups, laneStates atomic.Int64
	eng := New(
		WithWorkers(2),
		WithEpisodeBatch(3),
		WithWorkerGroupState(func() any { return &group{id: groups.Add(1)} }),
		WithWorkerState(func() any { return &lane{id: laneStates.Add(1)} }),
	)
	const jobs = 36
	var mu sync.Mutex
	lanesPerGroup := make(map[*group]map[*lane]bool)
	js := make([]Job, jobs)
	for i := range js {
		js[i] = func(ctx context.Context, _ int64) (any, error) {
			g, ok := GroupState(ctx).(*group)
			if !ok || g == nil {
				return nil, errors.New("job saw no group state")
			}
			l, ok := WorkerState(ctx).(*lane)
			if !ok || l == nil {
				return nil, errors.New("job saw no lane state")
			}
			mu.Lock()
			if lanesPerGroup[g] == nil {
				lanesPerGroup[g] = map[*lane]bool{}
			}
			lanesPerGroup[g][l] = true
			mu.Unlock()
			time.Sleep(time.Millisecond) // let several lanes engage
			return nil, nil
		}
	}
	if _, err := eng.RunAll(0, js); err != nil {
		t.Fatal(err)
	}
	if n := groups.Load(); n < 1 || n > 2 {
		t.Errorf("created %d group states, want between 1 and the worker count 2", n)
	}
	if len(lanesPerGroup) != int(groups.Load()) {
		t.Errorf("jobs saw %d distinct groups but %d were created", len(lanesPerGroup), groups.Load())
	}
	// A lane state must never appear under two groups.
	seen := map[*lane]*group{}
	total := 0
	for g, ls := range lanesPerGroup {
		if len(ls) > 3 {
			t.Errorf("group %v served %d lanes, want at most the batch size 3", g, len(ls))
		}
		total += len(ls)
		for l := range ls {
			if prev, ok := seen[l]; ok && prev != g {
				t.Errorf("lane state shared across groups %v and %v", prev, g)
			}
			seen[l] = g
		}
	}
	if total != int(laneStates.Load()) {
		t.Errorf("jobs saw %d distinct lane states but %d were created", total, laneStates.Load())
	}
}

// TestEpisodeBatchClampsWorkers: with lanes covering all jobs, the
// engine must not spin up extra worker slots (and their group states).
func TestEpisodeBatchClampsWorkers(t *testing.T) {
	var groups atomic.Int64
	eng := New(
		WithWorkers(8),
		WithEpisodeBatch(4),
		WithWorkerGroupState(func() any { return groups.Add(1) }),
	)
	jobs := make([]Job, 6) // ceil(6/4) = 2 slots
	for i := range jobs {
		jobs[i] = episode
	}
	if _, err := eng.RunAll(0, jobs); err != nil {
		t.Fatal(err)
	}
	if n := groups.Load(); n > 2 {
		t.Errorf("%d worker groups created for 6 jobs at batch 4, want at most 2", n)
	}
}
