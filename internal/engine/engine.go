// Package engine is the repo's single episode-execution API: a
// worker-pool runner for batches of independent closed-loop jobs.
// The paper's evaluation (Table II, Figs. 6-8) is hundreds of
// independent episodes per campaign, which makes campaigns
// embarrassingly parallel; every harness in the repo (campaigns,
// golden baselines, training-data generation, the Fig. 5
// characterization) submits its episodes through an Engine.
//
// Determinism is the central contract: each job receives a seed
// derived from (baseSeed, jobIndex) only, and RunAll returns results
// in submission order, so aggregates are bit-identical regardless of
// worker count or completion order.
package engine

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
)

// Job-level instrumentation: latency and throughput of individual
// engine jobs across every batch in the process. Purely observational
// — seeds remain a function of (baseSeed, index) alone.
var (
	jobSeconds = obs.NewHistogram("robotack_engine_job_seconds",
		"Engine job (episode) wall time.", obs.ExpBuckets(1e-4, 2, 16))
	jobsTotal = obs.NewCounter("robotack_engine_jobs_total",
		"Engine jobs completed (including failed).")
)

// Job is one unit of work — typically a single closed-loop episode.
// It receives the engine's context (canceled jobs should return
// promptly with ctx.Err()) and a seed derived deterministically from
// the batch's base seed and the job's index.
type Job func(ctx context.Context, seed int64) (any, error)

// Result carries one job's outcome.
type Result struct {
	// Index is the job's position in the submitted batch.
	Index int
	// Seed is the derived seed the job ran with.
	Seed int64
	// Value is the job's payload (nil when Err is non-nil).
	Value any
	// Err is the job's failure, if any.
	Err error
}

// SeedFunc derives a job's seed from the batch base seed and the job
// index. It must be a pure function of its arguments — that is what
// makes a batch replay exactly under any worker count.
type SeedFunc func(baseSeed int64, index int) int64

// AdditiveSeeds is the default derivation, baseSeed + index. It
// matches the repo's historical sequential campaigns, so a parallel
// campaign reproduces the sequential results bit for bit.
func AdditiveSeeds(baseSeed int64, index int) int64 {
	return baseSeed + int64(index)
}

// SplitMixSeeds is an alternative derivation that decorrelates nearby
// indices with a SplitMix64 finalizer, for workloads where adjacent
// additive seeds would correlate.
func SplitMixSeeds(baseSeed int64, index int) int64 {
	z := uint64(baseSeed) + uint64(index)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Engine runs batches of jobs on a fixed-size worker pool.
type Engine struct {
	workers      int
	episodeBatch int
	ctx          context.Context
	progress     func(done, total int)
	seedFn       SeedFunc
	workerState  func() any
	groupState   func() any
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the worker-pool size. Values below 1 mean
// DefaultWorkers.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// WithContext attaches a cancellation context: once it is canceled,
// no further jobs are dispatched and RunAll/Stream return promptly
// with the results completed so far.
func WithContext(ctx context.Context) Option {
	return func(e *Engine) { e.ctx = ctx }
}

// WithProgress registers a callback invoked (serialized) after each
// job completes, with the number done and the batch total.
func WithProgress(fn func(done, total int)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithSeedDerivation replaces the default AdditiveSeeds derivation.
func WithSeedDerivation(fn SeedFunc) Option {
	return func(e *Engine) {
		if fn != nil {
			e.seedFn = fn
		}
	}
}

// WithWorkerState registers a factory producing one state value per
// worker goroutine per batch. Jobs retrieve their worker's state with
// WorkerState(ctx). Because a worker runs its jobs sequentially, the
// state needs no locking — it is the hook for per-worker scratch
// (pooled pipelines, cloned oracles) that episodes reuse instead of
// reallocating. The factory is invoked lazily, on a worker's first
// job; state must never leak between workers, and jobs must leave it
// reset for the next job.
func WithWorkerState(fn func() any) Option {
	return func(e *Engine) { e.workerState = fn }
}

// WithEpisodeBatch sets the lockstep episode-lane count: each worker
// advances k independent episodes concurrently (k lane goroutines per
// worker slot, each with its own WithWorkerState value), which is what
// feeds a per-worker inference batcher enough simultaneous oracle
// queries to answer them as one batched forward pass. Lanes pull jobs
// from the shared queue, so a lane whose episode finishes early
// backfills immediately. Values below 2 mean no lanes (the default
// single-episode worker loop). Seeds still derive from
// (baseSeed, index) only, so results are byte-identical at any
// (workers, batch) combination.
func WithEpisodeBatch(k int) Option {
	return func(e *Engine) {
		if k >= 1 {
			e.episodeBatch = k
		}
	}
}

// WithWorkerGroupState registers a factory producing one state value
// per worker SLOT per batch — shared by all of the slot's episode
// lanes, unlike WithWorkerState's per-lane values. Jobs retrieve it
// with GroupState(ctx). It is the hook for the cross-lane inference
// batcher; the value must be safe for concurrent use by the slot's
// lanes.
func WithWorkerGroupState(fn func() any) Option {
	return func(e *Engine) { e.groupState = fn }
}

// workerStateKey carries the per-worker state in the job context.
type workerStateKey struct{}

// groupStateKey carries the per-worker-slot shared state in the job
// context.
type groupStateKey struct{}

// WorkerState returns the value the engine's WithWorkerState factory
// produced for the executing worker, or nil when the engine has no
// factory (or ctx is not an engine job context).
func WorkerState(ctx context.Context) any {
	return ctx.Value(workerStateKey{})
}

// GroupState returns the value the engine's WithWorkerGroupState
// factory produced for the executing worker slot (shared across its
// episode lanes), or nil.
func GroupState(ctx context.Context) any {
	return ctx.Value(groupStateKey{})
}

// With derives a new Engine from e with the given options applied —
// the base engine is unchanged, so harnesses can attach batch-specific
// wiring (typically WithWorkerState) to a caller-provided engine.
func (e *Engine) With(opts ...Option) *Engine {
	out := *e
	for _, opt := range opts {
		opt(&out)
	}
	return &out
}

// DefaultWorkers is the default pool size: one worker per available
// CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// New creates an Engine. With no options it uses DefaultWorkers
// workers, a background context and AdditiveSeeds.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers: DefaultWorkers(),
		ctx:     context.Background(),
		seedFn:  AdditiveSeeds,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Workers reports the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// EpisodeBatch reports the configured lockstep episode-lane count per
// worker slot (1: the default single-episode worker loop).
func (e *Engine) EpisodeBatch() int {
	if e.episodeBatch < 1 {
		return 1
	}
	return e.episodeBatch
}

// Context returns the engine's cancellation context, so batch
// consumers (e.g. streaming aggregators built on StreamOrdered) can
// distinguish a canceled batch from a completed one.
func (e *Engine) Context() context.Context { return e.ctx }

// Stream executes the batch and returns a channel that yields one
// Result per completed job, in completion order. The channel is
// closed once every dispatched job has finished; on cancellation no
// further jobs start but every job that did run still delivers its
// Result. Seeds are derived from (baseSeed, index), never from
// scheduling, so consumers may re-order freely without losing
// reproducibility. The channel is buffered to the batch size, so a
// consumer may stop ranging early without stranding the workers.
func (e *Engine) Stream(baseSeed int64, jobs []Job) <-chan Result {
	// Full-batch buffering keeps delivery non-blocking: a completed
	// job's result is never dropped in a cancellation race and never
	// pins a worker to an abandoned consumer.
	out := make(chan Result, len(jobs))
	lanes := e.EpisodeBatch()
	workers := e.workers
	if max := (len(jobs) + lanes - 1) / lanes; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}

	// Trace context, resolved once per batch: when the engine's context
	// carries an active span (the lease or worker-job span), every job
	// gets its own child span whose ID derives from the job's seed — so
	// reruns of the same campaign produce identical span IDs.
	sc, traced := trace.FromContext(e.ctx)

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-e.ctx.Done():
				return
			}
		}
	}()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	// runLane is one job-pulling loop: the whole worker under the
	// default single-episode mode, or one of a worker slot's lanes
	// under WithEpisodeBatch. laneCtx carries the slot's shared group
	// state; the lane attaches its own worker state lazily.
	runLane := func(laneCtx context.Context) {
		jobCtx := laneCtx
		var jobObs struct {
			init    bool
			seconds obs.HistogramHandle
			total   obs.CounterHandle
		}
		for i := range idx {
			if e.workerState != nil && jobCtx == laneCtx {
				jobCtx = context.WithValue(laneCtx, workerStateKey{}, e.workerState())
			}
			seed := e.seedFn(baseSeed, i)
			en := obs.Enabled()
			var start time.Time
			if en {
				if !jobObs.init {
					jobObs.init = true
					jobObs.seconds = jobSeconds.Handle()
					jobObs.total = jobsTotal.Handle()
				}
				start = time.Now()
			}
			runCtx := jobCtx
			var sp *trace.Span
			if traced {
				sp = sc.Tracer.StartSpan(sc, "engine-job",
					trace.DeriveSpanID(sc.TraceID, uint64(seed), trace.StreamEngineJob))
				runCtx = sp.Context(jobCtx)
			}
			v, err := jobs[i](runCtx, seed)
			sp.Finish()
			if en {
				jobObs.seconds.Observe(time.Since(start).Seconds())
				jobObs.total.Add(1)
			}
			if e.progress != nil {
				mu.Lock()
				done++
				e.progress(done, len(jobs))
				mu.Unlock()
			}
			out <- Result{Index: i, Seed: seed, Value: v, Err: err}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			laneCtx := e.ctx
			if e.groupState != nil {
				laneCtx = context.WithValue(e.ctx, groupStateKey{}, e.groupState())
			}
			if lanes == 1 {
				runLane(laneCtx)
				return
			}
			var lwg sync.WaitGroup
			for l := 0; l < lanes; l++ {
				lwg.Add(1)
				go func() {
					defer lwg.Done()
					runLane(laneCtx)
				}()
			}
			lwg.Wait()
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// StreamOrdered executes the batch and yields results in submission
// (index) order: a completed job's result is held back until every
// lower-index job has been delivered. This is the ordering hook that
// lets a consumer fold aggregates or append to an external log
// incrementally — episode k lands before episode k+1 — while the jobs
// themselves still run on the full worker pool. Like Stream, the
// channel is buffered to the batch size and closes once every
// dispatched job has delivered; on cancellation the jobs that did
// complete after a gap are flushed at the end, still in index order.
func (e *Engine) StreamOrdered(baseSeed int64, jobs []Job) <-chan Result {
	out := make(chan Result, len(jobs))
	go func() {
		defer close(out)
		pending := make(map[int]Result)
		next := 0
		for r := range e.Stream(baseSeed, jobs) {
			pending[r.Index] = r
			for {
				rr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- rr
				next++
			}
		}
		// A canceled batch can leave completed results beyond a job
		// that never ran; flush them in index order.
		rest := make([]int, 0, len(pending))
		for i := range pending {
			rest = append(rest, i)
		}
		sort.Ints(rest)
		for _, i := range rest {
			out <- pending[i]
		}
	}()
	return out
}

// RunAll executes the batch and returns the collected results ordered
// by job index. The returned error is the context's error if the run
// was canceled (the results then cover only the jobs that finished),
// otherwise the first per-job error by index (all results are still
// returned so callers can aggregate the successes).
func (e *Engine) RunAll(baseSeed int64, jobs []Job) ([]Result, error) {
	results := make([]Result, 0, len(jobs))
	for r := range e.StreamOrdered(baseSeed, jobs) {
		results = append(results, r)
	}
	if len(results) < len(jobs) {
		if err := e.ctx.Err(); err != nil {
			return results, err
		}
	}
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}

// Map is the typed batch helper: it runs fn once per item and returns
// the outputs in item order. On cancellation the returned slice covers
// the completed prefix semantics of RunAll: entries whose jobs never
// ran hold zero values and the context error is returned.
func Map[T, R any](e *Engine, baseSeed int64, items []T, fn func(ctx context.Context, seed int64, item T) (R, error)) ([]R, error) {
	jobs := make([]Job, len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context, seed int64) (any, error) {
			return fn(ctx, seed, item)
		}
	}
	results, err := e.RunAll(baseSeed, jobs)
	out := make([]R, len(items))
	for _, r := range results {
		if r.Err == nil && r.Value != nil {
			out[r.Index] = r.Value.(R)
		}
	}
	return out, err
}
