package policy

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/stats"
)

// runTableII executes the full Table II battery with the given policy
// installed on every smart campaign, persisting into a fresh MemStore.
func runTableII(t *testing.T, pol core.TriggerPolicy, runs int, seed int64) *results.MemStore {
	t.Helper()
	store := results.NewMemStore()
	eng := engine.New(engine.WithWorkers(2))
	for _, c := range experiment.TableIICampaigns() {
		if c.Mode == core.ModeSmart {
			c.Policy = pol
		}
		if _, err := experiment.RunCampaignOn(eng, c, runs, seed, nil, experiment.WithSink(store)); err != nil {
			t.Fatalf("campaign %s: %v", c.Name, err)
		}
	}
	return store
}

// TestPaperTriggerBitIdentical is the zero-drift proof for the policy
// subsystem: the Table II battery driven through PaperTrigger must be
// byte-identical, store record for store record, to the built-in
// smart-mode trigger (Policy == nil).
func TestPaperTriggerBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II battery")
	}
	legacy := runTableII(t, nil, 6, 1000)
	viaPolicy := runTableII(t, PaperTrigger{}, 6, 1000)

	diffs, err := results.Diff(legacy, viaPolicy)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		if d.RunsDelta != 0 || d.EBRateDelta != 0 || d.CrashRateDelta != 0 {
			t.Errorf("campaign %s drifted under PaperTrigger: %+v", d.Name, d)
		}
	}

	a, _ := legacy.Campaigns()
	b, _ := viaPolicy.Campaigns()
	ra, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) != string(rb) {
		t.Errorf("aggregates not byte-identical:\n%s\nvs\n%s", ra, rb)
	}
	for _, name := range legacy.EpisodeCampaigns() {
		ea, _ := legacy.Episodes(name)
		eb, _ := viaPolicy.Episodes(name)
		ja, _ := json.Marshal(ea)
		jb, _ := json.Marshal(eb)
		if string(ja) != string(jb) {
			t.Errorf("campaign %s: episode records not byte-identical", name)
		}
	}
}

// TestPaperTriggerFrameByFrame asserts PaperTrigger reproduces the
// legacy in-line trigger's full episode outcome — launch frame, vector,
// K, and the per-frame DeltaTrace — on DS-1..DS-5.
func TestPaperTriggerFrameByFrame(t *testing.T) {
	for _, id := range []scenario.ID{scenario.DS1, scenario.DS2, scenario.DS3, scenario.DS4, scenario.DS5} {
		for _, seed := range []int64{1, 77, 4242} {
			legacy, err := experiment.Run(experiment.RunConfig{
				Scenario: id, Seed: seed,
				Attack: experiment.AttackSetup{Mode: core.ModeSmart},
			})
			if err != nil {
				t.Fatalf("%v seed %d: %v", id, seed, err)
			}
			viaPolicy, err := experiment.Run(experiment.RunConfig{
				Scenario: id, Seed: seed,
				Attack: experiment.AttackSetup{Mode: core.ModeSmart, Policy: PaperTrigger{}},
			})
			if err != nil {
				t.Fatalf("%v seed %d (policy): %v", id, seed, err)
			}
			if !reflect.DeepEqual(legacy, viaPolicy) {
				t.Errorf("%v seed %d: PaperTrigger episode differs from legacy trigger:\nlegacy %+v\npolicy %+v",
					id, seed, legacy, viaPolicy)
			}
		}
	}
}

// TestDefaultParamsMatchPaper: the parameterized family contains the
// paper's trigger at DefaultParams — evaluating it is bit-identical to
// the fixed trigger, which is what lets the search start from the
// reproduction's behavior.
func TestDefaultParamsMatchPaper(t *testing.T) {
	pol, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []scenario.ID{scenario.DS1, scenario.DS2, scenario.DS3} {
		legacy, err := experiment.Run(experiment.RunConfig{
			Scenario: id, Seed: 1234,
			Attack: experiment.AttackSetup{Mode: core.ModeSmart},
		})
		if err != nil {
			t.Fatal(err)
		}
		viaParams, err := experiment.Run(experiment.RunConfig{
			Scenario: id, Seed: 1234,
			Attack: experiment.AttackSetup{Mode: core.ModeSmart, Policy: pol},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, viaParams) {
			t.Errorf("%v: ParamPolicy(DefaultParams) differs from the paper trigger", id)
		}
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.Gamma = 13.25
	p.SwapMasking = true
	p.Delay = 7
	a := &Artifact{
		V: Version, Kind: KindParam, Name: "trained",
		Params: &p, Seed: 42, Generations: 8, Fitness: 0.8125,
		TrainedOn: []string{"DS-1-search"},
	}
	raw, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Errorf("artifact does not round-trip exactly:\n%s\nvs\n%s", raw, raw2)
	}

	path := filepath.Join(t.TempDir(), "policy.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, loaded) {
		t.Errorf("Save/Load round-trip mismatch: %+v vs %+v", a, loaded)
	}
}

func TestArtifactErrors(t *testing.T) {
	params := DefaultParams()
	bad := params
	bad.Gamma = 99
	cases := []struct {
		name string
		a    Artifact
		want string
	}{
		{"unknown kind", Artifact{V: 1, Kind: "bandit"}, `unknown policy kind "bandit" (have [paper param])`},
		{"newer version", Artifact{V: 99, Kind: KindParam, Params: &params}, "artifact version 99 is newer"},
		{"missing version", Artifact{Kind: KindPaper}, "no schema version"},
		{"param without params", Artifact{V: 1, Kind: KindParam}, `kind "param" requires params`},
		{"paper with params", Artifact{V: 1, Kind: KindPaper, Params: &params}, `kind "paper" takes no params`},
		{"out of bounds", Artifact{V: 1, Kind: KindParam, Params: &bad}, "param gamma = 99 outside [2, 30]"},
	}
	for _, tc := range cases {
		err := tc.a.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.a)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}

	if _, err := Parse([]byte(`{"v":1,"kind":"paper","bogus":true}`)); err == nil {
		t.Error("Parse accepted an unknown field")
	}
}

func TestClampAndMutateStayInBounds(t *testing.T) {
	rng := stats.NewRNG(7)
	p := DefaultParams()
	for i := 0; i < 200; i++ {
		p = mutate(p, 0.5, rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("mutation %d left bounds: %v", i, err)
		}
	}
}

func TestPaperArtifactBuilds(t *testing.T) {
	a := PaperArtifact()
	pol, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pol.(PaperTrigger); !ok {
		t.Fatalf("PaperArtifact built %T", pol)
	}
}
