package policy

import (
	"bytes"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
)

func searchCfg(store results.Store, log *bytes.Buffer) TrainerConfig {
	return TrainerConfig{
		Battery: []experiment.Campaign{{
			Name:          "DS-1-search",
			Scenario:      scenario.DS1,
			Mode:          core.ModeSmart,
			ExpectCrashes: true,
		}},
		Runs:        4,
		Generations: 2,
		Population:  3,
		BaseSeed:    99,
		Store:       store,
		Log:         log,
	}
}

// TestTrainDeterministic: two searches from the same config produce
// byte-identical artifacts and byte-identical search logs.
func TestTrainDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		var log bytes.Buffer
		eng := engine.New(engine.WithWorkers(3))
		res, err := Train(eng, searchCfg(nil, &log))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := res.Artifact.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw, log.Bytes()
	}
	a1, l1 := run()
	a2, l2 := run()
	if !bytes.Equal(a1, a2) {
		t.Errorf("artifacts differ across identical searches:\n%s\nvs\n%s", a1, a2)
	}
	if !bytes.Equal(l1, l2) {
		t.Errorf("search logs differ across identical searches:\n%s\nvs\n%s", l1, l2)
	}
}

// countingStore counts fresh episode appends: a fully resumed search
// folds stored records and never appends a new one.
type countingStore struct {
	*results.MemStore
	appends int
}

func (s *countingStore) Append(ep results.EpisodeRecord) error {
	s.appends++
	return s.MemStore.Append(ep)
}

// TestTrainResume: a second search over a store already holding every
// evaluation folds the persisted episodes instead of re-running them,
// and lands on the same artifact.
func TestTrainResume(t *testing.T) {
	store := &countingStore{MemStore: results.NewMemStore()}
	var log1 bytes.Buffer
	res1, err := Train(engine.New(engine.WithWorkers(2)), searchCfg(store, &log1))
	if err != nil {
		t.Fatal(err)
	}
	if store.appends == 0 {
		t.Fatal("first search persisted no episodes")
	}

	store.appends = 0
	var log2 bytes.Buffer
	res2, err := Train(engine.New(engine.WithWorkers(2)), searchCfg(store, &log2))
	if err != nil {
		t.Fatal(err)
	}
	if store.appends != 0 {
		t.Errorf("resumed search re-executed %d episodes; want 0", store.appends)
	}
	a1, _ := res1.Artifact.Marshal()
	a2, _ := res2.Artifact.Marshal()
	if !bytes.Equal(a1, a2) {
		t.Errorf("resumed search artifact differs:\n%s\nvs\n%s", a1, a2)
	}
	if !bytes.Equal(log1.Bytes(), log2.Bytes()) {
		t.Error("resumed search log differs from the original")
	}
}

// TestTrainRejectsBadBattery covers the config gates.
func TestTrainRejectsBadBattery(t *testing.T) {
	eng := engine.New()
	if _, err := Train(eng, TrainerConfig{}); err == nil {
		t.Error("empty battery accepted")
	}
	cfg := TrainerConfig{Battery: []experiment.Campaign{{
		Name: "golden", Scenario: scenario.DS1, Mode: 0,
	}}}
	if _, err := Train(eng, cfg); err == nil {
		t.Error("non-smart battery campaign accepted")
	}
}

// TestSeedDerivationDistinct: evaluation and mutation streams never
// collide across a realistic search envelope.
func TestSeedDerivationDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for gen := 0; gen < 20; gen++ {
		for cand := 0; cand < 32; cand++ {
			for _, s := range []int64{EvalSeed(7, gen, cand), mutationSeed(7, gen, cand)} {
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d) vs %v -> %d", gen, cand, prev, s)
				}
				seen[s] = [2]int{gen, cand}
			}
		}
	}
}
