package policy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/stats"
)

// Trainer instrumentation: progress of a running search. Observational
// only — fitness, seeds and the JSONL search log stay byte-identical
// with metrics on or off.
var (
	searchCandidates = obs.NewCounter("robotack_search_candidates_total",
		"Policy-search candidate evaluations completed.")
	searchGenerations = obs.NewCounter("robotack_search_generations_total",
		"Policy-search generations completed.")
	searchBestFitness = obs.NewGauge("robotack_search_best_fitness",
		"Fitness of the current search elite.")
)

// TrainerConfig shapes a policy search: the evaluation battery, the
// generational budget, and the determinism anchors. Every stochastic
// choice — mutations and episode seeds alike — derives from
// (BaseSeed, generation, candidate), so a search run is byte-
// reproducible: the same config produces the same artifact and the
// same log, candidate by candidate.
type TrainerConfig struct {
	// Battery is the evaluation battery: smart-mode campaigns the
	// candidates are scored on. The trainer overrides each campaign's
	// Policy per candidate and its record name per (gen, candidate).
	Battery []experiment.Campaign
	// Runs is the episode count per battery campaign per candidate.
	Runs int
	// Generations and Population bound the search (G generations of
	// P candidates; candidate 0 of each generation re-evaluates the
	// elite on that generation's seeds, keeping comparisons fair).
	Generations int
	Population  int
	// Sigma is the initial mutation scale as a fraction of each
	// parameter bound's range (default 0.15); SigmaDecay multiplies
	// it per generation (default 0.9).
	Sigma      float64
	SigmaDecay float64
	// CrashWeight weights crashes against emergency brakes in the
	// fitness (default 2 — the paper's headline metric is accidents).
	CrashWeight float64
	// BaseSeed anchors every derived seed.
	BaseSeed int64
	// Oracles are the trained safety-hijacker oracles candidates
	// consult (nil: analytic).
	Oracles map[core.Vector]core.Oracle
	// Store, when set, persists every candidate evaluation's episodes
	// and aggregates (keyed search-gGG-cCC-<campaign>) and resumes
	// them on a re-run: an interrupted search picks up mid-candidate
	// with bit-identical aggregates, like any resumed campaign.
	Store results.Store
	// Log, when set, receives the JSONL search log: one line per
	// candidate evaluation plus one per generation's elite selection.
	// The bytes are reproducible — no timestamps, no durations.
	Log io.Writer
	// Progress, when set, receives human-readable progress lines.
	Progress func(format string, args ...any)
}

func (cfg *TrainerConfig) withDefaults() TrainerConfig {
	out := *cfg
	if out.Runs <= 0 {
		out.Runs = 12
	}
	if out.Generations <= 0 {
		out.Generations = 8
	}
	if out.Population <= 0 {
		out.Population = 8
	}
	if out.Sigma <= 0 {
		out.Sigma = 0.15
	}
	if out.SigmaDecay <= 0 {
		out.SigmaDecay = 0.9
	}
	if out.CrashWeight <= 0 {
		out.CrashWeight = 2
	}
	return out
}

// Candidate is one evaluated point of the search space.
type Candidate struct {
	Gen    int    `json:"gen"`
	Index  int    `json:"cand"`
	Seed   int64  `json:"seed"`
	Params Params `json:"params"`

	Runs     int     `json:"runs"`
	Launched int     `json:"launched"`
	EBs      int     `json:"ebs"`
	Crashes  int     `json:"crashes"`
	Fitness  float64 `json:"fitness"`
}

// SearchResult is a finished (or interrupted) search.
type SearchResult struct {
	// Best is the elite candidate after the last completed selection.
	Best Candidate
	// Artifact is Best packaged for persistence and evaluation.
	Artifact Artifact
	// Evaluated counts completed candidate evaluations.
	Evaluated int
}

// seedIndex folds (gen, cand, stream) into one derivation index.
// Population and generation counts stay far below the 2^16 packing
// limit for any practical search.
func seedIndex(gen, cand, stream int) int {
	return (gen<<17 | cand<<1 | stream)
}

// EvalSeed is the campaign base seed for candidate (gen, cand): every
// episode seed of the evaluation derives from it, so re-running any
// candidate reproduces its score exactly.
func EvalSeed(baseSeed int64, gen, cand int) int64 {
	return engine.SplitMixSeeds(baseSeed, seedIndex(gen, cand, 0))
}

// mutationSeed drives candidate (gen, cand)'s parameter draw.
func mutationSeed(baseSeed int64, gen, cand int) int64 {
	return engine.SplitMixSeeds(baseSeed, seedIndex(gen, cand, 1))
}

// RecordName keys candidate (gen, cand)'s records for one battery
// campaign in the search store.
func RecordName(gen, cand int, campaign string) string {
	return fmt.Sprintf("search-g%02d-c%02d-%s", gen, cand, campaign)
}

// Train searches policy parameters with a (1+lambda) evolution
// strategy: each generation re-evaluates the elite (candidate 0) and
// Population-1 Gaussian mutations of it on that generation's seeds,
// then keeps the fittest. Generation 0's elite is DefaultParams — the
// paper's trigger — so the search starts from the reproduction's
// behavior and every later elite beat it on like-for-like seeds.
//
// Candidate evaluations run on eng (worker pool, cancellation,
// per-episode progress); a cancelled search returns the best candidate
// selected so far along with the context error.
func Train(eng *engine.Engine, cfg TrainerConfig) (SearchResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Battery) == 0 {
		return SearchResult{}, errors.New("policy: trainer needs at least one battery campaign")
	}
	for _, c := range cfg.Battery {
		if c.Mode != core.ModeSmart {
			return SearchResult{}, fmt.Errorf("policy: battery campaign %s has mode %v; the trainer searches smart-mode triggers", c.Name, c.Mode)
		}
	}

	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	var res SearchResult
	elite := Candidate{Gen: -1, Index: -1, Params: DefaultParams(), Fitness: math.Inf(-1)}

	for gen := 0; gen < cfg.Generations; gen++ {
		sigma := cfg.Sigma * math.Pow(cfg.SigmaDecay, float64(gen))
		best := Candidate{Fitness: math.Inf(-1)}
		for cand := 0; cand < cfg.Population; cand++ {
			p := elite.Params
			if cand > 0 {
				p = mutate(elite.Params, sigma, stats.NewRNG(mutationSeed(cfg.BaseSeed, gen, cand)))
			}
			c, err := evaluate(eng, cfg, p, gen, cand)
			if err != nil {
				if res.Best.Runs > 0 {
					res.Artifact = artifactFor(cfg, res.Best)
				}
				return res, fmt.Errorf("policy: gen %d cand %d: %w", gen, cand, err)
			}
			res.Evaluated++
			if obs.Enabled() {
				searchCandidates.Add(1)
			}
			if err := logLine(cfg.Log, c); err != nil {
				return res, err
			}
			progress("gen %d cand %d fitness %.4f (EB %d/%d, crash %d)", gen, cand, c.Fitness, c.EBs, c.Runs, c.Crashes)
			if c.Fitness > best.Fitness {
				best = c
			}
		}
		elite = best
		res.Best = best
		if obs.Enabled() {
			searchGenerations.Add(1)
			searchBestFitness.Set(best.Fitness)
		}
		if err := logElite(cfg.Log, gen, best); err != nil {
			return res, err
		}
		progress("gen %d elite: cand %d fitness %.4f", gen, best.Index, best.Fitness)
	}
	res.Artifact = artifactFor(cfg, res.Best)
	return res, nil
}

// evaluate scores one parameter vector: the battery runs with the
// candidate policy under seeds derived from (BaseSeed, gen, cand), and
// the fitness is the EB rate plus CrashWeight times the crash rate,
// pooled across the battery. Persisted evaluations resume.
func evaluate(eng *engine.Engine, cfg TrainerConfig, p Params, gen, cand int) (Candidate, error) {
	pol, err := New(p)
	if err != nil {
		return Candidate{}, err
	}
	seed := EvalSeed(cfg.BaseSeed, gen, cand)
	out := Candidate{Gen: gen, Index: cand, Seed: seed, Params: p}
	for _, c := range cfg.Battery {
		c.Policy = pol
		opts := []experiment.RunOption{
			experiment.WithRecordName(RecordName(gen, cand, c.Name)),
		}
		if cfg.Store != nil {
			opts = append(opts,
				experiment.WithSink(cfg.Store),
				experiment.WithResume(cfg.Store))
		}
		r, err := experiment.RunCampaignOn(eng, c, cfg.Runs, seed, cfg.Oracles, opts...)
		if err != nil {
			return out, err
		}
		out.Runs += r.Runs
		out.Launched += r.Launched
		out.EBs += r.EBs
		out.Crashes += r.Crashes
	}
	if out.Runs > 0 {
		out.Fitness = (float64(out.EBs) + cfg.CrashWeight*float64(out.Crashes)) / float64(out.Runs)
	}
	return out, nil
}

func artifactFor(cfg TrainerConfig, best Candidate) Artifact {
	names := make([]string, len(cfg.Battery))
	for i, c := range cfg.Battery {
		names[i] = c.Name
	}
	return Artifact{
		V:           Version,
		Kind:        KindParam,
		Name:        "trained",
		Params:      &best.Params,
		Seed:        cfg.BaseSeed,
		Generations: cfg.Generations,
		Fitness:     best.Fitness,
		TrainedOn:   names,
	}
}

func logLine(w io.Writer, c Candidate) error {
	if w == nil {
		return nil
	}
	raw, err := json.Marshal(c)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", raw)
	return err
}

// eliteLine is the per-generation selection record in the search log.
type eliteLine struct {
	Gen     int     `json:"gen"`
	Elite   int     `json:"elite_cand"`
	Fitness float64 `json:"fitness"`
	Params  Params  `json:"params"`
}

func logElite(w io.Writer, gen int, best Candidate) error {
	if w == nil {
		return nil
	}
	raw, err := json.Marshal(eliteLine{Gen: gen, Elite: best.Index, Fitness: best.Fitness, Params: best.Params})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", raw)
	return err
}
