// Package policy closes the loop between campaigns and the malware:
// instead of the paper's fixed safety-hijacking trigger, the malware
// consults an attack policy every frame — WHEN to fire and WHAT to
// inject (fake-obstacle placement and drift speed, masking choice,
// timing jitter). The package ships the paper's trigger as a policy
// (PaperTrigger, bit-identical to the built-in path), a parameterized
// family over trigger thresholds and injection geometry (ParamPolicy)
// with a versioned JSON artifact format, and a deterministic
// evolution-strategy trainer that searches the parameter space by
// running generations of campaigns on the engine. Related work (MERLIN,
// MAB-Malware) shows searched attacks dominate hard-coded ones; the
// allocation-free frame pipeline makes that search affordable here —
// hundreds of deterministic episode evaluations per second per machine.
package policy

import (
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/core"
)

// Policy is the attack-policy contract the malware consults per frame.
// It is core.TriggerPolicy re-exported at the subsystem boundary:
// implementations decide when to trigger and how to shape the injected
// trajectory, and must be stateless and goroutine-safe.
type Policy = core.TriggerPolicy

// PaperTrigger is the paper's fixed safety-hijacking trigger expressed
// as a policy: it runs the safety hijacker's Eq. 2 oracle search under
// the configured thresholds and applies no geometry shaping. Campaigns
// driven by it are bit-identical to the built-in smart-mode trigger
// (enforced by TestPaperTriggerBitIdentical).
type PaperTrigger struct{}

var _ Policy = PaperTrigger{}

// Consult implements Policy by delegating to the safety hijacker
// exactly as the built-in trigger does.
func (PaperTrigger) Consult(in core.PolicyInput, sh *core.SafetyHijacker) (core.PolicyDecision, error) {
	dec, err := sh.Decide(in.State, in.Vector, in.Class)
	return core.PolicyDecision{
		Attack:         dec.Attack,
		K:              dec.K,
		PredictedDelta: dec.PredictedDelta,
	}, err
}

// Params is the searchable attack-policy parameter vector: the trigger
// thresholds of the safety hijacker (when to fire), the injection
// geometry (where the fake obstacle goes and how fast it drifts),
// timing jitter, and the masking choice. DefaultParams reproduces the
// paper's trigger; the trainer mutates within Bounds.
type Params struct {
	// Gamma is the predicted-delta launch threshold for Move_Out and
	// Disappear attacks (paper: 10 m).
	Gamma float64 `json:"gamma"`
	// GammaMoveIn is the tighter Move_In threshold (paper: -2 m).
	GammaMoveIn float64 `json:"gamma_move_in"`
	// KMin is the minimum duration worth launching (paper: 4).
	KMin int `json:"k_min"`
	// KMaxVehicle / KMaxPedestrian bound the attack duration. The
	// upper bounds equal the paper's 99th-percentile stealth caps
	// (Fig. 5), so every searched policy stays IDS-stealthy.
	KMaxVehicle    int `json:"k_max_vehicle"`
	KMaxPedestrian int `json:"k_max_pedestrian"`
	// Delay postpones the perturbation onset by this many frames
	// after the trigger fires (timing jitter).
	Delay int `json:"delay"`
	// OffsetScale multiplies the planned lateral displacement Omega.
	OffsetScale float64 `json:"offset_scale"`
	// OffsetBiasM adds meters to Omega after scaling.
	OffsetBiasM float64 `json:"offset_bias_m"`
	// StepScale multiplies the Move_Out per-frame drift cap (the
	// fake obstacle's apparent lateral speed).
	StepScale float64 `json:"step_scale"`
	// SwapMasking flips the interchangeable Move_Out/Disappear cells
	// of Table I: targets the matcher would mask with Move_Out get
	// Disappear and vice versa.
	SwapMasking bool `json:"swap_masking"`
}

// DefaultParams returns the paper-equivalent parameters: evaluating
// them reproduces the fixed trigger's decisions.
func DefaultParams() Params {
	sh := core.DefaultSafetyHijackerConfig()
	return Params{
		Gamma:          sh.Gamma,
		GammaMoveIn:    sh.GammaMoveIn,
		KMin:           sh.KMin,
		KMaxVehicle:    sh.KMaxVehicle,
		KMaxPedestrian: sh.KMaxPedestrian,
		OffsetScale:    1,
		StepScale:      1,
	}
}

// Bound is one parameter's search interval.
type Bound struct{ Lo, Hi float64 }

// Bounds is the search space: every parameter's admissible interval.
// The K bounds' upper limits are the paper's stealth caps — the search
// may fire shorter attacks than the paper, never longer ones.
var Bounds = map[string]Bound{
	"gamma":            {2, 30},
	"gamma_move_in":    {-6, 10},
	"k_min":            {1, 12},
	"k_max_vehicle":    {8, 59},
	"k_max_pedestrian": {8, 31},
	"delay":            {0, 30},
	"offset_scale":     {0.5, 2},
	"offset_bias_m":    {-0.5, 1.5},
	"step_scale":       {0.5, 2},
	"swap_masking":     {0, 1},
}

// paramOrder fixes the vector layout used by the trainer's mutation
// and by Validate's error messages.
var paramOrder = []string{
	"gamma", "gamma_move_in", "k_min", "k_max_vehicle",
	"k_max_pedestrian", "delay", "offset_scale", "offset_bias_m",
	"step_scale", "swap_masking",
}

// vector flattens the params in paramOrder (bools as 0/1).
func (p Params) vector() []float64 {
	return []float64{
		p.Gamma, p.GammaMoveIn, float64(p.KMin), float64(p.KMaxVehicle),
		float64(p.KMaxPedestrian), float64(p.Delay), p.OffsetScale,
		p.OffsetBiasM, p.StepScale, b2f(p.SwapMasking),
	}
}

// fromVector rebuilds params from a paramOrder vector, rounding the
// integer-valued dimensions and thresholding the boolean one.
func fromVector(v []float64) Params {
	return Params{
		Gamma:          v[0],
		GammaMoveIn:    v[1],
		KMin:           int(math.Round(v[2])),
		KMaxVehicle:    int(math.Round(v[3])),
		KMaxPedestrian: int(math.Round(v[4])),
		Delay:          int(math.Round(v[5])),
		OffsetScale:    v[6],
		OffsetBiasM:    v[7],
		StepScale:      v[8],
		SwapMasking:    v[9] >= 0.5,
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Clamp projects the params back into Bounds (integer dimensions are
// rounded by construction).
func (p Params) Clamp() Params {
	v := p.vector()
	for i, name := range paramOrder {
		b := Bounds[name]
		v[i] = math.Min(math.Max(v[i], b.Lo), b.Hi)
	}
	return fromVector(v)
}

// Validate rejects parameters outside the search space.
func (p Params) Validate() error {
	v := p.vector()
	for i, name := range paramOrder {
		b := Bounds[name]
		if math.IsNaN(v[i]) || v[i] < b.Lo || v[i] > b.Hi {
			return fmt.Errorf("policy: param %s = %v outside [%v, %v]", name, v[i], b.Lo, b.Hi)
		}
	}
	return nil
}

// ParamPolicy evaluates a Params vector as an attack policy: the
// safety hijacker's oracle search runs under the params' thresholds,
// the masking choice may be flipped, and the launch geometry is shaped
// by the offset/step/delay parameters. It is stateless — one value
// serves every worker of a campaign batch.
type ParamPolicy struct {
	P Params
}

var _ Policy = (*ParamPolicy)(nil)

// New builds a ParamPolicy after validating p.
func New(p Params) (*ParamPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ParamPolicy{P: p}, nil
}

// Consult implements Policy.
func (pp *ParamPolicy) Consult(in core.PolicyInput, sh *core.SafetyHijacker) (core.PolicyDecision, error) {
	v := in.Vector
	if pp.P.SwapMasking {
		switch v {
		case core.VectorMoveOut:
			v = core.VectorDisappear
		case core.VectorDisappear:
			v = core.VectorMoveOut
		}
	}
	cfg := core.SafetyHijackerConfig{
		Gamma:          pp.P.Gamma,
		GammaMoveIn:    pp.P.GammaMoveIn,
		KMin:           pp.P.KMin,
		KMaxVehicle:    pp.P.KMaxVehicle,
		KMaxPedestrian: pp.P.KMaxPedestrian,
	}
	dec, err := sh.DecideWith(cfg, in.State, v, in.Class)
	if err != nil || !dec.Attack {
		return core.PolicyDecision{PredictedDelta: dec.PredictedDelta}, err
	}
	return core.PolicyDecision{
		Attack:         true,
		Vector:         v,
		K:              dec.K,
		PredictedDelta: dec.PredictedDelta,
		Delay:          pp.P.Delay,
		OffsetScale:    pp.P.OffsetScale,
		OffsetBiasM:    pp.P.OffsetBiasM,
		StepScale:      pp.P.StepScale,
	}, nil
}

// mutate draws a Gaussian perturbation of p scaled by sigma (a
// fraction of each bound's range), clamped back into Bounds. The rng
// is consumed once per dimension in paramOrder, so a mutation is a
// pure function of (p, sigma, rng state).
func mutate(p Params, sigma float64, rng interface {
	Normal(mean, sigma float64) float64
}) Params {
	v := p.vector()
	for i, name := range paramOrder {
		b := Bounds[name]
		v[i] = rng.Normal(v[i], sigma*(b.Hi-b.Lo))
	}
	return fromVector(v).Clamp()
}
