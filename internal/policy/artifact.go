package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Version is the artifact schema version. Readers reject artifacts
// from a newer schema instead of misinterpreting them, mirroring
// internal/results.
const Version = 1

// Artifact kinds.
const (
	// KindPaper names the paper's fixed safety-hijacking trigger.
	KindPaper = "paper"
	// KindParam names a parameterized (typically trained) policy.
	KindParam = "param"
)

// Kinds lists the known policy kinds in listing order, with one-line
// descriptions (robotack-campaign -list-policies).
func Kinds() []struct{ Kind, Desc string } {
	return []struct{ Kind, Desc string }{
		{KindPaper, "the paper's fixed safety-hijacking trigger (§IV-B), as a policy"},
		{KindParam, "parameterized trigger thresholds + injection geometry (train with robotack-search)"},
	}
}

func kindNames() []string {
	ks := Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Kind
	}
	return out
}

// Artifact is the persistent, versioned form of an attack policy: what
// robotack-search writes, robotack-campaign -policy evaluates, and
// campaignd's POST /runs accepts inline. The JSON round-trips exactly
// (strict parse, stable field order), like the records of
// internal/results.
type Artifact struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	// Name labels the policy in reports (default: the kind).
	Name string `json:"name,omitempty"`
	// Params is required for kind "param" and forbidden otherwise.
	Params *Params `json:"params,omitempty"`

	// Search provenance, stamped by the trainer (zero for artifacts
	// written by hand).
	Seed        int64    `json:"seed,omitempty"`
	Generations int      `json:"generations,omitempty"`
	Fitness     float64  `json:"fitness,omitempty"`
	TrainedOn   []string `json:"trained_on,omitempty"`
}

// PaperArtifact returns the artifact form of the paper trigger.
func PaperArtifact() Artifact {
	return Artifact{V: Version, Kind: KindPaper, Name: KindPaper}
}

// Label names the policy in campaign names and reports.
func (a *Artifact) Label() string {
	if a.Name != "" {
		return a.Name
	}
	return a.Kind
}

// Validate checks the artifact without building it: schema version,
// known kind, and well-formed params. The error text is the single
// source of truth clients see for a bad artifact, so it names what was
// given and what exists (matching the unknown-scenario style).
func (a *Artifact) Validate() error {
	if a.V > Version {
		return fmt.Errorf("policy: artifact version %d is newer than this build supports (%d); rebuild or use a matching artifact", a.V, Version)
	}
	if a.V < 1 {
		return fmt.Errorf("policy: artifact has no schema version (want \"v\": %d)", Version)
	}
	switch a.Kind {
	case KindPaper:
		if a.Params != nil {
			return fmt.Errorf("policy: kind %q takes no params", KindPaper)
		}
		return nil
	case KindParam:
		if a.Params == nil {
			return fmt.Errorf("policy: kind %q requires params", KindParam)
		}
		return a.Params.Validate()
	default:
		return fmt.Errorf("policy: unknown policy kind %q (have %v)", a.Kind, kindNames())
	}
}

// Build validates the artifact and constructs the runnable policy.
func (a *Artifact) Build() (Policy, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	switch a.Kind {
	case KindPaper:
		return PaperTrigger{}, nil
	default:
		return &ParamPolicy{P: *a.Params}, nil
	}
}

// Marshal renders the artifact in its canonical on-disk form: indented
// JSON with a trailing newline. Byte-identical for identical artifacts
// (the byte-reproducibility contract of robotack-search).
func (a *Artifact) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save writes the artifact to path in canonical form.
func (a *Artifact) Save(path string) error {
	raw, err := a.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// Parse decodes an artifact strictly — unknown fields are schema
// drift, not noise — and validates it.
func Parse(raw []byte) (*Artifact, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("policy: parse artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Load reads and parses an artifact file.
func Load(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	a, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (artifact %s)", err, path)
	}
	return a, nil
}
