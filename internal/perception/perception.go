// Package perception wires the full ADS perception system of the
// paper's Fig. 1: camera raster -> object detector (D) -> Hungarian
// matching (M) -> per-object Kalman filters (F*) -> ground-plane
// transformation (T) -> camera/LiDAR sensor fusion -> world model W_t.
package perception

import (
	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/fusion"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
	"github.com/robotack/robotack/internal/track"
)

// Frame-stage indices of the instrumented closed loop, in execution
// order. They are the shared vocabulary of per-stage telemetry: the
// experiment runner labels its robotack_frame_stage_seconds series and
// annotates episode trace spans by these indices, and robotack-trace
// resolves span stage slots back to names through StageNames. The
// sensor, malware, lidar and plan stages are not perception stages,
// but the loop is timed as one pipeline, so the catalog lives with the
// Stage* instrumentation points it brackets.
const (
	StageSensor = iota
	StageMalware
	StageLidar
	StageDetectIdx
	StageTrackIdx
	StageFusionIdx
	StagePlan
	NumStages
)

// StageNames maps the stage indices to their metric label values.
var StageNames = [NumStages]string{
	"sensor", "malware", "lidar", "detect", "track", "fusion", "plan",
}

// Pipeline is one complete perception stack instance. The ADS owns one;
// the malware owns a second, independent instance for its own
// situational awareness (paper §III-D: the malware reconstructs the
// world from the tapped camera feed).
type Pipeline struct {
	Detector *detect.Detector
	Tracker  *track.Tracker
	Fusion   *fusion.Fusion

	lastDetections []detect.Detection
}

// New builds a pipeline around the given camera geometry. rng feeds the
// detector's noise processes; pass cfg detect.Config with DisableNoise
// for a deterministic stack.
func New(cam *sensor.Camera, detCfg detect.Config, trkCfg track.Config, fusCfg fusion.Config, rng *stats.RNG) *Pipeline {
	if detCfg.DisableNoise {
		// The tracker's measurement debiasing compensates the
		// detector's characterized error means; with noise disabled it
		// would itself introduce a systematic bias.
		trkCfg.VehicleNoise = detect.NoiseParams{}
		trkCfg.PedestrianNoise = detect.NoiseParams{}
	}
	return &Pipeline{
		Detector: detect.New(detCfg, rng),
		Tracker:  track.NewTracker(trkCfg),
		Fusion:   fusion.New(fusCfg, cam),
	}
}

// NewDefault builds a pipeline with all default configurations.
func NewDefault(cam *sensor.Camera, rng *stats.RNG) *Pipeline {
	return New(cam, detect.DefaultConfig(), track.DefaultConfig(), fusion.DefaultConfig(), rng)
}

// Process runs one frame through the stack and returns the fused world
// model. It is the composition of the three stage methods below;
// callers that time individual stages (the instrumented episode
// runner) invoke them directly.
func (p *Pipeline) Process(img *sensor.Image, lidar []sensor.Detection) []fusion.Object {
	dets := p.StageDetect(img)
	tracks := p.StageTrack(dets)
	return p.StageFuse(tracks, lidar)
}

// StageDetect runs the object detector and records its output as the
// frame's last detections.
func (p *Pipeline) StageDetect(img *sensor.Image) []detect.Detection {
	p.lastDetections = p.Detector.Detect(img)
	return p.lastDetections
}

// StageTrack advances the Hungarian-matched Kalman trackers.
func (p *Pipeline) StageTrack(dets []detect.Detection) []*track.Track {
	return p.Tracker.Step(dets)
}

// StageFuse fuses camera tracks with the LiDAR scan into the frame's
// world model.
func (p *Pipeline) StageFuse(tracks []*track.Track, lidar []sensor.Detection) []fusion.Object {
	return p.Fusion.Step(tracks, lidar, sim.DT)
}

// LastDetections returns the detector output of the most recent frame.
func (p *Pipeline) LastDetections() []detect.Detection { return p.lastDetections }

// Reset clears all stateful stages for a new episode.
func (p *Pipeline) Reset() {
	p.Detector.Reset()
	p.Tracker.Reset()
	p.Fusion.Reset()
	p.lastDetections = nil
}
