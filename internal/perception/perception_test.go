package perception

import (
	"math"
	"testing"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/fusion"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/track"
)

// noiselessPipeline returns a deterministic stack for behavioural tests.
func noiselessPipeline(cam *sensor.Camera) *Pipeline {
	detCfg := detect.DefaultConfig()
	detCfg.DisableNoise = true
	return New(cam, detCfg, track.DefaultConfig(), fusion.DefaultConfig(), nil)
}

func pedWorld(depth, lateral float64) *sim.World {
	ev := sim.DefaultEV()
	ev.Speed = 0
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassPedestrian, Pos: geom.V(depth, lateral),
		Size: sim.SizePedestrian, Behavior: sim.Parked{}})
	return w
}

func vehicleWorld(depth float64) *sim.World {
	ev := sim.DefaultEV()
	ev.Speed = 0
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(depth, 0),
		Size: sim.SizeCar, Behavior: sim.Parked{}})
	return w
}

func stepFrames(p *Pipeline, cam *sensor.Camera, w *sim.World, lidar *sensor.Lidar, n int) []fusion.Object {
	var objs []fusion.Object
	for i := 0; i < n; i++ {
		frame := cam.Capture(w, i)
		var ld []sensor.Detection
		if lidar != nil {
			ld = lidar.Scan(w)
		}
		objs = p.Process(frame.Image, ld)
	}
	return objs
}

func confidentCount(objs []fusion.Object, cfg fusion.Config) int {
	n := 0
	for _, o := range objs {
		if o.Confidence >= cfg.Confident {
			n++
		}
	}
	return n
}

func TestPipelineRegistersObject(t *testing.T) {
	cam := sensor.DefaultCamera()
	p := noiselessPipeline(cam)
	w := vehicleWorld(30)
	objs := stepFrames(p, cam, w, sensor.NewLidar(nil), 20)
	if confidentCount(objs, p.Fusion.Config()) != 1 {
		t.Fatalf("confident objects = %d, want 1 (objs=%+v)", confidentCount(objs, p.Fusion.Config()), objs)
	}
	o := objs[0]
	if math.Abs(o.Rel.X-30) > 2.5 || math.Abs(o.Rel.Y) > 1 {
		t.Errorf("fused pos = %v, want ~(30, 0)", o.Rel)
	}
	if o.Class != sim.ClassVehicle {
		t.Errorf("class = %v", o.Class)
	}
	if !o.CameraSeen || !o.LidarSeen {
		t.Errorf("sensor flags = cam %v lidar %v, want both", o.CameraSeen, o.LidarSeen)
	}
}

// The asymmetry at the heart of the paper's findings 3 and 4: with the
// camera suppressed, a pedestrian beyond LiDAR range fades from the
// world model in ~14 frames, a LiDAR-confirmed vehicle takes ~3x longer.
func TestCameraSuppressionFadeAsymmetry(t *testing.T) {
	cam := sensor.DefaultCamera()

	fade := func(w *sim.World, lidar *sensor.Lidar) int {
		p := noiselessPipeline(cam)
		stepFrames(p, cam, w, lidar, 40) // build confidence
		blank := sensor.NewImage(cam.W, cam.H)
		blank.Clear(0.05)
		cfg := p.Fusion.Config()
		for i := 0; i < 120; i++ {
			var ld []sensor.Detection
			if lidar != nil {
				ld = lidar.Scan(w)
			}
			objs := p.Process(blank, ld)
			if confidentCount(objs, cfg) == 0 {
				return i + 1
			}
		}
		return 121
	}

	lidar := sensor.NewLidar(nil)
	pedFrames := fade(pedWorld(35, 0), lidar) // beyond 24 m ped range: camera-only
	vehFrames := fade(vehicleWorld(35), lidar)

	if pedFrames < 8 || pedFrames > 22 {
		t.Errorf("pedestrian fade = %d frames, want ~14 (paper K for DS-2-Disappear)", pedFrames)
	}
	if vehFrames < 18 || vehFrames > 60 {
		t.Errorf("vehicle fade = %d frames, want ~24+ (LiDAR keeps it alive longer)", vehFrames)
	}
	if vehFrames <= pedFrames {
		t.Errorf("vehicle fade (%d) must exceed pedestrian fade (%d)", vehFrames, pedFrames)
	}
}

func TestLidarOnlyObjectDiscountedThenTrusted(t *testing.T) {
	cam := sensor.DefaultCamera()
	p := noiselessPipeline(cam)
	w := vehicleWorld(35)
	lidar := sensor.NewLidar(nil)
	blank := sensor.NewImage(cam.W, cam.H)
	blank.Clear(0.05)
	cfg := p.Fusion.Config()
	var objs []fusion.Object
	for i := 0; i < cfg.LidarTrustFramesVehicle-2; i++ {
		objs = p.Process(blank, lidar.Scan(w))
		if confidentCount(objs, cfg) != 0 {
			t.Fatalf("frame %d: LiDAR-only object confident during the disagreement window", i)
		}
	}
	if len(objs) == 0 {
		t.Fatal("LiDAR-only object should exist in the world model")
	}
	for i := 0; i < 40; i++ {
		objs = p.Process(blank, lidar.Scan(w))
	}
	if confidentCount(objs, cfg) != 1 {
		t.Errorf("persistent LiDAR evidence should re-register the object (conf=%v)", objs[0].Confidence)
	}
}

func TestFusedVelocityTracksRelativeMotion(t *testing.T) {
	cam := sensor.DefaultCamera()
	p := noiselessPipeline(cam)
	ev := sim.DefaultEV()
	ev.Speed = 10
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(60, 0), Size: sim.SizeCar,
		Behavior: &sim.Cruise{Speed: 6}})
	lidar := sensor.NewLidar(nil)
	var objs []fusion.Object
	for i := 0; i < 45; i++ {
		frame := cam.Capture(w, i)
		objs = p.Process(frame.Image, lidar.Scan(w))
		w.Step(0)
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d", len(objs))
	}
	// Relative longitudinal velocity is 6 - 10 = -4 m/s.
	if math.Abs(objs[0].Vel.X-(-4)) > 1.5 {
		t.Errorf("fused rel vel = %v, want ~-4", objs[0].Vel.X)
	}
}

func TestPedestrianWithinLidarRangeGetsBothSensors(t *testing.T) {
	cam := sensor.DefaultCamera()
	p := noiselessPipeline(cam)
	w := pedWorld(15, 2) // inside 24 m LiDAR range
	objs := stepFrames(p, cam, w, sensor.NewLidar(nil), 25)
	if len(objs) != 1 {
		t.Fatalf("objects = %d (%+v)", len(objs), objs)
	}
	if !objs[0].LidarSeen || !objs[0].CameraSeen {
		t.Errorf("near pedestrian should be dual-sensor: %+v", objs[0])
	}
}

func TestResetClearsState(t *testing.T) {
	cam := sensor.DefaultCamera()
	p := noiselessPipeline(cam)
	stepFrames(p, cam, vehicleWorld(30), sensor.NewLidar(nil), 10)
	p.Reset()
	if len(p.Fusion.Objects()) != 0 || len(p.Tracker.Tracks()) != 0 || p.LastDetections() != nil {
		t.Error("Reset left state behind")
	}
}

func BenchmarkPipelineFrame(b *testing.B) {
	cam := sensor.DefaultCamera()
	p := noiselessPipeline(cam)
	ev := sim.DefaultEV()
	ev.Speed = 10
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	for i := 0; i < 6; i++ {
		w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(float64(20+15*i), 0),
			Size: sim.SizeCar, Behavior: sim.Parked{}})
	}
	lidar := sensor.NewLidar(nil)
	frame := cam.Capture(w, 0)
	ld := lidar.Scan(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Process(frame.Image, ld)
	}
}
