package scenegen

import (
	"fmt"

	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Range is a closed interval sampled uniformly.
type Range struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func (r Range) sample(rng *stats.RNG) float64 {
	if r.Max <= r.Min {
		return r.Min
	}
	return rng.Uniform(r.Min, r.Max)
}

// Target kinds the generator can place. Every kind puts the target
// object ahead of the EV, in or adjacent to its corridor, so the
// malware's scenario matcher always has something reachable to attack.
const (
	TargetLeadVehicle   = "lead-vehicle"       // DS-1-like: cruising ahead in the EV lane
	TargetJaywalker     = "jaywalker"          // DS-2-like: crosses when the EV nears
	TargetParkedVehicle = "parked-vehicle"     // DS-3-like: parked in the parking lane
	TargetWalkingPed    = "walking-pedestrian" // DS-4-like: walks toward the EV, then stops
)

// Space parameterizes the scenario distribution the generator samples
// from: EV speed and episode length, the target-kind mix, the
// background-traffic density and class/speed/gap ranges, and the role
// mix of that traffic (oncoming cruisers, safe-cruisers ahead, parked
// cars, a trailing follower).
type Space struct {
	EVSpeed  Range `json:"ev_speed"`
	Duration Range `json:"duration"`

	// TargetKinds is the set of target templates drawn from uniformly.
	TargetKinds []string `json:"target_kinds"`

	// MinExtras/MaxExtras bound the background-traffic count (the
	// sweep's density axis).
	MinExtras int `json:"min_extras"`
	MaxExtras int `json:"max_extras"`

	// VehicleSpeed and PedSpeed are magnitude ranges for background
	// vehicles and generated pedestrians.
	VehicleSpeed Range `json:"vehicle_speed"`
	PedSpeed     Range `json:"ped_speed"`

	// MinGap is the minimum initial bumper-to-bumper spacing between
	// same-lane actors (and the EV).
	MinGap float64 `json:"min_gap"`

	// Role weights for background traffic (need not sum to 1).
	OncomingWeight float64 `json:"oncoming_weight"`
	AheadWeight    float64 `json:"ahead_weight"`
	ParkedWeight   float64 `json:"parked_weight"`
	TrailingWeight float64 `json:"trailing_weight"`
}

// DefaultSpace is a broad distribution around the paper's operating
// point: 35-55 kph EV, up to six background actors, all four target
// kinds.
func DefaultSpace() Space {
	return Space{
		EVSpeed:        Range{sim.Kph(35), sim.Kph(55)},
		Duration:       Range{20, 40},
		TargetKinds:    []string{TargetLeadVehicle, TargetJaywalker, TargetParkedVehicle, TargetWalkingPed},
		MinExtras:      0,
		MaxExtras:      6,
		VehicleSpeed:   Range{sim.Kph(20), sim.Kph(45)},
		PedSpeed:       Range{0.8, 2.0},
		MinGap:         12,
		OncomingWeight: 0.40,
		AheadWeight:    0.25,
		ParkedWeight:   0.25,
		TrailingWeight: 0.10,
	}
}

// KnownTargetKind reports whether the generator understands the given
// target-kind name — the POST-time validity gate for queued generator
// requests.
func KnownTargetKind(kind string) bool {
	switch kind {
	case TargetLeadVehicle, TargetJaywalker, TargetParkedVehicle, TargetWalkingPed:
		return true
	}
	return false
}

// WithDefaults overlays DefaultSpace onto zero-valued fields, so a
// partial space (e.g. decoded from a request that only names what it
// changes) never yields degenerate scenarios.
func (sp Space) WithDefaults() Space {
	def := DefaultSpace()
	var zero Range
	if sp.EVSpeed == zero {
		sp.EVSpeed = def.EVSpeed
	}
	if sp.Duration == zero {
		sp.Duration = def.Duration
	}
	if len(sp.TargetKinds) == 0 {
		sp.TargetKinds = def.TargetKinds
	}
	if sp.MinExtras == 0 && sp.MaxExtras == 0 {
		sp.MinExtras, sp.MaxExtras = def.MinExtras, def.MaxExtras
	}
	if sp.VehicleSpeed == zero {
		sp.VehicleSpeed = def.VehicleSpeed
	}
	if sp.PedSpeed == zero {
		sp.PedSpeed = def.PedSpeed
	}
	if sp.MinGap <= 0 {
		sp.MinGap = def.MinGap
	}
	if sp.OncomingWeight+sp.AheadWeight+sp.ParkedWeight+sp.TrailingWeight <= 0 {
		sp.OncomingWeight = def.OncomingWeight
		sp.AheadWeight = def.AheadWeight
		sp.ParkedWeight = def.ParkedWeight
		sp.TrailingWeight = def.TrailingWeight
	}
	return sp
}

// Validate rejects spaces whose episodes could never generate —
// inverted ranges, non-positive speeds or durations, negative counts
// or weights, unknown target kinds. Apply WithDefaults first:
// zero-valued fields mean "use the default", not errors.
func (sp Space) Validate() error {
	for _, c := range []struct {
		name     string
		r        Range
		positive bool
	}{
		{"ev_speed", sp.EVSpeed, true},
		{"duration", sp.Duration, true},
		{"vehicle_speed", sp.VehicleSpeed, false},
		{"ped_speed", sp.PedSpeed, true},
	} {
		if c.r.Max < c.r.Min {
			return fmt.Errorf("scenegen: %s: max %g < min %g", c.name, c.r.Max, c.r.Min)
		}
		if c.r.Min < 0 || (c.positive && c.r.Min <= 0) {
			return fmt.Errorf("scenegen: %s must be positive, got min %g", c.name, c.r.Min)
		}
	}
	for _, kind := range sp.TargetKinds {
		if !KnownTargetKind(kind) {
			return fmt.Errorf("scenegen: unknown target kind %q", kind)
		}
	}
	if sp.MinExtras < 0 {
		return fmt.Errorf("scenegen: min_extras must be non-negative, got %d", sp.MinExtras)
	}
	if sp.MaxExtras < sp.MinExtras {
		return fmt.Errorf("scenegen: max_extras %d < min_extras %d", sp.MaxExtras, sp.MinExtras)
	}
	for _, w := range []struct {
		name string
		v    float64
	}{
		{"oncoming_weight", sp.OncomingWeight},
		{"ahead_weight", sp.AheadWeight},
		{"parked_weight", sp.ParkedWeight},
		{"trailing_weight", sp.TrailingWeight},
	} {
		if w.v < 0 {
			return fmt.Errorf("scenegen: %s must be non-negative, got %g", w.name, w.v)
		}
	}
	return nil
}

// Generator samples valid, fully-concrete (jitter-free) specs from a
// Space. It is stateless: all randomness comes from the rng passed to
// Generate, so one seed maps to exactly one scenario.
type Generator struct {
	Space Space
}

// NewGenerator returns a generator over the given space; zero-valued
// fields fall back to DefaultSpace.
func NewGenerator(space Space) *Generator {
	return &Generator{Space: space.WithDefaults()}
}

// lanes, by lateral bucket, for overlap bookkeeping.
type lane int

const (
	laneEV lane = iota
	laneOncoming
	laneParking
)

// occupancy tracks per-lane occupied x-intervals so placements never
// overlap initially.
type occupancy struct {
	gap       float64
	intervals [3][][2]float64
}

// free reports whether [lo, hi] (plus the minimum gap) is unoccupied.
func (o *occupancy) free(l lane, lo, hi float64) bool {
	for _, iv := range o.intervals[l] {
		if lo-o.gap < iv[1] && iv[0] < hi+o.gap {
			return false
		}
	}
	return true
}

func (o *occupancy) claim(l lane, lo, hi float64) {
	o.intervals[l] = append(o.intervals[l], [2]float64{lo, hi})
}

// place samples an x center in xr whose footprint of the given length
// fits in the lane, claiming it on success. It retries a few times and
// reports failure rather than forcing an overlap.
func (o *occupancy) place(rng *stats.RNG, l lane, xr Range, length float64) (float64, bool) {
	for try := 0; try < 12; try++ {
		x := xr.sample(rng)
		lo, hi := x-length/2, x+length/2
		if o.free(l, lo, hi) {
			o.claim(l, lo, hi)
			return x, true
		}
	}
	return 0, false
}

// Generate samples one concrete scenario spec named name. The result
// always validates, contains exactly one reachable target ahead of the
// EV, and compiles to a world with no initial footprint overlaps; the
// same rng seed always yields the same spec.
func (g *Generator) Generate(rng *stats.RNG, name string) (*Spec, error) {
	sp := g.Space
	occ := &occupancy{gap: sp.MinGap}
	// The EV sits at the origin of the EV lane.
	occ.claim(laneEV, -sim.SizeCar.Length/2, sim.SizeCar.Length/2)

	evSpeed := sp.EVSpeed.sample(rng)
	spec := &Spec{
		Name:        name,
		EVSpeed:     P(evSpeed),
		CruiseSpeed: evSpeed,
		Duration:    sp.Duration.sample(rng),
	}

	kind := sp.TargetKinds[rng.IntN(len(sp.TargetKinds))]
	target, targetX, err := g.makeTarget(rng, occ, kind, evSpeed)
	if err != nil {
		return nil, fmt.Errorf("scenegen: generate %s: %w", name, err)
	}
	spec.Actors = append(spec.Actors, target)

	extras := sp.MinExtras
	if sp.MaxExtras > sp.MinExtras {
		extras += rng.IntN(sp.MaxExtras - sp.MinExtras + 1)
	}
	total := sp.OncomingWeight + sp.AheadWeight + sp.ParkedWeight + sp.TrailingWeight
	for i := 0; i < extras; i++ {
		if total <= 0 {
			break
		}
		roll := rng.Uniform(0, total)
		var a ActorSpec
		var ok bool
		switch {
		case roll < sp.OncomingWeight:
			a, ok = g.oncoming(rng, occ)
		case roll < sp.OncomingWeight+sp.AheadWeight:
			a, ok = g.aheadCruiser(rng, occ, targetX)
		case roll < sp.OncomingWeight+sp.AheadWeight+sp.ParkedWeight:
			a, ok = g.parkedCar(rng, occ)
		default:
			a, ok = g.trailer(rng, occ)
		}
		// A full lane is not an error: the sampled density simply
		// saturates and the scenario comes out sparser than drawn.
		if ok {
			spec.Actors = append(spec.Actors, a)
		}
	}

	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenegen: generate %s: %w", name, err)
	}
	c, err := Compile(spec, nil)
	if err != nil {
		return nil, fmt.Errorf("scenegen: generate %s: %w", name, err)
	}
	if err := CheckOverlapFree(c.World); err != nil {
		return nil, fmt.Errorf("scenegen: generate %s: %w", name, err)
	}
	return spec, nil
}

// makeTarget places the scripted target object and returns its spec and
// x position (used to keep EV-lane traffic beyond it).
func (g *Generator) makeTarget(rng *stats.RNG, occ *occupancy, kind string, evSpeed float64) (ActorSpec, float64, error) {
	sp := g.Space
	switch kind {
	case TargetLeadVehicle:
		size := SizeCar
		if rng.Bernoulli(0.4) {
			size = SizeSUV
		}
		length := sim.SizeCar.Length
		if size == SizeSUV {
			length = sim.SizeSUV.Length
		}
		x, ok := occ.place(rng, laneEV, Range{45, 90}, length)
		if !ok {
			return ActorSpec{}, 0, fmt.Errorf("no room for lead vehicle")
		}
		// Slower than the EV so the scripted conflict (closing gap)
		// always develops.
		speed := min(sp.VehicleSpeed.sample(rng), 0.8*evSpeed)
		return ActorSpec{
			Class: ClassVehicle, Size: size,
			X:        P(x),
			Behavior: BehaviorSpec{Kind: BehaviorCruise, Speed: P(speed)},
			Target:   true,
		}, x, nil
	case TargetJaywalker:
		x := rng.Uniform(70, 110)
		return ActorSpec{
			Class: ClassPedestrian, Size: SizePedestrian,
			X: P(x), Y: P(6),
			Behavior: BehaviorSpec{
				Kind:       BehaviorTriggeredCross,
				TriggerGap: P(rng.Uniform(35, 55)),
				Speed:      P(sp.PedSpeed.sample(rng)),
				ToY:        -6,
			},
			Target: true,
		}, x, nil
	case TargetParkedVehicle:
		x, ok := occ.place(rng, laneParking, Range{50, 100}, sim.SizeCar.Length)
		if !ok {
			return ActorSpec{}, 0, fmt.Errorf("no room for parked target")
		}
		return ActorSpec{
			Class: ClassVehicle, Size: SizeCar,
			X: P(x), Y: P(3.5),
			Behavior: BehaviorSpec{Kind: BehaviorParked},
			Target:   true,
		}, x, nil
	case TargetWalkingPed:
		x, ok := occ.place(rng, laneParking, Range{60, 100}, sim.SizePedestrian.Length)
		if !ok {
			return ActorSpec{}, 0, fmt.Errorf("no room for walking pedestrian")
		}
		return ActorSpec{
			Class: ClassPedestrian, Size: SizePedestrian,
			X: P(x), Y: P(3.3),
			Behavior: BehaviorSpec{
				Kind:     BehaviorWalkThenStop,
				Speed:    P(sp.PedSpeed.sample(rng)),
				Distance: rng.Uniform(3, 8),
			},
			Target: true,
		}, x, nil
	default:
		return ActorSpec{}, 0, fmt.Errorf("unknown target kind %q", kind)
	}
}

func (g *Generator) oncoming(rng *stats.RNG, occ *occupancy) (ActorSpec, bool) {
	x, ok := occ.place(rng, laneOncoming, Range{60, 280}, sim.SizeCar.Length)
	if !ok {
		return ActorSpec{}, false
	}
	return ActorSpec{
		Class: ClassVehicle, Size: SizeCar,
		X: P(x), Y: P(-3.5),
		Behavior: BehaviorSpec{
			Kind:  BehaviorCruise,
			Speed: Param{Base: g.Space.VehicleSpeed.sample(rng), Negate: true},
		},
	}, true
}

// aheadCruiser places a safe-cruising vehicle in the EV lane well beyond
// the target so the scripted conflict stays the nearest obstacle.
func (g *Generator) aheadCruiser(rng *stats.RNG, occ *occupancy, targetX float64) (ActorSpec, bool) {
	lo := max(targetX+30, 70)
	x, ok := occ.place(rng, laneEV, Range{lo, lo + 160}, sim.SizeCar.Length)
	if !ok {
		return ActorSpec{}, false
	}
	return ActorSpec{
		Class: ClassVehicle, Size: SizeCar,
		X:        P(x),
		Behavior: BehaviorSpec{Kind: BehaviorSafeCruise, Speed: P(g.Space.VehicleSpeed.sample(rng))},
	}, true
}

func (g *Generator) parkedCar(rng *stats.RNG, occ *occupancy) (ActorSpec, bool) {
	x, ok := occ.place(rng, laneParking, Range{25, 220}, sim.SizeCar.Length)
	if !ok {
		return ActorSpec{}, false
	}
	return ActorSpec{
		Class: ClassVehicle, Size: SizeCar,
		X: P(x), Y: P(3.5),
		Behavior: BehaviorSpec{Kind: BehaviorParked},
	}, true
}

func (g *Generator) trailer(rng *stats.RNG, occ *occupancy) (ActorSpec, bool) {
	x, ok := occ.place(rng, laneEV, Range{-90, -25}, sim.SizeCar.Length)
	if !ok {
		return ActorSpec{}, false
	}
	return ActorSpec{
		Class: ClassVehicle, Size: SizeCar,
		X:        P(x),
		Behavior: BehaviorSpec{Kind: BehaviorSafeCruise, Speed: P(g.Space.VehicleSpeed.sample(rng))},
	}, true
}
