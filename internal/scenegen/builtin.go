package scenegen

import "github.com/robotack/robotack/internal/sim"

// The paper's five driving scenarios (§V-C, Fig. 4) expressed as
// declarative specs. These replay the historical hand-built scenario
// builders bit for bit — the scenario package's golden-equivalence test
// enforces it — so every jitter base/spread, the sampling order
// (BehaviorFirst on the DS-1 target vehicle) and DS-5's randomized
// traffic count are part of the contract.
func init() {
	MustRegister(DS1Spec())
	MustRegister(DS2Spec())
	MustRegister(DS3Spec())
	MustRegister(DS4Spec())
	MustRegister(DS5Spec())
}

// DS1Spec is the vehicle-following scenario: a target vehicle cruises
// at 25 kph, 60 m ahead of the EV, in the EV lane.
func DS1Spec() *Spec {
	return &Spec{
		Name:        "DS-1",
		EVSpeed:     PJ(sim.Kph(45), sim.Kph(1.5)),
		CruiseSpeed: sim.Kph(45),
		Duration:    40,
		Actors:      []ActorSpec{ds1Target()},
	}
}

// ds1Target is DS-1's lead vehicle, shared with DS-5. The historical
// builder sampled its speed before its gap, hence BehaviorFirst.
func ds1Target() ActorSpec {
	return ActorSpec{
		Class: ClassVehicle, Size: SizeSUV,
		X: PJ(60, 5),
		Behavior: BehaviorSpec{
			Kind:  BehaviorCruise,
			Speed: PJ(sim.Kph(25), sim.Kph(1.5)),
		},
		BehaviorFirst: true,
		Target:        true,
	}
}

// DS2Spec is the jaywalking-pedestrian scenario: a pedestrian waits at
// the roadside and crosses the street when the EV comes within the
// trigger gap.
func DS2Spec() *Spec {
	return &Spec{
		Name:        "DS-2",
		EVSpeed:     PJ(sim.Kph(45), sim.Kph(1.5)),
		CruiseSpeed: sim.Kph(45),
		Duration:    30,
		Actors: []ActorSpec{{
			Class: ClassPedestrian, Size: SizePedestrian,
			X: PJ(90, 6),
			Y: P(6),
			Behavior: BehaviorSpec{
				Kind:       BehaviorTriggeredCross,
				TriggerGap: PJ(47, 4),
				Speed:      PJ(1.4, 0.15),
				ToY:        -6,
			},
			Target: true,
		}},
	}
}

// DS3Spec is the parked-vehicle scenario: a target vehicle is parked in
// the parking lane.
func DS3Spec() *Spec {
	return &Spec{
		Name:        "DS-3",
		EVSpeed:     PJ(sim.Kph(45), sim.Kph(1.5)),
		CruiseSpeed: sim.Kph(45),
		Duration:    20,
		Actors: []ActorSpec{{
			Class: ClassVehicle, Size: SizeCar,
			X:        PJ(75, 8),
			Y:        P(3.5),
			Behavior: BehaviorSpec{Kind: BehaviorParked},
			Target:   true,
		}},
	}
}

// DS4Spec is the walking-pedestrian scenario: a pedestrian walks
// longitudinally toward the EV in the parking lane for 5 m, then stands
// still.
func DS4Spec() *Spec {
	return &Spec{
		Name:        "DS-4",
		EVSpeed:     PJ(sim.Kph(45), sim.Kph(1.5)),
		CruiseSpeed: sim.Kph(45),
		Duration:    20,
		Actors: []ActorSpec{{
			Class: ClassPedestrian, Size: SizePedestrian,
			X: PJ(80, 8),
			Y: P(3.3),
			Behavior: BehaviorSpec{
				Kind:     BehaviorWalkThenStop,
				Speed:    PJ(1.2, 0.2),
				Distance: 5,
			},
			Target: true,
		}},
	}
}

// DS5Spec is the mixed-traffic baseline scenario: DS-1's car-following
// pair plus 3-5 oncoming NPCs, two safe-cruising NPCs far ahead in the
// EV lane and one trailing NPC that yields to the EV.
func DS5Spec() *Spec {
	return &Spec{
		Name:        "DS-5",
		EVSpeed:     PJ(sim.Kph(45), sim.Kph(1.5)),
		CruiseSpeed: sim.Kph(45),
		Duration:    40,
		Actors: []ActorSpec{
			ds1Target(),
			{
				Class: ClassVehicle, Size: SizeCar,
				Count: 3, CountExtra: 3,
				X: PJ(120, 25), XStep: 40,
				Y: P(-3.5),
				Behavior: BehaviorSpec{
					Kind:  BehaviorCruise,
					Speed: Param{Base: sim.Kph(35), Jitter: sim.Kph(10), Negate: true},
				},
			},
			{
				Class: ClassVehicle, Size: SizeCar,
				Count: 2,
				X:     PJ(110, 15), XStep: 45,
				Behavior: BehaviorSpec{
					Kind:  BehaviorSafeCruise,
					Speed: PJ(sim.Kph(28), sim.Kph(4)),
				},
			},
			{
				Class: ClassVehicle, Size: SizeCar,
				X: PJ(-45, 8),
				Behavior: BehaviorSpec{
					Kind:  BehaviorSafeCruise,
					Speed: PJ(sim.Kph(35), sim.Kph(5)),
				},
			},
		},
	}
}
