// Package scenegen makes driving scenarios data instead of code: a
// declarative Spec describes a road, the EV, a duration and a list of
// actor specs (behavior kind + parameters, each numeric field carrying
// an optional jitter half-width), and compiles into a ready-to-run
// simulator world. Specs round-trip through JSON, live in a named
// registry (the paper's DS-1..DS-5 are built in), and can be sampled
// procedurally from a parameterized Space for scenario-diversity
// campaigns far beyond the paper's five hand-built worlds.
package scenegen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Param is a scalar scenario parameter with an optional uniform jitter.
// Sampling draws base + U(-jitter, +jitter), exactly like the historical
// hand-built scenario builders, so registry specs replay those builders
// bit for bit.
type Param struct {
	Base   float64 `json:"base"`
	Jitter float64 `json:"jitter,omitempty"`
	// Negate flips the sign of the jittered value. DS-5's oncoming
	// traffic historically sampled -(base + U(-j, j)), which is not
	// bitwise the same stream as sampling around -base.
	Negate bool `json:"negate,omitempty"`
}

// P is shorthand for a jitter-free Param.
func P(base float64) Param { return Param{Base: base} }

// PJ is shorthand for a jittered Param.
func PJ(base, jitter float64) Param { return Param{Base: base, Jitter: jitter} }

// Sample draws the parameter's value. A nil rng (or zero jitter) yields
// the nominal base without consuming randomness — the same contract as
// the historical builders' jitter helper, which the bit-identity of
// registry-built DS scenarios depends on.
func (p Param) Sample(rng *stats.RNG) float64 {
	v := p.Base
	if rng != nil && p.Jitter != 0 {
		v += rng.Uniform(-p.Jitter, p.Jitter)
	}
	if p.Negate {
		v = -v
	}
	return v
}

// Behavior kinds understood by the compiler. Each maps to one sim
// Behavior implementation; the comment gives the jitter-sampling order,
// which is fixed so that equal seeds always yield equal worlds.
const (
	BehaviorCruise         = "cruise"          // speed
	BehaviorParked         = "parked"          // (no parameters)
	BehaviorSafeCruise     = "safe-cruise"     // speed
	BehaviorTriggeredCross = "triggered-cross" // trigger_gap, speed
	BehaviorWalkThenStop   = "walk-then-stop"  // speed
)

// BehaviorSpec selects and parameterizes one actor behavior. Unused
// fields for a kind are ignored.
type BehaviorSpec struct {
	Kind string `json:"kind"`
	// Speed is the cruise/walk/cross speed in m/s.
	Speed Param `json:"speed,omitzero"`
	// TriggerGap is the EV gap (m) that starts a triggered-cross.
	TriggerGap Param `json:"trigger_gap,omitzero"`
	// ToY is the lateral destination (m) of a triggered-cross.
	ToY float64 `json:"to_y,omitempty"`
	// Distance is how far (m) a walk-then-stop actor walks.
	Distance float64 `json:"distance,omitempty"`
}

// Actor classes and sizes, by name (the JSON surface of sim.Class and
// the standard sim footprints).
const (
	ClassVehicle    = "vehicle"
	ClassPedestrian = "pedestrian"

	SizeCar        = "car"
	SizeSUV        = "suv"
	SizeBus        = "bus"
	SizePedestrian = "pedestrian"
)

// ActorSpec declares one actor, or a group of actors when Count > 1 or
// CountExtra > 0.
type ActorSpec struct {
	Class string `json:"class"`
	Size  string `json:"size"`
	X     Param  `json:"x"`
	Y     Param  `json:"y,omitzero"`

	Behavior BehaviorSpec `json:"behavior"`

	// BehaviorFirst draws the behavior's jitter before the position's.
	// The hand-built DS-1 sampled the target vehicle's speed before its
	// gap; this flag preserves that stream order so registry builds stay
	// bit-identical.
	BehaviorFirst bool `json:"behavior_first,omitempty"`

	// Target marks this actor as the scripted target object (TO) the
	// malware attacks. Exactly one actor per spec must be the target,
	// and it cannot be a group.
	Target bool `json:"target,omitempty"`

	// Count instantiates the spec several times (0 means 1). CountExtra
	// adds a uniform 0..CountExtra-1 more when building with jitter, and
	// XStep shifts each instance's X base by XStep per index — together
	// they express DS-5-style random background traffic.
	Count      int     `json:"count,omitempty"`
	CountExtra int     `json:"count_extra,omitempty"`
	XStep      float64 `json:"x_step,omitempty"`
}

// count returns the group's base instance count.
func (a *ActorSpec) count() int {
	if a.Count <= 0 {
		return 1
	}
	return a.Count
}

// RoadSpec overrides the default road. Zero fields fall back to the
// corresponding sim.DefaultRoad value.
type RoadSpec struct {
	LaneWidth  float64   `json:"lane_width,omitempty"`
	Offsets    []float64 `json:"offsets,omitempty"`
	SpeedLimit float64   `json:"speed_limit,omitempty"`
}

func (r *RoadSpec) road() sim.Road {
	road := sim.DefaultRoad()
	if r == nil {
		return road
	}
	if r.LaneWidth != 0 {
		road.LaneWidth = r.LaneWidth
	}
	if len(r.Offsets) != 0 {
		road.Offsets = append([]float64(nil), r.Offsets...)
	}
	if r.SpeedLimit != 0 {
		road.SpeedLimit = r.SpeedLimit
	}
	return road
}

// Spec is a complete declarative scenario: it compiles into a
// scenario-shaped world and round-trips through JSON. All quantities
// are SI (meters, m/s, seconds).
type Spec struct {
	Name string `json:"name"`
	// Road is the optional road override (nil: Borregas-style default).
	Road *RoadSpec `json:"road,omitempty"`
	// EVSpeed is the EV's initial speed.
	EVSpeed Param `json:"ev_speed"`
	// CruiseSpeed is the planner's target speed.
	CruiseSpeed float64 `json:"cruise_speed"`
	// Duration is the episode length in seconds.
	Duration float64 `json:"duration"`
	// Actors is compiled in order; jitter is drawn in declaration order.
	Actors []ActorSpec `json:"actors"`
}

func parseClass(s string) (sim.Class, error) {
	switch s {
	case ClassVehicle:
		return sim.ClassVehicle, nil
	case ClassPedestrian:
		return sim.ClassPedestrian, nil
	default:
		return 0, fmt.Errorf("scenegen: unknown actor class %q", s)
	}
}

func parseSize(s string) (sim.Size, error) {
	switch s {
	case SizeCar:
		return sim.SizeCar, nil
	case SizeSUV:
		return sim.SizeSUV, nil
	case SizeBus:
		return sim.SizeBus, nil
	case SizePedestrian:
		return sim.SizePedestrian, nil
	default:
		return sim.Size{}, fmt.Errorf("scenegen: unknown actor size %q", s)
	}
}

func validateBehavior(b *BehaviorSpec) error {
	switch b.Kind {
	case BehaviorCruise, BehaviorParked, BehaviorSafeCruise,
		BehaviorTriggeredCross, BehaviorWalkThenStop:
		return nil
	case "":
		return fmt.Errorf("scenegen: actor has no behavior kind")
	default:
		return fmt.Errorf("scenegen: unknown behavior kind %q", b.Kind)
	}
}

// Validate checks the spec's structural invariants: non-empty name,
// positive duration and cruise speed, known classes/sizes/behaviors,
// non-negative jitters and exactly one non-group target actor.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenegen: spec has no name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenegen: %s: duration %v must be positive", s.Name, s.Duration)
	}
	if s.CruiseSpeed <= 0 {
		return fmt.Errorf("scenegen: %s: cruise speed %v must be positive", s.Name, s.CruiseSpeed)
	}
	if len(s.Actors) == 0 {
		return fmt.Errorf("scenegen: %s: no actors", s.Name)
	}
	targets := 0
	for i := range s.Actors {
		a := &s.Actors[i]
		if _, err := parseClass(a.Class); err != nil {
			return fmt.Errorf("%w (actor %d of %s)", err, i, s.Name)
		}
		if _, err := parseSize(a.Size); err != nil {
			return fmt.Errorf("%w (actor %d of %s)", err, i, s.Name)
		}
		if err := validateBehavior(&a.Behavior); err != nil {
			return fmt.Errorf("%w (actor %d of %s)", err, i, s.Name)
		}
		if a.Count < 0 || a.CountExtra < 0 {
			return fmt.Errorf("scenegen: %s: actor %d has negative count", s.Name, i)
		}
		for _, p := range []Param{a.X, a.Y, a.Behavior.Speed, a.Behavior.TriggerGap} {
			if p.Jitter < 0 {
				return fmt.Errorf("scenegen: %s: actor %d has negative jitter", s.Name, i)
			}
		}
		if a.Target {
			targets++
			if a.count() > 1 || a.CountExtra > 0 {
				return fmt.Errorf("scenegen: %s: target actor %d cannot be a group", s.Name, i)
			}
		}
	}
	if s.EVSpeed.Jitter < 0 {
		return fmt.Errorf("scenegen: %s: EV speed has negative jitter", s.Name)
	}
	if targets != 1 {
		return fmt.Errorf("scenegen: %s: want exactly 1 target actor, have %d", s.Name, targets)
	}
	return nil
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected
// so typos in hand-written spec files surface as errors.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenegen: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and validates a JSON spec file.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenegen: %w", err)
	}
	return Parse(data)
}

// JSON renders the spec as indented JSON.
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
