package scenegen

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func builtinSpecs() []*Spec {
	return []*Spec{DS1Spec(), DS2Spec(), DS3Spec(), DS4Spec(), DS5Spec()}
}

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	for _, want := range []string{"DS-1", "DS-2", "DS-3", "DS-4", "DS-5"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry is missing %s (have %v)", want, names)
		}
		if _, ok := Lookup(want); !ok {
			t.Errorf("Lookup(%q) failed", want)
		}
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	if err := Register(DS1Spec()); err == nil {
		t.Error("re-registering DS-1 must fail")
	}
	if err := Register(&Spec{Name: "empty"}); err == nil {
		t.Error("registering an invalid spec must fail")
	}
}

// TestSpecJSONRoundTrip marshals every built-in spec to JSON, parses it
// back and requires a deep-equal spec — the format loses nothing.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range builtinSpecs() {
		data, err := spec.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", spec.Name, err, data)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("%s: round-trip drift\n got %+v\nwant %+v", spec.Name, back, spec)
		}
	}
}

func TestParseRejectsUnknownFieldsAndInvalidSpecs(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","typo_field":1}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
	// Structurally valid JSON, semantically invalid spec (no target).
	spec := DS1Spec()
	spec.Actors[0].Target = false
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("target-less spec parse error = %v, want target complaint", err)
	}
}

func TestValidateTargetRules(t *testing.T) {
	spec := DS1Spec()
	spec.Actors[0].Count = 3
	if err := spec.Validate(); err == nil {
		t.Error("a group target must be rejected")
	}
	spec = DS1Spec()
	spec.Actors = append(spec.Actors, spec.Actors[0])
	if err := spec.Validate(); err == nil {
		t.Error("two targets must be rejected")
	}
}

func TestCompileBuiltins(t *testing.T) {
	for _, spec := range builtinSpecs() {
		for _, rng := range []*stats.RNG{nil, stats.NewRNG(3)} {
			c, err := Compile(spec, rng)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if c.World.Actor(c.TargetID) == nil {
				t.Errorf("%s: target %d not in world", spec.Name, c.TargetID)
			}
			if c.Duration <= 0 || c.CruiseSpeed <= 0 {
				t.Errorf("%s: bad metadata %+v", spec.Name, c)
			}
		}
	}
}

func TestParamSample(t *testing.T) {
	rng := stats.NewRNG(1)
	if got := P(5).Sample(rng); got != 5 {
		t.Errorf("jitter-free sample = %v, want 5", got)
	}
	if got := (Param{Base: 5, Negate: true}).Sample(nil); got != -5 {
		t.Errorf("negated nominal sample = %v, want -5", got)
	}
	for i := 0; i < 100; i++ {
		v := PJ(10, 2).Sample(rng)
		if v < 8 || v > 12 {
			t.Fatalf("sample %v outside [8, 12]", v)
		}
	}
	// Zero-jitter params must not consume randomness: the identically
	// seeded stream stays aligned after sampling one.
	a, b := stats.NewRNG(7), stats.NewRNG(7)
	P(3).Sample(a)
	if a.Float64() != b.Float64() {
		t.Error("zero-jitter Sample consumed randomness")
	}
}

// TestGeneratorDeterminism: one seed, one scenario — byte-identical
// specs, and different seeds explore the space.
func TestGeneratorDeterminism(t *testing.T) {
	gen := NewGenerator(DefaultSpace())
	for seed := int64(0); seed < 30; seed++ {
		a, err := gen.Generate(stats.NewRNG(seed), "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := gen.Generate(stats.NewRNG(seed), "g")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: same seed produced different specs\n%+v\n%+v", seed, a, b)
		}
	}
	a, _ := gen.Generate(stats.NewRNG(1), "g")
	b, _ := gen.Generate(stats.NewRNG(2), "g")
	if reflect.DeepEqual(a, b) {
		t.Error("distinct seeds produced identical specs")
	}
}

// TestGeneratorValidity: across many seeds, every generated spec
// validates, compiles, has a reachable target ahead of the EV and no
// initial footprint overlaps.
func TestGeneratorValidity(t *testing.T) {
	gen := NewGenerator(DefaultSpace())
	kinds := map[string]int{}
	for seed := int64(0); seed < 200; seed++ {
		spec, err := gen.Generate(stats.NewRNG(seed), fmt.Sprintf("gen-%d", seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := Compile(spec, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		target := c.World.Actor(c.TargetID)
		if target == nil {
			t.Fatalf("seed %d: target missing from world", seed)
		}
		if target.Pos.X <= c.World.EV.Pos.X {
			t.Errorf("seed %d: target at x=%.1f is not ahead of the EV", seed, target.Pos.X)
		}
		if err := CheckOverlapFree(c.World); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		kinds[spec.Actors[0].Behavior.Kind]++
	}
	if len(kinds) < 3 {
		t.Errorf("target behavior mix too narrow: %v", kinds)
	}
}

// TestGeneratedSweepDensityVaries checks the density axis actually
// spreads: the generator must produce both sparse and busy worlds.
func TestGeneratedSweepDensityVaries(t *testing.T) {
	gen := NewGenerator(DefaultSpace())
	minN, maxN := 1<<30, 0
	for seed := int64(0); seed < 100; seed++ {
		spec, err := gen.Generate(stats.NewRNG(seed), "g")
		if err != nil {
			t.Fatal(err)
		}
		n := len(spec.Actors)
		minN, maxN = min(minN, n), max(maxN, n)
	}
	if minN > 1 || maxN < 4 {
		t.Errorf("actor counts span [%d, %d]; want a wider density spread", minN, maxN)
	}
}

func TestCheckOverlapFree(t *testing.T) {
	ev := sim.DefaultEV()
	w := sim.NewWorld(sim.DefaultRoad(), ev)
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: sim.DefaultEV().Pos, Size: sim.SizeCar})
	if err := CheckOverlapFree(w); err == nil {
		t.Error("actor on top of the EV must be reported")
	}
}
