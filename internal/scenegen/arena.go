package scenegen

import (
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Arena is a reusable allocation pool for compiled worlds. A lane that
// runs episodes back to back compiles every scenario into the same
// arena: the world, its actors and their behavior states are recycled
// instead of reallocated, which removes the dominant per-episode
// allocation cost of scenario instantiation.
//
// Recycled objects are fully overwritten at reuse time — every field of
// an actor (including Vel and ID) and of each behavior struct
// (including private progress state like TriggeredCross.triggered) is
// reassigned — so a compiled world is bit-identical to one built by
// Compile from the same (spec, rng). An arena serves one lane at a
// time; it is not safe for concurrent use.
type Arena struct {
	compiled Compiled
	world    *sim.World

	actors []*sim.Actor
	cruise []*sim.Cruise
	safe   []*sim.SafeCruise
	cross  []*sim.TriggeredCross
	walk   []*sim.WalkThenStop

	nActor, nCruise, nSafe, nCross, nWalk int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Compile is the pooled equivalent of the package-level Compile: the
// returned Compiled (and its world) live in the arena and are valid
// until the next Compile call on it.
func (ar *Arena) Compile(spec *Spec, rng *stats.RNG) (*Compiled, error) {
	return compile(ar, spec, rng)
}

// begin resets the pool cursors and produces the world for a new
// compilation.
func (ar *Arena) begin(road sim.Road, ev sim.EV) *sim.World {
	ar.nActor, ar.nCruise, ar.nSafe, ar.nCross, ar.nWalk = 0, 0, 0, 0, 0
	if ar.world == nil {
		ar.world = sim.NewWorld(road, ev)
	} else {
		ar.world.Reset(road, ev)
	}
	return ar.world
}

// takeActor returns a recycled (or new) actor. The caller overwrites
// every field.
func (ar *Arena) takeActor() *sim.Actor {
	if ar.nActor == len(ar.actors) {
		ar.actors = append(ar.actors, new(sim.Actor))
	}
	a := ar.actors[ar.nActor]
	ar.nActor++
	return a
}

func (ar *Arena) takeCruise() *sim.Cruise {
	if ar.nCruise == len(ar.cruise) {
		ar.cruise = append(ar.cruise, new(sim.Cruise))
	}
	c := ar.cruise[ar.nCruise]
	ar.nCruise++
	return c
}

func (ar *Arena) takeSafeCruise() *sim.SafeCruise {
	if ar.nSafe == len(ar.safe) {
		ar.safe = append(ar.safe, new(sim.SafeCruise))
	}
	s := ar.safe[ar.nSafe]
	ar.nSafe++
	return s
}

func (ar *Arena) takeTriggeredCross() *sim.TriggeredCross {
	if ar.nCross == len(ar.cross) {
		ar.cross = append(ar.cross, new(sim.TriggeredCross))
	}
	t := ar.cross[ar.nCross]
	ar.nCross++
	return t
}

func (ar *Arena) takeWalkThenStop() *sim.WalkThenStop {
	if ar.nWalk == len(ar.walk) {
		ar.walk = append(ar.walk, new(sim.WalkThenStop))
	}
	w := ar.walk[ar.nWalk]
	ar.nWalk++
	return w
}
