package scenegen

import (
	"fmt"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Compiled is a spec instantiated into a ready-to-run world plus the
// metadata the experiment harness needs. The scenario package wraps it
// into its Scenario type.
type Compiled struct {
	Name        string
	World       *sim.World
	TargetID    sim.ActorID
	TargetClass sim.Class
	CruiseSpeed float64
	Duration    float64
}

// Compile instantiates the spec: it draws every jittered parameter from
// rng (nil: nominal values) in declaration order and assembles the
// world. Equal (spec, seed) pairs compile to identical worlds; the
// jitter stream order is part of the format's contract because the
// built-in DS specs must replay the historical hand-built scenarios bit
// for bit.
func Compile(spec *Spec, rng *stats.RNG) (*Compiled, error) {
	return compile(nil, spec, rng)
}

// compile is the shared body of Compile and Arena.Compile: a nil arena
// allocates fresh objects, a non-nil arena recycles its pools. Both
// paths draw the identical jitter stream and produce bit-identical
// worlds.
func compile(ar *Arena, spec *Spec, rng *stats.RNG) (*Compiled, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ev := sim.DefaultEV()
	ev.Speed = spec.EVSpeed.Sample(rng)
	var w *sim.World
	var out *Compiled
	if ar != nil {
		w = ar.begin(spec.Road.road(), ev)
		out = &ar.compiled
		*out = Compiled{}
	} else {
		w = sim.NewWorld(spec.Road.road(), ev)
		out = &Compiled{}
	}
	out.Name = spec.Name
	out.World = w
	out.CruiseSpeed = spec.CruiseSpeed
	out.Duration = spec.Duration
	for ai := range spec.Actors {
		as := &spec.Actors[ai]
		n := as.count()
		if as.CountExtra > 0 && rng != nil {
			n += rng.IntN(as.CountExtra)
		}
		for i := 0; i < n; i++ {
			a, err := instantiate(ar, as, i, rng)
			if err != nil {
				return nil, fmt.Errorf("scenegen: %s: actor %d: %w", spec.Name, ai, err)
			}
			id := w.AddActor(a)
			if as.Target {
				out.TargetID = id
				out.TargetClass = a.Class
			}
		}
	}
	return out, nil
}

// instantiate builds the i-th instance of an actor spec, drawing jitter
// in the spec's declared order (position first unless BehaviorFirst).
func instantiate(ar *Arena, as *ActorSpec, i int, rng *stats.RNG) (*sim.Actor, error) {
	class, err := parseClass(as.Class)
	if err != nil {
		return nil, err
	}
	size, err := parseSize(as.Size)
	if err != nil {
		return nil, err
	}
	var behavior sim.Behavior
	var x, y float64
	samplePos := func() {
		xp := as.X
		xp.Base += as.XStep * float64(i)
		x = xp.Sample(rng)
		y = as.Y.Sample(rng)
	}
	if as.BehaviorFirst {
		behavior, err = buildBehavior(ar, &as.Behavior, rng)
		samplePos()
	} else {
		samplePos()
		behavior, err = buildBehavior(ar, &as.Behavior, rng)
	}
	if err != nil {
		return nil, err
	}
	var a *sim.Actor
	if ar != nil {
		a = ar.takeActor()
	} else {
		a = new(sim.Actor)
	}
	// Full overwrite: recycled actors carry stale ID/Vel state.
	*a = sim.Actor{
		Class:    class,
		Pos:      geom.V(x, y),
		Size:     size,
		Behavior: behavior,
	}
	return a, nil
}

// buildBehavior maps a behavior spec to its sim implementation. The
// per-kind parameter sampling order is fixed (see the kind constants).
// Behaviors drawn from the arena are fully overwritten, so recycled
// progress state (TriggeredCross.triggered, WalkThenStop.walked, the
// lazily-defaulted SafeCruise gaps) resets to the fresh zero values.
func buildBehavior(ar *Arena, b *BehaviorSpec, rng *stats.RNG) (sim.Behavior, error) {
	switch b.Kind {
	case BehaviorCruise:
		var c *sim.Cruise
		if ar != nil {
			c = ar.takeCruise()
		} else {
			c = new(sim.Cruise)
		}
		*c = sim.Cruise{Speed: b.Speed.Sample(rng)}
		return c, nil
	case BehaviorParked:
		return sim.Parked{}, nil
	case BehaviorSafeCruise:
		var s *sim.SafeCruise
		if ar != nil {
			s = ar.takeSafeCruise()
		} else {
			s = new(sim.SafeCruise)
		}
		*s = sim.SafeCruise{Speed: b.Speed.Sample(rng)}
		return s, nil
	case BehaviorTriggeredCross:
		var t *sim.TriggeredCross
		if ar != nil {
			t = ar.takeTriggeredCross()
		} else {
			t = new(sim.TriggeredCross)
		}
		*t = sim.TriggeredCross{
			TriggerGap: b.TriggerGap.Sample(rng),
			CrossSpeed: b.Speed.Sample(rng),
			ToY:        b.ToY,
		}
		return t, nil
	case BehaviorWalkThenStop:
		var w *sim.WalkThenStop
		if ar != nil {
			w = ar.takeWalkThenStop()
		} else {
			w = new(sim.WalkThenStop)
		}
		*w = sim.WalkThenStop{
			Speed:    b.Speed.Sample(rng),
			Distance: b.Distance,
		}
		return w, nil
	default:
		return nil, fmt.Errorf("unknown behavior kind %q", b.Kind)
	}
}

// CheckOverlapFree reports an error when any two actors' footprints, or
// an actor's and the EV's, overlap at t = 0. The generator uses it as a
// final validity guard on sampled worlds.
func CheckOverlapFree(w *sim.World) error {
	rects := []geom.Rect{geom.RectFromCenter(w.EV.Pos, w.EV.Size.Length, w.EV.Size.Width)}
	names := []string{"EV"}
	for _, a := range w.Actors {
		rects = append(rects, a.Footprint())
		names = append(names, fmt.Sprintf("actor %d (%v)", a.ID, a.Class))
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if !rects[i].Intersect(rects[j]).Empty() {
				return fmt.Errorf("scenegen: %s overlaps %s at t=0", names[i], names[j])
			}
		}
	}
	return nil
}
