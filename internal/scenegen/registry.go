package scenegen

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to specs. The paper's DS-1..DS-5 are
// registered at init; campaigns, the CLIs and tests can register more.
var registry = struct {
	sync.RWMutex
	m map[string]*Spec
}{m: make(map[string]*Spec)}

// Register validates the spec and adds it under its name. Registering a
// name twice is an error; registered specs are shared and must not be
// mutated afterwards.
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name]; dup {
		return fmt.Errorf("scenegen: scenario %q already registered", s.Name)
	}
	registry.m[s.Name] = s
	return nil
}

// MustRegister is Register for init-time built-ins.
func MustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the registered spec with the given name.
func Lookup(name string) (*Spec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.m[name]
	return s, ok
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
