package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/sim"
)

func sampleEpisode(campaign string, idx int) EpisodeRecord {
	return EpisodeRecord{
		V:              Version,
		Campaign:       campaign,
		Index:          idx,
		Seed:           1000 + int64(idx),
		Scenario:       "DS-2",
		Mode:           core.ModeSmart,
		ExpectCrashes:  true,
		Launched:       true,
		LaunchFrame:    40 + idx,
		Vector:         core.VectorDisappear,
		TargetClass:    sim.ClassPedestrian,
		K:              14,
		KPrime:         5,
		EB:             idx%2 == 0,
		Crashed:        idx%3 == 0,
		MinDelta:       0.1 + 0.2, // deliberately non-representable exactly in binary
		DeltaAtLaunch:  25.5,
		PredictedDelta: 3.25,
		RealizedDelta:  3.75,
		Frames:         450,
	}
}

func TestEpisodeRecordJSONRoundTrip(t *testing.T) {
	in := sampleEpisode("rt", 3)
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out EpisodeRecord
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the record:\n in %+v\nout %+v", in, out)
	}
}

func TestCampaignRecordJSONRoundTrip(t *testing.T) {
	in := NewCampaign("rt", "DS-2", core.ModeSmart, true, 77)
	for i := 0; i < 5; i++ {
		in.Fold(sampleEpisode("rt", i))
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out CampaignRecord
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the record:\n in %+v\nout %+v", in, out)
	}
}

func TestFoldMatchesAggregateRegardlessOfOrder(t *testing.T) {
	meta := NewCampaign("agg", "DS-2", core.ModeSmart, true, 1)
	var eps []EpisodeRecord
	inOrder := meta
	for i := 0; i < 8; i++ {
		ep := sampleEpisode("agg", i)
		eps = append(eps, ep)
		inOrder.Fold(ep)
	}
	// Shuffle deterministically: reversed plus a swap.
	shuffled := []EpisodeRecord{eps[7], eps[2], eps[5], eps[0], eps[3], eps[6], eps[1], eps[4]}
	if got := Aggregate(meta, shuffled); !reflect.DeepEqual(got, inOrder) {
		t.Errorf("Aggregate differs from in-order fold:\n got %+v\nwant %+v", got, inOrder)
	}
}

func TestFoldClassifiesByTargetClass(t *testing.T) {
	rec := NewCampaign("cls", "gen", core.ModeSmart, true, 1)
	ped := sampleEpisode("cls", 0) // pedestrian, EB
	veh := sampleEpisode("cls", 1) // veh, no EB
	veh.TargetClass = sim.ClassVehicle
	idle := sampleEpisode("cls", 2) // never launched: no class bucket
	idle.Launched = false
	idle.EB = false
	for _, ep := range []EpisodeRecord{ped, veh, idle} {
		rec.Fold(ep)
	}
	if rec.PedLaunched != 1 || rec.PedEBs != 1 {
		t.Errorf("ped counts = %d/%d, want 1/1", rec.PedEBs, rec.PedLaunched)
	}
	if rec.VehLaunched != 1 || rec.VehEBs != 0 {
		t.Errorf("veh counts = %d/%d, want 0/1", rec.VehEBs, rec.VehLaunched)
	}
}

func TestMemStoreAppendListQuery(t *testing.T) {
	s := NewMemStore()
	for i := 0; i < 3; i++ {
		if err := s.Append(sampleEpisode("b", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(sampleEpisode("a", 0)); err != nil {
		t.Fatal(err)
	}
	// Re-appending the same (campaign, index) replaces the record.
	dup := sampleEpisode("b", 1)
	dup.Frames = 999
	if err := s.Append(dup); err != nil {
		t.Fatal(err)
	}

	eps, err := s.Episodes("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 3 || eps[0].Index != 0 || eps[1].Index != 1 || eps[2].Index != 2 {
		t.Fatalf("episodes = %+v, want indices 0,1,2", eps)
	}
	if eps[1].Frames != 999 {
		t.Errorf("duplicate append did not replace: frames = %d", eps[1].Frames)
	}
	if eps, _ := s.Episodes("missing"); len(eps) != 0 {
		t.Errorf("missing campaign returned %d episodes", len(eps))
	}

	if err := s.PutCampaign(NewCampaign("b", "DS-2", core.ModeSmart, true, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign(NewCampaign("a", "DS-1", core.ModeRandom, true, 1)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "a" || recs[1].Name != "b" {
		t.Fatalf("campaigns = %+v, want a,b", recs)
	}
	if got := s.EpisodeCampaigns(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("episode campaigns = %v", got)
	}
}

func TestStoreRejectsNewerSchema(t *testing.T) {
	s := NewMemStore()
	ep := sampleEpisode("v", 0)
	ep.V = Version + 1
	if err := s.Append(ep); err == nil {
		t.Error("newer-schema episode accepted")
	}
	c := NewCampaign("v", "DS-1", core.ModeSmart, true, 1)
	c.V = Version + 1
	if err := s.PutCampaign(c); err == nil {
		t.Error("newer-schema campaign accepted")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	fs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := fs.Append(sampleEpisode("file", i)); err != nil {
			t.Fatal(err)
		}
	}
	agg := Aggregate(NewCampaign("file", "DS-2", core.ModeSmart, true, 9), mustEpisodes(t, fs, "file"))
	if err := fs.PutCampaign(agg); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload read-only and compare contents.
	mem, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEpisodes(t, mem, "file"); !reflect.DeepEqual(got, mustEpisodes(t, fs, "file")) {
		t.Errorf("reloaded episodes differ: %+v", got)
	}
	recs, err := mem.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !reflect.DeepEqual(recs[0], agg) {
		t.Errorf("reloaded campaign = %+v, want %+v", recs, agg)
	}

	// Re-open read-write and append more: the log keeps growing.
	fs2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if err := fs2.Append(sampleEpisode("file", 4)); err != nil {
		t.Fatal(err)
	}
	if got := mustEpisodes(t, fs2, "file"); len(got) != 5 {
		t.Errorf("after reopen+append: %d episodes, want 5", len(got))
	}
}

func mustEpisodes(t *testing.T, s Store, name string) []EpisodeRecord {
	t.Helper()
	eps, err := s.Episodes(name)
	if err != nil {
		t.Fatal(err)
	}
	return eps
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"kind":"nonsense"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "unknown record kind") {
		t.Errorf("err = %v, want unknown record kind", err)
	}
}

func TestAggregateForRespectsEpisodeCrashEligibility(t *testing.T) {
	// A Move_In-style campaign (ExpectCrashes=false) interrupted before
	// its aggregate landed must not grow invented crash counts when
	// rebuilt from episodes.
	s := NewMemStore()
	ep := sampleEpisode("movein", 0)
	ep.ExpectCrashes = false
	ep.Crashed = true
	if err := s.Append(ep); err != nil {
		t.Fatal(err)
	}
	rec, err := AggregateFor(s, "movein")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.ExpectCrashes || rec.Crashes != 0 {
		t.Errorf("re-aggregated record = %+v, want ExpectCrashes=false and 0 crashes", rec)
	}
	// A stored aggregate, when present, wins over recomputation.
	stored := NewCampaign("movein", "DS-3", core.ModeSmart, false, 7)
	stored.Runs = 99
	if err := s.PutCampaign(stored); err != nil {
		t.Fatal(err)
	}
	rec, err = AggregateFor(s, "movein")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Runs != 99 {
		t.Errorf("stored aggregate not preferred: %+v", rec)
	}
	if rec, err := AggregateFor(s, "missing"); err != nil || rec != nil {
		t.Errorf("missing campaign: rec=%v err=%v, want nil/nil", rec, err)
	}
}

func TestDiffAcrossStores(t *testing.T) {
	a, b := NewMemStore(), NewMemStore()
	ca := NewCampaign("shared", "DS-2", core.ModeSmart, true, 1)
	ca.Runs, ca.EBs, ca.Crashes = 10, 5, 2
	cb := ca
	cb.Runs, cb.EBs, cb.Crashes = 10, 8, 1
	if err := a.PutCampaign(ca); err != nil {
		t.Fatal(err)
	}
	if err := b.PutCampaign(cb); err != nil {
		t.Fatal(err)
	}
	// b also holds an interrupted campaign: episodes only, no aggregate.
	if err := b.Append(sampleEpisode("only-b", 0)); err != nil {
		t.Fatal(err)
	}

	diffs, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("diffs = %+v, want 2 entries", diffs)
	}
	if diffs[0].Name != "only-b" || diffs[0].A != nil || diffs[0].B == nil {
		t.Errorf("only-b diff = %+v", diffs[0])
	}
	if diffs[0].B.Runs != 1 {
		t.Errorf("only-b aggregate not recomputed from episodes: %+v", diffs[0].B)
	}
	d := diffs[1]
	if d.Name != "shared" {
		t.Fatalf("diff order wrong: %+v", diffs)
	}
	if got, want := d.EBRateDelta, 0.3; !approxEqual(got, want) {
		t.Errorf("EB delta = %v, want %v", got, want)
	}
	if got, want := d.CrashRateDelta, -0.1; !approxEqual(got, want) {
		t.Errorf("crash delta = %v, want %v", got, want)
	}
	out := FormatDiff(diffs)
	if !strings.Contains(out, "shared") || !strings.Contains(out, "+30.0%") {
		t.Errorf("FormatDiff output malformed:\n%s", out)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestFileStoreConcurrentAppend proves the JSONL store is safe for
// concurrent Append from multiple in-flight runs — the run queue
// sinks several campaigns into one store at once. Run under -race;
// the replay also catches interleaved (torn) lines, which would fail
// to parse.
func TestFileStoreConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "concurrent.jsonl")
	fs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	const (
		campaigns = 8
		episodes  = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, campaigns)
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("camp-%d", c)
			for i := 0; i < episodes; i++ {
				ep := sampleEpisode(name, i)
				if err := fs.Append(ep); err != nil {
					errs <- err
					return
				}
			}
			agg := NewCampaign(name, "DS-2", core.ModeSmart, true, int64(c))
			if err := fs.PutCampaign(agg); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay the log: every line must parse and every record survive.
	mem, err := Load(path)
	if err != nil {
		t.Fatalf("reloading the concurrently written store: %v", err)
	}
	recs, err := mem.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != campaigns {
		t.Fatalf("replayed %d campaign aggregates, want %d", len(recs), campaigns)
	}
	for c := 0; c < campaigns; c++ {
		eps, err := mem.Episodes(fmt.Sprintf("camp-%d", c))
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != episodes {
			t.Errorf("camp-%d replayed %d episodes, want %d", c, len(eps), episodes)
		}
	}
}
