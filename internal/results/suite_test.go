package results_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/results/storetest"
)

func TestMemStoreSuite(t *testing.T) {
	storetest.Run(t, func(t *testing.T) results.Store { return results.NewMemStore() })
}

func openFileStore(t *testing.T, dir string) results.DurableStore {
	t.Helper()
	s, err := results.Open(filepath.Join(dir, "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corruptFileStore simulates a kill -9 mid-append: a half-written,
// newline-less record at the end of the log.
func corruptFileStore(t *testing.T, dir string) {
	t.Helper()
	path := filepath.Join(dir, "store.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(`{"kind":"episode","episode":{"campaign":"torn","ind`); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreSuite(t *testing.T) {
	storetest.Run(t, func(t *testing.T) results.Store {
		return openFileStore(t, t.TempDir())
	})
	storetest.RunDurable(t, openFileStore, corruptFileStore)
}

// TestFileStoreTruncatesTornTail pins the writer-side contract beyond
// what the suite observes: the torn bytes are physically cut from the
// file on open, not merely skipped.
func TestFileStoreTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir)
	storetest.Fill(t, s, "torn", 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "store.jsonl")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	clean := fi.Size()
	corruptFileStore(t, dir)
	s = openFileStore(t, dir)
	defer s.Close()
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != clean {
		t.Errorf("file is %d bytes after reopen, want %d (torn tail truncated)", fi.Size(), clean)
	}
}

func TestMemStoreStats(t *testing.T) {
	s := results.NewMemStore()
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != results.FormatMem || st.Campaigns != 0 || st.Episodes != 0 || st.BytesEstimate != 0 {
		t.Fatalf("empty store stats = %+v", st)
	}
	storetest.Fill(t, s, "a", 4)
	storetest.Fill(t, s, "b", 2)
	// Replacing an episode must not double-count.
	if err := s.Append(storetest.Episode("a", 1)); err != nil {
		t.Fatal(err)
	}
	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 2 || st.Episodes != 6 {
		t.Fatalf("stats = %+v, want 2 campaigns / 6 episodes", st)
	}
	if st.BytesEstimate <= 0 || st.Estimated {
		t.Fatalf("stats = %+v, want positive exact bytes estimate", st)
	}
}

func TestFileStoreStats(t *testing.T) {
	dir := t.TempDir()
	s := openFileStore(t, dir)
	defer s.Close()
	storetest.Fill(t, s.(*results.FileStore), "a", 3)
	st, err := s.(*results.FileStore).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != results.FormatJSONL || st.Campaigns != 1 || st.Episodes != 3 {
		t.Fatalf("stats = %+v", st)
	}
	fi, err := os.Stat(filepath.Join(dir, "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesEstimate != fi.Size() {
		t.Errorf("bytes estimate %d != file size %d", st.BytesEstimate, fi.Size())
	}
}
