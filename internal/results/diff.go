package results

import (
	"fmt"
	"sort"
	"strings"
)

// CampaignDiff compares one campaign's aggregate across two stores (or
// two campaigns directly): the EB / crash-rate movement between code
// versions is the headline number of a cross-version sweep.
type CampaignDiff struct {
	Name string `json:"name"`
	// A and B are the aggregates being compared; nil when the campaign
	// is absent from that side.
	A *CampaignRecord `json:"a,omitempty"`
	B *CampaignRecord `json:"b,omitempty"`
	// Deltas are B minus A (zero when either side is absent).
	RunsDelta      int     `json:"runs_delta"`
	EBRateDelta    float64 `json:"eb_rate_delta"`
	CrashRateDelta float64 `json:"crash_rate_delta"`
}

// DiffRecords compares two aggregates directly.
func DiffRecords(name string, a, b *CampaignRecord) CampaignDiff {
	d := CampaignDiff{Name: name, A: a, B: b}
	if a != nil && b != nil {
		d.RunsDelta = b.Runs - a.Runs
		d.EBRateDelta = b.EBRate() - a.EBRate()
		d.CrashRateDelta = b.CrashRate() - a.CrashRate()
	}
	return d
}

// episodeLister is the optional Store extension that names campaigns
// having episode records but no stored aggregate (e.g. interrupted
// runs); both built-in stores implement it.
type episodeLister interface {
	EpisodeCampaigns() []string
}

// Aggregator is the optional Store fast path for rebuilding a
// campaign's aggregate from its episode records: an indexed store
// (segstore) merges per-segment partial aggregates instead of reading
// — or even returning — raw records. Implementations must produce
// exactly Aggregate(identity-of-lowest-index-episode, Episodes(name))
// and nil when no episodes exist.
type Aggregator interface {
	AggregateEpisodes(name string) (*CampaignRecord, error)
}

// aggregateEpisodes rebuilds a campaign's aggregate purely from its
// episode records (the interrupted-campaign fallback). The identity
// fields — mode, scenario, crash eligibility — come from the episodes
// themselves. Returns nil when no episodes exist.
func aggregateEpisodes(s Store, name string) (*CampaignRecord, error) {
	if ag, ok := s.(Aggregator); ok {
		return ag.AggregateEpisodes(name)
	}
	eps, err := s.Episodes(name)
	if err != nil {
		return nil, err
	}
	if len(eps) == 0 {
		return nil, nil
	}
	meta := NewCampaign(name, eps[0].Scenario, eps[0].Mode, eps[0].ExpectCrashes, 0)
	rec := Aggregate(meta, eps)
	return &rec, nil
}

// AggregateFor returns the campaign's stored aggregate, recomputing it
// from episode records when only those were persisted (an interrupted
// run). Returns nil when the store has neither.
func AggregateFor(s Store, name string) (*CampaignRecord, error) {
	recs, err := s.Campaigns()
	if err != nil {
		return nil, err
	}
	for i := range recs {
		if recs[i].Name == name {
			return &recs[i], nil
		}
	}
	return aggregateEpisodes(s, name)
}

// Diff compares every campaign present in either store, sorted by
// name. Campaigns lacking a stored aggregate (interrupted runs) are
// re-aggregated from their episode records.
func Diff(a, b Store) ([]CampaignDiff, error) {
	names := map[string]bool{}
	byName := make([]map[string]*CampaignRecord, 2)
	for i, s := range []Store{a, b} {
		recs, err := s.Campaigns()
		if err != nil {
			return nil, err
		}
		byName[i] = make(map[string]*CampaignRecord, len(recs))
		for j := range recs {
			names[recs[j].Name] = true
			byName[i][recs[j].Name] = &recs[j]
		}
		if el, ok := s.(episodeLister); ok {
			for _, n := range el.EpisodeCampaigns() {
				names[n] = true
			}
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	out := make([]CampaignDiff, 0, len(sorted))
	for _, n := range sorted {
		ra, rb := byName[0][n], byName[1][n]
		var err error
		if ra == nil {
			if ra, err = aggregateEpisodes(a, n); err != nil {
				return nil, err
			}
		}
		if rb == nil {
			if rb, err = aggregateEpisodes(b, n); err != nil {
				return nil, err
			}
		}
		out = append(out, DiffRecords(n, ra, rb))
	}
	return out, nil
}

// FormatDiff renders a diff as a fixed-width table.
func FormatDiff(diffs []CampaignDiff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %10s %12s\n", "campaign", "EB a→b", "crash a→b", "ΔEB", "Δcrash")
	side := func(r *CampaignRecord, rate func(*CampaignRecord) float64) string {
		if r == nil {
			return "—"
		}
		return fmt.Sprintf("%.1f%%", 100*rate(r))
	}
	for _, d := range diffs {
		fmt.Fprintf(&b, "%-28s %6s→%-6s %6s→%-6s", d.Name,
			side(d.A, (*CampaignRecord).EBRate), side(d.B, (*CampaignRecord).EBRate),
			side(d.A, (*CampaignRecord).CrashRate), side(d.B, (*CampaignRecord).CrashRate))
		fmt.Fprintf(&b, " %+9.1f%% %+11.1f%%\n", 100*d.EBRateDelta, 100*d.CrashRateDelta)
	}
	return b.String()
}
