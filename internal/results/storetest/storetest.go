// Package storetest is the shared conformance suite for results.Store
// implementations. Every backend — MemStore, the JSONL FileStore, the
// segmented segstore — must behave identically under it: same
// last-wins semantics, same sort orders, same crash-recovery contract,
// same aggregates out of Diff. New backends wire the suite in rather
// than re-deriving the contract test by test.
package storetest

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/sim"
)

// Factory builds an empty store for one subtest.
type Factory func(t *testing.T) results.Store

// DurableFactory opens (or reopens) a store rooted at dir.
type DurableFactory func(t *testing.T, dir string) results.DurableStore

// Episode returns a deterministic, fully-populated record. Distinct
// (campaign, idx) pairs produce distinct records; the same pair always
// produces the same bytes.
func Episode(campaign string, idx int) results.EpisodeRecord {
	ep := results.EpisodeRecord{
		V:              results.Version,
		Campaign:       campaign,
		Index:          idx,
		Seed:           1000 + int64(idx),
		Scenario:       "DS-2",
		Mode:           core.ModeSmart,
		ExpectCrashes:  true,
		Launched:       idx%5 != 4,
		LaunchFrame:    40 + idx,
		Vector:         core.VectorDisappear,
		TargetClass:    sim.ClassPedestrian,
		K:              14 + idx%7,
		KPrime:         idx % 3,
		EB:             idx%2 == 0,
		Crashed:        idx%3 == 0,
		MinDelta:       0.1 + 0.2 + float64(idx),
		DeltaAtLaunch:  25.5,
		PredictedDelta: 3.25,
		RealizedDelta:  3.75,
		Frames:         450 + idx,
	}
	if idx%2 == 1 {
		ep.TargetClass = sim.ClassVehicle
	}
	if !ep.Launched {
		ep.EB, ep.K, ep.KPrime = false, 0, 0
	}
	return ep
}

// Fill appends n episodes (indexes 0..n-1) and the campaign's exact
// aggregate to the store.
func Fill(t *testing.T, s results.Store, campaign string, n int) results.CampaignRecord {
	t.Helper()
	meta := results.NewCampaign(campaign, "DS-2", core.ModeSmart, true, 7)
	var eps []results.EpisodeRecord
	for i := 0; i < n; i++ {
		ep := Episode(campaign, i)
		eps = append(eps, ep)
		if err := s.Append(ep); err != nil {
			t.Fatalf("append %s/%d: %v", campaign, i, err)
		}
	}
	rec := results.Aggregate(meta, eps)
	if err := s.PutCampaign(rec); err != nil {
		t.Fatalf("put campaign %s: %v", campaign, err)
	}
	return rec
}

// Run exercises the Store contract against a fresh store per subtest.
func Run(t *testing.T, factory Factory) {
	t.Run("AppendListQuery", func(t *testing.T) {
		s := factory(t)
		recB := Fill(t, s, "b", 3)
		recA := Fill(t, s, "a", 2)
		names, err := s.Campaigns()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 2 || names[0].Name != "a" || names[1].Name != "b" {
			t.Fatalf("Campaigns = %+v, want [a b]", names)
		}
		if !reflect.DeepEqual(names[0], recA) || !reflect.DeepEqual(names[1], recB) {
			t.Errorf("stored aggregates differ from submitted ones")
		}
		eps, err := s.Episodes("b")
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 3 {
			t.Fatalf("Episodes(b) returned %d records, want 3", len(eps))
		}
		for i, ep := range eps {
			if want := Episode("b", i); !reflect.DeepEqual(ep, want) {
				t.Errorf("episode %d:\n got %+v\nwant %+v", i, ep, want)
			}
		}
	})

	t.Run("EmptyCampaignYieldsEmptySlice", func(t *testing.T) {
		s := factory(t)
		eps, err := s.Episodes("nonesuch")
		if err != nil {
			t.Fatal(err)
		}
		if eps == nil || len(eps) != 0 {
			t.Fatalf("Episodes(nonesuch) = %#v, want empty non-nil slice", eps)
		}
	})

	t.Run("ReappendReplacesByIndex", func(t *testing.T) {
		s := factory(t)
		Fill(t, s, "c", 4)
		repl := Episode("c", 2)
		repl.Frames = 9999
		if err := s.Append(repl); err != nil {
			t.Fatal(err)
		}
		eps, err := s.Episodes("c")
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 4 {
			t.Fatalf("re-append changed the count: %d, want 4", len(eps))
		}
		if eps[2].Frames != 9999 {
			t.Errorf("re-append did not replace: frames = %d, want 9999", eps[2].Frames)
		}
	})

	t.Run("EpisodesSortedByIndex", func(t *testing.T) {
		s := factory(t)
		for _, idx := range []int{5, 1, 3, 0, 4, 2} {
			if err := s.Append(Episode("shuf", idx)); err != nil {
				t.Fatal(err)
			}
		}
		eps, err := s.Episodes("shuf")
		if err != nil {
			t.Fatal(err)
		}
		for i, ep := range eps {
			if ep.Index != i {
				t.Fatalf("episode %d has index %d; not sorted", i, ep.Index)
			}
		}
	})

	t.Run("PutCampaignUpserts", func(t *testing.T) {
		s := factory(t)
		rec := Fill(t, s, "up", 2)
		rec.Runs = 42
		if err := s.PutCampaign(rec); err != nil {
			t.Fatal(err)
		}
		recs, err := s.Campaigns()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Runs != 42 {
			t.Fatalf("upsert not last-wins: %+v", recs)
		}
	})

	t.Run("RejectsNewerSchema", func(t *testing.T) {
		s := factory(t)
		ep := Episode("v", 0)
		ep.V = results.Version + 1
		if err := s.Append(ep); err == nil {
			t.Error("Append accepted a record from a newer schema")
		}
		c := results.NewCampaign("v", "DS-2", core.ModeSmart, true, 0)
		c.V = results.Version + 1
		if err := s.PutCampaign(c); err == nil {
			t.Error("PutCampaign accepted a record from a newer schema")
		}
	})

	t.Run("AggregateForRebuildsFromEpisodes", func(t *testing.T) {
		s := factory(t)
		// Episodes without a stored aggregate: the interrupted-run shape.
		var eps []results.EpisodeRecord
		for i := 0; i < 6; i++ {
			ep := Episode("orphan", i)
			eps = append(eps, ep)
			if err := s.Append(ep); err != nil {
				t.Fatal(err)
			}
		}
		got, err := results.AggregateFor(s, "orphan")
		if err != nil {
			t.Fatal(err)
		}
		meta := results.NewCampaign("orphan", eps[0].Scenario, eps[0].Mode, eps[0].ExpectCrashes, 0)
		want := results.Aggregate(meta, eps)
		if got == nil || !reflect.DeepEqual(*got, want) {
			t.Errorf("AggregateFor:\n got %+v\nwant %+v", got, &want)
		}
	})
}

// RunDurable exercises the on-disk lifecycle: records survive a close
// and reopen bit for bit, and a torn tail — the state a kill -9
// mid-append leaves — is dropped without harming earlier records.
// corrupt appends a torn (unterminated, unparsable) tail to the
// store's current append target inside dir.
func RunDurable(t *testing.T, open DurableFactory, corrupt func(t *testing.T, dir string)) {
	t.Run("ReopenRoundTrip", func(t *testing.T) {
		dir := t.TempDir()
		s := open(t, dir)
		want := Fill(t, s, "keep", 25)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s = open(t, dir)
		defer s.Close()
		recs, err := s.Campaigns()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !reflect.DeepEqual(recs[0], want) {
			t.Fatalf("aggregate changed across reopen:\n got %+v\nwant %+v", recs, want)
		}
		eps, err := s.Episodes("keep")
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 25 {
			t.Fatalf("got %d episodes after reopen, want 25", len(eps))
		}
		for i, ep := range eps {
			if want := Episode("keep", i); !reflect.DeepEqual(ep, want) {
				t.Fatalf("episode %d changed across reopen:\n got %+v\nwant %+v", i, ep, want)
			}
		}
	})

	t.Run("TornTailDroppedOnReopen", func(t *testing.T) {
		dir := t.TempDir()
		s := open(t, dir)
		Fill(t, s, "torn", 10)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		corrupt(t, dir)
		s = open(t, dir)
		eps, err := s.Episodes("torn")
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 10 {
			t.Fatalf("torn tail harmed earlier records: %d episodes, want 10", len(eps))
		}
		// The writer truncates the tail, so appending resumes cleanly.
		if err := s.Append(Episode("torn", 10)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s = open(t, dir)
		defer s.Close()
		eps, err = s.Episodes("torn")
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 11 {
			t.Fatalf("append after torn-tail recovery lost records: %d, want 11", len(eps))
		}
		for i, ep := range eps {
			if want := Episode("torn", i); !reflect.DeepEqual(ep, want) {
				t.Fatalf("episode %d corrupted:\n got %+v\nwant %+v", i, ep, want)
			}
		}
	})
}

// genCampaign writes one pseudo-random campaign (records driven by rng,
// but reproducible for a given seed) into every store identically.
func genCampaign(t *testing.T, rng *rand.Rand, name string, stores ...results.Store) {
	t.Helper()
	n := 3 + rng.Intn(20)
	mode := core.ModeSmart
	if rng.Intn(2) == 0 {
		mode = core.ModeRandom
	}
	expect := rng.Intn(2) == 0
	var eps []results.EpisodeRecord
	for i := 0; i < n; i++ {
		ep := Episode(name, i)
		ep.Mode = mode
		ep.ExpectCrashes = expect
		ep.Seed = rng.Int63()
		ep.MinDelta = rng.Float64() * 30
		ep.Launched = rng.Intn(4) != 0
		if !ep.Launched {
			ep.EB, ep.K, ep.KPrime = false, 0, 0
		}
		eps = append(eps, ep)
	}
	// Half the campaigns also store their aggregate; the rest exercise
	// the re-aggregation path in Diff.
	withAgg := rng.Intn(2) == 0
	meta := results.NewCampaign(name, "DS-2", mode, expect, 7)
	rec := results.Aggregate(meta, eps)
	for _, s := range stores {
		for _, ep := range eps {
			if err := s.Append(ep); err != nil {
				t.Fatal(err)
			}
		}
		if withAgg {
			if err := s.PutCampaign(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// RunDiffParity checks that heterogeneous stores holding the same
// records diff to zero: every campaign present on both sides, every
// delta zero, aggregates DeepEqual — including campaigns that never
// stored an aggregate and must be rebuilt from episodes by each
// backend's own path (MemStore's fold, segstore's partial-aggregate
// merge).
func RunDiffParity(t *testing.T, factories map[string]Factory) {
	namesOf := func() []string {
		out := make([]string, 0, len(factories))
		for n := range factories {
			out = append(out, n)
		}
		return out
	}
	for seed := int64(1); seed <= 3; seed++ {
		stores := map[string]results.Store{}
		for name, f := range factories {
			stores[name] = f(t)
		}
		rng := rand.New(rand.NewSource(seed))
		all := make([]results.Store, 0, len(stores))
		for _, n := range namesOf() {
			all = append(all, stores[n])
		}
		for c := 0; c < 5; c++ {
			genCampaign(t, rng, campaignName(seed, c), all...)
		}
		names := namesOf()
		for i := 0; i < len(names); i++ {
			for j := 0; j < len(names); j++ {
				if i == j {
					continue
				}
				a, b := stores[names[i]], stores[names[j]]
				diffs, err := results.Diff(a, b)
				if err != nil {
					t.Fatalf("seed %d: Diff(%s, %s): %v", seed, names[i], names[j], err)
				}
				if len(diffs) != 5 {
					t.Fatalf("seed %d: Diff(%s, %s) covered %d campaigns, want 5", seed, names[i], names[j], len(diffs))
				}
				for _, d := range diffs {
					if d.A == nil || d.B == nil {
						t.Fatalf("seed %d: %s missing from one side of Diff(%s, %s)", seed, d.Name, names[i], names[j])
					}
					if !reflect.DeepEqual(d.A, d.B) {
						t.Errorf("seed %d: %s aggregates differ between %s and %s:\n a %+v\n b %+v",
							seed, d.Name, names[i], names[j], d.A, d.B)
					}
					if d.RunsDelta != 0 || d.EBRateDelta != 0 || d.CrashRateDelta != 0 {
						t.Errorf("seed %d: %s has nonzero deltas between %s and %s: %+v",
							seed, d.Name, names[i], names[j], d)
					}
				}
			}
		}
	}
}

func campaignName(seed int64, c int) string {
	// Exercise shard-name escaping too: spaces, slashes, unicode.
	switch c {
	case 1:
		return "sweep/DS-2 v" + string(rune('a'+seed))
	case 2:
		return "δ-camp." + string(rune('0'+c))
	default:
		return "camp-" + string(rune('0'+seed)) + "-" + string(rune('0'+c))
	}
}
