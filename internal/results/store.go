package results

import (
	"fmt"
	"sort"
	"sync"
)

// Sink receives episode records as they complete. The experiment
// harness delivers records in submission (index) order, so a sink that
// appends sequentially — a JSONL file, an HTTP stream — produces a
// replayable log without its own reordering buffer.
type Sink interface {
	Append(EpisodeRecord) error
}

// Store is a durable collection of campaign and episode records with
// the four operations every consumer needs: append episodes, upsert
// campaign aggregates, list campaigns, and query one campaign's
// episodes. Episodes are keyed by (campaign, index) — appending the
// same key again replaces the record, which is what lets an
// interrupted campaign re-append safely. Implementations are safe for
// concurrent use.
type Store interface {
	Sink
	// PutCampaign upserts a campaign's aggregate record.
	PutCampaign(CampaignRecord) error
	// Campaigns lists the stored campaign records sorted by name.
	Campaigns() ([]CampaignRecord, error)
	// Episodes returns one campaign's episode records sorted by index.
	// A campaign with no records yields an empty slice, not an error.
	Episodes(campaign string) ([]EpisodeRecord, error)
}

// MemStore is the in-memory Store: the test double, the cache layer,
// and the aggregation scratchpad for Diff.
type MemStore struct {
	mu        sync.RWMutex
	episodes  map[string]map[int]EpisodeRecord
	campaigns map[string]CampaignRecord
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		episodes:  make(map[string]map[int]EpisodeRecord),
		campaigns: make(map[string]CampaignRecord),
	}
}

// Append implements Sink. Records from a newer schema are rejected.
func (s *MemStore) Append(ep EpisodeRecord) error {
	if ep.V > Version {
		return fmt.Errorf("results: episode record v%d is newer than supported v%d", ep.V, Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byIdx := s.episodes[ep.Campaign]
	if byIdx == nil {
		byIdx = make(map[int]EpisodeRecord)
		s.episodes[ep.Campaign] = byIdx
	}
	byIdx[ep.Index] = ep
	return nil
}

// PutCampaign implements Store.
func (s *MemStore) PutCampaign(c CampaignRecord) error {
	if c.V > Version {
		return fmt.Errorf("results: campaign record v%d is newer than supported v%d", c.V, Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.campaigns[c.Name] = c
	return nil
}

// Campaigns implements Store.
func (s *MemStore) Campaigns() ([]CampaignRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CampaignRecord, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Episodes implements Store.
func (s *MemStore) Episodes(campaign string) ([]EpisodeRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byIdx := s.episodes[campaign]
	out := make([]EpisodeRecord, 0, len(byIdx))
	for _, ep := range byIdx {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// EpisodeCampaigns lists the campaign names that have episode records
// (whether or not an aggregate was stored), sorted.
func (s *MemStore) EpisodeCampaigns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.episodes))
	for name := range s.episodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
