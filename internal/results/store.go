package results

import (
	"fmt"
	"sort"
	"sync"
)

// Sink receives episode records as they complete. The experiment
// harness delivers records in submission (index) order, so a sink that
// appends sequentially — a JSONL file, an HTTP stream — produces a
// replayable log without its own reordering buffer.
type Sink interface {
	Append(EpisodeRecord) error
}

// Store is a durable collection of campaign and episode records with
// the four operations every consumer needs: append episodes, upsert
// campaign aggregates, list campaigns, and query one campaign's
// episodes. Episodes are keyed by (campaign, index) — appending the
// same key again replaces the record, which is what lets an
// interrupted campaign re-append safely. Implementations are safe for
// concurrent use.
type Store interface {
	Sink
	// PutCampaign upserts a campaign's aggregate record.
	PutCampaign(CampaignRecord) error
	// Campaigns lists the stored campaign records sorted by name.
	Campaigns() ([]CampaignRecord, error)
	// Episodes returns one campaign's episode records sorted by index.
	// A campaign with no records yields an empty slice, not an error.
	Episodes(campaign string) ([]EpisodeRecord, error)
}

// DurableStore is a Store with an on-disk lifecycle: flushable and
// closable. Both persistent backends (the JSONL FileStore and the
// segmented segstore) implement it; binaries that accept either hold
// this interface.
type DurableStore interface {
	Store
	Sync() error
	Close() error
}

// Store format names reported by Stats and used by the CLI layer's
// autodetection.
const (
	FormatMem      = "mem"
	FormatJSONL    = "jsonl"
	FormatSegstore = "segstore"
)

// StoreStats is a cheap, lock-bounded snapshot of a store's size:
// what campaignd's GET /stores reports and what parity tests compare
// across backends. Counts are exact unless Estimated is set (a
// segmented store whose metadata cannot prove episode distinctness
// until its compactor runs reports an upper bound).
type StoreStats struct {
	Format    string `json:"format"`
	Path      string `json:"path,omitempty"`
	Campaigns int    `json:"campaigns"`
	Episodes  int    `json:"episodes"`
	// BytesEstimate approximates the store's resident (mem) or
	// on-disk (file/segstore) footprint.
	BytesEstimate int64 `json:"bytes_estimate"`
	Estimated     bool  `json:"estimated,omitempty"`
}

// StatsProvider is the optional Store extension behind GET /stores.
type StatsProvider interface {
	Stats() (StoreStats, error)
}

// episodeSizeEstimate approximates one record's resident footprint:
// the struct itself plus string backing. Computed outside store locks
// so Append's critical section stays map-ops only.
func episodeSizeEstimate(ep *EpisodeRecord) int64 {
	return int64(200 + len(ep.Campaign) + len(ep.Scenario))
}

// campaignSizeEstimate approximates an aggregate's footprint including
// its per-episode slices.
func campaignSizeEstimate(c *CampaignRecord) int64 {
	return int64(160+len(c.Name)+len(c.Scenario)) +
		8*int64(len(c.Ks)+len(c.KPrimes)+len(c.MinDeltas)+len(c.Predicted)+len(c.Realized)) +
		int64(len(c.Successes))
}

// MemStore is the in-memory Store: the test double, the cache layer,
// and the aggregation scratchpad for Diff.
type MemStore struct {
	mu        sync.RWMutex
	episodes  map[string]map[int]EpisodeRecord
	campaigns map[string]CampaignRecord
	nEpisodes int
	bytes     int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		episodes:  make(map[string]map[int]EpisodeRecord),
		campaigns: make(map[string]CampaignRecord),
	}
}

// Append implements Sink. Records from a newer schema are rejected.
// Validation and size accounting happen before the lock is taken; the
// critical section is the map insert and two counter updates.
func (s *MemStore) Append(ep EpisodeRecord) error {
	if ep.V > Version {
		return fmt.Errorf("results: episode record v%d is newer than supported v%d", ep.V, Version)
	}
	est := episodeSizeEstimate(&ep)
	s.mu.Lock()
	defer s.mu.Unlock()
	byIdx := s.episodes[ep.Campaign]
	if byIdx == nil {
		byIdx = make(map[int]EpisodeRecord)
		s.episodes[ep.Campaign] = byIdx
	}
	if old, ok := byIdx[ep.Index]; ok {
		s.bytes -= episodeSizeEstimate(&old)
	} else {
		s.nEpisodes++
	}
	s.bytes += est
	byIdx[ep.Index] = ep
	return nil
}

// PutCampaign implements Store.
func (s *MemStore) PutCampaign(c CampaignRecord) error {
	if c.V > Version {
		return fmt.Errorf("results: campaign record v%d is newer than supported v%d", c.V, Version)
	}
	est := campaignSizeEstimate(&c)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.campaigns[c.Name]; ok {
		s.bytes -= campaignSizeEstimate(&old)
	}
	s.bytes += est
	s.campaigns[c.Name] = c
	return nil
}

// Campaigns implements Store.
func (s *MemStore) Campaigns() ([]CampaignRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CampaignRecord, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Episodes implements Store.
func (s *MemStore) Episodes(campaign string) ([]EpisodeRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byIdx := s.episodes[campaign]
	out := make([]EpisodeRecord, 0, len(byIdx))
	for _, ep := range byIdx {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// EpisodeCampaigns lists the campaign names that have episode records
// (whether or not an aggregate was stored), sorted.
func (s *MemStore) EpisodeCampaigns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.episodes))
	for name := range s.episodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats implements StatsProvider. Counts are maintained incrementally
// on the write path, so this is O(1) under a read lock.
func (s *MemStore) Stats() (StoreStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return StoreStats{
		Format:        FormatMem,
		Campaigns:     len(s.campaigns),
		Episodes:      s.nEpisodes,
		BytesEstimate: s.bytes,
	}, nil
}
