package results

import (
	"bytes"
	"errors"
)

// ErrMalformedLine marks a line-level decode failure that is eligible
// for torn-tail tolerance: a record cut mid-write by a crash cannot
// parse, and when nothing but blank bytes follow it, replay drops it
// instead of failing. A line that parses but carries a semantically
// invalid record (unknown kind, newer schema) must NOT wrap this
// error — silently dropping a complete record would lose data.
var ErrMalformedLine = errors.New("results: malformed line")

// ScanJSONL walks raw line by line, calling fn for every non-blank
// line, and returns how many leading bytes were consumed cleanly.
//
// The torn-tail rule is the one runq's journal replay established: if
// fn fails with an error wrapping ErrMalformedLine on a line after
// which only blank bytes remain — the disk state a kill -9 mid-append
// leaves — scanning stops and that line is excluded from the clean
// length, with no error. Any other failure, or a malformed line with
// real content after it, aborts the scan: skipping interior corruption
// could silently resurrect stale last-wins state.
//
// Writers truncate their log to the returned length so the next append
// starts on a clean line boundary; read-only loads just ignore the
// tail.
func ScanJSONL(raw []byte, fn func(lineno int, line []byte) error) (good int, err error) {
	offset, lineno := 0, 0
	for offset < len(raw) {
		end, next := len(raw), len(raw)
		if nl := bytes.IndexByte(raw[offset:], '\n'); nl >= 0 {
			end = offset + nl
			next = end + 1
		}
		line := raw[offset:end]
		lineno++
		if len(bytes.TrimSpace(line)) > 0 {
			if err := fn(lineno, line); err != nil {
				if errors.Is(err, ErrMalformedLine) && len(bytes.TrimSpace(raw[next:])) == 0 {
					return offset, nil
				}
				return 0, err
			}
		}
		offset = next
	}
	return offset, nil
}
