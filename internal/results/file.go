package results

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// line is the JSONL envelope: one self-describing record per line, so
// a store file is an append-only log that any language can stream.
type line struct {
	Kind     string          `json:"kind"`
	Episode  *EpisodeRecord  `json:"episode,omitempty"`
	Campaign *CampaignRecord `json:"campaign,omitempty"`
}

const (
	kindEpisode  = "episode"
	kindCampaign = "campaign"
)

// FileStore is the JSONL-backed Store: an append-only log on disk
// mirrored by an in-memory index for queries. Appends go straight to
// the file, so an interrupted campaign keeps every episode that
// completed; re-opening folds duplicate (campaign, index) keys and
// repeated campaign aggregates last-wins, exactly like a log replay.
// A torn final line — the state a kill -9 mid-append leaves — is
// dropped and truncated on open, so the next append starts on a clean
// line boundary (the same rule as runq's journal replay).
type FileStore struct {
	mu   sync.Mutex
	mem  *MemStore
	f    *os.File
	path string
}

// Open opens (creating if needed) a JSONL store for reading and
// appending. A torn final line is cut from the file.
func Open(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	mem, good, err := replayStore(raw, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if good < len(raw) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("results: %s: drop torn tail: %w", path, err)
		}
	}
	return &FileStore{mem: mem, f: f, path: path}, nil
}

// Load reads a JSONL store into memory without holding the file open —
// the read-only path used by diffs and the campaign service. A torn
// final line is tolerated and ignored (never truncated: the writer
// that owns the file does that on its next open).
func Load(path string) (*MemStore, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: load store: %w", err)
	}
	mem, _, err := replayStore(raw, path)
	return mem, err
}

// replayStore folds envelope lines into a fresh MemStore, returning
// the clean byte length per the ScanJSONL torn-tail rule.
func replayStore(raw []byte, path string) (*MemStore, int, error) {
	mem := NewMemStore()
	good, err := ScanJSONL(raw, func(lineno int, data []byte) error {
		var l line
		if err := json.Unmarshal(data, &l); err != nil {
			return fmt.Errorf("results: %s:%d: %w: %w", path, lineno, ErrMalformedLine, err)
		}
		switch {
		case l.Kind == kindEpisode && l.Episode != nil:
			if err := mem.Append(*l.Episode); err != nil {
				return fmt.Errorf("results: %s:%d: %w", path, lineno, err)
			}
		case l.Kind == kindCampaign && l.Campaign != nil:
			if err := mem.PutCampaign(*l.Campaign); err != nil {
				return fmt.Errorf("results: %s:%d: %w", path, lineno, err)
			}
		default:
			return fmt.Errorf("results: %s:%d: unknown record kind %q", path, lineno, l.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return mem, good, nil
}

// Path reports the store's file path.
func (s *FileStore) Path() string { return s.path }

func (s *FileStore) writeLine(l line) error {
	raw, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("results: encode record: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := s.f.Write(raw); err != nil {
		return fmt.Errorf("results: append to %s: %w", s.path, err)
	}
	return nil
}

// Append implements Sink: the episode is written to the log before it
// is visible to queries, so a crash never loses an acknowledged record.
func (s *FileStore) Append(ep EpisodeRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeLine(line{Kind: kindEpisode, Episode: &ep}); err != nil {
		return err
	}
	return s.mem.Append(ep)
}

// PutCampaign implements Store; upserts append a fresh line and the
// loader keeps the last one.
func (s *FileStore) PutCampaign(c CampaignRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeLine(line{Kind: kindCampaign, Campaign: &c}); err != nil {
		return err
	}
	return s.mem.PutCampaign(c)
}

// Campaigns implements Store.
func (s *FileStore) Campaigns() ([]CampaignRecord, error) { return s.mem.Campaigns() }

// Episodes implements Store.
func (s *FileStore) Episodes(campaign string) ([]EpisodeRecord, error) {
	return s.mem.Episodes(campaign)
}

// EpisodeCampaigns lists campaign names that have episode records.
func (s *FileStore) EpisodeCampaigns() []string { return s.mem.EpisodeCampaigns() }

// Stats implements StatsProvider: record counts from the in-memory
// mirror, bytes from the log file itself.
func (s *FileStore) Stats() (StoreStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.mem.Stats()
	if err != nil {
		return StoreStats{}, err
	}
	st.Format = FormatJSONL
	st.Path = s.path
	if fi, err := s.f.Stat(); err == nil {
		st.BytesEstimate = fi.Size()
	}
	return st, nil
}

// Sync flushes the log to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.f.Sync(), s.f.Close())
}
