package results

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// line is the JSONL envelope: one self-describing record per line, so
// a store file is an append-only log that any language can stream.
type line struct {
	Kind     string          `json:"kind"`
	Episode  *EpisodeRecord  `json:"episode,omitempty"`
	Campaign *CampaignRecord `json:"campaign,omitempty"`
}

const (
	kindEpisode  = "episode"
	kindCampaign = "campaign"
)

// maxLine bounds one JSONL line; campaign aggregates carry per-episode
// slices, so the default bufio.Scanner limit is too small.
const maxLine = 64 << 20

// FileStore is the JSONL-backed Store: an append-only log on disk
// mirrored by an in-memory index for queries. Appends go straight to
// the file, so an interrupted campaign keeps every episode that
// completed; re-opening folds duplicate (campaign, index) keys and
// repeated campaign aggregates last-wins, exactly like a log replay.
type FileStore struct {
	mu   sync.Mutex
	mem  *MemStore
	f    *os.File
	path string
}

// Open opens (creating if needed) a JSONL store for reading and
// appending.
func Open(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	mem, err := readAll(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{mem: mem, f: f, path: path}, nil
}

// Load reads a JSONL store into memory without holding the file open —
// the read-only path used by diffs and the campaign service.
func Load(path string) (*MemStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("results: load store: %w", err)
	}
	defer f.Close()
	return readAll(f, path)
}

func readAll(r io.Reader, path string) (*MemStore, error) {
	mem := NewMemStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	n := 0
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("results: %s:%d: %w", path, n, err)
		}
		switch {
		case l.Kind == kindEpisode && l.Episode != nil:
			if err := mem.Append(*l.Episode); err != nil {
				return nil, fmt.Errorf("results: %s:%d: %w", path, n, err)
			}
		case l.Kind == kindCampaign && l.Campaign != nil:
			if err := mem.PutCampaign(*l.Campaign); err != nil {
				return nil, fmt.Errorf("results: %s:%d: %w", path, n, err)
			}
		default:
			return nil, fmt.Errorf("results: %s:%d: unknown record kind %q", path, n, l.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	return mem, nil
}

// Path reports the store's file path.
func (s *FileStore) Path() string { return s.path }

func (s *FileStore) writeLine(l line) error {
	raw, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("results: encode record: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := s.f.Write(raw); err != nil {
		return fmt.Errorf("results: append to %s: %w", s.path, err)
	}
	return nil
}

// Append implements Sink: the episode is written to the log before it
// is visible to queries, so a crash never loses an acknowledged record.
func (s *FileStore) Append(ep EpisodeRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeLine(line{Kind: kindEpisode, Episode: &ep}); err != nil {
		return err
	}
	return s.mem.Append(ep)
}

// PutCampaign implements Store; upserts append a fresh line and the
// loader keeps the last one.
func (s *FileStore) PutCampaign(c CampaignRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeLine(line{Kind: kindCampaign, Campaign: &c}); err != nil {
		return err
	}
	return s.mem.PutCampaign(c)
}

// Campaigns implements Store.
func (s *FileStore) Campaigns() ([]CampaignRecord, error) { return s.mem.Campaigns() }

// Episodes implements Store.
func (s *FileStore) Episodes(campaign string) ([]EpisodeRecord, error) {
	return s.mem.Episodes(campaign)
}

// EpisodeCampaigns lists campaign names that have episode records.
func (s *FileStore) EpisodeCampaigns() []string { return s.mem.EpisodeCampaigns() }

// Sync flushes the log to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.f.Sync(), s.f.Close())
}
