// Package results makes campaign outcomes a first-class, durable API.
// The paper's evaluation (Table II, Figs. 5-8) compares hundreds of
// episodes per campaign; instead of aggregating in memory and
// discarding everything after one print, every episode folds into a
// typed, versioned EpisodeRecord and every campaign into a
// CampaignRecord, both of which round-trip through JSON. Records
// stream into a Sink as episodes complete (in submission order), land
// in a Store (JSONL file or in-memory), and later stages — reports,
// diffs between code versions, resumed campaigns, the HTTP campaign
// service — consume the stored records instead of live results.
package results

import (
	"sort"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Version is the schema version stamped on every record. Readers
// reject records from a newer schema instead of misinterpreting them.
const Version = 1

// EpisodeRecord is the persistent form of one episode's outcome: the
// identity that reproduces it (campaign, index, seed, scenario, mode)
// plus everything the Table II / Fig. 6-8 aggregates consume. It is
// the unit the JSONL stores append and the resume path folds back.
type EpisodeRecord struct {
	V        int       `json:"v"`
	Campaign string    `json:"campaign"`
	Index    int       `json:"index"`
	Seed     int64     `json:"seed"`
	Scenario string    `json:"scenario"`
	Mode     core.Mode `json:"mode"`
	// ExpectCrashes mirrors the campaign's crash-eligibility, so an
	// interrupted campaign's aggregate can be rebuilt from episodes
	// alone without inventing crash counts for Move_In-style campaigns.
	ExpectCrashes bool `json:"expect_crashes,omitempty"`

	Launched    bool        `json:"launched"`
	LaunchFrame int         `json:"launch_frame,omitempty"`
	Vector      core.Vector `json:"vector,omitempty"`
	TargetClass sim.Class   `json:"target_class,omitempty"`
	K           int         `json:"k,omitempty"`
	KPrime      int         `json:"k_prime,omitempty"`

	EB      bool `json:"eb"`
	Crashed bool `json:"crashed"`

	MinDelta       float64 `json:"min_delta"`
	DeltaAtLaunch  float64 `json:"delta_at_launch,omitempty"`
	PredictedDelta float64 `json:"predicted_delta,omitempty"`
	RealizedDelta  float64 `json:"realized_delta,omitempty"`

	Frames int `json:"frames"`
}

// CampaignRecord is the persistent aggregate of one campaign: its
// identity (name, scenario, mode, base seed) and the fold of its
// episode records. Folding is pure — the same episodes in index order
// produce the same record bit for bit — which is what makes resumed
// campaigns indistinguishable from uninterrupted ones.
type CampaignRecord struct {
	V             int       `json:"v"`
	Name          string    `json:"name"`
	Scenario      string    `json:"scenario"`
	Mode          core.Mode `json:"mode"`
	ExpectCrashes bool      `json:"expect_crashes"`
	BaseSeed      int64     `json:"base_seed"`

	Runs     int `json:"runs"`
	Launched int `json:"launched"`
	EBs      int `json:"ebs"`
	Crashes  int `json:"crashes"`

	// Per-target-class launch/success counts (launched episodes only),
	// recorded so summaries classify by what the malware actually
	// attacked rather than by campaign-name conventions.
	PedLaunched int `json:"ped_launched"`
	PedEBs      int `json:"ped_ebs"`
	VehLaunched int `json:"veh_launched"`
	VehEBs      int `json:"veh_ebs"`

	Ks        []float64 `json:"ks,omitempty"`
	KPrimes   []float64 `json:"k_primes,omitempty"`
	MinDeltas []float64 `json:"min_deltas,omitempty"`
	Predicted []float64 `json:"predicted,omitempty"`
	Realized  []float64 `json:"realized,omitempty"`
	Successes []bool    `json:"successes,omitempty"`
}

// NewCampaign starts an empty aggregate for a campaign.
func NewCampaign(name, scenario string, mode core.Mode, expectCrashes bool, baseSeed int64) CampaignRecord {
	return CampaignRecord{
		V:             Version,
		Name:          name,
		Scenario:      scenario,
		Mode:          mode,
		ExpectCrashes: expectCrashes,
		BaseSeed:      baseSeed,
	}
}

// Fold adds one episode to the aggregate. Episodes must be folded in
// index order for the slice-valued fields to be reproducible.
func (c *CampaignRecord) Fold(ep EpisodeRecord) {
	c.Runs++
	if ep.Launched {
		c.Launched++
		c.Ks = append(c.Ks, float64(ep.K))
		if ep.KPrime > 0 {
			c.KPrimes = append(c.KPrimes, float64(ep.KPrime))
		}
		c.MinDeltas = append(c.MinDeltas, ep.MinDelta)
		if c.Mode == core.ModeSmart {
			c.Predicted = append(c.Predicted, ep.PredictedDelta)
			c.Realized = append(c.Realized, ep.RealizedDelta)
			c.Successes = append(c.Successes, ep.EB || ep.Crashed)
		}
		switch ep.TargetClass {
		case sim.ClassPedestrian:
			c.PedLaunched++
			if ep.EB {
				c.PedEBs++
			}
		case sim.ClassVehicle:
			c.VehLaunched++
			if ep.EB {
				c.VehEBs++
			}
		}
	}
	if ep.EB {
		c.EBs++
	}
	if ep.Crashed && c.ExpectCrashes {
		c.Crashes++
	}
}

// Aggregate folds episodes into a fresh copy of the meta record's
// identity, sorting by index first so the result does not depend on
// storage order.
func Aggregate(meta CampaignRecord, episodes []EpisodeRecord) CampaignRecord {
	out := NewCampaign(meta.Name, meta.Scenario, meta.Mode, meta.ExpectCrashes, meta.BaseSeed)
	sorted := append([]EpisodeRecord(nil), episodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for _, ep := range sorted {
		out.Fold(ep)
	}
	return out
}

// EBRate returns the emergency-braking fraction.
func (c *CampaignRecord) EBRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.EBs) / float64(c.Runs)
}

// CrashRate returns the accident fraction.
func (c *CampaignRecord) CrashRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Crashes) / float64(c.Runs)
}

// MedianK returns the median attack duration in frames.
func (c *CampaignRecord) MedianK() float64 { return stats.Median(c.Ks) }

// MedianKPrime returns the median shift time K' in frames.
func (c *CampaignRecord) MedianKPrime() float64 { return stats.Median(c.KPrimes) }
