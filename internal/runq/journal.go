package runq

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// journalFile is the queue's on-disk log inside the queue directory.
const journalFile = "queue.jsonl"

// lockFileName is the queue directory's exclusivity lock. The lock
// lives on its own file — never renamed, held for the queue's whole
// lifetime — so journal compaction can atomically swap queue.jsonl
// underneath it without opening a double-server window.
const lockFileName = "queue.lock"

// compactTmpFile is the staging file for journal compaction.
const compactTmpFile = "queue.jsonl.tmp"

// journalLine is the JSONL envelope: one self-describing record per
// line. Every state transition appends the job's full snapshot, and
// replay keeps the last line per id — the same last-wins idiom as the
// results store, so the journal is crash-safe by construction: a torn
// process leaves a valid prefix (plus at most one partial final line,
// which replay drops and truncates) and the previous state of every
// job.
type journalLine struct {
	Kind string `json:"kind"`
	Job  *Job   `json:"job,omitempty"`
}

const kindJob = "job"

// openJournal opens (creating if needed) dir/queue.jsonl for append,
// takes an exclusive lock on dir/queue.lock so two server processes
// cannot share one queue dir, and replays the log into a job map. The
// returned lock file must stay open for the queue's lifetime.
func openJournal(dir string) (journal, lock *os.File, jobs map[int]*Job, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("runq: create queue dir: %w", err)
	}
	lockPath := filepath.Join(dir, lockFileName)
	lock, err = os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("runq: open lock: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, nil, nil, fmt.Errorf("runq: %s: %w", lockPath, err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, nil, nil, fmt.Errorf("runq: open journal: %w", err)
	}
	fail := func(err error) (*os.File, *os.File, map[int]*Job, error) {
		f.Close()
		lock.Close()
		return nil, nil, nil, err
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		return fail(fmt.Errorf("runq: %s: %w", path, err))
	}
	jobs, good, err := replay(raw, path)
	if err != nil {
		return fail(err)
	}
	if good < len(raw) {
		// A torn final line from a crash mid-append: cut it so the
		// next append starts on a clean line boundary instead of
		// concatenating onto garbage.
		if err := f.Truncate(int64(good)); err != nil {
			return fail(fmt.Errorf("runq: %s: drop torn tail: %w", path, err))
		}
	}
	return f, lock, jobs, nil
}

// compactJournal rewrites the journal to its last-wins state: one
// snapshot line per job, in id order. The replacement is staged in a
// temp file and renamed over queue.jsonl, so a crash at any point
// leaves either the old journal or the complete compacted one — never
// a partial state. The caller's directory lock (queue.lock) is
// untouched by the swap. Returns the reopened journal handle.
func compactJournal(dir string, old *os.File, jobs map[int]*Job) (*os.File, error) {
	path := filepath.Join(dir, journalFile)
	tmpPath := filepath.Join(dir, compactTmpFile)
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return nil, fmt.Errorf("runq: compact: %w", err)
	}
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := appendJob(tmp, jobs[id]); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return nil, fmt.Errorf("runq: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return nil, fmt.Errorf("runq: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return nil, fmt.Errorf("runq: compact: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return nil, fmt.Errorf("runq: compact: %w", err)
	}
	old.Close() // the old inode is gone from the directory
	nf, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runq: compact: reopen journal: %w", err)
	}
	return nf, nil
}

// replay folds the journal bytes last-wins into a job map, returning
// how many leading bytes parsed cleanly. An unparsable final line —
// the disk state a kill -9 mid-append leaves — is tolerated and
// excluded from the good length; corruption anywhere earlier is an
// error, because silently skipping it could resurrect stale states.
func replay(raw []byte, path string) (map[int]*Job, int, error) {
	jobs := make(map[int]*Job)
	offset, lineno := 0, 0
	for offset < len(raw) {
		end := len(raw)
		next := end
		if nl := bytes.IndexByte(raw[offset:], '\n'); nl >= 0 {
			end = offset + nl
			next = end + 1
		}
		line := raw[offset:end]
		lineno++
		if len(bytes.TrimSpace(line)) > 0 {
			var l journalLine
			if err := json.Unmarshal(line, &l); err != nil {
				if len(bytes.TrimSpace(raw[next:])) == 0 {
					return jobs, offset, nil
				}
				return nil, 0, fmt.Errorf("runq: %s:%d: %w", path, lineno, err)
			}
			if l.Kind != kindJob || l.Job == nil {
				return nil, 0, fmt.Errorf("runq: %s:%d: unknown record kind %q", path, lineno, l.Kind)
			}
			j := *l.Job
			jobs[j.ID] = &j
		}
		offset = next
	}
	return jobs, offset, nil
}

// appendJob writes one job snapshot to the journal (no-op when the
// queue is memory-only).
func appendJob(f *os.File, j *Job) error {
	if f == nil {
		return nil
	}
	raw, err := json.Marshal(journalLine{Kind: kindJob, Job: j})
	if err != nil {
		return fmt.Errorf("runq: encode job %d: %w", j.ID, err)
	}
	raw = append(raw, '\n')
	if _, err := f.Write(raw); err != nil {
		return fmt.Errorf("runq: journal job %d: %w", j.ID, err)
	}
	return nil
}
