package runq

import (
	"fmt"
	"strings"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/policy"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
)

// Request describes one campaign run to queue: what to run (exactly
// one of a registered scenario name, an inline declarative spec, or
// procedural-generator parameters), the attack mode, and the batch
// shape. Requests are journaled verbatim, so an inline spec survives a
// restart without any registry state.
type Request struct {
	// Scenario names a registered spec ("DS-1".."DS-5" or anything
	// registered in scenegen).
	Scenario string `json:"scenario,omitempty"`
	// Spec is an inline declarative scenario, compiled per episode.
	Spec *scenegen.Spec `json:"spec,omitempty"`
	// Generate samples a fresh procedural scenario per episode from
	// the given space; zero-valued fields fall back to the defaults,
	// so {} sweeps the full default space.
	Generate *scenegen.Space `json:"generate,omitempty"`

	// Mode is golden | smart | nosh | random.
	Mode string `json:"mode"`
	// Policy is an inline attack-policy artifact for smart-mode runs:
	// queued and remote workers evaluate the policy instead of the
	// built-in fixed trigger. Journaled verbatim like Spec, so a
	// policy-driven job survives restarts with no registry state.
	Policy *policy.Artifact `json:"policy,omitempty"`
	// Name keys the persisted records (default "<scenario>-<mode>").
	Name string `json:"name,omitempty"`
	Runs int    `json:"runs"`
	Seed int64  `json:"seed"`
	// Resume folds episodes already stored under Name instead of
	// re-running them.
	Resume bool `json:"resume,omitempty"`
}

// ParseMode maps the request's mode string to the core attack mode
// (golden, the attack-free baseline, is mode 0).
func ParseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "golden":
		return 0, nil
	case "smart":
		return core.ModeSmart, nil
	case "nosh":
		return core.ModeNoSH, nil
	case "random":
		return core.ModeRandom, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want golden|smart|nosh|random)", s)
	}
}

// Validate checks the request without touching the engine: the mode
// parses, runs is positive, and exactly one scenario source is given
// and well-formed. It is the POST-time gate — a journaled job is
// always executable.
func (r *Request) Validate() error {
	mode, err := ParseMode(r.Mode)
	if err != nil {
		return err
	}
	if r.Runs <= 0 {
		return fmt.Errorf("runs must be positive, got %d", r.Runs)
	}
	if r.Policy != nil {
		if mode != core.ModeSmart {
			return fmt.Errorf("policy artifacts apply to smart-mode runs only (mode %q)", r.Mode)
		}
		if err := r.Policy.Validate(); err != nil {
			return err
		}
	}
	n := 0
	if r.Scenario != "" {
		n++
	}
	if r.Spec != nil {
		n++
	}
	if r.Generate != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("exactly one of scenario, spec or generate must be set (got %d)", n)
	}
	switch {
	case r.Scenario != "":
		if _, ok := scenegen.Lookup(r.Scenario); !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", r.Scenario, scenegen.Names())
		}
	case r.Spec != nil:
		if err := r.Spec.Validate(); err != nil {
			return fmt.Errorf("inline spec: %w", err)
		}
	case r.Generate != nil:
		// A journaled job must be executable; an invalid space would
		// fail every episode.
		if err := r.Generate.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("generate: %w", err)
		}
	}
	return nil
}

// Source resolves the request's scenario source.
func (r *Request) Source() (scenario.Source, error) {
	switch {
	case r.Scenario != "":
		return scenario.Named(r.Scenario), nil
	case r.Spec != nil:
		return scenario.FromSpec(r.Spec), nil
	case r.Generate != nil:
		return scenario.FromGenerator(scenegen.NewGenerator(*r.Generate)), nil
	default:
		return nil, fmt.Errorf("runq: request has no scenario source")
	}
}

// Label names the scenario source for statuses and reports.
func (r *Request) Label() string {
	switch {
	case r.Scenario != "":
		return r.Scenario
	case r.Spec != nil && r.Spec.Name != "":
		return r.Spec.Name
	case r.Spec != nil:
		return "spec"
	default:
		return "generated"
	}
}

// RecordName is the campaign key the job's records persist under:
// the explicit Name, or "<scenario label>-<mode>".
func (r *Request) RecordName() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("%s-%s", r.Label(), strings.ToLower(r.Mode))
}
