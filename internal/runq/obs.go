package runq

// Queue instrumentation: lifecycle counters and live gauges for the
// run queue, plus the per-job episode-rate tracker that feeds SSE
// progress events. All of it is observational — journal bytes and job
// state transitions are identical with metrics on or off.

import (
	"time"

	"github.com/robotack/robotack/internal/obs"
)

var (
	qSubmitted = obs.NewCounter("robotack_runq_jobs_submitted_total",
		"Jobs accepted into the run queue.")
	qCompleted = obs.NewCounter("robotack_runq_jobs_completed_total",
		"Jobs finished successfully (local and remote).")
	qFailed = obs.NewCounter("robotack_runq_jobs_failed_total",
		"Jobs that ended in terminal failure.")
	qCancelled = obs.NewCounter("robotack_runq_jobs_cancelled_total",
		"Jobs cancelled by a client.")
	qRequeued = obs.NewCounter("robotack_runq_requeues_total",
		"Jobs returned to the queue (lost lease, worker shutdown, server shutdown).")
	qLeased = obs.NewCounter("robotack_runq_leases_total",
		"Job leases granted (local dispatch and remote workers).")
	qRenewed = obs.NewCounter("robotack_runq_lease_renewals_total",
		"Successful remote heartbeats.")
	qExpired = obs.NewCounter("robotack_runq_lease_expired_total",
		"Remote leases that expired without a heartbeat.")
	qDepth = obs.NewGauge("robotack_runq_queue_depth",
		"Jobs currently waiting in the queue.")
	qRunning = obs.NewGauge("robotack_runq_jobs_running",
		"Jobs currently executing (local and remote).")
)

func count(c *obs.Counter) {
	if obs.Enabled() {
		c.Add(1)
	}
}

// gaugesLocked refreshes the depth/running gauges after a state
// transition. Transitions are rare next to episodes, so the job scan
// is cheap.
func (q *Queue) gaugesLocked() {
	if !obs.Enabled() {
		return
	}
	qDepth.Set(float64(len(q.pending)))
	running := 0
	for _, j := range q.jobs {
		if j.State == StateRunning {
			running++
		}
	}
	qRunning.Set(float64(running))
}

// rateState tracks one running job's episode throughput for SSE
// progress events: an exponential moving average over the deltas the
// executor (or remote heartbeats) report. Derived state only — never
// journaled, rebuilt from scratch on restart.
type rateState struct {
	lastDone int
	lastTime time.Time
	eps      float64
}

// observeLocked folds a progress report into the job's rate estimate.
func (q *Queue) observeRateLocked(id, done int) {
	rs := q.rates[id]
	now := time.Now()
	if rs == nil {
		q.rates[id] = &rateState{lastDone: done, lastTime: now}
		return
	}
	dt := now.Sub(rs.lastTime).Seconds()
	if done <= rs.lastDone || dt <= 0 {
		return
	}
	inst := float64(done-rs.lastDone) / dt
	if rs.eps == 0 {
		rs.eps = inst
	} else {
		rs.eps = 0.5*rs.eps + 0.5*inst
	}
	rs.lastDone = done
	rs.lastTime = now
}

// dropRateLocked forgets a job's rate state once it leaves Running.
func (q *Queue) dropRateLocked(id int) { delete(q.rates, id) }
