// Package runq is the durable campaign run queue behind the HTTP
// service: jobs (a run request plus id and state) persist to an
// append-only JSONL journal, a dispatcher executes at most a bounded
// number of jobs at once on per-job engines, and remote worker
// processes on other machines lease jobs over HTTP, heartbeat while
// they run them, and stream episode records back into the served
// store. The paper's evaluation is thousands of episodes per
// (scenario, mode) cell; the queue is what lets many clients submit
// such sweeps and survive restarts — on reopen the journal replays
// (last state wins, like the results store) and interrupted jobs
// re-execute bit-identically through experiment.WithResume, because
// every already-persisted episode folds back instead of re-running.
package runq

import "time"

// State is a job's lifecycle state. Queued and Running are live;
// Done, Failed and Cancelled are terminal.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one queued campaign run: the request that defines it, the
// identity the queue assigned, and its current progress. Job values
// are snapshots — the queue hands out copies, never its own pointers.
type Job struct {
	ID      int     `json:"id"`
	Request Request `json:"request"`
	State   State   `json:"state"`
	// Done/Total is episode progress (Total = Request.Runs).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Attempt counts how many times the job has been leased for
	// execution; a job re-leased after a crash or lost heartbeat has
	// Attempt > 1 and must resume from the store's episodes.
	Attempt int `json:"attempt,omitempty"`
	// Worker names who is executing the job ("local" for the queue's
	// own dispatcher, the worker's self-chosen name for remote leases).
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
	// Trace is the job's deterministic trace identity, set at submit
	// when the queue has a tracer. Journaled, so every attempt — in
	// this process or the next — stays on one trace.
	Trace *TraceRef `json:"trace,omitempty"`

	// lease is when a remote worker's lease expires; zero for local
	// execution (the dispatcher's context keeps those alive). Not
	// journaled: replay requeues running jobs regardless.
	lease time.Time
	// Trace-span clocks, unjournaled (a restarted queue restarts them):
	// when the job was submitted, when it last (re)entered the queue,
	// when its current attempt began, and a per-job heartbeat counter.
	submittedAt time.Time
	enqueuedAt  time.Time
	executingAt time.Time
	hbSeq       uint32
}

// Resume reports whether executing the job must fold episodes already
// persisted in the results store instead of re-running them: either
// the client asked for it, or a previous attempt already streamed
// episodes that a bit-identical aggregate has to reuse. A queued job
// with any past attempt resumes; a running one resumes when an
// attempt preceded the current lease.
func (j Job) Resume() bool {
	if j.Request.Resume {
		return true
	}
	if j.State == StateQueued {
		return j.Attempt >= 1
	}
	return j.Attempt > 1
}

// Event is one progress notification for a job, published on every
// state transition and episode completion. The final event of a
// subscription carries a terminal State.
type Event struct {
	ID    int   `json:"id"`
	State State `json:"state"`
	Done  int   `json:"done"`
	Total int   `json:"total"`
	// EpsPerSec is the job's recent episode throughput (moving
	// average), present while the job is running and making progress.
	EpsPerSec float64 `json:"eps_per_sec,omitempty"`
	// QueuePos is the job's 1-based position among waiting jobs,
	// present while the job is queued.
	QueuePos int    `json:"queue_pos,omitempty"`
	Error    string `json:"error,omitempty"`
}

// event builds the job's current Event snapshot.
func (j *Job) event() Event {
	return Event{ID: j.ID, State: j.State, Done: j.Done, Total: j.Total, Error: j.Error}
}
