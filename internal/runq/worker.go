package runq

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/results"
)

// Worker is the remote-worker client: it leases jobs from a
// robotack-serve queue over HTTP, executes them on a local engine,
// heartbeats while they run, streams episode records back into the
// served store as they complete, and reports the final aggregate.
// Several Workers on several machines drain one queue concurrently.
type Worker struct {
	// Server is the queue server's base URL, e.g. "http://host:8077".
	Server string
	// Name identifies this worker in leases and logs.
	Name string
	// Workers is the per-job engine pool size (<=0: one per CPU).
	Workers int
	// Batch is how many completed episodes to buffer before posting
	// them to the server in one request (<=0: DefaultPostBatch).
	// Larger batches cut HTTP round-trips on fast jobs; smaller ones
	// tighten the at-most-one-unflushed-batch crash window. This is a
	// transport knob — it batches RESULT UPLOADS. Batched INFERENCE is
	// EpisodeBatch.
	Batch int
	// EpisodeBatch is the lockstep episode-lane count per engine worker
	// (engine.WithEpisodeBatch): lanes coalesce same-network oracle
	// queries into batched forward passes. <=1 disables lanes. Distinct
	// from Batch, which only shapes HTTP traffic.
	EpisodeBatch int
	// Oracles are trained safety-hijacker oracles for smart-mode jobs
	// (nil: the analytic oracle).
	Oracles map[core.Vector]core.Oracle
	// Poll is how long to sleep when the queue is empty (default 1s).
	Poll time.Duration
	// BackoffBase and BackoffMax bound the jittered exponential
	// backoff applied after consecutive lease/heartbeat HTTP failures:
	// the first retry waits ~BackoffBase (default 100ms), doubling per
	// failure up to BackoffMax (default 5s), and one success resets it.
	// A restarting server is not hammered by a fleet of reconnecting
	// workers — the jitter spreads their retries out.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Log receives the worker's structured progress and error records,
	// with worker/job/attempt attributes (default: discard).
	Log *slog.Logger
	// NoTrace disables span tracing for jobs that carry a TraceRef. By
	// default a traced job gets a per-job tracer whose spans (worker-job,
	// engine-job, sampled episodes, slow exemplars) are forwarded to the
	// server's sink over POST /runs/{id}/spans.
	NoTrace bool
	// TraceSample overrides the episode-span sampling rate, 1-in-N
	// (<=0: trace.DefaultSampleEvery).
	TraceSample int

	// sleep is the interruptible wait, overridable in tests.
	sleep func(ctx context.Context, d time.Duration) bool
	// jitter is the backoff's randomness source, overridable in tests
	// (returns a uniform draw in [0,1)).
	jitter func() float64
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return obs.Discard()
}

// backoffDelay returns the wait before the n-th consecutive retry
// (n >= 1): BackoffBase doubled per failure, capped at BackoffMax,
// with the final wait jittered uniformly over [d/2, d) so retrying
// workers desynchronize.
func (w *Worker) backoffDelay(n int) time.Duration {
	base, max := w.BackoffBase, w.BackoffMax
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	rnd := w.jitter
	if rnd == nil {
		rnd = func() float64 { return float64(time.Now().UnixNano()%1000) / 1000 }
	}
	return d/2 + time.Duration(rnd()*float64(d/2))
}

// wait sleeps for d or until ctx is cancelled; false means cancelled.
func (w *Worker) wait(ctx context.Context, d time.Duration) bool {
	if w.sleep != nil {
		return w.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Run leases and executes jobs until ctx is cancelled. A job in
// flight at cancellation is aborted and handed back to the queue
// (fail with requeue), so another worker — or the server's own
// dispatcher — resumes it from the store's episodes. Lease failures
// (an unreachable or erroring server) retry under jittered exponential
// backoff instead of the flat poll interval. Returns nil on a clean
// shutdown.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = time.Second
	}
	fails := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		ran, err := w.RunOne(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			fails++
			d := w.backoffDelay(fails)
			w.log().Warn("lease attempt failed; backing off",
				"worker", w.Name, "attempt", fails, "retry_in", d, "err", err)
			if !w.wait(ctx, d) {
				return nil
			}
			continue
		}
		fails = 0
		if ran {
			continue // drain the queue without sleeping
		}
		if !w.wait(ctx, poll) {
			return nil
		}
	}
}

// RunOne leases and executes at most one job. ran is false when the
// queue had nothing for us.
func (w *Worker) RunOne(ctx context.Context) (ran bool, err error) {
	var lease LeaseResponse
	status, err := w.postJSON(ctx, "/lease", "", LeaseRequest{Worker: w.Name}, &lease)
	if err != nil {
		return false, fmt.Errorf("lease: %w", err)
	}
	if status == http.StatusNoContent {
		return false, nil
	}
	if status != http.StatusOK {
		return false, fmt.Errorf("lease: server returned %d", status)
	}
	w.log().Info("leased job",
		"worker", w.Name, "job", lease.Job.ID, "campaign", lease.Job.Request.RecordName(),
		"runs", lease.Job.Request.Runs, "attempt", lease.Job.Attempt)
	w.execute(ctx, lease)
	return true, nil
}

// DefaultPostBatch is how many completed episodes the worker
// buffers before posting them in one request: a paper-scale job is
// thousands of episodes, and one synchronous round-trip each would
// serialize the engine fold behind the network. A worker crash loses
// at most one unflushed batch — the requeued attempt simply re-runs
// those episodes. Override per worker with Worker.Batch
// (robotack-worker -batch). Unrelated to inference batching
// (Worker.EpisodeBatch / robotack-worker -episode-batch).
const DefaultPostBatch = 16

// batch returns the effective episode batch size.
func (w *Worker) batch() int {
	if w.Batch > 0 {
		return w.Batch
	}
	return DefaultPostBatch
}

// run is the per-lease state shared by the engine's progress callback,
// the heartbeat loop and the episode sink.
type run struct {
	w     *Worker
	jobID int
	// traceparent is the job's trace-context header value ("" for
	// untraced jobs), set on every request the run makes.
	traceparent string
	// cancel aborts the engine once the lease is lost.
	cancel context.CancelFunc
	lost   atomic.Bool
	done   atomic.Int64
	total  atomic.Int64
	// buf holds completed episodes awaiting a flush. Append is called
	// only from the engine's single-goroutine result fold, so no lock.
	buf []results.EpisodeRecord
}

// Append implements results.Sink: completed episodes buffer and post
// to the server in batches; the server appends them to the served
// store before acknowledging. executeJob flushes the remainder before
// reporting completion.
func (r *run) Append(ep results.EpisodeRecord) error {
	r.buf = append(r.buf, ep)
	if len(r.buf) < r.w.batch() {
		return nil
	}
	return r.flush()
}

// flush posts the buffered episodes. The post carries its own
// deadline — a black-holed server connection must not wedge the
// engine fold (and with it the whole worker).
func (r *run) flush() error {
	if len(r.buf) == 0 {
		return nil
	}
	batch := r.buf
	r.buf = nil
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	status, err := r.w.postJSON(ctx, fmt.Sprintf("/runs/%d/episodes", r.jobID), r.traceparent,
		EpisodesRequest{Worker: r.w.Name, Episodes: batch}, nil)
	first, last := batch[0].Index, batch[len(batch)-1].Index
	if err != nil {
		return fmt.Errorf("stream episodes %d..%d: %w", first, last, err)
	}
	if status == http.StatusConflict || status == http.StatusNotFound {
		r.loseLease()
		return ErrLeaseLost
	}
	if status != http.StatusOK {
		return fmt.Errorf("stream episodes %d..%d: server returned %d", first, last, status)
	}
	return nil
}

func (r *run) loseLease() {
	if r.lost.CompareAndSwap(false, true) {
		r.w.log().Warn("lease lost; abandoning run", "worker", r.w.Name, "job", r.jobID)
		r.cancel()
	}
}

// heartbeat extends the lease every ttl/3 until stop closes, aborting
// the run if the server says the lease is gone (requeued after a
// missed beat, cancelled by a client, or taken by another worker).
// Failed beats retry under the worker's jittered exponential backoff —
// never sooner than the regular interval — so a down server isn't
// hammered while the lease may still survive.
func (r *run) heartbeat(ctx context.Context, ttl time.Duration, stop <-chan struct{}) {
	interval := ttl / 3
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	fails := 0
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
		}
		hb := HeartbeatRequest{Worker: r.w.Name, Done: int(r.done.Load()), Total: int(r.total.Load())}
		status, err := r.w.postJSON(ctx, fmt.Sprintf("/runs/%d/heartbeat", r.jobID), r.traceparent, hb, nil)
		switch {
		case err != nil:
			fails++ // transient; the lease may still survive
			r.w.log().Warn("heartbeat failed",
				"worker", r.w.Name, "job", r.jobID, "attempt", fails, "err", err)
		case status == http.StatusConflict || status == http.StatusNotFound:
			r.loseLease()
			return
		default:
			fails = 0
		}
		next := interval
		if fails > 0 {
			if d := r.w.backoffDelay(fails); d > next {
				next = d
			}
		}
		t.Reset(next)
	}
}

// execute runs one leased job end to end and reports the outcome.
func (w *Worker) execute(ctx context.Context, lease LeaseResponse) {
	job := lease.Job
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &run{w: w, jobID: job.ID, cancel: cancel}
	r.total.Store(int64(job.Total))

	// A traced job gets a per-job tracer whose spans forward to the
	// server's sink: the worker-job span nests under the attempt's lease
	// span (both sides derive its ID from the journaled TraceRef), and
	// engine-job/episode spans nest under worker-job via the context.
	var jobSpan *trace.Span
	var tr *trace.Tracer
	var fwd *spanForwarder
	if job.Trace != nil && !w.NoTrace {
		r.traceparent = job.Trace.Traceparent(job.Attempt)
		fwd = &spanForwarder{r: r}
		tr = trace.New(w.Name, fwd, trace.WithSampleEvery(w.TraceSample))
		sc := trace.SpanContext{
			Tracer:  tr,
			TraceID: uint64(job.Trace.TraceID),
			SpanID:  execSpanID(job.Trace, job.Attempt),
		}
		jobSpan = tr.StartSpan(sc, "worker-job",
			trace.DeriveSpanID(uint64(job.Trace.TraceID), uint64(job.Attempt), trace.StreamWorkerJob))
		jobSpan.SetAttr("worker", w.Name)
		jobCtx = jobSpan.Context(jobCtx)
	}

	stop := make(chan struct{})
	defer close(stop)
	go r.heartbeat(jobCtx, time.Duration(lease.LeaseTTLMillis)*time.Millisecond, stop)

	rec, err := w.executeJob(jobCtx, job, r)

	// Spans must land before the completion report: the server gates the
	// spans endpoint on the lease, which completion releases.
	jobSpan.Finish()
	if tr != nil {
		tr.Close()
		fwd.flush()
	}

	// Reports go out on a fresh context: the worker's own ctx may be
	// the reason the job stopped.
	repCtx, repCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer repCancel()
	report := func(verb string, body any) {
		status, err := w.postJSON(repCtx, fmt.Sprintf("/runs/%d/%s", job.ID, verb), r.traceparent, body, nil)
		switch {
		case err != nil:
			// Unreachable server: the lease will expire and the job
			// requeue, so the outcome is not lost, just delayed.
			w.log().Warn("report failed",
				"worker", w.Name, "job", job.ID, "verb", verb, "err", err)
		case status != http.StatusOK:
			w.log().Warn("report rejected",
				"worker", w.Name, "job", job.ID, "verb", verb, "status", status)
		}
	}
	switch {
	case r.lost.Load():
		// The server already requeued or cancelled the job; silence is
		// the protocol.
	case err == nil:
		report("complete", CompleteRequest{Worker: w.Name, Campaign: &rec})
		w.log().Info("job done", "worker", w.Name, "job", job.ID, "runs", rec.Runs)
	case ctx.Err() != nil:
		// Worker shutdown: hand the job back promptly instead of
		// waiting for the lease to expire.
		report("fail", FailRequest{Worker: w.Name, Error: "worker shut down", Requeue: true})
	default:
		report("fail", FailRequest{Worker: w.Name, Error: err.Error()})
		w.log().Warn("job failed", "worker", w.Name, "job", job.ID, "err", err)
	}
}

// spanForwarderBatch is how many completed spans the forwarder buffers
// before posting them to the server in one request.
const spanForwarderBatch = 128

// spanForwarder is a trace.Sink that ships the worker's completed
// spans to the server's /runs/{id}/spans endpoint in batches. Spans
// are observability, not results: a failed post is logged and the
// batch dropped, never retried — the job's outcome must not hinge on
// span delivery.
type spanForwarder struct {
	r   *run
	buf []trace.SpanData
}

func (f *spanForwarder) Emit(d *trace.SpanData) {
	f.buf = append(f.buf, d.Clone())
	if len(f.buf) >= spanForwarderBatch {
		f.flush()
	}
}

func (f *spanForwarder) flush() {
	if len(f.buf) == 0 {
		return
	}
	batch := f.buf
	f.buf = nil
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	status, err := f.r.w.postJSON(ctx, fmt.Sprintf("/runs/%d/spans", f.r.jobID), f.r.traceparent,
		SpansRequest{Worker: f.r.w.Name, Spans: batch}, nil)
	switch {
	case err != nil:
		f.r.w.log().Warn("span forward failed",
			"worker", f.r.w.Name, "job", f.r.jobID, "spans", len(batch), "err", err)
	case status != http.StatusOK:
		f.r.w.log().Warn("span forward rejected",
			"worker", f.r.w.Name, "job", f.r.jobID, "spans", len(batch), "status", status)
	}
}

// executeJob runs the job's batch on a local engine, streaming fresh
// episodes to the server and resuming from the served store's
// episodes when the lease says to.
func (w *Worker) executeJob(ctx context.Context, job Job, r *run) (results.CampaignRecord, error) {
	opts := []experiment.RunOption{experiment.WithSink(r)}
	if job.Request.Resume {
		prior, err := w.fetchEpisodes(ctx, job.Request.RecordName())
		if err != nil {
			return results.CampaignRecord{}, fmt.Errorf("fetch resume episodes: %w", err)
		}
		mem := results.NewMemStore()
		for _, ep := range prior {
			if err := mem.Append(ep); err != nil {
				return results.CampaignRecord{}, err
			}
		}
		opts = append(opts, experiment.WithResume(mem))
	}
	eng := engine.New(
		engine.WithContext(ctx),
		engine.WithWorkers(w.Workers),
		engine.WithEpisodeBatch(w.EpisodeBatch),
		engine.WithProgress(func(done, total int) {
			r.done.Store(int64(done))
			r.total.Store(int64(total))
		}),
	)
	rec, err := ExecuteRequest(eng, job.Request, w.Oracles, opts...)
	// Episodes still buffered must land before the outcome is reported
	// (a completed job's records are durable, a failed one's resumable).
	if ferr := r.flush(); ferr != nil && err == nil {
		err = ferr
	}
	return rec, err
}

// fetchEpisodes pulls a campaign's already-persisted episodes from
// the server (none is not an error). The record name is user-chosen,
// so it is path-escaped — a name with "/" must stay one URL segment
// or the lookup 404s and the resume silently restarts from scratch.
func (w *Worker) fetchEpisodes(ctx context.Context, name string) ([]results.EpisodeRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Server+"/campaigns/"+url.PathEscape(name)+"/episodes", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(WorkerHeader, w.Name)
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server returned %d", resp.StatusCode)
	}
	var eps []results.EpisodeRecord
	if err := json.NewDecoder(resp.Body).Decode(&eps); err != nil {
		return nil, err
	}
	return eps, nil
}

// postJSON posts body to path and decodes the response into out (when
// non-nil and the status is 200). Every request carries the worker's
// identity header; traceparent, when non-empty, carries the job's
// trace context. The status code is always returned so callers can
// treat 204/409 as protocol, not errors.
func (w *Worker) postJSON(ctx context.Context, path, traceparent string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(WorkerHeader, w.Name)
	if traceparent != "" {
		req.Header.Set(TraceparentHeader, traceparent)
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
