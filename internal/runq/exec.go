package runq

import (
	"context"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
)

// LocalExecutor runs jobs in-process: each job gets its own engine
// (cancellable via the job's context, which is how DELETE /runs/{id}
// stops a run mid-flight), episodes stream into the store as they
// complete, and a resuming attempt folds the store's episodes back so
// the aggregate is bit-identical to an uninterrupted run.
type LocalExecutor struct {
	// Store receives episode records and the final aggregate; it is
	// also the resume source for re-executed jobs.
	Store results.Store
	// Oracles are the trained safety-hijacker oracles (nil: analytic).
	Oracles map[core.Vector]core.Oracle
	// Workers is the per-job engine pool size (<=0: one per CPU).
	Workers int
	// EpisodeBatch is the lockstep episode-lane count per worker
	// (engine.WithEpisodeBatch); lanes coalesce same-network oracle
	// queries into batched inference. <=1 disables lanes.
	EpisodeBatch int
}

// Execute implements Executor.
func (e LocalExecutor) Execute(ctx context.Context, job Job, progress func(done, total int)) error {
	eng := engine.New(
		engine.WithContext(ctx),
		engine.WithWorkers(e.Workers),
		engine.WithEpisodeBatch(e.EpisodeBatch),
		engine.WithProgress(progress),
	)
	var opts []experiment.RunOption
	if e.Store != nil {
		opts = append(opts, experiment.WithSink(e.Store))
		if job.Resume() {
			opts = append(opts, experiment.WithResume(e.Store))
		}
	}
	_, err := ExecuteRequest(eng, job.Request, e.Oracles, opts...)
	return err
}

// ExecuteRequest runs one request's batch on eng and returns its
// aggregate. It is the shared execution path of the local dispatcher
// and the remote worker: both produce records under the request's
// record name, via whatever sink/resume options the caller wires in.
func ExecuteRequest(eng *engine.Engine, req Request, oracles map[core.Vector]core.Oracle, opts ...experiment.RunOption) (results.CampaignRecord, error) {
	mode, err := ParseMode(req.Mode)
	if err != nil {
		return results.CampaignRecord{}, err
	}
	src, err := req.Source()
	if err != nil {
		return results.CampaignRecord{}, err
	}
	name := req.RecordName()
	opts = append(opts, experiment.WithRecordName(name))
	if mode == 0 {
		g, err := experiment.RunGoldenOn(eng, src, req.Runs, req.Seed, opts...)
		return g.CampaignRecord, err
	}
	var pol core.TriggerPolicy
	if req.Policy != nil {
		pol, err = req.Policy.Build()
		if err != nil {
			return results.CampaignRecord{}, err
		}
	}
	c := experiment.Campaign{
		Name:          name,
		Scenario:      src,
		Mode:          mode,
		ExpectCrashes: true,
		Policy:        pol,
	}
	r, err := experiment.RunCampaignOn(eng, c, req.Runs, req.Seed, oracles, opts...)
	return r.CampaignRecord, err
}
