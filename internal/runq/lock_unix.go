//go:build unix

package runq

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking flock on the journal file:
// two robotack-serve processes on one -queue-dir would double-execute
// jobs and interleave journal writers. The lock dies with the file
// descriptor, so a kill -9 never leaves a stale lock behind.
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("queue dir is locked by another process: %w", err)
	}
	return nil
}
