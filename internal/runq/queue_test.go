package runq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/runq"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
)

// stubExec is a controllable executor: it steps through the job's
// episodes with a small delay (or blocked on a channel), tracks the
// maximum concurrency it observed, and returns promptly on
// cancellation.
type stubExec struct {
	step    time.Duration
	block   chan struct{} // non-nil: every episode waits for a receive
	fail    error         // returned after the last episode
	mu      sync.Mutex
	cur     int
	max     int
	started chan int // receives a job id as execution begins (if non-nil)
}

func (e *stubExec) Execute(ctx context.Context, job runq.Job, progress func(done, total int)) error {
	e.mu.Lock()
	e.cur++
	if e.cur > e.max {
		e.max = e.cur
	}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.cur--
		e.mu.Unlock()
	}()
	if e.started != nil {
		e.started <- job.ID
	}
	for i := 1; i <= job.Total; i++ {
		if e.block != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-e.block:
			}
		} else {
			step := e.step
			if step <= 0 {
				step = time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(step):
			}
		}
		progress(i, job.Total)
	}
	return e.fail
}

func (e *stubExec) maxConcurrent() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.max
}

func req(name string, runs int) runq.Request {
	return runq.Request{Scenario: "DS-2", Mode: "smart", Name: name, Runs: runs, Seed: 300}
}

// waitTerminal subscribes to the job and blocks until it reaches a
// terminal state, returning the final event.
func waitTerminal(t *testing.T, q *runq.Queue, id int, timeout time.Duration) runq.Event {
	t.Helper()
	job, ch, unsub, err := q.Subscribe(id)
	if err != nil {
		t.Fatalf("subscribe %d: %v", id, err)
	}
	defer unsub()
	if job.State.Terminal() {
		return runq.Event{ID: job.ID, State: job.State, Done: job.Done, Total: job.Total, Error: job.Error}
	}
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-ch:
			if ev.State.Terminal() {
				return ev
			}
		case <-deadline:
			j, _ := q.Get(id)
			t.Fatalf("job %d still %s (%d/%d) after %v", id, j.State, j.Done, j.Total, timeout)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	q, err := runq.Open("")
	if err != nil {
		t.Fatal(err)
	}
	twoSources := req("two", 2)
	twoSources.Generate = &scenegen.Space{}
	for _, bad := range []runq.Request{
		{Scenario: "DS-2", Mode: "warp", Runs: 2},   // bad mode
		{Scenario: "DS-2", Mode: "smart", Runs: 0},  // no runs
		{Mode: "smart", Runs: 2},                    // no source
		{Scenario: "DS-99", Mode: "smart", Runs: 2}, // unknown scenario
		twoSources, // two sources at once
	} {
		if _, err := q.Submit(bad); err == nil {
			t.Errorf("Submit(%+v) accepted, want error", bad)
		}
	}
}

func TestQueueBoundedConcurrency(t *testing.T) {
	q, err := runq.Open("", runq.WithMaxConcurrent(3))
	if err != nil {
		t.Fatal(err)
	}
	exec := &stubExec{step: 5 * time.Millisecond}
	q.Start(exec)
	defer q.Shutdown(context.Background())

	const jobs = 12
	ids := make([]int, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := q.Submit(req("burst", 4))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		if ev := waitTerminal(t, q, id, 30*time.Second); ev.State != runq.StateDone {
			t.Fatalf("job %d ended %s: %s", id, ev.State, ev.Error)
		}
	}
	if got := exec.maxConcurrent(); got > 3 {
		t.Errorf("observed %d concurrent executions, max-concurrent is 3", got)
	} else if got != 3 {
		t.Errorf("burst of %d jobs peaked at %d concurrent executions, expected to saturate 3 slots", jobs, got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	q, err := runq.Open("", runq.WithMaxConcurrent(1))
	if err != nil {
		t.Fatal(err)
	}
	exec := &stubExec{block: make(chan struct{}), started: make(chan int, 4)}
	q.Start(exec)
	defer q.Shutdown(context.Background())

	running, err := q.Submit(req("running", 3))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := q.Submit(req("queued", 3))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started // the first job occupies the single slot

	// Cancelling the queued job never executes it.
	if err := q.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if ev := waitTerminal(t, q, queued.ID, 5*time.Second); ev.State != runq.StateCancelled {
		t.Fatalf("queued job ended %s, want cancelled", ev.State)
	}

	// Cancelling the running job cancels its engine context.
	if err := q.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if ev := waitTerminal(t, q, running.ID, 5*time.Second); ev.State != runq.StateCancelled {
		t.Fatalf("running job ended %s, want cancelled", ev.State)
	}
	if err := q.Cancel(running.ID); err != nil {
		t.Errorf("cancelling a terminal job should be a no-op, got %v", err)
	}
	if err := q.Cancel(999); !errors.Is(err, runq.ErrNotFound) {
		t.Errorf("cancel of unknown job = %v, want ErrNotFound", err)
	}
}

func TestLeaseHeartbeatExpiryAndResume(t *testing.T) {
	q, err := runq.Open("", runq.WithMaxConcurrent(0), runq.WithLeaseTTL(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	q.Start(&stubExec{})
	defer q.Shutdown(context.Background())

	sub, err := q.Submit(req("leased", 4))
	if err != nil {
		t.Fatal(err)
	}

	j1, ok := q.Lease("w1")
	if !ok || j1.ID != sub.ID || j1.Attempt != 1 {
		t.Fatalf("lease = %+v ok=%v", j1, ok)
	}
	if j1.Request.Resume {
		t.Error("first attempt should not resume")
	}
	if _, ok := q.Lease("w2"); ok {
		t.Fatal("second lease should find an empty queue")
	}
	if err := q.Heartbeat(j1.ID, "w2", 0, 0); !errors.Is(err, runq.ErrLeaseLost) {
		t.Errorf("foreign heartbeat = %v, want ErrLeaseLost", err)
	}
	if err := q.Heartbeat(j1.ID, "w1", 2, 4); err != nil {
		t.Errorf("own heartbeat = %v", err)
	}
	if j, _ := q.Get(j1.ID); j.Done != 2 {
		t.Errorf("heartbeat progress = %d, want 2", j.Done)
	}

	// Stop heartbeating; the sweeper requeues the job.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := q.Get(j1.ID); j.State == runq.StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never requeued after lease expiry")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The next worker inherits attempt 2 and must resume.
	j2, ok := q.Lease("w2")
	if !ok || j2.Attempt != 2 || !j2.Request.Resume {
		t.Fatalf("re-lease = %+v ok=%v, want attempt 2 with resume", j2, ok)
	}
	if err := q.Heartbeat(j2.ID, "w1", 3, 4); !errors.Is(err, runq.ErrLeaseLost) {
		t.Errorf("stale worker heartbeat = %v, want ErrLeaseLost", err)
	}
	if err := q.Complete(j2.ID, "w2"); err != nil {
		t.Fatal(err)
	}
	if j, _ := q.Get(j2.ID); j.State != runq.StateDone {
		t.Errorf("state after complete = %s", j.State)
	}
	if err := q.Complete(j2.ID, "w2"); !errors.Is(err, runq.ErrLeaseLost) {
		t.Errorf("double complete = %v, want ErrLeaseLost", err)
	}
}

func TestFailRequeueHandsJobBack(t *testing.T) {
	q, err := runq.Open("", runq.WithMaxConcurrent(0))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := q.Submit(req("handback", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Lease("w1"); !ok {
		t.Fatal("lease failed")
	}
	if err := q.Fail(sub.ID, "w1", "worker shut down", true); err != nil {
		t.Fatal(err)
	}
	j, _ := q.Get(sub.ID)
	if j.State != runq.StateQueued {
		t.Fatalf("state after requeue-fail = %s, want queued", j.State)
	}
	if _, ok := q.Lease("w2"); !ok {
		t.Fatal("requeued job not leasable")
	}
	if err := q.Fail(sub.ID, "w2", "boom", false); err != nil {
		t.Fatal(err)
	}
	if j, _ := q.Get(sub.ID); j.State != runq.StateFailed || j.Error != "boom" {
		t.Fatalf("terminal failure = %+v", j)
	}
}

// TestGracefulShutdownRequeuesInFlight: Shutdown cancels a running
// job and journals it back as queued, so the next process picks it
// up and resumes.
func TestGracefulShutdownRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	q, err := runq.Open(dir, runq.WithMaxConcurrent(1))
	if err != nil {
		t.Fatal(err)
	}
	exec := &stubExec{block: make(chan struct{}), started: make(chan int, 1)}
	q.Start(exec)
	sub, err := q.Submit(req("drain", 5))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	q2, err := runq.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	j, ok := q2.Get(sub.ID)
	if !ok || j.State != runq.StateQueued {
		t.Fatalf("after restart job = %+v ok=%v, want queued", j, ok)
	}
	if j.Attempt != 1 {
		t.Errorf("attempt = %d, want 1 (one interrupted execution)", j.Attempt)
	}
	if !j.Resume() {
		t.Error("an interrupted job must resume from the store")
	}
}

// TestCrashReplayBitIdentical is the acceptance scenario: the server
// is killed (kill -9 — no graceful journal write) with a job running
// and partial episodes in the results store; a restart with the same
// queue dir replays the journal, requeues the job, and re-executes it
// with resume so the final aggregates are byte-identical to an
// uninterrupted run's.
func TestCrashReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	request := runq.Request{Scenario: "DS-2", Mode: "smart", Name: "crashy", Runs: 6, Seed: 300}

	// Reference: the same job through the queue, uninterrupted.
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	refStore, err := results.Open(refPath)
	if err != nil {
		t.Fatal(err)
	}
	qRef, err := runq.Open("", runq.WithMaxConcurrent(1))
	if err != nil {
		t.Fatal(err)
	}
	qRef.Start(runq.LocalExecutor{Store: refStore, Workers: 4})
	jr, err := qRef.Submit(request)
	if err != nil {
		t.Fatal(err)
	}
	if ev := waitTerminal(t, qRef, jr.ID, 2*time.Minute); ev.State != runq.StateDone {
		t.Fatalf("reference run ended %s: %s", ev.State, ev.Error)
	}
	if err := qRef.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	refStore.Close()

	// Crash: journal says the job is running (leased, never finished)
	// and the store holds the episodes that completed before the kill.
	crashDir := t.TempDir()
	crashPath := filepath.Join(crashDir, "store.jsonl")
	q0, err := runq.Open(filepath.Join(crashDir, "queue"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q0.Submit(request); err != nil {
		t.Fatal(err)
	}
	if _, ok := q0.Lease("doomed"); !ok {
		t.Fatal("lease failed")
	}
	if err := q0.Close(); err != nil { // kill -9: no state transition hits the journal
		t.Fatal(err)
	}

	crashStore, err := results.Open(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	eng := engine.New(
		engine.WithContext(cctx),
		engine.WithWorkers(2),
		engine.WithProgress(func(done, total int) {
			if done >= 2 {
				ccancel() // the process dies after two episodes landed
			}
		}),
	)
	c := experiment.Campaign{Name: "crashy", Scenario: scenario.Named("DS-2"), Mode: core.ModeSmart, ExpectCrashes: true}
	_, err = experiment.RunCampaignOn(eng, c, request.Runs, request.Seed, nil,
		experiment.WithSink(crashStore), experiment.WithRecordName("crashy"))
	ccancel()
	if err == nil {
		t.Fatal("interrupted run should report the cancellation")
	}
	partial, err := crashStore.Episodes("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= request.Runs {
		t.Fatalf("crash left %d episodes, want a strict partial batch", len(partial))
	}
	crashStore.Close()

	// Restart with the same queue dir and store: the job replays as
	// queued and re-executes with resume.
	q1, err := runq.Open(filepath.Join(crashDir, "queue"), runq.WithMaxConcurrent(1))
	if err != nil {
		t.Fatal(err)
	}
	store1, err := results.Open(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := q1.Get(1)
	if !ok || j.State != runq.StateQueued || !j.Resume() {
		t.Fatalf("replayed job = %+v ok=%v, want queued with resume", j, ok)
	}
	q1.Start(runq.LocalExecutor{Store: store1, Workers: 4})
	if ev := waitTerminal(t, q1, 1, 2*time.Minute); ev.State != runq.StateDone {
		t.Fatalf("resumed run ended %s: %s", ev.State, ev.Error)
	}
	if err := q1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	store1.Close()

	// The acceptance check: results.Diff reports no movement, and the
	// aggregates are byte-identical.
	ref, err := results.Load(refPath)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := results.Load(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := results.Diff(ref, crashed)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		if d.RunsDelta != 0 || d.EBRateDelta != 0 || d.CrashRateDelta != 0 {
			t.Errorf("diff %s moved: %+v", d.Name, d)
		}
	}
	refRecs, _ := ref.Campaigns()
	crashRecs, _ := crashed.Campaigns()
	ra, _ := json.Marshal(refRecs)
	rb, _ := json.Marshal(crashRecs)
	if string(ra) != string(rb) {
		t.Errorf("aggregates diverged:\nuninterrupted: %s\ncrash+resume:  %s", ra, rb)
	}
}

// TestTornJournalTailTolerated: a crash mid-append leaves a partial
// final line; Open must drop it (and truncate, so later appends start
// on a clean boundary) instead of refusing to start.
func TestTornJournalTailTolerated(t *testing.T) {
	dir := t.TempDir()
	q0, err := runq.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q0.Submit(req("survivor", 2)); err != nil {
		t.Fatal(err)
	}
	if err := q0.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "queue.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"job","job":{"id":2,"requ`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q1, err := runq.Open(dir)
	if err != nil {
		t.Fatalf("torn tail bricked the queue: %v", err)
	}
	j, ok := q1.Get(1)
	if !ok || j.State != runq.StateQueued {
		t.Fatalf("survivor job = %+v ok=%v", j, ok)
	}
	if _, ok := q1.Get(2); ok {
		t.Fatal("the torn line must not produce a job")
	}
	// The tail was truncated: appending and replaying again is clean.
	if _, err := q1.Submit(req("after-repair", 2)); err != nil {
		t.Fatal(err)
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	q2, err := runq.Open(dir)
	if err != nil {
		t.Fatalf("journal corrupt after repair+append: %v", err)
	}
	defer q2.Close()
	if len(q2.Jobs()) != 2 {
		t.Fatalf("jobs after repair = %+v", q2.Jobs())
	}

	// Corruption that is NOT the final line stays fatal.
	bad := filepath.Join(t.TempDir(), "queue")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "garbage-line\n" + `{"kind":"job","job":{"id":1,"request":{"scenario":"DS-2","mode":"smart","runs":2},"state":"queued","total":2}}` + "\n"
	if err := os.WriteFile(filepath.Join(bad, "queue.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runq.Open(bad); err == nil {
		t.Fatal("mid-file corruption must refuse to replay")
	}
}

// TestQueueDirLocked: two processes (here: two queues) must not share
// one journal.
func TestQueueDirLocked(t *testing.T) {
	dir := t.TempDir()
	q1, err := runq.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runq.Open(dir); err == nil {
		t.Fatal("second Open on a locked queue dir must fail")
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	q2, err := runq.Open(dir)
	if err != nil {
		t.Fatalf("lock not released on close: %v", err)
	}
	q2.Close()
}

// TestJournalCompactionReplayEquivalent: startup compaction must
// rewrite queue.jsonl to one last-wins line per job whose replay is
// indistinguishable from replaying the full transition history.
func TestJournalCompactionReplayEquivalent(t *testing.T) {
	dir := t.TempDir()
	q0, err := runq.Open(dir, runq.WithCompactionThreshold(0)) // build history, no compaction
	if err != nil {
		t.Fatal(err)
	}
	// A transition-heavy history: submissions, a cancellation, and a
	// completed local run — several journal lines per job.
	for i := 0; i < 6; i++ {
		if _, err := q0.Submit(req(fmt.Sprintf("compact-%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q0.Cancel(2); err != nil {
		t.Fatal(err)
	}
	q0.Start(&stubExec{step: time.Millisecond})
	waitTerminal(t, q0, 1, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := q0.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	path := filepath.Join(dir, "queue.jsonl")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantLines := len(bytes.Split(bytes.TrimSpace(before), []byte("\n")))

	// Replay WITHOUT compaction: the reference state. (Shutdown
	// requeued the jobs that were still queued/running, so a plain
	// replay is already deterministic.)
	qRef, err := runq.Open(dir, runq.WithCompactionThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	refJobs := qRef.Jobs()
	if err := qRef.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay WITH a tiny threshold: compacts on open.
	qC, err := runq.Open(dir, runq.WithCompactionThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	compactJobs := qC.Jobs()
	if err := qC.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refJobs, compactJobs) {
		t.Errorf("compaction changed the replayed state:\nref:     %+v\ncompact: %+v", refJobs, compactJobs)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gotLines := len(bytes.Split(bytes.TrimSpace(after), []byte("\n")))
	if gotLines != len(refJobs) {
		t.Errorf("compacted journal has %d lines, want one per job (%d)", gotLines, len(refJobs))
	}
	if gotLines >= wantLines {
		t.Errorf("compaction did not shrink the journal: %d -> %d lines", wantLines, gotLines)
	}

	// The compacted journal replays identically again (idempotence),
	// and appending to it works.
	qAgain, err := runq.Open(dir, runq.WithCompactionThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	defer qAgain.Close()
	if got := qAgain.Jobs(); !reflect.DeepEqual(got, refJobs) {
		t.Errorf("replay after compaction differs:\nref: %+v\ngot: %+v", refJobs, got)
	}
	if _, err := qAgain.Submit(req("post-compact", 1)); err != nil {
		t.Fatal(err)
	}
}
