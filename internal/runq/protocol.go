package runq

import (
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/results"
)

// The wire types of the remote-worker protocol. A worker process on
// another machine drives the queue over five verbs:
//
//	POST /lease                  LeaseRequest  → LeaseResponse (204: empty queue)
//	POST /runs/{id}/heartbeat    HeartbeatRequest; 409 means the lease is lost
//	POST /runs/{id}/episodes     EpisodesRequest, streamed in batches as episodes complete
//	POST /runs/{id}/spans        SpansRequest, the worker's trace spans (traced jobs only)
//	POST /runs/{id}/complete     CompleteRequest with the final aggregate
//	POST /runs/{id}/fail         FailRequest (requeue=true hands the job back)
//
// Every worker request also identifies itself in headers: WorkerHeader
// names the worker, and — for requests belonging to a traced job —
// TraceparentHeader carries the job's trace context (the server sets
// the same header on lease responses). campaignd's route middleware
// logs both.
//
// Episode records flow through the server into the served results
// store, so a worker crash loses nothing that was acknowledged: the
// requeued job's next attempt resumes from exactly those episodes.

// WorkerHeader names the requesting worker on every lease-protocol
// request (the JSON bodies repeat it; the header makes it visible to
// middleware and access logs without body parsing).
const WorkerHeader = "X-Robotack-Worker"

// TraceparentHeader carries the traceparent-style trace context
// ("00-<trace-id>-<span-id>-01") of the job a request belongs to.
const TraceparentHeader = "Traceparent"

// LeaseRequest asks for the next queued job.
type LeaseRequest struct {
	// Worker is the worker's self-chosen name; heartbeats, episode
	// appends and completion must carry the same name.
	Worker string `json:"worker"`
}

// LeaseResponse hands one job to the worker.
type LeaseResponse struct {
	Job Job `json:"job"`
	// LeaseTTLMillis is how long the lease lives without a heartbeat.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// HeartbeatRequest extends the lease and reports progress.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

// EpisodesRequest streams completed episode records into the served
// store.
type EpisodesRequest struct {
	Worker   string                  `json:"worker"`
	Episodes []results.EpisodeRecord `json:"episodes"`
}

// SpansRequest forwards a traced job's completed worker-side spans
// (worker-job, engine-job, episode) into the server's trace sink, so
// one sink holds the whole cross-process trace.
type SpansRequest struct {
	Worker string           `json:"worker"`
	Spans  []trace.SpanData `json:"spans"`
}

// CompleteRequest finishes a job, delivering the campaign aggregate
// the worker folded.
type CompleteRequest struct {
	Worker   string                  `json:"worker"`
	Campaign *results.CampaignRecord `json:"campaign,omitempty"`
}

// FailRequest reports a failed or abandoned execution.
type FailRequest struct {
	Worker string `json:"worker"`
	Error  string `json:"error,omitempty"`
	// Requeue hands the job back to the queue (a worker shutting down)
	// instead of failing it terminally.
	Requeue bool `json:"requeue,omitempty"`
}
