package runq

import (
	"strconv"
	"time"

	"github.com/robotack/robotack/internal/obs/trace"
)

// Queue-side tracing. Every job submitted while the queue has a tracer
// carries a TraceRef — the deterministic trace identity derived from
// (record name, seed) — journaled with the job so spans stay on one
// trace across restarts. The queue emits its spans retroactively, from
// recorded transition timestamps, so tracing adds no locks or clock
// reads to the dispatch hot path beyond what the transitions already
// do:
//
//	run          the root span, submit → terminal state
//	queue-wait   submit/requeue → dispatch or lease (per attempt)
//	dispatch     local execution, per attempt
//	lease        remote execution, per attempt (worker spans nest here)
//	heartbeat    a point span per lease renewal
//	requeue      a point span when an attempt is handed back
//
// Span IDs derive from (traceID, attempt, stream), so a worker that
// knows the job's TraceRef and attempt derives its parent lease span
// without the server sending it (the Traceparent header carries it
// anyway, for protocol observability).

// TraceRef is a job's trace identity: the trace ID and the root span
// every queue and worker span nests under. Journaled as hex strings.
type TraceRef struct {
	TraceID trace.ID `json:"trace_id"`
	Root    trace.ID `json:"root_span"`
}

// Traceparent renders the lease's traceparent-style header value for
// the given attempt: the trace ID plus the attempt's lease span.
func (r *TraceRef) Traceparent(attempt int) string {
	return trace.FormatTraceparent(uint64(r.TraceID), execSpanID(r, attempt))
}

// newTraceRef derives a request's trace identity.
func newTraceRef(req Request) *TraceRef {
	tid := trace.DeriveTraceID(req.RecordName(), req.Seed)
	return &TraceRef{
		TraceID: trace.ID(tid),
		Root:    trace.ID(trace.DeriveSpanID(tid, 0, trace.StreamRun)),
	}
}

// execSpanID is the span ID of one attempt's dispatch/lease span —
// derived identically by the server and the worker.
func execSpanID(r *TraceRef, attempt int) uint64 {
	return trace.DeriveSpanID(uint64(r.TraceID), uint64(attempt), trace.StreamLease)
}

// WithTracer attaches a tracer: submitted jobs get deterministic trace
// IDs and the queue emits lifecycle spans. Nil is a no-op, so callers
// can pass an unconditionally built (possibly nil) tracer.
func WithTracer(t *trace.Tracer) Option {
	return func(q *Queue) { q.tracer = t }
}

// Tracer returns the queue's tracer (nil when tracing is off) — the
// campaignd span-ingest endpoint emits forwarded worker spans through
// it.
func (q *Queue) Tracer() *trace.Tracer { return q.tracer }

// traced reports whether the job participates in tracing.
func (q *Queue) traced(j *Job) bool {
	return q.tracer != nil && j.Trace != nil
}

// traceDequeuedLocked closes the attempt's queue-wait span when the
// job leaves the queue for execution (local dispatch or remote lease).
// Attempt has already been incremented.
func (q *Queue) traceDequeuedLocked(j *Job, now time.Time) {
	j.executingAt = now
	if !q.traced(j) || j.enqueuedAt.IsZero() {
		return
	}
	q.tracer.Emit(&trace.SpanData{
		TraceID: j.Trace.TraceID,
		SpanID:  trace.ID(trace.DeriveSpanID(uint64(j.Trace.TraceID), uint64(j.Attempt), trace.StreamQueueWait)),
		Parent:  j.Trace.Root,
		Name:    "queue-wait",
		Start:   j.enqueuedAt.UnixNano(),
		Dur:     now.Sub(j.enqueuedAt).Nanoseconds(),
		Sampled: true,
		Attrs:   []trace.Attr{{Key: "attempt", Value: strconv.Itoa(j.Attempt)}},
	})
}

// traceHeartbeatLocked emits a point span per lease renewal, nested
// under the attempt's lease span.
func (q *Queue) traceHeartbeatLocked(j *Job, now time.Time) {
	if !q.traced(j) {
		return
	}
	j.hbSeq++
	key := uint64(j.Attempt)<<32 | uint64(j.hbSeq)
	q.tracer.Emit(&trace.SpanData{
		TraceID: j.Trace.TraceID,
		SpanID:  trace.ID(trace.DeriveSpanID(uint64(j.Trace.TraceID), key, trace.StreamHeartbeat)),
		Parent:  trace.ID(execSpanID(j.Trace, j.Attempt)),
		Name:    "heartbeat",
		Start:   now.UnixNano(),
		Sampled: true,
		Attrs:   []trace.Attr{{Key: "worker", Value: j.Worker}},
	})
}

// traceExecEndLocked closes the attempt's dispatch/lease span with its
// outcome. Must run before the transition clears j.Worker. A job whose
// execution began in a previous process (executingAt zero) has no open
// exec span to close.
func (q *Queue) traceExecEndLocked(j *Job, now time.Time, outcome string) {
	if !q.traced(j) || j.executingAt.IsZero() {
		return
	}
	name := "lease"
	if j.Worker == LocalWorker {
		name = "dispatch"
	}
	q.tracer.Emit(&trace.SpanData{
		TraceID: j.Trace.TraceID,
		SpanID:  trace.ID(execSpanID(j.Trace, j.Attempt)),
		Parent:  j.Trace.Root,
		Name:    name,
		Start:   j.executingAt.UnixNano(),
		Dur:     now.Sub(j.executingAt).Nanoseconds(),
		Sampled: true,
		Attrs: []trace.Attr{
			{Key: "worker", Value: j.Worker},
			{Key: "attempt", Value: strconv.Itoa(j.Attempt)},
			{Key: "outcome", Value: outcome},
		},
	})
	j.executingAt = time.Time{}
}

// traceRequeuedLocked marks an attempt handed back to the queue: the
// exec span closes with outcome requeue, a requeue point span lands,
// and the queue-wait clock restarts.
func (q *Queue) traceRequeuedLocked(j *Job, now time.Time) {
	defer func() { j.enqueuedAt = now }()
	if !q.traced(j) {
		return
	}
	q.traceExecEndLocked(j, now, "requeue")
	q.tracer.Emit(&trace.SpanData{
		TraceID: j.Trace.TraceID,
		SpanID:  trace.ID(trace.DeriveSpanID(uint64(j.Trace.TraceID), uint64(j.Attempt), trace.StreamRequeue)),
		Parent:  j.Trace.Root,
		Name:    "requeue",
		Start:   now.UnixNano(),
		Sampled: true,
		Attrs:   []trace.Attr{{Key: "attempt", Value: strconv.Itoa(j.Attempt)}},
	})
}

// traceRunEndLocked closes the root span when the job reaches a
// terminal state.
func (q *Queue) traceRunEndLocked(j *Job, now time.Time, state State) {
	if !q.traced(j) {
		return
	}
	start := j.submittedAt
	if start.IsZero() {
		start = now
	}
	q.tracer.Emit(&trace.SpanData{
		TraceID: j.Trace.TraceID,
		SpanID:  j.Trace.Root,
		Name:    "run",
		Start:   start.UnixNano(),
		Dur:     now.Sub(start).Nanoseconds(),
		Sampled: true,
		Attrs: []trace.Attr{
			{Key: "campaign", Value: j.Request.RecordName()},
			{Key: "mode", Value: j.Request.Mode},
			{Key: "state", Value: string(state)},
		},
	})
}
