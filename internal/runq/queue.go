package runq

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
)

// Errors the queue's operations return; the HTTP layer maps them to
// status codes (404, 409).
var (
	// ErrNotFound means no job has the given id.
	ErrNotFound = errors.New("runq: no such job")
	// ErrLeaseLost means the caller no longer holds the job: it was
	// cancelled, requeued after a missed heartbeat, or leased by
	// someone else. The worker must abandon the run.
	ErrLeaseLost = errors.New("runq: lease lost")
	// ErrClosed means the queue is shutting down.
	ErrClosed = errors.New("runq: queue closed")
)

// Executor runs one leased job to completion. Implementations must
// return promptly with ctx.Err() once ctx is cancelled, and must call
// progress as episodes complete. LocalExecutor is the standard one.
type Executor interface {
	Execute(ctx context.Context, job Job, progress func(done, total int)) error
}

// Queue is the durable run queue: submitted jobs persist to the
// journal, a dispatcher executes at most a bounded number locally,
// and remote workers lease the rest over the HTTP protocol. All
// methods are safe for concurrent use.
type Queue struct {
	maxConcurrent int
	leaseTTL      time.Duration
	log           *slog.Logger
	tracer        *trace.Tracer

	compactThreshold int64

	mu      sync.Mutex
	jobs    map[int]*Job
	pending []int // queued job ids, FIFO; requeues go to the front
	nextID  int
	journal *os.File
	lockf   *os.File // held for the queue's lifetime (dir exclusivity)
	subs    map[int]map[chan Event]bool
	rates   map[int]*rateState         // per running job, derived, unjournaled
	cancels map[int]context.CancelFunc // local in-flight jobs
	running int                        // local in-flight count
	closed  bool
	started bool

	exec   Executor
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Option configures a Queue.
type Option func(*Queue)

// WithMaxConcurrent bounds how many jobs the queue's own dispatcher
// executes at once (default 1). Zero disables local execution
// entirely — jobs then run only on remote workers.
func WithMaxConcurrent(n int) Option {
	return func(q *Queue) {
		if n >= 0 {
			q.maxConcurrent = n
		}
	}
}

// WithLeaseTTL sets how long a remote worker's lease lives without a
// heartbeat before the job is requeued (default 30s).
func WithLeaseTTL(d time.Duration) Option {
	return func(q *Queue) {
		if d > 0 {
			q.leaseTTL = d
		}
	}
}

// DefaultCompactionThreshold is the journal size (bytes) above which
// Open rewrites queue.jsonl to its last-wins state. Long-lived queues
// append one snapshot line per state transition, so the journal grows
// without bound while the live state stays small; startup compaction
// caps replay time and disk use.
const DefaultCompactionThreshold = 1 << 20

// WithCompactionThreshold overrides the startup-compaction trigger
// size in bytes. Zero or negative disables compaction.
func WithCompactionThreshold(n int64) Option {
	return func(q *Queue) { q.compactThreshold = n }
}

// WithLogger sets the queue's structured logger: lease churn, journal
// failures and job lifecycle transitions are logged with job-id,
// worker and attempt attributes. Default: discard.
func WithLogger(l *slog.Logger) Option {
	return func(q *Queue) {
		if l != nil {
			q.log = l
		}
	}
}

// Open creates a queue journaled under dir, replaying any existing
// journal: terminal jobs stay terminal, and jobs that were queued or
// running when the previous process died are requeued — their next
// execution resumes from the results store's episodes, bit-identically.
// An empty dir means a memory-only queue (nothing survives the
// process).
func Open(dir string, opts ...Option) (*Queue, error) {
	q := &Queue{
		maxConcurrent:    1,
		leaseTTL:         30 * time.Second,
		compactThreshold: DefaultCompactionThreshold,
		log:              obs.Discard(),
		jobs:             make(map[int]*Job),
		subs:             make(map[int]map[chan Event]bool),
		rates:            make(map[int]*rateState),
		cancels:          make(map[int]context.CancelFunc),
	}
	for _, opt := range opts {
		opt(q)
	}
	if dir != "" {
		f, lock, jobs, err := openJournal(dir)
		if err != nil {
			return nil, err
		}
		q.journal = f
		q.lockf = lock
		q.jobs = jobs
	}
	closeAll := func() {
		if q.journal != nil {
			q.journal.Close()
		}
		if q.lockf != nil {
			q.lockf.Close()
		}
	}
	now := time.Now()
	for id, j := range q.jobs {
		if id > q.nextID {
			q.nextID = id
		}
		if !j.State.Terminal() && q.tracer != nil {
			// Span clocks are unjournaled; a replayed job's waiting time
			// counts from this process's start. Untraced queues skip the
			// stamp so replayed state stays a pure function of the
			// journal (compaction-equivalence depends on that).
			j.submittedAt = now
			j.enqueuedAt = now
		}
		if j.State == StateRunning {
			// The previous process died mid-run; requeue. The journal
			// gets the corrected state so a second replay agrees.
			j.State = StateQueued
			j.Worker = ""
			j.lease = time.Time{}
			if err := appendJob(q.journal, j); err != nil {
				closeAll()
				return nil, err
			}
		}
	}
	// Startup compaction: a long-lived journal holds one line per
	// state transition ever made; above the threshold, rewrite it to
	// one last-wins line per job. Replay of the compacted journal is
	// equivalent by construction — it IS the replayed state.
	if q.journal != nil && q.compactThreshold > 0 {
		if st, err := q.journal.Stat(); err == nil && st.Size() > q.compactThreshold {
			nf, err := compactJournal(dir, q.journal, q.jobs)
			if err != nil {
				closeAll()
				return nil, err
			}
			q.journal = nf
		}
	}
	ids := make([]int, 0, len(q.jobs))
	for id, j := range q.jobs {
		if j.State == StateQueued {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	q.pending = ids
	q.gaugesLocked() // no concurrency yet; seeds the depth gauge
	return q, nil
}

// Start launches the dispatcher and the lease sweeper. Jobs submitted
// before Start stay queued until it is called; calling it twice is a
// no-op.
func (q *Queue) Start(exec Executor) {
	q.mu.Lock()
	if q.started || q.closed {
		q.mu.Unlock()
		return
	}
	q.started = true
	q.exec = exec
	q.ctx, q.cancel = context.WithCancel(context.Background())
	q.mu.Unlock()

	q.wg.Add(1)
	go q.sweep()
	q.dispatch()
}

// sweep periodically requeues remote jobs whose lease expired without
// a heartbeat.
func (q *Queue) sweep() {
	defer q.wg.Done()
	tick := q.leaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-q.ctx.Done():
			return
		case <-t.C:
			q.expireLeases()
		}
	}
}

func (q *Queue) expireLeases() {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	for _, j := range q.jobs {
		if j.State == StateRunning && !j.lease.IsZero() && now.After(j.lease) {
			q.log.Warn("lease expired; requeueing",
				"job", j.ID, "worker", j.Worker, "attempt", j.Attempt)
			count(qExpired)
			q.requeueLocked(j)
		}
	}
	q.dispatchLocked()
}

// requeueLocked puts a previously running job back at the front of
// the queue; its next attempt resumes from the store.
func (q *Queue) requeueLocked(j *Job) {
	q.traceRequeuedLocked(j, time.Now())
	j.State = StateQueued
	j.Worker = ""
	j.lease = time.Time{}
	q.pending = append([]int{j.ID}, q.pending...)
	count(qRequeued)
	q.dropRateLocked(j.ID)
	q.journalLocked(j)
	q.publishLocked(j)
	q.gaugesLocked()
}

// Submit validates and enqueues a request, returning the journaled
// job.
func (q *Queue) Submit(req Request) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Job{}, ErrClosed
	}
	q.nextID++
	if req.Name == "" && (req.Spec != nil || req.Generate != nil) {
		// Unnamed inline sources would all collapse onto one campaign
		// key ("generated-smart") and clobber or cross-resume each
		// other's records; bake the job id into the key at enqueue so
		// it stays stable across attempts yet unique per job.
		req.Name = fmt.Sprintf("%s-%s-job%d", req.Label(), strings.ToLower(req.Mode), q.nextID)
	}
	j := &Job{ID: q.nextID, Request: req, State: StateQueued, Total: req.Runs}
	if q.tracer != nil {
		j.Trace = newTraceRef(req)
		now := time.Now()
		j.submittedAt = now
		j.enqueuedAt = now
	}
	q.jobs[j.ID] = j
	q.pending = append(q.pending, j.ID)
	if err := appendJob(q.journal, j); err != nil {
		// An unjournaled job would silently vanish on restart; refuse it.
		delete(q.jobs, j.ID)
		q.pending = q.pending[:len(q.pending)-1]
		q.nextID--
		q.mu.Unlock()
		return Job{}, err
	}
	count(qSubmitted)
	q.log.Info("job submitted",
		"job", j.ID, "scenario", req.Label(), "mode", req.Mode, "runs", req.Runs)
	q.publishLocked(j)
	q.gaugesLocked()
	snap := *j
	q.mu.Unlock()
	q.dispatch()
	return snap, nil
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id int) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every job, sorted by id.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel cancels a job: a queued job goes terminal immediately, a
// locally running job has its engine context cancelled, and a
// remotely leased job is marked cancelled here — the worker finds out
// on its next heartbeat and abandons the run. Cancelling a terminal
// job is a no-op.
func (q *Queue) Cancel(id int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if j.State.Terminal() {
		return nil
	}
	if j.State == StateQueued {
		for i, pid := range q.pending {
			if pid == id {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
	}
	now := time.Now()
	if j.State == StateRunning {
		q.traceExecEndLocked(j, now, "cancelled")
	}
	q.traceRunEndLocked(j, now, StateCancelled)
	j.State = StateCancelled
	j.Worker = ""
	j.lease = time.Time{}
	count(qCancelled)
	q.dropRateLocked(id)
	q.log.Info("job cancelled", "job", id, "attempt", j.Attempt)
	q.journalLocked(j)
	q.publishLocked(j)
	q.gaugesLocked()
	if cancel := q.cancels[id]; cancel != nil {
		cancel()
	}
	return nil
}

// Subscribe registers for a job's events, returning the job's current
// snapshot (taken atomically with the registration, so no event is
// missed in between) and the event channel. The returned func
// unsubscribes; slow subscribers lose oldest events first, never the
// terminal one.
func (q *Queue) Subscribe(id int) (Job, <-chan Event, func(), error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, nil, nil, ErrNotFound
	}
	ch := make(chan Event, 64)
	if q.subs[id] == nil {
		q.subs[id] = make(map[chan Event]bool)
	}
	q.subs[id][ch] = true
	unsub := func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		delete(q.subs[id], ch)
		if len(q.subs[id]) == 0 {
			delete(q.subs, id)
		}
	}
	return *j, ch, unsub, nil
}

// eventLocked builds the job's Event enriched with derived telemetry:
// queue position for waiting jobs, episode throughput for running
// ones. Both come from queue-internal derived state, never from the
// journal.
func (q *Queue) eventLocked(j *Job) Event {
	ev := j.event()
	switch j.State {
	case StateQueued:
		for i, id := range q.pending {
			if id == j.ID {
				ev.QueuePos = i + 1
				break
			}
		}
	case StateRunning:
		if rs := q.rates[j.ID]; rs != nil {
			ev.EpsPerSec = rs.eps
		}
	}
	return ev
}

// EventOf returns the job's current enriched event snapshot — what a
// new SSE subscriber should see first.
func (q *Queue) EventOf(id int) (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Event{}, false
	}
	return q.eventLocked(j), true
}

// publishLocked fans the job's current state out to its subscribers.
// Sends never block: a full channel drops its oldest event to make
// room, so progress may be thinned but the terminal event always
// lands.
func (q *Queue) publishLocked(j *Job) {
	ev := q.eventLocked(j)
	for ch := range q.subs[j.ID] {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

func (q *Queue) journalLocked(j *Job) {
	if err := appendJob(q.journal, j); err != nil {
		q.log.Error("journal append failed", "job", j.ID, "err", err)
	}
}

// progress records episode completions reported by an executor or a
// heartbeat. Progress only moves forward.
func (q *Queue) progress(id int, done, total int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.State != StateRunning || done <= j.Done {
		return
	}
	j.Done = done
	if total > 0 {
		j.Total = total
	}
	q.observeRateLocked(id, done)
	q.publishLocked(j)
}

// dispatch starts queued jobs on the local executor while slots are
// free.
func (q *Queue) dispatch() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.dispatchLocked()
}

func (q *Queue) dispatchLocked() {
	if !q.started || q.closed || q.ctx.Err() != nil {
		return
	}
	for q.running < q.maxConcurrent && len(q.pending) > 0 {
		id := q.pending[0]
		q.pending = q.pending[1:]
		j := q.jobs[id]
		j.State = StateRunning
		j.Attempt++
		j.Worker = LocalWorker
		j.lease = time.Time{}
		count(qLeased)
		q.traceDequeuedLocked(j, time.Now())
		q.observeRateLocked(id, j.Done)
		q.log.Info("job dispatched locally", "job", id, "attempt", j.Attempt)
		q.journalLocked(j)
		q.publishLocked(j)
		q.gaugesLocked()
		q.running++
		ctx, cancel := context.WithCancel(q.ctx)
		if q.traced(j) {
			// The local executor's engine runs under the dispatch span,
			// so engine-job and episode spans nest into this trace.
			ctx = trace.NewContext(ctx, trace.SpanContext{
				Tracer:  q.tracer,
				TraceID: uint64(j.Trace.TraceID),
				SpanID:  execSpanID(j.Trace, j.Attempt),
			})
		}
		q.cancels[id] = cancel
		q.wg.Add(1)
		go q.runLocal(ctx, cancel, *j)
	}
}

// runLocal executes one job on the local executor and records its
// outcome: done, failed, cancelled by a client, or — when the whole
// queue is shutting down — requeued for the next process to resume.
func (q *Queue) runLocal(ctx context.Context, cancel context.CancelFunc, job Job) {
	defer q.wg.Done()
	err := q.exec.Execute(ctx, job, func(done, total int) { q.progress(job.ID, done, total) })
	cancel()

	q.mu.Lock()
	defer q.mu.Unlock()
	q.running--
	delete(q.cancels, job.ID)
	j := q.jobs[job.ID]
	switch {
	case j.State == StateCancelled:
		// Cancel already recorded the terminal state; the executor just
		// returned from the context cancellation.
	case err == nil:
		now := time.Now()
		q.traceExecEndLocked(j, now, "done")
		q.traceRunEndLocked(j, now, StateDone)
		j.State = StateDone
		j.Done = j.Total
		j.Worker = ""
		count(qCompleted)
		q.dropRateLocked(j.ID)
		q.log.Info("job done", "job", j.ID, "attempt", j.Attempt, "runs", j.Total)
		q.journalLocked(j)
		q.publishLocked(j)
	case q.ctx.Err() != nil && errors.Is(err, context.Canceled):
		// Shutdown interrupted the job; hand it to the next process.
		q.requeueLocked(j)
	default:
		now := time.Now()
		q.traceExecEndLocked(j, now, "failed")
		q.traceRunEndLocked(j, now, StateFailed)
		j.State = StateFailed
		j.Error = err.Error()
		j.Worker = ""
		count(qFailed)
		q.dropRateLocked(j.ID)
		q.log.Warn("job failed", "job", j.ID, "attempt", j.Attempt, "err", err)
		q.journalLocked(j)
		q.publishLocked(j)
	}
	q.gaugesLocked()
	q.dispatchLocked()
}

// LocalWorker is the reserved worker name of the queue's own
// dispatcher; remote workers may not lease under it.
const LocalWorker = "local"

// Lease hands the next queued job to a remote worker. The returned
// job's Request.Resume reflects whether this attempt must fold
// already-persisted episodes. ok is false when nothing is queued (or
// the worker name is the reserved local sentinel).
func (q *Queue) Lease(worker string) (job Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || worker == LocalWorker || len(q.pending) == 0 {
		return Job{}, false
	}
	id := q.pending[0]
	q.pending = q.pending[1:]
	j := q.jobs[id]
	j.State = StateRunning
	j.Attempt++
	j.Worker = worker
	now := time.Now()
	j.lease = now.Add(q.leaseTTL)
	count(qLeased)
	q.traceDequeuedLocked(j, now)
	q.observeRateLocked(id, j.Done)
	q.log.Info("job leased", "job", id, "worker", worker, "attempt", j.Attempt)
	q.journalLocked(j)
	q.publishLocked(j)
	q.gaugesLocked()
	snap := *j
	snap.Request.Resume = j.Resume()
	return snap, true
}

// LeaseTTL reports the heartbeat deadline workers must beat.
func (q *Queue) LeaseTTL() time.Duration { return q.leaseTTL }

// remotelyLeasedBy reports whether worker holds a live remote lease on
// the job. The lease-expiry check (!lease.IsZero()) structurally bars
// remote operations from touching locally-dispatched jobs, whatever
// name a worker chose.
func (j *Job) remotelyLeasedBy(worker string) bool {
	return j.State == StateRunning && j.Worker == worker && !j.lease.IsZero()
}

// Heartbeat extends a remote worker's lease and records progress. It
// returns ErrLeaseLost when the worker no longer holds the job — the
// signal to abandon the run.
func (q *Queue) Heartbeat(id int, worker string, done, total int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if !j.remotelyLeasedBy(worker) {
		return ErrLeaseLost
	}
	now := time.Now()
	j.lease = now.Add(q.leaseTTL)
	count(qRenewed)
	q.traceHeartbeatLocked(j, now)
	if done > j.Done {
		j.Done = done
		if total > 0 {
			j.Total = total
		}
		q.observeRateLocked(id, done)
		q.publishLocked(j)
	}
	return nil
}

// CheckLease verifies that worker still holds the running job —
// the gate for streamed episode appends.
func (q *Queue) CheckLease(id int, worker string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if !j.remotelyLeasedBy(worker) {
		return ErrLeaseLost
	}
	return nil
}

// Complete marks a remotely executed job done.
func (q *Queue) Complete(id int, worker string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if !j.remotelyLeasedBy(worker) {
		return ErrLeaseLost
	}
	now := time.Now()
	q.traceExecEndLocked(j, now, "done")
	q.traceRunEndLocked(j, now, StateDone)
	j.State = StateDone
	j.Done = j.Total
	j.Worker = ""
	j.lease = time.Time{}
	count(qCompleted)
	q.dropRateLocked(id)
	q.log.Info("job done", "job", id, "worker", worker, "attempt", j.Attempt, "runs", j.Total)
	q.journalLocked(j)
	q.publishLocked(j)
	q.gaugesLocked()
	return nil
}

// Fail records a remote execution failure. With requeue the job goes
// back to the front of the queue (a worker shutting down mid-run);
// without it the job is terminally failed.
func (q *Queue) Fail(id int, worker, msg string, requeue bool) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return ErrNotFound
	}
	if !j.remotelyLeasedBy(worker) {
		q.mu.Unlock()
		return ErrLeaseLost
	}
	if requeue {
		q.log.Warn("worker returned job; requeueing",
			"job", id, "worker", worker, "attempt", j.Attempt, "err", msg)
		q.requeueLocked(j)
	} else {
		now := time.Now()
		q.traceExecEndLocked(j, now, "failed")
		q.traceRunEndLocked(j, now, StateFailed)
		j.State = StateFailed
		j.Error = msg
		j.Worker = ""
		j.lease = time.Time{}
		count(qFailed)
		q.dropRateLocked(id)
		q.log.Warn("job failed",
			"job", id, "worker", worker, "attempt", j.Attempt, "err", msg)
		q.journalLocked(j)
		q.publishLocked(j)
		q.gaugesLocked()
	}
	q.mu.Unlock()
	q.dispatch()
	return nil
}

// Shutdown stops the queue gracefully: no new submissions or leases,
// in-flight local jobs are cancelled (and requeued in the journal so
// the next process resumes them), and the journal is flushed and
// closed. It waits for in-flight work up to ctx's deadline.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	cancel := q.cancel
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = fmt.Errorf("runq: shutdown: %w", ctx.Err())
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.journal != nil {
		err := errors.Join(q.journal.Sync(), q.journal.Close())
		q.journal = nil
		if waitErr == nil {
			waitErr = err
		}
	}
	if q.lockf != nil {
		q.lockf.Close()
		q.lockf = nil
	}
	return waitErr
}

// Close releases the journal file without waiting for anything — the
// crash-adjacent teardown for queues that were never started (journal
// writers, tests). Started queues should use Shutdown.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var err error
	if q.journal != nil {
		err = q.journal.Close()
		q.journal = nil
	}
	if q.lockf != nil {
		q.lockf.Close()
		q.lockf = nil
	}
	return err
}
