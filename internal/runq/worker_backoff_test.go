package runq

// Internal test: drives Worker.Run against a flaky httptest server and
// observes the injected sleep/jitter hooks, which the external suite
// (queue_test.go) cannot reach.

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakyServer is a minimal lease endpoint: the first failLeases lease
// attempts return 500, the next hands out one tiny smart-mode job, and
// the rest 204. Heartbeats, episode appends and completion always
// succeed.
type flakyServer struct {
	failLeases int

	mu        sync.Mutex
	leases    int
	completed bool
}

func (s *flakyServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.leases++
		switch {
		case s.leases <= s.failLeases:
			http.Error(w, "queue restarting", http.StatusInternalServerError)
		case s.leases == s.failLeases+1:
			resp := LeaseResponse{
				Job: Job{
					ID:      1,
					Request: Request{Scenario: "DS-1", Mode: "smart", Runs: 2, Seed: 5},
					Total:   2,
					Attempt: 1,
				},
				LeaseTTLMillis: 10_000,
			}
			json.NewEncoder(w).Encode(resp)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	ok := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	mux.HandleFunc("/runs/1/heartbeat", ok)
	mux.HandleFunc("/runs/1/episodes", ok)
	mux.HandleFunc("/runs/1/complete", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.completed = true
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// TestWorkerBackoffOnFlakyServer: a worker facing a server that fails
// its first lease attempts retries under growing, capped backoff and
// still completes the job once the server recovers.
func TestWorkerBackoffOnFlakyServer(t *testing.T) {
	srv := &flakyServer{failLeases: 8}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var sleeps []time.Duration
	w := &Worker{
		Server:      ts.URL,
		Name:        "flaky-test",
		Workers:     1,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
		jitter:      func() float64 { return 0.5 },
		sleep: func(ctx context.Context, d time.Duration) bool {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			// No real sleeping: the test observes the durations only.
			return ctx.Err() == nil
		},
	}

	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// The worker is done once the job completes and it goes back to
	// idle polling (a sleep of exactly the poll interval, 1s default,
	// can't be a backoff here: the cap is 1s and jitter 0.5 keeps
	// backoffs at 3/4 of their step).
	deadline := time.After(10 * time.Second)
	for {
		srv.mu.Lock()
		completed := srv.completed
		srv.mu.Unlock()
		if completed {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never completed against the flaky server")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	// With jitter pinned at 0.5 every backoff is exactly 3/4 of its
	// step: 75ms, 150ms, 300ms, 600ms, then capped at 750ms.
	want := []time.Duration{
		75 * time.Millisecond,
		150 * time.Millisecond,
		300 * time.Millisecond,
		600 * time.Millisecond,
		750 * time.Millisecond,
		750 * time.Millisecond,
		750 * time.Millisecond,
		750 * time.Millisecond,
	}
	if len(sleeps) < len(want) {
		t.Fatalf("recorded %d sleeps, want at least %d: %v", len(sleeps), len(want), sleeps)
	}
	for i, d := range want {
		if sleeps[i] != d {
			t.Errorf("backoff %d: slept %v, want %v (doubling from base, capped)", i+1, sleeps[i], d)
		}
	}
	// After the failures stop, the counter resets: the remaining sleeps
	// are idle polls at the flat interval, not residual backoff.
	for i := len(want); i < len(sleeps); i++ {
		if sleeps[i] != time.Second {
			t.Errorf("post-recovery sleep %d is %v, want the 1s poll interval (backoff not reset)", i, sleeps[i])
		}
	}
}

// TestBackoffDelayBounds checks the raw schedule: growth, cap, and
// jitter staying within [d/2, d).
func TestBackoffDelayBounds(t *testing.T) {
	w := &Worker{BackoffBase: 100 * time.Millisecond, BackoffMax: 5 * time.Second}
	prevHi := time.Duration(0)
	for n := 1; n <= 10; n++ {
		step := 100 * time.Millisecond << (n - 1)
		if step > 5*time.Second || step <= 0 {
			step = 5 * time.Second
		}
		for i := 0; i < 50; i++ {
			d := w.backoffDelay(n)
			if d < step/2 || d >= step {
				t.Fatalf("n=%d: delay %v outside [%v, %v)", n, d, step/2, step)
			}
		}
		if step < prevHi {
			t.Fatalf("n=%d: schedule shrank", n)
		}
		prevHi = step
	}
}

// lockedBuffer lets the worker's log handler write from any goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestBackoffLogStructuredWarn: each failed lease attempt emits a WARN
// record carrying the attempt count and the next retry delay, so an
// operator watching a quiet worker sees the backoff schedule, not
// silence.
func TestBackoffLogStructuredWarn(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var out lockedBuffer
	var mu sync.Mutex
	calls := 0
	w := &Worker{
		Server: ts.URL,
		Name:   "logtest",
		jitter: func() float64 { return 0 },
		sleep: func(context.Context, time.Duration) bool {
			mu.Lock()
			calls++
			stop := calls >= 3
			mu.Unlock()
			if stop {
				cancel()
				return false
			}
			return true
		},
		Log: slog.New(slog.NewTextHandler(&out, nil)),
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	logs := out.String()
	if !strings.Contains(logs, "level=WARN") {
		t.Errorf("backoff did not log at WARN level; got:\n%s", logs)
	}
	for _, attr := range []string{"retry_in=", "attempt=", "worker=logtest"} {
		if !strings.Contains(logs, attr) {
			t.Errorf("backoff warn is missing the %q attribute; got:\n%s", attr, logs)
		}
	}
	// The attempt counter must actually count: three failed attempts
	// before the stop means attempt=3 appears.
	if !strings.Contains(logs, "attempt=3") {
		t.Errorf("attempt count not incrementing across retries; got:\n%s", logs)
	}
}
