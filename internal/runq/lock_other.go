//go:build !unix

package runq

import "os"

// lockFile is a no-op where flock is unavailable; single-writer
// discipline on the queue dir is then the operator's responsibility.
func lockFile(*os.File) error { return nil }
