package experiment

import (
	"context"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

// pooledBenchCases are the two BenchmarkEpisode shapes, run here the
// way campaigns actually execute them: on an engine worker's reusable
// Scratch with trace recycling, instead of a throwaway Scratch per
// call.
var pooledBenchCases = []struct {
	name string
	cfg  RunConfig
}{
	{"golden-DS1", RunConfig{Scenario: scenario.DS1, recycleTrace: true}},
	{"attacked-DS2", RunConfig{
		Scenario:     scenario.DS2,
		Attack:       AttackSetup{Mode: core.ModeSmart, PreferDisappearFor: sim.ClassPedestrian},
		recycleTrace: true,
	}},
}

// pooledJobs builds n episode jobs (seeds 0..n-1) for cfg.
func pooledJobs(cfg RunConfig, n int) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		c := cfg
		c.Seed = int64(i)
		jobs[i] = func(ctx context.Context, _ int64) (any, error) {
			return RunCtx(ctx, c)
		}
	}
	return jobs
}

// BenchmarkEpisodePooled measures episodes back to back on one
// worker's Scratch — the campaign execution path. The allocs/op gap
// against BenchmarkEpisode (which rebuilds a Scratch per episode) is
// the construction cost that episode-boundary pooling removes; what
// remains is the true per-episode floor (result records, behavior
// variance in actor counts, map iteration order scratch).
func BenchmarkEpisodePooled(b *testing.B) {
	for _, c := range pooledBenchCases {
		b.Run(c.name, func(b *testing.B) {
			eng := withEpisodeScratch(engine.New(engine.WithWorkers(1)))
			jobs := pooledJobs(c.cfg, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := eng.RunAll(0, jobs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "episodes/s")
		})
	}
}

// TestPooledEpisodeAllocBudget gates the episode-boundary pooling win:
// steady-state allocations per episode on the campaign path must stay
// at least 50% below the fresh-Scratch figures BenchmarkEpisode
// commits to BENCH_after.json (295 golden / 467 attacked). The
// per-episode rate is measured as a slope — allocations for a 40- and
// an 8-episode batch on identical fresh engines, divided by the 32
// extra episodes — so one-time Scratch construction (pipeline, oracle
// clones, arena) cancels out exactly.
func TestPooledEpisodeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	// Measured steady state is ~5-6 allocs/episode; 40 leaves headroom
	// for runtime/GC jitter while still sitting ~7x below the 50%
	// acceptance line (147/233).
	budgets := map[string]float64{
		"golden-DS1":   40, // fresh path: ~295 allocs/episode
		"attacked-DS2": 40, // fresh path: ~467 allocs/episode
	}
	for _, c := range pooledBenchCases {
		t.Run(c.name, func(t *testing.T) {
			batch := func(n int) float64 {
				eng := withEpisodeScratch(engine.New(engine.WithWorkers(1)))
				jobs := pooledJobs(c.cfg, n)
				return testing.AllocsPerRun(3, func() {
					if _, err := eng.RunAll(0, jobs); err != nil {
						t.Fatal(err)
					}
				})
			}
			small, large := batch(8), batch(40)
			perEp := (large - small) / 32
			if budget := budgets[c.name]; perEp > budget {
				t.Errorf("steady-state allocs/episode = %.1f, budget %.0f (batch8=%.0f batch40=%.0f)",
					perEp, budget, small, large)
			} else {
				t.Logf("steady-state allocs/episode = %.1f (budget %.0f)", perEp, budget)
			}
		})
	}
}
