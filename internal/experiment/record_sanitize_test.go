package experiment

import (
	"encoding/json"
	"math"
	"testing"
)

// TestRecordEpisodeSanitizesNaN: non-smart modes mark "no oracle
// forecast" with NaN deltas, which JSON cannot carry — the record
// boundary must map NaN and ±Inf to zero so every persisted episode
// round-trips, and fresh vs resumed aggregates stay bit-identical.
func TestRecordEpisodeSanitizesNaN(t *testing.T) {
	rr := RunResult{
		Launched:       true,
		MinDelta:       math.NaN(),
		DeltaAtLaunch:  math.Inf(1),
		PredictedDelta: math.NaN(),
		RealizedDelta:  math.Inf(-1),
		Frames:         10,
	}
	ep := RecordEpisode("edge", 0, 7, "DS-1", 0, false, rr)
	for name, v := range map[string]float64{
		"MinDelta":       ep.MinDelta,
		"DeltaAtLaunch":  ep.DeltaAtLaunch,
		"PredictedDelta": ep.PredictedDelta,
		"RealizedDelta":  ep.RealizedDelta,
	} {
		if v != 0 {
			t.Errorf("%s = %v, want 0 (NaN/Inf sanitized at the record boundary)", name, v)
		}
	}
	if _, err := json.Marshal(ep); err != nil {
		t.Errorf("sanitized record does not marshal: %v", err)
	}

	// Finite values pass through untouched.
	rr.MinDelta, rr.PredictedDelta = 3.25, -1.5
	rr.DeltaAtLaunch, rr.RealizedDelta = 0.125, 9
	ep = RecordEpisode("edge", 1, 8, "DS-1", 0, false, rr)
	if ep.MinDelta != 3.25 || ep.PredictedDelta != -1.5 || ep.DeltaAtLaunch != 0.125 || ep.RealizedDelta != 9 {
		t.Errorf("finite deltas altered: %+v", ep)
	}
}
