package experiment

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// runConfigs is a mixed batch exercising every scratch-reset path:
// golden, smart attack, random attack, forced attack, and different
// scenarios (different cruise speeds) back to back.
func scratchTestConfigs() []RunConfig {
	return []RunConfig{
		{Scenario: scenario.DS1, Seed: 11},
		{Scenario: scenario.DS2, Seed: 12,
			Attack: AttackSetup{Mode: core.ModeSmart, PreferDisappearFor: sim.ClassPedestrian}},
		{Scenario: scenario.DS1, Seed: 13,
			Attack: AttackSetup{Mode: core.ModeRandom}},
		{Scenario: scenario.DS2, Seed: 14,
			Attack: AttackSetup{Mode: core.ModeSmart, PreferDisappearFor: sim.ClassPedestrian,
				Forced: &ForcedPlan{DeltaInject: 20, K: 31}}},
		{Scenario: scenario.DS4, Seed: 15,
			Attack: AttackSetup{Mode: core.ModeSmart, PreferDisappearFor: sim.ClassVehicle}},
	}
}

// sameRunResult compares run results exactly, treating NaN as equal to
// NaN (non-smart modes mark "no oracle forecast" with NaN, which
// reflect.DeepEqual would report as a difference).
func sameRunResult(a, b RunResult) bool {
	for _, f := range []*[2]float64{
		{a.PredictedDelta, b.PredictedDelta},
		{a.DeltaAtLaunch, b.DeltaAtLaunch},
		{a.RealizedDelta, b.RealizedDelta},
	} {
		if math.IsNaN(f[0]) != math.IsNaN(f[1]) {
			return false
		}
	}
	norm := func(r *RunResult) {
		for _, p := range []*float64{&r.PredictedDelta, &r.DeltaAtLaunch, &r.RealizedDelta} {
			if math.IsNaN(*p) {
				*p = 0
			}
		}
	}
	norm(&a)
	norm(&b)
	return reflect.DeepEqual(a, b)
}

// TestScratchReuseBitIdentical proves episode pooling is
// observationally invisible: running a mixed batch of episodes
// back-to-back on ONE shared Scratch produces results deeply equal to
// running each episode on a fresh Scratch.
func TestScratchReuseBitIdentical(t *testing.T) {
	cfgs := scratchTestConfigs()

	// Fresh scratch per episode (the historical semantics).
	fresh := make([]RunResult, len(cfgs))
	for i, cfg := range cfgs {
		var err error
		fresh[i], err = RunCtx(context.Background(), cfg)
		if err != nil {
			t.Fatalf("fresh run %d: %v", i, err)
		}
	}

	// One shared scratch for the whole batch, via a 1-worker engine.
	eng := withEpisodeScratch(engine.New(engine.WithWorkers(1)))
	jobs := make([]engine.Job, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		jobs[i] = func(ctx context.Context, _ int64) (any, error) {
			return RunCtx(ctx, cfg)
		}
	}
	rs, err := eng.RunAll(0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		got := r.Value.(RunResult)
		if !sameRunResult(got, fresh[i]) {
			t.Errorf("episode %d: pooled run differs from fresh run:\npooled: %+v\nfresh:  %+v", i, got, fresh[i])
		}
	}
}

// testOracles builds a small untrained NN oracle set — enough to
// exercise the per-worker clone + pooled inference path.
func testOracles() map[core.Vector]core.Oracle {
	rng := stats.NewRNG(5)
	return map[core.Vector]core.Oracle{
		core.VectorDisappear: &core.NNOracle{Net: nn.NewRegressor(core.EncodeDim, rng)},
		core.VectorMoveOut:   &core.NNOracle{Net: nn.NewRegressor(core.EncodeDim, rng)},
	}
}

// TestScratchConcurrentWorkersIsolated is the -race proof of worker
// isolation: a multi-worker campaign with shared trained-oracle input
// must race-cleanly clone per worker and produce the same aggregate as
// a single-worker run. Run with -race (the CI race job does).
func TestScratchConcurrentWorkersIsolated(t *testing.T) {
	oracles := testOracles()
	c := Campaign{
		Name:               "scratch-iso",
		Scenario:           scenario.DS2,
		Mode:               core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian,
		ExpectCrashes:      true,
	}
	const runs = 8
	single, err := RunCampaignOn(engine.New(engine.WithWorkers(1)), c, runs, 900, oracles)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunCampaignOn(engine.New(engine.WithWorkers(4)), c, runs, 900, oracles)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.CampaignRecord, multi.CampaignRecord) {
		t.Errorf("worker count changed the aggregate:\n1 worker:  %+v\n4 workers: %+v",
			single.CampaignRecord, multi.CampaignRecord)
	}
}

// TestScratchOracleCloneOncePerWorker verifies the scratch clones a
// campaign's oracle set once and reuses the clones across that
// worker's episodes, rebuilding only when the set changes.
func TestScratchOracleCloneOncePerWorker(t *testing.T) {
	s := NewScratch()
	src := testOracles()
	first := s.oraclesFor(src)
	if first == nil || first[core.VectorDisappear] == src[core.VectorDisappear] {
		t.Fatal("oraclesFor must clone the source oracles")
	}
	if second := s.oraclesFor(src); reflect.ValueOf(second).Pointer() != reflect.ValueOf(first).Pointer() {
		t.Error("same source set must reuse the existing clones")
	}
	other := testOracles()
	third := s.oraclesFor(other)
	if reflect.ValueOf(third).Pointer() == reflect.ValueOf(first).Pointer() {
		t.Error("a different source set must re-clone")
	}
	if s.oraclesFor(nil) != nil {
		t.Error("nil source must map to nil oracles")
	}
	gen := s.oracleGen
	if s.oraclesFor(nil) != nil || s.oracleGen != gen {
		t.Error("repeated nil source must not churn the generation")
	}
}

// TestMalwareResetMatchesNew verifies a Reset malware reproduces the
// random-mode draws a fresh construction makes from the same stream,
// so recycled malware episodes stay bit-identical.
func TestMalwareResetMatchesNew(t *testing.T) {
	for _, seed := range []int64{1, 2, 77} {
		a, err := RunCtx(context.Background(), RunConfig{
			Scenario: scenario.DS5, Seed: seed,
			Attack: AttackSetup{Mode: core.ModeRandom},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Same episode on a scratch that already hosted a random-mode
		// malware (forces the Reset path).
		eng := withEpisodeScratch(engine.New(engine.WithWorkers(1)))
		jobs := []engine.Job{
			func(ctx context.Context, _ int64) (any, error) {
				return RunCtx(ctx, RunConfig{Scenario: scenario.DS5, Seed: seed + 1000,
					Attack: AttackSetup{Mode: core.ModeRandom}})
			},
			func(ctx context.Context, _ int64) (any, error) {
				return RunCtx(ctx, RunConfig{Scenario: scenario.DS5, Seed: seed,
					Attack: AttackSetup{Mode: core.ModeRandom}})
			},
		}
		rs, err := eng.RunAll(0, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if got := rs[1].Value.(RunResult); !sameRunResult(got, a) {
			t.Errorf("seed %d: episode after malware reset differs:\nreset: %+v\nfresh: %+v", seed, got, a)
		}
	}
}
