package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

// Campaign is one experimental campaign of Table II: a driving scenario
// paired with an attack vector and strategy. Scenario is any
// scenario.Source — a paper ID, a named or file-loaded spec, or a
// procedural generator.
type Campaign struct {
	Name     string
	Scenario scenario.Source
	Mode     core.Mode
	// PreferDisappearFor steers Table I's interchangeable cell so the
	// campaign exercises the intended vector.
	PreferDisappearFor sim.Class
	// ExpectCrashes is false for Move_In campaigns (no physical
	// obstacle to hit), matching the "—" cells of Table II.
	ExpectCrashes bool
	// Policy drives smart-mode episodes through an attack policy
	// instead of the built-in fixed trigger (nil: the paper's
	// trigger). The policy value is shared across the batch's
	// workers, so it must be stateless (see core.TriggerPolicy).
	Policy core.TriggerPolicy
}

// TableIICampaigns returns the seven campaigns of Table II, in the
// paper's row order. R-mode campaigns use the full RoboTack.
func TableIICampaigns() []Campaign {
	return []Campaign{
		{Name: "DS-1-Disappear-R", Scenario: scenario.DS1, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: true},
		{Name: "DS-2-Disappear-R", Scenario: scenario.DS2, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true},
		{Name: "DS-1-Move_Out-R", Scenario: scenario.DS1, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true},
		{Name: "DS-2-Move_Out-R", Scenario: scenario.DS2, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: true},
		{Name: "DS-3-Move_In-R", Scenario: scenario.DS3, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: false},
		{Name: "DS-4-Move_In-R", Scenario: scenario.DS4, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: false},
		{Name: "DS-5-Baseline-Random", Scenario: scenario.DS5, Mode: core.ModeRandom,
			ExpectCrashes: true},
	}
}

// WithoutSH derives the "R w/o SH" variant of a campaign (random
// timing, Fig. 6 comparison).
func (c Campaign) WithoutSH() Campaign {
	out := c
	out.Name = c.Name + "-noSH"
	out.Mode = core.ModeNoSH
	return out
}

// WithPolicy derives the policy-driven variant of a smart campaign:
// same scenario and seeds, with the fixed trigger replaced by p. The
// suffix keeps the variant's records distinct from the paper trigger's
// so the two evaluate side by side in one store.
func (c Campaign) WithPolicy(suffix string, p core.TriggerPolicy) Campaign {
	out := c
	out.Name = c.Name + "-" + suffix
	out.Policy = p
	return out
}

// CampaignResult pairs a campaign's live configuration with its
// persistent aggregate. The embedded results.CampaignRecord is the
// part that survives the process: it is what sinks store, reports
// format, diffs compare and resumed campaigns rebuild bit-identically.
type CampaignResult struct {
	Campaign Campaign
	results.CampaignRecord
}

// GoldenResult pairs an attack-free baseline's scenario source with
// its persistent aggregate (sanity baseline: the paper's golden runs
// are incident-free).
type GoldenResult struct {
	Source scenario.Source
	results.CampaignRecord
}

// Records extracts the persistent aggregates from live campaign
// results, in order — the bridge from a freshly run sweep to the
// record-based report formatters.
func Records(rs []CampaignResult) []results.CampaignRecord {
	out := make([]results.CampaignRecord, len(rs))
	for i := range rs {
		out[i] = rs[i].CampaignRecord
	}
	return out
}

// finite maps NaN/±Inf to zero: non-smart modes mark "no oracle
// forecast" with NaN, which JSON cannot carry. Fresh and resumed runs
// both fold the sanitized record, so aggregates stay bit-identical.
func finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// RecordEpisode converts one episode's live outcome into its
// persistent record under the given campaign key.
func RecordEpisode(campaign string, index int, seed int64, scenarioLabel string, mode core.Mode, expectCrashes bool, rr RunResult) results.EpisodeRecord {
	return results.EpisodeRecord{
		V:              results.Version,
		Campaign:       campaign,
		Index:          index,
		Seed:           seed,
		Scenario:       scenarioLabel,
		Mode:           mode,
		ExpectCrashes:  expectCrashes,
		Launched:       rr.Launched,
		LaunchFrame:    rr.LaunchFrame,
		Vector:         rr.Vector,
		TargetClass:    rr.TargetClass,
		K:              rr.K,
		KPrime:         rr.KPrime,
		EB:             rr.EB,
		Crashed:        rr.Crashed,
		MinDelta:       finite(rr.MinDelta),
		DeltaAtLaunch:  finite(rr.DeltaAtLaunch),
		PredictedDelta: finite(rr.PredictedDelta),
		RealizedDelta:  finite(rr.RealizedDelta),
		Frames:         rr.Frames,
	}
}

// runOptions carries the optional persistence wiring of a campaign.
type runOptions struct {
	sink   results.Sink
	resume results.Store
	record string
}

// RunOption configures persistence and resumption for
// RunCampaignOn/RunGoldenOn.
type RunOption func(*runOptions)

// WithSink streams every freshly executed episode's record to s in
// submission (index) order as episodes complete. When s is also a
// results.Store, the campaign's final aggregate is upserted after a
// fully successful run — an interrupted campaign leaves episodes only,
// which is how readers recognize it as resumable.
func WithSink(s results.Sink) RunOption {
	return func(o *runOptions) { o.sink = s }
}

// WithResume folds episodes already persisted in s (keyed by the
// campaign record name and episode index) back into the aggregate
// instead of re-running them. Stored episodes must carry the seed the
// engine derives for their index; a mismatch fails the episode rather
// than silently mixing seed streams. The resumed aggregate is
// bit-identical to an uninterrupted run's.
func WithResume(s results.Store) RunOption {
	return func(o *runOptions) { o.resume = s }
}

// WithRecordName overrides the campaign key used for persisted
// records (default: the campaign's name, or "golden-" + the scenario
// label for golden runs).
func WithRecordName(name string) RunOption {
	return func(o *runOptions) { o.record = name }
}

// recordedRun is the shared shape of a recorded batch: campaigns and
// golden baselines differ only in identity and job construction.
type recordedRun struct {
	kind          string // "campaign" | "golden", for error messages
	name          string // record / resume key
	errName       string // name used in error messages
	scenarioLabel string
	mode          core.Mode
	expectCrashes bool
	runs          int
	baseSeed      int64
	mkJob         func(i int) engine.Job
	opts          runOptions
}

// execute runs the batch on eng, folding completed episodes into the
// aggregate in submission order and streaming fresh ones to the sink.
// Every per-run failure is collected (errors.Join), not just the
// first; a canceled batch additionally joins the context error.
func execute(eng *engine.Engine, rr recordedRun) (results.CampaignRecord, error) {
	// Every worker gets one episode Scratch for the whole batch:
	// pipelines, frame buffers and oracle clones are reused across the
	// episodes that worker runs.
	eng = withEpisodeScratch(eng)
	rec := results.NewCampaign(rr.name, rr.scenarioLabel, rr.mode, rr.expectCrashes, rr.baseSeed)

	resumed := make(map[int]results.EpisodeRecord)
	if rr.opts.resume != nil {
		prior, err := rr.opts.resume.Episodes(rr.name)
		if err != nil {
			return rec, fmt.Errorf("%s %s: resume: %w", rr.kind, rr.errName, err)
		}
		for _, p := range prior {
			if p.Index >= 0 && p.Index < rr.runs {
				resumed[p.Index] = p
			}
		}
	}

	jobs := make([]engine.Job, rr.runs)
	for i := range jobs {
		if p, ok := resumed[i]; ok {
			jobs[i] = func(ctx context.Context, seed int64) (any, error) {
				if p.Seed != seed {
					return nil, fmt.Errorf("stored episode ran with seed %d but this run derives %d; refusing to mix seed streams", p.Seed, seed)
				}
				return p, nil
			}
		} else {
			jobs[i] = rr.mkJob(i)
		}
	}

	var errs []error
	delivered := 0
	for r := range eng.StreamOrdered(rr.baseSeed, jobs) {
		delivered++
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s %s run %d: %w", rr.kind, rr.errName, r.Index, r.Err))
			continue
		}
		var ep results.EpisodeRecord
		fresh := false
		switch v := r.Value.(type) {
		case results.EpisodeRecord:
			ep = v
		case RunResult:
			ep = RecordEpisode(rr.name, r.Index, r.Seed, rr.scenarioLabel, rr.mode, rr.expectCrashes, v)
			fresh = true
		default:
			errs = append(errs, fmt.Errorf("%s %s run %d: unexpected result type %T", rr.kind, rr.errName, r.Index, r.Value))
			continue
		}
		rec.Fold(ep)
		if fresh && rr.opts.sink != nil {
			if err := rr.opts.sink.Append(ep); err != nil {
				errs = append(errs, fmt.Errorf("%s %s run %d: persist: %w", rr.kind, rr.errName, r.Index, err))
			}
		}
	}
	if delivered < rr.runs {
		if err := eng.Context().Err(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) == 0 {
		// Only a fully successful batch gets its aggregate stored;
		// episodes-without-aggregate is the durable marker of an
		// interrupted campaign.
		if st, ok := rr.opts.sink.(results.Store); ok {
			if err := st.PutCampaign(rec); err != nil {
				errs = append(errs, fmt.Errorf("%s %s: persist aggregate: %w", rr.kind, rr.errName, err))
			}
		}
	}
	return rec, errors.Join(errs...)
}

// RunCampaign executes runs episodes of the campaign with seeds derived
// from baseSeed, on a default engine (one worker per CPU). The
// aggregate is bit-identical to a sequential run: episode seeds depend
// only on (baseSeed, index) and results fold in index order.
func RunCampaign(c Campaign, runs int, baseSeed int64, oracles map[core.Vector]core.Oracle, opts ...RunOption) (CampaignResult, error) {
	return RunCampaignOn(engine.New(), c, runs, baseSeed, oracles, opts...)
}

// RunCampaignOn executes the campaign's episodes on eng, which
// controls worker count, cancellation and progress reporting. On
// cancellation the partial aggregate is returned along with the
// context's error joined onto any per-run failures. Options attach a
// results sink and resume a previously persisted campaign.
func RunCampaignOn(eng *engine.Engine, c Campaign, runs int, baseSeed int64, oracles map[core.Vector]core.Oracle, opts ...RunOption) (CampaignResult, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	name := c.Name
	if o.record != "" {
		name = o.record
	}
	rec, err := execute(eng, recordedRun{
		kind:          "campaign",
		name:          name,
		errName:       c.Name,
		scenarioLabel: c.Scenario.Label(),
		mode:          c.Mode,
		expectCrashes: c.ExpectCrashes,
		runs:          runs,
		baseSeed:      baseSeed,
		opts:          o,
		mkJob: func(i int) engine.Job {
			return func(ctx context.Context, seed int64) (any, error) {
				return RunCtx(ctx, RunConfig{
					Source:       c.Scenario,
					Seed:         seed,
					recycleTrace: true,
					Attack: AttackSetup{
						Mode:               c.Mode,
						PreferDisappearFor: c.PreferDisappearFor,
						Policy:             c.Policy,
						// Episodes run concurrently; trained oracles keep
						// per-call inference scratch, so each worker's
						// Scratch clones them once and reuses the clones
						// for every episode it runs.
						Oracles: oracles,
					},
				})
			}
		},
	})
	return CampaignResult{Campaign: c, CampaignRecord: rec}, err
}

// RunGolden executes attack-free episodes on a default engine.
func RunGolden(src scenario.Source, runs int, baseSeed int64, opts ...RunOption) (GoldenResult, error) {
	return RunGoldenOn(engine.New(), src, runs, baseSeed, opts...)
}

// RunGoldenOn executes attack-free episodes on eng. Records persist
// under "golden-" + the scenario label unless WithRecordName overrides
// it.
func RunGoldenOn(eng *engine.Engine, src scenario.Source, runs int, baseSeed int64, opts ...RunOption) (GoldenResult, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	name := "golden-" + src.Label()
	if o.record != "" {
		name = o.record
	}
	rec, err := execute(eng, recordedRun{
		kind:          "golden",
		name:          name,
		errName:       src.Label(),
		scenarioLabel: src.Label(),
		mode:          0,
		expectCrashes: true,
		runs:          runs,
		baseSeed:      baseSeed,
		opts:          o,
		mkJob: func(i int) engine.Job {
			return func(ctx context.Context, seed int64) (any, error) {
				return RunCtx(ctx, RunConfig{Source: src, Seed: seed, recycleTrace: true})
			}
		},
	})
	return GoldenResult{Source: src, CampaignRecord: rec}, err
}
