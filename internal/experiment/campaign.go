package experiment

import (
	"context"
	"fmt"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Campaign is one experimental campaign of Table II: a driving scenario
// paired with an attack vector and strategy. Scenario is any
// scenario.Source — a paper ID, a named or file-loaded spec, or a
// procedural generator for diversity sweeps.
type Campaign struct {
	Name     string
	Scenario scenario.Source
	Mode     core.Mode
	// PreferDisappearFor steers Table I's interchangeable cell so the
	// campaign exercises the intended vector.
	PreferDisappearFor sim.Class
	// ExpectCrashes is false for Move_In campaigns (no physical
	// obstacle to hit), matching the "—" cells of Table II.
	ExpectCrashes bool
}

// TableIICampaigns returns the seven campaigns of Table II, in the
// paper's row order. R-mode campaigns use the full RoboTack.
func TableIICampaigns() []Campaign {
	return []Campaign{
		{Name: "DS-1-Disappear-R", Scenario: scenario.DS1, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: true},
		{Name: "DS-2-Disappear-R", Scenario: scenario.DS2, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true},
		{Name: "DS-1-Move_Out-R", Scenario: scenario.DS1, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true},
		{Name: "DS-2-Move_Out-R", Scenario: scenario.DS2, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: true},
		{Name: "DS-3-Move_In-R", Scenario: scenario.DS3, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: false},
		{Name: "DS-4-Move_In-R", Scenario: scenario.DS4, Mode: core.ModeSmart,
			PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: false},
		{Name: "DS-5-Baseline-Random", Scenario: scenario.DS5, Mode: core.ModeRandom,
			ExpectCrashes: true},
	}
}

// WithoutSH derives the "R w/o SH" variant of a campaign (random
// timing, Fig. 6 comparison).
func (c Campaign) WithoutSH() Campaign {
	out := c
	out.Name = c.Name + "-noSH"
	out.Mode = core.ModeNoSH
	return out
}

// CampaignResult aggregates a campaign's runs.
type CampaignResult struct {
	Campaign Campaign
	Runs     int
	Launched int
	EBs      int
	Crashes  int

	Ks        []float64
	KPrimes   []float64
	MinDeltas []float64

	// Fig. 8 material (filled when the mode is Smart).
	Predicted []float64
	Realized  []float64
	Successes []bool
}

// EBRate returns the emergency-braking fraction.
func (r *CampaignResult) EBRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.EBs) / float64(r.Runs)
}

// CrashRate returns the accident fraction.
func (r *CampaignResult) CrashRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Crashes) / float64(r.Runs)
}

// MedianK returns the median attack duration in frames.
func (r *CampaignResult) MedianK() float64 { return stats.Median(r.Ks) }

// MedianKPrime returns the median shift time K' in frames.
func (r *CampaignResult) MedianKPrime() float64 { return stats.Median(r.KPrimes) }

// RunCampaign executes runs episodes of the campaign with seeds derived
// from baseSeed, on a default engine (one worker per CPU). The
// aggregate is bit-identical to a sequential run: episode seeds depend
// only on (baseSeed, index) and results fold in index order.
func RunCampaign(c Campaign, runs int, baseSeed int64, oracles map[core.Vector]core.Oracle) (CampaignResult, error) {
	return RunCampaignOn(engine.New(), c, runs, baseSeed, oracles)
}

// RunCampaignOn executes the campaign's episodes on eng, which
// controls worker count, cancellation and progress reporting. On
// cancellation the partial aggregate is returned along with the
// context's error.
func RunCampaignOn(eng *engine.Engine, c Campaign, runs int, baseSeed int64, oracles map[core.Vector]core.Oracle) (CampaignResult, error) {
	jobs := make([]engine.Job, runs)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, seed int64) (any, error) {
			return RunCtx(ctx, RunConfig{
				Source: c.Scenario,
				Seed:   seed,
				Attack: AttackSetup{
					Mode:               c.Mode,
					PreferDisappearFor: c.PreferDisappearFor,
					// Episodes run concurrently; trained oracles keep
					// per-call scratch, so each episode gets its own
					// copy.
					Oracles: core.CloneOracles(oracles),
				},
			})
		}
	}
	results, runErr := eng.RunAll(baseSeed, jobs)

	res := CampaignResult{Campaign: c}
	for _, r := range results {
		if r.Err != nil {
			if runErr == nil || runErr == r.Err {
				runErr = fmt.Errorf("campaign %s run %d: %w", c.Name, r.Index, r.Err)
			}
			continue
		}
		rr := r.Value.(RunResult)
		res.Runs++
		if rr.Launched {
			res.Launched++
			res.Ks = append(res.Ks, float64(rr.K))
			if rr.KPrime > 0 {
				res.KPrimes = append(res.KPrimes, float64(rr.KPrime))
			}
			res.MinDeltas = append(res.MinDeltas, rr.MinDelta)
			if c.Mode == core.ModeSmart {
				res.Predicted = append(res.Predicted, rr.PredictedDelta)
				res.Realized = append(res.Realized, rr.RealizedDelta)
				res.Successes = append(res.Successes, rr.EB || rr.Crashed)
			}
		}
		if rr.EB {
			res.EBs++
		}
		if rr.Crashed && c.ExpectCrashes {
			res.Crashes++
		}
	}
	return res, runErr
}

// GoldenResult summarizes attack-free runs of a scenario (sanity
// baseline: the paper's golden runs are incident-free).
type GoldenResult struct {
	Scenario scenario.Source
	Runs     int
	EBs      int
	Crashes  int
}

// RunGolden executes attack-free episodes on a default engine.
func RunGolden(src scenario.Source, runs int, baseSeed int64) (GoldenResult, error) {
	return RunGoldenOn(engine.New(), src, runs, baseSeed)
}

// RunGoldenOn executes attack-free episodes on eng.
func RunGoldenOn(eng *engine.Engine, src scenario.Source, runs int, baseSeed int64) (GoldenResult, error) {
	jobs := make([]engine.Job, runs)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, seed int64) (any, error) {
			return RunCtx(ctx, RunConfig{Source: src, Seed: seed})
		}
	}
	results, runErr := eng.RunAll(baseSeed, jobs)

	res := GoldenResult{Scenario: src}
	for _, r := range results {
		if r.Err != nil {
			if runErr == nil || runErr == r.Err {
				runErr = fmt.Errorf("golden %s run %d: %w", src.Label(), r.Index, r.Err)
			}
			continue
		}
		rr := r.Value.(RunResult)
		res.Runs++
		if rr.EB {
			res.EBs++
		}
		if rr.Crashed {
			res.Crashes++
		}
	}
	return res, runErr
}
