// Package experiment is the evaluation harness: it wires the simulator,
// the ADS stack and the malware into closed-loop episodes, runs the
// paper's campaigns (Table II, Figs. 6-8), generates the safety
// hijacker's training data, and reproduces the Fig. 5 detector
// characterization.
package experiment

import (
	"context"
	"fmt"
	"math"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/perception"
	"github.com/robotack/robotack/internal/planner"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

// AttackSetup selects what malware (if any) to install for a run.
type AttackSetup struct {
	// Mode zero means a golden (attack-free) run.
	Mode core.Mode
	// PreferDisappearFor steers the Move_Out/Disappear choice of
	// Table I so a campaign exercises one specific vector.
	PreferDisappearFor sim.Class
	// Oracles provides trained safety-hijacker oracles (nil: analytic).
	Oracles map[core.Vector]core.Oracle
	// Forced bypasses the safety hijacker and launches as soon as the
	// malware's delta estimate drops below DeltaInject, for K frames —
	// the paper's training-data collection procedure (§IV-B).
	Forced *ForcedPlan
	// Policy, when set, replaces smart mode's built-in fixed trigger:
	// the malware consults it per frame for when to fire and how to
	// shape the injection (see core.TriggerPolicy / internal/policy).
	// Nil reproduces the paper's trigger bit-identically.
	Policy core.TriggerPolicy
}

// ForcedPlan is a scripted attack for training-data generation.
type ForcedPlan struct {
	DeltaInject float64
	K           int
}

// RunConfig fully describes one episode.
type RunConfig struct {
	// Scenario selects a paper scenario by ID. Ignored when Source is
	// set.
	Scenario scenario.ID
	// Source, when non-nil, supplies the episode's world: a named
	// registry spec, a spec loaded from JSON, a procedural generator —
	// anything implementing scenario.Source.
	Source scenario.Source
	Seed   int64
	Attack AttackSetup

	// recycleTrace lets the episode reuse the worker scratch's
	// DeltaTrace backing array. Only the campaign path sets it — its
	// fold reads scalar fields only, so the array is dead once the
	// episode returns. Training-data generation keeps the default
	// (fresh allocation) because it consumes DeltaTrace after the whole
	// batch completes.
	recycleTrace bool
}

// source resolves the episode's scenario source.
func (cfg *RunConfig) source() scenario.Source {
	if cfg.Source != nil {
		return cfg.Source
	}
	return cfg.Scenario
}

// RunResult is everything the campaigns and figures need from one
// episode.
type RunResult struct {
	// Launched reports whether the malware fired.
	Launched    bool
	LaunchFrame int
	Vector      core.Vector
	TargetClass sim.Class
	K           int
	KPrime      int

	// EB is true when the planner entered emergency braking after the
	// launch (or at all, for golden runs).
	EB bool
	// Crashed is true when the simulation halted (LGSVL 4 m rule) or
	// the ground-truth safety potential dropped below 4 m after launch.
	Crashed bool
	// MinDelta is the minimum ground-truth safety potential from the
	// launch to the end of the episode (the Fig. 6 metric).
	MinDelta float64
	// DeltaAtLaunch / PredictedDelta / RealizedDelta support Fig. 8:
	// the oracle's forecast vs the ground truth delta at launch+K.
	DeltaAtLaunch  float64
	PredictedDelta float64
	RealizedDelta  float64
	// DeltaTrace is the per-frame ground-truth target-relative safety
	// potential from launch onward (training-data generation).
	DeltaTrace []float64
	// LaunchState is the malware's oracle input at launch.
	LaunchState core.State

	Frames int
}

// targetDelta computes the ground-truth safety potential with respect
// to the scripted target object: gap to the TO minus d_stop. This is
// the quantity the safety hijacker learns to predict.
func targetDelta(w *sim.World, targetID sim.ActorID, safety planner.SafetyConfig) float64 {
	a := w.Actor(targetID)
	if a == nil {
		return safety.MaxDSafe
	}
	gap := (a.Pos.X - a.Size.Length/2) - (w.EV.Pos.X + w.EV.Size.Length/2)
	gap = math.Max(math.Min(gap, safety.MaxDSafe), 0)
	return safety.Delta(gap, w.EV.Speed)
}

// Run executes one closed-loop episode.
func Run(cfg RunConfig) (RunResult, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes one closed-loop episode under a cancellation
// context: a canceled ctx aborts the frame loop promptly and returns
// ctx.Err(). The episode itself is deterministic in cfg.Seed: when ctx
// is an engine job context the episode reuses the worker's Scratch,
// and the pooled execution is bit-identical to a from-scratch run.
func RunCtx(ctx context.Context, cfg RunConfig) (RunResult, error) {
	s := scratchFrom(ctx)
	// Under lockstep episode lanes the worker group shares an inference
	// batcher; this lane's episode brackets itself so parked sibling
	// queries flush when every runnable lane has either queried or
	// finished (see core.InferBatcher).
	batcher, _ := engine.GroupState(ctx).(*core.InferBatcher)
	if batcher != nil {
		batcher.EpisodeStart()
		defer batcher.EpisodeEnd()
	}
	scn, err := scenario.InstantiateSource(cfg.source(), s.arenaFor(), reseed(&s.scnRNG, cfg.Seed))
	if err != nil {
		return RunResult{}, fmt.Errorf("experiment: %w", err)
	}
	w := scn.World
	cam := s.cam
	adsRNG := reseed(&s.adsRNG, cfg.Seed*7919+13)
	ads := s.pipeline(adsRNG)
	lidar := s.lidarFor(reseed(&s.lidarRNG, adsRNG.SplitSeed()))
	pl := s.plannerFor(planner.DefaultConfig(scn.CruiseSpeed))
	safety := planner.DefaultSafetyConfig()

	var malware *core.Malware
	if cfg.Attack.Mode != 0 {
		mcfg := core.DefaultConfig(cfg.Attack.Mode)
		if cfg.Attack.PreferDisappearFor != 0 {
			mcfg.Matcher.PreferDisappearFor = cfg.Attack.PreferDisappearFor
		}
		if fp := cfg.Attack.Forced; fp != nil {
			mcfg.Forced = &core.ForcedPlan{DeltaInject: fp.DeltaInject, K: fp.K}
		}
		mcfg.Policy = cfg.Attack.Policy
		malware = s.malwareFor(batcher, mcfg, cfg.Attack.Oracles, reseed(&s.malRNG, cfg.Seed*31337+7))
	}

	// Stage timing and span tracing are observational only: the clock,
	// counters and span never feed back into the simulation, RNG streams
	// or result fields, so the episode is bit-identical with metrics and
	// tracing on, off, or absent (TestCampaignMetricsInert,
	// TestCampaignTracesInert).
	en := obs.Enabled()
	fo := s.frameObsHandles()
	var sp *trace.Span
	if sc, ok := trace.FromContext(ctx); ok {
		sp = sc.Tracer.StartEpisode(sc, cfg.Seed)
		defer sp.Finish()
	}

	res := RunResult{MinDelta: safety.MaxDSafe}
	if cfg.recycleTrace {
		res.DeltaTrace = s.trace[:0]
		defer func() { s.trace = res.DeltaTrace }()
	}
	launched := false
	for i := 0; i < scn.Frames() && !w.Halted; i++ {
		if i%16 == 0 && ctx.Err() != nil {
			return res, ctx.Err()
		}
		// Stage latencies are sampled (1 frame in 16): seven clock reads
		// per frame cost ~12% episode throughput, sampled they are noise,
		// and the histograms are statistical either way. Frame/episode
		// counters stay exact. Span stage annotation rides the same
		// sampled frames, scaled back at analysis time.
		sampledFrame := i&15 == 0
		spFrame := sp
		if !sampledFrame {
			spFrame = nil
		}
		clk := startStageClock(en && sampledFrame, spFrame)
		frame := cam.CaptureInto(&s.capture, w, i)
		clk.tick(fo, perception.StageSensor)
		if malware != nil {
			malware.SetEVSpeed(w.EV.Speed)
			malware.Process(frame.Image, i)
			clk.tick(fo, perception.StageMalware)
		}
		scan := lidar.Scan(w)
		clk.tick(fo, perception.StageLidar)
		dets := ads.StageDetect(frame.Image)
		clk.tick(fo, perception.StageDetectIdx)
		tracks := ads.StageTrack(dets)
		clk.tick(fo, perception.StageTrackIdx)
		objs := ads.StageFuse(tracks, scan)
		clk.tick(fo, perception.StageFusionIdx)
		d := pl.Plan(objs, ads.Fusion.Config(), w.EV, w.Road)
		clk.tick(fo, perception.StagePlan)
		w.Step(d.Accel)
		res.Frames++
		sp.FrameDone(sampledFrame)
		if en {
			fo.frames.Add(1)
		}

		if malware != nil && !launched && malware.Log().Launched {
			launched = true
		}
		counting := launched || malware == nil
		if counting {
			if d.Mode == planner.ModeEmergencyBrake {
				res.EB = true
			}
			gd := safety.GroundTruthDelta(w)
			if gd < res.MinDelta {
				res.MinDelta = gd
			}
			if launched {
				res.DeltaTrace = append(res.DeltaTrace, targetDelta(w, scn.TargetID, safety))
			}
		}
	}
	if w.Halted {
		res.Crashed = true
	}
	if res.MinDelta < safety.AccidentDelta {
		res.Crashed = true
	}
	if malware != nil {
		log := malware.Log()
		res.Launched = log.Launched
		res.LaunchFrame = log.LaunchFrame
		res.Vector = log.Vector
		res.TargetClass = log.TargetClass
		res.K = log.K
		res.KPrime = log.KPrime
		res.DeltaAtLaunch = log.DeltaAtLaunch
		res.LaunchState = log.LaunchState
		res.PredictedDelta = log.PredictedDelta
		if log.Launched && len(res.DeltaTrace) > 0 {
			idx := log.K
			if idx >= len(res.DeltaTrace) {
				idx = len(res.DeltaTrace) - 1
			}
			res.RealizedDelta = res.DeltaTrace[idx]
		}
		if !log.Launched {
			// An attack that never fired caused whatever happened, so
			// do not attribute golden noise to it.
			res.EB = false
			res.Crashed = false
		}
	}
	if en {
		fo.episodes.Add(1)
	}
	return res, nil
}
