package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func TestGoldenRunsMostlySafe(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	for _, id := range scenario.All() {
		res, err := RunGolden(id, 10, 900)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashes > 1 {
			t.Errorf("%v golden: %d/%d crashes, want <= 1", id, res.Crashes, res.Runs)
		}
	}
}

func TestSmartAttackBeatsGoldenOnPedestrians(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	c := Campaign{Name: "DS-2-Disappear-R", Scenario: scenario.DS2, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true}
	atk, err := RunCampaign(c, 10, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if atk.Launched < 8 {
		t.Fatalf("launched %d/10; the smart malware should fire in nearly every DS-2 run", atk.Launched)
	}
	golden, err := RunGolden(scenario.DS2, 10, 300)
	if err != nil {
		t.Fatal(err)
	}
	if atk.Crashes <= golden.Crashes {
		t.Errorf("attack crashes (%d) should exceed golden crashes (%d)", atk.Crashes, golden.Crashes)
	}
	if atk.EBs+atk.Crashes < 5 {
		t.Errorf("DS-2 Disappear hazards = EB %d + crash %d; want a majority of runs", atk.EBs, atk.Crashes)
	}
}

func TestRandomBaselineWeakerThanSmartOnPed(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	smart := Campaign{Name: "s", Scenario: scenario.DS2, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true}
	sRes, err := RunCampaign(smart, 12, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	random := Campaign{Name: "r", Scenario: scenario.DS5, Mode: core.ModeRandom, ExpectCrashes: true}
	rRes, err := RunCampaign(random, 12, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.EBs+sRes.Crashes <= rRes.EBs+rRes.Crashes {
		t.Errorf("smart hazards (%d) should exceed random hazards (%d)",
			sRes.EBs+sRes.Crashes, rRes.EBs+rRes.Crashes)
	}
}

func TestGoldenErrorsCarryScenarioAndRun(t *testing.T) {
	// ID 0 is invalid, so every episode fails; the aggregate error must
	// name the scenario and the run index like campaign errors do.
	_, err := RunGoldenOn(engine.New(engine.WithWorkers(1)), scenario.ID(0), 3, 1)
	if err == nil {
		t.Fatal("golden runs on an invalid scenario must fail")
	}
	if want := "golden DS-?(0) run 0:"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestCampaignOnGeneratedSource(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	src := scenario.FromGenerator(scenegen.NewGenerator(scenegen.DefaultSpace()))
	c := Campaign{Name: "gen-smart", Scenario: src, Mode: core.ModeSmart, ExpectCrashes: true}
	a, err := RunCampaignOn(engine.New(engine.WithWorkers(4)), c, 10, 4200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != 10 {
		t.Fatalf("runs = %d, want 10", a.Runs)
	}
	if a.Launched < 6 {
		t.Errorf("launched %d/10; the malware should fire in most generated scenarios", a.Launched)
	}
	// Same seeds, same generator: the diversity campaign itself is
	// deterministic.
	b, err := RunCampaignOn(engine.New(engine.WithWorkers(1)), c, 10, 4200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("generated-source campaign not deterministic:\n%+v\n%+v", a, b)
	}

	golden, err := RunGoldenOn(engine.New(), src, 10, 4200)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Crashes > 2 {
		t.Errorf("golden runs on generated scenarios crashed %d/10 times", golden.Crashes)
	}
}

func TestCharacterizeRecoversFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization test")
	}
	c := Characterize(2500, 5)
	if c.Vehicle.Samples < 500 || c.Pedestrian.Samples < 300 {
		t.Fatalf("too few samples: veh=%d ped=%d", c.Vehicle.Samples, c.Pedestrian.Samples)
	}
	// Shape checks on the Gaussian center-error fits. The IoU-based
	// matching censors the heavy tail, so fitted sigmas under-read the
	// injected values; the class ordering (pedestrian-x noisiest) must
	// still hold.
	if c.Vehicle.ErrX.Sigma < 0.05 || c.Vehicle.ErrX.Sigma > 0.7 {
		t.Errorf("vehicle sigma_x = %.3f, want same order as 0.464", c.Vehicle.ErrX.Sigma)
	}
	if c.Pedestrian.ErrX.Sigma <= c.Vehicle.ErrX.Sigma {
		t.Errorf("pedestrian sigma_x (%.3f) should exceed vehicle sigma_x (%.3f)",
			c.Pedestrian.ErrX.Sigma, c.Vehicle.ErrX.Sigma)
	}
	// Misdetection runs: both classes heavy-tailed, at least one frame.
	if c.Pedestrian.Runs < 20 || c.Vehicle.Runs < 20 {
		t.Fatalf("too few miss runs: ped=%d veh=%d", c.Pedestrian.Runs, c.Vehicle.Runs)
	}
	if c.Pedestrian.MissRuns.Loc < 1 || c.Vehicle.MissRuns.Loc < 1 {
		t.Error("miss runs must be at least one frame")
	}
	if c.Vehicle.MissRuns.P99 < 5 {
		t.Errorf("vehicle miss-run p99 = %.1f, want a heavy tail", c.Vehicle.MissRuns.P99)
	}
	out := FormatFig5(c)
	if !strings.Contains(out, "misdetection runs") {
		t.Error("FormatFig5 output malformed")
	}
}

func TestOracleDataGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	spec := OracleSpec{
		Vector: core.VectorDisappear,
		Sweeps: []OracleSweep{{Scenario: scenario.DS2,
			PreferDisappearFor: sim.ClassPedestrian, TargetClass: sim.ClassPedestrian}},
		DeltaGrid:     []float64{15, 25},
		SeedsPerPoint: 1,
	}
	ds, err := GenerateOracleData(spec, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 30 {
		t.Fatalf("dataset too small: %d samples", ds.Len())
	}
	for i := range ds.X {
		if len(ds.X[i]) != core.EncodeDim {
			t.Fatalf("sample %d has dim %d", i, len(ds.X[i]))
		}
	}
}

func TestTrainOraclesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	specs := []OracleSpec{{
		Vector: core.VectorDisappear,
		Sweeps: []OracleSweep{{Scenario: scenario.DS2,
			PreferDisappearFor: sim.ClassPedestrian, TargetClass: sim.ClassPedestrian}},
		DeltaGrid:     []float64{15, 25, 35},
		SeedsPerPoint: 1,
	}}
	oracles, infos, err := TrainOracles(specs, 777, nn.TrainConfig{Epochs: 20, BatchSize: 32, LR: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracles) != 1 || oracles[core.VectorDisappear] == nil {
		t.Fatal("missing trained oracle")
	}
	// The paper's NN predicts within 1-1.5 m for pedestrians and ~5 m
	// for vehicles; allow a loose bound for this tiny training run.
	if infos[0].Result.ValMAE > 8 {
		t.Errorf("validation MAE = %.2f m, want single digits", infos[0].Result.ValMAE)
	}
}

func TestCampaignErrorsReportEveryFailure(t *testing.T) {
	// ID 0 is invalid, so every episode fails; the joined error must
	// name every failing index, not just the first.
	c := Campaign{Name: "broken", Scenario: scenario.ID(0), Mode: core.ModeSmart, ExpectCrashes: true}
	_, err := RunCampaignOn(engine.New(engine.WithWorkers(2)), c, 3, 1, nil)
	if err == nil {
		t.Fatal("campaign on an invalid scenario must fail")
	}
	for i := 0; i < 3; i++ {
		if want := fmt.Sprintf("campaign broken run %d:", i); !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not report %q", err, want)
		}
	}
}

// countingSink wraps a sink and counts fresh appends, to prove resume
// skips persisted episodes.
type countingSink struct {
	results.Store
	appends int
}

func (c *countingSink) Append(ep results.EpisodeRecord) error {
	c.appends++
	return c.Store.Append(ep)
}

func TestCampaignResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	c := Campaign{Name: "resume-DS-2", Scenario: scenario.DS2, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true}
	const full, interruptAt = 8, 5

	// Reference: one uninterrupted run.
	wholeStore := results.NewMemStore()
	whole, err := RunCampaignOn(engine.New(), c, full, 300, nil, WithSink(wholeStore))
	if err != nil {
		t.Fatal(err)
	}

	// A campaign "interrupted" after interruptAt episodes, then resumed
	// from the store for the full count.
	partStore := results.NewMemStore()
	if _, err := RunCampaignOn(engine.New(), c, interruptAt, 300, nil, WithSink(partStore)); err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{Store: partStore}
	resumed, err := RunCampaignOn(engine.New(), c, full, 300, nil, WithSink(sink), WithResume(partStore))
	if err != nil {
		t.Fatal(err)
	}

	if sink.appends != full-interruptAt {
		t.Errorf("resume re-ran %d episodes, want %d (persisted ones must be skipped)",
			sink.appends, full-interruptAt)
	}
	if !reflect.DeepEqual(resumed.CampaignRecord, whole.CampaignRecord) {
		t.Errorf("resumed aggregate differs from uninterrupted run:\n got %+v\nwant %+v",
			resumed.CampaignRecord, whole.CampaignRecord)
	}
	gotTable := FormatTableII([]results.CampaignRecord{resumed.CampaignRecord})
	wantTable := FormatTableII([]results.CampaignRecord{whole.CampaignRecord})
	if gotTable != wantTable {
		t.Errorf("Table II differs after resume:\n got %s\nwant %s", gotTable, wantTable)
	}

	// Both stores now hold identical episode records and aggregates.
	wantEps, _ := wholeStore.Episodes(c.Name)
	gotEps, _ := partStore.Episodes(c.Name)
	if !reflect.DeepEqual(gotEps, wantEps) {
		t.Errorf("stored episodes differ:\n got %+v\nwant %+v", gotEps, wantEps)
	}
	wantCamps, _ := wholeStore.Campaigns()
	gotCamps, _ := partStore.Campaigns()
	if !reflect.DeepEqual(gotCamps, wantCamps) {
		t.Errorf("stored aggregates differ:\n got %+v\nwant %+v", gotCamps, wantCamps)
	}
}

func TestResumeRejectsMismatchedSeeds(t *testing.T) {
	store := results.NewMemStore()
	ep := RecordEpisode("seed-check", 0, 12345, "DS-2", core.ModeSmart, true, RunResult{})
	if err := store.Append(ep); err != nil {
		t.Fatal(err)
	}
	c := Campaign{Name: "seed-check", Scenario: scenario.DS2, Mode: core.ModeSmart, ExpectCrashes: true}
	// Base seed 300 derives seed 300 for index 0, not 12345.
	_, err := RunCampaignOn(engine.New(engine.WithWorkers(1)), c, 1, 300, nil, WithResume(store))
	if err == nil || !strings.Contains(err.Error(), "refusing to mix seed streams") {
		t.Errorf("err = %v, want seed-stream mismatch", err)
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	// An (untrained) NN oracle exercises the per-episode oracle cloning
	// that makes shared trained nets safe under concurrency.
	oracles := map[core.Vector]core.Oracle{
		core.VectorDisappear: &core.NNOracle{Net: nn.NewRegressor(core.EncodeDim, stats.NewRNG(11))},
	}
	c := Campaign{Name: "det", Scenario: scenario.DS2, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true}
	var want CampaignResult
	for i, workers := range []int{1, 4, 8} {
		got, err := RunCampaignOn(engine.New(engine.WithWorkers(workers)), c, 12, 500, oracles)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Runs != 12 {
			t.Fatalf("workers=%d: %d runs, want 12", workers, got.Runs)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: aggregate differs from 1-worker run:\n got %+v\nwant %+v",
				workers, got, want)
		}
	}
}

// TestCampaignMetricsInert: the observability layer never feeds back
// into results — the same campaign persists byte-identical episode and
// aggregate records with metrics recording off and on.
func TestCampaignMetricsInert(t *testing.T) {
	t.Cleanup(func() { obs.SetEnabled(true) })
	c := Campaign{Name: "inert", Scenario: scenario.DS2, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true}

	runOnce := func(enabled bool) []byte {
		t.Helper()
		obs.SetEnabled(enabled)
		mem := results.NewMemStore()
		res, err := RunCampaignOn(engine.New(engine.WithWorkers(4)), c, 8, 500, nil,
			WithSink(mem))
		if err != nil {
			t.Fatalf("metrics=%v: %v", enabled, err)
		}
		eps, err := mem.Episodes("inert")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(struct {
			Result   CampaignResult
			Episodes []results.EpisodeRecord
		}{res, eps})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	off := runOnce(false)
	on := runOnce(true)
	if string(off) != string(on) {
		t.Errorf("records differ with metrics on vs off:\noff %s\non  %s", off, on)
	}
}

// TestCampaignTracesInert: span tracing, like metrics, never feeds
// back into results — the same campaign persists byte-identical
// episode and aggregate records with tracing off and on, even while
// the traced run writes real spans through the durable binary sink.
func TestCampaignTracesInert(t *testing.T) {
	c := Campaign{Name: "traced-inert", Scenario: scenario.DS2, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian, ExpectCrashes: true}

	runOnce := func(traced bool) []byte {
		t.Helper()
		ctx := context.Background()
		var tr *trace.Tracer
		var dir string
		if traced {
			dir = t.TempDir()
			sink, err := trace.NewFileSink(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Sample 1-in-2 so both the annotated and the exemplar
			// episode paths execute.
			tr = trace.New("test", sink, trace.WithSampleEvery(2))
			tid := trace.DeriveTraceID("traced-inert", 500)
			ctx = trace.NewContext(ctx, trace.SpanContext{
				Tracer: tr, TraceID: tid, SpanID: trace.DeriveSpanID(tid, 0, trace.StreamRun)})
		}
		mem := results.NewMemStore()
		res, err := RunCampaignOn(engine.New(engine.WithWorkers(4), engine.WithContext(ctx)),
			c, 8, 500, nil, WithSink(mem))
		if err != nil {
			t.Fatalf("traced=%v: %v", traced, err)
		}
		if traced {
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			spans, err := trace.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(spans) == 0 {
				t.Fatal("traced run emitted no spans; the inertness claim would be vacuous")
			}
		}
		eps, err := mem.Episodes("traced-inert")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(struct {
			Result   CampaignResult
			Episodes []results.EpisodeRecord
		}{res, eps})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	off := runOnce(false)
	on := runOnce(true)
	if string(off) != string(on) {
		t.Errorf("records differ with tracing on vs off:\noff %s\non  %s", off, on)
	}
}

func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization test")
	}
	// 4000 frames spans two segments, so worker counts actually differ
	// in scheduling.
	seq, err := CharacterizeOn(engine.New(engine.WithWorkers(1)), 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CharacterizeOn(engine.New(engine.WithWorkers(4)), 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("characterization differs across worker counts:\n seq %+v\n par %+v", seq, par)
	}
}

func TestCampaignCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := engine.New(
		engine.WithWorkers(2),
		engine.WithContext(ctx),
		engine.WithProgress(func(done, total int) {
			if done == 2 {
				cancel()
			}
		}),
	)
	c := Campaign{Name: "cancel", Scenario: scenario.DS1, Mode: core.ModeSmart,
		PreferDisappearFor: sim.ClassVehicle, ExpectCrashes: true}
	start := time.Now()
	res, err := RunCampaignOn(eng, c, 60, 100, nil)
	if err == nil {
		t.Fatal("canceled campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Runs == 0 || res.Runs >= 60 {
		t.Errorf("partial aggregate has %d runs, want 0 < n < 60", res.Runs)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}
