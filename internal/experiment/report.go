package experiment

import (
	"fmt"
	"sort"
	"strings"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/stats"
)

// The report formatters operate on persistent campaign records, not
// live results: Table II and Figs. 6-8 can be regenerated from any
// results.Store (a JSONL file from last week, a resumed sweep, the
// campaign service's store) exactly as from a freshly run campaign.
// Freshly run sweeps pass through experiment.Records.

// FormatTableII renders the Table II attack summary.
func FormatTableII(recs []results.CampaignRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %5s %6s %12s %14s\n", "ID", "K", "#runs", "#EB (%)", "#crashes (%)")
	for i := range recs {
		r := &recs[i]
		crash := "—"
		if r.ExpectCrashes {
			crash = fmt.Sprintf("%d (%.1f%%)", r.Crashes, 100*r.CrashRate())
		}
		k := "K*" // Baseline-Random draws K* at random
		if r.Mode != core.ModeRandom {
			k = fmt.Sprintf("%.0f", r.MedianK())
		}
		fmt.Fprintf(&b, "%-24s %5s %6d %12s %14s\n",
			r.Name, k, r.Runs,
			fmt.Sprintf("%d (%.1f%%)", r.EBs, 100*r.EBRate()), crash)
	}
	return b.String()
}

// FormatFig5 renders the detector characterization.
func FormatFig5(c Characterization) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — detector characterization over %d frames\n", c.Frames)
	for _, cc := range []ClassCharacterization{c.Pedestrian, c.Vehicle} {
		fmt.Fprintf(&b, "  %s (%d boxes, %d miss runs)\n", cc.Class, cc.Samples, cc.Runs)
		fmt.Fprintf(&b, "    misdetection runs: %v\n", cc.MissRuns)
		fmt.Fprintf(&b, "    bbox center dx:    %v\n", cc.ErrX)
		fmt.Fprintf(&b, "    bbox center dy:    %v\n", cc.ErrY)
	}
	return b.String()
}

// Fig6Row pairs the with-SH and without-SH min-delta boxes for one
// campaign.
type Fig6Row struct {
	Name   string
	WithSH stats.BoxStats
	NoSH   stats.BoxStats
}

// Fig6Rows computes the Fig. 6 boxplot series from paired campaign
// records.
func Fig6Rows(withSH, noSH []results.CampaignRecord) []Fig6Row {
	rows := make([]Fig6Row, 0, len(withSH))
	for i := range withSH {
		if i >= len(noSH) {
			break
		}
		row := Fig6Row{Name: withSH[i].Name}
		if box, err := stats.Box(withSH[i].MinDeltas); err == nil {
			row.WithSH = box
		}
		if box, err := stats.Box(noSH[i].MinDeltas); err == nil {
			row.NoSH = box
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFig6 renders the min safety potential boxplots.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — min safety potential delta (m), R vs R w/o SH (accident line at 4 m)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s R:      %v\n", r.Name, r.WithSH)
		fmt.Fprintf(&b, "  %-22s R w/oSH: %v\n", "", r.NoSH)
	}
	return b.String()
}

// FormatFig7 renders the K' (shift time) boxplots per attack vector for
// vehicles and pedestrians.
func FormatFig7(recs []results.CampaignRecord) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — shift time K' (frames) needed to move the object by Omega\n")
	for i := range recs {
		r := &recs[i]
		if len(r.KPrimes) == 0 {
			continue
		}
		if box, err := stats.Box(r.KPrimes); err == nil {
			fmt.Fprintf(&b, "  %-22s %v\n", r.Name, box)
		}
	}
	return b.String()
}

// Fig8Bin is one bar of Fig. 8(a): attack success probability within a
// prediction-error bin.
type Fig8Bin struct {
	ErrLo, ErrHi float64
	N            int
	SuccessRate  float64
}

// Fig8Bins computes success probability vs binned oracle prediction
// error across smart campaigns.
func Fig8Bins(recs []results.CampaignRecord, nbins int, maxErr float64) []Fig8Bin {
	type pair struct {
		err     float64
		success bool
	}
	var pairs []pair
	for _, r := range recs {
		for i := range r.Predicted {
			e := r.Predicted[i] - r.Realized[i]
			if e < 0 {
				e = -e
			}
			if e > maxErr {
				e = maxErr
			}
			pairs = append(pairs, pair{err: e, success: r.Successes[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].err < pairs[j].err })
	bins := make([]Fig8Bin, nbins)
	width := maxErr / float64(nbins)
	for i := range bins {
		bins[i].ErrLo = float64(i) * width
		bins[i].ErrHi = float64(i+1) * width
	}
	for _, p := range pairs {
		idx := int(p.err / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		bins[idx].N++
		if p.success {
			bins[idx].SuccessRate++
		}
	}
	for i := range bins {
		if bins[i].N > 0 {
			bins[i].SuccessRate /= float64(bins[i].N)
		}
	}
	return bins
}

// FormatFig8 renders the prediction-error study.
func FormatFig8(bins []Fig8Bin, recs []results.CampaignRecord) string {
	var b strings.Builder
	b.WriteString("Fig. 8(a) — attack success probability vs |oracle prediction error| (m)\n")
	for _, bin := range bins {
		if bin.N == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [%4.1f, %4.1f) n=%3d success=%.2f\n", bin.ErrLo, bin.ErrHi, bin.N, bin.SuccessRate)
	}
	b.WriteString("Fig. 8(b) — predicted vs realized delta_{t+K} (m)\n")
	for i := range recs {
		r := &recs[i]
		var errs []float64
		for i := range r.Predicted {
			e := r.Predicted[i] - r.Realized[i]
			if e < 0 {
				e = -e
			}
			errs = append(errs, e)
		}
		if len(errs) == 0 {
			continue
		}
		mae := stats.Mean(errs)
		fmt.Fprintf(&b, "  %-22s n=%3d MAE=%.2f m\n", r.Name, len(errs), mae)
	}
	return b.String()
}

// Summary aggregates the paper's §VI headline numbers across campaigns.
// The pedestrian/vehicle split counts launched episodes by the target
// class the malware actually attacked (recorded per episode), so
// generated scenarios and unconventionally named campaigns summarize
// correctly.
type Summary struct {
	Runs, EBs, Crashes  int
	CrashEligibleRuns   int
	PedRuns, PedSuccess int
	VehRuns, VehSuccess int
}

// Summarize folds campaign records into the headline aggregates.
func Summarize(recs []results.CampaignRecord) Summary {
	var s Summary
	for i := range recs {
		r := &recs[i]
		s.Runs += r.Runs
		s.EBs += r.EBs
		if r.ExpectCrashes {
			s.Crashes += r.Crashes
			s.CrashEligibleRuns += r.Runs
		}
		s.PedRuns += r.PedLaunched
		s.PedSuccess += r.PedEBs
		s.VehRuns += r.VehLaunched
		s.VehSuccess += r.VehEBs
	}
	return s
}

// FormatSummary renders the headline aggregates.
func FormatSummary(robotack, baseline Summary) string {
	var b strings.Builder
	rate := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	fmt.Fprintf(&b, "RoboTack: EB %d/%d (%.1f%%), crashes %d/%d (%.1f%%)\n",
		robotack.EBs, robotack.Runs, rate(robotack.EBs, robotack.Runs),
		robotack.Crashes, robotack.CrashEligibleRuns, rate(robotack.Crashes, robotack.CrashEligibleRuns))
	fmt.Fprintf(&b, "Baseline: EB %d/%d (%.1f%%), crashes %d/%d (%.1f%%)\n",
		baseline.EBs, baseline.Runs, rate(baseline.EBs, baseline.Runs),
		baseline.Crashes, baseline.CrashEligibleRuns, rate(baseline.Crashes, baseline.CrashEligibleRuns))
	fmt.Fprintf(&b, "Pedestrian-target success %.1f%% vs vehicle-target %.1f%%\n",
		rate(robotack.PedSuccess, robotack.PedRuns), rate(robotack.VehSuccess, robotack.VehRuns))
	return b.String()
}
