package experiment

import (
	"context"

	"github.com/robotack/robotack/internal/detect"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// ClassCharacterization holds the Fig. 5 statistics for one class.
type ClassCharacterization struct {
	Class sim.Class
	// MissRuns is the distribution of continuous-misdetection run
	// lengths (frames), Fig. 5(a)/(b).
	MissRuns stats.ExpFit
	// ErrX/ErrY are the normalized bbox-center error fits, Fig. 5(c-f).
	ErrX, ErrY stats.NormalFit
	Samples    int
	Runs       int
}

// Characterization is the full Fig. 5 reproduction.
type Characterization struct {
	Pedestrian ClassCharacterization
	Vehicle    ClassCharacterization
	Frames     int
}

// characterizeSegmentFrames caps the drive length of one engine job.
// Drives longer than this are split into independent segments (each
// with its own world and derived seed) whose sample pools merge before
// fitting — the detector-noise process is stationary, so segmenting
// the paper's 10-minute drive changes nothing statistically while
// letting the segments run in parallel.
const characterizeSegmentFrames = 3000

// characterizePools is one segment's raw sample pools.
type characterizePools struct {
	missRuns, errX, errY map[sim.Class][]float64
}

// Characterize reproduces the paper's §VI-A measurement on a default
// engine: it drives a mixed-traffic world for the given number of
// frames (the paper used a 10-minute manual drive, 9000 frames), runs
// the noisy detector against ground-truth projections, and fits the
// misdetection-run and bbox-error distributions.
func Characterize(frames int, seed int64) Characterization {
	c, _ := CharacterizeOn(engine.New(), frames, seed)
	return c
}

// CharacterizeOn runs the characterization drive on eng, one engine
// job per segment of at most characterizeSegmentFrames frames. Sample
// pools merge in segment order, so the fits are identical for any
// worker count; for frames within a single segment the result matches
// the historical sequential drive exactly.
func CharacterizeOn(eng *engine.Engine, frames int, seed int64) (Characterization, error) {
	var segments []int
	for rem := frames; rem > 0; rem -= characterizeSegmentFrames {
		n := rem
		if n > characterizeSegmentFrames {
			n = characterizeSegmentFrames
		}
		segments = append(segments, n)
	}

	pools, err := engine.Map(eng, seed, segments,
		func(ctx context.Context, segSeed int64, n int) (characterizePools, error) {
			return characterizeSegment(ctx, n, segSeed)
		})

	missRuns := map[sim.Class][]float64{}
	errX := map[sim.Class][]float64{}
	errY := map[sim.Class][]float64{}
	for _, p := range pools {
		for cls, v := range p.missRuns {
			missRuns[cls] = append(missRuns[cls], v...)
		}
		for cls, v := range p.errX {
			errX[cls] = append(errX[cls], v...)
		}
		for cls, v := range p.errY {
			errY[cls] = append(errY[cls], v...)
		}
	}

	charac := Characterization{Frames: frames}
	fill := func(cls sim.Class) ClassCharacterization {
		out := ClassCharacterization{Class: cls, Samples: len(errX[cls]), Runs: len(missRuns[cls])}
		if fit, ferr := stats.FitExponential(missRuns[cls]); ferr == nil {
			out.MissRuns = fit
		}
		if fit, ferr := stats.FitNormal(errX[cls]); ferr == nil {
			out.ErrX = fit
		}
		if fit, ferr := stats.FitNormal(errY[cls]); ferr == nil {
			out.ErrY = fit
		}
		return out
	}
	charac.Pedestrian = fill(sim.ClassPedestrian)
	charac.Vehicle = fill(sim.ClassVehicle)
	return charac, err
}

// characterizeSegment drives one mixed-traffic world for frames frames
// and collects the raw misdetection-run and center-error pools.
func characterizeSegment(ctx context.Context, frames int, seed int64) (characterizePools, error) {
	rng := stats.NewRNG(seed)
	cam := sensor.DefaultCamera()
	det := detect.New(detect.DefaultConfig(), rng.Split())

	ev := sim.DefaultEV()
	ev.Speed = sim.Kph(40)
	w := sim.NewWorld(sim.DefaultRoad(), ev)

	type actorStat struct {
		missRun int
		class   sim.Class
	}
	pools := characterizePools{
		missRuns: map[sim.Class][]float64{},
		errX:     map[sim.Class][]float64{},
		errY:     map[sim.Class][]float64{},
	}
	active := map[sim.ActorID]*actorStat{}

	spawn := func() {
		// Mixed traffic at assorted ranges and lateral positions, as on
		// a city drive.
		if rng.Bernoulli(0.5) {
			w.AddActor(&sim.Actor{
				Class: sim.ClassVehicle,
				Pos:   geom.V(w.EV.Pos.X+rng.Uniform(15, 110), rng.Uniform(-4, 4)),
				Size:  sim.SizeCar,
				Behavior: &sim.Cruise{
					Speed: rng.Uniform(sim.Kph(20), sim.Kph(50)),
				},
			})
		} else {
			// Pedestrians are labeled at the ranges a city drive sees
			// them: near the EV, on and beside the road.
			w.AddActor(&sim.Actor{
				Class:    sim.ClassPedestrian,
				Pos:      geom.V(w.EV.Pos.X+rng.Uniform(8, 38), rng.Uniform(-5, 5)),
				Size:     sim.SizePedestrian,
				Behavior: &sim.Cruise{Speed: rng.Uniform(sim.Kph(38), sim.Kph(43))},
			})
		}
	}
	for i := 0; i < 8; i++ {
		spawn()
	}

	var capture sensor.CaptureBuffer
	for f := 0; f < frames; f++ {
		if f%64 == 0 && ctx.Err() != nil {
			return pools, ctx.Err()
		}
		// Recycle actors that fell behind or ran too far ahead.
		live := w.Actors[:0]
		for _, a := range w.Actors {
			rel := a.Pos.X - w.EV.Pos.X
			if rel > -5 && rel < 140 {
				live = append(live, a)
			} else {
				delete(active, a.ID)
			}
		}
		w.Actors = live
		for len(w.Actors) < 8 {
			spawn()
		}

		frameData := cam.CaptureInto(&capture, w, f)
		dets := det.Detect(frameData.Image)

		for _, truth := range frameData.Truth {
			// Standard detection-benchmark practice: boxes below a
			// minimum size are not labeled (a 2-px-wide silhouette
			// cannot be localized to IoU 0.6 even in principle).
			if truth.Box.W < 3 || truth.Box.H < 3 {
				continue
			}
			st := active[truth.ID]
			if st == nil {
				st = &actorStat{class: truth.Class}
				active[truth.ID] = st
			}
			// Match the best detection by IoU. A box below the overlap
			// bar counts as a misdetection for the run-length statistic
			// (the paper uses IoU 60% on 1080p footage; on our 10x
			// coarser raster the same localization quality corresponds
			// to a lower IoU, so the bar is scaled down — see
			// EXPERIMENTS.md). The center-error statistic considers
			// every overlapping box (paper: "only predicted bounding
			// boxes that overlap with the ground-truth boxes").
			const missIoU = 0.25
			bestIoU, bestIdx := 0.0, -1
			for i, d := range dets {
				if iou := d.Box.IoU(truth.Box); iou > bestIoU {
					bestIoU, bestIdx = iou, i
				}
			}
			if bestIoU < missIoU {
				st.missRun++
			} else if st.missRun > 0 {
				pools.missRuns[st.class] = append(pools.missRuns[st.class], float64(st.missRun))
				st.missRun = 0
			}
			if bestIdx >= 0 && bestIoU > 0 {
				d := dets[bestIdx]
				pools.errX[truth.Class] = append(pools.errX[truth.Class],
					(d.Box.Center().X-truth.Box.Center().X)/truth.Box.W)
				pools.errY[truth.Class] = append(pools.errY[truth.Class],
					(d.Box.Center().Y-truth.Box.Center().Y)/truth.Box.H)
			}
		}
		w.Step(0)
		w.Halted = false // characterization drive ignores proximity
	}
	return pools, nil
}
