package experiment

import (
	"context"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/perception"
	"github.com/robotack/robotack/internal/planner"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sensor"
	"github.com/robotack/robotack/internal/stats"
)

// Scratch is the per-worker episode-execution scratch: one full set of
// the long-lived, internally-pooled objects an episode needs — camera
// frame buffer, ADS perception pipeline, planner, LiDAR, and (when a
// campaign attacks) the malware with its second perception stack and
// per-worker oracle clones. Episodes reset and reuse it instead of
// rebuilding ~500 KB of pipeline state per episode, which together
// with the per-frame pooling inside each stage makes the steady-state
// frame loop allocation-free.
//
// A Scratch is single-goroutine. Engine batches attach one per worker
// via engine.WithWorkerState (see newEngineForJobs); RunCtx falls back
// to a throwaway Scratch when its context carries none. Reuse is
// observationally invisible: every component's Reset restores the
// exact state a fresh construction would have, so episode results are
// bit-identical whether or not (and with whomever) the scratch is
// shared — TestScratchReuseBitIdentical and the cross-worker
// determinism suite enforce this.
type Scratch struct {
	cam     *sensor.Camera
	capture sensor.CaptureBuffer
	ads     *perception.Pipeline
	lidar   *sensor.Lidar
	pl      *planner.Planner

	// Attack-side state, built lazily for the first attacking episode
	// and rebuilt only when the attack configuration or oracle set
	// changes (they never do within one campaign batch).
	malware          *core.Malware
	malwareCfg       core.Config
	hasMalware       bool
	malwareOracleGen int
	malwareBatcher   *core.InferBatcher

	// oracles are this worker's clones of the campaign's trained
	// oracles: cloned once per worker instead of once per episode.
	// oracleGen bumps whenever the source set changes identity, so the
	// malware (whose safety hijacker captures the oracles) knows to
	// rebuild.
	oracleSrc map[core.Vector]core.Oracle
	oracles   map[core.Vector]core.Oracle
	oracleGen int

	// batched caches the batcher-wrapped view of this lane's oracle
	// clones (see core.InferBatcher); rebuilt when the clones or the
	// batcher change identity.
	batched    map[core.Vector]core.Oracle
	batchedGen int
	batchedBy  *core.InferBatcher

	// arena is the lane's reusable scenario-instantiation state: the
	// world, actors and behavior structs recycle across episodes.
	arena *scenario.Arena

	// Pooled episode RNG streams, reseeded per episode instead of
	// reallocated (a rand source is ~5 KB).
	scnRNG, adsRNG, malRNG, lidarRNG *stats.RNG

	// trace is the recycled backing array for RunResult.DeltaTrace on
	// the campaign path (see RunConfig.recycleTrace).
	trace []float64

	// fobs holds this worker's shard-pinned metric handles (see
	// obs.go); built lazily on the first instrumented episode.
	fobs frameObs
}

// NewScratch returns an empty episode scratch.
func NewScratch() *Scratch {
	return &Scratch{cam: sensor.DefaultCamera()}
}

// scratchFrom returns the engine worker's scratch, or a fresh one for
// callers outside an engine batch (direct Run/RunCtx).
func scratchFrom(ctx context.Context) *Scratch {
	if s, ok := engine.WorkerState(ctx).(*Scratch); ok && s != nil {
		return s
	}
	return NewScratch()
}

// withEpisodeScratch wires a per-lane Scratch factory into eng, so
// every job the returned engine runs finds a reusable scratch in its
// context. When the engine runs lockstep episode lanes
// (engine.WithEpisodeBatch), each worker slot additionally gets one
// shared InferBatcher so its lanes' oracle queries coalesce into
// batched forward passes.
func withEpisodeScratch(eng *engine.Engine) *engine.Engine {
	eng = eng.With(engine.WithWorkerState(func() any { return NewScratch() }))
	if eng.EpisodeBatch() > 1 {
		eng = eng.With(engine.WithWorkerGroupState(func() any { return core.NewInferBatcher() }))
	}
	return eng
}

// arenaFor returns the lane's scenario arena, creating it on first use.
func (s *Scratch) arenaFor() *scenario.Arena {
	if s.arena == nil {
		s.arena = scenario.NewArena()
	}
	return s.arena
}

// reseed returns *p rewound to seed, allocating the stream only once.
// A reseeded stream replays exactly what stats.NewRNG(seed) would.
func reseed(p **stats.RNG, seed int64) *stats.RNG {
	if *p == nil {
		*p = stats.NewRNG(seed)
	} else {
		(*p).Reseed(seed)
	}
	return *p
}

// pipeline returns the scratch's ADS perception stack reset for a new
// episode driven by rng.
func (s *Scratch) pipeline(rng *stats.RNG) *perception.Pipeline {
	if s.ads == nil {
		s.ads = perception.NewDefault(s.cam, rng)
		return s.ads
	}
	s.ads.Detector.SetRNG(rng)
	s.ads.Reset()
	return s.ads
}

// lidarFor returns the scratch's LiDAR reset to a new noise stream.
func (s *Scratch) lidarFor(rng *stats.RNG) *sensor.Lidar {
	if s.lidar == nil {
		s.lidar = sensor.NewLidar(rng)
		return s.lidar
	}
	s.lidar.Reset(rng)
	return s.lidar
}

// plannerFor returns the scratch's planner reconfigured for the
// episode's cruise speed.
func (s *Scratch) plannerFor(cfg planner.Config) *planner.Planner {
	if s.pl == nil {
		s.pl = planner.New(cfg)
		return s.pl
	}
	s.pl.Reconfigure(cfg)
	return s.pl
}

// oraclesFor returns this worker's clones of src, cloning only when
// the source map changes identity (across campaigns, never within
// one). Oracle outputs are pure functions of their weights, so
// worker-level cloning is bit-identical to the historical per-episode
// cloning — it exists because trained oracles keep per-call inference
// scratch and must not be shared across goroutines.
func (s *Scratch) oraclesFor(src map[core.Vector]core.Oracle) map[core.Vector]core.Oracle {
	if src == nil {
		if s.oracleSrc != nil {
			s.oracleSrc, s.oracles = nil, nil
			s.oracleGen++
		}
		return nil
	}
	if s.oracleSrc != nil && len(s.oracleSrc) == len(src) {
		same := true
		for v, o := range src {
			if prev, ok := s.oracleSrc[v]; !ok || prev != o {
				same = false
				break
			}
		}
		if same {
			return s.oracles
		}
	}
	s.oracleSrc = src
	s.oracles = core.CloneOracles(src)
	s.oracleGen++
	return s.oracles
}

// episodeOracles returns the lane's oracle clones, wrapped for the
// worker group's inference batcher when one is attached. The wrap is
// cached alongside the clones; a batcher never changes identity within
// one engine batch, but the cache keys on it anyway for direct reuse.
func (s *Scratch) episodeOracles(b *core.InferBatcher, src map[core.Vector]core.Oracle) map[core.Vector]core.Oracle {
	oracles := s.oraclesFor(src)
	if b == nil || oracles == nil {
		return oracles
	}
	if s.batched != nil && s.batchedGen == s.oracleGen && s.batchedBy == b {
		return s.batched
	}
	s.batched = b.WrapOracles(oracles)
	s.batchedGen = s.oracleGen
	s.batchedBy = b
	return s.batched
}

// malwareFor returns the scratch's malware re-armed for a new episode,
// rebuilding it only when the attack configuration (or oracle set, or
// batcher) differs from the previous episode's.
func (s *Scratch) malwareFor(b *core.InferBatcher, mcfg core.Config, src map[core.Vector]core.Oracle, rng *stats.RNG) *core.Malware {
	oracles := s.episodeOracles(b, src)
	if s.hasMalware && s.malwareOracleGen == s.oracleGen && s.malwareBatcher == b && malwareConfigEqual(s.malwareCfg, mcfg) {
		s.malware.Reset(rng)
		return s.malware
	}
	s.malware = core.New(mcfg, s.cam, oracles, rng)
	s.malwareCfg = mcfg
	s.hasMalware = true
	s.malwareOracleGen = s.oracleGen
	s.malwareBatcher = b
	return s.malware
}

// malwareConfigEqual compares attack configurations, following the
// Forced pointer (core.Config is not comparable by == because of it).
func malwareConfigEqual(a, b core.Config) bool {
	fa, fb := a.Forced, b.Forced
	a.Forced, b.Forced = nil, nil
	if a != b {
		return false
	}
	if (fa == nil) != (fb == nil) {
		return false
	}
	return fa == fb || *fa == *fb
}
