package experiment

import (
	"strings"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/results"
)

// reportRecords is the fixed input of the golden-string tests: a smart
// campaign, a crash-ineligible Move_In campaign, and the random
// baseline (whose K column must read "K*").
func reportRecords() []results.CampaignRecord {
	smart := results.NewCampaign("DS-2-Disappear-R", "DS-2", core.ModeSmart, true, 1)
	smart.Runs, smart.Launched, smart.EBs, smart.Crashes = 10, 10, 9, 8
	smart.Ks = []float64{14, 15, 16}
	smart.KPrimes = []float64{4, 5, 6}
	smart.MinDeltas = []float64{2, 3, 4}
	smart.Predicted = []float64{5, 6}
	smart.Realized = []float64{4, 8}
	smart.Successes = []bool{true, false}
	smart.PedLaunched, smart.PedEBs = 10, 9

	movein := results.NewCampaign("DS-3-Move_In-R", "DS-3", core.ModeSmart, false, 1)
	movein.Runs, movein.Launched, movein.EBs = 8, 6, 4
	movein.Ks = []float64{20, 22}
	movein.PedLaunched, movein.PedEBs = 6, 4

	random := results.NewCampaign("DS-5-Baseline-Random", "DS-5", core.ModeRandom, true, 1)
	random.Runs, random.Launched, random.EBs, random.Crashes = 10, 7, 2, 1
	random.Ks = []float64{9}
	random.VehLaunched, random.VehEBs = 7, 2

	return []results.CampaignRecord{smart, movein, random}
}

func TestFormatTableIIGolden(t *testing.T) {
	want := "" +
		"ID                           K  #runs      #EB (%)   #crashes (%)\n" +
		"DS-2-Disappear-R            15     10    9 (90.0%)      8 (80.0%)\n" +
		"DS-3-Move_In-R              21      8    4 (50.0%)              —\n" +
		"DS-5-Baseline-Random        K*     10    2 (20.0%)      1 (10.0%)\n"
	if got := FormatTableII(reportRecords()); got != want {
		t.Errorf("FormatTableII:\n got %q\nwant %q", got, want)
	}
}

func TestFormatSummaryGolden(t *testing.T) {
	recs := reportRecords()
	robotack := Summarize(recs[:2])
	baseline := Summarize(recs[2:])
	want := "" +
		"RoboTack: EB 13/18 (72.2%), crashes 8/10 (80.0%)\n" +
		"Baseline: EB 2/10 (20.0%), crashes 1/10 (10.0%)\n" +
		"Pedestrian-target success 81.2% vs vehicle-target 0.0%\n"
	if got := FormatSummary(robotack, baseline); got != want {
		t.Errorf("FormatSummary:\n got %q\nwant %q", got, want)
	}
}

func TestSummarizeClassifiesByRecordedTargetClass(t *testing.T) {
	// The campaign name carries no DS hint at all: the split must come
	// from the per-episode target classes folded into the record.
	rec := results.NewCampaign("generated-sweep", "generated", core.ModeSmart, true, 1)
	rec.Runs, rec.Launched, rec.EBs, rec.Crashes = 10, 9, 6, 3
	rec.PedLaunched, rec.PedEBs = 4, 3
	rec.VehLaunched, rec.VehEBs = 5, 2
	s := Summarize([]results.CampaignRecord{rec})
	if s.PedRuns != 4 || s.PedSuccess != 3 {
		t.Errorf("ped split = %d/%d, want 3/4", s.PedSuccess, s.PedRuns)
	}
	if s.VehRuns != 5 || s.VehSuccess != 2 {
		t.Errorf("veh split = %d/%d, want 2/5", s.VehSuccess, s.VehRuns)
	}
	if s.Runs != 10 || s.EBs != 6 || s.Crashes != 3 || s.CrashEligibleRuns != 10 {
		t.Errorf("summary = %+v", s)
	}
}

func TestFigureFormatters(t *testing.T) {
	recs := reportRecords()
	rows := Fig6Rows(recs, recs)
	if out := FormatFig6(rows); !strings.Contains(out, "med=3.00") {
		t.Errorf("Fig 6 output malformed:\n%s", out)
	}
	if out := FormatFig7(recs); !strings.Contains(out, "DS-2") {
		t.Error("Fig 7 output malformed")
	}
	bins := Fig8Bins(recs, 5, 10)
	total := 0
	for _, b := range bins {
		total += b.N
	}
	if total != 2 {
		t.Errorf("Fig 8 bins hold %d samples, want 2", total)
	}
	if out := FormatFig8(bins, recs); !strings.Contains(out, "MAE") {
		t.Error("Fig 8 output malformed")
	}
}

func TestFig8BinsEdgeCases(t *testing.T) {
	mk := func(pred, real []float64, succ []bool) results.CampaignRecord {
		rec := results.NewCampaign("fig8", "DS-2", core.ModeSmart, true, 1)
		rec.Predicted, rec.Realized, rec.Successes = pred, real, succ
		return rec
	}
	cases := []struct {
		name     string
		recs     []results.CampaignRecord
		nbins    int
		maxErr   float64
		wantN    []int
		wantSR   []float64
		wantLoHi [][2]float64
	}{
		{
			name:     "empty input",
			recs:     nil,
			nbins:    3,
			maxErr:   6,
			wantN:    []int{0, 0, 0},
			wantSR:   []float64{0, 0, 0},
			wantLoHi: [][2]float64{{0, 2}, {2, 4}, {4, 6}},
		},
		{
			name: "error exactly at maxErr clamps into the last bin",
			recs: []results.CampaignRecord{
				mk([]float64{10}, []float64{0}, []bool{true}),
			},
			nbins:  5,
			maxErr: 10,
			wantN:  []int{0, 0, 0, 0, 1},
			wantSR: []float64{0, 0, 0, 0, 1},
		},
		{
			name: "single bin takes everything",
			recs: []results.CampaignRecord{
				mk([]float64{0, 5, 20}, []float64{0, 0, 0}, []bool{true, false, true}),
			},
			nbins:    1,
			maxErr:   10,
			wantN:    []int{3},
			wantSR:   []float64{2.0 / 3.0},
			wantLoHi: [][2]float64{{0, 10}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bins := Fig8Bins(tc.recs, tc.nbins, tc.maxErr)
			if len(bins) != tc.nbins {
				t.Fatalf("got %d bins, want %d", len(bins), tc.nbins)
			}
			for i, b := range bins {
				if b.N != tc.wantN[i] {
					t.Errorf("bin %d: N = %d, want %d", i, b.N, tc.wantN[i])
				}
				if b.SuccessRate != tc.wantSR[i] {
					t.Errorf("bin %d: success = %v, want %v", i, b.SuccessRate, tc.wantSR[i])
				}
				if tc.wantLoHi != nil && (b.ErrLo != tc.wantLoHi[i][0] || b.ErrHi != tc.wantLoHi[i][1]) {
					t.Errorf("bin %d: [%v, %v), want [%v, %v)", i, b.ErrLo, b.ErrHi, tc.wantLoHi[i][0], tc.wantLoHi[i][1])
				}
			}
		})
	}
}
