package experiment

// Frame-pipeline instrumentation. Each perception stage of the Fig. 1
// loop gets a latency histogram series (stage label), plus frame and
// episode throughput counters; when the episode runs under an active
// trace span, the same clock reads also accumulate into the span's
// per-stage slots. Recording is observational only: it reads the wall
// clock and bumps atomics, and never touches seeds, RNG streams or
// result fields, so instrumented campaigns are bit-identical to
// uninstrumented ones. The handles live in the per-worker Scratch and
// recording is allocation-free (TestFrameStepZeroAllocs covers the
// instrumented loop with tracing enabled).

import (
	"time"

	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/perception"
)

var frameStageBuckets = obs.ExpBuckets(1e-6, 2, 14) // 1µs .. 8.192ms

func stageHist(stage string) *obs.Histogram {
	return obs.NewHistogram("robotack_frame_stage_seconds",
		"Frame-pipeline stage latency by stage.",
		frameStageBuckets, obs.Label{Key: "stage", Value: stage})
}

// stageHists registers each stage's series once at init. Registration
// (label escaping, series lookup) used to run per fresh Scratch, which
// dominated the direct-Run allocation profile; handles still pin
// per-worker shards, but against these shared series.
var stageHists = func() [perception.NumStages]*obs.Histogram {
	var h [perception.NumStages]*obs.Histogram
	for i, name := range perception.StageNames {
		h[i] = stageHist(name)
	}
	return h
}()

var (
	framesTotal   = obs.NewCounter("robotack_frames_total", "Simulation frames executed.")
	episodesTotal = obs.NewCounter("robotack_episodes_total", "Episodes completed.")
)

// frameObs is one worker's set of shard-pinned recording handles,
// one histogram per perception.Stage* index.
type frameObs struct {
	init     bool
	stage    [perception.NumStages]obs.HistogramHandle
	frames   obs.CounterHandle
	episodes obs.CounterHandle
}

func newFrameObs() frameObs {
	fo := frameObs{
		init:     true,
		frames:   framesTotal.Handle(),
		episodes: episodesTotal.Handle(),
	}
	for i := range stageHists {
		fo.stage[i] = stageHists[i].Handle()
	}
	return fo
}

// frameObsHandles returns the scratch's recording handles, building
// them on first use (one registry hit per worker, not per episode).
func (s *Scratch) frameObsHandles() *frameObs {
	if !s.fobs.init {
		s.fobs = newFrameObs()
	}
	return &s.fobs
}

// stageClock times consecutive stages within one frame: each tick
// observes the span since the previous tick into the stage's histogram
// (when metrics are on) and into the episode span's stage slot (when
// the frame is span-annotated), then restarts. A clock started with
// neither destination is free — every method is a branch.
type stageClock struct {
	t       time.Time
	metrics bool
	sp      *trace.Span
}

func startStageClock(metricsOn bool, sp *trace.Span) stageClock {
	if !metricsOn && sp == nil {
		return stageClock{}
	}
	return stageClock{t: time.Now(), metrics: metricsOn, sp: sp}
}

func (c *stageClock) tick(fo *frameObs, stage int) {
	if !c.metrics && c.sp == nil {
		return
	}
	now := time.Now()
	d := now.Sub(c.t)
	if c.metrics {
		fo.stage[stage].Observe(d.Seconds())
	}
	c.sp.StageAdd(stage, d) // nil-safe
	c.t = now
}
