package experiment

// Frame-pipeline instrumentation. Each perception stage of the Fig. 1
// loop gets a latency histogram series (stage label), plus frame and
// episode throughput counters. Recording is observational only: it
// reads the wall clock and bumps atomics, and never touches seeds, RNG
// streams or result fields, so instrumented campaigns are bit-identical
// to uninstrumented ones. The handles live in the per-worker Scratch
// and recording is allocation-free (TestFrameStepZeroAllocs covers the
// instrumented loop).

import (
	"time"

	"github.com/robotack/robotack/internal/obs"
)

var frameStageBuckets = obs.ExpBuckets(1e-6, 2, 14) // 1µs .. 8.192ms

func stageHist(stage string) *obs.Histogram {
	return obs.NewHistogram("robotack_frame_stage_seconds",
		"Frame-pipeline stage latency by stage.",
		frameStageBuckets, obs.Label{Key: "stage", Value: stage})
}

var (
	framesTotal   = obs.NewCounter("robotack_frames_total", "Simulation frames executed.")
	episodesTotal = obs.NewCounter("robotack_episodes_total", "Episodes completed.")
)

// frameObs is one worker's set of shard-pinned recording handles.
type frameObs struct {
	init                                                bool
	sensor, malware, lidar, detect, track, fusion, plan obs.HistogramHandle
	frames                                              obs.CounterHandle
	episodes                                            obs.CounterHandle
}

func newFrameObs() frameObs {
	return frameObs{
		init:     true,
		sensor:   stageHist("sensor").Handle(),
		malware:  stageHist("malware").Handle(),
		lidar:    stageHist("lidar").Handle(),
		detect:   stageHist("detect").Handle(),
		track:    stageHist("track").Handle(),
		fusion:   stageHist("fusion").Handle(),
		plan:     stageHist("plan").Handle(),
		frames:   framesTotal.Handle(),
		episodes: episodesTotal.Handle(),
	}
}

// frameObsHandles returns the scratch's recording handles, building
// them on first use (one registry hit per worker, not per episode).
func (s *Scratch) frameObsHandles() *frameObs {
	if !s.fobs.init {
		s.fobs = newFrameObs()
	}
	return &s.fobs
}

// stageClock times consecutive stages within one frame: each tick
// observes the span since the previous tick and restarts. A clock
// started off is free — every method is a branch on a bool.
type stageClock struct {
	t  time.Time
	on bool
}

func startStageClock(on bool) stageClock {
	if !on {
		return stageClock{}
	}
	return stageClock{t: time.Now(), on: true}
}

func (c *stageClock) tick(h obs.HistogramHandle) {
	if !c.on {
		return
	}
	now := time.Now()
	h.Observe(now.Sub(c.t).Seconds())
	c.t = now
}
