package experiment

import (
	"context"
	"fmt"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/nn"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// OracleSpec names the forced-attack sweeps used to collect one
// vector's training data (paper §IV-B: "each simulation had a
// predefined delta_inject and a k").
type OracleSpec struct {
	Vector core.Vector
	// Sweeps pairs scenarios with the Table I steering needed to make
	// the matcher pick this vector there.
	Sweeps []OracleSweep
	// DeltaGrid is the set of delta_inject trigger values.
	DeltaGrid []float64
	// SeedsPerPoint controls repetitions per grid point.
	SeedsPerPoint int
}

// OracleSweep is one scenario in a spec.
type OracleSweep struct {
	Scenario           scenario.ID
	PreferDisappearFor sim.Class
	TargetClass        sim.Class
}

// DefaultOracleSpecs returns the training sweeps for the three attack
// vectors, mirroring the paper's data-collection campaigns.
func DefaultOracleSpecs() []OracleSpec {
	deltas := []float64{8, 12, 16, 20, 25, 30, 36, 42}
	return []OracleSpec{
		{
			Vector: core.VectorDisappear,
			Sweeps: []OracleSweep{
				{Scenario: scenario.DS1, PreferDisappearFor: sim.ClassVehicle, TargetClass: sim.ClassVehicle},
				{Scenario: scenario.DS2, PreferDisappearFor: sim.ClassPedestrian, TargetClass: sim.ClassPedestrian},
			},
			DeltaGrid:     deltas,
			SeedsPerPoint: 2,
		},
		{
			Vector: core.VectorMoveOut,
			Sweeps: []OracleSweep{
				{Scenario: scenario.DS1, PreferDisappearFor: sim.ClassPedestrian, TargetClass: sim.ClassVehicle},
				{Scenario: scenario.DS2, PreferDisappearFor: sim.ClassVehicle, TargetClass: sim.ClassPedestrian},
			},
			DeltaGrid:     deltas,
			SeedsPerPoint: 2,
		},
		{
			Vector: core.VectorMoveIn,
			Sweeps: []OracleSweep{
				{Scenario: scenario.DS3, TargetClass: sim.ClassVehicle},
				{Scenario: scenario.DS4, TargetClass: sim.ClassPedestrian},
			},
			DeltaGrid:     []float64{12, 16, 20, 25, 30, 36, 42, 48},
			SeedsPerPoint: 2,
		},
	}
}

// GenerateOracleData runs the spec's forced attacks on a default
// engine and harvests one training sample per (launch state, elapsed
// frames) pair: the input is the paper's [delta, vrel, arel, k] and
// the label is the realized ground-truth safety potential k frames
// after launch.
func GenerateOracleData(spec OracleSpec, baseSeed int64) (nn.Dataset, error) {
	return GenerateOracleDataOn(engine.New(), spec, baseSeed)
}

// forcedRun is one grid point of a training sweep.
type forcedRun struct {
	sweep   OracleSweep
	dInject float64
	kMax    int
}

// GenerateOracleDataOn runs the spec's forced attacks on eng. The
// sweep grid is flattened into one batch of engine jobs; the dataset
// folds in grid order, so it is identical for any worker count (and to
// the historical sequential generator, whose j-th run used seed
// baseSeed+1+j).
func GenerateOracleDataOn(eng *engine.Engine, spec OracleSpec, baseSeed int64) (nn.Dataset, error) {
	var grid []forcedRun
	for _, sweep := range spec.Sweeps {
		kMax := core.DefaultSafetyHijackerConfig().KMaxVehicle
		if sweep.TargetClass == sim.ClassPedestrian {
			kMax = core.DefaultSafetyHijackerConfig().KMaxPedestrian
		}
		for _, dInject := range spec.DeltaGrid {
			for s := 0; s < spec.SeedsPerPoint; s++ {
				grid = append(grid, forcedRun{sweep: sweep, dInject: dInject, kMax: kMax})
			}
		}
	}

	runs, err := engine.Map(withEpisodeScratch(eng), baseSeed+1, grid,
		func(ctx context.Context, seed int64, fr forcedRun) (RunResult, error) {
			return RunCtx(ctx, RunConfig{
				Scenario: fr.sweep.Scenario,
				Seed:     seed,
				Attack: AttackSetup{
					Mode:               core.ModeSmart,
					PreferDisappearFor: fr.sweep.PreferDisappearFor,
					Forced:             &ForcedPlan{DeltaInject: fr.dInject, K: fr.kMax},
				},
			})
		})
	var ds nn.Dataset
	if err != nil {
		return ds, fmt.Errorf("oracle data: %w", err)
	}
	for i, rr := range runs {
		if !rr.Launched {
			continue
		}
		for j, delta := range rr.DeltaTrace {
			if j == 0 || j > grid[i].kMax {
				continue
			}
			ds.Add(rr.LaunchState.Encode(j), delta)
		}
	}
	return ds, nil
}

// TrainedOracle bundles a trained network with its validation metrics.
type TrainedOracle struct {
	Vector  core.Vector
	Net     *nn.Network
	Result  nn.Result
	Samples int
}

// TrainOracles generates data and trains one network per attack vector,
// using the paper's architecture and 60/40 split. Data generation runs
// on a default engine.
func TrainOracles(specs []OracleSpec, baseSeed int64, cfg nn.TrainConfig) (map[core.Vector]core.Oracle, []TrainedOracle, error) {
	return TrainOraclesOn(engine.New(), specs, baseSeed, cfg)
}

// TrainOraclesOn generates training data on eng (the episode fan-out
// dominates the wall clock) and trains one network per attack vector
// sequentially, so the fitted weights stay deterministic in baseSeed.
func TrainOraclesOn(eng *engine.Engine, specs []OracleSpec, baseSeed int64, cfg nn.TrainConfig) (map[core.Vector]core.Oracle, []TrainedOracle, error) {
	oracles := make(map[core.Vector]core.Oracle, len(specs))
	infos := make([]TrainedOracle, 0, len(specs))
	for i, spec := range specs {
		ds, err := GenerateOracleDataOn(eng, spec, baseSeed+int64(i)*10_000)
		if err != nil {
			return nil, nil, err
		}
		if ds.Len() == 0 {
			return nil, nil, fmt.Errorf("oracle data: no samples for %v", spec.Vector)
		}
		rng := stats.NewRNG(baseSeed + int64(i) + 77)
		train, val := ds.Split(0.6, rng)
		net := nn.NewRegressor(core.EncodeDim, rng)
		res, err := nn.Train(net, train, val, cfg, rng)
		if err != nil {
			return nil, nil, err
		}
		oracles[spec.Vector] = &core.NNOracle{Net: net}
		infos = append(infos, TrainedOracle{Vector: spec.Vector, Net: net, Result: res, Samples: ds.Len()})
	}
	return oracles, infos, nil
}
