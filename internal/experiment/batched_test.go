package experiment

import (
	"reflect"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/sim"
)

// TestBatchedCampaignBitIdentical is the Table-II-level proof for the
// batched-inference engine mode: the same campaign, persisted to a
// store, must produce byte-identical episode records and aggregates at
// every (workers, episode-batch) combination — lockstep lanes and
// coalesced oracle queries change scheduling and arithmetic batching,
// never results. Run with -race (the CI race job does) to double as
// the lane-isolation proof.
func TestBatchedCampaignBitIdentical(t *testing.T) {
	oracles := testOracles()
	c := Campaign{
		Name:               "batched-iso",
		Scenario:           scenario.DS2,
		Mode:               core.ModeSmart,
		PreferDisappearFor: sim.ClassPedestrian,
		ExpectCrashes:      true,
	}
	const runs = 10
	const baseSeed = 4400

	type combo struct{ workers, batch int }
	combos := []combo{{1, 1}, {4, 1}, {1, 4}, {2, 4}, {4, 8}}

	var refStore *results.MemStore
	var refRec results.CampaignRecord
	for _, cb := range combos {
		st := results.NewMemStore()
		eng := engine.New(engine.WithWorkers(cb.workers), engine.WithEpisodeBatch(cb.batch))
		res, err := RunCampaignOn(eng, c, runs, baseSeed, oracles, WithSink(st))
		if err != nil {
			t.Fatalf("workers=%d batch=%d: %v", cb.workers, cb.batch, err)
		}
		if refStore == nil {
			refStore, refRec = st, res.CampaignRecord
			continue
		}
		if !reflect.DeepEqual(res.CampaignRecord, refRec) {
			t.Errorf("workers=%d batch=%d: aggregate differs from unbatched single-worker run:\ngot:  %+v\nwant: %+v",
				cb.workers, cb.batch, res.CampaignRecord, refRec)
		}
		got, err := st.Episodes(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refStore.Episodes(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d batch=%d: stored episode records differ from baseline", cb.workers, cb.batch)
		}
	}
}

// TestBatchedGoldenCampaignIdentical covers the no-oracle path under
// lanes: golden episodes never query, so the batcher must stay
// pass-through and aggregates must match the unbatched run.
func TestBatchedGoldenCampaignIdentical(t *testing.T) {
	const runs = 8
	base, err := RunGoldenOn(engine.New(engine.WithWorkers(1)), scenario.DS1, runs, 91)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunGoldenOn(engine.New(engine.WithWorkers(2), engine.WithEpisodeBatch(4)), scenario.DS1, runs, 91)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.CampaignRecord, batched.CampaignRecord) {
		t.Errorf("golden aggregate differs under episode lanes:\nbatched: %+v\nplain:   %+v",
			batched.CampaignRecord, base.CampaignRecord)
	}
}
