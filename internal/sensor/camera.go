package sensor

import (
	"math"
	"sort"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
)

// Camera is the EV's front camera: a pinhole model mounted at the front
// bumper that renders actor silhouettes into a grayscale raster. The
// raster — not the ground-truth boxes — is what the object detector
// consumes and what the trajectory hijacker perturbs, preserving the
// paper's pixel-level attack path.
type Camera struct {
	// W, H are the raster dimensions in pixels.
	W, H int
	// F is the focal length in pixels.
	F float64
	// MountHeight is the optical-center height above ground in meters.
	MountHeight float64
	// MinDepth and MaxDepth bound the rendered depth range in meters.
	MinDepth, MaxDepth float64
	// Foreground is the silhouette intensity; Background the empty-road
	// intensity. The detector thresholds between them.
	Foreground, Background float64
}

// DefaultCamera returns the camera used across the reproduction:
// 192x108 pixels (1/10 of the paper's 1920x1080) with a ~60 degree
// horizontal field of view.
func DefaultCamera() *Camera {
	w := 192
	return &Camera{
		W: w, H: 108,
		F:           float64(w) / 2 / math.Tan(30*math.Pi/180),
		MountHeight: 1.4,
		MinDepth:    3,
		MaxDepth:    130,
		Foreground:  0.9,
		Background:  0.05,
	}
}

// Projection is the ground-truth image-space footprint of one actor,
// used as labels for detector characterization and never shown to the
// ADS-side detector.
type Projection struct {
	ID    sim.ActorID
	Class sim.Class
	Box   geom.Rect // pixel coordinates
	Depth float64   // meters ahead of the camera
}

// Frame is one captured camera frame.
type Frame struct {
	Index int
	Image *Image
	// Truth holds the ground-truth projections of every visible actor,
	// ordered far to near (render order).
	Truth []Projection
}

// Project computes the image-space bounding box of an object at
// relative ground position rel (x ahead of the camera, y to the right)
// with the given size. ok is false when the object is outside the
// camera's depth range or entirely off-frame.
func (c *Camera) Project(rel geom.Vec2, size sim.Size) (geom.Rect, bool) {
	depth := rel.X
	if depth < c.MinDepth || depth > c.MaxDepth {
		return geom.Rect{}, false
	}
	cx, cy := float64(c.W)/2, float64(c.H)/2
	u := cx + c.F*rel.Y/depth
	wPx := c.F * size.Width / depth
	hPx := c.F * size.Height / depth
	vBottom := cy + c.F*c.MountHeight/depth
	box := geom.R(u-wPx/2, vBottom-hPx, wPx, hPx)
	if box.Intersect(geom.R(0, 0, float64(c.W), float64(c.H))).Empty() {
		return geom.Rect{}, false
	}
	return box, true
}

// BackProject recovers the relative ground position of an object from
// its image bounding box, inverting Project using the box's bottom
// center (the transformation step "T" in the paper's Fig. 1). ok is
// false for boxes whose bottom edge is above the horizon.
func (c *Camera) BackProject(box geom.Rect) (rel geom.Vec2, ok bool) {
	cx, cy := float64(c.W)/2, float64(c.H)/2
	vBottom := box.Min.Y + box.H
	if vBottom <= cy+1e-9 {
		return geom.Vec2{}, false
	}
	depth := c.F * c.MountHeight / (vBottom - cy)
	u := box.Min.X + box.W/2
	return geom.V(depth, (u-cx)*depth/c.F), true
}

// WidthFromBox recovers the metric width of an object from its pixel
// box and depth.
func (c *Camera) WidthFromBox(box geom.Rect, depth float64) float64 {
	return box.W * depth / c.F
}

// BoxClipped reports whether a detected box touches the left, right or
// bottom raster border. Clipped boxes back-project unreliably: the
// visible center no longer matches the physical center (side clip) or
// the ground contact line is off-frame (bottom clip).
func (c *Camera) BoxClipped(box geom.Rect) bool {
	return box.Min.X <= 1 || box.Min.X+box.W >= float64(c.W)-1 ||
		box.Min.Y+box.H >= float64(c.H)-1
}

// CaptureBuffer owns the raster, the ground-truth slice and the sort
// scratch one camera capture needs, so the per-frame render reuses one
// image allocation for a whole episode (at 192x108 float64 pixels a
// fresh raster per frame was ~166 KB of garbage 15 times per simulated
// second — the single largest GC source in the frame loop).
type CaptureBuffer struct {
	frame  Frame
	rel    []sim.RelState
	sorter relDepthSorter
}

// relDepthSorter orders relative states far to near (render order).
// It implements sort.Interface on a struct pointer so sorting performs
// no interface-conversion allocation; the comparison is identical to
// the historical sort.Slice call, so the render order — and therefore
// every rendered pixel — is unchanged.
type relDepthSorter struct{ rel []sim.RelState }

func (s *relDepthSorter) Len() int           { return len(s.rel) }
func (s *relDepthSorter) Less(i, j int) bool { return s.rel[i].Pos.X > s.rel[j].Pos.X }
func (s *relDepthSorter) Swap(i, j int)      { s.rel[i], s.rel[j] = s.rel[j], s.rel[i] }

// Capture renders the world into a fresh frame. Actors are drawn far to
// near so that nearer objects occlude farther ones, as a real camera
// would observe.
func (c *Camera) Capture(w *sim.World, frameIndex int) *Frame {
	return c.CaptureInto(&CaptureBuffer{}, w, frameIndex)
}

// CaptureInto renders the world into buf's frame, reusing its raster
// and slices: zero heap allocations once the buffer is warm. The
// returned frame (and its image) is valid until the next CaptureInto
// with the same buffer.
func (c *Camera) CaptureInto(buf *CaptureBuffer, w *sim.World, frameIndex int) *Frame {
	img := buf.frame.Image
	if img == nil || img.W != c.W || img.H != c.H {
		img = NewImage(c.W, c.H)
		buf.frame.Image = img
	}
	img.Clear(c.Background)

	rel := w.RelativeInto(buf.rel)
	buf.rel = rel
	buf.sorter.rel = rel
	sort.Sort(&buf.sorter)

	truth := buf.frame.Truth[:0]
	for _, r := range rel {
		box, ok := c.Project(r.Pos, r.Size)
		if !ok {
			continue
		}
		img.FillRectAA(box, c.Foreground)
		truth = append(truth, Projection{ID: r.ID, Class: r.Class, Box: box, Depth: r.Pos.X})
	}
	buf.frame.Index = frameIndex
	buf.frame.Truth = truth
	return &buf.frame
}

// Tap is the man-in-the-middle interception point on the camera link
// (the Argus-style Ethernet tap of the paper's threat model, §III-B).
// A Tap sees — and may rewrite — every frame before the ADS perception
// stack does. The ground-truth labels are NOT exposed to the tap: the
// malware must run its own inference, as in the paper.
type Tap interface {
	// Process may mutate frame.Image in place.
	Process(img *Image, frameIndex int)
}

// NopTap is the benign pass-through tap.
type NopTap struct{}

var _ Tap = NopTap{}

// Process implements Tap.
func (NopTap) Process(*Image, int) {}
