package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

func TestImageSetAt(t *testing.T) {
	im := NewImage(8, 4)
	im.Set(3, 2, 0.7)
	if got := im.At(3, 2); got != 0.7 {
		t.Errorf("At = %v", got)
	}
	// Out-of-bounds access must be safe.
	im.Set(-1, 0, 1)
	im.Set(8, 0, 1)
	im.Set(0, 4, 1)
	if im.At(-1, 0) != 0 || im.At(8, 0) != 0 || im.At(0, 4) != 0 {
		t.Error("out-of-bounds At should be 0")
	}
}

func TestImageFillRectClipped(t *testing.T) {
	im := NewImage(10, 10)
	im.FillRect(geom.R(-5, -5, 8, 8), 1)
	if got := im.MassAbove(im.Bounds(), 0.5); got != 9 {
		t.Errorf("mass = %d, want 9 (3x3 clipped region)", got)
	}
	if im.At(2, 2) != 1 || im.At(3, 3) != 0 {
		t.Error("fill boundary wrong")
	}
}

func TestImageClone(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(1, 1, 0.5)
	c := im.Clone()
	c.Set(1, 1, 0.9)
	if im.At(1, 1) != 0.5 {
		t.Error("clone aliases parent")
	}
}

func TestProjectBackProjectRoundTrip(t *testing.T) {
	c := DefaultCamera()
	f := func(depthRaw, latRaw uint8) bool {
		depth := 5 + float64(depthRaw%80) // 5..85 m
		lat := float64(latRaw)/255*8 - 4  // -4..4 m
		box, ok := c.Project(geom.V(depth, lat), sim.SizeCar)
		if !ok {
			return true // off-frame is acceptable
		}
		rel, ok := c.BackProject(box)
		if !ok {
			return false
		}
		return math.Abs(rel.X-depth) < 0.25 && math.Abs(rel.Y-lat) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectFartherIsSmaller(t *testing.T) {
	c := DefaultCamera()
	near, ok1 := c.Project(geom.V(20, 0), sim.SizeCar)
	far, ok2 := c.Project(geom.V(60, 0), sim.SizeCar)
	if !ok1 || !ok2 {
		t.Fatal("both projections should succeed")
	}
	if near.W <= far.W || near.H <= far.H {
		t.Errorf("near %v should be larger than far %v", near, far)
	}
}

func TestProjectDepthBounds(t *testing.T) {
	c := DefaultCamera()
	if _, ok := c.Project(geom.V(1, 0), sim.SizeCar); ok {
		t.Error("too-close object should not project")
	}
	if _, ok := c.Project(geom.V(500, 0), sim.SizeCar); ok {
		t.Error("too-far object should not project")
	}
	if _, ok := c.Project(geom.V(20, 100), sim.SizeCar); ok {
		t.Error("far-off-axis object should not project")
	}
}

func TestBackProjectAboveHorizon(t *testing.T) {
	c := DefaultCamera()
	if _, ok := c.BackProject(geom.R(90, 10, 10, 10)); ok {
		t.Error("box above horizon must not back-project")
	}
}

func TestWidthFromBox(t *testing.T) {
	c := DefaultCamera()
	box, ok := c.Project(geom.V(25, 0), sim.SizeCar)
	if !ok {
		t.Fatal("projection failed")
	}
	if got := c.WidthFromBox(box, 25); math.Abs(got-sim.SizeCar.Width) > 1e-9 {
		t.Errorf("width = %v, want %v", got, sim.SizeCar.Width)
	}
}

func newSensorWorld() *sim.World {
	ev := sim.DefaultEV()
	ev.Speed = 10
	return sim.NewWorld(sim.DefaultRoad(), ev)
}

func TestCaptureRendersSilhouette(t *testing.T) {
	w := newSensorWorld()
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(30, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	c := DefaultCamera()
	frame := c.Capture(w, 0)
	if len(frame.Truth) != 1 {
		t.Fatalf("truth count = %d", len(frame.Truth))
	}
	box := frame.Truth[0].Box
	inside := frame.Image.MassAbove(box, 0.5)
	if inside == 0 {
		t.Fatal("silhouette not rendered")
	}
	// Anti-aliased boundary pixels may extend up to one pixel past the
	// exact projection.
	grown := geom.R(box.Min.X-1, box.Min.Y-1, box.W+2, box.H+2)
	outside := frame.Image.MassAbove(frame.Image.Bounds(), 0.5) - frame.Image.MassAbove(grown, 0.5)
	if outside != 0 {
		t.Errorf("%d foreground pixels far outside truth box", outside)
	}
}

func TestCaptureOcclusionOrder(t *testing.T) {
	w := newSensorWorld()
	// Two vehicles dead ahead; the near one fully occludes the far one.
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(60, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(20, 0), Size: sim.SizeBus, Behavior: sim.Parked{}})
	c := DefaultCamera()
	frame := c.Capture(w, 0)
	if len(frame.Truth) != 2 {
		t.Fatalf("truth count = %d", len(frame.Truth))
	}
	// Truth is ordered far to near.
	if frame.Truth[0].Depth < frame.Truth[1].Depth {
		t.Error("truth should be ordered far to near")
	}
}

func TestCaptureSkipsBehind(t *testing.T) {
	w := newSensorWorld()
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(-20, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	frame := DefaultCamera().Capture(w, 0)
	if len(frame.Truth) != 0 {
		t.Error("actor behind the EV must not be captured")
	}
}

func TestLidarClassRanges(t *testing.T) {
	w := newSensorWorld()
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(70, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	w.AddActor(&sim.Actor{Class: sim.ClassPedestrian, Pos: geom.V(70, 2), Size: sim.SizePedestrian, Behavior: sim.Parked{}})
	w.AddActor(&sim.Actor{Class: sim.ClassPedestrian, Pos: geom.V(15, 2), Size: sim.SizePedestrian, Behavior: sim.Parked{}})

	l := NewLidar(nil) // nil RNG: deterministic, no noise, no drops
	dets := l.Scan(w)
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
	for _, d := range dets {
		if d.Class == sim.ClassPedestrian && d.RelPos.X > l.PedestrianRange {
			t.Error("far pedestrian should not register")
		}
	}
}

func TestLidarNoiseWithinReason(t *testing.T) {
	w := newSensorWorld()
	w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(40, 0), Size: sim.SizeCar, Behavior: sim.Parked{}})
	l := NewLidar(stats.NewRNG(11))
	var errs []float64
	for i := 0; i < 500; i++ {
		for _, d := range l.Scan(w) {
			errs = append(errs, d.RelPos.X-40)
		}
	}
	if len(errs) < 400 {
		t.Fatalf("too many drops: %d returns", len(errs))
	}
	if sd := stats.StdDev(errs); sd < 0.05 || sd > 0.4 {
		t.Errorf("noise stddev = %v, want ~0.15", sd)
	}
}

func BenchmarkCapture(b *testing.B) {
	w := newSensorWorld()
	for i := 0; i < 8; i++ {
		w.AddActor(&sim.Actor{Class: sim.ClassVehicle, Pos: geom.V(float64(15+12*i), 0), Size: sim.SizeCar,
			Behavior: sim.Parked{}})
	}
	c := DefaultCamera()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Capture(w, i)
	}
}
