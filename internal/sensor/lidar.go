package sensor

import (
	"github.com/robotack/robotack/internal/geom"
	"github.com/robotack/robotack/internal/sim"
	"github.com/robotack/robotack/internal/stats"
)

// Lidar models the roof LiDAR as a range sensor with per-class
// registration distance. The paper observes (§VI-C) that "LiDAR-based
// object detection fails to register pedestrians at a higher
// longitudinal distance, while recognizing vehicles at the same
// distance"; that asymmetry — pedestrians are camera-only until they
// are close — is the mechanism that makes pedestrians easier to attack,
// and it is modelled here directly.
type Lidar struct {
	// VehicleRange and PedestrianRange are the maximum depths at which
	// the LiDAR pipeline registers objects of each class.
	VehicleRange    float64
	PedestrianRange float64
	// Sigma is the Gaussian position noise (meters, per axis).
	Sigma float64
	// DropProb is the per-frame probability that a registered object
	// produces no return (occlusion flicker, segmentation failure).
	DropProb float64

	rng *stats.RNG
	out []Detection    // per-frame output scratch
	rel []sim.RelState // per-frame ground-truth scratch
}

// NewLidar returns a LiDAR with the default registration model.
func NewLidar(rng *stats.RNG) *Lidar {
	return &Lidar{
		VehicleRange:    90,
		PedestrianRange: 45,
		Sigma:           0.15,
		DropProb:        0.02,
		rng:             rng,
	}
}

// Detection is one LiDAR-registered object in the EV frame.
type Detection struct {
	// TruthID records which actor produced the return. It is used only
	// by tests and metrics; the fusion stage associates by position.
	TruthID sim.ActorID
	Class   sim.Class
	RelPos  geom.Vec2 // noisy position relative to the EV
	Size    sim.Size
}

// Reset re-seeds the LiDAR's noise stream (episode-scratch reuse).
func (l *Lidar) Reset(rng *stats.RNG) { l.rng = rng }

// rangeFor returns the registration range for a class.
func (l *Lidar) rangeFor(c sim.Class) float64 {
	if c == sim.ClassPedestrian {
		return l.PedestrianRange
	}
	return l.VehicleRange
}

// Scan returns the LiDAR detections for the current world state.
// Objects behind the EV or beyond their class's registration range
// produce no return. The returned slice is reused by the next Scan
// call.
func (l *Lidar) Scan(w *sim.World) []Detection {
	out := l.out[:0]
	l.rel = w.RelativeInto(l.rel)
	for _, r := range l.rel {
		if r.Pos.X < 1 || r.Pos.X > l.rangeFor(r.Class) {
			continue
		}
		if l.rng != nil && l.rng.Bernoulli(l.DropProb) {
			continue
		}
		pos := r.Pos
		if l.rng != nil && l.Sigma > 0 {
			pos = pos.Add(geom.V(l.rng.Normal(0, l.Sigma), l.rng.Normal(0, l.Sigma)))
		}
		out = append(out, Detection{TruthID: r.ID, Class: r.Class, RelPos: pos, Size: r.Size})
	}
	l.out = out
	return out
}
