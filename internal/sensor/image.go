// Package sensor models the EV's sensors: the front camera (a pinhole
// model rendering actor silhouettes into a grayscale raster — the pixel
// surface the trajectory hijacker perturbs) and the LiDAR (a range
// sensor with per-class registration distance, reproducing the paper's
// observation that LiDAR registers vehicles much farther out than
// pedestrians).
package sensor

import (
	"math"

	"github.com/robotack/robotack/internal/geom"
)

// Image is a grayscale raster with intensities in [0, 1]. The camera
// renders into it and the detector and the trajectory hijacker read and
// write it. 192x108 cells stand in for the paper's 1920x1080 camera
// (DESIGN.md §5).
//
// The image tracks the dirty window of writes since the last Clear:
// when the base intensity is known, every pixel outside the window
// still holds it. Silhouettes cover a tiny fraction of the raster, so
// the window lets Clear rewrite only what the previous frame painted
// and lets the detector's connected-component scan skip the empty sky
// and road — the two biggest CPU sinks of the frame loop. All writes
// go through Set/Clear/FillRect/FillRectAA, which maintain the window.
type Image struct {
	W, H int
	Pix  []float64

	// base is the intensity every pixel outside the dirty window holds
	// (valid while baseKnown); dx0..dy1 is the half-open dirty window.
	base               float64
	baseKnown          bool
	dx0, dy0, dx1, dy1 int
}

// NewImage allocates a zeroed W x H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h), baseKnown: true}
}

// markDirty grows the dirty window to include the clipped half-open
// rectangle [x0,x1) x [y0,y1).
func (im *Image) markDirty(x0, y0, x1, y1 int) {
	if x1 <= x0 || y1 <= y0 {
		return
	}
	if im.dx1 <= im.dx0 || im.dy1 <= im.dy0 { // empty window
		im.dx0, im.dy0, im.dx1, im.dy1 = x0, y0, x1, y1
		return
	}
	if x0 < im.dx0 {
		im.dx0 = x0
	}
	if y0 < im.dy0 {
		im.dy0 = y0
	}
	if x1 > im.dx1 {
		im.dx1 = x1
	}
	if y1 > im.dy1 {
		im.dy1 = y1
	}
}

// ForegroundWindow returns a half-open window guaranteed to contain
// every pixel with intensity >= th. It is the whole raster unless the
// untouched-background intensity is known to be below th, in which
// case it is the dirty window of writes since the last Clear.
func (im *Image) ForegroundWindow(th float64) (x0, y0, x1, y1 int) {
	if im.baseKnown && im.base < th {
		return im.dx0, im.dy0, im.dx1, im.dy1
	}
	return 0, 0, im.W, im.H
}

// At returns the intensity at (x, y), or 0 outside the raster.
func (im *Image) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the intensity at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
	im.markDirty(x, y, x+1, y+1)
}

// Clear resets every pixel to v. When v is the base the raster was
// last cleared to, only the dirty window is rewritten.
func (im *Image) Clear(v float64) {
	if im.baseKnown && v == im.base {
		for y := im.dy0; y < im.dy1; y++ {
			row := y * im.W
			for x := im.dx0; x < im.dx1; x++ {
				im.Pix[row+x] = v
			}
		}
	} else {
		for i := range im.Pix {
			im.Pix[i] = v
		}
		im.base = v
		im.baseKnown = true
	}
	im.dx0, im.dy0, im.dx1, im.dy1 = 0, 0, 0, 0
}

// FillRect paints the axis-aligned pixel rectangle r with intensity v,
// clipped to the raster.
func (im *Image) FillRect(r geom.Rect, v float64) {
	x0, y0, x1, y1 := clipRect(r, im.W, im.H)
	for y := y0; y < y1; y++ {
		row := y * im.W
		for x := x0; x < x1; x++ {
			im.Pix[row+x] = v
		}
	}
	im.markDirty(x0, y0, x1, y1)
}

// FillRectAA paints r with intensity v using box-filter anti-aliasing:
// boundary pixels blend toward v in proportion to their coverage. The
// fractional edge intensities let the detector recover object borders
// with sub-pixel precision, standing in for the 10x finer pixel grid of
// the paper's 1920x1080 camera.
func (im *Image) FillRectAA(r geom.Rect, v float64) {
	yLo, yHi := r.Min.Y, r.Min.Y+r.H
	xLo, xHi := r.Min.X, r.Min.X+r.W
	y0 := int(math.Floor(yLo))
	y1 := int(math.Ceil(yHi))
	x0 := int(math.Floor(xLo))
	x1 := int(math.Ceil(xHi))
	if y0 < 0 {
		y0 = 0
	}
	if x0 < 0 {
		x0 = 0
	}
	if y1 > im.H {
		y1 = im.H
	}
	if x1 > im.W {
		x1 = im.W
	}
	for y := y0; y < y1; y++ {
		cy := overlap(float64(y), float64(y)+1, yLo, yHi)
		row := y * im.W
		for x := x0; x < x1; x++ {
			c := cy * overlap(float64(x), float64(x)+1, xLo, xHi)
			if c <= 0 {
				continue
			}
			p := &im.Pix[row+x]
			*p = (1-c)*(*p) + c*v
		}
	}
	im.markDirty(x0, y0, x1, y1)
}

// overlap returns the length of the intersection of [a0,a1] and [b0,b1].
func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := math.Max(a0, b0), math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Clone returns a deep copy of the image, dirty window included.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	c.base, c.baseKnown = im.base, im.baseKnown
	c.dx0, c.dy0, c.dx1, c.dy1 = im.dx0, im.dy0, im.dx1, im.dy1
	return c
}

// Bounds returns the raster rectangle in pixel coordinates.
func (im *Image) Bounds() geom.Rect {
	return geom.R(0, 0, float64(im.W), float64(im.H))
}

// MassAbove returns the number of pixels in r with intensity >= thresh.
func (im *Image) MassAbove(r geom.Rect, thresh float64) int {
	x0, y0, x1, y1 := clipRect(r, im.W, im.H)
	n := 0
	for y := y0; y < y1; y++ {
		row := y * im.W
		for x := x0; x < x1; x++ {
			if im.Pix[row+x] >= thresh {
				n++
			}
		}
	}
	return n
}

func clipRect(r geom.Rect, w, h int) (x0, y0, x1, y1 int) {
	x0 = int(r.Min.X)
	y0 = int(r.Min.Y)
	x1 = int(r.Min.X + r.W)
	y1 = int(r.Min.Y + r.H)
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	return x0, y0, x1, y1
}
