package segstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/robotack/robotack/internal/results"
)

// MigrateFromJSONL streams a FileStore log into a fresh segstore
// directory — the one-shot `robotack-store migrate` path. Records
// stream line by line (a million-episode log never loads whole);
// episodes append in file order, so a log whose episodes were written
// in index order (the normal case) lands directly on the sorted fast
// path. The destination must be empty or nonexistent: migration never
// merges into live data. A torn final line in the source is tolerated,
// matching the readers.
func MigrateFromJSONL(src, dst string, opts ...Option) (migrated results.StoreStats, err error) {
	fi, statErr := os.Stat(dst)
	if statErr == nil && fi.IsDir() {
		entries, err := os.ReadDir(dst)
		if err != nil {
			return results.StoreStats{}, fmt.Errorf("segstore: migrate: %w", err)
		}
		if len(entries) > 0 {
			return results.StoreStats{}, fmt.Errorf("segstore: migrate: destination %s is not empty", dst)
		}
	} else if statErr == nil {
		return results.StoreStats{}, fmt.Errorf("segstore: migrate: destination %s exists and is not a directory", dst)
	}
	f, err := os.Open(src)
	if err != nil {
		return results.StoreStats{}, fmt.Errorf("segstore: migrate: %w", err)
	}
	defer f.Close()

	store, err := Open(dst, opts...)
	if err != nil {
		return results.StoreStats{}, err
	}
	defer func() {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	type envelope struct {
		Kind     string                  `json:"kind"`
		Episode  *results.EpisodeRecord  `json:"episode,omitempty"`
		Campaign *results.CampaignRecord `json:"campaign,omitempty"`
	}
	r := bufio.NewReaderSize(f, 1<<20)
	lineno := 0
	for {
		line, rerr := r.ReadBytes('\n')
		atEOF := errors.Is(rerr, io.EOF)
		if rerr != nil && !atEOF {
			return results.StoreStats{}, fmt.Errorf("segstore: migrate: read %s: %w", src, rerr)
		}
		lineno++
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var l envelope
			if jerr := json.Unmarshal(trimmed, &l); jerr != nil {
				if atEOF {
					break // torn tail from a crashed writer: tolerated
				}
				return results.StoreStats{}, fmt.Errorf("segstore: migrate: %s:%d: %w", src, lineno, jerr)
			}
			switch {
			case l.Kind == "episode" && l.Episode != nil:
				if aerr := store.Append(*l.Episode); aerr != nil {
					return results.StoreStats{}, fmt.Errorf("segstore: migrate: %s:%d: %w", src, lineno, aerr)
				}
			case l.Kind == kindCampaign && l.Campaign != nil:
				if perr := store.PutCampaign(*l.Campaign); perr != nil {
					return results.StoreStats{}, fmt.Errorf("segstore: migrate: %s:%d: %w", src, lineno, perr)
				}
			default:
				return results.StoreStats{}, fmt.Errorf("segstore: migrate: %s:%d: unknown record kind %q", src, lineno, l.Kind)
			}
		}
		if atEOF {
			break
		}
	}
	if err := store.Sync(); err != nil {
		return results.StoreStats{}, err
	}
	return store.Stats()
}
