package segstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/results/storetest"
)

// smallSeg forces multi-segment shards with test-sized data.
const smallSeg = 2 << 10

func openSmall(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, WithSegmentBytes(smallSeg))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corruptStore simulates a kill -9 mid-append on both append targets:
// a torn record at the end of the torn campaign's active segment and
// of the campaigns log.
func corruptStore(t *testing.T, dir string) {
	t.Helper()
	appendGarbage := func(path, garbage string) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteString(garbage); err != nil {
			t.Fatal(err)
		}
	}
	appendGarbage(filepath.Join(dir, campaignsFile), `{"kind":"campaign","campaign":{"na`)
	sh := filepath.Join(dir, shardsDir, escapeName("torn"))
	gen, err := readCurrent(sh)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegs(filepath.Join(sh, genName(gen)))
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no segments in torn shard: %v", err)
	}
	active := seqs[len(seqs)-1]
	appendGarbage(filepath.Join(sh, genName(gen), segName(active)), `{"campaign":"torn","ind`)
}

func TestSegstoreSuite(t *testing.T) {
	storetest.Run(t, func(t *testing.T) results.Store {
		s := openSmall(t, t.TempDir())
		t.Cleanup(func() { s.Close() })
		return s
	})
	storetest.RunDurable(t, func(t *testing.T, dir string) results.DurableStore {
		return openSmall(t, dir)
	}, corruptStore)
}

func TestDiffParityAcrossBackends(t *testing.T) {
	storetest.RunDiffParity(t, map[string]storetest.Factory{
		"mem": func(t *testing.T) results.Store { return results.NewMemStore() },
		"file": func(t *testing.T) results.Store {
			s, err := results.Open(filepath.Join(t.TempDir(), "store.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		},
		"segstore": func(t *testing.T) results.Store {
			s := openSmall(t, t.TempDir())
			t.Cleanup(func() { s.Close() })
			return s
		},
	})
}

func TestNameEscapingRoundTrip(t *testing.T) {
	cases := []string{
		"", "plain", "with space", "a/b/c", "..", ".hidden", "%41", "δ-κ", "camp:v2|x",
		strings.Repeat("é", 20),
	}
	seen := map[string]bool{}
	for _, name := range cases {
		esc := escapeName(name)
		if strings.ContainsAny(esc, "/\\: |") || strings.HasPrefix(esc, ".") {
			t.Errorf("escapeName(%q) = %q is not filesystem-safe", name, esc)
		}
		if seen[esc] {
			t.Errorf("escapeName(%q) = %q collides with another case", name, esc)
		}
		seen[esc] = true
		back, err := unescapeName(esc)
		if err != nil {
			t.Fatalf("unescapeName(%q): %v", esc, err)
		}
		if back != name {
			t.Errorf("round trip %q -> %q -> %q", name, esc, back)
		}
	}
	for _, bad := range []string{"%", "%4", "%GG", "abc%"} {
		if bad == "%" {
			continue // the empty-name encoding, valid
		}
		if _, err := unescapeName(bad); err == nil {
			t.Errorf("unescapeName(%q) accepted a malformed escape", bad)
		}
	}
}

func TestIdxCodecRoundTrip(t *testing.T) {
	agg := results.NewCampaign("cdc", "DS-2", 1, true, 0)
	for i := 0; i < 9; i++ {
		agg.Fold(storetest.Episode("cdc", i))
	}
	m := segMeta{seq: 3, n: 9, minIdx: 0, maxIdx: 8, bytes: 12345, sorted: true, hasAgg: true, agg: &agg}
	got, err := decodeIdx(encodeIdx(&m), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.n != m.n || got.minIdx != m.minIdx || got.maxIdx != m.maxIdx ||
		got.bytes != m.bytes || !got.sorted || !got.hasAgg {
		t.Fatalf("header changed: %+v", got)
	}
	if !reflect.DeepEqual(got.agg, &agg) {
		t.Fatalf("aggregate changed:\n got %+v\nwant %+v", got.agg, &agg)
	}

	sealed := []segMeta{m, {seq: 4, n: 2, minIdx: 9, maxIdx: 10, bytes: 77, sorted: true, hasAgg: true}}
	metas, err := decodeManifest(encodeManifest(sealed))
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].n != 9 || metas[1].minIdx != 9 || !metas[1].hasAgg {
		t.Fatalf("manifest changed: %+v", metas)
	}
}

func TestIdxCodecRejectsCorruption(t *testing.T) {
	m := segMeta{seq: 0, n: 1, minIdx: 5, maxIdx: 5, bytes: 10, sorted: true}
	raw := encodeIdx(&m)
	for _, mutate := range []struct {
		name string
		f    func([]byte) []byte
	}{
		{"bitflip", func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x40; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"empty", func([]byte) []byte { return nil }},
		{"trailing", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xFF) }},
	} {
		if _, err := decodeIdx(mutate.f(raw), 0); err == nil {
			t.Errorf("%s index accepted", mutate.name)
		}
	}
	if _, err := decodeManifest(encodeIdx(&m)); err == nil {
		t.Error("manifest decoder accepted an idx payload (magic not checked)")
	}
}

// TestOpenReadsIndexesNotRecords pins the tentpole property
// deterministically: a cleanly closed store reopens from metadata
// alone, no matter how many records it holds.
func TestOpenReadsIndexesNotRecords(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	for _, c := range []string{"a", "b"} {
		storetest.Fill(t, s, c, 400) // hundreds of records, several segments each
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = openSmall(t, dir)
	st := s.OpenStats()
	if st.ScannedBytes != 0 {
		t.Errorf("clean reopen scanned %d raw bytes, want 0 (index-driven open)", st.ScannedBytes)
	}
	if st.Segments < 6 {
		t.Errorf("expected multi-segment shards, got %d segments", st.Segments)
	}
	if st.IndexBytes <= 0 {
		t.Errorf("open read no index bytes: %+v", st)
	}
	eps, err := s.Episodes("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 400 {
		t.Fatalf("lost records: %d, want 400", len(eps))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash (no Close, so no active-idx cache) forces a rescan of the
	// active tails only — bounded by the roll threshold, not the store.
	for _, c := range []string{"a", "b"} {
		sh := filepath.Join(dir, shardsDir, escapeName(c))
		gen, err := readCurrent(sh)
		if err != nil {
			t.Fatal(err)
		}
		seqs, err := listSegs(filepath.Join(sh, genName(gen)))
		if err != nil {
			t.Fatal(err)
		}
		os.Remove(filepath.Join(sh, genName(gen), idxName(seqs[len(seqs)-1])))
	}
	s = openSmall(t, dir)
	defer s.Close()
	st = s.OpenStats()
	if st.ScannedBytes == 0 {
		t.Error("expected an active-tail rescan after losing the close cache")
	}
	if st.ScannedBytes > 2*smallSeg+2048 {
		t.Errorf("crash recovery scanned %d bytes; want bounded by the two active tails (~%d)", st.ScannedBytes, 2*smallSeg)
	}
}

// TestManifestRebuiltFromIdx covers the middle recovery tier: a stale
// or missing MANIFEST falls back to per-segment indexes without
// touching records.
func TestManifestRebuiltFromIdx(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	storetest.Fill(t, s, "m", 400)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sh := filepath.Join(dir, shardsDir, escapeName("m"))
	gen, err := readCurrent(sh)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(sh, genName(gen), manifestFile)); err != nil {
		t.Fatal(err)
	}
	s = openSmall(t, dir)
	defer s.Close()
	if st := s.OpenStats(); st.ScannedBytes != 0 {
		t.Errorf("manifest rebuild scanned %d raw bytes, want 0 (idx fallback)", st.ScannedBytes)
	}
	if _, err := os.Stat(filepath.Join(sh, genName(gen), manifestFile)); err != nil {
		t.Errorf("writer did not repair the manifest: %v", err)
	}
	eps, err := s.Episodes("m")
	if err != nil || len(eps) != 400 {
		t.Fatalf("records harmed by manifest loss: %d, %v", len(eps), err)
	}
}

// TestResumeParityWithFileStore is the kill -9 resume scenario: both
// backends ingest the same interrupted-then-resumed record stream
// (duplicate re-appends included) and must agree bit for bit.
func TestResumeParityWithFileStore(t *testing.T) {
	dir := t.TempDir()
	seg := openSmall(t, dir)
	file, err := results.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()

	stores := []results.Store{seg, file}
	appendBoth := func(ep results.EpisodeRecord) {
		for _, s := range stores {
			if err := s.Append(ep); err != nil {
				t.Fatal(err)
			}
		}
	}
	// First run: 120 episodes, killed before the aggregate lands.
	for i := 0; i < 120; i++ {
		appendBoth(storetest.Episode("resume", i))
	}
	// Simulate the segstore process dying: reopen (no clean Close; the
	// torn tail is a separate test — here the kill hit between lines).
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	seg = openSmall(t, dir)
	defer seg.Close()
	stores[0] = seg
	// Resume re-runs a window of episodes (the retry overlap), then
	// finishes the campaign and stores the aggregate.
	var all []results.EpisodeRecord
	for i := 0; i < 200; i++ {
		all = append(all, storetest.Episode("resume", i))
	}
	for i := 100; i < 200; i++ {
		appendBoth(all[i])
	}
	meta := results.NewCampaign("resume", "DS-2", all[0].Mode, all[0].ExpectCrashes, 7)
	rec := results.Aggregate(meta, all)
	for _, s := range stores {
		if err := s.PutCampaign(rec); err != nil {
			t.Fatal(err)
		}
	}

	segEps, err := seg.Episodes("resume")
	if err != nil {
		t.Fatal(err)
	}
	fileEps, err := file.Episodes("resume")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segEps, fileEps) {
		t.Fatalf("episode streams diverge: %d vs %d records", len(segEps), len(fileEps))
	}
	diffs, err := results.Diff(seg, file)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		if !reflect.DeepEqual(d.A, d.B) {
			t.Errorf("aggregates diverge for %s:\n seg %+v\nfile %+v", d.Name, d.A, d.B)
		}
	}
	a, _ := json.Marshal(segEps)
	b, _ := json.Marshal(fileEps)
	if string(a) != string(b) {
		t.Error("episode JSON not byte-identical across backends")
	}
}

// TestCompactionRestoresFastPath drives the out-of-order append path
// and the generation rewrite directly (white-box: the background
// goroutine's work, called synchronously).
func TestCompactionRestoresFastPath(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	defer s.Close()
	storetest.Fill(t, s, "cmp", 150)
	// A worker retry re-appends an old index out of order.
	if err := s.Append(storetest.Episode("cmp", 3)); err != nil {
		t.Fatal(err)
	}
	want, err := s.Episodes("cmp")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := s.getShard("cmp", false)
	if err != nil || sh == nil {
		t.Fatal(err)
	}
	sh.mu.Lock()
	fast := sh.fastPath()
	oldGen := sh.gen
	sh.mu.Unlock()
	if fast {
		t.Fatal("out-of-order append did not break the fast path")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Estimated || st.Episodes != 151 {
		t.Fatalf("pre-compaction stats = %+v, want estimated upper bound 151", st)
	}

	rewrote, err := s.compactShard(sh)
	if err != nil {
		t.Fatal(err)
	}
	if !rewrote {
		t.Error("compactShard reported nothing rewritten")
	}
	sh.mu.Lock()
	fast = sh.fastPath()
	newGen := sh.gen
	sh.mu.Unlock()
	if !fast {
		t.Error("compaction did not restore the fast path")
	}
	if newGen != oldGen+1 {
		t.Errorf("generation = %d, want %d", newGen, oldGen+1)
	}
	if _, err := os.Stat(filepath.Join(dir, shardsDir, escapeName("cmp"), genName(oldGen))); !os.IsNotExist(err) {
		t.Errorf("old generation dir not removed: %v", err)
	}
	got, err := s.Episodes("cmp")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compaction changed the records: %d vs %d", len(got), len(want))
	}
	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Estimated || st.Episodes != 150 {
		t.Fatalf("post-compaction stats = %+v, want exact 150", st)
	}

	// Appending continues normally in the new generation, and a reopen
	// recovers it.
	if err := s.Append(storetest.Episode("cmp", 150)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openSmall(t, dir)
	defer s2.Close()
	eps, err := s2.Episodes("cmp")
	if err != nil || len(eps) != 151 {
		t.Fatalf("reopen after compaction: %d records, %v", len(eps), err)
	}
}

// TestCompactExported drives the `robotack-store compact` entry point:
// only shards off the fast path are rewritten, and a second run is a
// no-op.
func TestCompactExported(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	defer s.Close()
	storetest.Fill(t, s, "dirty", 80)
	storetest.Fill(t, s, "clean", 40)
	if err := s.Append(storetest.Episode("dirty", 2)); err != nil {
		t.Fatal(err)
	}
	want, err := s.Episodes("dirty")
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Compact rewrote %d shards, want 1 (only the out-of-order one)", n)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Estimated || st.Episodes != 120 {
		t.Fatalf("post-compact stats = %+v, want exact 120", st)
	}
	got, err := s.Episodes("dirty")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Compact changed the records")
	}
	if n, err = s.Compact(); err != nil || n != 0 {
		t.Fatalf("second Compact = (%d, %v), want no-op", n, err)
	}

	ro, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Compact(); err == nil {
		t.Error("Compact on a read-only store did not fail")
	}
}

// TestAggregateEpisodesMatchesRawFold checks the partial-aggregate
// merge against results.Aggregate across append patterns.
func TestAggregateEpisodesMatchesRawFold(t *testing.T) {
	check := func(t *testing.T, s *Store, name string) {
		t.Helper()
		got, err := s.AggregateEpisodes(name)
		if err != nil {
			t.Fatal(err)
		}
		eps, err := s.Episodes(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) == 0 {
			if got != nil {
				t.Fatalf("aggregate for empty campaign: %+v", got)
			}
			return
		}
		meta := results.NewCampaign(name, eps[0].Scenario, eps[0].Mode, eps[0].ExpectCrashes, 0)
		want := results.Aggregate(meta, eps)
		if got == nil || !reflect.DeepEqual(*got, want) {
			t.Fatalf("merged aggregate differs from raw fold:\n got %+v\nwant %+v", got, &want)
		}
	}
	t.Run("SortedMultiSegment", func(t *testing.T) {
		s := openSmall(t, t.TempDir())
		defer s.Close()
		for i := 0; i < 300; i++ {
			if err := s.Append(storetest.Episode("x", i)); err != nil {
				t.Fatal(err)
			}
		}
		check(t, s, "x")
	})
	t.Run("OutOfOrder", func(t *testing.T) {
		s := openSmall(t, t.TempDir())
		defer s.Close()
		for i := 0; i < 100; i++ {
			if err := s.Append(storetest.Episode("x", (i*37)%100)); err != nil {
				t.Fatal(err)
			}
		}
		check(t, s, "x")
	})
	t.Run("DuplicateRetries", func(t *testing.T) {
		s := openSmall(t, t.TempDir())
		defer s.Close()
		for i := 0; i < 80; i++ {
			if err := s.Append(storetest.Episode("x", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 40; i < 80; i++ {
			if err := s.Append(storetest.Episode("x", i)); err != nil {
				t.Fatal(err)
			}
		}
		check(t, s, "x")
	})
	t.Run("Empty", func(t *testing.T) {
		s := openSmall(t, t.TempDir())
		defer s.Close()
		check(t, s, "missing")
	})
	t.Run("AfterReopen", func(t *testing.T) {
		dir := t.TempDir()
		s := openSmall(t, dir)
		for i := 0; i < 300; i++ {
			if err := s.Append(storetest.Episode("x", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s = openSmall(t, dir)
		defer s.Close()
		if st := s.OpenStats(); st.ScannedBytes != 0 {
			t.Fatalf("reopen scanned %d bytes", st.ScannedBytes)
		}
		check(t, s, "x") // merged purely from idx-file aggregates
	})
}

// TestIndexCompactness enforces the bytes-per-episode budget on all
// index metadata (satellite: segment indexes must stay a small
// constant factor of the record count, or open stops being cheap).
const maxIndexBytesPerEpisode = 64

func TestIndexCompactness(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 500
	storetest.Fill(t, s, "budget", n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var idxBytes int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, idxSuffix) || d.Name() == manifestFile {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			idxBytes += fi.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const fixedOverhead = 4096 // magics, manifest headers, empty-store floor
	if idxBytes > n*maxIndexBytesPerEpisode+fixedOverhead {
		t.Errorf("index metadata is %d bytes for %d episodes (%.1f B/episode), budget %d B/episode",
			idxBytes, n, float64(idxBytes)/n, maxIndexBytesPerEpisode)
	}
	if idxBytes == 0 {
		t.Error("no index metadata found")
	}
}

func TestMigrateFromJSONL(t *testing.T) {
	srcDir := t.TempDir()
	src := filepath.Join(srcDir, "old.jsonl")
	fs, err := results.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	storetest.Fill(t, fs, "m1", 50)
	storetest.Fill(t, fs, "m2", 30)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn tail in the source must be tolerated.
	f, err := os.OpenFile(src, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"episode","epis`)
	f.Close()

	dst := filepath.Join(t.TempDir(), "segdir")
	st, err := MigrateFromJSONL(src, dst, WithSegmentBytes(smallSeg))
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 2 || st.Episodes != 80 || st.Estimated {
		t.Fatalf("migrate stats = %+v, want exact 2 campaigns / 80 episodes", st)
	}

	seg, err := Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	old, err := results.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := results.Diff(old, seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		if !reflect.DeepEqual(d.A, d.B) {
			t.Errorf("migration changed %s:\n old %+v\n new %+v", d.Name, d.A, d.B)
		}
	}

	// Never merge into live data.
	if _, err := MigrateFromJSONL(src, dst); err == nil {
		t.Error("migrate into a non-empty destination succeeded")
	}
}

func TestDetectFormatAndOpenAny(t *testing.T) {
	tmp := t.TempDir()
	segDir := filepath.Join(tmp, "segdir")
	s := openSmall(t, segDir)
	storetest.Fill(t, s, "d", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	jsonlPath := filepath.Join(tmp, "flat.jsonl")
	fs, err := results.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()

	for _, tc := range []struct {
		path, want string
	}{
		{segDir, results.FormatSegstore},
		{jsonlPath, results.FormatJSONL},
		{filepath.Join(tmp, "new.jsonl"), results.FormatJSONL},
		{filepath.Join(tmp, "newdir"), results.FormatSegstore},
	} {
		got, err := DetectFormat(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("DetectFormat(%s) = %s, want %s", tc.path, got, tc.want)
		}
	}

	ds, err := OpenAny(segDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.(*Store); !ok {
		t.Errorf("OpenAny(dir) returned %T, want *segstore.Store", ds)
	}
	ds.Close()
	ds, err = OpenAny(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.(*results.FileStore); !ok {
		t.Errorf("OpenAny(file) returned %T, want *results.FileStore", ds)
	}
	ds.Close()
}

func TestOpenRefusesForeignDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "precious.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open adopted a non-empty, non-segstore directory")
	}
}

func TestLockExcludesSecondWriterButNotReaders(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	defer s.Close()
	storetest.Fill(t, s, "lk", 10)
	if _, err := Open(dir); err == nil {
		t.Fatal("second writer acquired the store lock")
	}
	ro, err := Load(dir)
	if err != nil {
		t.Fatalf("read-only load blocked by writer lock: %v", err)
	}
	defer ro.Close()
	eps, err := ro.Episodes("lk")
	if err != nil || len(eps) != 10 {
		t.Fatalf("read-only load: %d records, %v", len(eps), err)
	}
	if err := ro.Append(storetest.Episode("lk", 11)); err == nil {
		t.Error("read-only store accepted an append")
	}
	if err := ro.PutCampaign(results.NewCampaign("lk", "DS-2", 1, true, 0)); err == nil {
		t.Error("read-only store accepted a campaign")
	}
}

func TestCampaignLogCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	defer s.Close()
	rec := results.NewCampaign("churn", "DS-2", 1, true, 0)
	for i := 0; i < 4000; i++ {
		rec.Runs = i
		if err := s.PutCampaign(rec); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, campaignsFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > logCompactMin*2 {
		t.Errorf("campaigns log grew to %d bytes despite last-wins compaction", fi.Size())
	}
	recs, err := s.Campaigns()
	if err != nil || len(recs) != 1 || recs[0].Runs != 3999 {
		t.Fatalf("log compaction lost the latest upsert: %+v, %v", recs, err)
	}
}

func TestConcurrentAppendsAndQueries(t *testing.T) {
	s := openSmall(t, t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("conc-%d", w%2) // two goroutines share each campaign
			for i := 0; i < 100; i++ {
				if err := s.Append(storetest.Episode(name, w*100+i)); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if _, err := s.Episodes(name); err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Stats(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, name := range []string{"conc-0", "conc-1"} {
		eps, err := s.Episodes(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 200 {
			t.Errorf("%s: %d episodes, want 200", name, len(eps))
		}
	}
}
