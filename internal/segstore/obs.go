package segstore

// Store instrumentation: append/roll/compaction lifecycle counters,
// the index-hit vs raw-scan split that shows whether queries are
// actually riding the metadata, and live size gauges. Observational
// only — on-disk bytes are identical with metrics on or off.

import (
	"github.com/robotack/robotack/internal/obs"
)

var (
	mAppends = obs.NewCounter("robotack_segstore_appends_total",
		"Episode records appended across all segmented stores.")
	mRolls = obs.NewCounter("robotack_segstore_rolls_total",
		"Active segments sealed after reaching the size threshold.")
	mCompactions = obs.NewCounter("robotack_segstore_compactions_total",
		"Shard generation rewrites completed by the background compactor.")
	mIndexHits = obs.NewCounter("robotack_segstore_index_hits_total",
		"Queries answered from segment metadata (sorted fast path or partial aggregates).")
	mRawScans = obs.NewCounter("robotack_segstore_raw_scans_total",
		"Queries that had to re-parse segment records (fast path unavailable).")
	mOpenScanned = obs.NewCounter("robotack_segstore_open_scanned_bytes_total",
		"Raw segment bytes parsed during store open (un-indexed tails only).")
	gSegments = obs.NewGauge("robotack_segstore_segments",
		"Segment files currently live across all open segmented stores.")
	gBytes = obs.NewGauge("robotack_segstore_bytes",
		"Record bytes currently stored across all open segmented stores.")
)

func count(c *obs.Counter) {
	if obs.Enabled() {
		c.Add(1)
	}
}

func countN(c *obs.Counter, n int64) {
	if obs.Enabled() && n > 0 {
		c.Add(uint64(n))
	}
}

func gaugeAdd(g *obs.Gauge, d float64) {
	if obs.Enabled() && d != 0 {
		g.Add(d)
	}
}
