package segstore

import (
	"fmt"
	"strings"
)

// Campaign names are user-chosen strings; shard directories must be
// filesystem-safe on every platform and reversible, so EpisodeCampaigns
// can list campaigns from the directory tree alone. The escaping is
// percent-encoding with a conservative safe set: ASCII letters, digits,
// '.', '_' and '-' pass through (except a leading '.', which would
// collide with hidden/reserved names), everything else — including '/',
// '%' and all non-ASCII bytes — becomes %XX.

const nameSafe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"

// escapeName maps a campaign name to its shard directory name. The
// empty name encodes as a lone "%", which no non-empty name produces
// (every escape is a full %XX pair).
func escapeName(name string) string {
	if name == "" {
		return "%"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if strings.IndexByte(nameSafe, c) >= 0 && !(i == 0 && c == '.') {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	return b.String()
}

// unescapeName inverts escapeName.
func unescapeName(dir string) (string, error) {
	if dir == "%" {
		return "", nil
	}
	var b strings.Builder
	for i := 0; i < len(dir); i++ {
		c := dir[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(dir) {
			return "", fmt.Errorf("segstore: truncated escape in shard dir %q", dir)
		}
		hi, lo := hexVal(dir[i+1]), hexVal(dir[i+2])
		if hi < 0 || lo < 0 {
			return "", fmt.Errorf("segstore: bad escape in shard dir %q", dir)
		}
		b.WriteByte(byte(hi<<4 | lo))
		i += 2
	}
	return b.String(), nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}
