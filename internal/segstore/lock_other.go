//go:build !unix

package segstore

import "os"

// lockFile is a no-op where flock is unavailable; single-writer
// discipline on the store dir is then the operator's responsibility.
func lockFile(*os.File) error { return nil }
