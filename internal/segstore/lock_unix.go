//go:build unix

package segstore

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking flock on the store's lock
// file: two writers on one store directory would interleave segment
// appends and race the compactor's generation swap. The lock dies with
// the file descriptor, so a kill -9 never leaves a stale lock behind
// (the same discipline as runq's queue.lock).
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("store dir is locked by another process: %w", err)
	}
	return nil
}
