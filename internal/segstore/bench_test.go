package segstore

// Open-time and query-latency benchmarks backing the tentpole claim:
// segstore's open cost tracks index size, not record count, so growing
// a store 100× leaves open time (and single-campaign reads) flat while
// the JSONL FileStore's open grows linearly. CI runs these and asserts
// the flatness ratio (see .github/workflows/ci.yml) and benchguard
// budgets (BENCH_after.json).
//
// Store fixtures are built once per process per size and reused across
// repetitions; TestMain removes them.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/results"
)

var (
	benchMu   sync.Mutex
	benchRoot string
	benchDirs = map[string]string{}
)

func TestMain(m *testing.M) {
	code := m.Run()
	if benchRoot != "" {
		os.RemoveAll(benchRoot)
	}
	os.Exit(code)
}

func benchEpisode(campaign string, idx int) results.EpisodeRecord {
	return results.EpisodeRecord{
		V:        results.Version,
		Campaign: campaign,
		Index:    idx,
		Seed:     int64(idx),
		Scenario: "DS-2",
		Mode:     core.ModeSmart,
		Launched: true,
		K:        14,
		EB:       idx%2 == 0,
		MinDelta: float64(idx) * 0.25,
		Frames:   450,
	}
}

// benchFixture builds (once per process) a store of n episodes spread
// round-robin over a fixed set of campaigns (so 100× more episodes
// means 100× more records and segments per shard, not 100× more
// shards), plus one fixed-size "hot" campaign — the query target that
// must stay cheap as the store grows around it.
func benchFixture(b *testing.B, kind string, n int) string {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s-%d", kind, n)
	if dir, ok := benchDirs[key]; ok {
		return dir
	}
	if benchRoot == "" {
		root, err := os.MkdirTemp("", "segstore-bench-")
		if err != nil {
			b.Fatal(err)
		}
		benchRoot = root
	}
	var store results.DurableStore
	var path string
	switch kind {
	case "seg":
		path = filepath.Join(benchRoot, key)
		s, err := Open(path, WithSegmentBytes(1<<20))
		if err != nil {
			b.Fatal(err)
		}
		store = s
	case "jsonl":
		path = filepath.Join(benchRoot, key+".jsonl")
		s, err := results.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		store = s
	default:
		b.Fatalf("unknown fixture kind %q", kind)
	}
	const hotSize = 100
	const fillCampaigns = 20
	for i := 0; i < hotSize && i < n; i++ {
		if err := store.Append(benchEpisode("hot", i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := hotSize; i < n; i++ {
		campaign := fmt.Sprintf("fill-%02d", i%fillCampaigns)
		if err := store.Append(benchEpisode(campaign, i/fillCampaigns)); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	benchDirs[key] = path
	return path
}

var benchSizes = []int{2000, 200000}

// BenchmarkSegstoreOpen measures a writer open (lock, campaigns log,
// per-shard manifests and close caches — no record parsing). The
// acceptance bar: n=200000 within 2× of n=2000.
func BenchmarkSegstoreOpen(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dir := benchFixture(b, "seg", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, WithSegmentBytes(1<<20))
				if err != nil {
					b.Fatal(err)
				}
				if st := s.OpenStats(); st.ScannedBytes != 0 {
					b.Fatalf("open scanned %d raw bytes; fixture not cleanly closed", st.ScannedBytes)
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFileStoreOpen is the baseline being displaced: the JSONL
// store re-parses every record on open, so this grows linearly with n.
func BenchmarkFileStoreOpen(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			path := benchFixture(b, "jsonl", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := results.Open(path)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEpisodesIndexed measures querying one fixed-size campaign
// while the store around it grows 100×: only the hot shard's segments
// are read, so latency should not follow n.
func BenchmarkEpisodesIndexed(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dir := benchFixture(b, "seg", n)
			s, err := Open(dir, WithSegmentBytes(1<<20))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eps, err := s.Episodes("hot")
				if err != nil {
					b.Fatal(err)
				}
				if len(eps) != 100 {
					b.Fatalf("hot campaign has %d episodes, want 100", len(eps))
				}
			}
			b.StopTimer()
			s.Close()
		})
	}
}
