package segstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/results"
)

// On-disk binary formats. Every file is a varint-packed payload behind
// a 4-byte magic and ends with a little-endian CRC32 (IEEE) of all
// preceding bytes, so a torn or bit-rotted index is rejected and
// rebuilt from its segment instead of silently misdescribing it.
//
//	<seq>.idx  — one sealed segment's header plus, when the segment is
//	             sorted, its partial campaign aggregate (binary, not
//	             JSON: ~5 float64s per launched episode instead of a
//	             re-parse of every record).
//	MANIFEST   — the headers of all sealed segments in one small file,
//	             so open reads one file per campaign instead of one per
//	             segment. It is a cache: stale or missing manifests are
//	             rebuilt from the authoritative .idx files.
const (
	idxMagic      = "RSX1"
	manifestMagic = "RSM1"
	codecVersion  = 1
)

// segMeta describes one segment: enough to answer count/range/size
// queries, to prove episode-index distinctness (sorted, non-overlapping
// segments need no last-wins fold), and — via the partial aggregate —
// to rebuild campaign summaries without touching the records.
type segMeta struct {
	seq    int
	n      int   // record lines
	minIdx int   // lowest episode index (valid when n > 0)
	maxIdx int   // highest episode index
	bytes  int64 // clean byte length of the .seg file
	// sorted: episode indexes strictly increase through the segment,
	// which implies they are distinct and were folded in index order —
	// the precondition for the partial aggregate being usable.
	sorted bool
	hasAgg bool
	// agg is the segment's partial aggregate; lazily loaded from the
	// .idx file for sealed segments (nil until needed).
	agg *results.CampaignRecord
}

const (
	flagSorted = 1 << iota
	flagHasAgg
)

func (m *segMeta) flags() uint64 {
	var f uint64
	if m.sorted {
		f |= flagSorted
	}
	if m.hasAgg {
		f |= flagHasAgg
	}
	return f
}

// appendCRC seals a payload with its trailing checksum.
func appendCRC(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// checkCRC verifies and strips the trailing checksum.
func checkCRC(b []byte, what string) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("segstore: %s: too short", what)
	}
	payload, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("segstore: %s: checksum mismatch", what)
	}
	return payload, nil
}

// encodeIdx renders one segment's .idx file contents.
func encodeIdx(m *segMeta) []byte {
	b := make([]byte, 0, 64)
	b = append(b, idxMagic...)
	b = binary.AppendUvarint(b, codecVersion)
	b = binary.AppendUvarint(b, m.flags())
	b = binary.AppendUvarint(b, uint64(m.n))
	b = binary.AppendVarint(b, int64(m.minIdx))
	b = binary.AppendVarint(b, int64(m.maxIdx))
	b = binary.AppendUvarint(b, uint64(m.bytes))
	if m.hasAgg {
		b = encodeAgg(b, m.agg)
	}
	return appendCRC(b)
}

// decodeIdx parses a .idx file. seq comes from the file name.
func decodeIdx(raw []byte, seq int) (segMeta, error) {
	payload, err := checkCRC(raw, "segment index")
	if err != nil {
		return segMeta{}, err
	}
	r, err := newReader(payload, idxMagic, "segment index")
	if err != nil {
		return segMeta{}, err
	}
	flags := r.uvarint()
	m := segMeta{
		seq:    seq,
		sorted: flags&flagSorted != 0,
		hasAgg: flags&flagHasAgg != 0,
		n:      int(r.uvarint()),
		minIdx: int(r.varint()),
		maxIdx: int(r.varint()),
		bytes:  int64(r.uvarint()),
	}
	if m.hasAgg {
		m.agg = r.agg()
	}
	if err := r.finish("segment index"); err != nil {
		return segMeta{}, err
	}
	return m, nil
}

// encodeManifest renders the sealed-segment header cache.
func encodeManifest(sealed []segMeta) []byte {
	b := make([]byte, 0, 16+32*len(sealed))
	b = append(b, manifestMagic...)
	b = binary.AppendUvarint(b, codecVersion)
	b = binary.AppendUvarint(b, uint64(len(sealed)))
	for i := range sealed {
		m := &sealed[i]
		b = binary.AppendUvarint(b, uint64(m.seq))
		b = binary.AppendUvarint(b, m.flags())
		b = binary.AppendUvarint(b, uint64(m.n))
		b = binary.AppendVarint(b, int64(m.minIdx))
		b = binary.AppendVarint(b, int64(m.maxIdx))
		b = binary.AppendUvarint(b, uint64(m.bytes))
	}
	return appendCRC(b)
}

// decodeManifest parses a MANIFEST into headers (aggs stay lazy).
func decodeManifest(raw []byte) ([]segMeta, error) {
	payload, err := checkCRC(raw, "manifest")
	if err != nil {
		return nil, err
	}
	r, err := newReader(payload, manifestMagic, "manifest")
	if err != nil {
		return nil, err
	}
	n := int(r.uvarint())
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("segstore: manifest: absurd segment count %d", n)
	}
	out := make([]segMeta, 0, n)
	for i := 0; i < n; i++ {
		seq := int(r.uvarint())
		flags := r.uvarint()
		out = append(out, segMeta{
			seq:    seq,
			sorted: flags&flagSorted != 0,
			hasAgg: flags&flagHasAgg != 0,
			n:      int(r.uvarint()),
			minIdx: int(r.varint()),
			maxIdx: int(r.varint()),
			bytes:  int64(r.uvarint()),
		})
	}
	if err := r.finish("manifest"); err != nil {
		return nil, err
	}
	return out, nil
}

// encodeAgg appends a CampaignRecord in the compact binary form: fixed
// counters as varints, slices as raw float64 bit patterns, successes as
// packed bits. Roughly 41 bytes per launched episode — an order of
// magnitude under the JSONL records it summarizes, which is what keeps
// the index under its bytes-per-episode budget.
func encodeAgg(b []byte, c *results.CampaignRecord) []byte {
	b = binary.AppendUvarint(b, uint64(c.V))
	b = appendString(b, c.Name)
	b = appendString(b, c.Scenario)
	b = binary.AppendVarint(b, int64(c.Mode))
	b = appendBool(b, c.ExpectCrashes)
	b = binary.AppendVarint(b, c.BaseSeed)
	for _, v := range []int{
		c.Runs, c.Launched, c.EBs, c.Crashes,
		c.PedLaunched, c.PedEBs, c.VehLaunched, c.VehEBs,
	} {
		b = binary.AppendUvarint(b, uint64(v))
	}
	for _, s := range [][]float64{c.Ks, c.KPrimes, c.MinDeltas, c.Predicted, c.Realized} {
		b = binary.AppendUvarint(b, uint64(len(s)))
		for _, v := range s {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(c.Successes)))
	var acc byte
	for i, v := range c.Successes {
		if v {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, acc)
			acc = 0
		}
	}
	if len(c.Successes)%8 != 0 {
		b = append(b, acc)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// reader is a bounds-checked cursor over a codec payload. The first
// decode error sticks; finish reports it (or trailing garbage).
type reader struct {
	b   []byte
	off int
	err error
}

func newReader(payload []byte, magic, what string) (*reader, error) {
	if len(payload) < len(magic) || string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("segstore: %s: bad magic", what)
	}
	r := &reader{b: payload, off: len(magic)}
	if v := r.uvarint(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("segstore: %s: version %d is newer than supported %d", what, v, codecVersion)
	}
	return r, r.err
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("truncated varint at offset %d", r.off))
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("truncated varint at offset %d", r.off))
		return 0
	}
	r.off += n
	return v
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(fmt.Errorf("truncated payload at offset %d (want %d bytes)", r.off, n))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) str() string { return string(r.take(int(r.uvarint()))) }

func (r *reader) bool() bool {
	b := r.take(1)
	return len(b) == 1 && b[0] != 0
}

func (r *reader) f64s() []float64 {
	n := int(r.uvarint())
	if r.err != nil || n == 0 {
		return nil
	}
	raw := r.take(8 * n)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (r *reader) bools() []bool {
	n := int(r.uvarint())
	if r.err != nil || n == 0 {
		return nil
	}
	raw := r.take((n + 7) / 8)
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// agg decodes the binary CampaignRecord. Empty slices decode to nil,
// matching what results.Aggregate produces for campaigns with no
// launched episodes — the round trip is exact, including NaN bit
// patterns (float64 bits are stored verbatim).
func (r *reader) agg() *results.CampaignRecord {
	c := &results.CampaignRecord{
		V:             int(r.uvarint()),
		Name:          r.str(),
		Scenario:      r.str(),
		Mode:          core.Mode(r.varint()),
		ExpectCrashes: r.bool(),
		BaseSeed:      r.varint(),
	}
	for _, dst := range []*int{
		&c.Runs, &c.Launched, &c.EBs, &c.Crashes,
		&c.PedLaunched, &c.PedEBs, &c.VehLaunched, &c.VehEBs,
	} {
		*dst = int(r.uvarint())
	}
	c.Ks = r.f64s()
	c.KPrimes = r.f64s()
	c.MinDeltas = r.f64s()
	c.Predicted = r.f64s()
	c.Realized = r.f64s()
	c.Successes = r.bools()
	if r.err != nil {
		return nil
	}
	return c
}

// finish reports a sticky decode error or trailing garbage.
func (r *reader) finish(what string) error {
	if r.err != nil {
		return fmt.Errorf("segstore: %s: %w", what, r.err)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("segstore: %s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}
