package segstore

import (
	"fmt"
	"os"
	"strings"

	"github.com/robotack/robotack/internal/results"
)

// Format autodetection for the CLI layer: every binary that accepts a
// results-store path (-store, -out, -compare, store diff/stats) routes
// through OpenAny/LoadAny so operators never spell the backend out. It
// lives here rather than in results because results cannot import its
// own backends.
//
// The rules, in order:
//   - an existing directory      → segstore
//   - an existing regular file   → JSONL FileStore
//   - a missing path ending in ".jsonl" → new FileStore
//   - a missing path otherwise   → new segstore
//
// DetectFormat applies them without opening anything.
func DetectFormat(path string) (string, error) {
	fi, err := os.Stat(path)
	switch {
	case err == nil && fi.IsDir():
		return results.FormatSegstore, nil
	case err == nil:
		return results.FormatJSONL, nil
	case os.IsNotExist(err):
		if strings.HasSuffix(path, ".jsonl") {
			return results.FormatJSONL, nil
		}
		return results.FormatSegstore, nil
	default:
		return "", fmt.Errorf("segstore: stat %s: %w", path, err)
	}
}

// OpenAny opens a store for reading and appending in whichever format
// the path holds (or, for a new path, implies).
func OpenAny(path string, opts ...Option) (results.DurableStore, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, err
	}
	if format == results.FormatSegstore {
		return Open(path, opts...)
	}
	return results.Open(path)
}

// LoadAny opens a store read-only — the diff/compare path, safe to
// point at a store another process is writing.
func LoadAny(path string, opts ...Option) (results.Store, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, err
	}
	if format == results.FormatSegstore {
		return Load(path, opts...)
	}
	return results.Load(path)
}
