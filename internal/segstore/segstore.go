// Package segstore is the segmented, indexed results backend for
// million-episode sweeps. The JSONL FileStore re-parses its entire log
// on every open and holds every record in memory; a segstore directory
// shards records by campaign, rolls each shard's append-only segment
// file at a size threshold, and keeps a compact binary index (count,
// episode-index range, byte length, partial aggregate) per sealed
// segment plus a per-shard MANIFEST of those headers. Opening reads
// campaign aggregates and index metadata — not records — so open time
// and campaign queries stay flat as the store grows; a background
// compactor rewrites a shard (last-wins, index order) whenever
// out-of-order re-appends break its sorted fast path.
//
// It is a drop-in results.DurableStore with FileStore's crash-safety
// contract: appends are visible after a kill -9, a torn final line is
// dropped and truncated on the next writer open, and resuming a
// campaign produces aggregates bit-identical to an uninterrupted run.
package segstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/robotack/robotack/internal/results"
)

const (
	// markerFile identifies a directory as a segstore (and carries the
	// layout version for future migrations).
	markerFile = "segstore.json"
	// lockFileName is the store's exclusivity lock — its own file, never
	// renamed, so generation swaps and log compaction happen underneath
	// it (the runq queue.lock discipline).
	lockFileName = "store.lock"
	// campaignsFile is the aggregates log at the store root: the same
	// last-wins JSONL envelope as FileStore, holding only campaign
	// records (episodes live in the shards).
	campaignsFile = "campaigns.jsonl"
	// shardsDir holds one directory per campaign.
	shardsDir = "c"

	// DefaultSegmentBytes is the roll threshold for active segments.
	DefaultSegmentBytes = 4 << 20

	// logCompactMin and logCompactRatio gate campaigns.jsonl rewrites:
	// compact when the log tops the minimum and is mostly dead upserts.
	logCompactMin   = 1 << 16
	logCompactRatio = 3
)

type marker struct {
	V int `json:"v"`
}

// logLine is the campaigns.jsonl envelope — identical on the wire to
// FileStore's campaign lines, so migrated aggregates are byte-familiar.
type logLine struct {
	Kind     string                  `json:"kind"`
	Campaign *results.CampaignRecord `json:"campaign,omitempty"`
}

const kindCampaign = "campaign"

// OpenStats reports what Open had to read: the proof that the store is
// index-driven. A clean reopen scans (nearly) zero raw bytes no matter
// how many records it holds.
type OpenStats struct {
	// ScannedBytes is raw segment data parsed line by line (un-indexed
	// active tails, segments with missing or stale indexes).
	ScannedBytes int64
	// IndexBytes is metadata read instead: manifests, segment indexes,
	// and the campaigns log.
	IndexBytes int64
	// Segments is the live segment-file count across shards.
	Segments int
}

// Option configures Open and Load.
type Option func(*Store)

// WithSegmentBytes overrides the segment roll threshold (tests use
// small values to force multi-segment shards).
func WithSegmentBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.segBytes = n
		}
	}
}

// WithErrorLog routes background-compaction failures to fn (the store
// has no logger of its own; robotack-serve wires this to its slog). A
// failed rewrite is not data loss — the shard stays correct on the
// fold path and the next fast-path-breaking append retries — but an
// operator should hear about a disk that keeps refusing rewrites.
func WithErrorLog(fn func(campaign string, err error)) Option {
	return func(s *Store) { s.logErr = fn }
}

// Store is the segmented results backend. It implements
// results.DurableStore plus the optional StatsProvider, Aggregator and
// episode-listing extensions.
type Store struct {
	dir      string
	ro       bool
	segBytes int64
	lockF    *os.File

	// mu guards the shard and campaign maps; each shard carries its own
	// mutex for segment state. Lock order: logMu → mu → shard.mu.
	mu        sync.RWMutex
	shards    map[string]*shard
	campaigns map[string]results.CampaignRecord

	// logMu serializes campaigns.jsonl appends and compaction.
	logMu     sync.Mutex
	logF      *os.File
	logBytes  int64
	liveBytes map[string]int64 // per-campaign live line length

	compactMu     sync.Mutex
	compactCh     chan *shard
	compactClosed bool
	wg            sync.WaitGroup

	closed    atomic.Bool
	openStats OpenStats
	logErr    func(campaign string, err error)
}

// Open opens (creating if needed) a segstore directory for reading and
// appending, taking an exclusive lock on it. Torn tails anywhere — the
// campaigns log or any segment — are dropped and truncated, exactly
// like FileStore and the runq journal.
func Open(dir string, opts ...Option) (*Store, error) { return open(dir, false, opts...) }

// Load opens a segstore directory read-only, without locking it: the
// diff/compare path, usable while another process owns the store. Torn
// tails are tolerated and ignored, never repaired.
func Load(dir string, opts ...Option) (*Store, error) { return open(dir, true, opts...) }

func open(dir string, ro bool, opts ...Option) (*Store, error) {
	s := &Store{
		dir:       dir,
		ro:        ro,
		segBytes:  DefaultSegmentBytes,
		shards:    make(map[string]*shard),
		campaigns: make(map[string]results.CampaignRecord),
		liveBytes: make(map[string]int64),
	}
	for _, o := range opts {
		o(s)
	}
	if !ro {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("segstore: create store dir: %w", err)
		}
	}
	if err := s.checkMarker(); err != nil {
		return nil, err
	}
	fail := func(err error) (*Store, error) {
		if s.logF != nil {
			s.logF.Close()
		}
		if s.lockF != nil {
			s.lockF.Close()
		}
		return nil, err
	}
	if !ro {
		lockPath := filepath.Join(dir, lockFileName)
		lf, err := os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fail(fmt.Errorf("segstore: open lock: %w", err))
		}
		if err := lockFile(lf); err != nil {
			lf.Close()
			s.lockF = nil
			return fail(fmt.Errorf("segstore: %s: %w", lockPath, err))
		}
		s.lockF = lf
	}
	if err := s.openLog(); err != nil {
		return fail(err)
	}
	if err := s.openShards(); err != nil {
		return fail(err)
	}
	s.openStats.Segments = s.segmentCount()
	gaugeAdd(gSegments, float64(s.openStats.Segments))
	gaugeAdd(gBytes, float64(s.recordBytes()))
	if !ro {
		s.compactCh = make(chan *shard, 64)
		s.wg.Add(1)
		go s.compactor()
		// Shards that lost their fast path before the last shutdown get
		// repaired now rather than on their next unlucky query.
		s.mu.RLock()
		for _, sh := range s.shards {
			sh.mu.Lock()
			if !sh.fastPath() {
				s.enqueueCompactLocked(sh)
			}
			sh.mu.Unlock()
		}
		s.mu.RUnlock()
	}
	return s, nil
}

// checkMarker verifies (or, for a new writer dir, creates) the
// segstore.json layout marker. A non-empty directory without the
// marker is refused rather than adopted: pointing -store-dir at a
// random directory must not scribble a store into it.
func (s *Store) checkMarker() error {
	path := filepath.Join(s.dir, markerFile)
	raw, err := os.ReadFile(path)
	if err == nil {
		var m marker
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("segstore: %s: %w", path, err)
		}
		if m.V > 1 {
			return fmt.Errorf("segstore: %s: layout v%d is newer than supported v1", path, m.V)
		}
		return nil
	}
	if s.ro {
		return fmt.Errorf("segstore: %s is not a segstore directory (no %s)", s.dir, markerFile)
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("segstore: read store dir: %w", err)
	}
	for _, e := range entries {
		if e.Name() != lockFileName {
			return fmt.Errorf("segstore: refusing to initialize non-empty directory %s", s.dir)
		}
	}
	return writeFileAtomic(path, []byte("{\"v\":1}\n"))
}

// openLog replays campaigns.jsonl into the aggregate map.
func (s *Store) openLog() error {
	path := filepath.Join(s.dir, campaignsFile)
	var raw []byte
	if s.ro {
		b, err := os.ReadFile(path)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("segstore: %s: %w", path, err)
		}
		raw = b
	} else {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("segstore: open campaigns log: %w", err)
		}
		s.logF = f
		if raw, err = io.ReadAll(f); err != nil {
			return fmt.Errorf("segstore: %s: %w", path, err)
		}
	}
	good, err := results.ScanJSONL(raw, func(lineno int, line []byte) error {
		var l logLine
		if err := json.Unmarshal(line, &l); err != nil {
			return fmt.Errorf("segstore: %s:%d: %w: %w", path, lineno, results.ErrMalformedLine, err)
		}
		if l.Kind != kindCampaign || l.Campaign == nil {
			return fmt.Errorf("segstore: %s:%d: unknown record kind %q", path, lineno, l.Kind)
		}
		if l.Campaign.V > results.Version {
			return fmt.Errorf("segstore: %s:%d: campaign record v%d is newer than supported v%d",
				path, lineno, l.Campaign.V, results.Version)
		}
		s.campaigns[l.Campaign.Name] = *l.Campaign
		s.liveBytes[l.Campaign.Name] = int64(len(line)) + 1
		return nil
	})
	if err != nil {
		return err
	}
	if !s.ro && good < len(raw) {
		if err := s.logF.Truncate(int64(good)); err != nil {
			return fmt.Errorf("segstore: %s: drop torn tail: %w", path, err)
		}
	}
	s.logBytes = int64(good)
	s.openStats.IndexBytes += int64(good)
	return nil
}

// openShards recovers every campaign shard under c/.
func (s *Store) openShards() error {
	root := filepath.Join(s.dir, shardsDir)
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("segstore: read shards dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := unescapeName(e.Name())
		if err != nil {
			return err
		}
		sh, scanned, idxBytes, err := openShard(filepath.Join(root, e.Name()), name, s.ro)
		if err != nil {
			return err
		}
		s.shards[name] = sh
		s.openStats.ScannedBytes += scanned
		s.openStats.IndexBytes += idxBytes
	}
	countN(mOpenScanned, s.openStats.ScannedBytes)
	return nil
}

// OpenStats reports what this store's open had to read.
func (s *Store) OpenStats() OpenStats { return s.openStats }

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) segmentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sealed) + 1
		sh.mu.Unlock()
	}
	return n
}

func (s *Store) recordBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		b += sh.bytes()
		sh.mu.Unlock()
	}
	return b + s.logBytes
}

var errReadOnly = errors.New("segstore: store is read-only")
var errClosed = errors.New("segstore: store is closed")

// getShard returns the campaign's shard, creating its directory tree
// on first append.
func (s *Store) getShard(name string, create bool) (*shard, error) {
	s.mu.RLock()
	sh := s.shards[name]
	s.mu.RUnlock()
	if sh != nil || !create {
		return sh, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh = s.shards[name]; sh != nil {
		return sh, nil
	}
	dir := filepath.Join(s.dir, shardsDir, escapeName(name))
	genDir := filepath.Join(dir, genName(0))
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return nil, fmt.Errorf("segstore: create shard: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, currentFile), []byte(genName(0)+"\n")); err != nil {
		return nil, err
	}
	sh = &shard{
		name:       name,
		dir:        dir,
		gen:        0,
		genDir:     genDir,
		active:     segMeta{seq: 0, sorted: true},
		sealedFast: true,
	}
	s.shards[name] = sh
	gaugeAdd(gSegments, 1)
	return sh, nil
}

// Append implements results.Sink. The record is on disk (modulo OS
// buffering, as with FileStore) before it is visible to queries.
func (s *Store) Append(ep results.EpisodeRecord) error {
	if s.ro {
		return errReadOnly
	}
	if s.closed.Load() {
		return errClosed
	}
	if ep.V > results.Version {
		return fmt.Errorf("segstore: episode record v%d is newer than supported v%d", ep.V, results.Version)
	}
	raw, err := json.Marshal(ep)
	if err != nil {
		return fmt.Errorf("segstore: encode episode: %w", err)
	}
	raw = append(raw, '\n')
	sh, err := s.getShard(ep.Campaign, true)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.openWriter(); err != nil {
		return err
	}
	if _, err := sh.w.Write(raw); err != nil {
		return fmt.Errorf("segstore: append to %s: %w", sh.segPath(sh.active.seq), err)
	}
	wasFast := sh.fastPath()
	foldAppend(&sh.active, &sh.activeAgg, &ep)
	sh.active.bytes += int64(len(raw))
	count(mAppends)
	gaugeAdd(gBytes, float64(len(raw)))
	if sh.active.bytes >= s.segBytes {
		if err := sh.seal(); err != nil {
			return err
		}
		count(mRolls)
		gaugeAdd(gSegments, 1)
	}
	if wasFast && !sh.fastPath() {
		// An out-of-order re-append (a worker retry after resume) broke
		// the sorted invariant; the compactor restores it off-line.
		s.enqueueCompactLocked(sh)
	}
	return nil
}

// PutCampaign implements results.Store: aggregates append to the
// campaigns log (last-wins on replay) and the log is rewritten in
// place — staged and renamed, runq-style — once it is mostly dead
// upserts.
func (s *Store) PutCampaign(c results.CampaignRecord) error {
	if s.ro {
		return errReadOnly
	}
	if s.closed.Load() {
		return errClosed
	}
	if c.V > results.Version {
		return fmt.Errorf("segstore: campaign record v%d is newer than supported v%d", c.V, results.Version)
	}
	raw, err := json.Marshal(logLine{Kind: kindCampaign, Campaign: &c})
	if err != nil {
		return fmt.Errorf("segstore: encode campaign: %w", err)
	}
	raw = append(raw, '\n')
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if _, err := s.logF.Write(raw); err != nil {
		return fmt.Errorf("segstore: append campaign: %w", err)
	}
	s.logBytes += int64(len(raw))
	s.mu.Lock()
	s.campaigns[c.Name] = c
	s.mu.Unlock()
	s.liveBytes[c.Name] = int64(len(raw))
	var live int64
	for _, n := range s.liveBytes {
		live += n
	}
	if s.logBytes > logCompactMin && s.logBytes > logCompactRatio*live {
		return s.compactLogLocked()
	}
	return nil
}

// compactLogLocked rewrites campaigns.jsonl to one line per campaign
// (caller holds logMu).
func (s *Store) compactLogLocked() error {
	s.mu.RLock()
	recs := make([]results.CampaignRecord, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		recs = append(recs, c)
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	var buf []byte
	live := make(map[string]int64, len(recs))
	for i := range recs {
		raw, err := json.Marshal(logLine{Kind: kindCampaign, Campaign: &recs[i]})
		if err != nil {
			return fmt.Errorf("segstore: encode campaign: %w", err)
		}
		buf = append(buf, raw...)
		buf = append(buf, '\n')
		live[recs[i].Name] = int64(len(raw)) + 1
	}
	path := filepath.Join(s.dir, campaignsFile)
	if err := writeFileAtomic(path, buf); err != nil {
		return err
	}
	s.logF.Close() // old inode is gone from the directory
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: reopen campaigns log: %w", err)
	}
	s.logF = f
	s.logBytes = int64(len(buf))
	s.liveBytes = live
	return nil
}

// Campaigns implements results.Store.
func (s *Store) Campaigns() ([]results.CampaignRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]results.CampaignRecord, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Episodes implements results.Store: only the named campaign's shard
// is read. On the sorted fast path segments concatenate directly; a
// shard with duplicate keys falls back to the last-wins fold.
func (s *Store) Episodes(campaign string) ([]results.EpisodeRecord, error) {
	sh, err := s.getShard(campaign, false)
	if sh == nil || err != nil {
		return []results.EpisodeRecord{}, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.episodesLocked(sh)
}

func (s *Store) episodesLocked(sh *shard) ([]results.EpisodeRecord, error) {
	n, _ := sh.episodes()
	if n == 0 {
		return []results.EpisodeRecord{}, nil
	}
	fast := sh.fastPath()
	if fast {
		count(mIndexHits)
	} else {
		count(mRawScans)
	}
	out := make([]results.EpisodeRecord, 0, n)
	var fold map[int]results.EpisodeRecord
	if !fast {
		fold = make(map[int]results.EpisodeRecord, n)
	}
	read := func(seq int) error {
		raw, err := os.ReadFile(sh.segPath(seq))
		if err != nil {
			return fmt.Errorf("segstore: read segment: %w", err)
		}
		_, err = results.ScanJSONL(raw, func(lineno int, line []byte) error {
			var ep results.EpisodeRecord
			if err := json.Unmarshal(line, &ep); err != nil {
				return fmt.Errorf("%w: %w", results.ErrMalformedLine, err)
			}
			if fast {
				out = append(out, ep)
			} else {
				fold[ep.Index] = ep
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("segstore: %s: %w", sh.segPath(seq), err)
		}
		return nil
	}
	for i := range sh.sealed {
		if sh.sealed[i].n == 0 {
			continue
		}
		if err := read(sh.sealed[i].seq); err != nil {
			return nil, err
		}
	}
	if sh.active.n > 0 {
		if err := read(sh.active.seq); err != nil {
			return nil, err
		}
	}
	if fast {
		return out, nil
	}
	for _, ep := range fold {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// EpisodeCampaigns lists campaign names holding episode records.
func (s *Store) EpisodeCampaigns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.shards))
	for name, sh := range s.shards {
		sh.mu.Lock()
		n, _ := sh.episodes()
		sh.mu.Unlock()
		if n > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// AggregateEpisodes implements results.Aggregator: on the fast path a
// campaign's aggregate is the merge of its segments' partial
// aggregates — index metadata, not records. The result is exactly what
// results.Aggregate produces from Episodes (same fold, same order).
func (s *Store) AggregateEpisodes(name string) (*results.CampaignRecord, error) {
	sh, err := s.getShard(name, false)
	if sh == nil || err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, _ := sh.episodes()
	if n == 0 {
		return nil, nil
	}
	if sh.fastPath() {
		if agg, err := s.mergeAggsLocked(sh); err != nil {
			return nil, err
		} else if agg != nil {
			count(mIndexHits)
			return agg, nil
		}
	}
	count(mRawScans)
	eps, err := s.episodesLocked(sh)
	if err != nil {
		return nil, err
	}
	if len(eps) == 0 {
		return nil, nil
	}
	meta := results.NewCampaign(name, eps[0].Scenario, eps[0].Mode, eps[0].ExpectCrashes, 0)
	rec := results.Aggregate(meta, eps)
	return &rec, nil
}

// mergeAggsLocked merges per-segment partial aggregates in segment
// order. Fold gates per-episode fields on the aggregate's identity
// (mode, crash eligibility), so the merge is exact if and only if all
// segments agree on that identity; mixed-identity shards return nil
// and take the raw fold instead.
func (s *Store) mergeAggsLocked(sh *shard) (*results.CampaignRecord, error) {
	aggs := make([]*results.CampaignRecord, 0, len(sh.sealed)+1)
	for i := range sh.sealed {
		if sh.sealed[i].n == 0 {
			continue
		}
		a, err := s.shardSealedAgg(sh, i)
		if err != nil {
			return nil, err
		}
		if a == nil {
			return nil, nil
		}
		aggs = append(aggs, a)
	}
	if sh.active.n > 0 {
		// After a reopen the active aggregate is rebuilt on demand — one
		// segment scan, bounded by the roll threshold.
		if err := sh.ensureActiveAgg(); err != nil {
			return nil, err
		}
		if sh.activeAgg == nil {
			return nil, nil
		}
		aggs = append(aggs, sh.activeAgg)
	}
	if len(aggs) == 0 {
		return nil, nil
	}
	first := aggs[0]
	out := results.NewCampaign(sh.name, first.Scenario, first.Mode, first.ExpectCrashes, 0)
	for _, a := range aggs {
		if a.Scenario != out.Scenario || a.Mode != out.Mode || a.ExpectCrashes != out.ExpectCrashes {
			return nil, nil
		}
		out.Runs += a.Runs
		out.Launched += a.Launched
		out.EBs += a.EBs
		out.Crashes += a.Crashes
		out.PedLaunched += a.PedLaunched
		out.PedEBs += a.PedEBs
		out.VehLaunched += a.VehLaunched
		out.VehEBs += a.VehEBs
		out.Ks = append(out.Ks, a.Ks...)
		out.KPrimes = append(out.KPrimes, a.KPrimes...)
		out.MinDeltas = append(out.MinDeltas, a.MinDeltas...)
		out.Predicted = append(out.Predicted, a.Predicted...)
		out.Realized = append(out.Realized, a.Realized...)
		out.Successes = append(out.Successes, a.Successes...)
	}
	return &out, nil
}

// shardSealedAgg wraps shard.sealedAgg with the store's read-only rule
// (never repair indexes from the read path).
func (s *Store) shardSealedAgg(sh *shard, i int) (*results.CampaignRecord, error) {
	return sh.sealedAgg(i)
}

// Stats implements results.StatsProvider from metadata alone. Episode
// counts are exact when every shard's fast path proves its keys
// distinct; a shard awaiting compaction reports an upper bound and
// flips Estimated.
func (s *Store) Stats() (results.StoreStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := results.StoreStats{
		Format:    results.FormatSegstore,
		Path:      s.dir,
		Campaigns: len(s.campaigns),
	}
	st.BytesEstimate = s.logBytes
	for _, sh := range s.shards {
		sh.mu.Lock()
		n, exact := sh.episodes()
		st.Episodes += n
		st.BytesEstimate += sh.bytes()
		sh.mu.Unlock()
		if !exact {
			st.Estimated = true
		}
	}
	return st, nil
}

// Sync flushes every open segment writer and the campaigns log.
func (s *Store) Sync() error {
	if s.ro {
		return nil
	}
	var firstErr error
	s.logMu.Lock()
	if s.logF != nil {
		if err := s.logF.Sync(); err != nil {
			firstErr = err
		}
	}
	s.logMu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.w != nil {
			if err := sh.w.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Close stops the compactor, writes each shard's active-segment index
// as a scan cache for the next open, and releases the lock. A store
// killed without Close loses only that cache — the next open rescans
// active tails.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if !s.ro {
		s.compactMu.Lock()
		s.compactClosed = true
		close(s.compactCh)
		s.compactMu.Unlock()
		s.wg.Wait()
	}
	var firstErr error
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		if !s.ro {
			if err := sh.closeWriter(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	gaugeAdd(gSegments, -float64(s.segmentCountLocked()))
	gaugeAdd(gBytes, -float64(s.recordBytesLocked()))
	if s.logF != nil {
		if err := s.logF.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.logF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.lockF != nil {
		if err := s.lockF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Store) segmentCountLocked() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.sealed) + 1
	}
	return n
}

func (s *Store) recordBytesLocked() int64 {
	var b int64
	for _, sh := range s.shards {
		b += sh.bytes()
	}
	return b + s.logBytes
}
