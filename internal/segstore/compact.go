package segstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/robotack/robotack/internal/results"
)

// The compactor restores a shard's sorted fast path after out-of-order
// re-appends (worker retries on a resumed campaign) by rewriting it
// last-wins in index order into a fresh generation directory and
// swapping CURRENT — the multi-file analogue of runq's staged journal
// rewrite. Readers and appenders of other shards are untouched; the
// shard being rewritten blocks only for the duration of its own
// rewrite.

// enqueueCompactLocked schedules a shard rewrite (caller holds
// sh.mu). A full queue just drops the request: the shard stays
// correct (queries fall back to the last-wins fold) and the next
// fast-path-breaking append retries.
func (s *Store) enqueueCompactLocked(sh *shard) {
	if sh.compactQueued || s.ro {
		return
	}
	s.compactMu.Lock()
	if !s.compactClosed {
		select {
		case s.compactCh <- sh:
			sh.compactQueued = true
		default:
		}
	}
	s.compactMu.Unlock()
}

// compactor drains the rewrite queue until Close.
func (s *Store) compactor() {
	defer s.wg.Done()
	for sh := range s.compactCh {
		if _, err := s.compactShard(sh); err != nil && s.logErr != nil {
			s.logErr(sh.name, err)
		}
	}
}

// Compact synchronously rewrites every shard that has fallen off the
// sorted fast path — the `robotack-store compact` entry point, for
// operators who want a store's layout settled now (before archiving or
// diffing it) rather than whenever the background compactor next runs.
// Shards already on the fast path are untouched. Returns the number of
// shards rewritten.
func (s *Store) Compact() (int, error) {
	if s.ro {
		return 0, errReadOnly
	}
	if s.closed.Load() {
		return 0, errClosed
	}
	s.mu.RLock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.RUnlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].name < shards[j].name })
	n := 0
	for _, sh := range shards {
		rewrote, err := s.compactShard(sh)
		if err != nil {
			return n, err
		}
		if rewrote {
			n++
		}
	}
	return n, nil
}

// compactShard rewrites one shard into generation gen+1: all records,
// folded last-wins and sorted by episode index, re-segmented at the
// roll threshold with fresh indexes and MANIFEST, then CURRENT swapped
// and the old generation removed. A crash anywhere leaves either the
// old complete generation or the new one — never a mix — because
// CURRENT is the single commit point. Reports whether it rewrote
// anything (a shard already on the fast path is left alone).
func (s *Store) compactShard(sh *shard) (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.compactQueued = false
	if sh.fastPath() {
		return false, nil // a later append already rolled into a clean state
	}
	eps, err := s.episodesLocked(sh)
	if err != nil {
		return false, err
	}
	oldSegs := len(sh.sealed) + 1
	oldBytes := sh.bytes()

	// Stage the new generation.
	newGen := sh.gen + 1
	newDir := filepath.Join(sh.dir, genName(newGen))
	if err := os.RemoveAll(newDir); err != nil {
		return false, fmt.Errorf("segstore: clear staging generation: %w", err)
	}
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		return false, fmt.Errorf("segstore: create generation: %w", err)
	}
	sealed, err := writeGeneration(newDir, sh.name, eps, s.segBytes)
	if err != nil {
		return false, err
	}

	// Commit: close the old writer, swap CURRENT, drop the old dir.
	if sh.w != nil {
		sh.w.Close()
		sh.w = nil
	}
	if err := writeFileAtomic(filepath.Join(sh.dir, currentFile), []byte(genName(newGen)+"\n")); err != nil {
		return false, err
	}
	oldDir := sh.genDir
	sh.gen = newGen
	sh.genDir = newDir
	sh.sealed = sealed
	sh.active = segMeta{seq: len(sealed), sorted: true}
	sh.activeAgg = nil
	sh.recomputeSealedFast()
	os.RemoveAll(oldDir)

	count(mCompactions)
	gaugeAdd(gSegments, float64(len(sealed)+1-oldSegs))
	gaugeAdd(gBytes, float64(sh.bytes()-oldBytes))
	return true, nil
}

// writeGeneration lays out sorted records as sealed segments (rolled at
// segBytes) plus an empty active segment, with per-segment indexes and
// the MANIFEST. Everything is synced before the caller commits the
// generation via CURRENT.
func writeGeneration(dir, name string, eps []results.EpisodeRecord, segBytes int64) ([]segMeta, error) {
	sort.Slice(eps, func(i, j int) bool { return eps[i].Index < eps[j].Index })
	var sealed []segMeta
	var f *os.File
	var m segMeta
	var agg *results.CampaignRecord
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	seal := func() error {
		if f == nil {
			return nil
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("segstore: sync segment: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("segstore: close segment: %w", err)
		}
		f = nil
		m.hasAgg = m.sorted && m.n > 0
		m.agg = agg
		if err := writeFileAtomic(filepath.Join(dir, idxName(m.seq)), encodeIdx(&m)); err != nil {
			return err
		}
		m.agg = nil
		sealed = append(sealed, m)
		return nil
	}
	for i := range eps {
		if f == nil {
			m = segMeta{seq: len(sealed), sorted: true}
			agg = nil
			nf, err := os.OpenFile(filepath.Join(dir, segName(m.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, fmt.Errorf("segstore: create segment: %w", err)
			}
			f = nf
		}
		raw, err := json.Marshal(eps[i])
		if err != nil {
			return nil, fmt.Errorf("segstore: encode episode: %w", err)
		}
		raw = append(raw, '\n')
		if _, err := f.Write(raw); err != nil {
			return nil, fmt.Errorf("segstore: write segment: %w", err)
		}
		foldAppend(&m, &agg, &eps[i])
		m.bytes += int64(len(raw))
		if m.bytes >= segBytes {
			if err := seal(); err != nil {
				return nil, err
			}
		}
	}
	if err := seal(); err != nil {
		return nil, err
	}
	// The empty active segment, so reopen sees seq len(sealed) as the
	// appendable tail rather than mistaking the last sealed segment.
	af, err := os.OpenFile(filepath.Join(dir, segName(len(sealed))), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segstore: create active segment: %w", err)
	}
	af.Close()
	if err := writeFileAtomic(filepath.Join(dir, manifestFile), encodeManifest(sealed)); err != nil {
		return nil, err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return sealed, nil
}
